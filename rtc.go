package edf

import "repro/internal/rtc"

// RTCLine is one straight segment of a real-time-calculus style curve.
type RTCLine = rtc.Line

// RTCCurve is a concave piecewise-linear demand upper bound (minimum of
// lines), the approximation shape Section 3.6 of the paper compares the
// superposition approach against.
type RTCCurve = rtc.Curve

// RTCTaskCurve returns the two-segment demand approximation of a sporadic
// task (Figure 4a of the paper).
func RTCTaskCurve(t Task) RTCCurve { return rtc.TaskCurve(t) }

// RTCEventTaskCurve returns the up-to-three-segment approximation of a
// bursty event-driven task (Figure 4b).
func RTCEventTaskCurve(t EventTask) RTCCurve { return rtc.EventTaskCurve(t) }

// RTCFeasible applies the real-time-calculus style sufficient test to a
// sporadic task set. Per Section 3.6 it is never better than Devi's test.
func RTCFeasible(ts TaskSet) Verdict { return rtc.Feasible(ts) }

// RTCFeasibleEvents applies the curve test to event-driven tasks.
func RTCFeasibleEvents(tasks []EventTask) Verdict { return rtc.FeasibleEvents(tasks) }
