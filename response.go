package edf

import "repro/internal/response"

// ResponseOptions tune the worst-case response time analysis.
type ResponseOptions = response.Options

// WCRT returns the worst-case response time of task i under preemptive EDF
// (Spuri's deadline busy period analysis). ok is false when the analysis
// does not apply (U > 1) or a resource cap was hit.
func WCRT(ts TaskSet, i int, opt ResponseOptions) (int64, bool) { return response.WCRT(ts, i, opt) }

// WCRTAll returns the worst-case response time of every task.
func WCRTAll(ts TaskSet, opt ResponseOptions) ([]int64, bool) { return response.All(ts, opt) }

// FeasibleByResponse decides feasibility through response times: feasible
// iff every task's WCRT is within its deadline. It is an independent exact
// oracle cross-checked against the feasibility tests.
func FeasibleByResponse(ts TaskSet, opt ResponseOptions) (feasible, ok bool) {
	return response.Feasible(ts, opt)
}
