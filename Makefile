GO ?= go

.PHONY: all build test bench fmt vet clean

all: build test

build:
	$(GO) build ./...

test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/engine/

bench:
	$(GO) test -bench . -benchmem -run xxx . | tee bench.out

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	rm -f bench.out
	$(GO) clean ./...
