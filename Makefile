GO ?= go

.PHONY: all build test bench bench-json bench-core bench-session bench-store bench-partition bench-cluster serve smoke smoke-cluster lint-metrics fmt vet clean

all: build test

build:
	$(GO) build ./...

test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/engine/ ./internal/service/... ./internal/cluster/ ./internal/store/

bench:
	$(GO) test -bench . -benchmem -run xxx . | tee bench.out

# Service benchmarks as machine-readable test2json events (one smoke
# iteration per benchmark), for CI trend tracking.
bench-json:
	$(GO) test -json -bench . -benchtime 1x -run xxx ./internal/service/ > BENCH_service.json

# Core analyzer hot-path benchmarks, merged into the committed trend file
# BENCH_core.json (the first run freezes the baseline section; later runs
# only replace "current"). BENCHTIME trades precision for runtime. The
# test output lands in a temp file first so a benchmark failure aborts
# the recipe instead of being masked by the pipe. With GATE=<pct> set,
# benchmerge exits non-zero when any benchmark regresses more than pct%
# (ns/op, or any allocation on a 0-alloc baseline) vs the frozen
# baseline — the CI regression gate protecting the zero-alloc hot path.
BENCHTIME ?= 300ms
GATE ?=
bench-core:
	$(GO) test -run xxx -bench . -benchmem -benchtime $(BENCHTIME) ./internal/core/ > bench-core.out
	$(GO) run ./cmd/benchmerge -out BENCH_core.json $(if $(GATE),-gate $(GATE)) < bench-core.out
	rm -f bench-core.out

# Session admission benchmarks (incremental fast path vs full
# re-analysis on 1k-task sessions, plus churn replay), merged into the
# committed trend file BENCH_session.json under the same baseline/gate
# rules as bench-core. The incremental grid benchmark has a 0-alloc
# baseline, so with GATE set any allocation on the fast path fails CI.
bench-session:
	$(GO) test -run xxx -bench BenchmarkSession -benchmem -benchtime $(BENCHTIME) ./internal/service/ > bench-session.out
	$(GO) run ./cmd/benchmerge -out BENCH_session.json $(if $(GATE),-gate $(GATE)) < bench-session.out
	rm -f bench-session.out

# Durable-store benchmarks (sync append latency p50/p99 and fsyncs/op
# across group-commit batch sizes, plus cold journal replay), merged
# into the committed trend file BENCH_store.json under the same
# baseline/gate rules as bench-core. The fsyncs/op sweep is the tuning
# evidence behind the -store-batch / -store-max-wait defaults.
bench-store:
	$(GO) test -run xxx -bench BenchmarkStore -benchmem -benchtime $(BENCHTIME) ./internal/store/ > bench-store.out
	$(GO) run ./cmd/benchmerge -out BENCH_store.json $(if $(GATE),-gate $(GATE)) < bench-store.out
	rm -f bench-store.out

# Partitioned-placement benchmarks (first-fit/worst-fit/balance over
# m in {2,4,8,16} processors, cold and warm cache — the warm rows carry
# the per-bin cache hit share in the hits/check metric), merged into the
# committed trend file BENCH_partition.json under the same baseline/gate
# rules as bench-core.
bench-partition:
	$(GO) test -run xxx -bench . -benchmem -benchtime $(BENCHTIME) ./internal/partition/ > bench-partition.out
	$(GO) run ./cmd/benchmerge -out BENCH_partition.json $(if $(GATE),-gate $(GATE)) < bench-partition.out
	rm -f bench-partition.out

# Cluster benchmarks: 2 edfd replicas behind edfproxy vs a single direct
# edfd, as machine-readable test2json events in the committed trend file
# BENCH_cluster.json. The output lands in a temp file first so a failed
# benchmark run cannot clobber the committed numbers. CI smokes the suite
# with CLUSTER_BENCHTIME=1x into a separate CLUSTER_BENCH_OUT for the
# same reason; the committed numbers use the defaults.
CLUSTER_BENCHTIME ?= 1s
CLUSTER_BENCH_OUT ?= BENCH_cluster.json
bench-cluster:
	$(GO) test -json -run xxx -bench BenchmarkCluster -benchtime $(CLUSTER_BENCHTIME) ./internal/cluster/ > bench-cluster.out
	mv bench-cluster.out $(CLUSTER_BENCH_OUT)

# Run the edfd feasibility daemon locally.
serve:
	$(GO) run ./cmd/edfd -addr :8080

# End-to-end smoke: build and start a real edfd, drive analyze, batch and
# session propose-batch with both workload models through the typed
# client, fail on any non-2xx.
smoke:
	$(GO) run ./cmd/edfsmoke

# Cluster smoke: 2 real edfd replicas behind a real edfproxy, the full
# protocol suite through the proxy plus ring-affinity, deterministic
# split/merge and aggregate-metrics checks.
smoke-cluster:
	$(GO) run ./cmd/edfsmoke -cluster 2

# Metrics-contract lint: boot real edfd replicas behind a real
# edfproxy, drive each metered path once, scrape every daemon's
# /metrics and validate the pages as Prometheus text exposition with
# the repo's own parser (no external deps): # TYPE before samples,
# family contiguity, histogram +Inf/_count consistency, label escaping
# and the edfd_/edfproxy_ family-name prefixes.
lint-metrics:
	$(GO) run ./cmd/edfpromlint

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	rm -f bench.out bench-core.out bench-session.out bench-store.out bench-partition.out bench-cluster.out BENCH_service.json
	$(GO) clean ./...
