GO ?= go

.PHONY: all build test bench bench-json bench-core serve smoke fmt vet clean

all: build test

build:
	$(GO) build ./...

test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/engine/ ./internal/service/...

bench:
	$(GO) test -bench . -benchmem -run xxx . | tee bench.out

# Service benchmarks as machine-readable test2json events (one smoke
# iteration per benchmark), for CI trend tracking.
bench-json:
	$(GO) test -json -bench . -benchtime 1x -run xxx ./internal/service/ > BENCH_service.json

# Core analyzer hot-path benchmarks, merged into the committed trend file
# BENCH_core.json (the first run freezes the baseline section; later runs
# only replace "current"). BENCHTIME trades precision for runtime. The
# test output lands in a temp file first so a benchmark failure aborts
# the recipe instead of being masked by the pipe.
BENCHTIME ?= 300ms
bench-core:
	$(GO) test -run xxx -bench . -benchmem -benchtime $(BENCHTIME) ./internal/core/ > bench-core.out
	$(GO) run ./cmd/benchmerge -out BENCH_core.json < bench-core.out
	rm -f bench-core.out

# Run the edfd feasibility daemon locally.
serve:
	$(GO) run ./cmd/edfd -addr :8080

# End-to-end smoke: build and start a real edfd, drive analyze, batch and
# session propose-batch with both workload models through the typed
# client, fail on any non-2xx.
smoke:
	$(GO) run ./cmd/edfsmoke

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	rm -f bench.out bench-core.out BENCH_service.json
	$(GO) clean ./...
