GO ?= go

.PHONY: all build test bench bench-json serve smoke fmt vet clean

all: build test

build:
	$(GO) build ./...

test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/engine/ ./internal/service/...

bench:
	$(GO) test -bench . -benchmem -run xxx . | tee bench.out

# Service benchmarks as machine-readable test2json events (one smoke
# iteration per benchmark), for CI trend tracking.
bench-json:
	$(GO) test -json -bench . -benchtime 1x -run xxx ./internal/service/ > BENCH_service.json

# Run the edfd feasibility daemon locally.
serve:
	$(GO) run ./cmd/edfd -addr :8080

# End-to-end smoke: build and start a real edfd, drive analyze, batch and
# session propose-batch with both workload models through the typed
# client, fail on any non-2xx.
smoke:
	$(GO) run ./cmd/edfsmoke

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	rm -f bench.out BENCH_service.json
	$(GO) clean ./...
