package edf_test

import (
	"context"
	"errors"
	"testing"

	edf "repro"
)

// TestAnalyzeBatchCancelledContext pins the facade contract the service's
// request-deadline path relies on: a batch under an already-cancelled
// context runs nothing, returns one result per job in order, and marks
// every job with the context error and an Undecided verdict.
func TestAnalyzeBatchCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sets := []edf.TaskSet{
		{{WCET: 2, Deadline: 8, Period: 10}},
		{{WCET: 3, Deadline: 15, Period: 15}},
	}
	analyzers, err := edf.ParseAnalyzers("devi,allapprox")
	if err != nil {
		t.Fatal(err)
	}
	results := edf.AnalyzeBatch(ctx, sets, analyzers, edf.Options{}, 4)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
		if r.Result.Verdict != edf.Undecided || r.Result.Iterations != 0 {
			t.Errorf("job %d: result %+v despite cancellation", i, r.Result)
		}
		if r.SetIndex != i/2 {
			t.Errorf("job %d: set index %d out of order", i, r.SetIndex)
		}
	}
}

// TestAnalyzeEventsNonEventAnalyzer pins the no-event-support contract:
// ok must be false and the verdict Undecided — the caller decides what to
// do, the facade must not guess.
func TestAnalyzeEventsNonEventAnalyzer(t *testing.T) {
	tasks := []edf.EventTask{{Stream: edf.PeriodicStream(10), WCET: 2, Deadline: 8}}
	for _, name := range []string{"qpa", "liu", "devi", "response"} {
		a, ok := edf.AnalyzerByName(name)
		if !ok {
			t.Fatalf("missing builtin %q", name)
		}
		res, ok := edf.AnalyzeEvents(a, tasks, edf.Options{})
		if ok {
			t.Errorf("%s claims event support", name)
		}
		if res.Verdict != edf.Undecided {
			t.Errorf("%s: verdict %v without event support, want undecided", name, res.Verdict)
		}
	}
}

// TestFingerprintFacade covers the facade helper: stable identity, option
// sensitivity, and refusal of non-addressable options.
func TestFingerprintFacade(t *testing.T) {
	ts := edf.TaskSet{
		{Name: "ctrl", WCET: 2, Deadline: 8, Period: 10},
		{Name: "io", WCET: 3, Deadline: 15, Period: 15},
	}
	fp1, ok := edf.Fingerprint(ts, "cascade", edf.Options{})
	if !ok || len(fp1) != 64 {
		t.Fatalf("Fingerprint = %q, %v", fp1, ok)
	}
	fp2, _ := edf.Fingerprint(ts, "cascade", edf.Options{})
	if fp1 != fp2 {
		t.Error("fingerprint not deterministic")
	}
	if fp, _ := edf.Fingerprint(ts, "qpa", edf.Options{}); fp == fp1 {
		t.Error("analyzer not part of the identity")
	}
	if fp, _ := edf.Fingerprint(ts, "cascade", edf.Options{MaxLevel: 4}); fp == fp1 {
		t.Error("options not part of the identity")
	}
	if _, ok := edf.Fingerprint(ts, "cascade", edf.Options{
		Blocking: func(int64) int64 { return 0 },
	}); ok {
		t.Error("blocking options must not be content-addressable")
	}
}
