package edf

import (
	"repro/internal/core"
	"repro/internal/eventstream"
)

// EventElement is one event stream element (cycle, offset).
type EventElement = eventstream.Element

// EventStream is a Gresser event stream.
type EventStream = eventstream.Stream

// EventTask is an event-driven task: each event releases a job with the
// task's WCET and relative deadline.
type EventTask = eventstream.Task

// LoadEventTasks reads an event-driven task set from a JSON file.
func LoadEventTasks(path string) ([]EventTask, string, error) { return eventstream.LoadFile(path) }

// SaveEventTasks writes an event-driven task set to a JSON file.
func SaveEventTasks(path, name string, tasks []EventTask) error {
	return eventstream.SaveFile(path, name, tasks)
}

// PeriodicStream returns the event stream of a strictly periodic
// activation.
func PeriodicStream(period int64) EventStream { return eventstream.Periodic(period) }

// BurstStream returns a periodically repeating burst: count events spaced
// by spacing, repeating every period.
func BurstStream(period int64, count int, spacing int64) EventStream {
	return eventstream.Burst(period, count, spacing)
}

// EventProcessorDemand runs the exact processor demand test on event-driven
// tasks.
func EventProcessorDemand(tasks []EventTask, opt Options) Result {
	return core.ProcessorDemandSources(eventstream.Sources(tasks), opt)
}

// EventSuperPos runs the superposition approximation on event-driven tasks.
func EventSuperPos(tasks []EventTask, level int64, opt Options) Result {
	return core.SuperPosSources(eventstream.Sources(tasks), level, opt)
}

// EventDynamicError runs the dynamic error test on event-driven tasks.
// The total utilization must stay below 1 (sources carry no hyperperiod
// fallback for U == 1).
func EventDynamicError(tasks []EventTask, opt Options) Result {
	return core.DynamicErrorSources(eventstream.Sources(tasks), 0, opt)
}

// EventAllApprox runs the all-approximated test on event-driven tasks.
// The total utilization must stay below 1.
func EventAllApprox(tasks []EventTask, opt Options) Result {
	return core.AllApproxSources(eventstream.Sources(tasks), 0, opt)
}
