package edf

import (
	"context"

	"repro/internal/engine"
	"repro/internal/workload"
)

// Workload is the polymorphic task set shared by the engine, the edfd
// wire API and the CLI tools: either a sporadic task set or a Gresser
// event-stream task set, discriminated by Model. On the wire it is
// {"model": "sporadic"|"events", "tasks": [...]}, with a missing model
// meaning sporadic so pre-workload payloads keep parsing.
type Workload = workload.Workload

// WorkloadModel discriminates the activation model of a Workload.
type WorkloadModel = workload.Model

// Workload models.
const (
	WorkloadSporadic = workload.Sporadic
	WorkloadEvents   = workload.Events
)

// WorkloadTask is one task under either model — the element type of the
// polymorphic propose endpoints.
type WorkloadTask = workload.Task

// SporadicWorkload wraps a sporadic task set.
func SporadicWorkload(ts TaskSet) Workload { return workload.NewSporadic(ts) }

// EventWorkload wraps an event-driven task set.
func EventWorkload(tasks []EventTask) Workload { return workload.NewEvents(tasks) }

// SporadicWorkloadTask wraps a sporadic task for a proposal.
func SporadicWorkloadTask(t Task) WorkloadTask { return workload.SporadicTask(t) }

// EventWorkloadTask wraps an event-driven task for a proposal.
func EventWorkloadTask(t EventTask) WorkloadTask { return workload.EventTask(t) }

// EventsUnsupportedError reports that an analyzer without event-stream
// support was asked to analyze an event workload.
type EventsUnsupportedError = engine.EventsUnsupportedError

// AnalyzeWorkload runs an analyzer on a workload, dispatching to the
// matching entry point by model. An event workload on an analyzer
// without event support fails with an *EventsUnsupportedError.
func AnalyzeWorkload(a Analyzer, wl Workload, opt Options) (Result, error) {
	return engine.AnalyzeWorkload(a, wl, opt)
}

// AnalyzeWorkloads fans the (workload x analyzer) cross product out over
// the parallel batch runner — the workload-polymorphic counterpart of
// AnalyzeBatch, with identical ordering and cancellation semantics. Jobs
// pairing an event workload with a non-event analyzer report an
// *EventsUnsupportedError in their Err field.
func AnalyzeWorkloads(ctx context.Context, wls []Workload, analyzers []Analyzer, opt Options, workers int) []BatchResult {
	return engine.Run(ctx, engine.BatchWorkloads(wls, analyzers, opt), engine.RunOptions{Workers: workers})
}

// WorkloadFingerprint is the workload-polymorphic content address: the
// same contract as Fingerprint, with sporadic and event workloads hashed
// into disjoint domains so their cached results can never alias. Sporadic
// workloads produce exactly the fingerprint Fingerprint does.
func WorkloadFingerprint(wl Workload, analyzer string, opt Options) (fp string, ok bool) {
	return engine.WorkloadFingerprint(wl, analyzer, opt)
}
