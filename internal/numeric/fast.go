package numeric

import (
	"math"
	"math/big"
	"math/bits"
)

// Fast is the default exact Scalar implementation: a rational with int64
// numerator and denominator, using 128-bit intermediate products
// (math/bits.Mul64/Div64) to detect overflow, and transparently promoting
// to a big.Rat when a value no longer fits. Every operation is exact, so
// Fast and Rat always agree bit-for-bit; Fast merely avoids the per-op
// heap allocations of math/big as long as the numbers stay in range —
// which they do for realistic task parameters — and returns to the int64
// representation as soon as an intermediate result fits again.
//
// The zero value is the number zero. Values are immutable.
type Fast struct {
	// num/den is the value while br == nil; den > 0, except in the zero
	// value where both are 0 (meaning 0/1).
	num, den int64
	// br, when non-nil, holds the promoted value; num/den are ignored.
	br *big.Rat
}

var _ Scalar[Fast] = Fast{}

// NewFast returns the rational num/den. den must be non-zero; a negative
// den is normalized away.
func NewFast(num, den int64) Fast {
	if den == 0 {
		panic("numeric: NewFast with zero denominator")
	}
	if den < 0 {
		if num == math.MinInt64 || den == math.MinInt64 {
			return Fast{br: big.NewRat(num, den)}
		}
		num, den = -num, -den
	}
	return reduceFast(num, den)
}

// FastFromRat converts an exact big.Rat, demoting to the int64
// representation when it fits.
func FastFromRat(r *big.Rat) Fast {
	if r.Num().IsInt64() && r.Denom().IsInt64() {
		return Fast{num: r.Num().Int64(), den: r.Denom().Int64()}
	}
	return Fast{br: new(big.Rat).Set(r)}
}

// frac returns the value as num/den with den > 0 (normalizing the zero
// value). Only valid while not promoted.
func (s Fast) frac() (num, den int64) {
	if s.den == 0 {
		return 0, 1
	}
	return s.num, s.den
}

// rat renders the value as a big.Rat without copying a promoted one; the
// caller must not mutate the result.
func (s Fast) rat() *big.Rat {
	if s.br != nil {
		return s.br
	}
	n, d := s.frac()
	return big.NewRat(n, d)
}

// Rat returns the value as a fresh big.Rat the caller owns.
func (s Fast) Rat() *big.Rat {
	if s.br != nil {
		return new(big.Rat).Set(s.br)
	}
	n, d := s.frac()
	return big.NewRat(n, d)
}

// Promoted reports whether the value is currently carried by a big.Rat —
// i.e. the int64 fast path overflowed somewhere upstream. Exposed for the
// overflow-fallback tests.
func (s Fast) Promoted() bool { return s.br != nil }

// demoted wraps a big.Rat result, returning to the int64 representation
// when the normalized value fits again.
func demoted(r *big.Rat) Fast {
	if r.Num().IsInt64() && r.Denom().IsInt64() {
		return Fast{num: r.Num().Int64(), den: r.Denom().Int64()}
	}
	return Fast{br: r}
}

// reduceFast returns num/den in lowest terms; den must be positive.
func reduceFast(num, den int64) Fast {
	if num == 0 {
		return Fast{num: 0, den: 1}
	}
	if g := GCD(num, den); g > 1 {
		num, den = num/g, den/g
	}
	return Fast{num: num, den: den}
}

// mulInt64 returns a*b and whether the product fits in int64, detected
// through the 128-bit product of math/bits.Mul64. Magnitude MinInt64 is
// conservatively treated as overflow.
func mulInt64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		return 0, false
	}
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(absInt64(a)), uint64(absInt64(b))
	hi, lo := bits.Mul64(ua, ub)
	if hi != 0 || lo > math.MaxInt64 {
		return 0, false
	}
	if neg {
		return -int64(lo), true
	}
	return int64(lo), true
}

// addInt64 returns a+b and whether the sum fits in int64.
func addInt64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// cmp128 compares a*b with c*d exactly through 128-bit products.
func cmp128(a, b, c, d int64) int {
	sl := sign64(a) * sign64(b)
	sr := sign64(c) * sign64(d)
	if sl != sr {
		if sl < sr {
			return -1
		}
		return 1
	}
	if sl == 0 {
		return 0
	}
	lhi, llo := bits.Mul64(uint64(absInt64(a)), uint64(absInt64(b)))
	rhi, rlo := bits.Mul64(uint64(absInt64(c)), uint64(absInt64(d)))
	cmp := 0
	switch {
	case lhi != rhi:
		if lhi < rhi {
			cmp = -1
		} else {
			cmp = 1
		}
	case llo != rlo:
		if llo < rlo {
			cmp = -1
		} else {
			cmp = 1
		}
	}
	return cmp * sl
}

func sign64(v int64) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	default:
		return 0
	}
}

// addFrac returns s + n/d for d > 0, promoting on overflow.
func (s Fast) addFrac(n, d int64) Fast {
	if s.br != nil {
		return demoted(new(big.Rat).Add(s.br, big.NewRat(n, d)))
	}
	a, b := s.frac()
	g := GCD(b, d)
	db, bg := d/g, b/g
	if den, ok := mulInt64(b, db); ok {
		if t1, ok := mulInt64(a, db); ok {
			if t2, ok := mulInt64(n, bg); ok {
				if num, ok := addInt64(t1, t2); ok {
					return reduceFast(num, den)
				}
			}
		}
	}
	// An intermediate overflowed; redo in big (the normalized result may
	// still fit, in which case demoted returns to the fast path).
	r := new(big.Rat).Add(big.NewRat(a, b), big.NewRat(n, d))
	return demoted(r)
}

// Add returns s + o.
func (s Fast) Add(o Fast) Fast {
	if o.br != nil {
		return demoted(new(big.Rat).Add(s.rat(), o.br))
	}
	n, d := o.frac()
	return s.addFrac(n, d)
}

// AddInt returns s + v.
func (s Fast) AddInt(v int64) Fast { return s.addFrac(v, 1) }

// AddRat returns s + num/den. den must be positive.
func (s Fast) AddRat(num, den int64) Fast { return s.addFrac(num, den) }

// SubRat returns s - num/den. den must be positive.
func (s Fast) SubRat(num, den int64) Fast {
	if num == math.MinInt64 {
		return demoted(new(big.Rat).Sub(s.rat(), big.NewRat(num, den)))
	}
	return s.addFrac(-num, den)
}

// Sub returns s - o.
func (s Fast) Sub(o Fast) Fast {
	if o.br != nil {
		return demoted(new(big.Rat).Sub(s.rat(), o.br))
	}
	n, d := o.frac()
	if n == math.MinInt64 {
		return demoted(new(big.Rat).Sub(s.rat(), big.NewRat(n, d)))
	}
	return s.addFrac(-n, d)
}

// AddScaled returns s + u*dt.
func (s Fast) AddScaled(u Fast, dt int64) Fast {
	if u.br != nil {
		prod := new(big.Rat).Mul(u.br, big.NewRat(dt, 1))
		return demoted(prod.Add(prod, s.rat()))
	}
	n, d := u.frac()
	if c, ok := mulInt64(n, dt); ok {
		return s.addFrac(c, d)
	}
	prod := new(big.Rat).Mul(big.NewRat(n, d), big.NewRat(dt, 1))
	return demoted(prod.Add(prod, s.rat()))
}

// MulInt returns s * v.
func (s Fast) MulInt(v int64) Fast {
	if s.br != nil {
		return demoted(new(big.Rat).Mul(s.br, big.NewRat(v, 1)))
	}
	n, d := s.frac()
	// Reduce v against the denominator first so e.g. (C/T)·T stays exact
	// in int64 even for large periods.
	if g := GCD(v, d); g > 1 {
		v, d = v/g, d/g
	}
	if num, ok := mulInt64(n, v); ok {
		return reduceFast(num, d)
	}
	return demoted(new(big.Rat).Mul(big.NewRat(n, d), big.NewRat(v, 1)))
}

// CmpInt compares s with the integer v exactly.
func (s Fast) CmpInt(v int64) int {
	if s.br != nil {
		return s.br.Cmp(big.NewRat(v, 1))
	}
	n, d := s.frac()
	return cmp128(n, 1, v, d)
}

// Cmp compares s with o exactly.
func (s Fast) Cmp(o Fast) int {
	if s.br != nil || o.br != nil {
		return s.rat().Cmp(o.rat())
	}
	a, b := s.frac()
	c, d := o.frac()
	return cmp128(a, d, c, b)
}

// Sign returns -1, 0 or +1.
func (s Fast) Sign() int {
	if s.br != nil {
		return s.br.Sign()
	}
	return sign64(s.num)
}

// Float returns the value as float64 (possibly rounded).
func (s Fast) Float() float64 {
	if s.br != nil {
		f, _ := s.br.Float64()
		return f
	}
	n, d := s.frac()
	return float64(n) / float64(d)
}

// CeilInt64 returns ceil(s) for s >= 0, and whether the result fits in
// int64. It is QuoCeil by one without the division setup — the rounding
// step of the incremental admission state, which turns exact rational
// demand values into conservative integer slack floors.
func (s Fast) CeilInt64() (int64, bool) {
	if s.br != nil {
		return ceilRatInt64(s.br)
	}
	n, d := s.frac()
	if n < 0 {
		return 0, false
	}
	q := n / d
	if n%d != 0 {
		// d >= 2 here, so q <= n/2 and q+1 cannot overflow.
		q++
	}
	return q, true
}

// ceilRatInt64 is the arbitrary-precision path of CeilInt64.
func ceilRatInt64(r *big.Rat) (int64, bool) {
	if r.Sign() < 0 {
		return 0, false
	}
	num := new(big.Int).Set(r.Num())
	den := r.Denom()
	num.Add(num, new(big.Int).Sub(den, big.NewInt(1)))
	num.Div(num, den)
	if !num.IsInt64() {
		return 0, false
	}
	return num.Int64(), true
}

// QuoCeil returns ceil(s/o) for s >= 0 and o > 0, and whether the result
// fits in int64. The 128-bit numerator path divides through
// math/bits.Div64, so the quotient is exact even when the cross products
// exceed int64.
func (s Fast) QuoCeil(o Fast) (int64, bool) {
	if s.br != nil || o.br != nil {
		return quoCeilBig(s.rat(), o.rat())
	}
	a, b := s.frac()
	c, d := o.frac()
	if a < 0 || c <= 0 {
		return quoCeilBig(s.rat(), o.rat())
	}
	den, ok := mulInt64(b, c)
	if !ok {
		return quoCeilBig(s.rat(), o.rat())
	}
	hi, lo := bits.Mul64(uint64(a), uint64(d))
	if hi >= uint64(den) {
		// Quotient needs 65+ bits: cannot fit in int64.
		return 0, false
	}
	q, r := bits.Div64(hi, lo, uint64(den))
	if r > 0 {
		if q >= math.MaxUint64 {
			// q+1 would wrap; the ceiling cannot fit in int64 anyway.
			return 0, false
		}
		q++
	}
	if q > math.MaxInt64 {
		return 0, false
	}
	return int64(q), true
}

// quoCeilBig is the arbitrary-precision path of QuoCeil.
func quoCeilBig(s, o *big.Rat) (int64, bool) {
	q := new(big.Rat).Quo(s, o)
	if q.Sign() < 0 {
		return 0, false
	}
	num := new(big.Int).Set(q.Num())
	den := q.Denom()
	num.Add(num, new(big.Int).Sub(den, big.NewInt(1)))
	num.Div(num, den)
	if !num.IsInt64() {
		return 0, false
	}
	return num.Int64(), true
}
