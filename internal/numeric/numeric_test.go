package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {17, 13, 1},
		{-12, 18, 6}, {12, -18, 6}, {1, 1, 1}, {100, 100, 100},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCM(t *testing.T) {
	cases := []struct {
		a, b, want int64
		ok         bool
	}{
		{0, 5, 0, true}, {4, 6, 12, true}, {7, 13, 91, true},
		{1 << 40, 1 << 40, 1 << 40, true},
		{math.MaxInt64, 2, 0, false},
	}
	for _, c := range cases {
		got, ok := LCM(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("LCM(%d,%d) = %d,%v want %d,%v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestGCDDividesBoth(t *testing.T) {
	f := func(a, b int64) bool {
		a %= 1 << 30
		b %= 1 << 30
		g := GCD(a, b)
		if g == 0 {
			return a == 0 && b == 0
		}
		return a%g == 0 && b%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAddChecked(t *testing.T) {
	if v, ok := MulChecked(1<<32, 1<<32); ok {
		t.Errorf("MulChecked(2^32,2^32) = %d, want overflow", v)
	}
	if v, ok := MulChecked(1<<31, 1<<31); !ok || v != 1<<62 {
		t.Errorf("MulChecked(2^31,2^31) = %d,%v, want 2^62", v, ok)
	}
	if v, ok := MulChecked(3, 7); !ok || v != 21 {
		t.Errorf("MulChecked(3,7) = %d,%v", v, ok)
	}
	if v, ok := AddChecked(math.MaxInt64, 1); ok {
		t.Errorf("AddChecked(max,1) = %d, want overflow", v)
	}
	if v, ok := AddChecked(40, 2); !ok || v != 42 {
		t.Errorf("AddChecked(40,2) = %d,%v", v, ok)
	}
}

func TestCeilFloorDiv(t *testing.T) {
	cases := []struct{ a, b, ceil, floor int64 }{
		{0, 5, 0, 0}, {1, 5, 1, 0}, {5, 5, 1, 1}, {6, 5, 2, 1},
		{-1, 5, 0, -1}, {-5, 5, -1, -1}, {-6, 5, -1, -2},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.floor {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if c.a >= 0 {
			if got := CeilDiv(c.a, c.b); got != c.ceil {
				t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
			}
		}
	}
}

// scalarOps exercises one Scalar implementation through a random op
// sequence and returns the final float rendering.
func scalarOps[S Scalar[S]](zero S, rng *rand.Rand) float64 {
	v := zero
	u := zero.AddRat(1+rng.Int63n(20), 1+rng.Int63n(20))
	for range 50 {
		switch rng.Intn(5) {
		case 0:
			v = v.AddInt(rng.Int63n(100))
		case 1:
			v = v.AddRat(rng.Int63n(50), 1+rng.Int63n(30))
		case 2:
			v = v.SubRat(rng.Int63n(50), 1+rng.Int63n(30))
		case 3:
			v = v.AddScaled(u, rng.Int63n(40))
		case 4:
			v = v.Add(zero.AddRat(rng.Int63n(9), 3))
		}
	}
	return v.Float()
}

// TestScalarModesAgree drives identical op sequences through F64 and Rat
// and requires the results to match within float tolerance.
func TestScalarModesAgree(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		f := scalarOps(F64(0), rand.New(rand.NewSource(seed)))
		r := scalarOps(Rat{}, rand.New(rand.NewSource(seed)))
		if math.Abs(f-r) > 1e-6*math.Max(1, math.Abs(r)) {
			t.Fatalf("seed %d: float=%v exact=%v", seed, f, r)
		}
	}
}

func TestScalarCmpInt(t *testing.T) {
	r := Rat{}.AddRat(7, 2) // 3.5
	if got := r.CmpInt(3); got != 1 {
		t.Errorf("Rat 3.5 cmp 3 = %d, want 1", got)
	}
	if got := r.CmpInt(4); got != -1 {
		t.Errorf("Rat 3.5 cmp 4 = %d, want -1", got)
	}
	if got := (Rat{}).AddInt(5).CmpInt(5); got != 0 {
		t.Errorf("Rat 5 cmp 5 = %d, want 0", got)
	}

	f := F64(3.5)
	if got := f.CmpInt(3); got != 1 {
		t.Errorf("F64 3.5 cmp 3 = %d, want 1", got)
	}
	// Values inside the tolerance band compare equal.
	g := F64(5).Add(F64(1e-12))
	if got := g.CmpInt(5); got != 0 {
		t.Errorf("F64 5+1e-12 cmp 5 = %d, want 0", got)
	}
}

func TestRatZeroValueUsable(t *testing.T) {
	var z Rat
	if got := z.CmpInt(0); got != 0 {
		t.Fatalf("zero Rat cmp 0 = %d", got)
	}
	if got := z.AddInt(3).CmpInt(3); got != 0 {
		t.Fatalf("zero Rat + 3 != 3")
	}
	// The shared zero must not be mutated by operations.
	_ = z.AddRat(1, 2)
	if got := z.CmpInt(0); got != 0 {
		t.Fatalf("zero Rat mutated by AddRat")
	}
}
