package numeric

import "math"

// MaxInt64 re-exports math.MaxInt64 so callers of the demand package do not
// need to import math for the "no further deadline" sentinel.
const MaxInt64 = math.MaxInt64

// GCD returns the greatest common divisor of a and b. GCD(0,0) is 0.
// Negative inputs are treated by absolute value.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b and reports whether the
// computation stayed within int64. LCM of zero with anything is 0.
func LCM(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	g := GCD(a, b)
	return MulChecked(a/g, b)
}

// MulChecked returns a*b and reports whether the product fits in int64.
// Both operands must be non-negative.
func MulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// AddChecked returns a+b and reports whether the sum fits in int64.
// Both operands must be non-negative.
func AddChecked(a, b int64) (int64, bool) {
	s := a + b
	if s < a {
		return 0, false
	}
	return s, true
}

// SubChecked returns a-b and reports whether the difference fits in
// int64. Unlike AddChecked it is fully signed: either operand may be
// negative (the incremental admission state subtracts demand from slack
// floors that legitimately go negative on tight sessions).
func SubChecked(a, b int64) (int64, bool) {
	d := a - b
	if (b > 0 && d > a) || (b < 0 && d < a) {
		return 0, false
	}
	return d, true
}

// CeilDiv returns ceil(a/b) for non-negative a and positive b.
func CeilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// FloorDiv returns floor(a/b) handling negative a (b must be positive).
func FloorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
