package numeric

import (
	"math"
	"math/big"
)

// Scalar is the accumulator abstraction shared by the approximated
// feasibility tests (SuperPos, DynamicError, AllApprox). A Scalar value is
// immutable; every operation returns a new value. The zero value of an
// implementation must represent the number zero.
//
// The type parameter ties the interface to its implementation so the
// algorithms can be instantiated once per arithmetic mode without interface
// boxing on the hot path.
type Scalar[S any] interface {
	// Add returns s + o.
	Add(o S) S
	// AddInt returns s + v.
	AddInt(v int64) S
	// AddRat returns s + num/den. den must be positive.
	AddRat(num, den int64) S
	// SubRat returns s - num/den. den must be positive.
	SubRat(num, den int64) S
	// AddScaled returns s + u*dt, where u is another accumulator (the
	// ready-utilization slope) and dt an integer interval length.
	AddScaled(u S, dt int64) S
	// CmpInt compares s with the integer v and returns -1, 0 or +1.
	// Implementations may treat values within a small tolerance of v as
	// equal (see F64); exact implementations compare exactly.
	CmpInt(v int64) int
	// Float returns a float64 rendering for diagnostics.
	Float() float64
}

// f64Eps is the symmetric comparison tolerance of the float64 mode: values
// within eps*max(1,|v|) of the comparison point compare as equal. Equality
// is acceptance in every test (the conditions are "demand <= interval"), so
// the tolerance errs toward acceptance; rejections are exactly re-confirmed
// by the callers.
const f64Eps = 1e-9

// F64 is the fast float64 Scalar implementation.
type F64 float64

var _ Scalar[F64] = F64(0)

// Add returns s + o.
func (s F64) Add(o F64) F64 { return s + o }

// AddInt returns s + v.
func (s F64) AddInt(v int64) F64 { return s + F64(v) }

// AddRat returns s + num/den.
func (s F64) AddRat(num, den int64) F64 { return s + F64(float64(num)/float64(den)) }

// SubRat returns s - num/den.
func (s F64) SubRat(num, den int64) F64 { return s - F64(float64(num)/float64(den)) }

// AddScaled returns s + u*dt.
func (s F64) AddScaled(u F64, dt int64) F64 { return s + u*F64(dt) }

// CmpInt compares s with v under the package tolerance.
func (s F64) CmpInt(v int64) int {
	f := float64(v)
	eps := f64Eps * math.Max(1, math.Abs(f))
	switch {
	case float64(s) > f+eps:
		return 1
	case float64(s) < f-eps:
		return -1
	default:
		return 0
	}
}

// Float returns the value as float64.
func (s F64) Float() float64 { return float64(s) }

// Rat is the exact Scalar implementation backed by math/big.Rat. The zero
// value is the number zero. Values are immutable: operations allocate.
type Rat struct {
	r *big.Rat
}

var _ Scalar[Rat] = Rat{}

var ratZero = new(big.Rat)

func (s Rat) val() *big.Rat {
	if s.r == nil {
		return ratZero
	}
	return s.r
}

// NewRat returns the rational num/den as a Rat.
func NewRat(num, den int64) Rat { return Rat{big.NewRat(num, den)} }

// Add returns s + o.
func (s Rat) Add(o Rat) Rat { return Rat{new(big.Rat).Add(s.val(), o.val())} }

// AddInt returns s + v.
func (s Rat) AddInt(v int64) Rat { return Rat{new(big.Rat).Add(s.val(), big.NewRat(v, 1))} }

// AddRat returns s + num/den.
func (s Rat) AddRat(num, den int64) Rat {
	return Rat{new(big.Rat).Add(s.val(), big.NewRat(num, den))}
}

// SubRat returns s - num/den.
func (s Rat) SubRat(num, den int64) Rat {
	return Rat{new(big.Rat).Sub(s.val(), big.NewRat(num, den))}
}

// AddScaled returns s + u*dt.
func (s Rat) AddScaled(u Rat, dt int64) Rat {
	prod := new(big.Rat).Mul(u.val(), big.NewRat(dt, 1))
	return Rat{prod.Add(prod, s.val())}
}

// CmpInt compares s with v exactly.
func (s Rat) CmpInt(v int64) int { return s.val().Cmp(big.NewRat(v, 1)) }

// Float returns the value as float64 (possibly rounded).
func (s Rat) Float() float64 { f, _ := s.val().Float64(); return f }
