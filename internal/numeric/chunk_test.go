package numeric

import (
	"math/big"
	"math/rand"
	"testing"
)

// buildPlan builds a plan from dens or fails the test.
func buildPlan(t *testing.T, dens []int64) *Plan {
	t.Helper()
	var p Plan
	if !p.Build(dens) {
		t.Fatalf("plan build failed for %v", dens)
	}
	return &p
}

func TestPlanBuildGridCollapses(t *testing.T) {
	var p Plan
	if !p.Build([]int64{10, 20, 50, 100, 200, 500, 1000}) {
		t.Fatal("grid build failed")
	}
	if p.Chunks() != 1 {
		t.Fatalf("grid periods should fold into one chunk, got %d", p.Chunks())
	}
	if p.dens[0] != 1000 {
		t.Fatalf("chunk denominator = %d, want 1000", p.dens[0])
	}
}

func TestPlanBuildRejects(t *testing.T) {
	var p Plan
	if p.Build([]int64{0}) {
		t.Error("zero denominator accepted")
	}
	if p.Build([]int64{-3}) {
		t.Error("negative denominator accepted")
	}
	if p.Build([]int64{chunkDenCap + 1}) {
		t.Error("denominator above the cap accepted")
	}
	// MaxChunks+1 pairwise-coprime primes near 2^31: no two fit one chunk.
	dens := make([]int64, 0, MaxChunks+1)
	for v := int64(1<<31) + 11; len(dens) < MaxChunks+1; v += 2 {
		if big.NewInt(v).ProbablyPrime(20) {
			dens = append(dens, v)
		}
	}
	if p.Build(dens) {
		t.Error("more than MaxChunks coprime denominators accepted")
	}
	if p.Build(dens[:MaxChunks]) != true || p.Chunks() != MaxChunks {
		t.Error("exactly MaxChunks coprime denominators should fit")
	}
}

func TestPlanBuildIgnoresOne(t *testing.T) {
	var p Plan
	if !p.Build([]int64{1, 1, 7, 1}) {
		t.Fatal("build failed")
	}
	if p.Chunks() != 1 {
		t.Fatalf("chunks = %d, want 1", p.Chunks())
	}
}

// chunkedOps drives one random op sequence over a Chunked register and a
// big.Rat shadow, checking exact agreement after every op. dens feed the
// plan; rng drives the ops. Returns false if the plan does not build.
func chunkedOps(t *testing.T, dens []int64, rng *rand.Rand, steps int) {
	t.Helper()
	var p Plan
	if !p.Build(dens) {
		t.Fatalf("plan build failed for %v", dens)
	}
	var v, u, tmp Chunked
	v.Init(&p)
	u.Init(&p)
	tmp.Init(&p)
	ref := new(big.Rat)
	uref := new(big.Rat)
	den := func() int64 { return dens[rng.Intn(len(dens))] }
	check := func(op string) {
		t.Helper()
		if got := v.Rat(); got.Cmp(ref) != 0 {
			t.Fatalf("%s: chunked=%s ref=%s (plan %v)", op, got, ref, dens[:min(8, len(dens))])
		}
	}
	for i := 0; i < steps; i++ {
		switch rng.Intn(10) {
		case 0:
			x := rng.Int63n(1_000_000) - 500_000
			v.AddInt(x)
			ref.Add(ref, new(big.Rat).SetInt64(x))
			check("AddInt")
		case 1:
			d := den()
			n := rng.Int63n(2*d+10) - d
			v.AddRat(n, d)
			ref.Add(ref, big.NewRat(n, d))
			check("AddRat")
		case 2:
			d := den()
			n := rng.Int63n(2*d+10) - d
			v.SubRat(n, d)
			ref.Sub(ref, big.NewRat(n, d))
			check("SubRat")
		case 3:
			dt := rng.Int63n(1 << 40)
			v.AddScaled(&u, dt)
			prod := new(big.Rat).Mul(uref, new(big.Rat).SetInt64(dt))
			ref.Add(ref, prod)
			check("AddScaled")
		case 4:
			x := rng.Int63n(1<<20) - 1<<19
			v.MulInt(x)
			ref.Mul(ref, new(big.Rat).SetInt64(x))
			check("MulInt")
		case 5:
			v.Neg()
			ref.Neg(ref)
			check("Neg")
		case 6:
			// Mutate the second register (the AddScaled slope).
			d := den()
			n := rng.Int63n(d + 3)
			u.AddRat(n, d)
			uref.Add(uref, big.NewRat(n, d))
			v.Add(&u)
			ref.Add(ref, uref)
			check("Add")
		case 7:
			v.Sub(&u)
			ref.Sub(ref, uref)
			check("Sub")
		case 8:
			x := rng.Int63n(1_000_000) - 500_000
			if got, want := v.CmpInt(x), ref.Cmp(new(big.Rat).SetInt64(x)); got != want {
				t.Fatalf("CmpInt(%d) = %d, want %d (v=%s)", x, got, want, ref)
			}
			if got, want := v.Sign(), ref.Sign(); got != want {
				t.Fatalf("Sign = %d, want %d (v=%s)", got, want, ref)
			}
		case 9:
			if got, want := v.Cmp(&u), ref.Cmp(uref); got != want {
				t.Fatalf("Cmp = %d, want %d (v=%s u=%s)", got, want, ref, uref)
			}
		}
	}
}

func TestChunkedRandomOpsGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dens := []int64{10, 20, 50, 100, 1000, 2000, 5000}
	for trial := 0; trial < 30; trial++ {
		chunkedOps(t, dens, rng, 200)
	}
}

func TestChunkedRandomOpsSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		dens := make([]int64, 40)
		for i := range dens {
			dens[i] = 1 + rng.Int63n(10_000_000)
		}
		chunkedOps(t, dens, rng, 120)
	}
}

func TestChunkedRandomOpsCapBoundary(t *testing.T) {
	// Denominators engineered so single chunks sit just under the cap:
	// large primes multiplied pairwise approach 2^62.
	rng := rand.New(rand.NewSource(3))
	primes := []int64{2147483647, 2147483629, 2147483587, 2305843009} // ~2^31
	for trial := 0; trial < 20; trial++ {
		dens := make([]int64, 0, 12)
		for i := 0; i < 12; i++ {
			dens = append(dens, primes[rng.Intn(len(primes))])
		}
		chunkedOps(t, dens, rng, 100)
	}
}

func TestChunkedPromotionOnOverflow(t *testing.T) {
	p := buildPlan(t, []int64{7})
	var v Chunked
	v.Init(p)
	v.SetInt(MaxInt64 - 1)
	before := p.Promotions()
	v.AddInt(100) // overflows ip -> promotes
	if !v.Promoted() {
		t.Fatal("expected promotion on ip overflow")
	}
	if p.Promotions() != before+1 {
		t.Fatalf("promotions = %d, want %d", p.Promotions(), before+1)
	}
	want := new(big.Rat).SetInt64(MaxInt64 - 1)
	want.Add(want, new(big.Rat).SetInt64(100))
	if v.Rat().Cmp(want) != 0 {
		t.Fatalf("promoted value = %s, want %s", v.Rat(), want)
	}
	// Promoted registers keep computing exactly.
	v.AddRat(3, 7)
	want.Add(want, big.NewRat(3, 7))
	if v.Rat().Cmp(want) != 0 {
		t.Fatalf("promoted AddRat = %s, want %s", v.Rat(), want)
	}
}

func TestChunkedCmpIntTight(t *testing.T) {
	// Values an epsilon away from an integer exercise the digit recursion.
	p := buildPlan(t, []int64{999999937, 999999893}) // two large primes
	var v Chunked
	v.Init(p)
	v.AddRat(999999936, 999999937) // 1 - 1/p1
	v.AddRat(1, 999999893)         // + 1/p2
	// v = 1 - 1/p1 + 1/p2 < 1 (p2 < p1 means 1/p2 > 1/p1... p2 smaller
	// prime so 1/p2 > 1/p1: v > 1).
	want := new(big.Rat)
	want.Add(want, big.NewRat(999999936, 999999937))
	want.Add(want, big.NewRat(1, 999999893))
	if got := v.CmpInt(1); got != want.Cmp(new(big.Rat).SetInt64(1)) {
		t.Fatalf("CmpInt(1) = %d, want %d", got, want.Cmp(new(big.Rat).SetInt64(1)))
	}
	// Exact integer hit: 1/3 + 2/3 over one chunk... use same den.
	p2 := buildPlan(t, []int64{3})
	var w Chunked
	w.Init(p2)
	w.AddRat(1, 3)
	w.AddRat(2, 3)
	if got := w.CmpInt(1); got != 0 {
		t.Fatalf("1/3+2/3 CmpInt(1) = %d, want 0", got)
	}
	// Cross-chunk exact integer: 1/3 + 1/5 + 2/3 + 4/5 = 2 with coprime
	// chunks forced apart by a tiny cap is not constructible here (the
	// plan folds 3 and 5 into 15); split via primes too big to fold.
	const p1, q1 = int64(2305843009213693951), int64(4611686018427387847) // 2^61-1 (prime), < 2^62
	pp := buildPlan(t, []int64{p1, q1})
	if pp.Chunks() != 2 {
		t.Fatalf("expected 2 chunks, got %d", pp.Chunks())
	}
	var x Chunked
	x.Init(pp)
	x.AddRat(p1-1, p1)
	x.AddRat(1, p1)
	x.AddRat(q1-5, q1)
	x.AddRat(5, q1)
	if got := x.CmpInt(2); got != 0 {
		t.Fatalf("cross-chunk exact 2: CmpInt(2) = %d, want 0", got)
	}
	if got := x.CmpInt(3); got != -1 {
		t.Fatalf("CmpInt(3) = %d, want -1", got)
	}
}

func TestQuoCeilChunked(t *testing.T) {
	p := buildPlan(t, []int64{1000, 999999937})
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		var a, b, tmp Chunked
		a.Init(p)
		b.Init(p)
		tmp.Init(p)
		ar := new(big.Rat)
		br := new(big.Rat)
		a.AddInt(rng.Int63n(1 << 40))
		ar.SetInt64(a.ip)
		n := rng.Int63n(1000)
		a.AddRat(n, 1000)
		ar.Add(ar, big.NewRat(n, 1000))
		// b in (0, 1]: 1 - k/p.
		k := rng.Int63n(999999937)
		b.AddInt(1)
		b.SubRat(k, 999999937)
		br.SetInt64(1)
		br.Sub(br, big.NewRat(k, 999999937))
		got, ok := QuoCeilChunked(&a, &b, &tmp)
		want, wok := quoCeilBig(ar, br)
		if ok != wok || got != want {
			t.Fatalf("QuoCeil(%s / %s) = (%d,%v), want (%d,%v)", ar, br, got, ok, want, wok)
		}
	}
	// Zero numerator.
	var a, b, tmp Chunked
	a.Init(p)
	b.Init(p)
	tmp.Init(p)
	b.AddRat(1, 1000)
	if got, ok := QuoCeilChunked(&a, &b, &tmp); !ok || got != 0 {
		t.Fatalf("QuoCeil(0/x) = (%d,%v), want (0,true)", got, ok)
	}
}

func TestChunkedCopyFromIsolation(t *testing.T) {
	p := buildPlan(t, []int64{7})
	var v, w Chunked
	v.Init(p)
	w.Init(p)
	v.SetInt(MaxInt64 - 1)
	v.AddInt(10) // promote
	w.CopyFrom(&v)
	w.AddInt(5)
	diff := new(big.Rat).Sub(w.Rat(), v.Rat())
	if diff.Cmp(new(big.Rat).SetInt64(5)) != 0 {
		t.Fatalf("CopyFrom shares promoted storage: diff = %s", diff)
	}
}

// FuzzChunkedVsBigRat cross-checks a short op program on a Chunked
// register against big.Rat. The program bytes select ops and operands so
// the fuzzer can explore carry, borrow, promotion and comparison edges.
func FuzzChunkedVsBigRat(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, int64(1000), int64(999999937))
	f.Add([]byte{1, 1, 1, 8, 3, 9, 2, 2, 8}, int64(3), int64(5))
	f.Add([]byte{4, 4, 4, 8}, int64(2147483647), int64(2305843009))
	f.Fuzz(func(t *testing.T, prog []byte, d1, d2 int64) {
		if d1 <= 0 || d2 <= 0 || d1 > chunkDenCap || d2 > chunkDenCap {
			return
		}
		var p Plan
		if !p.Build([]int64{d1, d2}) {
			return
		}
		var v, u Chunked
		v.Init(&p)
		u.Init(&p)
		ref := new(big.Rat)
		uref := new(big.Rat)
		dens := []int64{d1, d2}
		for i, op := range prog {
			if i > 64 {
				break
			}
			x := int64(i)*7919 + int64(op)
			d := dens[int(op/16)%2]
			switch op % 8 {
			case 0:
				v.AddInt(x)
				ref.Add(ref, new(big.Rat).SetInt64(x))
			case 1:
				v.AddRat(x%d+1, d)
				ref.Add(ref, big.NewRat(x%d+1, d))
			case 2:
				v.SubRat(x%d+1, d)
				ref.Sub(ref, big.NewRat(x%d+1, d))
			case 3:
				v.AddScaled(&u, x)
				prod := new(big.Rat).Mul(uref, new(big.Rat).SetInt64(x))
				ref.Add(ref, prod)
			case 4:
				v.MulInt(x % 1000)
				ref.Mul(ref, new(big.Rat).SetInt64(x%1000))
			case 5:
				u.AddRat(x%d, d)
				uref.Add(uref, big.NewRat(x%d, d))
			case 6:
				v.Neg()
				ref.Neg(ref)
			case 7:
				if got, want := v.CmpInt(x%5), ref.Cmp(new(big.Rat).SetInt64(x%5)); got != want {
					t.Fatalf("op %d: CmpInt(%d) = %d, want %d (v=%s)", i, x%5, got, want, ref)
				}
			}
			if got := v.Rat(); got.Cmp(ref) != 0 {
				t.Fatalf("op %d (%d): chunked=%s ref=%s", i, op, got, ref)
			}
		}
	})
}

// FuzzFastVsBigRat cross-checks the Fast scalar against big.Rat the same
// way, covering the promotion/demotion boundary the spread workloads hit.
func FuzzFastVsBigRat(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, int64(1<<40), int64(999999937))
	f.Add([]byte{1, 1, 1, 1, 1, 1}, int64(2305843009213693951), int64(4611686018427387847))
	f.Fuzz(func(t *testing.T, prog []byte, d1, d2 int64) {
		if d1 <= 0 || d2 <= 0 {
			return
		}
		var v Fast
		ref := new(big.Rat)
		dens := []int64{d1, d2}
		for i, op := range prog {
			if i > 64 {
				break
			}
			x := int64(i)*104729 + int64(op)
			d := dens[int(op/16)%2]
			switch op % 6 {
			case 0:
				v = v.AddInt(x)
				ref.Add(ref, new(big.Rat).SetInt64(x))
			case 1:
				v = v.AddRat(x%d+1, d)
				ref.Add(ref, big.NewRat(x%d+1, d))
			case 2:
				v = v.SubRat(x%d+1, d)
				ref.Sub(ref, big.NewRat(x%d+1, d))
			case 3:
				v = v.AddScaled(NewFast(x%d, d), x%(1<<40))
				prod := new(big.Rat).Mul(big.NewRat(x%d, d), new(big.Rat).SetInt64(x%(1<<40)))
				ref.Add(ref, prod)
			case 4:
				v = v.MulInt(x % 100000)
				ref.Mul(ref, new(big.Rat).SetInt64(x%100000))
			case 5:
				if got, want := v.CmpInt(x%7), ref.Cmp(new(big.Rat).SetInt64(x%7)); got != want {
					t.Fatalf("op %d: CmpInt(%d) = %d, want %d (v=%s)", i, x%7, got, want, ref)
				}
			}
			if got := v.Rat(); got.Cmp(ref) != 0 {
				t.Fatalf("op %d (%d): fast=%s ref=%s", i, op, got, ref)
			}
		}
	})
}
