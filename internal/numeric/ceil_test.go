package numeric

import (
	"math"
	"math/big"
	"testing"
)

func TestCeilInt64(t *testing.T) {
	cases := []struct {
		num, den int64
		want     int64
		ok       bool
	}{
		{0, 1, 0, true},
		{7, 1, 7, true},
		{7, 2, 4, true},
		{6, 2, 3, true},
		{1, 3, 1, true},
		{math.MaxInt64, 1, math.MaxInt64, true},
		{math.MaxInt64, 2, math.MaxInt64/2 + 1, true},
		{-1, 2, 0, false},
	}
	for _, c := range cases {
		got, ok := NewFast(c.num, c.den).CeilInt64()
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("CeilInt64(%d/%d) = (%d,%v), want (%d,%v)", c.num, c.den, got, ok, c.want, c.ok)
		}
	}
	// Promoted path: a value beyond int64 must report !ok, one within
	// must round identically to the fast path.
	big1 := FastFromRat(new(big.Rat).SetFrac(
		new(big.Int).Lsh(big.NewInt(1), 70), big.NewInt(1)))
	if _, ok := big1.CeilInt64(); ok {
		t.Error("CeilInt64(2^70) reported ok")
	}
	big2 := FastFromRat(new(big.Rat).SetFrac(
		new(big.Int).Add(new(big.Int).Lsh(big.NewInt(1), 70), big.NewInt(1)),
		new(big.Int).Lsh(big.NewInt(1), 70)))
	if got, ok := big2.CeilInt64(); !ok || got != 2 {
		t.Errorf("CeilInt64((2^70+1)/2^70) = (%d,%v), want (2,true)", got, ok)
	}
}

func TestSubChecked(t *testing.T) {
	cases := []struct {
		a, b, want int64
		ok         bool
	}{
		{5, 3, 2, true},
		{3, 5, -2, true},
		{-5, 3, -8, true},
		{math.MinInt64, 1, 0, false},
		{math.MaxInt64, -1, 0, false},
		{math.MinInt64, math.MinInt64, 0, true},
		{0, math.MinInt64, 0, false},
		{-1, math.MinInt64, math.MaxInt64, true},
	}
	for _, c := range cases {
		got, ok := SubChecked(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("SubChecked(%d,%d) = (%d,%v), want (%d,%v)", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}
