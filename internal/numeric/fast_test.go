package numeric

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// applyOp applies the op-th randomized operation to both implementations
// and returns a description for failure messages.
func applyOp(rng *rand.Rand, f Fast, r Rat, huge bool) (Fast, Rat, string) {
	den := rng.Int63n(1000) + 1
	num := rng.Int63n(2000) - 1000
	dt := rng.Int63n(100000)
	if huge {
		// Magnitudes near int64 overflow with coprime-ish denominators.
		den = math.MaxInt64/2 - rng.Int63n(1000)
		num = math.MaxInt64/3 - rng.Int63n(1000)
		dt = rng.Int63n(math.MaxInt64 / 2)
	}
	switch rng.Intn(5) {
	case 0:
		return f.AddRat(num, den), r.AddRat(num, den), "AddRat"
	case 1:
		return f.SubRat(num, den), r.SubRat(num, den), "SubRat"
	case 2:
		return f.AddInt(num), r.AddInt(num), "AddInt"
	case 3:
		u := NewFast(num, den)
		ur := NewRat(num, den)
		return f.AddScaled(u, dt), r.AddScaled(ur, dt), "AddScaled"
	default:
		o := NewFast(num, den)
		or := NewRat(num, den)
		return f.Add(o), r.Add(or), "Add"
	}
}

// TestFastMatchesRat drives random op sequences through Fast and the
// big.Rat reference and requires exact agreement after every step.
func TestFastMatchesRat(t *testing.T) {
	for _, tc := range []struct {
		name string
		huge bool
	}{
		{"small", false},
		{"overflowing", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for seq := range 200 {
				f, r := Fast{}, Rat{}
				for step := range 30 {
					var op string
					f, r, op = applyOp(rng, f, r, tc.huge)
					if f.Rat().Cmp(r.val()) != 0 {
						t.Fatalf("seq %d step %d (%s): fast %s != rat %s",
							seq, step, op, f.Rat(), r.val())
					}
					v := rng.Int63n(2000) - 1000
					if got, want := f.CmpInt(v), r.CmpInt(v); got != want {
						t.Fatalf("seq %d step %d: CmpInt(%d) = %d, want %d", seq, step, v, got, want)
					}
				}
			}
		})
	}
}

// TestFastPromotionAndDemotion pins the fallback contract: denominators
// beyond int64 promote to big.Rat, and values demote again as soon as the
// normalized result fits.
func TestFastPromotionAndDemotion(t *testing.T) {
	// Two coprime denominators whose product exceeds int64.
	p1 := int64(math.MaxInt64/2 - 1)
	p2 := int64(math.MaxInt64/3 - 4)
	for GCD(p1, p2) != 1 {
		p2--
	}
	f := Fast{}.AddRat(1, p1)
	if f.Promoted() {
		t.Fatalf("single fraction should stay in int64")
	}
	f = f.AddRat(1, p2)
	if !f.Promoted() {
		t.Fatalf("lcm overflow must promote to big.Rat")
	}
	want := new(big.Rat).Add(big.NewRat(1, p1), big.NewRat(1, p2))
	if f.Rat().Cmp(want) != 0 {
		t.Fatalf("promoted value %s, want %s", f.Rat(), want)
	}
	f = f.SubRat(1, p2)
	if f.Promoted() {
		t.Fatalf("value fitting int64 again must demote")
	}
	if f.Rat().Cmp(big.NewRat(1, p1)) != 0 {
		t.Fatalf("demoted value %s, want 1/%d", f.Rat(), p1)
	}
}

// TestFastZeroValue checks the Scalar contract for the zero value.
func TestFastZeroValue(t *testing.T) {
	var f Fast
	if f.Sign() != 0 || f.CmpInt(0) != 0 || f.Float() != 0 {
		t.Fatalf("zero value is not the number zero: %+v", f)
	}
	if got := f.AddInt(7).CmpInt(7); got != 0 {
		t.Fatalf("0+7 != 7 (cmp %d)", got)
	}
}

// TestFastCmpAgainstBig cross-checks Cmp/CmpInt on values around the
// 128-bit comparison path.
func TestFastCmpAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := []int64{0, 1, -1, 2, math.MaxInt64, math.MaxInt64 - 1, math.MaxInt64 / 2}
	for range 2000 {
		a := NewFast(rng.Int63()-rng.Int63(), rng.Int63n(math.MaxInt64-1)+1)
		b := NewFast(rng.Int63()-rng.Int63(), rng.Int63n(math.MaxInt64-1)+1)
		if got, want := a.Cmp(b), a.Rat().Cmp(b.Rat()); got != want {
			t.Fatalf("Cmp(%s, %s) = %d, want %d", a.Rat(), b.Rat(), got, want)
		}
		v := vals[rng.Intn(len(vals))]
		if got, want := a.CmpInt(v), a.Rat().Cmp(big.NewRat(v, 1)); got != want {
			t.Fatalf("CmpInt(%s, %d) = %d, want %d", a.Rat(), v, got, want)
		}
	}
}

// TestFastQuoCeil compares QuoCeil with an arbitrary-precision reference
// over small, large and 128-bit-numerator operands.
func TestFastQuoCeil(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ceilRef := func(s, o *big.Rat) (int64, bool) {
		q := new(big.Rat).Quo(s, o)
		num := new(big.Int).Set(q.Num())
		den := q.Denom()
		num.Add(num, new(big.Int).Sub(den, big.NewInt(1)))
		num.Div(num, den)
		if !num.IsInt64() {
			return 0, false
		}
		return num.Int64(), true
	}
	for i := range 5000 {
		var s, o Fast
		if i%3 == 0 {
			// Large operands: the cross products exceed int64, forcing the
			// Mul64/Div64 128-bit path.
			s = NewFast(math.MaxInt64-rng.Int63n(1000), rng.Int63n(1000)+1)
			o = NewFast(rng.Int63n(1000)+1, math.MaxInt64-rng.Int63n(1000))
		} else {
			s = NewFast(rng.Int63n(1_000_000), rng.Int63n(1000)+1)
			o = NewFast(rng.Int63n(1000)+1, rng.Int63n(1000)+1)
		}
		got, ok := s.QuoCeil(o)
		want, wantOK := ceilRef(s.Rat(), o.Rat())
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("QuoCeil(%s / %s) = (%d, %v), want (%d, %v)",
				s.Rat(), o.Rat(), got, ok, want, wantOK)
		}
	}
}

// TestFastQuoCeilWrap pins the uint64-wrap regression: a 128-bit
// quotient of exactly 2^64-1 with a remainder must report ok=false, not
// wrap q++ to zero and claim (0, true).
func TestFastQuoCeilWrap(t *testing.T) {
	// s/o = 31 * 1190112520884487201 / 2 = (2^65 - 1) / 2:
	// Div64 yields q = 2^64-1, r = 1.
	s := NewFast(31, 2)
	o := NewFast(1, 1190112520884487201)
	got, ok := s.QuoCeil(o)
	wantV, wantOK := quoCeilBig(s.Rat(), o.Rat())
	if ok != wantOK || (ok && got != wantV) {
		t.Fatalf("QuoCeil = (%d, %v), big reference (%d, %v)", got, ok, wantV, wantOK)
	}
	if ok {
		t.Fatalf("a quotient beyond int64 must not report ok")
	}
}

// TestFastMulInt pins MulInt exactness including the reduce-first path
// that keeps (C/T)·T in int64.
func TestFastMulInt(t *testing.T) {
	big1 := int64(math.MaxInt64 - 57)
	f := NewFast(3, big1).MulInt(big1)
	if f.Promoted() || f.CmpInt(3) != 0 {
		t.Fatalf("(3/p)*p = %s promoted=%v, want 3 unpromoted", f.Rat(), f.Promoted())
	}
	rng := rand.New(rand.NewSource(3))
	for range 2000 {
		s := NewFast(rng.Int63n(1<<40)-1<<39, rng.Int63n(1<<20)+1)
		v := rng.Int63n(1 << 30)
		want := new(big.Rat).Mul(s.Rat(), big.NewRat(v, 1))
		if got := s.MulInt(v); got.Rat().Cmp(want) != 0 {
			t.Fatalf("MulInt(%s, %d) = %s, want %s", s.Rat(), v, got.Rat(), want)
		}
	}
}
