// Package numeric provides the scalar arithmetic used by the approximated
// feasibility tests.
//
// All task parameters (execution times, deadlines, periods) are integer time
// units, so the exact demand bound function dbf is pure int64 arithmetic.
// The superposition approximation however accumulates rational slopes C/T,
// which this package models behind the Scalar interface with two
// implementations:
//
//   - F64: float64 accumulators with a symmetric comparison tolerance.
//     Fast; used by the experiment harnesses. Rejections are re-confirmed
//     with exact integer arithmetic by the callers, so a "not feasible"
//     verdict is never a rounding artifact.
//   - Rat: math/big.Rat accumulators. Exact; the default for the public
//     library API.
//
// The package also contains overflow-checked int64 helpers (gcd, lcm,
// checked multiplication/addition) shared by the bounds and demand packages.
package numeric
