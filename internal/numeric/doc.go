// Package numeric provides the scalar arithmetic used by the approximated
// feasibility tests.
//
// All task parameters (execution times, deadlines, periods) are integer time
// units, so the exact demand bound function dbf is pure int64 arithmetic.
// The superposition approximation however accumulates rational slopes C/T,
// which this package models behind the Scalar interface:
//
//   - F64: float64 accumulators with a symmetric comparison tolerance.
//     Fast; used by the experiment harnesses. Rejections are re-confirmed
//     with exact integer arithmetic by the callers, so a "not feasible"
//     verdict is never a rounding artifact.
//   - Rat: math/big.Rat accumulators. Exact; the cross-checking reference.
//   - Fast: exact int64 numerator/denominator rationals with 128-bit
//     intermediate products, falling back to a big.Rat payload only while
//     a value cannot be represented in int64 and demoting back as soon as
//     it fits. Allocation-free while parameters stay in range.
//
// # Bounded-denominator chunked values
//
// Fast still degrades on wide period spreads: log-uniform periods across
// several decades make the running denominator lcm overflow int64 within
// a few accumulations, and from then on every Add pays a big.Rat
// allocation. Chunked removes that cliff for the analyzers' accumulator
// loops by bounding denominators up front instead of discovering
// overflow per operation.
//
// Plan.Build inspects the full set of source denominators before the
// walk starts and folds them greedily (first-fit) into at most MaxChunks
// chunk denominators, each the lcm of its members and each capped below
// 2^62. A Chunked value is then one int64 numerator per chunk over that
// fixed denominator vector: adding a slope touches exactly one chunk,
// comparisons against an integer bound cross-multiply chunk-by-chunk
// with 128-bit intermediates, and nothing allocates — regardless of how
// the periods are spread. The spread-period benchmark shapes that used
// to allocate thousands of big.Rats per analysis run at 0 allocs/op on
// this representation.
//
// Promotion is the escape hatch, not the common case. A Chunked value
// promotes to an embedded big.Rat only when a numerator overflows its
// chunk (Promoted reports it, and the owning Plan counts it); when
// Plan.Build cannot cover the denominators at all — more mutually
// incompatible periods than MaxChunks, e.g. many pairwise-coprime
// periods above 2^31 — the analysis falls back to Fast wholesale and
// the plan records one promotion per fallen-back call. Scratch owners
// surface that tally as ArithPromotions, which feeds the
// edfd_arith_promotions_total counter and per-stage trace attribution:
// a fleet where the counter moves is running workloads off the fast
// path, which is an observable capacity signal rather than a silent
// slowdown. DynamicError intentionally stays on the generic Scalar
// path: its error-term recurrence divides by reused intermediate
// values, which a fixed denominator vector cannot express.
//
// The package also contains overflow-checked int64 helpers (gcd, lcm,
// checked multiplication/addition) shared by the bounds and demand
// packages.
package numeric
