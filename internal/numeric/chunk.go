package numeric

import (
	"math"
	"math/big"
	"math/bits"
)

// MaxChunks bounds the number of chunk denominators a Plan may hold.
// Log-uniform period sets spanning 8 decades fold into ~20 chunks under
// the 2^62 cap, so 32 leaves comfortable headroom while keeping a Chunked
// value small enough to live in a Scratch register bank.
const MaxChunks = 32

// chunkDenCap bounds each chunk denominator. 2^62 leaves one bit of
// headroom below the int64 sign bit so a fractional numerator plus a
// same-chunk carry (< 2*cap) can never wrap.
const chunkDenCap = int64(1) << 62

// Plan is the per-workload denominator schedule of the bounded-denominator
// exact arithmetic: every denominator a computation will meet at ingest is
// folded (greedy first-fit) into one of at most MaxChunks chunk
// denominators, each an LCM capped at 2^62. A Chunked value then carries
// one fractional numerator per chunk and all arithmetic stays in int64
// with 128-bit intermediates — no math/big on the hot path. When the cap
// is genuinely exceeded the build fails and callers fall back to the Fast
// (int64 with big.Rat promotion) representation.
//
// A Plan serves one analysis at a time; values bound to it must not
// outlive a rebuild.
type Plan struct {
	dens [MaxChunks]int64
	n    int
	// promotions tallies how often values bound to this plan fell off the
	// chunked fast path onto math/big (see Chunked.promote).
	promotions uint64
}

// Build folds the given ingest denominators into chunk denominators and
// reports whether everything fit under the cap. On failure the plan is
// empty and unusable. Denominator 1 (integer contributions) needs no
// chunk; non-positive denominators fail the build. Building restarts the
// promotion tally: callers tracking totals across rebuilds fold the old
// count first.
func (p *Plan) Build(dens []int64) bool {
	p.n = 0
	p.promotions = 0
	for _, d := range dens {
		if d <= 0 {
			p.n = 0
			return false
		}
		if d == 1 {
			continue
		}
		placed := false
		for c := 0; c < p.n; c++ {
			if l, ok := LCM(p.dens[c], d); ok && l <= chunkDenCap {
				p.dens[c] = l
				placed = true
				break
			}
		}
		if !placed {
			if p.n == MaxChunks || d > chunkDenCap {
				p.n = 0
				return false
			}
			p.dens[p.n] = d
			p.n++
		}
	}
	return true
}

// Chunks returns the number of chunk denominators in the plan.
func (p *Plan) Chunks() int { return p.n }

// Promotions returns the number of fast-path exits recorded against this
// plan since it was built.
func (p *Plan) Promotions() uint64 { return p.promotions }

// chunkFor returns the chunk whose denominator den divides, or -1. Every
// denominator that went into Build divides some chunk by construction, as
// does any divisor of one (reduced fractions).
func (p *Plan) chunkFor(den int64) int {
	for c := 0; c < p.n; c++ {
		if p.dens[c]%den == 0 {
			return c
		}
	}
	return -1
}

// Chunked is a mutable exact rational bound to a Plan: an int64 integer
// part plus one fractional numerator per plan chunk, each kept in
// [0, chunk denominator). All operations are exact; when an intermediate
// genuinely exceeds the representation the value promotes to a big.Rat
// (tallied on the plan) and stays exact. Operations mutate the receiver —
// unlike Scalar implementations a Chunked is a register, not a value —
// which is what lets the hot loops run without copying the chunk array.
//
// The analyzers obtain their registers from the Scratch register bank
// (demand.Scratch.Arith), so steady-state analyses allocate nothing.
type Chunked struct {
	plan *Plan
	ip   int64 // integer part; the value is ip + Σ fr[c]/plan.dens[c]
	// br, when non-nil, carries the promoted value; ip/fr are then stale.
	br *big.Rat
	fr [MaxChunks]int64
}

// Init binds the register to a plan and zeroes it.
func (v *Chunked) Init(p *Plan) {
	v.plan = p
	v.ip = 0
	v.br = nil
	for c := range v.fr {
		v.fr[c] = 0
	}
}

// SetZero resets the value to zero, keeping the plan binding.
func (v *Chunked) SetZero() {
	v.ip = 0
	v.br = nil
	for c := 0; c < v.plan.n; c++ {
		v.fr[c] = 0
	}
}

// SetInt sets the value to the integer x.
func (v *Chunked) SetInt(x int64) {
	v.SetZero()
	v.ip = x
}

// CopyFrom makes v an independent copy of o (same plan).
func (v *Chunked) CopyFrom(o *Chunked) {
	*v = *o
	if o.br != nil {
		v.br = new(big.Rat).Set(o.br)
	}
}

// Promoted reports whether the value fell back to math/big.
func (v *Chunked) Promoted() bool { return v.br != nil }

// promote materializes the value as a big.Rat and switches the register
// to the promoted representation, tallying the exit on the plan.
func (v *Chunked) promote() *big.Rat {
	if v.br != nil {
		return v.br
	}
	r := new(big.Rat).SetInt64(v.ip)
	var t big.Rat
	for c := 0; c < v.plan.n; c++ {
		if v.fr[c] != 0 {
			t.SetFrac64(v.fr[c], v.plan.dens[c])
			r.Add(r, &t)
		}
	}
	v.br = r
	v.plan.promotions++
	return r
}

// Rat returns the value as a fresh big.Rat the caller owns.
func (v *Chunked) Rat() *big.Rat {
	if v.br != nil {
		return new(big.Rat).Set(v.br)
	}
	r := new(big.Rat).SetInt64(v.ip)
	var t big.Rat
	for c := 0; c < v.plan.n; c++ {
		if v.fr[c] != 0 {
			t.SetFrac64(v.fr[c], v.plan.dens[c])
			r.Add(r, &t)
		}
	}
	return r
}

// AddInt adds the integer x.
func (v *Chunked) AddInt(x int64) {
	if v.br != nil {
		v.br.Add(v.br, new(big.Rat).SetInt64(x))
		return
	}
	s, ok := addInt64(v.ip, x)
	if !ok {
		v.promote().Add(v.br, new(big.Rat).SetInt64(x))
		return
	}
	v.ip = s
}

// AddRat adds num/den (den > 0).
func (v *Chunked) AddRat(num, den int64) {
	if den == 1 {
		v.AddInt(num)
		return
	}
	if v.br != nil {
		v.br.Add(v.br, big.NewRat(num, den))
		return
	}
	c := v.plan.chunkFor(den)
	if c < 0 {
		v.promote().Add(v.br, big.NewRat(num, den))
		return
	}
	q, r := num/den, num%den
	if r < 0 {
		r += den
		q--
	}
	// r < den and mult = Q/den, so r*mult < Q <= 2^62: no overflow, and
	// the carry-adjusted sum stays below 2^63.
	nf := v.fr[c] + r*(v.plan.dens[c]/den)
	if nf >= v.plan.dens[c] {
		nf -= v.plan.dens[c]
		q++ // |q| < 2^63-1 here since r != 0 implies |num/den| < 2^63-1
	}
	nip, ok := addInt64(v.ip, q)
	if !ok {
		v.promote().Add(v.br, big.NewRat(num, den))
		return
	}
	v.ip = nip
	v.fr[c] = nf
}

// SubRat subtracts num/den (den > 0).
func (v *Chunked) SubRat(num, den int64) {
	if num == math.MinInt64 {
		v.promote().Sub(v.br, big.NewRat(num, den))
		return
	}
	v.AddRat(-num, den)
}

// Add adds another register bound to the same plan.
func (v *Chunked) Add(o *Chunked) {
	if v.br != nil || o.br != nil {
		r := v.promote()
		r.Add(r, o.ratView())
		return
	}
	// First pass read-only so a promotion sees an unmodified register.
	var carry int64
	for c := 0; c < v.plan.n; c++ {
		if v.fr[c]+o.fr[c] >= v.plan.dens[c] {
			carry++
		}
	}
	nip, ok := addInt64(v.ip, o.ip)
	if ok {
		nip, ok = addInt64(nip, carry)
	}
	if !ok {
		r := v.promote()
		r.Add(r, o.ratView())
		return
	}
	for c := 0; c < v.plan.n; c++ {
		nf := v.fr[c] + o.fr[c]
		if nf >= v.plan.dens[c] {
			nf -= v.plan.dens[c]
		}
		v.fr[c] = nf
	}
	v.ip = nip
}

// Sub subtracts another register bound to the same plan.
func (v *Chunked) Sub(o *Chunked) {
	if v.br != nil || o.br != nil {
		r := v.promote()
		r.Sub(r, o.ratView())
		return
	}
	var borrow int64
	for c := 0; c < v.plan.n; c++ {
		if v.fr[c]-o.fr[c] < 0 {
			borrow++
		}
	}
	nip, ok := SubChecked(v.ip, o.ip)
	if ok {
		nip, ok = SubChecked(nip, borrow)
	}
	if !ok {
		r := v.promote()
		r.Sub(r, o.ratView())
		return
	}
	for c := 0; c < v.plan.n; c++ {
		nf := v.fr[c] - o.fr[c]
		if nf < 0 {
			nf += v.plan.dens[c]
		}
		v.fr[c] = nf
	}
	v.ip = nip
}

// AddScaled adds u*dt for dt >= 0, the slope-advance step of the
// superposed demand accumulators. Per chunk the product u.fr[c]*dt is
// formed as a 128-bit value and reduced by one bits.Div64 — exact, and
// safe because fr < Q and dt < 2^64 keep the dividend's high word below
// the divisor.
func (v *Chunked) AddScaled(u *Chunked, dt int64) {
	if dt == 0 {
		return
	}
	if v.br != nil || u.br != nil || dt < 0 {
		r := v.promote()
		prod := new(big.Rat).Mul(u.ratView(), new(big.Rat).SetInt64(dt))
		r.Add(r, prod)
		return
	}
	ipAdd, ok := mulInt64(u.ip, dt)
	if !ok {
		v.addScaledBig(u, dt)
		return
	}
	var tmp [MaxChunks]int64
	var carry int64
	for c := 0; c < u.plan.n; c++ {
		if u.fr[c] == 0 {
			tmp[c] = v.fr[c]
			continue
		}
		den := uint64(u.plan.dens[c])
		hi, lo := bits.Mul64(uint64(u.fr[c]), uint64(dt))
		q, r := bits.Div64(hi, lo, den)
		nf := v.fr[c] + int64(r)
		if nf >= int64(den) {
			nf -= int64(den)
			q++ // q < dt <= 2^63-1, so q+1 cannot wrap
		}
		tmp[c] = nf
		carry, ok = addInt64(carry, int64(q))
		if !ok {
			v.addScaledBig(u, dt)
			return
		}
	}
	nip, ok := addInt64(v.ip, ipAdd)
	if ok {
		nip, ok = addInt64(nip, carry)
	}
	if !ok {
		v.addScaledBig(u, dt)
		return
	}
	v.ip = nip
	copy(v.fr[:v.plan.n], tmp[:v.plan.n])
}

// addScaledBig is the promoted slow path of AddScaled.
func (v *Chunked) addScaledBig(u *Chunked, dt int64) {
	r := v.promote()
	prod := new(big.Rat).Mul(u.ratView(), new(big.Rat).SetInt64(dt))
	r.Add(r, prod)
}

// MulInt multiplies by the integer x.
func (v *Chunked) MulInt(x int64) {
	if v.br != nil {
		v.br.Mul(v.br, new(big.Rat).SetInt64(x))
		return
	}
	if x == 0 {
		v.SetZero()
		return
	}
	neg := x < 0
	if neg {
		if x == math.MinInt64 {
			r := v.promote()
			r.Mul(r, new(big.Rat).SetInt64(x))
			return
		}
		x = -x
	}
	ipMul, ok := mulInt64(v.ip, x)
	if !ok {
		v.mulIntBig(x, neg)
		return
	}
	var tmp [MaxChunks]int64
	var carry int64
	for c := 0; c < v.plan.n; c++ {
		if v.fr[c] == 0 {
			tmp[c] = 0
			continue
		}
		den := uint64(v.plan.dens[c])
		hi, lo := bits.Mul64(uint64(v.fr[c]), uint64(x))
		q, r := bits.Div64(hi, lo, den)
		tmp[c] = int64(r)
		carry, ok = addInt64(carry, int64(q))
		if !ok {
			v.mulIntBig(x, neg)
			return
		}
	}
	nip, ok := addInt64(ipMul, carry)
	if !ok {
		v.mulIntBig(x, neg)
		return
	}
	v.ip = nip
	copy(v.fr[:v.plan.n], tmp[:v.plan.n])
	if neg {
		v.Neg()
	}
}

// mulIntBig is the promoted slow path of MulInt; x is the magnitude.
func (v *Chunked) mulIntBig(x int64, neg bool) {
	r := v.promote()
	m := new(big.Rat).SetInt64(x)
	if neg {
		m.Neg(m)
	}
	r.Mul(r, m)
}

// Neg negates the value in place: -(ip + f) = (-ip - m) + Σ (Q_c -
// fr[c])/Q_c over the m chunks with a nonzero numerator.
func (v *Chunked) Neg() {
	if v.br != nil {
		v.br.Neg(v.br)
		return
	}
	var m int64
	for c := 0; c < v.plan.n; c++ {
		if v.fr[c] != 0 {
			m++
		}
	}
	nip, ok := SubChecked(0, v.ip)
	if ok {
		nip, ok = SubChecked(nip, m)
	}
	if !ok {
		r := v.promote()
		r.Neg(r)
		return
	}
	for c := 0; c < v.plan.n; c++ {
		if v.fr[c] != 0 {
			v.fr[c] = v.plan.dens[c] - v.fr[c]
		}
	}
	v.ip = nip
}

// ratView renders the value as a big.Rat without forcing a promotion of
// the receiver; the caller must not mutate or retain the result.
func (v *Chunked) ratView() *big.Rat {
	if v.br != nil {
		return v.br
	}
	return v.Rat()
}

// CmpInt compares the value with the integer x and returns -1, 0 or +1.
// The fractional part f satisfies 0 <= f < n (one unit per chunk), so the
// integer part decides every comparison except a window of at most n-1
// integers, which the exact digit recursion settles.
func (v *Chunked) CmpInt(x int64) int {
	if v.br != nil {
		return v.br.Cmp(new(big.Rat).SetInt64(x))
	}
	r0, ok := SubChecked(x, v.ip)
	if !ok {
		// x - ip overflowed: the operands are astronomically far apart and
		// their order is decided by sign alone.
		if x > 0 {
			return -1
		}
		return 1
	}
	if r0 < 0 {
		return 1
	}
	if r0 == 0 {
		for c := 0; c < v.plan.n; c++ {
			if v.fr[c] != 0 {
				return 1
			}
		}
		return 0
	}
	if r0 >= int64(v.plan.n) {
		return -1
	}
	return v.cmpFracInt(uint64(r0))
}

// Cmp compares with another register bound to the same plan.
func (v *Chunked) Cmp(o *Chunked) int {
	if v.br != nil || o.br != nil {
		return v.ratView().Cmp(o.ratView())
	}
	// Compare the fractional-part difference against the integer gap.
	// f_v - f_o lies in (-n, n); gaps at least n are decided outright.
	gap, ok := SubChecked(o.ip, v.ip)
	if !ok {
		if o.ip > 0 {
			return -1
		}
		return 1
	}
	n := int64(v.plan.n)
	if gap >= n {
		return -1
	}
	if gap <= -n {
		return 1
	}
	// Rewrite the fractional difference chunk by chunk without going
	// negative: (fr_v - fr_o)/Q = a/Q - borrow with a = (fr_v + Q - fr_o)
	// mod Q and borrow 1 exactly when that sum stayed below Q. Then
	// v - o = Σ a[c]/Q_c - (gap + borrows), a single-sided comparison of a
	// chunk sum in [0, n) against an integer.
	var a [MaxChunks]uint64
	var borrows int64
	for c := 0; c < v.plan.n; c++ {
		a[c] = uint64(v.fr[c])
		if o.fr[c] != 0 {
			na := a[c] + uint64(v.plan.dens[c]) - uint64(o.fr[c])
			if na >= uint64(v.plan.dens[c]) {
				na -= uint64(v.plan.dens[c])
			} else {
				borrows++
			}
			a[c] = na
		}
	}
	t := gap + borrows
	// Σ a[c]/Q_c is in [0, n) and t may lie outside that window.
	if t < 0 {
		return 1
	}
	if t == 0 {
		for c := 0; c < v.plan.n; c++ {
			if a[c] != 0 {
				return 1
			}
		}
		return 0
	}
	if t >= n {
		return -1
	}
	return cmpDigits(&a, v.plan, uint64(t))
}

// cmpFracInt compares the fractional part Σ fr[c]/Q_c with the integer r,
// 1 <= r < n.
func (v *Chunked) cmpFracInt(r uint64) int {
	var a [MaxChunks]uint64
	for c := 0; c < v.plan.n; c++ {
		a[c] = uint64(v.fr[c])
	}
	return cmpDigits(&a, v.plan, r)
}

// cmpDigits exactly compares Σ a[c]/Q_c (each a[c] < Q_c, at most n terms)
// with the integer r in [1, n), allocation-free, by expanding the sum in
// base 2^64: per level each term yields a digit q_c = floor(a[c]*2^64/Q_c)
// and a residue, the digit sum is compared against the target, and only a
// sub-unit discrepancy recurses onto the residues. Distinct values differ
// by at least 1/lcm(Q_c) >= 2^-1984, so at most 32 levels decide; the cap
// is pure defense.
func cmpDigits(a *[MaxChunks]uint64, p *Plan, r uint64) int {
	for level := 0; level < 64; level++ {
		var sumHi, sumLo uint64
		anyRem := false
		for c := 0; c < p.n; c++ {
			if a[c] == 0 {
				continue
			}
			q, rem := bits.Div64(a[c], 0, uint64(p.dens[c]))
			a[c] = rem
			var carry uint64
			sumLo, carry = bits.Add64(sumLo, q, 0)
			sumHi += carry
			if rem != 0 {
				anyRem = true
			}
		}
		// Compare sum + (residue fraction in [0, n)) with r*2^64.
		if sumHi > r || (sumHi == r && sumLo > 0) {
			return 1
		}
		loD, borrow := bits.Sub64(0, sumLo, 0)
		hiD, _ := bits.Sub64(r-sumHi, 0, borrow)
		// delta = hiD*2^64 + loD = r*2^64 - sum >= 0.
		if hiD > 0 || loD >= MaxChunks {
			return -1 // residue fraction < n <= delta
		}
		if loD == 0 {
			if anyRem {
				return 1
			}
			return 0
		}
		if !anyRem {
			return -1
		}
		r = loD
	}
	return 0
}

// Sign returns -1, 0 or +1.
func (v *Chunked) Sign() int {
	if v.br != nil {
		return v.br.Sign()
	}
	return v.CmpInt(0)
}

// Float returns the value as float64 (possibly rounded).
func (v *Chunked) Float() float64 {
	if v.br != nil {
		f, _ := v.br.Float64()
		return f
	}
	f := float64(v.ip)
	for c := 0; c < v.plan.n; c++ {
		if v.fr[c] != 0 {
			f += float64(v.fr[c]) / float64(v.plan.dens[c])
		}
	}
	return f
}

// QuoCeilChunked returns ceil(a/b) for a >= 0 and b > 0 and whether the
// result fits in int64, using t as a scratch register (clobbered). The
// quotient is located by a float64 guess and certified by exact
// comparisons, so the result is exact and — promoted inputs aside —
// allocation-free.
func QuoCeilChunked(a, b, t *Chunked) (int64, bool) {
	if a.br != nil || b.br != nil {
		return quoCeilBig(a.ratView(), b.ratView())
	}
	if a.Sign() == 0 {
		return 0, true
	}
	// geB reports whether b*q >= a.
	geB := func(q int64) bool {
		t.CopyFrom(b)
		t.MulInt(q)
		return t.Cmp(a) >= 0
	}
	g := a.Float() / b.Float()
	if !(g < float64(int64(1)<<62)) {
		// The quotient flirts with the int64 range; settle it in big.
		return quoCeilBig(a.Rat(), b.Rat())
	}
	lo := int64(g) - 2
	if lo < 0 {
		lo = 0
	}
	hi := int64(g) + 2
	if geB(lo) {
		// The guess overshot: restart the bracket from zero (b*0 = 0 < a).
		hi, lo = lo, 0
	}
	for !geB(hi) {
		lo = hi
		if hi > (int64(1) << 61) {
			return quoCeilBig(a.Rat(), b.Rat())
		}
		hi *= 2
	}
	// Invariant: b*lo < a <= b*hi.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if geB(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}
