package obs

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

func TestRecorderEvictsOldest(t *testing.T) {
	r := NewRecorder(2)
	a := StartTrace("aa", "analyze")
	b := StartTrace("bb", "analyze")
	c := StartTrace("cc", "analyze")
	r.Record(a)
	r.Record(b)
	r.Record(c)
	if _, ok := r.Get("aa"); ok {
		t.Fatalf("oldest trace survived eviction")
	}
	for _, id := range []string{"bb", "cc"} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("trace %s missing", id)
		}
	}
	recent := r.Recent(0)
	if len(recent) != 2 || recent[0].ID != "cc" || recent[1].ID != "bb" {
		t.Fatalf("Recent = %+v, want cc then bb", recent)
	}
}

func TestStageLogSpansInto(t *testing.T) {
	var l StageLog
	l.Record("liu-layland", "inconclusive", 1, 100, 0)
	l.Record("qpa", "feasible", 12, 400, 2)
	tr := StartTrace("aa", "propose")
	end := tr.Start().Add(time.Microsecond)
	l.SpansInto(tr, end)
	if len(tr.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(tr.Spans))
	}
	first, second := tr.Spans[0], tr.Spans[1]
	if first.Name != "stage:liu-layland" || second.Name != "stage:qpa" {
		t.Fatalf("span names %q, %q", first.Name, second.Name)
	}
	if second.Detail != "feasible iters=12 promotions=2" {
		t.Fatalf("detail = %q", second.Detail)
	}
	if first.Detail != "inconclusive iters=1" {
		t.Fatalf("detail = %q", first.Detail)
	}
	if got := l.Promotions(); got != 2 {
		t.Fatalf("Promotions = %d, want 2", got)
	}
	endNS := end.Sub(tr.Start()).Nanoseconds()
	if first.StartNS != endNS-500 || second.StartNS != endNS-400 {
		t.Fatalf("stages not laid back-to-back: %+v", tr.Spans)
	}
	if s := summary(tr); s.DurNS != endNS {
		t.Fatalf("summary duration %d, want %d", s.DurNS, endNS)
	}

	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("Len after Reset = %d", l.Len())
	}
	for i := 0; i < 2*MaxStages; i++ {
		l.Record("s", "v", 0, 0, 0)
	}
	if l.Len() != MaxStages {
		t.Fatalf("Len = %d, want cap %d", l.Len(), MaxStages)
	}
}

func TestHubOrderingAndFiltering(t *testing.T) {
	h := NewHub()
	all := h.Subscribe("", 8)
	defer all.Close()
	one := h.Subscribe("s1", 8)
	defer one.Close()

	h.Publish(Event{Type: EventOpen, Session: "s1"})
	h.Publish(Event{Type: EventAdmit, Session: "s2"})
	h.Publish(Event{Type: EventCommit, Session: "s1"})

	var allSeq []uint64
	for i := 0; i < 3; i++ {
		ev := <-all.Events()
		allSeq = append(allSeq, ev.Seq)
		if ev.TimeUnixNS == 0 {
			t.Fatalf("event missing timestamp: %+v", ev)
		}
	}
	if allSeq[0] != 1 || allSeq[1] != 2 || allSeq[2] != 3 {
		t.Fatalf("sequence = %v", allSeq)
	}
	if ev := <-one.Events(); ev.Type != EventOpen {
		t.Fatalf("filtered subscriber got %+v first", ev)
	}
	if ev := <-one.Events(); ev.Type != EventCommit {
		t.Fatalf("filtered subscriber leaked other session: %+v", ev)
	}
	published, _, subs := h.Stats()
	if published != 3 || subs != 2 {
		t.Fatalf("Stats published=%d subs=%d", published, subs)
	}
}

func TestHubDropsWhenSubscriberFull(t *testing.T) {
	h := NewHub()
	s := h.Subscribe("", 1)
	defer s.Close()
	h.Publish(Event{Type: EventAdmit, Session: "s"})
	h.Publish(Event{Type: EventAdmit, Session: "s"})
	_, dropped, _ := h.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if ev := <-s.Events(); ev.Seq != 1 {
		t.Fatalf("kept event seq %d, want 1", ev.Seq)
	}
	s.Close()
	s.Close() // idempotent
	if _, ok := <-s.Events(); ok {
		t.Fatalf("channel open after Close")
	}
}

func TestSSERoundTrip(t *testing.T) {
	var buf bytes.Buffer
	events := []Event{
		{Seq: 1, Type: EventAdmit, Session: "s1", Trace: "aa", Path: "fast", Admitted: true},
		{Seq: 2, Type: EventReject, Session: "s1", Verdict: "infeasible"},
	}
	for _, ev := range events {
		if err := WriteSSEEvent(&buf, ev); err != nil {
			t.Fatal(err)
		}
	}
	buf.WriteString(": keep-alive\n\n")
	sc := NewSSEScanner(&buf)
	for i, want := range events {
		got, err := sc.NextEvent()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := sc.NextEvent(); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestSSEScannerMultilineData(t *testing.T) {
	sc := NewSSEScanner(strings.NewReader("data: a\ndata: b\n\n"))
	got, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a\nb" {
		t.Fatalf("payload = %q", got)
	}
}

func TestExpositionWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewExpositionWriter(&buf)
	w.Family("edfd_requests_total", Counter, "HTTP requests served.")
	w.Sample("edfd_requests_total", nil, 42)
	w.Family("edfd_propose_ns", Histogram, "Propose latency.")
	w.Sample("edfd_propose_ns_bucket", []Label{{"le", "1024"}}, 3)
	w.Sample("edfd_propose_ns_bucket", []Label{{"le", "+Inf"}}, 5)
	w.Sample("edfd_propose_ns_sum", nil, 4096)
	w.Sample("edfd_propose_ns_count", nil, 5)
	w.Family("edfd_weird", Gauge, "Label with \"quotes\" and\nnewline.")
	w.SampleString("edfd_weird", []Label{{"path", `a\b"c`}}, "0.5000")
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	page := buf.String()

	if err := ValidateExposition(strings.NewReader(page)); err != nil {
		t.Fatalf("writer output rejected: %v\n%s", err, page)
	}
	samples, err := ParseExposition(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 6 {
		t.Fatalf("got %d samples: %+v", len(samples), samples)
	}
	if samples[0].Key() != "edfd_requests_total" || samples[0].Value != 42 {
		t.Fatalf("first sample %+v", samples[0])
	}
	if got := samples[1].Key(); got != `edfd_propose_ns_bucket{le="1024"}` {
		t.Fatalf("bucket key = %q", got)
	}
	last := samples[5]
	if last.Label("path") != `a\b"c` || last.Value != 0.5 {
		t.Fatalf("escaped label round trip failed: %+v", last)
	}
}

func TestValidateExpositionRejections(t *testing.T) {
	cases := map[string]string{
		"bad name":             "0bad 1\n",
		"bad value":            "edfd_x one\n",
		"unterminated label":   "edfd_x{a=\"b 1\n",
		"duplicate series":     "edfd_x 1\nedfd_x 2\n",
		"interleaved families": "edfd_a 1\nedfd_b 1\nedfd_a 2\n",
		"type after samples":   "edfd_a 1\n# TYPE edfd_a counter\n",
		"bucket without le":    "# TYPE edfd_h histogram\nedfd_h_bucket 1\nedfd_h_count 1\n",
		"missing +Inf bucket":  "# TYPE edfd_h histogram\nedfd_h_bucket{le=\"1\"} 1\nedfd_h_count 1\n",
		"+Inf != count":        "# TYPE edfd_h histogram\nedfd_h_bucket{le=\"+Inf\"} 1\nedfd_h_count 2\n",
		"unknown type":         "# TYPE edfd_a widget\n",
	}
	for name, page := range cases {
		if err := ValidateExposition(strings.NewReader(page)); err == nil {
			t.Errorf("%s: validated\n%s", name, page)
		}
	}
	ok := "# HELP edfd_a ok\n# TYPE edfd_a counter\nedfd_a 1\nedfd_a{replica=\"r1\"} 1\n"
	if err := ValidateExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("labeled variant rejected: %v", err)
	}
}

func TestParseExpositionSpecials(t *testing.T) {
	samples, err := ParseExposition(strings.NewReader(
		"edfd_a{x=\"v\",} 1 1712345678\nedfd_b +Inf\nedfd_c NaN\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("got %d samples", len(samples))
	}
	if samples[0].Label("x") != "v" {
		t.Fatalf("trailing-comma labels: %+v", samples[0])
	}
	if samples[1].Value != samples[1].Value+1 { // +Inf
		t.Fatalf("b = %v, want +Inf", samples[1].Value)
	}
	if samples[2].Value == samples[2].Value { // NaN
		t.Fatalf("c = %v, want NaN", samples[2].Value)
	}
}
