package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event types of the admission feed.
const (
	EventOpen     = "open"     // session opened
	EventAdmit    = "admit"    // proposal staged
	EventReject   = "reject"   // proposal rejected
	EventCommit   = "commit"   // pending tasks made permanent
	EventRollback = "rollback" // pending tasks discarded
	EventClose    = "close"    // session closed by the client
	EventExpire   = "expire"   // session swept by the idle TTL
	EventResume   = "resume"   // session rehydrated from the durable store
)

// Event is one admission decision on the feed. The zero value of every
// optional field is omitted on the wire, so the common admit event stays
// one short JSON line.
type Event struct {
	// Seq orders events within one publisher; the proxy fan-in keeps each
	// replica's sequence and labels the replica, so (replica, seq) stays
	// unique fleet-wide.
	Seq uint64 `json:"seq"`
	// TimeUnixNS is the publish instant.
	TimeUnixNS int64 `json:"time_unix_ns"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Session is the admission session the decision belongs to.
	Session string `json:"session"`
	// Trace is the trace ID of the request that caused the decision; it
	// resolves at GET /v1/traces/{id} on the server that published it.
	Trace string `json:"trace,omitempty"`
	// Path is the decision path of admit/reject events: "gate", "fast" or
	// "cascade".
	Path string `json:"path,omitempty"`
	// Verdict is the deciding analysis verdict of admit/reject events.
	Verdict string `json:"verdict,omitempty"`
	// Admitted distinguishes admit from reject without string-matching.
	Admitted bool `json:"admitted,omitempty"`
	// Moved counts the tasks a commit/rollback moved.
	Moved int `json:"moved,omitempty"`
	// Utilization is the session utilization after the decision.
	Utilization float64 `json:"utilization,omitempty"`
	// LatencyNS is the server-side decision latency.
	LatencyNS int64 `json:"latency_ns,omitempty"`
	// Replica names the replica that published the event; stamped by the
	// proxy fan-in, empty on a direct edfd feed.
	Replica string `json:"replica,omitempty"`
}

// DefaultSubscriberBuffer is the per-subscriber channel depth when the
// caller does not choose one.
const DefaultSubscriberBuffer = 256

// Hub fans admission events out to subscribers. Publishing never blocks:
// a subscriber whose buffer is full loses the event and the loss is
// counted, so a stalled SSE client cannot back-pressure the admission
// path.
type Hub struct {
	mu   sync.Mutex
	seq  uint64
	subs map[*Subscriber]struct{}

	published atomic.Uint64
	dropped   atomic.Uint64
}

// NewHub builds an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[*Subscriber]struct{})}
}

// Subscriber is one feed consumer. Events arrive on Events(); Close
// detaches from the hub and closes the channel.
type Subscriber struct {
	hub     *Hub
	session string // "" subscribes to every session
	ch      chan Event
	once    sync.Once
}

// Subscribe registers a consumer for one session's events ("" for all)
// with the given channel depth (<= 0 selects DefaultSubscriberBuffer).
func (h *Hub) Subscribe(session string, buffer int) *Subscriber {
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	s := &Subscriber{hub: h, session: session, ch: make(chan Event, buffer)}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s
}

// Events is the subscriber's receive channel; it closes after Close.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Close detaches the subscriber and closes its channel. Safe to call
// more than once.
func (s *Subscriber) Close() {
	s.once.Do(func() {
		s.hub.mu.Lock()
		delete(s.hub.subs, s)
		s.hub.mu.Unlock()
		close(s.ch)
	})
}

// Publish stamps sequence and time onto ev and fans it out. The hub lock
// spans the fan-out so sequence order equals delivery order on every
// subscriber channel.
func (h *Hub) Publish(ev Event) {
	h.mu.Lock()
	h.seq++
	ev.Seq = h.seq
	if ev.TimeUnixNS == 0 {
		ev.TimeUnixNS = time.Now().UnixNano()
	}
	for s := range h.subs {
		if s.session != "" && s.session != ev.Session {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
	h.published.Add(1)
}

// Stats returns lifetime published and dropped counts plus the current
// subscriber count.
func (h *Hub) Stats() (published, dropped uint64, subscribers int) {
	h.mu.Lock()
	subscribers = len(h.subs)
	h.mu.Unlock()
	return h.published.Load(), h.dropped.Load(), subscribers
}
