// Package obs is the telemetry subsystem threaded through every layer of
// the service stack: request tracing, the streaming admission event feed,
// and Prometheus text exposition.
//
// # Tracing
//
// A trace is minted per request at the outermost layer that sees it —
// edfproxy, or edfd when hit directly — and propagated downstream via the
// X-Edf-Trace header ([TraceHeader]). Each server captures cheap [Span]
// records (cache lookup, per-analyzer cascade stage, incremental fast
// path vs escalation, route and failover hops) into a bounded [Recorder]
// ring buffer, exposed at GET /v1/traces/{id}. The proxy merges its own
// spans with the serving replica's, so one trace ID resolves to the whole
// request tree: which replica served, which decision path ran, and where
// the time went.
//
// Spans on the analysis hot path record into a [StageLog] — a fixed-size,
// preallocated slot array owned by the caller — so the zero-allocation
// invariants of the analyzer and admission fast paths hold with tracing
// on.
//
// # The admission event feed
//
// Every admission decision (admit, reject, commit, rollback, open, close,
// expire) publishes an [Event] to a [Hub]. Subscribers receive events over
// buffered channels that never block the publisher (a slow subscriber
// drops events and the drop is counted); the service exposes the feed as
// server-sent events per session and server-wide, and the proxy fans the
// per-replica feeds into one fleet-wide stream with replica labels.
//
// # Prometheus exposition
//
// [ExpositionWriter] renders metric families in valid Prometheus text
// format (# HELP, # TYPE, escaped labels); [ParseExposition] and
// [ValidateExposition] are the matching small parser, used by the proxy
// to scrape replica pages and by `make lint-metrics` to gate the format
// in CI. No external dependencies on either side.
package obs
