package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// SSEContentType is the server-sent-events media type.
const SSEContentType = "text/event-stream"

// DefaultHeartbeat spaces SSE keep-alive comments so intermediaries and
// clients can distinguish an idle feed from a dead connection.
const DefaultHeartbeat = 15 * time.Second

// ServeSSE streams a subscriber's events to w as server-sent events until
// the request context ends, stop closes, or the connection breaks. Each
// event is one "id: <seq>" / "data: <json>" block; heartbeat comments
// (": keep-alive") go out when the feed is idle. The subscriber is closed
// on return.
func ServeSSE(w http.ResponseWriter, r *http.Request, sub *Subscriber, heartbeat time.Duration, stop <-chan struct{}) {
	defer sub.Close()
	if heartbeat <= 0 {
		heartbeat = DefaultHeartbeat
	}
	fl, _ := w.(http.Flusher)
	h := w.Header()
	h.Set("Content-Type", SSEContentType)
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if fl != nil {
		fl.Flush()
	}
	tick := time.NewTicker(heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-stop:
			return
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if err := WriteSSEEvent(w, ev); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case <-tick.C:
			if _, err := io.WriteString(w, ": keep-alive\n\n"); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
	}
}

// WriteSSEEvent writes one event as an SSE block.
func WriteSSEEvent(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, data)
	return err
}

// SSEScanner reads server-sent-event data payloads from a stream,
// skipping comments and non-data fields. It is the decoding half used by
// the typed client and the proxy's fleet fan-in.
type SSEScanner struct {
	br *bufio.Reader
}

// NewSSEScanner wraps an SSE byte stream.
func NewSSEScanner(r io.Reader) *SSEScanner {
	return &SSEScanner{br: bufio.NewReader(r)}
}

// Next returns the next event's data payload (joined with newlines when
// split over several data: lines, per the SSE spec). io.EOF reports a
// cleanly closed stream.
func (s *SSEScanner) Next() ([]byte, error) {
	var data [][]byte
	for {
		line, err := s.br.ReadBytes('\n')
		if err != nil {
			// A partial last line cannot hold a complete event; surface
			// the stream error (EOF included).
			return nil, err
		}
		line = bytes.TrimRight(line, "\r\n")
		if len(line) == 0 {
			if len(data) > 0 {
				return bytes.Join(data, []byte{'\n'}), nil
			}
			continue // blank between events we did not collect from
		}
		if line[0] == ':' {
			continue // comment / heartbeat
		}
		field, value, _ := bytes.Cut(line, []byte{':'})
		value = bytes.TrimPrefix(value, []byte{' '})
		if string(field) == "data" {
			data = append(data, append([]byte(nil), value...))
		}
	}
}

// NextEvent decodes the next data payload as an Event.
func (s *SSEScanner) NextEvent() (Event, error) {
	var ev Event
	data, err := s.Next()
	if err != nil {
		return ev, err
	}
	if err := json.Unmarshal(data, &ev); err != nil {
		return ev, fmt.Errorf("obs: decoding SSE event: %w", err)
	}
	return ev, nil
}
