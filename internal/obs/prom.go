package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MetricType is a Prometheus exposition metric type.
type MetricType string

// The metric types the service emits.
const (
	Counter   MetricType = "counter"
	Gauge     MetricType = "gauge"
	Histogram MetricType = "histogram"
	Untyped   MetricType = "untyped"
)

// Label is one name="value" pair of a sample.
type Label struct {
	Name  string
	Value string
}

// ExpositionWriter renders metric families in Prometheus text exposition
// format: a # HELP / # TYPE header per family, then that family's
// samples, labels escaped per the spec. Errors stick; check Err once at
// the end instead of after every line.
type ExpositionWriter struct {
	w   io.Writer
	err error
}

// NewExpositionWriter wraps w.
func NewExpositionWriter(w io.Writer) *ExpositionWriter {
	return &ExpositionWriter{w: w}
}

// Err returns the first write error.
func (e *ExpositionWriter) Err() error { return e.err }

func (e *ExpositionWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Family opens a metric family: its HELP and TYPE header lines. Samples
// of the family must follow before the next Family call.
func (e *ExpositionWriter) Family(name string, typ MetricType, help string) {
	e.printf("# HELP %s %s\n", name, escapeHelp(help))
	e.printf("# TYPE %s %s\n", name, typ)
}

// Sample writes one sample line. Counters and integral gauges render
// without a fraction; other values use the shortest float form.
func (e *ExpositionWriter) Sample(name string, labels []Label, value float64) {
	e.SampleString(name, labels, FormatValue(value))
}

// SampleString writes one sample line with a preformatted value, for
// callers that fix the rendering (e.g. a ratio always shown as %.4f).
func (e *ExpositionWriter) SampleString(name string, labels []Label, value string) {
	if len(labels) == 0 {
		e.printf("%s %s\n", name, value)
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	e.printf("%s %s\n", sb.String(), value)
}

// FormatValue renders a float the way the exposition format expects:
// integral values without a fraction, everything else shortest-form.
func FormatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslashes, double quotes and newlines in a label
// value.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Key returns the sample's canonical identity — name plus sorted labels —
// used for summing the same series across replicas and for duplicate
// detection.
func (s Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	ls := append([]Label(nil), s.Labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	sb.WriteString(s.Name)
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// ParseExposition parses a Prometheus text page into samples, failing on
// the first malformed line. Comment lines (HELP/TYPE included) are
// syntax-checked and skipped; ValidateExposition adds the cross-line
// family rules.
func ParseExposition(r io.Reader) ([]Sample, error) {
	out, _, err := ParseExpositionTyped(r)
	return out, err
}

// ParseExpositionTyped parses a page into samples plus the TYPE
// declarations, keyed by family name — what an aggregator needs to
// re-emit a scraped page with the original types.
func ParseExpositionTyped(r io.Reader) ([]Sample, map[string]MetricType, error) {
	var out []Sample
	types := map[string]MetricType{}
	err := scanExposition(r, func(s Sample) error {
		out = append(out, s)
		return nil
	}, func(directive, name, rest string) error {
		if directive == "TYPE" {
			types[name] = MetricType(rest)
		}
		return nil
	})
	return out, types, err
}

// ValidateExposition checks a page against the text-format rules a
// Prometheus scraper enforces: every line parses, TYPE lines are valid
// and precede their samples, all samples of one family are contiguous,
// series are not duplicated, and histogram families carry le-labeled
// buckets with a +Inf bucket equal to their _count.
func ValidateExposition(r io.Reader) error {
	types := map[string]MetricType{} // family -> declared type
	closed := map[string]bool{}      // families whose sample block ended
	seen := map[string]bool{}        // series keys, for duplicate detection
	hist := map[string]*histCheck{}  // histogram family -> bucket audit
	current := ""                    // family currently emitting samples
	startFamily := func(fam string) error {
		if fam == current {
			return nil
		}
		if current != "" {
			closed[current] = true
		}
		if closed[fam] {
			return fmt.Errorf("family %s interleaved with other families", fam)
		}
		current = fam
		return nil
	}
	err := scanExposition(r, func(s Sample) error {
		fam := s.Name
		if t, ok := types[fam]; !ok || t != Histogram {
			// _bucket/_sum/_count samples belong to a declared histogram
			// family when one exists.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(s.Name, suffix)
				if base != s.Name && types[base] == Histogram {
					fam = base
					break
				}
			}
		}
		if err := startFamily(fam); err != nil {
			return err
		}
		key := s.Key()
		if seen[key] {
			return fmt.Errorf("duplicate series %s", key)
		}
		seen[key] = true
		if types[fam] == Histogram {
			h := hist[fam]
			if h == nil {
				h = &histCheck{}
				hist[fam] = h
			}
			return h.observe(fam, s)
		}
		return nil
	}, func(directive, name, rest string) error {
		switch directive {
		case "TYPE":
			switch MetricType(rest) {
			case Counter, Gauge, Histogram, Untyped, "summary":
			default:
				return fmt.Errorf("unknown TYPE %q for %s", rest, name)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("second TYPE line for %s", name)
			}
			if closed[name] || current == name {
				return fmt.Errorf("TYPE for %s after its samples", name)
			}
			types[name] = MetricType(rest)
		case "HELP":
			// Free text; nothing further to check.
		}
		return nil
	})
	if err != nil {
		return err
	}
	for fam, h := range hist {
		if err := h.finish(fam); err != nil {
			return err
		}
	}
	return nil
}

// histCheck audits one histogram family's bucket/count consistency.
// Labeled variants of the family (e.g. per-replica series) are audited
// independently per label signature.
type histCheck struct {
	inf   map[string]float64 // non-le label signature -> +Inf bucket value
	count map[string]float64 // non-le label signature -> _count value
}

// sig is the sample's identity aside from le: its other labels.
func (h *histCheck) sig(s Sample) string {
	rest := Sample{Name: "x"}
	for _, l := range s.Labels {
		if l.Name != "le" {
			rest.Labels = append(rest.Labels, l)
		}
	}
	return rest.Key()
}

func (h *histCheck) observe(fam string, s Sample) error {
	if h.inf == nil {
		h.inf = map[string]float64{}
		h.count = map[string]float64{}
	}
	switch s.Name {
	case fam + "_bucket":
		le := s.Label("le")
		if le == "" {
			return fmt.Errorf("%s_bucket without le label", fam)
		}
		if _, err := strconv.ParseFloat(le, 64); err != nil {
			return fmt.Errorf("%s_bucket le=%q is not a number", fam, le)
		}
		if le == "+Inf" {
			h.inf[h.sig(s)] = s.Value
		}
	case fam + "_count":
		h.count[h.sig(s)] = s.Value
	}
	return nil
}

func (h *histCheck) finish(fam string) error {
	for sig, count := range h.count {
		inf, ok := h.inf[sig]
		if !ok {
			return fmt.Errorf("histogram %s missing a +Inf bucket", fam)
		}
		if inf != count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != count %v", fam, inf, count)
		}
	}
	return nil
}

// scanExposition drives line-level parsing, invoking sample for metric
// lines and comment (may be nil) for HELP/TYPE lines.
func scanExposition(r io.Reader, sample func(Sample) error, comment func(directive, name, rest string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			directive, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comment
			}
			if directive == "" {
				return fmt.Errorf("line %d: malformed %q", lineNo, line)
			}
			if comment != nil {
				if err := comment(directive, name, rest); err != nil {
					return fmt.Errorf("line %d: %w", lineNo, err)
				}
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := sample(s); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

// parseComment splits "# HELP name text" / "# TYPE name type". ok is
// false for free-form comments; a recognized directive with a malformed
// body returns ok with an empty directive so the caller can reject it.
func parseComment(line string) (directive, name, rest string, ok bool) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	d, tail, found := strings.Cut(body, " ")
	if !found || (d != "HELP" && d != "TYPE") {
		return "", "", "", false
	}
	n, r, found := strings.Cut(tail, " ")
	if d == "TYPE" && !found {
		return "", "", "", true
	}
	if !validName(n, false) {
		return "", "", "", true
	}
	return d, n, r, true
}

// parseSampleLine parses "name[{labels}] value [timestamp]".
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !validName(s.Name, false) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		if s.Labels, rest, err = parseLabels(rest[1:]); err != nil {
			return s, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want value [timestamp] after %q, got %q", s.Name, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("invalid value %q: %w", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes label pairs up to the closing brace, returning the
// remainder of the line.
func parseLabels(in string) ([]Label, string, error) {
	var out []Label
	for {
		in = strings.TrimLeft(in, " ")
		if strings.HasPrefix(in, "}") {
			return out, in[1:], nil
		}
		eq := strings.IndexByte(in, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' in %q", in)
		}
		name := strings.TrimSpace(in[:eq])
		if !validName(name, true) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		in = strings.TrimLeft(in[eq+1:], " ")
		if !strings.HasPrefix(in, `"`) {
			return nil, "", fmt.Errorf("unquoted value for label %s", name)
		}
		value, rest, err := parseQuoted(in[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", name, err)
		}
		out = append(out, Label{Name: name, Value: value})
		in = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(in, ",") {
			in = in[1:]
			continue
		}
		if !strings.HasPrefix(in, "}") {
			return nil, "", fmt.Errorf("expected ',' or '}' after label %s", name)
		}
	}
}

// parseQuoted consumes an escaped label value up to the closing quote.
func parseQuoted(in string) (value, rest string, err error) {
	var sb strings.Builder
	for i := 0; i < len(in); i++ {
		switch c := in[i]; c {
		case '"':
			return sb.String(), in[i+1:], nil
		case '\\':
			i++
			if i >= len(in) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch in[i] {
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case 'n':
				sb.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", in[i])
			}
		default:
			sb.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// validName checks a metric (or, with label set, label) name against the
// exposition grammar.
func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case !label && c == ':':
		case i > 0 && c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return true
}
