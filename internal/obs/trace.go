package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"time"
)

// TraceHeader carries the trace ID between edfproxy, edfd and clients, on
// both requests (propagation) and responses (so a caller that did not
// send an ID learns the minted one).
const TraceHeader = "X-Edf-Trace"

// NewTraceID returns 8 random bytes as 16 hex characters. crypto/rand
// cannot fail on the supported platforms; a failure would mean a broken
// kernel RNG and panicking beats handing out colliding trace ids.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err)
	}
	return hex.EncodeToString(b[:])
}

// Admission decision paths, carried on traces and feed events.
const (
	// PathGate is the O(1) utilization-gate rejection: no analyzer ran.
	PathGate = "gate"
	// PathFast is the incremental certificate accept: O(delta), no cascade.
	PathFast = "fast"
	// PathCascade is a full analyzer escalation.
	PathCascade = "cascade"
)

// Span is one timed step of a request. Offsets are relative to the owning
// trace's start, so a span list is self-contained and cheap to record.
type Span struct {
	// Name identifies the step ("cache", "stage:liu-layland", "forward").
	Name string `json:"name"`
	// StartNS is the offset from the trace start.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span's duration.
	DurNS int64 `json:"dur_ns"`
	// Replica names the replica a span ran on (stamped by the proxy when
	// it merges replica spans into a fleet trace; empty on a single edfd).
	Replica string `json:"replica,omitempty"`
	// Detail carries a short human-readable outcome ("hit", "feasible
	// iters=12", "status 503").
	Detail string `json:"detail,omitempty"`
}

// Trace is one request's span record. It is built by a single goroutine
// (the request handler) and becomes immutable once handed to a Recorder.
type Trace struct {
	ID string `json:"id"`
	// Op is the logical operation ("analyze", "propose", "commit", ...).
	Op string `json:"op"`
	// Session is the admission session the request touched, if any.
	Session string `json:"session,omitempty"`
	// Path is the admission decision path: "gate" (utilization rejection),
	// "fast" (incremental certificate accept) or "cascade" (full
	// escalation). Empty for non-admission requests.
	Path string `json:"path,omitempty"`
	// StartUnixNS anchors the span offsets to wall-clock time.
	StartUnixNS int64  `json:"start_unix_ns"`
	Spans       []Span `json:"spans"`

	start time.Time
}

// StartTrace begins a trace record for one request.
func StartTrace(id, op string) *Trace {
	now := time.Now()
	return &Trace{ID: id, Op: op, StartUnixNS: now.UnixNano(), start: now}
}

// Start returns the trace's start instant, for callers computing their
// own span offsets.
func (t *Trace) Start() time.Time { return t.start }

// EndSpan records a span that began at start and ends now.
func (t *Trace) EndSpan(name string, start time.Time, detail string) {
	t.Spans = append(t.Spans, Span{
		Name:    name,
		StartNS: start.Sub(t.start).Nanoseconds(),
		DurNS:   time.Since(start).Nanoseconds(),
		Detail:  detail,
	})
}

// AddSpan appends a prebuilt span.
func (t *Trace) AddSpan(s Span) { t.Spans = append(t.Spans, s) }

// traceKey is the context key for the active trace.
type traceKey struct{}

// WithTrace attaches an active trace to a request context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the active trace, or nil outside a traced request.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// TraceSummary is one line of the recent-traces listing.
type TraceSummary struct {
	ID          string `json:"id"`
	Op          string `json:"op"`
	Session     string `json:"session,omitempty"`
	Path        string `json:"path,omitempty"`
	StartUnixNS int64  `json:"start_unix_ns"`
	Spans       int    `json:"spans"`
	DurNS       int64  `json:"dur_ns"`
}

// summary condenses a trace for the listing; duration is the end of the
// last-ending span.
func summary(t *Trace) TraceSummary {
	s := TraceSummary{
		ID: t.ID, Op: t.Op, Session: t.Session, Path: t.Path,
		StartUnixNS: t.StartUnixNS, Spans: len(t.Spans),
	}
	for _, sp := range t.Spans {
		if end := sp.StartNS + sp.DurNS; end > s.DurNS {
			s.DurNS = end
		}
	}
	return s
}

// DefaultTraceCapacity bounds a server's trace ring when the owner does
// not choose one.
const DefaultTraceCapacity = 1024

// Recorder keeps the most recent traces in a fixed ring with an ID index.
// Record takes ownership of the trace: the producer must not mutate it
// afterwards, which lets Get hand the stored pointer to readers without
// copying. Writes are O(1); the mutex is held only for pointer swaps.
type Recorder struct {
	mu   sync.Mutex
	ring []*Trace
	next int
	byID map[string]*Trace
}

// NewRecorder builds a recorder keeping up to capacity traces (<= 0
// selects DefaultTraceCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Recorder{
		ring: make([]*Trace, capacity),
		byID: make(map[string]*Trace, capacity),
	}
}

// Record stores a finished trace, evicting the oldest when full. A second
// record under the same ID replaces the first in the index (the ring keeps
// both until they age out).
func (r *Recorder) Record(t *Trace) {
	if t == nil || t.ID == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.ring[r.next]; old != nil && r.byID[old.ID] == old {
		delete(r.byID, old.ID)
	}
	r.ring[r.next] = t
	r.byID[t.ID] = t
	r.next = (r.next + 1) % len(r.ring)
}

// Get returns the trace recorded under id. The returned trace is shared
// and must be treated as read-only.
func (r *Recorder) Get(id string) (*Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// Recent lists up to n trace summaries, newest first (n <= 0 means all
// retained).
func (r *Recorder) Recent(n int) []TraceSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.ring) {
		n = len(r.ring)
	}
	out := make([]TraceSummary, 0, n)
	for i := 1; i <= len(r.ring) && len(out) < n; i++ {
		t := r.ring[(r.next-i+len(r.ring))%len(r.ring)]
		if t == nil {
			break
		}
		out = append(out, summary(t))
	}
	return out
}

// MaxStages bounds a StageLog; a cascade runs at most four stages today,
// the spare slots absorb future stages without an encoding change.
const MaxStages = 8

// StageRecord is one analyzer stage of a cascade escalation.
type StageRecord struct {
	// Name is the stage analyzer's registry name.
	Name string
	// Verdict is the stage's verdict string.
	Verdict string
	// Iterations is the stage's checked test intervals.
	Iterations int64
	// DurNS is the stage's wall time.
	DurNS int64
	// Promotions counts the stage's exits from the bounded-denominator
	// fast path: values promoted to big rationals plus analyses that fell
	// back wholesale because no chunk plan fit the workload. Zero on the
	// overwhelming majority of workloads; a persistent non-zero stream
	// means the workload's periods exceed the chunk cap.
	Promotions uint64
}

// StageLog captures per-stage spans of one analysis into preallocated
// slots: recording writes array entries in place, so the analyzer and
// admission fast paths stay allocation-free with tracing on. A StageLog
// serves one analysis at a time; owners reusing one across analyses call
// Reset first, and concurrent analyses need separate logs.
type StageLog struct {
	n      int
	stages [MaxStages]StageRecord
}

// Reset empties the log without releasing memory.
func (l *StageLog) Reset() { l.n = 0 }

// Record appends one stage, silently dropping past MaxStages.
func (l *StageLog) Record(name, verdict string, iterations, durNS int64, promotions uint64) {
	if l.n >= MaxStages {
		return
	}
	l.stages[l.n] = StageRecord{Name: name, Verdict: verdict, Iterations: iterations, DurNS: durNS, Promotions: promotions}
	l.n++
}

// Promotions sums the fast-path exits over the recorded stages.
func (l *StageLog) Promotions() uint64 {
	var total uint64
	for i := range l.n {
		total += l.stages[i].Promotions
	}
	return total
}

// Len returns the number of recorded stages.
func (l *StageLog) Len() int { return l.n }

// Stage returns the i-th recorded stage.
func (l *StageLog) Stage(i int) StageRecord { return l.stages[i] }

// SpansInto appends the recorded stages as "stage:<name>" spans laid out
// back-to-back ending at end, so a trace shows where the escalation's
// time went even though stages only track durations.
func (l *StageLog) SpansInto(t *Trace, end time.Time) {
	if l.n == 0 {
		return
	}
	endNS := end.Sub(t.start).Nanoseconds()
	var total int64
	for i := range l.n {
		total += l.stages[i].DurNS
	}
	start := endNS - total
	for i := range l.n {
		st := l.stages[i]
		detail := st.Verdict + " iters=" + strconv.FormatInt(st.Iterations, 10)
		if st.Promotions > 0 {
			detail += " promotions=" + strconv.FormatUint(st.Promotions, 10)
		}
		t.AddSpan(Span{
			Name:    "stage:" + st.Name,
			StartNS: start,
			DurNS:   st.DurNS,
			Detail:  detail,
		})
		start += st.DurNS
	}
}
