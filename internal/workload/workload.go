package workload

import (
	"encoding/json"
	"fmt"
	"math/big"

	"repro/internal/eventstream"
	"repro/internal/model"
)

// Model discriminates the activation model of a workload.
type Model string

const (
	// Sporadic is the paper's base model: tasks (C, D, T) released at
	// most once per period. The empty model string means sporadic, so
	// payloads that predate the discriminator keep their meaning.
	Sporadic Model = "sporadic"
	// Events is the Gresser event-stream model: each task is (C, D) plus
	// an event stream of (cycle, offset) elements.
	Events Model = "events"
	// Partitioned is the partitioned multiprocessor model: sporadic tasks
	// with optional placement constraints to be bin-packed onto m
	// processors of (optionally heterogeneous) relative speeds, each bin
	// checked by a uniprocessor EDF test.
	Partitioned Model = "partitioned"
)

// ParseModel resolves the wire form of a model name. The empty string
// selects Sporadic.
func ParseModel(s string) (Model, error) {
	switch Model(s) {
	case "", Sporadic:
		return Sporadic, nil
	case Events:
		return Events, nil
	case Partitioned:
		return Partitioned, nil
	default:
		return "", fmt.Errorf("workload: unknown model %q (want %q, %q or %q)", s, Sporadic, Events, Partitioned)
	}
}

// Workload is a task set under one of the activation models. Exactly one
// of Tasks, Events and PartTasks is meaningful, selected by Model; the
// zero value is an empty sporadic workload.
type Workload struct {
	// Model selects the activation model; empty means Sporadic.
	Model Model
	// Tasks is the sporadic task set (Model == Sporadic).
	Tasks model.TaskSet
	// Events is the event-driven task set (Model == Events).
	Events []eventstream.Task
	// Processors is the processor set (Model == Partitioned).
	Processors []Processor
	// PartTasks is the partitioned task set (Model == Partitioned).
	PartTasks []PartitionedTask
}

// NewSporadic wraps a sporadic task set.
func NewSporadic(ts model.TaskSet) Workload {
	return Workload{Model: Sporadic, Tasks: ts}
}

// NewEvents wraps an event-driven task set.
func NewEvents(tasks []eventstream.Task) Workload {
	return Workload{Model: Events, Events: tasks}
}

// Kind returns the effective model, mapping the zero value to Sporadic.
func (w Workload) Kind() Model {
	switch w.Model {
	case Events:
		return Events
	case Partitioned:
		return Partitioned
	}
	return Sporadic
}

// IsZero reports whether the workload is entirely unset (no model, no
// tasks) — distinct from an explicitly empty sporadic workload.
func (w Workload) IsZero() bool {
	return w.Model == "" && w.Tasks == nil && w.Events == nil &&
		w.Processors == nil && w.PartTasks == nil
}

// Len returns the number of tasks under the effective model.
func (w Workload) Len() int {
	switch w.Kind() {
	case Events:
		return len(w.Events)
	case Partitioned:
		return len(w.PartTasks)
	}
	return len(w.Tasks)
}

// Validate reports the first structural problem of the workload. An empty
// workload is invalid under either model.
func (w Workload) Validate() error {
	switch w.Kind() {
	case Events:
		if len(w.Events) == 0 {
			return fmt.Errorf("workload: empty event-stream task set")
		}
		for i, t := range w.Events {
			if err := t.Validate(); err != nil {
				return fmt.Errorf("task %d: %w", i, err)
			}
		}
		return nil
	case Partitioned:
		return w.validatePartitioned()
	default:
		return w.Tasks.Validate()
	}
}

// Utilization returns the total utilization as an exact rational: Σ C/T
// for sporadic and partitioned tasks (the latter regardless of
// placement), Σ C · Σ 1/cycle per stream for event-driven tasks (the
// asymptotic demand density; one-shot elements contribute nothing).
func (w Workload) Utilization() *big.Rat {
	switch w.Kind() {
	case Events:
		u := new(big.Rat)
		for _, t := range w.Events {
			u.Add(u, eventTaskUtilization(t))
		}
		return u
	case Partitioned:
		return w.partitionedUtilization()
	}
	return w.Tasks.Utilization()
}

// Clone returns a deep copy: mutating the clone never affects the
// original.
func (w Workload) Clone() Workload {
	out := Workload{Model: w.Model}
	if w.Tasks != nil {
		out.Tasks = w.Tasks.Clone()
	}
	if w.Events != nil {
		out.Events = make([]eventstream.Task, len(w.Events))
		for i, t := range w.Events {
			t.Stream = append(eventstream.Stream(nil), t.Stream...)
			out.Events[i] = t
		}
	}
	w.clonePartitioned(&out)
	return out
}

// Concat appends v's tasks to a copy of w. Both workloads must share the
// effective model; partitioned workloads must also agree on the
// processor set, which stays as w's.
func (w Workload) Concat(v Workload) (Workload, error) {
	if w.Kind() != v.Kind() {
		return Workload{}, fmt.Errorf("workload: cannot concatenate %s and %s workloads", w.Kind(), v.Kind())
	}
	out := w.Clone()
	switch w.Kind() {
	case Events:
		out.Events = append(out.Events, v.Clone().Events...)
	case Partitioned:
		if len(w.Processors) != len(v.Processors) {
			return Workload{}, fmt.Errorf("workload: cannot concatenate partitioned workloads with %d and %d processors", len(w.Processors), len(v.Processors))
		}
		for i := range w.Processors {
			if w.Processors[i].EffectiveSpeed() != v.Processors[i].EffectiveSpeed() {
				return Workload{}, fmt.Errorf("workload: cannot concatenate partitioned workloads: processor %d speeds differ", i)
			}
		}
		out.PartTasks = append(out.PartTasks, v.Clone().PartTasks...)
	default:
		out.Tasks = append(out.Tasks, v.Tasks...)
	}
	return out, nil
}

// With returns a copy of w extended by one task of the same model. The
// caller must have checked the model (Task.Kind() == w.Kind()).
func (w Workload) With(t Task) Workload {
	out := w.Clone()
	out.Model = w.Kind()
	if out.Model == Events {
		out.Events = append(out.Events, *t.Event)
	} else {
		out.Tasks = append(out.Tasks, *t.Sporadic)
	}
	return out
}

// workloadWire is the JSON layout: a model discriminator next to the task
// array (plus the processor array for partitioned workloads). Unknown
// sibling keys (name, analyzer, ...) are ignored, so a Workload can
// decode itself out of any enclosing request object.
type workloadWire struct {
	Model      string          `json:"model"`
	Tasks      json.RawMessage `json:"tasks"`
	Processors json.RawMessage `json:"processors"`
}

// UnmarshalJSON decodes {"model": ..., "tasks": [...]}, dispatching the
// task element type on the model and defaulting to sporadic when the
// discriminator is absent — every pre-discriminator payload keeps
// working.
func (w *Workload) UnmarshalJSON(data []byte) error {
	var aux workloadWire
	if err := json.Unmarshal(data, &aux); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	m, err := ParseModel(aux.Model)
	if err != nil {
		return err
	}
	*w = Workload{Model: m}
	if m == Partitioned && len(aux.Processors) != 0 && string(aux.Processors) != "null" {
		if err := json.Unmarshal(aux.Processors, &w.Processors); err != nil {
			return fmt.Errorf("workload: processors: %w", err)
		}
	}
	if len(aux.Tasks) == 0 || string(aux.Tasks) == "null" {
		return nil
	}
	switch m {
	case Events:
		if err := json.Unmarshal(aux.Tasks, &w.Events); err != nil {
			return fmt.Errorf("workload: events tasks: %w", err)
		}
	case Partitioned:
		if err := json.Unmarshal(aux.Tasks, &w.PartTasks); err != nil {
			return fmt.Errorf("workload: partitioned tasks: %w", err)
		}
	default:
		if err := json.Unmarshal(aux.Tasks, &w.Tasks); err != nil {
			return fmt.Errorf("workload: sporadic tasks: %w", err)
		}
	}
	return nil
}

// MarshalJSON renders the workload in its wire form. Sporadic workloads
// omit the discriminator so their payloads stay byte-compatible with the
// pre-workload schema; event and partitioned workloads carry their model.
func (w Workload) MarshalJSON() ([]byte, error) {
	switch w.Kind() {
	case Events:
		return json.Marshal(struct {
			Model Model              `json:"model"`
			Tasks []eventstream.Task `json:"tasks"`
		}{Events, w.Events})
	case Partitioned:
		return json.Marshal(struct {
			Model      Model             `json:"model"`
			Processors []Processor       `json:"processors"`
			Tasks      []PartitionedTask `json:"tasks"`
		}{Partitioned, w.Processors, w.PartTasks})
	}
	return json.Marshal(struct {
		Tasks model.TaskSet `json:"tasks"`
	}{w.Tasks})
}

// TasksJSON returns the task array for hand-rolled encoders that flatten
// the workload into an enclosing object (the model goes next to it via
// Kind; partitioned encoders must also emit Processors).
func (w Workload) TasksJSON() any {
	switch w.Kind() {
	case Events:
		return w.Events
	case Partitioned:
		return w.PartTasks
	}
	return w.Tasks
}

// WireModel returns the discriminator value to emit next to TasksJSON:
// the model for event and partitioned workloads, empty (omittable) for
// sporadic ones.
func (w Workload) WireModel() Model {
	switch w.Kind() {
	case Events:
		return Events
	case Partitioned:
		return Partitioned
	}
	return ""
}

// Task is one task under either activation model — the element type of
// polymorphic propose endpoints. Exactly one field is set.
type Task struct {
	Sporadic *model.Task
	Event    *eventstream.Task
}

// SporadicTask wraps a sporadic task.
func SporadicTask(t model.Task) Task { return Task{Sporadic: &t} }

// EventTask wraps an event-driven task.
func EventTask(t eventstream.Task) Task { return Task{Event: &t} }

// Kind returns the task's model; an entirely unset task counts as
// sporadic (and fails Validate).
func (t Task) Kind() Model {
	if t.Event != nil {
		return Events
	}
	return Sporadic
}

// Validate reports the first structural problem of the task.
func (t Task) Validate() error {
	switch {
	case t.Event != nil:
		return t.Event.Validate()
	case t.Sporadic != nil:
		return t.Sporadic.Validate()
	default:
		return fmt.Errorf("workload: empty task")
	}
}

// Utilization returns the task's utilization as an exact rational.
func (t Task) Utilization() *big.Rat {
	if t.Event != nil {
		return eventTaskUtilization(*t.Event)
	}
	if t.Sporadic != nil {
		return t.Sporadic.Utilization()
	}
	return new(big.Rat)
}

// UnmarshalJSON dispatches on the task shape: an object with a "stream"
// key is an event-driven task, anything else decodes as a sporadic task —
// so pre-existing {"wcet", "deadline", "period"} payloads keep working.
func (t *Task) UnmarshalJSON(data []byte) error {
	var probe struct {
		Stream json.RawMessage `json:"stream"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("workload: task: %w", err)
	}
	if probe.Stream != nil {
		var et eventstream.Task
		if err := json.Unmarshal(data, &et); err != nil {
			return fmt.Errorf("workload: event task: %w", err)
		}
		*t = Task{Event: &et}
		return nil
	}
	var st model.Task
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("workload: sporadic task: %w", err)
	}
	*t = Task{Sporadic: &st}
	return nil
}

// MarshalJSON renders whichever side is set.
func (t Task) MarshalJSON() ([]byte, error) {
	switch {
	case t.Event != nil:
		return json.Marshal(t.Event)
	case t.Sporadic != nil:
		return json.Marshal(t.Sporadic)
	default:
		return []byte("null"), nil
	}
}

// eventTaskUtilization is C · Σ 1/cycle over the task's stream.
func eventTaskUtilization(t eventstream.Task) *big.Rat {
	return new(big.Rat).Mul(big.NewRat(t.WCET, 1), t.Stream.Utilization())
}
