package workload

import (
	"encoding/json"
	"math/big"
	"strings"
	"testing"

	"repro/internal/model"
)

func partitionedSet() Workload {
	return NewPartitioned(
		[]Processor{{Name: "p0"}, {Name: "p1", Speed: 2}},
		[]PartitionedTask{
			{Task: model.Task{Name: "a", WCET: 2, Deadline: 8, Period: 10}},
			{Task: model.Task{Name: "b", WCET: 3, Deadline: 15, Period: 15}, Affinity: []int{1}},
		},
	)
}

func TestPartitionedJSONRoundTrip(t *testing.T) {
	w := partitionedSet()
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"model":"partitioned"`) {
		t.Errorf("partitioned workload misses the model field: %s", data)
	}
	var back Workload
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round trip: %v\n%s", err, data)
	}
	if back.Kind() != Partitioned || back.Len() != 2 || len(back.Processors) != 2 {
		t.Fatalf("round trip changed shape: %+v", back)
	}
	if back.Processors[1].Speed != 2 || back.PartTasks[1].Affinity[0] != 1 {
		t.Errorf("round trip lost detail: %+v", back)
	}
	// Raw wire form decodes too, including omitted speeds.
	payload := `{"model":"partitioned","processors":[{},{"speed":3}],
		"tasks":[{"wcet":1,"deadline":4,"period":5,"affinity":[0]}]}`
	var w2 Workload
	if err := json.Unmarshal([]byte(payload), &w2); err != nil {
		t.Fatal(err)
	}
	if w2.Processors[0].EffectiveSpeed() != 1 || w2.Processors[1].EffectiveSpeed() != 3 {
		t.Errorf("effective speeds: %+v", w2.Processors)
	}
	if len(w2.PartTasks) != 1 || !w2.PartTasks[0].Allows(0) || w2.PartTasks[0].Allows(1) {
		t.Errorf("affinity decoded as %+v", w2.PartTasks)
	}
}

func TestPartitionedValidate(t *testing.T) {
	if err := partitionedSet().Validate(); err != nil {
		t.Error(err)
	}
	cases := []struct {
		name string
		w    Workload
	}{
		{"no processors", NewPartitioned(nil, partitionedSet().PartTasks)},
		{"no tasks", NewPartitioned([]Processor{{}}, nil)},
		{"negative speed", NewPartitioned([]Processor{{Speed: -1}}, partitionedSet().PartTasks)},
		{"bad task", NewPartitioned([]Processor{{}}, []PartitionedTask{{Task: model.Task{WCET: 0, Deadline: 1, Period: 1}}})},
		{"affinity out of range", NewPartitioned([]Processor{{}}, []PartitionedTask{
			{Task: model.Task{WCET: 1, Deadline: 2, Period: 2}, Affinity: []int{1}}})},
		{"affinity not increasing", NewPartitioned([]Processor{{}, {}}, []PartitionedTask{
			{Task: model.Task{WCET: 1, Deadline: 2, Period: 2}, Affinity: []int{1, 0}}})},
	}
	for _, c := range cases {
		if err := c.w.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestPartitionedUtilizationAndCapacity(t *testing.T) {
	w := partitionedSet()
	// 2/10 + 3/15 = 2/5; capacity 1 + 2 = 3.
	if u := w.Utilization(); u.Cmp(big.NewRat(2, 5)) != 0 {
		t.Errorf("utilization %s", u)
	}
	if c := w.Capacity(); c.Cmp(big.NewRat(3, 1)) != 0 {
		t.Errorf("capacity %s", c)
	}
}

func TestPartitionedCloneAndConcat(t *testing.T) {
	w := partitionedSet()
	c := w.Clone()
	c.PartTasks[0].WCET = 99
	c.PartTasks[1].Affinity[0] = 0
	c.Processors[1].Speed = 7
	if w.PartTasks[0].WCET == 99 || w.PartTasks[1].Affinity[0] == 0 || w.Processors[1].Speed == 7 {
		t.Error("clone shares state with the original")
	}
	sum, err := w.Concat(partitionedSet())
	if err != nil || sum.Len() != 4 {
		t.Fatalf("concat: %v, len %d", err, sum.Len())
	}
	if _, err := w.Concat(NewSporadic(sporadicSet())); err == nil {
		t.Error("cross-model concat accepted")
	}
	other := partitionedSet()
	other.Processors = other.Processors[:1]
	if _, err := w.Concat(other); err == nil {
		t.Error("concat across differing processor sets accepted")
	}
}
