// Package workload defines the polymorphic workload type shared by the
// analysis engine, the edfd wire API and the CLI tools: one schema that
// carries either a sporadic task set (the paper's base model) or a
// Gresser event-stream task set (Section 3.4), selected by a "model"
// discriminator that defaults to sporadic so pre-existing payloads keep
// parsing unchanged.
package workload
