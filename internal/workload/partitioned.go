package workload

import (
	"fmt"
	"math/big"

	"repro/internal/model"
)

// Processor is one processor of a partitioned platform. Speeds are
// relative integers: a task with WCET C placed on a processor of speed s
// executes for ceil(C/s) time units. Zero means the default speed 1, so
// homogeneous platforms can omit the field entirely.
type Processor struct {
	// Name optionally identifies the processor in placements and traces.
	Name string `json:"name,omitempty"`
	// Speed is the relative speed (>= 1; 0 selects the default 1).
	Speed int64 `json:"speed,omitempty"`
}

// EffectiveSpeed maps the omitted wire value to the default speed 1.
func (p Processor) EffectiveSpeed() int64 {
	if p.Speed == 0 {
		return 1
	}
	return p.Speed
}

// PartitionedTask is a sporadic task plus an optional placement
// constraint: the set of processor indices the task may be assigned to.
// An empty affinity means "any processor".
type PartitionedTask struct {
	model.Task
	// Affinity lists the allowed processor indices, strictly increasing.
	// Empty (or absent on the wire) allows every processor.
	Affinity []int `json:"affinity,omitempty"`
}

// Allows reports whether the task may run on processor proc.
func (t PartitionedTask) Allows(proc int) bool {
	if len(t.Affinity) == 0 {
		return true
	}
	for _, a := range t.Affinity {
		if a == proc {
			return true
		}
	}
	return false
}

// NewPartitioned wraps a partitioned workload: tasks to be placed on the
// given processors.
func NewPartitioned(procs []Processor, tasks []PartitionedTask) Workload {
	return Workload{Model: Partitioned, Processors: procs, PartTasks: tasks}
}

// validatePartitioned reports the first structural problem of a
// partitioned workload: at least one processor, non-negative speeds,
// valid tasks, and affinity lists that are strictly increasing and in
// range.
func (w Workload) validatePartitioned() error {
	if len(w.Processors) == 0 {
		return fmt.Errorf("workload: partitioned workload needs at least one processor")
	}
	for i, p := range w.Processors {
		if p.Speed < 0 {
			return fmt.Errorf("workload: processor %d: speed %d must be non-negative", i, p.Speed)
		}
	}
	if len(w.PartTasks) == 0 {
		return fmt.Errorf("workload: empty partitioned task set")
	}
	for i, t := range w.PartTasks {
		if err := t.Task.Validate(); err != nil {
			return fmt.Errorf("task %d: %w", i, err)
		}
		for j, a := range t.Affinity {
			if a < 0 || a >= len(w.Processors) {
				return fmt.Errorf("workload: task %d: affinity index %d out of range [0, %d)", i, a, len(w.Processors))
			}
			if j > 0 && t.Affinity[j-1] >= a {
				return fmt.Errorf("workload: task %d: affinity indices must be strictly increasing", i)
			}
		}
	}
	return nil
}

// partitionedUtilization is the exact total demand Σ C/T across all
// tasks, independent of any placement. Compare against Capacity to get
// the trivial O(1) infeasibility bound.
func (w Workload) partitionedUtilization() *big.Rat {
	u := new(big.Rat)
	for _, t := range w.PartTasks {
		u.Add(u, t.Task.Utilization())
	}
	return u
}

// Capacity returns the platform capacity Σ speeds as an exact rational
// (zero for non-partitioned workloads). A partitioned workload whose
// Utilization exceeds its Capacity is infeasible under any placement.
func (w Workload) Capacity() *big.Rat {
	c := new(big.Rat)
	for _, p := range w.Processors {
		c.Add(c, big.NewRat(p.EffectiveSpeed(), 1))
	}
	return c
}

// clonePartitioned deep-copies the partitioned payload into out.
func (w Workload) clonePartitioned(out *Workload) {
	if w.Processors != nil {
		out.Processors = append([]Processor(nil), w.Processors...)
	}
	if w.PartTasks != nil {
		out.PartTasks = make([]PartitionedTask, len(w.PartTasks))
		for i, t := range w.PartTasks {
			t.Affinity = append([]int(nil), t.Affinity...)
			out.PartTasks[i] = t
		}
	}
}
