package workload

import (
	"encoding/json"
	"math/big"
	"strings"
	"testing"

	"repro/internal/eventstream"
	"repro/internal/model"
)

func sporadicSet() model.TaskSet {
	return model.TaskSet{
		{Name: "a", WCET: 2, Deadline: 8, Period: 10},
		{Name: "b", WCET: 3, Deadline: 15, Period: 15},
	}
}

func eventSet() []eventstream.Task {
	return []eventstream.Task{
		{Name: "p", WCET: 2, Deadline: 9, Stream: eventstream.Periodic(10)},
		{Name: "q", WCET: 1, Deadline: 24, Stream: eventstream.Burst(50, 3, 4)},
	}
}

// TestUnmarshalDefaultsToSporadic is the back-compat cornerstone: a
// payload without a model discriminator must decode as a sporadic
// workload, bit for bit like the pre-workload schema did.
func TestUnmarshalDefaultsToSporadic(t *testing.T) {
	var w Workload
	payload := `{"name":"x","tasks":[{"wcet":2,"deadline":8,"period":10}],"analyzer":"devi"}`
	if err := json.Unmarshal([]byte(payload), &w); err != nil {
		t.Fatal(err)
	}
	if w.Kind() != Sporadic || len(w.Tasks) != 1 || w.Tasks[0].Period != 10 {
		t.Fatalf("decoded %+v", w)
	}
	if w.Events != nil {
		t.Error("sporadic decode populated the event side")
	}
}

func TestUnmarshalDispatchesOnModel(t *testing.T) {
	var w Workload
	payload := `{"model":"events","tasks":[
		{"wcet":2,"deadline":9,"stream":[{"cycle":10,"offset":0}]}]}`
	if err := json.Unmarshal([]byte(payload), &w); err != nil {
		t.Fatal(err)
	}
	if w.Kind() != Events || len(w.Events) != 1 || w.Events[0].Stream[0].Cycle != 10 {
		t.Fatalf("decoded %+v", w)
	}
	if err := json.Unmarshal([]byte(`{"model":"bogus","tasks":[]}`), &w); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestMarshalRoundTrips(t *testing.T) {
	for _, w := range []Workload{NewSporadic(sporadicSet()), NewEvents(eventSet())} {
		data, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		var back Workload
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("round trip of %s: %v\n%s", w.Kind(), err, data)
		}
		if back.Kind() != w.Kind() || back.Len() != w.Len() {
			t.Errorf("round trip of %s changed shape: %+v", w.Kind(), back)
		}
	}
	// Sporadic marshal must not leak the discriminator (byte compat).
	data, _ := json.Marshal(NewSporadic(sporadicSet()))
	if strings.Contains(string(data), "model") {
		t.Errorf("sporadic workload marshals a model field: %s", data)
	}
	// Event marshal must carry it.
	data, _ = json.Marshal(NewEvents(eventSet()))
	if !strings.Contains(string(data), `"model":"events"`) {
		t.Errorf("event workload misses the model field: %s", data)
	}
}

func TestValidate(t *testing.T) {
	if err := NewSporadic(sporadicSet()).Validate(); err != nil {
		t.Error(err)
	}
	if err := NewEvents(eventSet()).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Workload{}).Validate(); err == nil {
		t.Error("empty workload validated")
	}
	if err := NewEvents(nil).Validate(); err == nil {
		t.Error("empty event workload validated")
	}
	bad := eventSet()
	bad[0].WCET = 0
	if err := NewEvents(bad).Validate(); err == nil {
		t.Error("invalid event task validated")
	}
}

func TestUtilization(t *testing.T) {
	// Sporadic: 2/10 + 3/15 = 2/5.
	if u := NewSporadic(sporadicSet()).Utilization(); u.Cmp(big.NewRat(2, 5)) != 0 {
		t.Errorf("sporadic utilization %s", u)
	}
	// Events: 2·(1/10) + 1·(3/50) = 13/50.
	if u := NewEvents(eventSet()).Utilization(); u.Cmp(big.NewRat(13, 50)) != 0 {
		t.Errorf("event utilization %s", u)
	}
}

func TestCloneIsDeep(t *testing.T) {
	w := NewEvents(eventSet())
	c := w.Clone()
	c.Events[0].WCET = 99
	c.Events[1].Stream[0].Cycle = 1
	if w.Events[0].WCET == 99 || w.Events[1].Stream[0].Cycle == 1 {
		t.Error("clone shares state with the original")
	}
	s := NewSporadic(sporadicSet())
	cs := s.Clone()
	cs.Tasks[0].WCET = 99
	if s.Tasks[0].WCET == 99 {
		t.Error("sporadic clone shares state")
	}
}

func TestConcatAndWith(t *testing.T) {
	a := NewSporadic(sporadicSet())
	b := NewSporadic(model.TaskSet{{WCET: 1, Deadline: 5, Period: 5}})
	sum, err := a.Concat(b)
	if err != nil || sum.Len() != 3 {
		t.Fatalf("concat: %v, len %d", err, sum.Len())
	}
	if _, err := a.Concat(NewEvents(eventSet())); err == nil {
		t.Error("cross-model concat accepted")
	}
	grown := a.With(SporadicTask(model.Task{WCET: 1, Deadline: 5, Period: 5}))
	if grown.Len() != 3 || a.Len() != 2 {
		t.Errorf("With mutated the receiver or dropped the task: %d, %d", grown.Len(), a.Len())
	}
	ev := NewEvents(eventSet()).With(EventTask(eventstream.Task{
		WCET: 1, Deadline: 5, Stream: eventstream.Periodic(7),
	}))
	if ev.Len() != 3 {
		t.Errorf("event With: len %d", ev.Len())
	}
}

func TestTaskUnionJSON(t *testing.T) {
	var tk Task
	if err := json.Unmarshal([]byte(`{"wcet":2,"deadline":8,"period":10}`), &tk); err != nil {
		t.Fatal(err)
	}
	if tk.Kind() != Sporadic || tk.Sporadic == nil || tk.Sporadic.Period != 10 {
		t.Fatalf("sporadic task decoded as %+v", tk)
	}
	if err := json.Unmarshal([]byte(`{"wcet":2,"deadline":8,"stream":[{"cycle":10,"offset":0}]}`), &tk); err != nil {
		t.Fatal(err)
	}
	if tk.Kind() != Events || tk.Event == nil || tk.Event.Stream[0].Cycle != 10 {
		t.Fatalf("event task decoded as %+v", tk)
	}
	// Round trip both shapes.
	for _, orig := range []Task{
		SporadicTask(model.Task{WCET: 2, Deadline: 8, Period: 10}),
		EventTask(eventstream.Task{WCET: 2, Deadline: 8, Stream: eventstream.Periodic(10)}),
	} {
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatal(err)
		}
		var back Task
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.Kind() != orig.Kind() {
			t.Errorf("task round trip changed model: %s -> %s", orig.Kind(), back.Kind())
		}
	}
	if err := (Task{}).Validate(); err == nil {
		t.Error("empty task validated")
	}
	// Task utilization: event task 2·(1/10).
	u := EventTask(eventstream.Task{WCET: 2, Deadline: 8, Stream: eventstream.Periodic(10)}).Utilization()
	if u.Cmp(big.NewRat(1, 5)) != 0 {
		t.Errorf("event task utilization %s", u)
	}
}
