// Package taskgen generates random task sets following the experimental
// setup of the paper's Section 5: utilizations distributed with the
// unbiased UUniFast algorithm of Bini & Buttazzo ("Biasing Effects in
// Schedulability Measures", the paper's reference [4]), equally distributed
// periods, and relative deadlines shortened below the periods by a
// controllable average "gap" (T-D)/T.
//
// Generation is deterministic for a given *rand.Rand, so every experiment
// and benchmark in this repository is reproducible from its seed.
package taskgen
