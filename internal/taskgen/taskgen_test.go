package taskgen

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := Config{N: 5, Utilization: 0.9, PeriodMin: 10, PeriodMax: 100, GapMean: 0.2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bads := []Config{
		{N: 0, Utilization: 0.9, PeriodMin: 10, PeriodMax: 100},
		{N: 5, Utilization: 0, PeriodMin: 10, PeriodMax: 100},
		{N: 5, Utilization: 1.2, PeriodMin: 10, PeriodMax: 100},
		{N: 5, Utilization: 0.9, PeriodMin: 0, PeriodMax: 100},
		{N: 5, Utilization: 0.9, PeriodMin: 100, PeriodMax: 10},
		{N: 5, Utilization: 0.9, PeriodMin: 10, PeriodMax: 100, GapMean: 0.7},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestUUniFastSumsAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for range 500 {
		n := 1 + rng.Intn(50)
		u := 0.1 + 0.9*rng.Float64()
		utils := UUniFast(n, u, rng)
		if len(utils) != n {
			t.Fatalf("len %d, want %d", len(utils), n)
		}
		sum := 0.0
		for _, v := range utils {
			if v < 0 || v > u+1e-12 {
				t.Fatalf("utilization %v out of range (total %v)", v, u)
			}
			sum += v
		}
		if math.Abs(sum-u) > 1e-9 {
			t.Fatalf("sum %v, want %v", sum, u)
		}
	}
}

// TestUUniFastUnbiased spot-checks the defining property of UUniFast: each
// task's expected utilization share is u/n.
func TestUUniFastUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const n, rounds = 4, 20000
	var mean [n]float64
	for range rounds {
		for i, v := range UUniFast(n, 0.8, rng) {
			mean[i] += v / rounds
		}
	}
	for i, m := range mean {
		if math.Abs(m-0.2) > 0.01 {
			t.Errorf("slot %d mean %v, want 0.2 +- 0.01", i, m)
		}
	}
}

func TestNewRespectsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	cfg := Config{
		N: 20, Utilization: 0.9,
		PeriodMin: 1000, PeriodMax: 100000,
		GapMean: 0.25,
	}
	var gapSum float64
	var gapCount int
	for range 300 {
		ts, err := New(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := ts.Validate(); err != nil {
			t.Fatalf("generated invalid set: %v", err)
		}
		if len(ts) != cfg.N {
			t.Fatalf("n = %d", len(ts))
		}
		for _, task := range ts {
			if task.Period < cfg.PeriodMin || task.Period > cfg.PeriodMax {
				t.Fatalf("period %d out of range", task.Period)
			}
			if task.Deadline > task.Period {
				t.Fatalf("deadline %d beyond period %d", task.Deadline, task.Period)
			}
			gapSum += task.Gap()
			gapCount++
		}
		if u := ts.UtilizationFloat(); math.Abs(u-0.9) > 0.02 {
			t.Fatalf("achieved U %v too far from target", u)
		}
	}
	if mean := gapSum / float64(gapCount); math.Abs(mean-0.25) > 0.02 {
		t.Errorf("mean gap %v, want ~0.25", mean)
	}
}

func TestLogUniformPeriodsSpreadMagnitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	cfg := Config{
		N: 1, Utilization: 0.5,
		PeriodMin: 1000, PeriodMax: 1000000,
		LogUniformPeriods: true,
	}
	buckets := map[int]int{} // order of magnitude -> count
	for range 3000 {
		ts, err := New(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		buckets[int(math.Log10(float64(ts[0].Period)))]++
	}
	// Log-uniform means magnitudes 3, 4 and 5 each get a solid share;
	// uniform sampling would put ~99% into magnitude 5.
	for _, mag := range []int{3, 4, 5} {
		if buckets[mag] < 300 {
			t.Errorf("magnitude %d underrepresented: %v", mag, buckets)
		}
	}
}

func TestNewInUtilizationBand(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	cfg := Config{N: 10, Utilization: 0.95, PeriodMin: 1000, PeriodMax: 50000, GapMean: 0.2}
	for range 100 {
		ts, err := NewInUtilizationBand(cfg, 0.93, 0.97, 50, rng)
		if err != nil {
			t.Fatal(err)
		}
		if u := ts.UtilizationFloat(); u < 0.93 || u > 0.97 {
			t.Fatalf("U %v outside band", u)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := Config{N: 8, Utilization: 0.8, PeriodMin: 100, PeriodMax: 10000, GapMean: 0.3}
	a, err := New(cfg, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different sets")
		}
	}
}
