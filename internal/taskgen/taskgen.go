package taskgen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
)

// Config describes one random task set.
type Config struct {
	// N is the number of tasks (> 0).
	N int
	// Utilization is the target total utilization in (0, 1].
	Utilization float64
	// PeriodMin and PeriodMax bound the integer periods (inclusive).
	PeriodMin, PeriodMax int64
	// LogUniformPeriods draws periods log-uniformly instead of uniformly,
	// spreading them evenly across magnitudes; used by the Tmax/Tmin ratio
	// experiment (Figure 9).
	LogUniformPeriods bool
	// GapMean is the average relative gap (T-D)/T between period and
	// deadline, in [0, 0.5]. Each task draws its gap uniformly from
	// [0, 2*GapMean], so the mean matches the paper's "average gap".
	GapMean float64
}

// Validate reports the first configuration problem.
func (c Config) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("taskgen: N=%d must be positive", c.N)
	case !(c.Utilization > 0 && c.Utilization <= 1):
		return fmt.Errorf("taskgen: utilization %v must be in (0,1]", c.Utilization)
	case c.PeriodMin <= 0 || c.PeriodMax < c.PeriodMin:
		return fmt.Errorf("taskgen: invalid period range [%d,%d]", c.PeriodMin, c.PeriodMax)
	case c.GapMean < 0 || c.GapMean > 0.5:
		return fmt.Errorf("taskgen: gap mean %v must be in [0,0.5]", c.GapMean)
	}
	return nil
}

// ErrUnsatisfiable is returned when rounding to integer parameters cannot
// reach the requested utilization (for example many tasks with tiny
// periods).
var ErrUnsatisfiable = errors.New("taskgen: cannot reach requested utilization with integer parameters")

// UUniFast distributes total utilization u over n tasks with the unbiased
// algorithm of Bini & Buttazzo. The returned slice sums to u.
func UUniFast(n int, u float64, rng *rand.Rand) []float64 {
	utils := make([]float64, n)
	sum := u
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-1-i))
		utils[i] = sum - next
		sum = next
	}
	utils[n-1] = sum
	return utils
}

// New generates one task set. The achieved utilization can deviate slightly
// from the target because execution times are rounded to integers; the
// deviation shrinks with the period magnitude (use PeriodMin >= 1000 for
// per-mille accuracy).
func New(cfg Config, rng *rand.Rand) (model.TaskSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	utils := UUniFast(cfg.N, cfg.Utilization, rng)
	ts := make(model.TaskSet, 0, cfg.N)
	for _, u := range utils {
		T := drawPeriod(cfg, rng)
		C := int64(math.Round(u * float64(T)))
		if C < 1 {
			C = 1
		}
		if C > T {
			C = T
		}
		gap := 0.0
		if cfg.GapMean > 0 {
			gap = rng.Float64() * 2 * cfg.GapMean
		}
		D := int64(math.Round((1 - gap) * float64(T)))
		if D < C {
			D = C
		}
		if D > T {
			D = T
		}
		ts = append(ts, model.Task{WCET: C, Deadline: D, Period: T})
	}
	return ts, nil
}

// drawPeriod picks a period in [PeriodMin, PeriodMax].
func drawPeriod(cfg Config, rng *rand.Rand) int64 {
	if cfg.PeriodMin == cfg.PeriodMax {
		return cfg.PeriodMin
	}
	if cfg.LogUniformPeriods {
		lo, hi := math.Log(float64(cfg.PeriodMin)), math.Log(float64(cfg.PeriodMax))
		T := int64(math.Round(math.Exp(lo + rng.Float64()*(hi-lo))))
		return min(max(T, cfg.PeriodMin), cfg.PeriodMax)
	}
	return cfg.PeriodMin + rng.Int63n(cfg.PeriodMax-cfg.PeriodMin+1)
}

// NewInUtilizationBand generates task sets until one lands with achieved
// utilization inside [lo, hi]; it gives up after attempts tries. The
// paper's experiments select sets by utilization band (e.g. 90-99%), and
// integer rounding makes hitting a point target unreliable, so banding is
// the faithful reproduction.
func NewInUtilizationBand(cfg Config, lo, hi float64, attempts int, rng *rand.Rand) (model.TaskSet, error) {
	for range attempts {
		cfg.Utilization = lo + rng.Float64()*(hi-lo)
		ts, err := New(cfg, rng)
		if err != nil {
			return nil, err
		}
		if u := ts.UtilizationFloat(); u >= lo && u <= hi {
			return ts, nil
		}
	}
	return nil, ErrUnsatisfiable
}
