package engine

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/workload"
)

// Job is one (workload, analyzer) unit of batch work.
type Job struct {
	// SetIndex identifies the task set within the batch.
	SetIndex int
	// SetName is an optional display name for the set.
	SetName string
	// Set is the sporadic task set to analyze. It is consulted only when
	// Workload is unset, so pre-workload call sites keep working.
	Set model.TaskSet
	// Workload is the polymorphic task set to analyze; when set it takes
	// precedence over Set and selects the analyzer entry point by model.
	Workload workload.Workload
	// Analyzer runs the test.
	Analyzer Analyzer
	// Opt tunes the test.
	Opt core.Options
}

// workload returns the effective workload: the explicit one, or Set
// wrapped as a sporadic workload.
func (j Job) workload() workload.Workload {
	if j.Workload.IsZero() {
		return workload.NewSporadic(j.Set)
	}
	return j.Workload
}

// JobResult is the outcome of one job, with per-job telemetry.
type JobResult struct {
	Job
	// Result is the test outcome; its Iterations field carries the
	// paper's effort metric.
	Result core.Result
	// Wall is the job's wall-clock duration.
	Wall time.Duration
	// Promotions counts the job's exits from the bounded-denominator
	// fast path (see demand.Scratch.ArithPromotions), measured against
	// the worker's scratch around the run.
	Promotions uint64
	// Err is non-nil when the batch context was canceled before the job
	// ran, or when the job paired an event workload with an analyzer
	// lacking event support (*EventsUnsupportedError); the Result is then
	// zero-valued with an Undecided verdict.
	Err error
}

// RunOptions tune the batch runner.
type RunOptions struct {
	// Workers bounds the worker pool; <= 0 selects runtime.NumCPU().
	Workers int
}

// Batch builds the (set x analyzer) cross product in set-major order: job
// i covers set i/len(analyzers) under analyzer i%len(analyzers), and
// Run's result slice keeps exactly that order.
func Batch(sets []model.TaskSet, analyzers []Analyzer, opt core.Options) []Job {
	jobs := make([]Job, 0, len(sets)*len(analyzers))
	for si, ts := range sets {
		for _, a := range analyzers {
			jobs = append(jobs, Job{SetIndex: si, Set: ts, Analyzer: a, Opt: opt})
		}
	}
	return jobs
}

// Run executes the jobs over a bounded worker pool and returns one result
// per job, in job order regardless of completion order, so batch output
// is deterministic for any worker count. Each worker analyzes with its
// own pooled Scratch; Job.Opt.Scratch is ignored (it would be shared
// across workers otherwise) and comes back nil in the results. Cancel
// the context to stop: jobs not yet started are returned with Err set to
// the context's error (a job already running finishes normally — the
// tests themselves are not preemptible).
func Run(ctx context.Context, jobs []Job, ro RunOptions) []JobResult {
	out := make([]JobResult, len(jobs))
	workers := ro.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	workers = min(workers, max(len(jobs), 1))

	next := make(chan int)
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One analysis Scratch per worker: every job this worker runs
			// reuses the same test list, job counters and source adapters,
			// so a long batch allocates per worker, not per job. Any
			// caller-supplied Opt.Scratch is replaced — a Scratch serves
			// one analysis at a time, and a single one shared across the
			// fanned-out jobs would race between workers.
			scratch := demand.GetScratch()
			defer demand.PutScratch(scratch)
			for i := range next {
				job := jobs[i]
				job.Opt.Scratch = scratch
				p0 := scratch.ArithPromotions()
				out[i] = runJob(ctx, job)
				out[i].Promotions = scratch.ArithPromotions() - p0
				// Do not leak the pooled scratch to the caller through the
				// echoed Job: it is recycled when this worker exits.
				out[i].Job.Opt.Scratch = nil
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case next <- i:
		case <-ctx.Done():
			for ; i < len(jobs); i++ {
				out[i] = JobResult{
					Job:    jobs[i],
					Result: core.Result{Verdict: core.Undecided},
					Err:    ctx.Err(),
				}
			}
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return out
}

// runJob executes one job, honoring cancellation between dispatch and
// start and dispatching on the job's workload model.
func runJob(ctx context.Context, job Job) JobResult {
	if err := ctx.Err(); err != nil {
		return JobResult{Job: job, Result: core.Result{Verdict: core.Undecided}, Err: err}
	}
	start := time.Now()
	res, err := AnalyzeWorkload(job.Analyzer, job.workload(), job.Opt)
	return JobResult{Job: job, Result: res, Wall: time.Since(start), Err: err}
}

// RunSets is the common whole-batch convenience: it runs every analyzer
// on every set on all CPUs and returns the results grouped per set, in
// analyzer order.
func RunSets(ctx context.Context, sets []model.TaskSet, analyzers []Analyzer, opt core.Options, ro RunOptions) [][]core.Result {
	results := Run(ctx, Batch(sets, analyzers, opt), ro)
	grouped := make([][]core.Result, len(sets))
	for si := range grouped {
		grouped[si] = make([]core.Result, len(analyzers))
		for ai := range analyzers {
			grouped[si][ai] = results[si*len(analyzers)+ai].Result
		}
	}
	return grouped
}
