package engine

import (
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eventstream"
	"repro/internal/model"
)

// Cascade implements the paper's escalation strategy: run cheap sufficient
// tests first and fall through to an exact test only when none of them
// settles the verdict. On the vast majority of task sets a sufficient test
// already accepts (Figure 1), so the expected cost matches the cheapest
// test while the worst case stays exact — the same portfolio insight the
// whole paper builds on.
type Cascade struct {
	sufficient []Analyzer
	exact      Analyzer
}

// NewCascade builds a cascade from the given sufficient stages (tried in
// order) and the final exact stage. Nil arguments select the defaults:
// liu-layland and devi ahead of superpos(DefaultSuperPosLevel), with the
// all-approximated test as the exact authority.
func NewCascade(sufficient []Analyzer, exact Analyzer) *Cascade {
	if sufficient == nil {
		sufficient = []Analyzer{
			NewLiuLayland(),
			NewDevi(),
			NewSuperPos(DefaultSuperPosLevel),
		}
	}
	if exact == nil {
		exact = NewAllApprox()
	}
	return &Cascade{sufficient: sufficient, exact: exact}
}

// Info describes the cascade. It inherits the exact stage's kind,
// blocking and event support: sufficient stages that cannot handle the
// requested mode are skipped rather than consulted, so only the exact
// authority constrains what the cascade accepts.
func (c *Cascade) Info() Info {
	stages := make([]string, 0, len(c.sufficient)+1)
	for _, a := range c.sufficient {
		stages = append(stages, a.Info().Name)
	}
	stages = append(stages, c.exact.Info().Name)
	return Info{
		Name:     "cascade",
		Label:    "cascade(" + strings.Join(stages, "→") + ")",
		Kind:     c.exact.Info().Kind,
		Blocking: c.exact.Info().Blocking,
		Events:   c.exact.Info().Events,
	}
}

// Analyze runs the stages cheapest-first and returns as soon as one is
// definite. Iterations, revisions and the maximum superposition level
// accumulate across every stage that ran, so the result still reports the
// paper's effort metric for the whole escalation.
func (c *Cascade) Analyze(ts model.TaskSet, opt core.Options) core.Result {
	return c.run(opt, func(a Analyzer) (core.Result, bool) {
		return a.Analyze(ts, opt), true
	})
}

// AnalyzeEvents escalates on event-driven task sets, skipping sufficient
// stages without event support.
func (c *Cascade) AnalyzeEvents(tasks []eventstream.Task, opt core.Options) core.Result {
	return c.run(opt, func(a Analyzer) (core.Result, bool) {
		ea, ok := a.(EventAnalyzer)
		if !ok {
			return core.Result{Verdict: core.Undecided}, false
		}
		return ea.AnalyzeEvents(tasks, opt), true
	})
}

// run drives the escalation with a per-stage evaluator; eval reports
// whether the stage actually ran (an analyzer without event support is
// skipped, not consulted). Stages that ran are recorded into opt.Stages
// when the caller asked for tracing.
func (c *Cascade) run(opt core.Options, eval func(Analyzer) (core.Result, bool)) core.Result {
	evalStage := func(a Analyzer) core.Result {
		if opt.Stages == nil {
			r, _ := eval(a)
			return r
		}
		start := time.Now()
		var p0 uint64
		if opt.Scratch != nil {
			p0 = opt.Scratch.ArithPromotions()
		}
		r, ran := eval(a)
		if ran {
			var promos uint64
			if opt.Scratch != nil {
				promos = opt.Scratch.ArithPromotions() - p0
			}
			opt.Stages.Record(a.Info().Name, r.Verdict.String(), r.Iterations, time.Since(start).Nanoseconds(), promos)
		}
		return r
	}
	var spent core.Result
	accumulate := func(r core.Result) core.Result {
		r.Iterations += spent.Iterations
		r.Revisions += spent.Revisions
		r.MaxLevel = max(r.MaxLevel, spent.MaxLevel)
		return r
	}
	for _, a := range c.sufficient {
		if opt.Blocking != nil && !a.Info().Blocking {
			continue // the guard would yield Undecided; skip straight on
		}
		r := evalStage(a)
		if r.Verdict.Definite() {
			return accumulate(r)
		}
		spent.Iterations += r.Iterations
		spent.Revisions += r.Revisions
		spent.MaxLevel = max(spent.MaxLevel, r.MaxLevel)
	}
	return accumulate(evalStage(c.exact))
}
