package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
)

// fingerprintVersion tags the canonical encoding; bump it whenever the
// encoding below changes so stale cache entries can never alias.
const fingerprintVersion = "edf.fp.v1"

// Fingerprint returns a content-addressed identity for an analysis: the
// hex SHA-256 of a canonical encoding of (task set, analyzer name,
// options). Two analyses share a fingerprint exactly when they are
// guaranteed to produce the same Result, so the fingerprint is a sound
// cache key for analysis results.
//
// Task names are excluded (they never influence a verdict); task order is
// included (it can influence effort counters such as revision order).
// ok is false when the options carry state the encoding cannot capture —
// today a non-nil Blocking function — in which case the analysis must not
// be cached.
func Fingerprint(ts model.TaskSet, analyzer string, opt core.Options) (fp string, ok bool) {
	if opt.Blocking != nil {
		return "", false
	}
	h := sha256.New()
	buf := make([]byte, 0, 16*(len(ts)+2))
	buf = append(buf, fingerprintVersion...)
	buf = append(buf, 0)
	buf = append(buf, strings.ToLower(strings.TrimSpace(analyzer))...)
	buf = append(buf, 0)
	buf = append(buf, byte(opt.Arithmetic), byte(opt.RevisionOrder))
	buf = binary.AppendVarint(buf, opt.MaxIterations)
	buf = binary.AppendVarint(buf, opt.MaxLevel)
	buf = append(buf, opt.Bound...)
	buf = append(buf, 0)
	buf = binary.AppendVarint(buf, int64(len(ts)))
	for _, t := range ts {
		buf = binary.AppendVarint(buf, t.WCET)
		buf = binary.AppendVarint(buf, t.Deadline)
		buf = binary.AppendVarint(buf, t.Period)
		buf = binary.AppendVarint(buf, t.Phase)
		buf = binary.AppendVarint(buf, t.CriticalSection)
		buf = binary.AppendVarint(buf, t.SelfSuspension)
	}
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil)), true
}
