package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// Domain tags of the canonical encodings; bump a tag whenever its
// encoding below changes so stale cache entries can never alias. The
// tags are fixed NUL-free literals, none a prefix of another, and every
// encoding starts with its tag followed by a NUL — so encodings of
// different models can never be equal and the result spaces cannot
// collide in a shared cache.
const (
	fingerprintVersion            = "edf.fp.v1"
	eventFingerprintVersion       = "edf.fp.events.v1"
	partitionedFingerprintVersion = "edf.fp.partitioned.v1"
)

// Fingerprint returns a content-addressed identity for a sporadic-set
// analysis: the hex SHA-256 of a canonical encoding of (task set,
// analyzer name, options). Two analyses share a fingerprint exactly when
// they are guaranteed to produce the same Result, so the fingerprint is a
// sound cache key for analysis results.
//
// Task names are excluded (they never influence a verdict); task order is
// included (it can influence effort counters such as revision order).
// ok is false when the options carry state the encoding cannot capture —
// today a non-nil Blocking function — in which case the analysis must not
// be cached.
func Fingerprint(ts model.TaskSet, analyzer string, opt core.Options) (fp string, ok bool) {
	return WorkloadFingerprint(workload.NewSporadic(ts), analyzer, opt)
}

// WorkloadFingerprint is the workload-polymorphic content address: the
// same contract as Fingerprint, with the encoding domain-separated by the
// workload model. Sporadic workloads keep the exact pre-workload
// encoding, so fingerprints already handed out (or persisted) stay valid.
func WorkloadFingerprint(wl workload.Workload, analyzer string, opt core.Options) (fp string, ok bool) {
	if opt.Blocking != nil {
		return "", false
	}
	var buf []byte
	if wl.Kind() == workload.Partitioned {
		buf = make([]byte, 0, 64+24*len(wl.PartTasks))
		buf = append(buf, partitionedFingerprintVersion...)
		buf = appendAnalysisHeader(buf, analyzer, opt)
		buf = binary.AppendVarint(buf, int64(len(wl.Processors)))
		for _, p := range wl.Processors {
			// Encode the effective speed so an omitted speed and an
			// explicit 1 address the same result.
			buf = binary.AppendVarint(buf, p.EffectiveSpeed())
		}
		buf = binary.AppendVarint(buf, int64(len(wl.PartTasks)))
		for _, t := range wl.PartTasks {
			buf = binary.AppendVarint(buf, t.WCET)
			buf = binary.AppendVarint(buf, t.Deadline)
			buf = binary.AppendVarint(buf, t.Period)
			buf = binary.AppendVarint(buf, t.Phase)
			buf = binary.AppendVarint(buf, t.CriticalSection)
			buf = binary.AppendVarint(buf, t.SelfSuspension)
			buf = binary.AppendVarint(buf, int64(len(t.Affinity)))
			for _, a := range t.Affinity {
				buf = binary.AppendVarint(buf, int64(a))
			}
		}
	} else if wl.Kind() == workload.Events {
		buf = make([]byte, 0, 64+32*len(wl.Events))
		buf = append(buf, eventFingerprintVersion...)
		buf = appendAnalysisHeader(buf, analyzer, opt)
		buf = binary.AppendVarint(buf, int64(len(wl.Events)))
		for _, t := range wl.Events {
			buf = binary.AppendVarint(buf, t.WCET)
			buf = binary.AppendVarint(buf, t.Deadline)
			buf = binary.AppendVarint(buf, int64(len(t.Stream)))
			for _, e := range t.Stream {
				buf = binary.AppendVarint(buf, e.Cycle)
				buf = binary.AppendVarint(buf, e.Offset)
			}
		}
	} else {
		ts := wl.Tasks
		buf = make([]byte, 0, 16*(len(ts)+2))
		buf = append(buf, fingerprintVersion...)
		buf = appendAnalysisHeader(buf, analyzer, opt)
		buf = binary.AppendVarint(buf, int64(len(ts)))
		for _, t := range ts {
			buf = binary.AppendVarint(buf, t.WCET)
			buf = binary.AppendVarint(buf, t.Deadline)
			buf = binary.AppendVarint(buf, t.Period)
			buf = binary.AppendVarint(buf, t.Phase)
			buf = binary.AppendVarint(buf, t.CriticalSection)
			buf = binary.AppendVarint(buf, t.SelfSuspension)
		}
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:]), true
}

// appendAnalysisHeader encodes the model-independent identity parts —
// the NUL closing the domain tag, the analyzer name and the serializable
// options — exactly as the v1 sporadic encoding laid them out.
func appendAnalysisHeader(buf []byte, analyzer string, opt core.Options) []byte {
	buf = append(buf, 0)
	buf = append(buf, strings.ToLower(strings.TrimSpace(analyzer))...)
	buf = append(buf, 0)
	buf = append(buf, byte(opt.Arithmetic), byte(opt.RevisionOrder))
	buf = binary.AppendVarint(buf, opt.MaxIterations)
	buf = binary.AppendVarint(buf, opt.MaxLevel)
	buf = append(buf, opt.Bound...)
	buf = append(buf, 0)
	return buf
}
