package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"repro/internal/core"
)

// TestBatchDeterminism is the engine's ordering contract: the same batch
// through 1 worker and through N workers yields identical ordered results.
func TestBatchDeterminism(t *testing.T) {
	sets := randomSets(t, 40, 11)
	analyzers := MustParse("devi,allapprox,qpa,cascade")
	jobs := Batch(sets, analyzers, core.Options{Arithmetic: core.ArithFloat64})
	if len(jobs) != len(sets)*len(analyzers) {
		t.Fatalf("jobs = %d", len(jobs))
	}

	serial := Run(context.Background(), jobs, RunOptions{Workers: 1})
	parallel := Run(context.Background(), jobs, RunOptions{Workers: runtime.NumCPU()})
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("results = %d / %d", len(serial), len(parallel))
	}
	for i := range jobs {
		s, p := serial[i], parallel[i]
		if s.SetIndex != jobs[i].SetIndex ||
			s.Analyzer.Info().Name != jobs[i].Analyzer.Info().Name {
			t.Fatalf("job %d: result out of order", i)
		}
		if s.Result != p.Result {
			t.Errorf("job %d (%s on set %d): serial %+v, parallel %+v",
				i, jobs[i].Analyzer.Info().Name, jobs[i].SetIndex, s.Result, p.Result)
		}
		if s.Err != nil || p.Err != nil {
			t.Errorf("job %d: unexpected error %v / %v", i, s.Err, p.Err)
		}
	}
}

func TestBatchTelemetry(t *testing.T) {
	sets := randomSets(t, 4, 3)
	results := Run(context.Background(), Batch(sets, MustParse("pd"), core.Options{}), RunOptions{})
	for i, r := range results {
		if r.Wall <= 0 {
			t.Errorf("job %d: no wall time recorded", i)
		}
		if r.Result.Iterations <= 0 {
			t.Errorf("job %d: no iteration telemetry", i)
		}
	}
}

func TestBatchCancellation(t *testing.T) {
	sets := randomSets(t, 64, 5)
	jobs := Batch(sets, MustParse("allapprox"), core.Options{})

	// Already-canceled context: nothing runs, every job reports the error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := Run(ctx, jobs, RunOptions{Workers: 4})
	if len(results) != len(jobs) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
		if r.Result.Verdict != core.Undecided {
			t.Errorf("job %d: skipped job has verdict %v", i, r.Result.Verdict)
		}
	}
}

func TestRunSetsGroups(t *testing.T) {
	sets := randomSets(t, 6, 17)
	analyzers := MustParse("devi,pd")
	grouped := RunSets(context.Background(), sets, analyzers, core.Options{}, RunOptions{})
	if len(grouped) != len(sets) {
		t.Fatalf("groups = %d", len(grouped))
	}
	for si, perSet := range grouped {
		if len(perSet) != len(analyzers) {
			t.Fatalf("set %d: %d results", si, len(perSet))
		}
		// Spot-check against direct invocation.
		want := analyzers[1].Analyze(sets[si], core.Options{})
		if perSet[1] != want {
			t.Errorf("set %d: grouped pd result %+v, direct %+v", si, perSet[1], want)
		}
	}
}
