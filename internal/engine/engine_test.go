package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/examplesets"
	"repro/internal/model"
	"repro/internal/taskgen"
)

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{
		"liu", "devi", "superpos", "rtc", "dynamic", "allapprox",
		"qpa", "response", "pd", "cascade",
	} {
		a, ok := Get(name)
		if !ok {
			t.Fatalf("builtin %q not registered", name)
		}
		if got := a.Info().Name; got != name {
			t.Errorf("Get(%q).Info().Name = %q", name, got)
		}
	}
	// Label aliases and case-insensitivity.
	if a, ok := Get("Processor-Demand"); !ok || a.Info().Name != "pd" {
		t.Errorf("label alias lookup failed: %v", ok)
	}
	// Parameterized superposition levels resolve without registration.
	a, ok := Get("superpos(7)")
	if !ok {
		t.Fatal("superpos(7) not resolved")
	}
	if a.Info().Name != "superpos(7)" || a.Info().Kind != Sufficient {
		t.Errorf("superpos(7) info = %+v", a.Info())
	}
	if _, ok := Get("superpos(0)"); ok {
		t.Error("superpos(0) accepted (levels start at 1)")
	}
	if _, ok := Get("nope"); ok {
		t.Error("unknown analyzer resolved")
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(NewDevi()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(NewDevi()); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestParseSpecs(t *testing.T) {
	names := func(as []Analyzer) string {
		out := make([]string, len(as))
		for i, a := range as {
			out[i] = a.Info().Name
		}
		return strings.Join(out, ",")
	}

	all, err := Parse("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(All()) {
		t.Errorf("all: %d analyzers, want %d", len(all), len(All()))
	}

	got, err := Parse("devi, qpa ,superpos(5)")
	if err != nil {
		t.Fatal(err)
	}
	if names(got) != "devi,qpa,superpos(5)" {
		t.Errorf("list spec resolved to %q", names(got))
	}

	// Group keywords filter by kind; duplicates collapse.
	exact, err := Parse("exact,allapprox")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range exact {
		if a.Info().Kind != Exact {
			t.Errorf("exact spec included %s", a.Info().Name)
		}
	}
	if n := names(exact); strings.Count(n, "allapprox") != 1 {
		t.Errorf("duplicate not collapsed: %q", n)
	}

	if _, err := Parse("devi,bogus"); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := Parse(" , "); err == nil {
		t.Error("empty spec accepted")
	}
}

// randomSets generates n random task sets across the interesting
// utilization range, including infeasible ones.
func randomSets(tb testing.TB, n int, seed int64) []model.TaskSet {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	sets := make([]model.TaskSet, 0, n)
	for len(sets) < n {
		u := 0.70 + rng.Float64()*0.299
		gap := rng.Float64() * 0.45
		ts, err := taskgen.New(taskgen.Config{
			N:           3 + rng.Intn(28),
			Utilization: u,
			PeriodMin:   100,
			PeriodMax:   10000,
			GapMean:     gap / 2,
		}, rng)
		if err != nil || ts.OverUtilized() {
			continue
		}
		sets = append(sets, ts)
	}
	return sets
}

// TestCrossAgreement is the engine's property test: on the literature sets
// and ~200 random sets, every exact analyzer must return the same verdict
// and no sufficient analyzer may accept an infeasible set.
func TestCrossAgreement(t *testing.T) {
	sets := randomSets(t, 200, 42)
	for _, ex := range examplesets.All() {
		sets = append(sets, ex.Set)
	}

	exact := MustParse("exact")
	sufficient := MustParse("sufficient")
	reference := MustGet("pd")

	nFeasible, nInfeasible := 0, 0
	for si, ts := range sets {
		want := reference.Analyze(ts, core.Options{}).Verdict
		if !want.Definite() {
			t.Fatalf("set %d: reference verdict %v", si, want)
		}
		if want == core.Feasible {
			nFeasible++
		} else {
			nInfeasible++
		}
		for _, a := range exact {
			got := a.Analyze(ts, core.Options{}).Verdict
			if got == core.Undecided {
				continue // a cap or unsupported regime; not a disagreement
			}
			if got != want {
				t.Errorf("set %d (U=%.4f): %s says %v, reference %v",
					si, ts.UtilizationFloat(), a.Info().Name, got, want)
			}
		}
		for _, a := range sufficient {
			switch got := a.Analyze(ts, core.Options{}).Verdict; got {
			case core.Feasible:
				if want != core.Feasible {
					t.Errorf("set %d (U=%.4f): sufficient %s accepted an infeasible set",
						si, ts.UtilizationFloat(), a.Info().Name)
				}
			case core.Infeasible:
				// Sufficient tests may only claim infeasibility on an
				// exact witness.
				if want != core.Infeasible {
					t.Errorf("set %d: sufficient %s rejected a feasible set as infeasible",
						si, a.Info().Name)
				}
			}
		}
	}
	// The sample must exercise both verdicts or the property is vacuous.
	if nFeasible == 0 || nInfeasible == 0 {
		t.Fatalf("degenerate sample: %d feasible, %d infeasible", nFeasible, nInfeasible)
	}
}

func TestCascadeMatchesExactAndStaysCheap(t *testing.T) {
	cascade := MustGet("cascade")
	exact := MustGet("allapprox")
	liu := MustGet("liu")
	devi := MustGet("devi")
	for si, ts := range randomSets(t, 60, 7) {
		want := exact.Analyze(ts, core.Options{})
		got := cascade.Analyze(ts, core.Options{})
		if got.Verdict != want.Verdict {
			t.Errorf("set %d: cascade %v, exact %v", si, got.Verdict, want.Verdict)
		}
		// When Devi already accepts, the cascade must have stopped at the
		// second stage: its total effort is bounded by liu + devi.
		if devi.Analyze(ts, core.Options{}).Verdict == core.Feasible {
			bound := liu.Analyze(ts, core.Options{}).Iterations +
				devi.Analyze(ts, core.Options{}).Iterations
			if got.Iterations > bound {
				t.Errorf("set %d: cascade spent %d intervals, cheap stages only need %d",
					si, got.Iterations, bound)
			}
		}
	}
}

func TestBlockingGuard(t *testing.T) {
	ts := examplesets.All()[0].Set
	blocking := func(I int64) int64 { return 1 }
	for _, a := range All() {
		res := a.Analyze(ts, core.Options{Blocking: blocking})
		if !a.Info().Blocking && res.Verdict != core.Undecided {
			t.Errorf("%s ignores unsupported blocking (verdict %v)",
				a.Info().Name, res.Verdict)
		}
		if a.Info().Blocking && res.Verdict == core.Undecided {
			t.Errorf("%s claims blocking support but returned Undecided",
				a.Info().Name)
		}
	}
}

func TestInfoShapes(t *testing.T) {
	for _, a := range All() {
		info := a.Info()
		if info.Label == "" {
			t.Errorf("%s: empty label", info.Name)
		}
		_, isEvent := a.(EventAnalyzer)
		if info.Events != isEvent {
			t.Errorf("%s: Events flag %v but EventAnalyzer=%v",
				info.Name, info.Events, isEvent)
		}
		if s := info.Kind.String(); s != "exact" && s != "sufficient" {
			t.Errorf("%s: kind %q", info.Name, s)
		}
	}
	if fmt.Sprint(Kind(9)) != "kind(9)" {
		t.Errorf("unknown kind renders as %q", fmt.Sprint(Kind(9)))
	}
}
