package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eventstream"
	"repro/internal/model"
	"repro/internal/response"
	"repro/internal/rtc"
)

// Kind classifies what an analyzer's verdict can mean.
type Kind uint8

const (
	// Exact analyzers decide feasibility both ways.
	Exact Kind = iota
	// Sufficient analyzers only accept: NotAccepted is inconclusive.
	Sufficient
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case Exact:
		return "exact"
	case Sufficient:
		return "sufficient"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Info describes a registered analyzer.
type Info struct {
	// Name is the registry key (e.g. "allapprox", "superpos(5)").
	Name string
	// Label is the long display name used by the CLI tools
	// (e.g. "processor-demand").
	Label string
	// Kind reports whether the analyzer is exact or merely sufficient.
	Kind Kind
	// Blocking reports whether Options.Blocking is honored. Analyzers
	// without blocking support return Undecided when it is set rather
	// than silently ignoring it.
	Blocking bool
	// Events reports whether the analyzer also runs on Gresser
	// event-stream task sets (it implements EventAnalyzer).
	Events bool
}

// Analyzer is a named feasibility test on sporadic task sets.
type Analyzer interface {
	Info() Info
	Analyze(ts model.TaskSet, opt core.Options) core.Result
}

// EventAnalyzer is implemented by analyzers that also run on event-driven
// task sets (the Gresser activation model of the paper's Section 3.4).
type EventAnalyzer interface {
	Analyzer
	AnalyzeEvents(tasks []eventstream.Task, opt core.Options) core.Result
}

// funcAnalyzer adapts plain test functions to the Analyzer interface and
// centralizes the blocking-support guard.
type funcAnalyzer struct {
	info Info
	fn   func(model.TaskSet, core.Options) core.Result
}

func (a funcAnalyzer) Info() Info { return a.info }

func (a funcAnalyzer) Analyze(ts model.TaskSet, opt core.Options) core.Result {
	if opt.Blocking != nil && !a.info.Blocking {
		return core.Result{Verdict: core.Undecided}
	}
	return a.fn(ts, opt)
}

// eventFuncAnalyzer extends funcAnalyzer with an event-stream path; only
// analyzers constructed with it satisfy EventAnalyzer.
type eventFuncAnalyzer struct {
	funcAnalyzer
	evFn func([]eventstream.Task, core.Options) core.Result
}

func (a eventFuncAnalyzer) AnalyzeEvents(tasks []eventstream.Task, opt core.Options) core.Result {
	if opt.Blocking != nil && !a.info.Blocking {
		return core.Result{Verdict: core.Undecided}
	}
	return a.evFn(tasks, opt)
}

// DefaultSuperPosLevel is the superposition level of the registered
// "superpos" analyzer (matching the CLI default).
const DefaultSuperPosLevel = 3

// NewLiuLayland wraps the utilization-bound test.
func NewLiuLayland() Analyzer {
	return funcAnalyzer{
		info: Info{Name: "liu", Label: "liu-layland", Kind: Sufficient},
		fn: func(ts model.TaskSet, _ core.Options) core.Result {
			return core.LiuLayland(ts)
		},
	}
}

// NewDevi wraps Devi's sufficient test (Definition 1 of the paper).
func NewDevi() Analyzer {
	return funcAnalyzer{
		info: Info{Name: "devi", Label: "devi", Kind: Sufficient},
		fn: func(ts model.TaskSet, opt core.Options) core.Result {
			return core.DeviOpt(ts, opt)
		},
	}
}

// NewSuperPos wraps the superposition approximation at a fixed level.
// Level DefaultSuperPosLevel yields the registered "superpos" analyzer;
// other levels are named "superpos(L)".
func NewSuperPos(level int64) Analyzer {
	name := "superpos"
	if level != DefaultSuperPosLevel {
		name = fmt.Sprintf("superpos(%d)", level)
	}
	return eventFuncAnalyzer{
		funcAnalyzer: funcAnalyzer{
			info: Info{
				Name:     name,
				Label:    fmt.Sprintf("superpos(%d)", level),
				Kind:     Sufficient,
				Blocking: true,
				Events:   true,
			},
			fn: func(ts model.TaskSet, opt core.Options) core.Result {
				return core.SuperPos(ts, level, opt)
			},
		},
		evFn: func(tasks []eventstream.Task, opt core.Options) core.Result {
			return core.SuperPosSources(eventstream.Sources(tasks), level, opt)
		},
	}
}

// NewProcessorDemand wraps the exact processor demand test of Baruah et
// al., the paper's baseline.
func NewProcessorDemand() Analyzer {
	return eventFuncAnalyzer{
		funcAnalyzer: funcAnalyzer{
			info: Info{Name: "pd", Label: "processor-demand", Kind: Exact, Blocking: true, Events: true},
			fn:   core.ProcessorDemand,
		},
		evFn: func(tasks []eventstream.Task, opt core.Options) core.Result {
			return core.ProcessorDemandSources(eventstream.Sources(tasks), opt)
		},
	}
}

// NewQPA wraps Quick Processor-demand Analysis (Zhang & Burns, 2009).
func NewQPA() Analyzer {
	return funcAnalyzer{
		info: Info{Name: "qpa", Label: "qpa", Kind: Exact},
		fn:   core.QPA,
	}
}

// NewDynamicError wraps the paper's dynamic error test (Section 4.1).
func NewDynamicError() Analyzer {
	return eventFuncAnalyzer{
		funcAnalyzer: funcAnalyzer{
			info: Info{Name: "dynamic", Label: "dynamic", Kind: Exact, Blocking: true, Events: true},
			fn:   core.DynamicError,
		},
		evFn: func(tasks []eventstream.Task, opt core.Options) core.Result {
			return core.DynamicErrorSources(eventstream.Sources(tasks), 0, opt)
		},
	}
}

// NewAllApprox wraps the paper's all-approximated test (Section 4.2), the
// fastest exact test and the library default.
func NewAllApprox() Analyzer {
	return eventFuncAnalyzer{
		funcAnalyzer: funcAnalyzer{
			info: Info{Name: "allapprox", Label: "allapprox", Kind: Exact, Blocking: true, Events: true},
			fn:   core.AllApprox,
		},
		evFn: func(tasks []eventstream.Task, opt core.Options) core.Result {
			return core.AllApproxSources(eventstream.Sources(tasks), 0, opt)
		},
	}
}

// NewRTC wraps the real-time-calculus style curve test (Section 3.6), a
// sufficient cross-check that is never better than Devi's test.
func NewRTC() Analyzer {
	return eventFuncAnalyzer{
		funcAnalyzer: funcAnalyzer{
			info: Info{Name: "rtc", Label: "rtc-curves", Kind: Sufficient, Events: true},
			fn: func(ts model.TaskSet, _ core.Options) core.Result {
				return core.Result{Verdict: rtc.Feasible(ts)}
			},
		},
		evFn: func(tasks []eventstream.Task, _ core.Options) core.Result {
			return core.Result{Verdict: rtc.FeasibleEvents(tasks)}
		},
	}
}

// NewResponseTime wraps Spuri's worst-case response time analysis as an
// independent exact cross-check: feasible iff every WCRT meets its
// deadline. Undecided when the analysis does not apply (U > 1).
func NewResponseTime() Analyzer {
	return funcAnalyzer{
		info: Info{Name: "response", Label: "response-time", Kind: Exact},
		fn: func(ts model.TaskSet, _ core.Options) core.Result {
			feasible, ok := response.Feasible(ts, response.Options{})
			switch {
			case !ok:
				return core.Result{Verdict: core.Undecided}
			case feasible:
				return core.Result{Verdict: core.Feasible}
			default:
				return core.Result{Verdict: core.Infeasible}
			}
		},
	}
}
