package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func fpPartitioned() workload.Workload {
	return workload.NewPartitioned(
		[]workload.Processor{{Name: "p0"}, {Name: "p1", Speed: 2}},
		[]workload.PartitionedTask{
			{Task: fpSet()[0]},
			{Task: fpSet()[1], Affinity: []int{1}},
		},
	)
}

// TestPartitionedFingerprintDomainSeparation pins the third fingerprint
// domain: a partitioned workload on one unit-speed processor carries the
// same task numbers as its sporadic twin but must never share its cache
// identity, and the adversarial single-processor shape must not collide
// with the event encoding either.
func TestPartitionedFingerprintDomainSeparation(t *testing.T) {
	ts := fpSet()
	single := workload.NewPartitioned(
		[]workload.Processor{{}},
		[]workload.PartitionedTask{{Task: ts[0]}, {Task: ts[1]}},
	)
	pfp, ok := WorkloadFingerprint(single, "cascade", core.Options{})
	if !ok || pfp == "" {
		t.Fatal("partitioned fingerprint refused")
	}
	sfp, _ := Fingerprint(ts, "cascade", core.Options{})
	if pfp == sfp {
		t.Error("partitioned workload aliases its sporadic twin")
	}
	efp, _ := WorkloadFingerprint(workload.NewEvents(fpEvents()), "cascade", core.Options{})
	if pfp == efp {
		t.Error("partitioned workload aliases an event workload")
	}
	if fp, ok := WorkloadFingerprint(fpPartitioned(), "cascade",
		core.Options{Blocking: func(int64) int64 { return 0 }}); ok || fp != "" {
		t.Error("blocking options must not be content-addressable for partitioned workloads")
	}
}

// TestPartitionedFingerprintSeparatesInputs checks every identity-relevant
// field moves the fingerprint — and that names and the omitted-vs-explicit
// default speed do not.
func TestPartitionedFingerprintSeparatesInputs(t *testing.T) {
	fp := func(w workload.Workload) string {
		s, ok := WorkloadFingerprint(w, "cascade", core.Options{})
		if !ok {
			t.Fatal("partitioned fingerprint refused")
		}
		return s
	}
	base := fp(fpPartitioned())
	if fp(fpPartitioned()) != base {
		t.Error("partitioned fingerprint not deterministic")
	}
	renamed := fpPartitioned()
	renamed.Processors[0].Name = "renamed"
	renamed.PartTasks[0].Name = "renamed"
	if fp(renamed) != base {
		t.Error("names changed the partitioned fingerprint")
	}
	explicit := fpPartitioned()
	explicit.Processors[0].Speed = 1
	if fp(explicit) != base {
		t.Error("explicit default speed changed the fingerprint")
	}
	seen := map[string]string{base: "base"}
	mutate := func(label string, f func(w *workload.Workload)) {
		t.Helper()
		w := fpPartitioned()
		f(&w)
		s := fp(w)
		if prev, dup := seen[s]; dup {
			t.Errorf("%s collides with %s", label, prev)
		}
		seen[s] = label
	}
	mutate("speed", func(w *workload.Workload) { w.Processors[1].Speed = 3 })
	mutate("processor count", func(w *workload.Workload) {
		w.Processors = append(w.Processors, workload.Processor{})
	})
	mutate("wcet", func(w *workload.Workload) { w.PartTasks[0].WCET++ })
	mutate("deadline", func(w *workload.Workload) { w.PartTasks[1].Deadline++ })
	mutate("period", func(w *workload.Workload) { w.PartTasks[0].Period++ })
	mutate("affinity value", func(w *workload.Workload) { w.PartTasks[1].Affinity = []int{0} })
	mutate("affinity present", func(w *workload.Workload) { w.PartTasks[0].Affinity = []int{0} })
	mutate("task count", func(w *workload.Workload) {
		w.PartTasks = append(w.PartTasks, w.PartTasks[0])
	})
}
