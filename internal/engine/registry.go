package engine

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Registry is a named, ordered collection of analyzers. The zero value is
// not usable; construct with NewRegistry.
type Registry struct {
	mu    sync.RWMutex
	named map[string]Analyzer // by Name and by Label, lowercased
	order []string            // registration order of canonical names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{named: make(map[string]Analyzer)}
}

// Register adds an analyzer under its Info().Name (and, as an alias, its
// Label). Registering an empty or duplicate name is an error.
func (r *Registry) Register(a Analyzer) error {
	info := a.Info()
	name := strings.ToLower(info.Name)
	if name == "" {
		return fmt.Errorf("engine: analyzer with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.named[name]; dup {
		return fmt.Errorf("engine: analyzer %q already registered", info.Name)
	}
	r.named[name] = a
	r.order = append(r.order, name)
	if label := strings.ToLower(info.Label); label != "" && label != name {
		if _, dup := r.named[label]; !dup {
			r.named[label] = a
		}
	}
	return nil
}

// MustRegister registers and panics on error (registration happens at
// package init time, where a clash is a programming error).
func (r *Registry) MustRegister(a Analyzer) {
	if err := r.Register(a); err != nil {
		panic(err)
	}
}

// Get looks an analyzer up by name or label (case-insensitive). It also
// resolves parameterized superposition names of the form "superpos(L)"
// without requiring prior registration of that level.
func (r *Registry) Get(name string) (Analyzer, bool) {
	key := strings.ToLower(strings.TrimSpace(name))
	r.mu.RLock()
	a, ok := r.named[key]
	r.mu.RUnlock()
	if ok {
		return a, true
	}
	if level, ok := parseSuperPosName(key); ok {
		return NewSuperPos(level), true
	}
	return nil, false
}

// MustGet looks up a registered analyzer and panics when it is missing —
// for call sites naming builtin analyzers.
func (r *Registry) MustGet(name string) Analyzer {
	a, ok := r.Get(name)
	if !ok {
		panic(fmt.Sprintf("engine: unknown analyzer %q", name))
	}
	return a
}

// All returns the registered analyzers in registration order.
func (r *Registry) All() []Analyzer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Analyzer, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.named[name])
	}
	return out
}

// Names returns the canonical analyzer names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Parse resolves a comma-separated analyzer spec against the registry.
// Each element is an analyzer name or label, a parameterized
// "superpos(L)", or one of the group keywords "all" (every registered
// analyzer), "exact" and "sufficient" (every registered analyzer of that
// kind). Duplicates are dropped, first occurrence wins the position.
func (r *Registry) Parse(spec string) ([]Analyzer, error) {
	var out []Analyzer
	seen := make(map[string]bool)
	add := func(a Analyzer) {
		if name := strings.ToLower(a.Info().Name); !seen[name] {
			seen[name] = true
			out = append(out, a)
		}
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		switch strings.ToLower(field) {
		case "":
			continue
		case "all":
			for _, a := range r.All() {
				add(a)
			}
		case "exact", "sufficient":
			want := Exact
			if strings.EqualFold(field, "sufficient") {
				want = Sufficient
			}
			for _, a := range r.All() {
				if a.Info().Kind == want {
					add(a)
				}
			}
		default:
			a, ok := r.Get(field)
			if !ok {
				return nil, fmt.Errorf("engine: unknown analyzer %q (known: %s)",
					field, strings.Join(r.Names(), ", "))
			}
			add(a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("engine: empty analyzer spec %q", spec)
	}
	return out, nil
}

// parseSuperPosName extracts L from "superpos(L)".
func parseSuperPosName(name string) (int64, bool) {
	rest, ok := strings.CutPrefix(name, "superpos(")
	if !ok {
		return 0, false
	}
	digits, ok := strings.CutSuffix(rest, ")")
	if !ok {
		return 0, false
	}
	level, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || level < 1 {
		return 0, false
	}
	return level, true
}

// defaultRegistry holds every builtin analyzer, ordered cheapest first:
// the sufficient tests, then the paper's fast exact tests, then the
// expensive exact baselines and cross-checks, then the cascade.
var defaultRegistry = func() *Registry {
	r := NewRegistry()
	r.MustRegister(NewLiuLayland())
	r.MustRegister(NewDevi())
	r.MustRegister(NewSuperPos(DefaultSuperPosLevel))
	r.MustRegister(NewRTC())
	r.MustRegister(NewDynamicError())
	r.MustRegister(NewAllApprox())
	r.MustRegister(NewQPA())
	r.MustRegister(NewResponseTime())
	r.MustRegister(NewProcessorDemand())
	r.MustRegister(NewCascade(nil, nil))
	return r
}()

// Register adds an analyzer to the default registry.
func Register(a Analyzer) error { return defaultRegistry.Register(a) }

// Get looks up an analyzer in the default registry.
func Get(name string) (Analyzer, bool) { return defaultRegistry.Get(name) }

// MustGet looks up a builtin analyzer in the default registry.
func MustGet(name string) Analyzer { return defaultRegistry.MustGet(name) }

// All returns the default registry's analyzers in registration order.
func All() []Analyzer { return defaultRegistry.All() }

// Names returns the default registry's analyzer names.
func Names() []string { return defaultRegistry.Names() }

// Parse resolves an analyzer spec against the default registry.
func Parse(spec string) ([]Analyzer, error) { return defaultRegistry.Parse(spec) }

// MustParse resolves a spec naming only builtin analyzers.
func MustParse(spec string) []Analyzer {
	out, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return out
}
