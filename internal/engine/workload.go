package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// EventsUnsupportedError reports that an analyzer without event-stream
// support was asked to analyze an event workload.
type EventsUnsupportedError struct {
	// Analyzer is the registry name of the incapable analyzer.
	Analyzer string
}

func (e *EventsUnsupportedError) Error() string {
	return fmt.Sprintf("engine: analyzer %q does not support event-stream workloads", e.Analyzer)
}

// PartitionedUnsupportedError reports that a uniprocessor analyzer entry
// point was handed a whole partitioned workload. Partitioned workloads
// are decomposed into per-processor bins by internal/partition (served
// at /v1/partition); no analyzer consumes them directly.
type PartitionedUnsupportedError struct {
	// Analyzer is the registry name of the analyzer that was asked.
	Analyzer string
}

func (e *PartitionedUnsupportedError) Error() string {
	return fmt.Sprintf("engine: analyzer %q cannot analyze a partitioned workload directly; place it via internal/partition (/v1/partition)", e.Analyzer)
}

// AnalyzeWorkload dispatches a workload to the analyzer's matching entry
// point: Analyze for sporadic workloads, AnalyzeEvents for event-stream
// workloads. Event workloads on analyzers without event support fail with
// an *EventsUnsupportedError (and an Undecided result), mirroring the
// Info().Events capability flag.
func AnalyzeWorkload(a Analyzer, wl workload.Workload, opt core.Options) (core.Result, error) {
	if wl.Kind() == workload.Partitioned {
		return core.Result{Verdict: core.Undecided}, &PartitionedUnsupportedError{Analyzer: a.Info().Name}
	}
	if wl.Kind() == workload.Events {
		ea, ok := a.(EventAnalyzer)
		if !ok {
			return core.Result{Verdict: core.Undecided}, &EventsUnsupportedError{Analyzer: a.Info().Name}
		}
		return ea.AnalyzeEvents(wl.Events, opt), nil
	}
	return a.Analyze(wl.Tasks, opt), nil
}

// BatchWorkloads builds the (workload x analyzer) cross product in
// set-major order, the workload-polymorphic counterpart of Batch. Run
// fans each job to the analyzer's matching entry point; jobs pairing an
// event workload with a non-event analyzer come back with Err set to an
// *EventsUnsupportedError.
func BatchWorkloads(wls []workload.Workload, analyzers []Analyzer, opt core.Options) []Job {
	jobs := make([]Job, 0, len(wls)*len(analyzers))
	for wi, wl := range wls {
		for _, a := range analyzers {
			jobs = append(jobs, Job{SetIndex: wi, Workload: wl, Analyzer: a, Opt: opt})
		}
	}
	return jobs
}
