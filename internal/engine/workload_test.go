package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/eventstream"
	"repro/internal/model"
	"repro/internal/workload"
)

// TestAnalyzeWorkloadDispatch pins the capability contract: sporadic
// workloads run on every analyzer, event workloads only on event-capable
// ones, and the failure is the typed error the service maps to 422.
func TestAnalyzeWorkloadDispatch(t *testing.T) {
	sporadic := workload.NewSporadic(model.TaskSet{{WCET: 2, Deadline: 8, Period: 10}})
	events := workload.NewEvents([]eventstream.Task{
		{WCET: 2, Deadline: 8, Stream: eventstream.Periodic(10)},
	})

	for _, a := range All() {
		info := a.Info()
		if res, err := AnalyzeWorkload(a, sporadic, core.Options{}); err != nil {
			t.Errorf("%s: sporadic workload failed: %v", info.Name, err)
		} else if res.Verdict == core.Undecided && info.Kind == Exact {
			t.Errorf("%s: exact analyzer undecided on a trivial set", info.Name)
		}

		res, err := AnalyzeWorkload(a, events, core.Options{})
		if info.Events {
			if err != nil {
				t.Errorf("%s: event-capable analyzer rejected an event workload: %v", info.Name, err)
			}
			continue
		}
		var unsup *EventsUnsupportedError
		if !errors.As(err, &unsup) || unsup.Analyzer != info.Name {
			t.Errorf("%s: want *EventsUnsupportedError for itself, got %v", info.Name, err)
		}
		if res.Verdict != core.Undecided {
			t.Errorf("%s: unsupported event workload produced verdict %s", info.Name, res.Verdict)
		}
	}
}

// TestAnalyzeWorkloadAgreesWithDirectCalls cross-checks the dispatcher
// against the pre-workload entry points.
func TestAnalyzeWorkloadAgreesWithDirectCalls(t *testing.T) {
	ts := model.TaskSet{
		{WCET: 2, Deadline: 8, Period: 10},
		{WCET: 3, Deadline: 15, Period: 15},
	}
	a := MustGet("allapprox")
	direct := a.Analyze(ts, core.Options{})
	via, err := AnalyzeWorkload(a, workload.NewSporadic(ts), core.Options{})
	if err != nil || via.Verdict != direct.Verdict || via.Iterations != direct.Iterations {
		t.Errorf("sporadic dispatch: %+v vs direct %+v (err %v)", via, direct, err)
	}

	ev := []eventstream.Task{
		{WCET: 2, Deadline: 8, Stream: eventstream.Periodic(10)},
		{WCET: 3, Deadline: 15, Stream: eventstream.Burst(30, 2, 5)},
	}
	ea := a.(EventAnalyzer)
	directEv := ea.AnalyzeEvents(ev, core.Options{})
	viaEv, err := AnalyzeWorkload(a, workload.NewEvents(ev), core.Options{})
	if err != nil || viaEv.Verdict != directEv.Verdict || viaEv.Iterations != directEv.Iterations {
		t.Errorf("event dispatch: %+v vs direct %+v (err %v)", viaEv, directEv, err)
	}
}

// TestBatchWorkloadsMixedModels runs a mixed batch through Run and checks
// ordering, verdict agreement and per-job capability errors.
func TestBatchWorkloadsMixedModels(t *testing.T) {
	wls := []workload.Workload{
		workload.NewSporadic(model.TaskSet{{WCET: 2, Deadline: 8, Period: 10}}),
		workload.NewEvents([]eventstream.Task{{WCET: 2, Deadline: 8, Stream: eventstream.Periodic(10)}}),
	}
	// qpa has no event support; allapprox has.
	analyzers := []Analyzer{MustGet("allapprox"), MustGet("qpa")}
	results := Run(context.Background(), BatchWorkloads(wls, analyzers, core.Options{}), RunOptions{})
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for i, r := range results {
		if r.SetIndex != i/2 {
			t.Errorf("job %d: set index %d", i, r.SetIndex)
		}
	}
	for i := range 3 {
		if results[i].Err != nil {
			t.Errorf("job %d failed: %v", i, results[i].Err)
		}
		if results[i].Result.Verdict != core.Feasible {
			t.Errorf("job %d: verdict %s", i, results[i].Result.Verdict)
		}
	}
	var unsup *EventsUnsupportedError
	if !errors.As(results[3].Err, &unsup) || unsup.Analyzer != "qpa" {
		t.Errorf("events x qpa: want *EventsUnsupportedError{qpa}, got %v", results[3].Err)
	}
}
