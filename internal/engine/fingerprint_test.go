package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

func fpSet() model.TaskSet {
	return model.TaskSet{
		{Name: "a", WCET: 2, Deadline: 8, Period: 10},
		{Name: "b", WCET: 3, Deadline: 15, Period: 15},
	}
}

func TestFingerprintStableAndNameBlind(t *testing.T) {
	fp1, ok := Fingerprint(fpSet(), "cascade", core.Options{})
	if !ok || fp1 == "" {
		t.Fatal("fingerprint failed on a plain set")
	}
	fp2, _ := Fingerprint(fpSet(), "cascade", core.Options{})
	if fp1 != fp2 {
		t.Error("fingerprint not deterministic")
	}
	// Task names must not contribute: renaming keeps the identity.
	renamed := fpSet()
	renamed[0].Name = "renamed"
	if fp, _ := Fingerprint(renamed, "cascade", core.Options{}); fp != fp1 {
		t.Error("task name changed the fingerprint")
	}
	// Analyzer casing and whitespace are canonicalized.
	if fp, _ := Fingerprint(fpSet(), "  CASCADE ", core.Options{}); fp != fp1 {
		t.Error("analyzer spelling changed the fingerprint")
	}
}

func TestFingerprintSeparatesInputs(t *testing.T) {
	base, _ := Fingerprint(fpSet(), "cascade", core.Options{})
	seen := map[string]string{base: "base"}
	check := func(label string, ts model.TaskSet, analyzer string, opt core.Options) {
		t.Helper()
		fp, ok := Fingerprint(ts, analyzer, opt)
		if !ok {
			t.Fatalf("%s: fingerprint refused", label)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", label, prev)
		}
		seen[fp] = label
	}

	check("analyzer", fpSet(), "allapprox", core.Options{})
	check("arithmetic", fpSet(), "cascade", core.Options{Arithmetic: core.ArithFloat64})
	check("revision order", fpSet(), "cascade", core.Options{RevisionOrder: core.ReviseLIFO})
	check("max iterations", fpSet(), "cascade", core.Options{MaxIterations: 100})
	check("max level", fpSet(), "cascade", core.Options{MaxLevel: 8})

	wcet := fpSet()
	wcet[0].WCET = 3
	check("wcet", wcet, "cascade", core.Options{})
	deadline := fpSet()
	deadline[1].Deadline = 14
	check("deadline", deadline, "cascade", core.Options{})
	extra := append(fpSet(), model.Task{WCET: 1, Deadline: 100, Period: 100})
	check("task count", extra, "cascade", core.Options{})
	swapped := fpSet()
	swapped[0], swapped[1] = swapped[1], swapped[0]
	check("task order", swapped, "cascade", core.Options{})

	// Varint field boundaries must not alias: shifting a unit of demand
	// between adjacent fields changes the identity.
	shift := model.TaskSet{{WCET: 12, Deadline: 34, Period: 100}}
	shifted := model.TaskSet{{WCET: 1, Deadline: 234, Period: 100}}
	a, _ := Fingerprint(shift, "cascade", core.Options{})
	b, _ := Fingerprint(shifted, "cascade", core.Options{})
	if a == b {
		t.Error("field boundary aliasing")
	}
}

func TestFingerprintRefusesBlocking(t *testing.T) {
	opt := core.Options{Blocking: func(int64) int64 { return 0 }}
	if fp, ok := Fingerprint(fpSet(), "cascade", opt); ok || fp != "" {
		t.Error("blocking options must not be content-addressable")
	}
}
