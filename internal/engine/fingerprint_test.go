package engine

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/eventstream"
	"repro/internal/model"
	"repro/internal/workload"
)

func fpSet() model.TaskSet {
	return model.TaskSet{
		{Name: "a", WCET: 2, Deadline: 8, Period: 10},
		{Name: "b", WCET: 3, Deadline: 15, Period: 15},
	}
}

func TestFingerprintStableAndNameBlind(t *testing.T) {
	fp1, ok := Fingerprint(fpSet(), "cascade", core.Options{})
	if !ok || fp1 == "" {
		t.Fatal("fingerprint failed on a plain set")
	}
	fp2, _ := Fingerprint(fpSet(), "cascade", core.Options{})
	if fp1 != fp2 {
		t.Error("fingerprint not deterministic")
	}
	// Task names must not contribute: renaming keeps the identity.
	renamed := fpSet()
	renamed[0].Name = "renamed"
	if fp, _ := Fingerprint(renamed, "cascade", core.Options{}); fp != fp1 {
		t.Error("task name changed the fingerprint")
	}
	// Analyzer casing and whitespace are canonicalized.
	if fp, _ := Fingerprint(fpSet(), "  CASCADE ", core.Options{}); fp != fp1 {
		t.Error("analyzer spelling changed the fingerprint")
	}
}

func TestFingerprintSeparatesInputs(t *testing.T) {
	base, _ := Fingerprint(fpSet(), "cascade", core.Options{})
	seen := map[string]string{base: "base"}
	check := func(label string, ts model.TaskSet, analyzer string, opt core.Options) {
		t.Helper()
		fp, ok := Fingerprint(ts, analyzer, opt)
		if !ok {
			t.Fatalf("%s: fingerprint refused", label)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", label, prev)
		}
		seen[fp] = label
	}

	check("analyzer", fpSet(), "allapprox", core.Options{})
	check("arithmetic", fpSet(), "cascade", core.Options{Arithmetic: core.ArithFloat64})
	check("revision order", fpSet(), "cascade", core.Options{RevisionOrder: core.ReviseLIFO})
	check("max iterations", fpSet(), "cascade", core.Options{MaxIterations: 100})
	check("max level", fpSet(), "cascade", core.Options{MaxLevel: 8})

	wcet := fpSet()
	wcet[0].WCET = 3
	check("wcet", wcet, "cascade", core.Options{})
	deadline := fpSet()
	deadline[1].Deadline = 14
	check("deadline", deadline, "cascade", core.Options{})
	extra := append(fpSet(), model.Task{WCET: 1, Deadline: 100, Period: 100})
	check("task count", extra, "cascade", core.Options{})
	swapped := fpSet()
	swapped[0], swapped[1] = swapped[1], swapped[0]
	check("task order", swapped, "cascade", core.Options{})

	// Varint field boundaries must not alias: shifting a unit of demand
	// between adjacent fields changes the identity.
	shift := model.TaskSet{{WCET: 12, Deadline: 34, Period: 100}}
	shifted := model.TaskSet{{WCET: 1, Deadline: 234, Period: 100}}
	a, _ := Fingerprint(shift, "cascade", core.Options{})
	b, _ := Fingerprint(shifted, "cascade", core.Options{})
	if a == b {
		t.Error("field boundary aliasing")
	}
}

func TestFingerprintRefusesBlocking(t *testing.T) {
	opt := core.Options{Blocking: func(int64) int64 { return 0 }}
	if fp, ok := Fingerprint(fpSet(), "cascade", opt); ok || fp != "" {
		t.Error("blocking options must not be content-addressable")
	}
	wl := workload.NewEvents(fpEvents())
	if fp, ok := WorkloadFingerprint(wl, "cascade", opt); ok || fp != "" {
		t.Error("blocking options must not be content-addressable for event workloads")
	}
}

func fpEvents() []eventstream.Task {
	return []eventstream.Task{
		{Name: "p", WCET: 2, Deadline: 8, Stream: eventstream.Periodic(10)},
		{Name: "b", WCET: 3, Deadline: 15, Stream: eventstream.Burst(15, 2, 3)},
	}
}

// TestWorkloadFingerprintPinsSporadicEncoding locks the sporadic encoding
// to its PR-2-era bytes: fingerprints handed out before the workload
// redesign must remain valid cache keys forever.
func TestWorkloadFingerprintPinsSporadicEncoding(t *testing.T) {
	const golden = "efe762d64a14e7f0a14acabe5623f54514488beba07691994fb6730c4cd71ca5"
	fp, ok := Fingerprint(fpSet(), "cascade", core.Options{})
	if !ok || fp != golden {
		t.Errorf("sporadic encoding drifted: %s, want %s", fp, golden)
	}
	// The workload wrapper must agree with the legacy entry point.
	wfp, ok := WorkloadFingerprint(workload.NewSporadic(fpSet()), "cascade", core.Options{})
	if !ok || wfp != fp {
		t.Errorf("WorkloadFingerprint(sporadic) = %s, want %s", wfp, fp)
	}
}

// TestWorkloadFingerprintDomainSeparation is the property test of the
// workload redesign: no sporadic workload may ever share a fingerprint
// with an event workload, even when both are derived from the same
// numbers, across random shapes, analyzers and options.
func TestWorkloadFingerprintDomainSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	analyzers := []string{"cascade", "allapprox", "superpos(3)", "pd"}
	opts := []core.Options{{}, {Arithmetic: core.ArithFloat64}, {MaxIterations: 50}}
	seen := map[string]string{} // fingerprint -> "model/trial"
	for trial := range 300 {
		n := 1 + rng.Intn(6)
		ts := make(model.TaskSet, n)
		ev := make([]eventstream.Task, n)
		for i := range n {
			wcet := 1 + rng.Int63n(50)
			deadline := wcet + rng.Int63n(200)
			period := 1 + rng.Int63n(500)
			ts[i] = model.Task{WCET: wcet, Deadline: deadline, Period: period}
			// The event twin reuses the same numbers, the adversarial
			// shape for encoding collisions.
			ev[i] = eventstream.Task{WCET: wcet, Deadline: deadline,
				Stream: eventstream.Periodic(period)}
			if rng.Intn(3) == 0 {
				ev[i].Stream = eventstream.Burst(period, 1+rng.Intn(3), 1+rng.Int63n(20))
			}
		}
		analyzer := analyzers[rng.Intn(len(analyzers))]
		opt := opts[rng.Intn(len(opts))]
		sfp, ok := WorkloadFingerprint(workload.NewSporadic(ts), analyzer, opt)
		if !ok {
			t.Fatalf("trial %d: sporadic fingerprint refused", trial)
		}
		efp, ok := WorkloadFingerprint(workload.NewEvents(ev), analyzer, opt)
		if !ok {
			t.Fatalf("trial %d: event fingerprint refused", trial)
		}
		if sfp == efp {
			t.Fatalf("trial %d: sporadic and event workloads collide on %s", trial, sfp)
		}
		// A fingerprint reappearing under the other model is a domain
		// violation (same-model repeats would need identical random
		// inputs and are legitimate).
		for fp, label := range map[string]string{sfp: "sporadic", efp: "events"} {
			if prev, dup := seen[fp]; dup && prev != label {
				t.Errorf("trial %d: %s fingerprint %s already seen as %s", trial, label, fp, prev)
			}
			seen[fp] = label
		}
	}
}

// TestWorkloadFingerprintSeparatesEventInputs mirrors the sporadic
// sensitivity test on the event encoding: every identity-relevant field
// must change the fingerprint, and names must not.
func TestWorkloadFingerprintSeparatesEventInputs(t *testing.T) {
	fp := func(ev []eventstream.Task) string {
		s, ok := WorkloadFingerprint(workload.NewEvents(ev), "cascade", core.Options{})
		if !ok {
			t.Fatal("event fingerprint refused")
		}
		return s
	}
	base := fp(fpEvents())
	if fp(fpEvents()) != base {
		t.Error("event fingerprint not deterministic")
	}
	renamed := fpEvents()
	renamed[0].Name = "renamed"
	if fp(renamed) != base {
		t.Error("task name changed the event fingerprint")
	}
	seen := map[string]string{base: "base"}
	mutate := func(label string, f func(ev []eventstream.Task)) {
		t.Helper()
		ev := fpEvents()
		f(ev)
		s := fp(ev)
		if prev, dup := seen[s]; dup {
			t.Errorf("%s collides with %s", label, prev)
		}
		seen[s] = label
	}
	mutate("wcet", func(ev []eventstream.Task) { ev[0].WCET++ })
	mutate("deadline", func(ev []eventstream.Task) { ev[1].Deadline++ })
	mutate("cycle", func(ev []eventstream.Task) { ev[0].Stream[0].Cycle++ })
	mutate("offset", func(ev []eventstream.Task) { ev[1].Stream[1].Offset++ })
	mutate("element count", func(ev []eventstream.Task) {
		ev[1].Stream = append(ev[1].Stream, eventstream.Element{Cycle: 40, Offset: 7})
	})
}
