// Package engine is the dispatch layer of the feasibility analyses: a
// registry of named Analyzer implementations wrapping every test of the
// reproduction (the classic sufficient tests, the exact processor demand
// and QPA tests, the paper's dynamic-error and all-approximated tests, and
// the RTC/response-time cross-checks), a batch runner that fans out
// (task set x analyzer) jobs over a bounded worker pool with deterministic
// result ordering and per-job telemetry, and a Cascade analyzer
// implementing the paper's cheap-first escalation strategy.
//
// Every consumer — the CLI tools, the experiment regenerators, the
// top-level facade and the benchmarks — dispatches through this package
// instead of naming test functions directly, so new analyses plug into all
// of them by registering here.
package engine
