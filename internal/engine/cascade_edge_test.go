package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eventstream"
	"repro/internal/model"
)

// stubAnalyzer returns a fixed result and records invocations.
type stubAnalyzer struct {
	info   Info
	result core.Result
	calls  int
}

func (s *stubAnalyzer) Info() Info { return s.info }
func (s *stubAnalyzer) Analyze(model.TaskSet, core.Options) core.Result {
	s.calls++
	return s.result
}

// TestCascadeUndecidedEscalation pins the escalation contract the service
// relies on: a sufficient stage answering Undecided (e.g. a resource cap
// hit) must not end the cascade — the exact stage decides, and the
// undecided stage's effort still counts toward the total.
func TestCascadeUndecidedEscalation(t *testing.T) {
	ts := model.TaskSet{{WCET: 2, Deadline: 8, Period: 10}}
	undecided := &stubAnalyzer{
		info:   Info{Name: "stub-undecided", Kind: Sufficient},
		result: core.Result{Verdict: core.Undecided, Iterations: 5},
	}
	notAccepted := &stubAnalyzer{
		info:   Info{Name: "stub-notaccepted", Kind: Sufficient},
		result: core.Result{Verdict: core.NotAccepted, Iterations: 7},
	}
	c := NewCascade([]Analyzer{undecided, notAccepted}, nil)

	res := c.Analyze(ts, core.Options{})
	if res.Verdict != core.Feasible {
		t.Fatalf("verdict %v, want feasible from the exact stage", res.Verdict)
	}
	if undecided.calls != 1 || notAccepted.calls != 1 {
		t.Errorf("stage calls: %d, %d, want 1, 1", undecided.calls, notAccepted.calls)
	}
	// 5 + 7 undecided/not-accepted iterations plus the exact stage's own.
	if res.Iterations <= 12 {
		t.Errorf("iterations %d do not accumulate the undecided stages", res.Iterations)
	}

	// A definite sufficient answer must still short-circuit: the stages
	// after it never run.
	accepts := &stubAnalyzer{
		info:   Info{Name: "stub-accepts", Kind: Sufficient},
		result: core.Result{Verdict: core.Feasible, Iterations: 1},
	}
	tail := &stubAnalyzer{info: Info{Name: "stub-tail", Kind: Sufficient}}
	c2 := NewCascade([]Analyzer{accepts, tail}, nil)
	if res := c2.Analyze(ts, core.Options{}); res.Verdict != core.Feasible || res.Iterations != 1 {
		t.Errorf("short-circuit result %+v", res)
	}
	if tail.calls != 0 {
		t.Error("stage after a definite verdict still ran")
	}
}

// TestCascadeEventsSkipsNonEventStages pins the event path: sufficient
// stages without event support contribute Undecided (and are effectively
// skipped) rather than aborting the escalation.
func TestCascadeEventsSkipsNonEventStages(t *testing.T) {
	tasks := []eventstream.Task{
		{Stream: eventstream.Periodic(10), WCET: 2, Deadline: 8},
	}
	// liu and a stub have no event path; the exact default (allapprox)
	// does, so the cascade must still decide.
	c := NewCascade([]Analyzer{NewLiuLayland(), &stubAnalyzer{
		info:   Info{Name: "stub-no-events", Kind: Sufficient},
		result: core.Result{Verdict: core.Feasible},
	}}, nil)
	res := c.AnalyzeEvents(tasks, core.Options{})
	if res.Verdict != core.Feasible {
		t.Fatalf("event cascade verdict %v", res.Verdict)
	}
}
