package engine

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/taskgen"
)

// TestRunReplacesSharedScratch pins the batch runner's Scratch semantics:
// a caller-supplied Options.Scratch is fanned out to every job by Batch,
// so Run must replace it with per-worker scratches (otherwise parallel
// workers would race on it — this test runs under -race in CI) and must
// not leak its pooled scratches through the echoed jobs.
func TestRunReplacesSharedScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sets := make([]model.TaskSet, 24)
	for i := range sets {
		ts, err := taskgen.New(taskgen.Config{
			N: 10 + i%10, Utilization: 0.9,
			PeriodMin: 100, PeriodMax: 100000,
			GapMean: 0.2,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = ts
	}
	shared := demand.NewScratch()
	jobs := Batch(sets, []Analyzer{MustGet("cascade"), MustGet("pd")}, core.Options{Scratch: shared})
	results := Run(context.Background(), jobs, RunOptions{Workers: max(runtime.NumCPU(), 4)})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if !r.Result.Verdict.Definite() {
			t.Fatalf("job %d: verdict %s", i, r.Result.Verdict)
		}
		if r.Job.Opt.Scratch != nil {
			t.Fatalf("job %d leaks a scratch through the echoed Job", i)
		}
		// The batch verdict must match a serial run with fresh state.
		serial, err := AnalyzeWorkload(r.Job.Analyzer, r.Job.workload(), core.Options{})
		if err != nil {
			t.Fatalf("job %d serial: %v", i, err)
		}
		if serial.Verdict != r.Result.Verdict || serial.Iterations != r.Result.Iterations {
			t.Fatalf("job %d: batch %+v != serial %+v", i, r.Result, serial)
		}
	}
}
