package engine

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/obs"
)

// primesAbove returns the first n primes above 2^31. Any two of them
// multiply past the chunk denominator cap, so a task set using them as
// periods needs one chunk per task — more than the plan allows — and
// every analysis falls back off the bounded-denominator fast path.
func primesAbove(n int) []int64 {
	isPrime := func(v int64) bool {
		for d := int64(3); d*d <= v; d += 2 {
			if v%d == 0 {
				return false
			}
		}
		return true
	}
	out := make([]int64, 0, n)
	for p := int64(1)<<31 + 1; len(out) < n; p += 2 {
		if isPrime(p) {
			out = append(out, p)
		}
	}
	return out
}

// unplannable builds a task set no chunk plan can cover.
func unplannable() model.TaskSet {
	var ts model.TaskSet
	for _, p := range primesAbove(33) {
		// Deadline < period keeps liu-layland inconclusive, so a stage
		// that actually runs chunked arithmetic decides the set.
		ts = append(ts, model.Task{WCET: 1, Deadline: p - 1, Period: p})
	}
	return ts
}

// TestCascadeStagePromotionAttribution pins the per-stage promotion
// accounting: on a workload that exceeds the chunk cap, the deciding
// stage reports its fast-path exits, and the stage log's total matches
// the scratch's monotonic tally.
func TestCascadeStagePromotionAttribution(t *testing.T) {
	sc := demand.NewScratch()
	var stages obs.StageLog
	res := MustGet("cascade").Analyze(unplannable(), core.Options{Scratch: sc, Stages: &stages})
	if res.Verdict != core.Feasible {
		t.Fatalf("verdict %s, want feasible", res.Verdict)
	}
	if stages.Len() < 2 {
		t.Fatalf("stage log has %d stages, want at least liu + the decider", stages.Len())
	}
	if got := stages.Promotions(); got == 0 {
		t.Fatalf("no stage recorded a promotion on an unplannable workload")
	} else if want := sc.ArithPromotions(); got != want {
		t.Fatalf("stage promotions sum %d, scratch tally %d", got, want)
	}
	if deciding := stages.Stage(stages.Len() - 1); deciding.Promotions == 0 {
		t.Fatalf("deciding stage %q recorded no promotions", deciding.Name)
	}

	// Control: a plannable workload must attribute zero promotions.
	stages.Reset()
	plain := model.TaskSet{
		{WCET: 2, Deadline: 8, Period: 10},
		{WCET: 3, Deadline: 12, Period: 15},
	}
	if res := MustGet("cascade").Analyze(plain, core.Options{Scratch: demand.NewScratch(), Stages: &stages}); res.Verdict != core.Feasible {
		t.Fatalf("control verdict %s", res.Verdict)
	}
	if got := stages.Promotions(); got != 0 {
		t.Fatalf("plannable workload attributed %d promotions", got)
	}
}

// TestRunReportsJobPromotions pins the batch runner's per-job promotion
// delta: measured against the pooled worker scratch, non-zero exactly
// for the unplannable job.
func TestRunReportsJobPromotions(t *testing.T) {
	jobs := Batch(
		[]model.TaskSet{unplannable(), {{WCET: 2, Deadline: 8, Period: 10}}},
		[]Analyzer{MustGet("cascade")},
		core.Options{},
	)
	results := Run(context.Background(), jobs, RunOptions{Workers: 1})
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("job errors: %v, %v", results[0].Err, results[1].Err)
	}
	if results[0].Promotions == 0 {
		t.Fatalf("unplannable job reported zero promotions")
	}
	if results[1].Promotions != 0 {
		t.Fatalf("plannable job reported %d promotions", results[1].Promotions)
	}
}
