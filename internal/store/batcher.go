package store

import (
	"sync"
	"time"
)

// batchSink is what a batcher flushes into: one write + one sync per
// batch. The disk store implements it over its segment file.
type batchSink interface {
	writeBatch(recs []Record) error
}

// batcher is the group-commit core: records enqueue under a lock in
// submission order, and a background flusher drains them in one
// writeBatch call when the batch reaches size records or maxWait has
// elapsed since the first enqueue, whichever comes first. Append waits
// for its batch's flush; Submit returns at enqueue. Both preserve
// order, so a crash loses only an ordered suffix.
type batcher struct {
	sink    batchSink
	size    int
	maxWait time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	pending []Record
	// waiters holds the done channels of Append callers in the current
	// batch; flush closes them after the sink write returns (or records
	// the error first).
	waiters []chan error
	// armedAt is when the current batch started filling (zero when
	// empty); the flusher uses it for the max-wait deadline.
	armedAt time.Time
	closed  bool
	stopped chan struct{}
}

// Batch tuning defaults: flush at 64 records or 2ms, whichever first.
// At one record per propose, 2ms caps the sync latency a lone Append
// pays while 64 amortizes fsync under heavy traffic.
const (
	DefaultBatchSize = 64
	DefaultMaxWait   = 2 * time.Millisecond
)

func newBatcher(sink batchSink, size int, maxWait time.Duration) *batcher {
	if size <= 0 {
		size = DefaultBatchSize
	}
	if maxWait <= 0 {
		maxWait = DefaultMaxWait
	}
	b := &batcher{sink: sink, size: size, maxWait: maxWait, stopped: make(chan struct{})}
	b.cond = sync.NewCond(&b.mu)
	go b.flusher()
	return b
}

// enqueue adds records to the current batch. When wait is true it
// returns a channel that receives/closes with the flush result.
func (b *batcher) enqueue(recs []Record, wait bool) (<-chan error, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, errClosed
	}
	if len(b.pending) == 0 && len(b.waiters) == 0 {
		b.armedAt = time.Now()
	}
	b.pending = append(b.pending, recs...)
	var done chan error
	if wait {
		done = make(chan error, 1)
		b.waiters = append(b.waiters, done)
	}
	b.cond.Signal()
	b.mu.Unlock()
	return done, nil
}

// flusher drains batches until close.
func (b *batcher) flusher() {
	defer close(b.stopped)
	b.mu.Lock()
	for {
		for len(b.pending) == 0 && len(b.waiters) == 0 && !b.closed {
			b.cond.Wait()
		}
		if len(b.pending) == 0 && len(b.waiters) == 0 && b.closed {
			b.mu.Unlock()
			return
		}
		// Wait for the batch to fill or the deadline to pass. cond has no
		// timed wait, so sleep outside the lock in small steps; the common
		// cases (batch already full, maxWait tiny) exit immediately.
		for len(b.pending) < b.size && !b.closed {
			remain := b.maxWait - time.Since(b.armedAt)
			if remain <= 0 {
				break
			}
			b.mu.Unlock()
			if remain > time.Millisecond {
				remain = time.Millisecond
			}
			time.Sleep(remain)
			b.mu.Lock()
		}
		recs := b.pending
		waiters := b.waiters
		b.pending = nil
		b.waiters = nil
		b.armedAt = time.Time{}
		b.mu.Unlock()

		err := b.sink.writeBatch(recs)
		for _, w := range waiters {
			w <- err
		}
		b.mu.Lock()
	}
}

// close flushes remaining records and stops the flusher.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.stopped
		return
	}
	b.closed = true
	b.cond.Signal()
	b.mu.Unlock()
	<-b.stopped
}
