package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// frameHeader is [4B LE payload length][4B LE CRC32(payload)].
const frameHeader = 8

// maxFrame bounds a single record's payload so a corrupt length prefix
// cannot drive a multi-gigabyte allocation during replay.
const maxFrame = 16 << 20

// appendFrame appends the framed encoding of payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// encodeRecords frames records into one contiguous buffer (one batch =
// one write).
func encodeRecords(recs []Record) ([]byte, error) {
	var buf []byte
	for i := range recs {
		payload, err := json.Marshal(&recs[i])
		if err != nil {
			return nil, fmt.Errorf("store: encode record: %w", err)
		}
		buf = appendFrame(buf, payload)
	}
	return buf, nil
}

// readLog reads framed records from r until EOF or the first damaged
// frame (short header, truncated payload, oversized length, or CRC
// mismatch). It returns the records read, the byte offset of the first
// damaged frame (== total valid bytes), and whether the log was clean
// (no damage, ended exactly at EOF). Damage is not an error: the caller
// truncates at valid and carries on.
func readLog(r io.Reader) (recs []Record, valid int64, clean bool, err error) {
	var hdr [frameHeader]byte
	for {
		n, rerr := io.ReadFull(r, hdr[:])
		if rerr == io.EOF {
			return recs, valid, true, nil
		}
		if rerr != nil {
			// Torn header (io.ErrUnexpectedEOF) or read error partway: stop
			// at the last whole record.
			if rerr == io.ErrUnexpectedEOF {
				return recs, valid, false, nil
			}
			return recs, valid, false, rerr
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxFrame {
			return recs, valid, false, nil
		}
		payload := make([]byte, length)
		if _, rerr := io.ReadFull(r, payload); rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				return recs, valid, false, nil
			}
			return recs, valid, false, rerr
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, valid, false, nil
		}
		var rec Record
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			// CRC passed but the payload is not a record — treat as
			// corruption, same as a CRC failure.
			return recs, valid, false, nil
		}
		recs = append(recs, rec)
		valid += int64(n) + int64(length)
	}
}

// readLogFile reads a segment file, truncating it at the first damaged
// frame when own is true (we may only repair our own segment; a foreign
// node's damage is reported but left alone). Returns the records and
// whether a truncation happened.
func readLogFile(path string, own bool) (recs []Record, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	recs, valid, clean, err := readLog(f)
	f.Close()
	if err != nil {
		return nil, false, fmt.Errorf("store: read %s: %w", path, err)
	}
	if !clean && own {
		if err := os.Truncate(path, valid); err != nil {
			return nil, false, fmt.Errorf("store: truncate %s: %w", path, err)
		}
		truncated = true
	}
	return recs, truncated, nil
}
