// Package store is the durable-state subsystem for admission sessions:
// an append-only write-ahead decision log with group-commit batching,
// periodic compacting snapshots, and a pluggable Store interface with an
// in-memory backend for tests and a disk-directory backend for
// production (edfd -store-dir).
//
// # Log format
//
// The disk log is a sequence of length-prefixed, CRC-framed records:
//
//	[4B little-endian payload length][4B little-endian CRC32 (IEEE) of payload][payload]
//
// where payload is the JSON encoding of a Record. Replay reads records
// until the first torn, truncated or CRC-corrupt frame and stops there;
// Open repairs the process's own segment by truncating the damaged tail
// before the segment goes live for appends (recovery is the only safe
// time to truncate — a live segment may be mid-write). A crash can only
// lose an ordered suffix of unsynced records, never corrupt earlier
// state, and replay never panics on a damaged tail.
//
// # Group commit
//
// Appends ride a batcher that coalesces concurrent records into one
// write+fsync (flushing when the batch reaches a size threshold or a
// max-wait deadline, whichever first). Append blocks until its record is
// durable; Submit enqueues in order and returns immediately — callers
// use Submit for records whose loss is tolerable as a suffix (admit,
// rollback, expire) and Append for durability points (open, commit,
// close).
//
// # Records and replay
//
// One record per session decision: open (carries the session config,
// i.e. the seed workload), admit (a proposed task, pending), commit
// (pending tasks become committed), rollback (pending tasks dropped),
// close and expire (session gone; replay excludes it so a restart
// cannot resurrect a swept session). Load folds the snapshot and log
// into per-session SessionState values; the service layer rebuilds live
// Admission controllers from them and gets bit-identical verdicts
// because the committed task order is preserved exactly.
//
// # Snapshots and shared directories
//
// WriteSnapshot persists the committed state of live sessions along
// with a per-session sequence watermark; replay skips log records at or
// below a session's watermark. After a snapshot the store compacts its
// own log segment, dropping records the snapshot covers.
//
// A store directory may be shared by several processes (the cluster
// takeover path): each node writes its own wal-<node>.log and
// snap-<node>.json so writers never contend, while Load and LoadSession
// read every segment. Sequence numbers are hybrid-clock values
// (max(last+1, unixNano)) so records from different nodes order
// correctly without coordination.
package store
