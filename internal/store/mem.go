package store

import (
	"sync"
)

// MemStore is the in-memory Store backend for tests: the same record
// and replay semantics as DiskStore with no files and no fsync. It
// survives "restarts" that reuse the same MemStore value, which is what
// the service-level recovery property tests exercise.
type MemStore struct {
	mu      sync.Mutex
	lastSeq uint64
	recs    []Record
	snap    *Snapshot
	stats   Stats
	closed  bool
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore { return &MemStore{} }

func (s *MemStore) append(recs []Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errClosed
	}
	for i := range recs {
		s.lastSeq++
		recs[i].Seq = s.lastSeq
	}
	s.recs = append(s.recs, recs...)
	s.stats.Appends++
	s.stats.Flushes++
	s.stats.Records += uint64(len(recs))
	return s.lastSeq, nil
}

// Append implements Store.
func (s *MemStore) Append(recs ...Record) (uint64, error) { return s.append(recs) }

// Submit implements Store; in memory there is nothing async about it.
func (s *MemStore) Submit(recs ...Record) (uint64, error) { return s.append(recs) }

// LastSeq implements Store.
func (s *MemStore) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// WriteSnapshot implements Store, compacting the in-memory log the same
// way DiskStore compacts its segment.
func (s *MemStore) WriteSnapshot(snap Snapshot) error {
	marks := make(map[string]uint64, len(snap.Sessions))
	for _, img := range snap.Sessions {
		marks[img.ID] = img.Seq
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := snap
	cp.Sessions = append([]SessionSnapshot(nil), snap.Sessions...)
	s.snap = &cp
	var keep []Record
	for _, rec := range s.recs {
		switch {
		case rec.Type == TypeClose || rec.Type == TypeExpire:
			keep = append(keep, rec)
		case rec.Seq > snap.Seq:
			keep = append(keep, rec)
		default:
			if mark, ok := marks[rec.Session]; ok && rec.Seq > mark {
				keep = append(keep, rec)
			}
		}
	}
	s.recs = keep
	s.stats.Snapshots++
	return nil
}

// Load implements Store.
func (s *MemStore) Load() (map[string]*SessionState, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := newReplayer()
	if s.snap != nil {
		r.note(s.snap.Seq)
		for _, img := range s.snap.Sessions {
			r.foldSnapshot(img)
		}
	}
	for _, rec := range s.recs {
		if err := r.foldRecord(rec); err != nil {
			return nil, 0, err
		}
	}
	sessions, maxSeq := r.result()
	if maxSeq > s.lastSeq {
		s.lastSeq = maxSeq
	}
	return sessions, maxSeq, nil
}

// LoadSession implements Store.
func (s *MemStore) LoadSession(id string) (*SessionState, error) {
	sessions, _, err := s.Load()
	if err != nil {
		return nil, err
	}
	return sessions[id], nil
}

// Stats implements Store.
func (s *MemStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// DropTail discards the last n unreplayed records — the in-memory
// equivalent of a crash losing an unsynced suffix, used by the
// crash-injection property tests.
func (s *MemStore) DropTail(n int) {
	s.mu.Lock()
	if n > len(s.recs) {
		n = len(s.recs)
	}
	s.recs = s.recs[:len(s.recs)-n]
	s.closed = false
	s.mu.Unlock()
}

var _ Store = (*MemStore)(nil)
var _ Store = (*DiskStore)(nil)
