package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, dir, node string) *DiskStore {
	t.Helper()
	s, err := Open(dir, node, Options{BatchSize: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func cfg(tasks ...string) json.RawMessage {
	raw, _ := json.Marshal(map[string]any{"analyzer": "auto", "model": "sporadic", "tasks": tasks})
	return raw
}

func task(name string) json.RawMessage {
	raw, _ := json.Marshal(name)
	return raw
}

// journal writes a typical session history: open, two admits, commit,
// one more admit (left pending).
func journal(t *testing.T, s Store, id string) {
	t.Helper()
	must := func(_ uint64, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	must(s.Append(Record{Type: TypeOpen, Session: id, Config: cfg("seed")}))
	must(s.Submit(Record{Type: TypeAdmit, Session: id, Task: task("t1")}))
	must(s.Submit(Record{Type: TypeAdmit, Session: id, Task: task("t2")}))
	must(s.Append(Record{Type: TypeCommit, Session: id}))
	must(s.Submit(Record{Type: TypeAdmit, Session: id, Task: task("t3")}))
}

func wantState(t *testing.T, st *SessionState, wantTasks []string, wantPending []string) {
	t.Helper()
	if st == nil {
		t.Fatalf("session state missing")
	}
	var c struct {
		Tasks []string `json:"tasks"`
	}
	if err := json.Unmarshal(st.Config, &c); err != nil {
		t.Fatalf("config: %v", err)
	}
	if fmt.Sprint(c.Tasks) != fmt.Sprint(wantTasks) {
		t.Fatalf("committed tasks = %v, want %v", c.Tasks, wantTasks)
	}
	var pend []string
	for _, p := range st.Pending {
		var v string
		if err := json.Unmarshal(p, &v); err != nil {
			t.Fatalf("pending: %v", err)
		}
		pend = append(pend, v)
	}
	if fmt.Sprint(pend) != fmt.Sprint(wantPending) {
		t.Fatalf("pending = %v, want %v", pend, wantPending)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "a")
	journal(t, s, "s1")
	sessions, _, err := s.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(sessions))
	}
	wantState(t, sessions["s1"], []string{"seed", "t1", "t2"}, []string{"t3"})

	// Restart: a fresh store over the same dir sees the same state.
	s.Close()
	s2 := openTest(t, dir, "a")
	sessions, _, err = s2.Load()
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	wantState(t, sessions["s1"], []string{"seed", "t1", "t2"}, []string{"t3"})
}

func TestCloseAndExpireExcludeFromReplay(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "a")
	journal(t, s, "s1")
	journal(t, s, "s2")
	if _, err := s.Append(Record{Type: TypeClose, Session: "s1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Record{Type: TypeExpire, Session: "s2"}); err != nil {
		t.Fatal(err)
	}
	sessions, _, err := s.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(sessions) != 0 {
		t.Fatalf("closed/expired sessions resurrected: %v", sessions)
	}
}

// corruptTail opens the single wal file in dir and mutates it.
func walFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("wal files = %v (err %v), want exactly 1", matches, err)
	}
	return matches[0]
}

func TestRecoverTornTailRecord(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "a")
	journal(t, s, "s1")
	s.Close()

	// Tear the last record: chop bytes off the end, mid-payload.
	path := walFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, "a")
	sessions, _, err := s2.Load()
	if err != nil {
		t.Fatalf("load after torn tail: %v", err)
	}
	// The torn record is the pending t3 admit: committed state survives.
	wantState(t, sessions["s1"], []string{"seed", "t1", "t2"}, nil)
	if s2.Stats().Truncations == 0 {
		t.Fatalf("expected a truncation to be counted")
	}
	// The file was repaired: a re-read is clean and appends still work.
	if _, err := s2.Append(Record{Type: TypeAdmit, Session: "s1", Task: task("t4")}); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	sessions, _, err = s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, sessions["s1"], []string{"seed", "t1", "t2"}, []string{"t4"})
}

func TestRecoverTruncatedLengthPrefix(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "a")
	journal(t, s, "s1")
	s.Close()

	// Leave only 3 bytes of the final record's 8-byte header.
	path := walFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, valid, clean, err := readLog(bytes.NewReader(data))
	if err != nil || !clean || len(recs) != 5 {
		t.Fatalf("precondition: recs=%d clean=%v err=%v", len(recs), clean, err)
	}
	// valid == len(data); compute the start of the last frame.
	lastStart := frameStart(data, len(recs)-1)
	if err := os.WriteFile(path, data[:lastStart+3], 0o644); err != nil {
		t.Fatal(err)
	}
	_ = valid

	s2 := openTest(t, dir, "a")
	sessions, _, err := s2.Load()
	if err != nil {
		t.Fatalf("load after truncated prefix: %v", err)
	}
	wantState(t, sessions["s1"], []string{"seed", "t1", "t2"}, nil)
}

func TestRecoverCRCCorruptMidLog(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "a")
	journal(t, s, "s1")
	s.Close()

	// Flip a payload byte inside the commit record (4th of 5). Replay
	// must stop at the last valid record before it — the t2 admit — so
	// the commit and the t3 admit are both lost (an ordered suffix).
	path := walFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	start := frameStart(data, 3)
	data[start+frameHeader+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, "a")
	sessions, _, err := s2.Load()
	if err != nil {
		t.Fatalf("load after mid-log corruption: %v", err)
	}
	wantState(t, sessions["s1"], []string{"seed"}, []string{"t1", "t2"})
}

// frameStart returns the byte offset of the idx-th frame.
func frameStart(data []byte, idx int) int {
	off := 0
	for i := 0; i < idx; i++ {
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += frameHeader + length
	}
	return off
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "a")
	journal(t, s, "s1")
	sessions, maxSeq, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	st := sessions["s1"]
	snap := Snapshot{Seq: maxSeq, Sessions: []SessionSnapshot{{
		ID: "s1", Seq: st.Seq, Config: st.Config, Pending: st.Pending,
	}}}
	if err := s.WriteSnapshot(snap); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	// The segment compacted away the covered records.
	info, err := os.Stat(walFile(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Fatalf("wal size after compaction = %d, want 0", info.Size())
	}
	// State still replays (from the snapshot) and appends continue.
	if _, err := s.Append(Record{Type: TypeCommit, Session: "s1"}); err != nil {
		t.Fatal(err)
	}
	sessions, _, err = s.Load()
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, sessions["s1"], []string{"seed", "t1", "t2", "t3"}, nil)

	// Restart replays snapshot + post-snapshot log.
	s.Close()
	s2 := openTest(t, dir, "a")
	sessions, _, err = s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, sessions["s1"], []string{"seed", "t1", "t2", "t3"}, nil)
}

func TestSnapshotDoesNotResurrectClosed(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "a")
	journal(t, s, "s1")
	sessions, maxSeq, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	st := sessions["s1"]
	snap := Snapshot{Seq: maxSeq, Sessions: []SessionSnapshot{{ID: "s1", Seq: st.Seq, Config: st.Config, Pending: st.Pending}}}
	if err := s.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Record{Type: TypeExpire, Session: "s1"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openTest(t, dir, "a")
	sessions, _, err = s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 0 {
		t.Fatalf("expired session resurrected from snapshot: %v", sessions)
	}
}

func TestSharedDirTwoNodes(t *testing.T) {
	dir := t.TempDir()
	a := openTest(t, dir, "a")
	b := openTest(t, dir, "b")
	journal(t, a, "s1")
	journal(t, b, "s2")

	// Each node sees both sessions (shared directory).
	for _, s := range []*DiskStore{a, b} {
		sessions, _, err := s.Load()
		if err != nil {
			t.Fatal(err)
		}
		if len(sessions) != 2 {
			t.Fatalf("sessions = %d, want 2", len(sessions))
		}
	}

	// Takeover: node b rehydrates node a's session.
	st, err := b.LoadSession("s1")
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, st, []string{"seed", "t1", "t2"}, []string{"t3"})

	// Corruption in a's segment must not be repaired by b...
	a.Close()
	pathA := filepath.Join(dir, "wal-a.log")
	data, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pathA, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Load(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data)-5 {
		t.Fatalf("foreign segment was modified: %d -> %d bytes", len(data)-5, len(after))
	}
}

func TestMemStoreMatchesDisk(t *testing.T) {
	disk := openTest(t, t.TempDir(), "a")
	mem := NewMem()
	for _, s := range []Store{disk, mem} {
		journal(t, s, "s1")
		sessions, _, err := s.Load()
		if err != nil {
			t.Fatal(err)
		}
		wantState(t, sessions["s1"], []string{"seed", "t1", "t2"}, []string{"t3"})
	}
}

func TestMemDropTail(t *testing.T) {
	mem := NewMem()
	journal(t, mem, "s1")
	mem.DropTail(2) // lose the commit and the trailing admit
	sessions, _, err := mem.Load()
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, sessions["s1"], []string{"seed"}, []string{"t1", "t2"})
}

// TestConcurrentLoadDuringAppends hammers Load while appends are in
// flight: a live Load must never observe a batch mid-write — and above
// all must never "repair" (truncate) the segment it races with, which
// would destroy records whose Append callers were already told are
// durable.
func TestConcurrentLoadDuringAppends(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "a")
	if _, err := s.Append(Record{Type: TypeOpen, Session: "s1", Config: cfg("seed")}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var loads sync.WaitGroup
	for range 2 {
		loads.Add(1)
		go func() {
			defer loads.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := s.Load(); err != nil {
					t.Errorf("concurrent load: %v", err)
					return
				}
			}
		}()
	}
	const n = 200
	for i := range n {
		if _, err := s.Append(Record{Type: TypeAdmit, Session: "s1", Task: task(fmt.Sprintf("t%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	loads.Wait()
	if tr := s.Stats().Truncations; tr != 0 {
		t.Fatalf("live Load truncated the segment %d times", tr)
	}
	sessions, _, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sessions["s1"].Pending); got != n {
		t.Fatalf("pending after concurrent loads = %d, want %d (durable records lost)", got, n)
	}
}

// TestLiveLoadLeavesMidWriteTailAlone is the deterministic version of
// the race above: a partial frame is appended to the live segment out
// of band — byte-for-byte what a reader racing writeBatch could
// observe mid-write — and Load must replay up to it WITHOUT repairing
// the file. Truncating here would destroy the batch the writer is
// about to finish (and has possibly already acked as durable).
func TestLiveLoadLeavesMidWriteTailAlone(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "a")
	journal(t, s, "s1")
	s.drain()
	path := walFile(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2}); err != nil { // header fragment
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	sessions, _, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, sessions["s1"], []string{"seed", "t1", "t2"}, []string{"t3"})
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("live Load modified the segment: %d -> %d bytes", before.Size(), after.Size())
	}
	if tr := s.Stats().Truncations; tr != 0 {
		t.Fatalf("live Load counted %d truncations, want 0", tr)
	}
}

// TestSnapshotWatermarkKeepsLaterRecords pins the capture protocol: a
// snapshot whose Seq watermark was read before later records were
// stamped must not compact those records away — the shape of a session
// whose open record lands while a snapshot capture is walking the
// session map.
func TestSnapshotWatermarkKeepsLaterRecords(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "a")
	journal(t, s, "s1")
	wm := s.LastSeq()
	if _, err := s.Append(Record{Type: TypeOpen, Session: "s2", Config: cfg("late")}); err != nil {
		t.Fatal(err)
	}
	sessions, _, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	st := sessions["s1"]
	snap := Snapshot{Seq: wm, Sessions: []SessionSnapshot{{
		ID: "s1", Seq: st.Seq, Config: st.Config, Pending: st.Pending,
	}}}
	if err := s.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openTest(t, dir, "a")
	sessions, _, err = s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if sessions["s2"] == nil {
		t.Fatal("open record stamped after the snapshot watermark was compacted away")
	}
	wantState(t, sessions["s1"], []string{"seed", "t1", "t2"}, []string{"t3"})
}

// TestDefaultNodeStable pins the default node-name contract: minted
// once, persisted in the directory, identical on every later call — so
// a restarted edfd with an ephemeral listen address keeps its segments.
func TestDefaultNodeStable(t *testing.T) {
	dir := t.TempDir()
	a, err := DefaultNode(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a == "" || strings.ContainsAny(a, "/\\ ") {
		t.Fatalf("bad default node name %q", a)
	}
	b, err := DefaultNode(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("default node name changed across calls: %q then %q", a, b)
	}
	st, err := Open(dir, a, Options{})
	if err != nil {
		t.Fatalf("open with default node: %v", err)
	}
	st.Close()
}

func TestGroupCommitAmortizesFsync(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "a", Options{BatchSize: 64, MaxWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append(Record{Type: TypeOpen, Session: "s1", Config: cfg()}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := s.Submit(Record{Type: TypeAdmit, Session: "s1", Task: task("t")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Append(Record{Type: TypeCommit, Session: "s1"}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Records != 66 {
		t.Fatalf("records = %d, want 66", st.Records)
	}
	// 64 submits + 2 appends in at most a handful of flushes; without
	// group commit this would be up to 66.
	if st.Syncs > 8 {
		t.Fatalf("syncs = %d, want <= 8 (group commit not amortizing)", st.Syncs)
	}
}
