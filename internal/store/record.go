package store

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Record types, one per session decision. Open and Admit carry opaque
// payloads owned by the service layer (the session config and the
// proposed task); the store never interprets them.
const (
	TypeOpen     = "open"
	TypeAdmit    = "admit"
	TypeCommit   = "commit"
	TypeRollback = "rollback"
	TypeClose    = "close"
	TypeExpire   = "expire"
)

// Record is one entry in the write-ahead decision log.
type Record struct {
	// Seq is the store-assigned hybrid-clock sequence number. Callers
	// leave it zero; the store fills it in on Append/Submit.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock time of the decision in unix nanoseconds.
	Time int64 `json:"time,omitempty"`
	// Type is one of the Type* constants.
	Type string `json:"type"`
	// Session is the session id the record belongs to.
	Session string `json:"session"`
	// Config is the opaque session configuration (the seed workload and
	// analyzer options), present on open records only.
	Config json.RawMessage `json:"config,omitempty"`
	// Task is the opaque proposed task, present on admit records only.
	Task json.RawMessage `json:"task,omitempty"`
}

// SessionSnapshot is the durable image of one session inside a Snapshot:
// its config reflecting all committed decisions, any pending
// (uncommitted) tasks, and the sequence watermark of the last record the
// image covers.
type SessionSnapshot struct {
	ID string `json:"id"`
	// Seq is the session's watermark: log records for this session with
	// Seq <= this value are already folded into Config/Pending and are
	// skipped during replay.
	Seq     uint64            `json:"seq"`
	Config  json.RawMessage   `json:"config"`
	Pending []json.RawMessage `json:"pending,omitempty"`
}

// Snapshot is a compacting image of live session state.
type Snapshot struct {
	// Seq is a store watermark taken BEFORE any session was captured
	// (Store.LastSeq): a record stamped while the capture ran always
	// carries a higher seq, so compacting records at or below Seq (per
	// the session marks) can never drop one the snapshot does not cover
	// — not even a session whose first record landed mid-capture.
	Seq      uint64            `json:"seq"`
	Sessions []SessionSnapshot `json:"sessions"`
}

// SessionState is the replayed state of one session after folding a
// snapshot and the log: the config as of the last committed decision,
// tasks admitted but not yet committed, and the last sequence number
// seen for the session.
type SessionState struct {
	ID      string
	Seq     uint64
	Config  json.RawMessage
	Pending []json.RawMessage
}

// replayer folds snapshot images and log records into SessionState
// values, dropping sessions once a close/expire record is seen.
type replayer struct {
	sessions map[string]*SessionState
	// closed remembers sessions removed by close/expire so a stale
	// snapshot image read after the record (shared-dir loads read
	// segments in seq order, but snapshots are folded first) cannot
	// resurrect them.
	closed map[string]uint64
	maxSeq uint64
}

func newReplayer() *replayer {
	return &replayer{sessions: make(map[string]*SessionState), closed: make(map[string]uint64)}
}

func (r *replayer) note(seq uint64) {
	if seq > r.maxSeq {
		r.maxSeq = seq
	}
}

// foldSnapshot applies one session image. Later images (higher
// watermarks) win over earlier ones; a close/expire at or after the
// watermark suppresses the image entirely.
func (r *replayer) foldSnapshot(img SessionSnapshot) {
	r.note(img.Seq)
	if closedAt, ok := r.closed[img.ID]; ok && closedAt >= img.Seq {
		return
	}
	if cur, ok := r.sessions[img.ID]; ok && cur.Seq >= img.Seq {
		return
	}
	st := &SessionState{ID: img.ID, Seq: img.Seq, Config: img.Config}
	if len(img.Pending) > 0 {
		st.Pending = append([]json.RawMessage(nil), img.Pending...)
	}
	r.sessions[img.ID] = st
}

// foldRecord applies one log record. Records at or below a session's
// watermark are already covered and skipped.
func (r *replayer) foldRecord(rec Record) error {
	r.note(rec.Seq)
	if closedAt, ok := r.closed[rec.Session]; ok && closedAt >= rec.Seq {
		return nil
	}
	st := r.sessions[rec.Session]
	if st != nil && rec.Seq <= st.Seq {
		return nil
	}
	switch rec.Type {
	case TypeOpen:
		r.sessions[rec.Session] = &SessionState{ID: rec.Session, Seq: rec.Seq, Config: rec.Config}
	case TypeAdmit:
		if st == nil {
			return nil // session already gone; stray suffix record
		}
		st.Pending = append(st.Pending, rec.Task)
		st.Seq = rec.Seq
	case TypeCommit:
		if st == nil {
			return nil
		}
		cfg, err := commitConfig(st.Config, st.Pending)
		if err != nil {
			return fmt.Errorf("store: commit replay for session %s: %w", rec.Session, err)
		}
		st.Config = cfg
		st.Pending = nil
		st.Seq = rec.Seq
	case TypeRollback:
		if st == nil {
			return nil
		}
		st.Pending = nil
		st.Seq = rec.Seq
	case TypeClose, TypeExpire:
		delete(r.sessions, rec.Session)
		r.closed[rec.Session] = rec.Seq
	default:
		return fmt.Errorf("store: unknown record type %q", rec.Type)
	}
	return nil
}

// commitConfig folds pending tasks into a session config by appending
// them to its "tasks" array. The config is otherwise opaque; only the
// tasks key is touched, and the service layer's config schema keeps
// tasks as a JSON array.
func commitConfig(cfg json.RawMessage, pending []json.RawMessage) (json.RawMessage, error) {
	if len(pending) == 0 {
		return cfg, nil
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(cfg, &obj); err != nil {
		return nil, fmt.Errorf("config not an object: %w", err)
	}
	var tasks []json.RawMessage
	if raw, ok := obj["tasks"]; ok && len(raw) > 0 && string(raw) != "null" {
		if err := json.Unmarshal(raw, &tasks); err != nil {
			return nil, fmt.Errorf("config tasks not an array: %w", err)
		}
	}
	tasks = append(tasks, pending...)
	rawTasks, err := json.Marshal(tasks)
	if err != nil {
		return nil, err
	}
	obj["tasks"] = rawTasks
	return json.Marshal(obj)
}

// result returns the replayed sessions and the highest sequence seen.
func (r *replayer) result() (map[string]*SessionState, uint64) {
	return r.sessions, r.maxSeq
}

// sortRecords orders records by sequence number, preserving input order
// for equal seqs (which only happens across nodes with colliding hybrid
// clocks; per-node seqs are strictly increasing).
func sortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
}
