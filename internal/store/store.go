package store

// Store is the pluggable durable-state backend for admission sessions.
// Implementations must be safe for concurrent use.
type Store interface {
	// Append writes records to the log and returns after they are
	// durable (fsynced, for disk backends). The store assigns Seq to
	// each record in order; the returned seq is the last one assigned.
	Append(recs ...Record) (uint64, error)
	// Submit enqueues records in order and returns without waiting for
	// durability. A crash loses at most an ordered suffix of submitted
	// records. Use for records whose loss is recoverable (admit,
	// rollback, expire); use Append for durability points.
	Submit(recs ...Record) (uint64, error)
	// LastSeq returns the highest sequence number the store has assigned
	// (or observed via Load) so far. Snapshot captures read it as a
	// watermark BEFORE walking session state: any record stamped
	// afterwards is guaranteed a higher seq, so compacting up to the
	// watermark can never drop a record the snapshot does not cover.
	LastSeq() uint64
	// WriteSnapshot persists a compacting image of live session state
	// and drops log records it covers.
	WriteSnapshot(snap Snapshot) error
	// Load replays snapshot + log into per-session states and returns
	// the highest sequence number seen.
	Load() (map[string]*SessionState, uint64, error)
	// LoadSession replays a single session (the cluster takeover path:
	// a peer rehydrates one session from the shared directory). Returns
	// nil state when the session is unknown or closed.
	LoadSession(id string) (*SessionState, error)
	// Stats reports counters for /metrics.
	Stats() Stats
	// Close flushes pending submissions and releases resources.
	Close() error
}

// Stats are monotonic counters exposed as edfd_store_* metrics.
type Stats struct {
	// Records appended (log records written, durable or queued).
	Records uint64
	// Appends is the number of Append/Submit calls.
	Appends uint64
	// Flushes is the number of group-commit batches written.
	Flushes uint64
	// Syncs is the number of fsync calls (0 for the memory backend).
	Syncs uint64
	// Bytes written to the log.
	Bytes uint64
	// Snapshots written.
	Snapshots uint64
	// Truncations performed during replay (torn/corrupt tails dropped).
	Truncations uint64
}
