package store_test

import (
	"encoding/json"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

func gomaxprocs() int { return runtime.GOMAXPROCS(0) }

// BenchmarkStoreAppend measures the synchronous append path — the
// latency a journaled commit pays — under concurrent appenders, across
// the group-commit sweep the tuning doc quotes: every record its own
// fsync (batch=1), small and default batches, and timer-only flushing
// (the batch size never fills, so only max-wait bounds latency). Each
// variant reports p50/p99 append latency and fsyncs per record; the
// amortization claim is exactly "fsyncs/op falls as the batch grows
// while p99 stays bounded by max-wait".
func BenchmarkStoreAppend(b *testing.B) {
	for _, bc := range []struct {
		name string
		opts store.Options
	}{
		{"batch=1", store.Options{BatchSize: 1}},
		{"batch=8", store.Options{BatchSize: 8}},
		{"batch=64", store.Options{BatchSize: 64}},
		{"maxwait-only", store.Options{BatchSize: 1 << 20}},
	} {
		b.Run(bc.name, func(b *testing.B) { benchAppend(b, bc.opts) })
	}
}

func benchAppend(b *testing.B, opts store.Options) {
	st, err := store.Open(b.TempDir(), "bench", opts)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	task := json.RawMessage(`{"wcet":1,"deadline":50,"period":100}`)
	var (
		mu   sync.Mutex
		lats []int64
	)
	base := st.Stats()
	b.ReportAllocs()
	// Group commit amortizes across concurrent committers, so the sweep
	// needs real concurrency even on a single-core runner: 16 appenders
	// regardless of GOMAXPROCS.
	b.SetParallelism(16 / max(1, gomaxprocs()))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]int64, 0, 1024)
		rec := store.Record{Type: store.TypeAdmit, Session: "s_bench", Task: task}
		for pb.Next() {
			t0 := time.Now()
			if _, err := st.Append(rec); err != nil {
				b.Error(err)
				return
			}
			local = append(local, time.Since(t0).Nanoseconds())
		}
		mu.Lock()
		lats = append(lats, local...)
		mu.Unlock()
	})
	b.StopTimer()
	stats := st.Stats()
	slices.Sort(lats)
	if n := len(lats); n > 0 {
		b.ReportMetric(float64(lats[n/2]), "p50-ns")
		b.ReportMetric(float64(lats[n*99/100]), "p99-ns")
	}
	b.ReportMetric(float64(stats.Syncs-base.Syncs)/float64(b.N), "fsyncs/op")
}

// BenchmarkStoreReplay measures cold recovery: how long Load takes to
// fold a journal of s sessions x r records back into session state —
// the restart cost the snapshot cadence bounds.
func BenchmarkStoreReplay(b *testing.B) {
	for _, size := range []struct{ sessions, recs int }{{16, 32}, {128, 32}} {
		b.Run(fmt.Sprintf("sessions=%d", size.sessions), func(b *testing.B) {
			dir := b.TempDir()
			st, err := store.Open(dir, "bench", store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			cfg := json.RawMessage(`{"tasks":[{"wcet":1,"deadline":50,"period":100}]}`)
			task := json.RawMessage(`{"wcet":1,"deadline":60,"period":120}`)
			for s := 0; s < size.sessions; s++ {
				id := fmt.Sprintf("s_%04d", s)
				recs := []store.Record{{Type: store.TypeOpen, Session: id, Config: cfg}}
				for r := 0; r < size.recs; r++ {
					recs = append(recs, store.Record{Type: store.TypeAdmit, Session: id, Task: task})
				}
				recs = append(recs, store.Record{Type: store.TypeCommit, Session: id})
				if _, err := st.Append(recs...); err != nil {
					b.Fatal(err)
				}
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ro, err := store.Open(dir, "bench", store.Options{})
				if err != nil {
					b.Fatal(err)
				}
				sessions, _, err := ro.Load()
				if err != nil {
					b.Fatal(err)
				}
				if len(sessions) != size.sessions {
					b.Fatalf("replayed %d sessions, want %d", len(sessions), size.sessions)
				}
				_ = ro.Close()
			}
		})
	}
}
