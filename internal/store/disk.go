package store

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

var errClosed = errors.New("store: closed")

// Options tune the disk store's group-commit batcher.
type Options struct {
	// BatchSize flushes the write-ahead batch when it reaches this many
	// records (default DefaultBatchSize). 1 disables group commit: every
	// record is its own write+fsync.
	BatchSize int
	// MaxWait flushes a non-empty batch after this long even if it has
	// not filled (default DefaultMaxWait).
	MaxWait time.Duration
	// NoSync skips fsync after batch writes (tests/benchmarks only;
	// crash durability is lost).
	NoSync bool
}

// DiskStore is the production Store backend: a directory holding one
// write-ahead segment (wal-<node>.log) and one snapshot
// (snap-<node>.json) per node. Several processes may share the
// directory — each writes only its own pair, and Load reads all of
// them, which is what lets a takeover peer rehydrate a dead node's
// sessions.
type DiskStore struct {
	dir    string
	node   string
	noSync bool

	seqMu   sync.Mutex
	lastSeq uint64

	fileMu sync.Mutex
	f      *os.File

	b *batcher

	closeOnce sync.Once
	closedCh  chan struct{}

	stRecords     atomic.Uint64
	stAppends     atomic.Uint64
	stFlushes     atomic.Uint64
	stSyncs       atomic.Uint64
	stBytes       atomic.Uint64
	stSnapshots   atomic.Uint64
	stTruncations atomic.Uint64
}

// Open creates or reopens a disk store rooted at dir. node names this
// process's segment files; it must be unique among processes sharing
// dir and stable across restarts of the same logical replica (edfd uses
// a hash of the listen address).
func Open(dir, node string, opts Options) (*DiskStore, error) {
	if node == "" {
		node = "0"
	}
	if strings.ContainsAny(node, "/\\ ") {
		return nil, fmt.Errorf("store: invalid node name %q", node)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &DiskStore{dir: dir, node: node, noSync: opts.NoSync, closedCh: make(chan struct{})}
	// Recovery-time repair: truncate any torn tail a crash left before
	// the segment goes live for appends. This is the only point where
	// the own segment may be truncated — once the batcher is running the
	// file can be mid-write, and a concurrent reader "repairing" it
	// would destroy records whose Append callers were already told are
	// durable.
	if _, truncated, err := readLogFile(s.walPath(node), true); err != nil {
		return nil, err
	} else if truncated {
		s.stTruncations.Add(1)
	}
	f, err := os.OpenFile(s.walPath(node), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	s.f = f
	s.b = newBatcher(s, opts.BatchSize, opts.MaxWait)
	return s, nil
}

func (s *DiskStore) walPath(node string) string  { return filepath.Join(s.dir, "wal-"+node+".log") }
func (s *DiskStore) snapPath(node string) string { return filepath.Join(s.dir, "snap-"+node+".json") }

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// nextSeqs assigns n hybrid-clock sequence numbers: monotonically
// increasing within the process and, because the base is wall-clock
// nanoseconds, ordered across processes sharing the directory without
// coordination (modulo clock skew, which only affects cross-node tie
// ordering, never correctness of a single session's records — a
// session is journaled by one node at a time).
func (s *DiskStore) nextSeqs(n int) uint64 {
	s.seqMu.Lock()
	base := uint64(time.Now().UnixNano())
	if base <= s.lastSeq {
		base = s.lastSeq + 1
	}
	s.lastSeq = base + uint64(n-1)
	s.seqMu.Unlock()
	return base
}

func (s *DiskStore) stamp(recs []Record) uint64 {
	base := s.nextSeqs(len(recs))
	now := time.Now().UnixNano()
	for i := range recs {
		recs[i].Seq = base + uint64(i)
		if recs[i].Time == 0 {
			recs[i].Time = now
		}
	}
	return base + uint64(len(recs)-1)
}

// Append writes records and blocks until they are durable.
func (s *DiskStore) Append(recs ...Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	last := s.stamp(recs)
	s.stAppends.Add(1)
	done, err := s.b.enqueue(recs, true)
	if err != nil {
		return 0, err
	}
	if err := <-done; err != nil {
		return 0, err
	}
	return last, nil
}

// Submit enqueues records in order and returns immediately.
func (s *DiskStore) Submit(recs ...Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	last := s.stamp(recs)
	s.stAppends.Add(1)
	if _, err := s.b.enqueue(recs, false); err != nil {
		return 0, err
	}
	return last, nil
}

// writeBatch is the batcher sink: one write + one fsync per batch.
func (s *DiskStore) writeBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil // drain barrier: ordering is all the caller needs
	}
	buf, err := encodeRecords(recs)
	if err != nil {
		return err
	}
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("store: wal write: %w", err)
	}
	if !s.noSync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: wal sync: %w", err)
		}
		s.stSyncs.Add(1)
	}
	s.stFlushes.Add(1)
	s.stRecords.Add(uint64(len(recs)))
	s.stBytes.Add(uint64(len(buf)))
	return nil
}

// WriteSnapshot persists the image under this node's snapshot file
// (write-temp + rename) and compacts this node's segment, dropping
// records the snapshot covers. Close/expire records are always
// retained so a stale image in another node's files cannot resurrect a
// dead session.
func (s *DiskStore) WriteSnapshot(snap Snapshot) error {
	data, err := json.MarshalIndent(&snap, "", " ")
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	path := s.snapPath(s.node)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	s.stSnapshots.Add(1)
	return s.compact(snap)
}

// compact rewrites this node's segment keeping only records the
// snapshot does not cover.
func (s *DiskStore) compact(snap Snapshot) error {
	marks := make(map[string]uint64, len(snap.Sessions))
	for _, img := range snap.Sessions {
		marks[img.ID] = img.Seq
	}
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	path := s.walPath(s.node)
	recs, truncated, err := readLogFile(path, true)
	if err != nil {
		return err
	}
	if truncated {
		s.stTruncations.Add(1)
	}
	var keep []Record
	for _, rec := range recs {
		switch {
		case rec.Type == TypeClose || rec.Type == TypeExpire:
			keep = append(keep, rec)
		case rec.Seq > snap.Seq:
			keep = append(keep, rec)
		default:
			if mark, ok := marks[rec.Session]; ok && rec.Seq > mark {
				keep = append(keep, rec)
			}
		}
	}
	buf, err := encodeRecords(keep)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// Reopen the handle on the new inode; queued batches flush to it.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen wal after compaction: %w", err)
	}
	s.f.Close()
	s.f = f
	return nil
}

// Load replays every snapshot and segment in the directory. A damaged
// frame stops that segment's replay without modifying the file: the own
// segment was repaired at Open and is read under fileMu here (so a
// batch mid-write can never be observed, let alone "repaired" away),
// and a foreign segment belongs to a process that repairs it itself.
func (s *DiskStore) Load() (map[string]*SessionState, uint64, error) {
	// Flush queued submissions first so Load observes everything this
	// process has written (tests reuse one store across "restarts").
	s.drain()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0, err
	}
	r := newReplayer()
	var all []Record
	var snapFiles, walFiles []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".json"):
			snapFiles = append(snapFiles, name)
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			walFiles = append(walFiles, name)
		}
	}
	sort.Strings(snapFiles)
	sort.Strings(walFiles)
	for _, name := range snapFiles {
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return nil, 0, err
		}
		var snap Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			// A half-written foreign snapshot (rename is atomic, so this
			// means external damage): skip it, the log still replays.
			continue
		}
		r.note(snap.Seq)
		for _, img := range snap.Sessions {
			r.foldSnapshot(img)
		}
	}
	ownWal := "wal-" + s.node + ".log"
	for _, name := range walFiles {
		if name == ownWal {
			s.fileMu.Lock()
		}
		recs, _, err := readLogFile(filepath.Join(s.dir, name), false)
		if name == ownWal {
			s.fileMu.Unlock()
		}
		if err != nil {
			return nil, 0, err
		}
		all = append(all, recs...)
	}
	sortRecords(all)
	for _, rec := range all {
		if err := r.foldRecord(rec); err != nil {
			return nil, 0, err
		}
	}
	sessions, maxSeq := r.result()
	s.seqMu.Lock()
	if maxSeq > s.lastSeq {
		s.lastSeq = maxSeq
	}
	s.seqMu.Unlock()
	return sessions, maxSeq, nil
}

// LastSeq implements Store: the highest sequence number assigned (or
// observed via Load) so far.
func (s *DiskStore) LastSeq() uint64 {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	return s.lastSeq
}

// LoadSession replays the directory and returns one session's state,
// or nil when it is unknown or closed.
func (s *DiskStore) LoadSession(id string) (*SessionState, error) {
	sessions, _, err := s.Load()
	if err != nil {
		return nil, err
	}
	return sessions[id], nil
}

// drain blocks until the batcher has flushed everything enqueued so
// far, by appending an empty durable batch behind it.
func (s *DiskStore) drain() {
	done, err := s.b.enqueue(nil, true)
	if err != nil {
		return
	}
	<-done
}

// Stats reports the store's counters.
func (s *DiskStore) Stats() Stats {
	return Stats{
		Records:     s.stRecords.Load(),
		Appends:     s.stAppends.Load(),
		Flushes:     s.stFlushes.Load(),
		Syncs:       s.stSyncs.Load(),
		Bytes:       s.stBytes.Load(),
		Snapshots:   s.stSnapshots.Load(),
		Truncations: s.stTruncations.Load(),
	}
}

// DefaultNode returns a stable default node name for dir: the name
// persisted in dir/node-id, minting and persisting a random one on
// first use. A restarted process reuses its segment files even when its
// listen address changes between runs (edfd -addr :0); processes
// SHARING a directory must pass explicit, distinct node names instead —
// they would otherwise all adopt the same persisted default.
func DefaultNode(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("store: create dir: %w", err)
	}
	path := filepath.Join(dir, "node-id")
	if data, err := os.ReadFile(path); err == nil {
		if name := strings.TrimSpace(string(data)); name != "" {
			return name, nil
		}
	} else if !os.IsNotExist(err) {
		return "", err
	}
	var buf [6]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", err
	}
	name := "edfd-" + hex.EncodeToString(buf[:])
	// O_EXCL arbitrates concurrent first runs: exactly one process mints
	// the id, a loser adopts the winner's — or, in the unlikely window
	// before the winner's write lands, is told to name itself.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if !os.IsExist(err) {
			return "", err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return "", rerr
		}
		if n := strings.TrimSpace(string(data)); n != "" {
			return n, nil
		}
		return "", fmt.Errorf("store: node-id in %s is being initialized by another process; pass an explicit node name", dir)
	}
	if _, err := f.WriteString(name + "\n"); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return name, nil
}

// Close flushes pending submissions and closes the segment.
func (s *DiskStore) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.b.close()
		s.fileMu.Lock()
		err = s.f.Close()
		s.fileMu.Unlock()
		close(s.closedCh)
	})
	return err
}
