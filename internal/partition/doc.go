// Package partition places partitioned multiprocessor workloads onto
// processors and proves each placement feasible with the uniprocessor
// feasibility tests the rest of the tree already trusts.
//
// # Design
//
// Partitioned multiprocessor EDF reduces to bin packing (Bonifaci &
// Marchetti-Spaccamela): assign every task to exactly one processor so
// that each processor's task set passes a uniprocessor EDF feasibility
// test. Bin packing is NP-hard, so Place runs classic heuristics —
// first-fit, worst-fit and utilization-balancing, all in decreasing
// utilization order — and returns the first placement any of them can
// prove feasible, or a counterexample naming the task no heuristic could
// place together with its per-processor rejection trail.
//
// Heterogeneous speeds are handled by scaling: a task with WCET C on a
// processor of relative speed s contributes ceil(C/s) execution units
// (critical sections and self-suspensions scale the same way), so every
// bin is analyzed as a plain sporadic set on a unit-speed processor.
// The ceiling keeps the scaling conservative — a feasible verdict for
// the scaled bin is sound for the real processor — and makes unit-speed
// bins byte-identical to ordinary sporadic sets.
//
// # Candidate ordering and the utilization gate
//
// For each task the candidate processors are filtered first by affinity,
// then by the O(1) utilization gate: a bin whose scaled utilization
// would exceed 1 cannot be feasible and is rejected without running any
// test. Surviving candidates are ordered by the active heuristic
// (first-fit: lowest index; worst-fit: most remaining capacity
// speed·(1−fill); balance: lowest resulting fill — the two differ only
// on heterogeneous platforms) and the task lands on the first candidate
// whose extended bin a full analyzer run proves feasible.
//
// # Verification, caching and parallelism
//
// Candidate bins are verified through the engine's parallel batch
// runner, so per-bin verdicts reuse pooled Scratch memory and stay on
// the allocation-free fast path. Every bin check is content-addressed
// with the sporadic fingerprint of its scaled task set — the same
// domain /v1/analyze uses — so an injected Cache (the service's sharded
// LRU satisfies the interface directly) makes repeated bins free within
// a placement, across requests, and across the fleet via the proxy's
// fingerprint routing.
package partition
