package partition

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/workload"
)

// randomPartitioned draws a partitioned workload: 1-4 processors with
// random speeds, 1-10 tasks, ~1/3 of them affinity-constrained.
func randomPartitioned(rng *rand.Rand) workload.Workload {
	m := 1 + rng.Intn(4)
	procs := make([]workload.Processor, m)
	for j := range procs {
		if rng.Intn(2) == 0 {
			procs[j].Speed = 1 + rng.Int63n(3)
		}
	}
	n := 1 + rng.Intn(10)
	tasks := make([]workload.PartitionedTask, n)
	for i := range tasks {
		wcet := 1 + rng.Int63n(20)
		period := wcet + rng.Int63n(280)
		deadline := wcet + rng.Int63n(period+period/4-wcet+1)
		tasks[i] = workload.PartitionedTask{
			Task: model.Task{WCET: wcet, Deadline: deadline, Period: period},
		}
		if rng.Intn(3) == 0 {
			// A random non-empty, strictly increasing index subset.
			for j := range m {
				if rng.Intn(2) == 0 {
					tasks[i].Affinity = append(tasks[i].Affinity, j)
				}
			}
			if len(tasks[i].Affinity) == 0 {
				tasks[i].Affinity = []int{rng.Intn(m)}
			}
		}
	}
	return workload.NewPartitioned(procs, tasks)
}

// TestPlacementConfirmedByFullAnalyzer is the oracle property over random
// workloads, affinity-constrained and heterogeneous-speed sets included:
// every placement declared feasible must be bit-identically confirmed by
// re-running each processor's bin — rebuilt from the reported assignment
// alone — through both the configured cascade and the full (non-cascade)
// processor-demand analyzer.
func TestPlacementConfirmedByFullAnalyzer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	oracle := engine.MustGet("pd")
	cascade := engine.MustGet("cascade")
	cache := newMapCache()
	feasible := 0
	const trials = 250
	for trial := range trials {
		wl := randomPartitioned(rng)
		cfg := Config{}
		if trial%2 == 0 {
			cfg.Cache = cache
		}
		if trial%5 == 0 {
			cfg.Heuristics = []Heuristic{AllHeuristics()[trial/5%3]}
		}
		pl, err := Place(context.Background(), wl, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !pl.Feasible {
			if pl.Counterexample == nil {
				t.Fatalf("trial %d: infeasible without counterexample", trial)
			}
			if len(pl.Counterexample.Rejections) != len(wl.Processors) {
				t.Fatalf("trial %d: rejection trail covers %d of %d processors",
					trial, len(pl.Counterexample.Rejections), len(wl.Processors))
			}
			continue
		}
		feasible++
		for i, j := range pl.Assignment {
			if !wl.PartTasks[i].Allows(j) {
				t.Fatalf("trial %d: task %d placed on %d against its affinity", trial, i, j)
			}
		}
		for _, rep := range pl.Processors {
			if len(rep.Tasks) == 0 {
				continue
			}
			bin := BinTasks(wl, rep.Index, rep.Tasks)
			if res := oracle.Analyze(bin, core.Options{}); res.Verdict != core.Feasible {
				t.Fatalf("trial %d: oracle rejects processor %d: %s", trial, rep.Index, res.Verdict)
			}
			// The recorded verdict must be the cascade's own, bit for bit.
			res := cascade.Analyze(bin, core.Options{})
			if res.Verdict.String() != rep.Verdict || res.Iterations != rep.Iterations {
				t.Fatalf("trial %d: processor %d recorded (%s, %d), cascade says (%s, %d)",
					trial, rep.Index, rep.Verdict, rep.Iterations, res.Verdict, res.Iterations)
			}
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible trial — the generator is miscalibrated")
	}
	t.Logf("%d/%d trials feasible", feasible, trials)
}
