package partition

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/workload"
)

// Heuristic names a placement strategy. All strategies consider tasks in
// decreasing utilization order; they differ in how candidate processors
// are ranked.
type Heuristic string

const (
	// FirstFit ranks candidates by processor index.
	FirstFit Heuristic = "first-fit"
	// WorstFit ranks candidates by remaining absolute capacity,
	// speed·(1−fill), largest first.
	WorstFit Heuristic = "worst-fit"
	// Balance ranks candidates by the fill the placement would produce,
	// smallest first, keeping relative loads even across speeds.
	Balance Heuristic = "balance"
)

// AllHeuristics is the default strategy order: cheapest packing first,
// spread-out strategies after.
func AllHeuristics() []Heuristic { return []Heuristic{FirstFit, WorstFit, Balance} }

// ParseHeuristic resolves the wire form of a heuristic name.
func ParseHeuristic(s string) (Heuristic, error) {
	switch h := Heuristic(strings.ToLower(strings.TrimSpace(s))); h {
	case FirstFit, WorstFit, Balance:
		return h, nil
	case "":
		return "", fmt.Errorf("partition: empty heuristic")
	default:
		return "", fmt.Errorf("partition: unknown heuristic %q (want %q, %q or %q)", s, FirstFit, WorstFit, Balance)
	}
}

// ParseHeuristics resolves a heuristic list; an empty list selects
// AllHeuristics.
func ParseHeuristics(specs []string) ([]Heuristic, error) {
	if len(specs) == 0 {
		return AllHeuristics(), nil
	}
	out := make([]Heuristic, len(specs))
	for i, s := range specs {
		h, err := ParseHeuristic(s)
		if err != nil {
			return nil, err
		}
		out[i] = h
	}
	return out, nil
}

// Cache is a result store keyed by analysis fingerprint. It is satisfied
// directly by the service's sharded LRU; a nil Cache disables reuse.
type Cache interface {
	Get(key string) (core.Result, bool)
	Put(key string, r core.Result)
}

// Config tunes a placement run.
type Config struct {
	// Analyzer is the registry name (or group spec) verifying each bin;
	// empty selects "cascade".
	Analyzer string
	// Options tune the per-bin analyses and contribute to their cache
	// identity.
	Options core.Options
	// Workers bounds the batch runner's pool; <= 0 selects NumCPU.
	Workers int
	// Cache, when non-nil, short-circuits bin checks whose fingerprint
	// was analyzed before and receives every fresh verdict.
	Cache Cache
	// Heuristics is the strategy order; empty selects AllHeuristics.
	Heuristics []Heuristic
}

// Stats count the work a placement run performed.
type Stats struct {
	// BinChecks is the number of candidate-bin verdicts consulted.
	BinChecks uint64 `json:"bin_checks"`
	// CacheHits is how many of those came from the cache.
	CacheHits uint64 `json:"cache_hits"`
	// GateRejections counts candidates dismissed by the O(1) utilization
	// gate without any analyzer run.
	GateRejections uint64 `json:"gate_rejections"`
	// Promotions counts exits from the bounded-denominator arithmetic
	// fast path across all bin checks.
	Promotions uint64 `json:"promotions,omitempty"`
}

// ProcessorReport is the per-processor slice of a feasible placement.
type ProcessorReport struct {
	// Index is the processor's position in the workload.
	Index int `json:"processor"`
	// Name echoes the processor's name when it has one.
	Name string `json:"name,omitempty"`
	// Speed is the effective relative speed.
	Speed int64 `json:"speed"`
	// Tasks lists the assigned tasks by their original workload index,
	// in placement order.
	Tasks []int `json:"tasks"`
	// Utilization is the scaled fill Σ ceil(C/speed)/T as a float, the
	// fraction of this processor the bin consumes.
	Utilization float64 `json:"utilization"`
	// UtilizationExact is the same fill as an exact rational string.
	UtilizationExact string `json:"utilization_exact"`
	// Verdict is the uniprocessor verdict for the bin ("feasible" for an
	// empty bin, which needs no test).
	Verdict string `json:"verdict"`
	// Iterations is the verifying analysis' effort metric.
	Iterations int64 `json:"iterations,omitempty"`
	// WallNS is the verifying analysis' wall time (0 on a cache hit).
	WallNS int64 `json:"wall_ns,omitempty"`
	// CacheHit reports whether the final verdict came from the cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Fingerprint is the bin's content address — the same key
	// /v1/analyze would use for this scaled task set — empty when the
	// options are not content-addressable or the bin is empty.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Rejection explains why one processor could not take the failed task.
type Rejection struct {
	// Processor is the rejecting processor's index.
	Processor int `json:"processor"`
	// Reason is "affinity", "gate", or the analyzer verdict that refused
	// the extended bin ("infeasible", "not-accepted", "undecided").
	Reason string `json:"reason"`
}

// Attempt is the trail of one heuristic that failed to place the
// workload.
type Attempt struct {
	// Heuristic names the strategy.
	Heuristic Heuristic `json:"heuristic"`
	// Placed is how many tasks the strategy placed before failing.
	Placed int `json:"placed"`
	// FailedTask is the original index of the first unplaceable task.
	FailedTask int `json:"failed_task"`
	// FailedTaskName echoes the task's name when it has one.
	FailedTaskName string `json:"failed_task_name,omitempty"`
	// Rejections holds one entry per processor.
	Rejections []Rejection `json:"rejections"`
}

// Placement is the outcome of a Place run: a proven placement, or the
// counterexample trail of every heuristic.
type Placement struct {
	// Feasible reports whether some heuristic found a placement whose
	// every bin a full analyzer run proved feasible.
	Feasible bool `json:"feasible"`
	// Heuristic names the winning strategy (feasible placements only).
	Heuristic Heuristic `json:"heuristic,omitempty"`
	// Assignment maps each task's original index to its processor
	// (feasible placements only).
	Assignment []int `json:"assignment,omitempty"`
	// Processors reports each bin's tasks, fill and verdict (feasible
	// placements only).
	Processors []ProcessorReport `json:"processors,omitempty"`
	// Attempts records every heuristic that failed, in strategy order.
	Attempts []Attempt `json:"attempts,omitempty"`
	// Counterexample, set when no heuristic succeeded, is the attempt
	// that got furthest — the task it names cannot be placed by the best
	// strategy tried.
	Counterexample *Attempt `json:"counterexample,omitempty"`
	// Stats counts the run's work.
	Stats Stats `json:"stats"`
}

// ceilDiv is ceil(c/s) for c >= 0, s >= 1.
func ceilDiv(c, s int64) int64 { return (c + s - 1) / s }

// scaledTask maps a task onto a processor of relative speed s: execution
// demands shrink by s, rounded up so the mapping stays conservative.
// Speed 1 is the identity, keeping unit-speed bins byte-identical to
// plain sporadic tasks.
func scaledTask(t model.Task, s int64) model.Task {
	if s <= 1 {
		return t
	}
	t.WCET = ceilDiv(t.WCET, s)
	if t.CriticalSection > 0 {
		t.CriticalSection = ceilDiv(t.CriticalSection, s)
	}
	if t.SelfSuspension > 0 {
		t.SelfSuspension = ceilDiv(t.SelfSuspension, s)
	}
	return t
}

// BinTasks returns processor proc's bin as the uniprocessor task set the
// verdict applies to: the listed tasks (by original index) scaled to the
// processor's speed. It is the oracle-side twin of the sets Place
// verifies.
func BinTasks(wl workload.Workload, proc int, tasks []int) model.TaskSet {
	s := wl.Processors[proc].EffectiveSpeed()
	out := make(model.TaskSet, len(tasks))
	for i, ti := range tasks {
		out[i] = scaledTask(wl.PartTasks[ti].Task, s)
	}
	return out
}

// bin is one processor's working state during placement.
type bin struct {
	tasks  []int         // original task indices, placement order
	scaled model.TaskSet // scaled tasks, same order
	fill   *big.Rat      // Σ ceil(C/speed)/T
	speed  int64
}

// placer carries the run-wide state shared by the heuristics.
type placer struct {
	wl       workload.Workload
	analyzer engine.Analyzer
	name     string // analyzer spelling used for fingerprints
	cfg      Config
	stats    Stats
}

// Place assigns the partitioned workload's tasks to processors. It
// returns an error for structural problems (wrong model, invalid
// workload, unknown analyzer or heuristic, canceled context); an
// infeasible workload is not an error but a Placement with Feasible
// false and the counterexample trail filled in.
func Place(ctx context.Context, wl workload.Workload, cfg Config) (Placement, error) {
	if wl.Kind() != workload.Partitioned {
		return Placement{}, fmt.Errorf("partition: workload model %q is not %q", wl.Kind(), workload.Partitioned)
	}
	if err := wl.Validate(); err != nil {
		return Placement{}, err
	}
	name := cfg.Analyzer
	if strings.TrimSpace(name) == "" {
		name = "cascade"
	}
	analyzer, ok := engine.Get(name)
	if !ok {
		return Placement{}, fmt.Errorf("partition: unknown analyzer %q", name)
	}
	hs := cfg.Heuristics
	if len(hs) == 0 {
		hs = AllHeuristics()
	}
	for _, h := range hs {
		if _, err := ParseHeuristic(string(h)); err != nil {
			return Placement{}, err
		}
	}

	p := &placer{wl: wl, analyzer: analyzer, name: name, cfg: cfg}
	order := p.taskOrder()
	var out Placement
	for _, h := range hs {
		asg, attempt, err := p.run(ctx, h, order)
		if err != nil {
			return Placement{}, err
		}
		if attempt != nil {
			out.Attempts = append(out.Attempts, *attempt)
			continue
		}
		reports, err := p.finalReports(ctx, asg)
		if err != nil {
			return Placement{}, err
		}
		out.Feasible = true
		out.Heuristic = h
		out.Assignment = asg
		out.Processors = reports
		out.Stats = p.stats
		return out, nil
	}
	// Every heuristic failed: surface the attempt that got furthest as
	// the counterexample.
	best := 0
	for i, a := range out.Attempts {
		if a.Placed > out.Attempts[best].Placed {
			best = i
		}
	}
	ce := out.Attempts[best]
	out.Counterexample = &ce
	out.Stats = p.stats
	return out, nil
}

// taskOrder returns the task indices in decreasing exact utilization
// order (ties by original index), the "decreasing" in every heuristic's
// name — placing heavy tasks first is what makes the greedy strategies
// effective.
func (p *placer) taskOrder() []int {
	us := make([]*big.Rat, len(p.wl.PartTasks))
	for i, t := range p.wl.PartTasks {
		us[i] = t.Task.Utilization()
	}
	order := make([]int, len(us))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return us[order[a]].Cmp(us[order[b]]) > 0
	})
	return order
}

// candidate is one gate-surviving processor for the task at hand.
type candidate struct {
	proc    int
	after   *big.Rat // bin fill if the task lands here
	tent    model.TaskSet
	key     string // fingerprint of tent; "" when not addressable
	verdict core.Result
	known   bool
}

// run executes one heuristic. On success the assignment is returned; on
// failure the attempt describes the first unplaceable task.
func (p *placer) run(ctx context.Context, h Heuristic, order []int) ([]int, *Attempt, error) {
	m := len(p.wl.Processors)
	bins := make([]bin, m)
	for j := range bins {
		bins[j].fill = new(big.Rat)
		bins[j].speed = p.wl.Processors[j].EffectiveSpeed()
	}
	asg := make([]int, len(p.wl.PartTasks))
	one := big.NewRat(1, 1)
	for placed, ti := range order {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		task := p.wl.PartTasks[ti]
		rejections := make([]Rejection, 0, m)
		var cands []candidate
		for j := range m {
			if !task.Allows(j) {
				rejections = append(rejections, Rejection{Processor: j, Reason: "affinity"})
				continue
			}
			st := scaledTask(task.Task, bins[j].speed)
			after := new(big.Rat).Add(bins[j].fill, big.NewRat(st.WCET, st.Period))
			if after.Cmp(one) > 0 {
				p.stats.GateRejections++
				rejections = append(rejections, Rejection{Processor: j, Reason: "gate"})
				continue
			}
			tent := append(bins[j].scaled[:len(bins[j].scaled):len(bins[j].scaled)], st)
			cands = append(cands, candidate{proc: j, after: after, tent: tent})
		}
		p.rank(h, cands, bins)
		if err := p.resolve(ctx, cands); err != nil {
			return nil, nil, err
		}
		won := -1
		for i := range cands {
			if cands[i].known && cands[i].verdict.Verdict == core.Feasible {
				won = i
				break
			}
			rejections = append(rejections, Rejection{
				Processor: cands[i].proc,
				Reason:    cands[i].verdict.Verdict.String(),
			})
		}
		if won < 0 {
			sort.Slice(rejections, func(a, b int) bool {
				return rejections[a].Processor < rejections[b].Processor
			})
			return nil, &Attempt{
				Heuristic:      h,
				Placed:         placed,
				FailedTask:     ti,
				FailedTaskName: task.Name,
				Rejections:     rejections,
			}, nil
		}
		c := cands[won]
		bins[c.proc].tasks = append(bins[c.proc].tasks, ti)
		bins[c.proc].scaled = c.tent
		bins[c.proc].fill = c.after
		asg[ti] = c.proc
	}
	return asg, nil, nil
}

// rank orders the candidates by the heuristic, ties broken by processor
// index (every candidate list starts index-ascending).
func (p *placer) rank(h Heuristic, cands []candidate, bins []bin) {
	switch h {
	case WorstFit:
		// Remaining absolute capacity speed·(1−fill), largest first.
		rem := func(c candidate) *big.Rat {
			r := new(big.Rat).SetInt64(1)
			r.Sub(r, bins[c.proc].fill)
			return r.Mul(r, new(big.Rat).SetInt64(bins[c.proc].speed))
		}
		sort.SliceStable(cands, func(a, b int) bool {
			return rem(cands[a]).Cmp(rem(cands[b])) > 0
		})
	case Balance:
		// Resulting fill, smallest first.
		sort.SliceStable(cands, func(a, b int) bool {
			return cands[a].after.Cmp(cands[b].after) < 0
		})
	}
}

// resolve fills in every candidate's verdict: cache hits first, then one
// parallel engine batch over the misses, short-circuited entirely when
// the top-ranked candidate is already known feasible.
func (p *placer) resolve(ctx context.Context, cands []candidate) error {
	for i := range cands {
		c := &cands[i]
		key, ok := engine.Fingerprint(c.tent, p.name, p.cfg.Options)
		if ok {
			c.key = key
		}
		if p.cfg.Cache != nil && c.key != "" {
			if r, hit := p.cfg.Cache.Get(c.key); hit {
				c.verdict, c.known = r, true
				p.stats.BinChecks++
				p.stats.CacheHits++
			}
		}
	}
	if len(cands) > 0 && cands[0].known && cands[0].verdict.Verdict == core.Feasible {
		return nil
	}
	var jobs []engine.Job
	var idx []int
	for i := range cands {
		if !cands[i].known {
			jobs = append(jobs, engine.Job{Set: cands[i].tent, Analyzer: p.analyzer, Opt: p.cfg.Options})
			idx = append(idx, i)
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	results := engine.Run(ctx, jobs, engine.RunOptions{Workers: p.cfg.Workers})
	for ri, jr := range results {
		if jr.Err != nil {
			return jr.Err
		}
		c := &cands[idx[ri]]
		c.verdict, c.known = jr.Result, true
		p.stats.BinChecks++
		p.stats.Promotions += jr.Promotions
		if p.cfg.Cache != nil && c.key != "" {
			p.cfg.Cache.Put(c.key, jr.Result)
		}
	}
	return nil
}

// finalReports re-derives each processor's verdict for the response. The
// closing bin states were all just verified, so with a cache every check
// is a hit; without one the bins are re-run in a single batch.
func (p *placer) finalReports(ctx context.Context, asg []int) ([]ProcessorReport, error) {
	m := len(p.wl.Processors)
	binTasks := make([][]int, m)
	for _, ti := range p.taskOrder() {
		j := asg[ti]
		binTasks[j] = append(binTasks[j], ti)
	}
	reports := make([]ProcessorReport, m)
	var jobs []engine.Job
	var idx []int
	for j := range m {
		speed := p.wl.Processors[j].EffectiveSpeed()
		r := ProcessorReport{
			Index:            j,
			Name:             p.wl.Processors[j].Name,
			Speed:            speed,
			Tasks:            binTasks[j],
			Verdict:          core.Feasible.String(),
			UtilizationExact: "0",
		}
		if len(binTasks[j]) == 0 {
			reports[j] = r
			continue
		}
		scaled := BinTasks(p.wl, j, binTasks[j])
		fill := scaled.Utilization()
		r.Utilization, _ = fill.Float64()
		r.UtilizationExact = fill.RatString()
		if key, ok := engine.Fingerprint(scaled, p.name, p.cfg.Options); ok {
			r.Fingerprint = key
			if p.cfg.Cache != nil {
				if res, hit := p.cfg.Cache.Get(key); hit {
					p.stats.BinChecks++
					p.stats.CacheHits++
					r.Verdict = res.Verdict.String()
					r.Iterations = res.Iterations
					r.CacheHit = true
					reports[j] = r
					continue
				}
			}
		}
		jobs = append(jobs, engine.Job{Set: scaled, Analyzer: p.analyzer, Opt: p.cfg.Options})
		idx = append(idx, j)
		reports[j] = r
	}
	if len(jobs) > 0 {
		results := engine.Run(ctx, jobs, engine.RunOptions{Workers: p.cfg.Workers})
		for ri, jr := range results {
			if jr.Err != nil {
				return nil, jr.Err
			}
			p.stats.BinChecks++
			p.stats.Promotions += jr.Promotions
			j := idx[ri]
			reports[j].Verdict = jr.Result.Verdict.String()
			reports[j].Iterations = jr.Result.Iterations
			reports[j].WallNS = int64(jr.Wall)
			if p.cfg.Cache != nil && reports[j].Fingerprint != "" {
				p.cfg.Cache.Put(reports[j].Fingerprint, jr.Result)
			}
		}
	}
	return reports, nil
}
