package partition

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// mapCache is a plain map satisfying Cache for tests and benchmarks.
type mapCache struct{ m map[string]core.Result }

func newMapCache() *mapCache { return &mapCache{m: map[string]core.Result{}} }

func (c *mapCache) Get(key string) (core.Result, bool) {
	r, ok := c.m[key]
	return r, ok
}
func (c *mapCache) Put(key string, r core.Result) { c.m[key] = r }

func task(name string, c, d, t int64, affinity ...int) workload.PartitionedTask {
	return workload.PartitionedTask{
		Task:     model.Task{Name: name, WCET: c, Deadline: d, Period: t},
		Affinity: affinity,
	}
}

func TestPlaceFeasibleTwoProcessors(t *testing.T) {
	wl := workload.NewPartitioned(
		[]workload.Processor{{Name: "p0"}, {Name: "p1"}},
		[]workload.PartitionedTask{
			task("a", 6, 10, 10),
			task("b", 6, 10, 10),
			task("c", 2, 10, 10),
		},
	)
	pl, err := Place(context.Background(), wl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Feasible {
		t.Fatalf("placement infeasible: %+v", pl)
	}
	if len(pl.Assignment) != 3 || len(pl.Processors) != 2 {
		t.Fatalf("shape: %+v", pl)
	}
	if pl.Assignment[0] == pl.Assignment[1] {
		t.Error("two 0.6-utilization tasks share a processor")
	}
	for _, r := range pl.Processors {
		if r.Verdict != "feasible" {
			t.Errorf("processor %d verdict %s", r.Index, r.Verdict)
		}
		if len(r.Tasks) > 0 && r.Fingerprint == "" {
			t.Errorf("processor %d bin has no fingerprint", r.Index)
		}
	}
	if len(pl.Attempts) != 0 || pl.Counterexample != nil {
		t.Errorf("feasible placement carries a failure trail: %+v", pl)
	}
	if pl.Stats.BinChecks == 0 {
		t.Error("no bin checks counted")
	}
}

func TestPlaceHonorsAffinity(t *testing.T) {
	wl := workload.NewPartitioned(
		[]workload.Processor{{}, {}},
		[]workload.PartitionedTask{
			task("pinned", 1, 10, 10, 1),
			task("free", 8, 10, 10),
		},
	)
	pl, err := Place(context.Background(), wl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Feasible || pl.Assignment[0] != 1 {
		t.Fatalf("affinity violated: %+v", pl)
	}
}

func TestPlaceHeuristicRanking(t *testing.T) {
	// One 0.5-utilization task, processors of speed 1 and 2: first-fit
	// takes index 0, worst-fit the most spare absolute capacity (the
	// fast processor), balance the lowest resulting fill (also the fast
	// one, where the scaled demand is ceil(5/2)/10 = 3/10).
	wl := workload.NewPartitioned(
		[]workload.Processor{{}, {Speed: 2}},
		[]workload.PartitionedTask{task("t", 5, 10, 10)},
	)
	for h, want := range map[Heuristic]int{FirstFit: 0, WorstFit: 1, Balance: 1} {
		pl, err := Place(context.Background(), wl, Config{Heuristics: []Heuristic{h}})
		if err != nil {
			t.Fatal(err)
		}
		if !pl.Feasible || pl.Assignment[0] != want {
			t.Errorf("%s placed task on %d, want %d", h, pl.Assignment[0], want)
		}
		if pl.Heuristic != h {
			t.Errorf("winning heuristic %q, want %q", pl.Heuristic, h)
		}
	}
}

func TestPlaceSpeedScaling(t *testing.T) {
	// A task demanding 15 units per 10 fits only the speed-2 processor
	// (scaled WCET ceil(15/2) = 8 <= deadline 10).
	wl := workload.NewPartitioned(
		[]workload.Processor{{}, {Speed: 2}},
		[]workload.PartitionedTask{{Task: model.Task{Name: "heavy", WCET: 15, Deadline: 20, Period: 10}}},
	)
	pl, err := Place(context.Background(), wl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Feasible || pl.Assignment[0] != 1 {
		t.Fatalf("heavy task not placed on the fast processor: %+v", pl)
	}
	bin := BinTasks(wl, 1, []int{0})
	if bin[0].WCET != 8 {
		t.Errorf("scaled WCET %d, want 8", bin[0].WCET)
	}
}

func TestPlaceCounterexample(t *testing.T) {
	// Three 0.7-utilization tasks on two processors: the third task is
	// gate-rejected everywhere, under every heuristic.
	wl := workload.NewPartitioned(
		[]workload.Processor{{}, {}},
		[]workload.PartitionedTask{
			task("a", 7, 10, 10),
			task("b", 7, 10, 10),
			task("c", 7, 10, 10),
		},
	)
	pl, err := Place(context.Background(), wl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Feasible {
		t.Fatalf("overloaded workload placed: %+v", pl)
	}
	if len(pl.Attempts) != len(AllHeuristics()) {
		t.Fatalf("attempts: %+v", pl.Attempts)
	}
	if pl.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	ce := pl.Counterexample
	if ce.Placed != 2 || ce.FailedTaskName == "" {
		t.Errorf("counterexample: %+v", ce)
	}
	if len(ce.Rejections) != 2 {
		t.Fatalf("rejections: %+v", ce.Rejections)
	}
	for _, r := range ce.Rejections {
		if r.Reason != "gate" {
			t.Errorf("processor %d rejected for %q, want gate", r.Processor, r.Reason)
		}
	}
	if pl.Stats.GateRejections == 0 {
		t.Error("gate rejections not counted")
	}
}

func TestPlaceAnalyzerRejection(t *testing.T) {
	// Two D<T tasks whose combined demand misses deadlines although the
	// utilization gate passes (fill exactly 1): the rejection must carry
	// the analyzer verdict, not "gate".
	wl := workload.NewPartitioned(
		[]workload.Processor{{}},
		[]workload.PartitionedTask{
			task("a", 5, 5, 10),
			task("b", 5, 5, 10),
		},
	)
	pl, err := Place(context.Background(), wl, Config{Heuristics: []Heuristic{FirstFit}})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Feasible {
		t.Fatalf("infeasible bin placed: %+v", pl)
	}
	if got := pl.Counterexample.Rejections[0].Reason; got != "infeasible" {
		t.Errorf("rejection reason %q, want infeasible", got)
	}
}

func TestPlaceDeterministicAndCached(t *testing.T) {
	wl := workload.NewPartitioned(
		[]workload.Processor{{}, {Speed: 2}, {}},
		[]workload.PartitionedTask{
			task("a", 6, 10, 10),
			task("b", 3, 9, 10),
			task("c", 4, 12, 15, 0, 2),
			task("d", 2, 6, 8),
		},
	)
	first, err := Place(context.Background(), wl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cache := newMapCache()
	second, err := Place(context.Background(), wl, Config{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Assignment, second.Assignment) {
		t.Errorf("placement not deterministic: %v vs %v", first.Assignment, second.Assignment)
	}
	third, err := Place(context.Background(), wl, Config{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second.Assignment, third.Assignment) {
		t.Errorf("cache changed the placement: %v vs %v", second.Assignment, third.Assignment)
	}
	if third.Stats.CacheHits != third.Stats.BinChecks {
		t.Errorf("warm run missed the cache: %+v", third.Stats)
	}
	for _, r := range third.Processors {
		if len(r.Tasks) > 0 && !r.CacheHit {
			t.Errorf("processor %d verdict not served from cache", r.Index)
		}
	}
}

func TestPlaceRejectsBadInput(t *testing.T) {
	sporadic := workload.NewSporadic(model.TaskSet{{WCET: 1, Deadline: 2, Period: 2}})
	if _, err := Place(context.Background(), sporadic, Config{}); err == nil {
		t.Error("sporadic workload accepted")
	}
	wl := workload.NewPartitioned([]workload.Processor{{}}, []workload.PartitionedTask{task("a", 1, 2, 2)})
	if _, err := Place(context.Background(), wl, Config{Analyzer: "bogus"}); err == nil {
		t.Error("unknown analyzer accepted")
	}
	if _, err := Place(context.Background(), wl, Config{Heuristics: []Heuristic{"bogus"}}); err == nil {
		t.Error("unknown heuristic accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Place(ctx, wl, Config{}); err == nil {
		t.Error("canceled context not surfaced")
	}
}
