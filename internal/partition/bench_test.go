package partition

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// benchWorkload draws a deterministic m-processor workload at ~55% load
// per processor — comfortably placeable under every heuristic, so the
// benchmark measures placement cost, not failure trails.
func benchWorkload(m int) workload.Workload {
	rng := rand.New(rand.NewSource(int64(100 + m)))
	procs := make([]workload.Processor, m)
	tasks := make([]workload.PartitionedTask, 3*m)
	periods := []int64{10, 20, 40, 50, 80, 100}
	for i := range tasks {
		period := periods[rng.Intn(len(periods))] * (1 + rng.Int63n(4))
		wcet := max(period*18/100, 1)
		deadline := period - period/10
		tasks[i] = workload.PartitionedTask{
			Task: model.Task{WCET: wcet, Deadline: deadline, Period: period},
		}
	}
	return workload.NewPartitioned(procs, tasks)
}

// BenchmarkPlace measures placement latency and the per-bin cache hit
// share across platform sizes and heuristics. The cache persists across
// iterations, so the hit share reflects steady-state serving, where the
// sharded LRU (or the fleet, via fingerprint routing) has seen the bins
// before.
func BenchmarkPlace(b *testing.B) {
	for _, m := range []int{2, 4, 8, 16} {
		wl := benchWorkload(m)
		for _, h := range AllHeuristics() {
			b.Run(fmt.Sprintf("m%d/%s", m, h), func(b *testing.B) {
				cache := newMapCache()
				cfg := Config{Cache: cache, Heuristics: []Heuristic{h}}
				var checks, hits uint64
				b.ReportAllocs()
				for b.Loop() {
					pl, err := Place(context.Background(), wl, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if !pl.Feasible {
						b.Fatalf("bench workload m=%d infeasible under %s", m, h)
					}
					checks += pl.Stats.BinChecks
					hits += pl.Stats.CacheHits
				}
				if checks > 0 {
					b.ReportMetric(float64(hits)/float64(checks), "hit-share")
				}
			})
		}
	}
}
