package rtc

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/eventstream"
	"repro/internal/model"
)

// Line is y = Intercept + Slope*x.
type Line struct {
	Intercept float64
	Slope     float64
}

// Eval returns the line value at x.
func (l Line) Eval(x float64) float64 { return l.Intercept + l.Slope*x }

// Curve is a concave piecewise-linear function represented as the minimum
// of its lines. Every line of a demand curve must individually upper-bound
// the demand it models, so the minimum does too.
type Curve struct {
	Lines []Line
}

// Eval returns min over the lines at x (+Inf for an empty curve).
func (c Curve) Eval(x float64) float64 {
	v := math.Inf(1)
	for _, l := range c.Lines {
		v = math.Min(v, l.Eval(x))
	}
	return v
}

// Add returns the pointwise sum of two curves. The sum of minima is not a
// minimum of sums, so the result enumerates the lower envelope breakpoints
// of both operands and rebuilds the concave hull there; the result remains
// an upper bound of the summed demands.
func (c Curve) Add(o Curve) Curve {
	// The sum is concave piecewise linear with breakpoints at both
	// operands' envelope breakpoints. Between consecutive breakpoints the
	// sum is linear, so reconstruct lines from adjacent breakpoint pairs.
	xs := append(c.envelopeBreakpoints(), o.envelopeBreakpoints()...)
	xs = append(xs, 0)
	slices.Sort(xs)
	// Merge breakpoints that are numerically indistinguishable; chords
	// across zero-length intervals would produce garbage slopes.
	merged := xs[:1]
	for _, x := range xs[1:] {
		if x-merged[len(merged)-1] > 1e-9*(1+x) {
			merged = append(merged, x)
		}
	}
	xs = merged
	eval := func(x float64) float64 { return c.Eval(x) + o.Eval(x) }
	var lines []Line
	for i := 0; i+1 < len(xs); i++ {
		x1, x2 := xs[i], xs[i+1]
		y1, y2 := eval(x1), eval(x2)
		m := (y2 - y1) / (x2 - x1)
		lines = append(lines, Line{Intercept: y1 - m*x1, Slope: m})
	}
	// Final asymptotic segment: slopes add.
	last := xs[len(xs)-1]
	m := c.asymptoticSlope() + o.asymptoticSlope()
	lines = append(lines, Line{Intercept: eval(last) - m*last, Slope: m})
	return Curve{Lines: dedupeLines(lines)}
}

// envelopeBreakpoints returns the x positions where the active minimal
// line changes (pairwise intersections of envelope-ordered lines).
func (c Curve) envelopeBreakpoints() []float64 {
	lines := slices.Clone(c.Lines)
	// Sort by slope descending: the envelope of a min starts with the
	// steepest line (through the smallest intercept near 0) and flattens.
	slices.SortFunc(lines, func(a, b Line) int {
		switch {
		case a.Slope > b.Slope:
			return -1
		case a.Slope < b.Slope:
			return 1
		default:
			return 0
		}
	})
	var xs []float64
	for i := 0; i+1 < len(lines); i++ {
		a, b := lines[i], lines[i+1]
		if a.Slope == b.Slope {
			continue
		}
		x := (b.Intercept - a.Intercept) / (a.Slope - b.Slope)
		if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) {
			xs = append(xs, x)
		}
	}
	return xs
}

// asymptoticSlope returns the slope of the flattest line (the envelope's
// long-term rate).
func (c Curve) asymptoticSlope() float64 {
	s := math.Inf(1)
	for _, l := range c.Lines {
		s = math.Min(s, l.Slope)
	}
	return s
}

func dedupeLines(lines []Line) []Line {
	slices.SortFunc(lines, func(a, b Line) int {
		switch {
		case a.Slope != b.Slope:
			if a.Slope < b.Slope {
				return -1
			}
			return 1
		case a.Intercept < b.Intercept:
			return -1
		case a.Intercept > b.Intercept:
			return 1
		default:
			return 0
		}
	})
	return slices.CompactFunc(lines, func(a, b Line) bool { return a == b })
}

// FitsCapacity reports whether the curve stays within the processor
// capacity line y = x for every x > 0. The difference curve(x) - x is
// concave, so it suffices to check the envelope breakpoints, the origin
// limit and the asymptotic slope.
func (c Curve) FitsCapacity() bool {
	const eps = 1e-9
	if c.asymptoticSlope() > 1+eps {
		return false
	}
	if c.Eval(0) > eps {
		return false
	}
	for _, x := range c.envelopeBreakpoints() {
		if c.Eval(x) > x*(1+eps)+eps {
			return false
		}
	}
	return true
}

// TaskCurve returns the two-segment approximation of a sporadic task's
// demand (Figure 4a of the paper):
//
//   - l1: the steepest valid chord through the origin, slope C/min(D,T)
//     (it dominates the staircase because each new job adds C demand no
//     faster than every min(D,T) time units);
//   - l2: the long-term rate line C + (x-D)*C/T of the superposition
//     approximation — for constrained deadlines its intercept C*(1-D/T)
//     is non-negative, otherwise l2 degenerates to l1.
//
// Every line individually upper-bounds dbf(x, τ) for all x >= 0.
func TaskCurve(t model.Task) Curve {
	u := float64(t.WCET) / float64(t.Period)
	l1 := Line{Intercept: 0, Slope: float64(t.WCET) / float64(min(t.Deadline, t.Period))}
	if t.Deadline >= t.Period {
		return Curve{Lines: []Line{l1}}
	}
	l2 := Line{
		Intercept: float64(t.WCET) * (1 - float64(t.Deadline)/float64(t.Period)),
		Slope:     u,
	}
	return Curve{Lines: []Line{l1, l2}}
}

// EventTaskCurve returns the up-to-three-segment approximation of a bursty
// event-driven task (Figure 4b): origin chord covering the first event,
// burst-rate line, and long-term rate line. Lines are built from the
// event bound function and each is validated to dominate the demand
// staircase over a structural horizon; see VerifyCurve.
func EventTaskCurve(t eventstream.Task) Curve {
	// Origin chord: slope = sup dbf(x)/x. The supremum over a staircase
	// with first deadline f is bounded by scanning step points up to the
	// macro period (cycle) of the stream plus f.
	var maxCycle int64 = 1
	for _, e := range t.Stream {
		maxCycle = max(maxCycle, e.Cycle)
	}
	horizon := t.Deadline + 2*maxCycle + 1
	slope1 := 0.0
	for x := int64(1); x <= horizon; x++ {
		if d := t.Dbf(x); d > 0 {
			slope1 = math.Max(slope1, float64(d)/float64(x))
		}
	}
	// Long-term rate line: slope = utilization of the stream times WCET,
	// intercept = sup (dbf(x) - slope*x), again scanned structurally.
	uRat := t.Stream.Utilization()
	u, _ := uRat.Float64()
	u *= float64(t.WCET)
	intercept := 0.0
	for x := int64(0); x <= 4*horizon; x++ {
		intercept = math.Max(intercept, float64(t.Dbf(x))-u*float64(x))
	}
	lines := []Line{
		{Intercept: 0, Slope: slope1},
		{Intercept: intercept, Slope: u},
	}
	// Burst-rate line: chord from the first burst deadline across the
	// burst. Only distinct from the others for multi-element streams.
	if len(t.Stream) > 1 {
		f := t.Stream[0].Offset + t.Deadline
		lastOffset := t.Stream[0].Offset
		for _, e := range t.Stream {
			lastOffset = max(lastOffset, e.Offset)
		}
		span := float64(lastOffset - t.Stream[0].Offset)
		if span > 0 {
			mBurst := float64((int64(len(t.Stream))-1)*t.WCET) / span
			// Anchor at (f, C) and verify upward against the staircase.
			b := Line{Intercept: float64(t.WCET) - mBurst*float64(f), Slope: mBurst}
			raise := 0.0
			for x := int64(0); x <= 4*horizon; x++ {
				raise = math.Max(raise, float64(t.Dbf(x))-b.Eval(float64(x)))
			}
			b.Intercept += raise
			lines = append(lines, b)
		}
	}
	return Curve{Lines: dedupeLines(lines)}
}

// SystemCurve sums the per-task curves of a sporadic task set.
func SystemCurve(ts model.TaskSet) Curve {
	var sum Curve
	for i, t := range ts {
		if i == 0 {
			sum = TaskCurve(t)
			continue
		}
		sum = sum.Add(TaskCurve(t))
	}
	return sum
}

// Feasible applies the real-time-calculus style sufficient test: the
// summed per-task curve approximation must stay within the capacity line.
// Like Devi's test it can only accept; rejection means "not accepted".
func Feasible(ts model.TaskSet) core.Verdict {
	if ts.OverUtilized() {
		return core.Infeasible
	}
	if len(ts) == 0 {
		return core.Feasible
	}
	if SystemCurve(ts).FitsCapacity() {
		return core.Feasible
	}
	return core.NotAccepted
}

// FeasibleEvents applies the same test to event-driven tasks with
// up-to-three-segment curves.
func FeasibleEvents(tasks []eventstream.Task) core.Verdict {
	if len(tasks) == 0 {
		return core.Feasible
	}
	sum := EventTaskCurve(tasks[0])
	for _, t := range tasks[1:] {
		sum = sum.Add(EventTaskCurve(t))
	}
	if sum.FitsCapacity() {
		return core.Feasible
	}
	return core.NotAccepted
}

// VerifyCurve checks numerically that the curve upper-bounds the demand
// function dbf over [0, horizon]; it backs the soundness tests.
func VerifyCurve(c Curve, dbf func(int64) int64, horizon int64) error {
	const eps = 1e-6
	for x := int64(0); x <= horizon; x++ {
		if got, want := c.Eval(float64(x)), float64(dbf(x)); got < want-eps {
			return fmt.Errorf("rtc: curve %.4f below demand %v at %d", got, want, x)
		}
	}
	return nil
}
