// Package rtc reproduces Section 3.6 of the paper: the comparison of the
// superposition approach with the real-time calculus of Thiele et al.
// (references [6], [7]).
//
// Real-time calculus describes demand by arrival curves that, to stay
// computable, are approximated by a small number of straight line segments
// (up to three, per the paper). Figure 4 of the paper shows the canonical
// shapes: two lines for a periodic task (a chord through the origin
// covering the first job, plus the long-term rate line), three for a
// bursty task (origin chord, burst-rate line, long-term rate line).
//
// This package implements exactly that: concave piecewise-linear upper
// bounds on the demand bound function, built as a minimum of lines where
// every line individually upper-bounds the task's demand staircase, and a
// sufficient feasibility test comparing the summed curves against the
// processor capacity. Because the curves are anchored at the origin
// (arrival curves satisfy α(0) = 0), the approximation is strictly more
// pessimistic than Devi's test at short intervals — the "a bit worse than
// the test given by Devi" relationship the paper derives, which the tests
// of this package pin down both on a crafted example and statistically.
package rtc
