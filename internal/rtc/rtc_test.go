package rtc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/eventstream"
	"repro/internal/model"
)

func TestLineAndCurveEval(t *testing.T) {
	c := Curve{Lines: []Line{
		{Intercept: 0, Slope: 2},
		{Intercept: 6, Slope: 0.5},
	}}
	cases := []struct{ x, want float64 }{
		{0, 0}, {2, 4}, {4, 8}, {8, 10}, {100, 56},
	}
	for _, tc := range cases {
		if got := c.Eval(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Eval(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestTaskCurveUpperBoundsDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for range 1000 {
		T := int64(2 + rng.Intn(30))
		C := 1 + rng.Int63n(T)
		D := C + rng.Int63n(2*T) // includes D > T
		task := model.Task{WCET: C, Deadline: D, Period: T}
		c := TaskCurve(task)
		src := demand.NewSporadic(task)
		if err := VerifyCurve(c, src.DemandUpTo, 20*T+D); err != nil {
			t.Fatalf("task %v: %v", task, err)
		}
	}
}

func TestEventTaskCurveUpperBoundsDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for range 300 {
		task := eventstream.Task{
			Stream:   eventstream.Burst(50+rng.Int63n(100), 1+rng.Intn(4), 2+rng.Int63n(8)),
			WCET:     1 + rng.Int63n(5),
			Deadline: 2 + rng.Int63n(25),
		}
		c := EventTaskCurve(task)
		if err := VerifyCurve(c, task.Dbf, 1000); err != nil {
			t.Fatalf("task %+v: %v", task, err)
		}
		if len(c.Lines) > 3 {
			t.Fatalf("curve uses %d segments, RTC caps at 3", len(c.Lines))
		}
	}
}

func TestCurveAddMatchesPointwiseSum(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for range 300 {
		t1 := model.Task{WCET: 1 + rng.Int63n(5), Deadline: 2 + rng.Int63n(10), Period: 12 + rng.Int63n(10)}
		t2 := model.Task{WCET: 1 + rng.Int63n(5), Deadline: 2 + rng.Int63n(10), Period: 12 + rng.Int63n(10)}
		if t1.Deadline < t1.WCET || t2.Deadline < t2.WCET {
			continue
		}
		a, b := TaskCurve(t1), TaskCurve(t2)
		sum := a.Add(b)
		for x := 0.0; x <= 200; x += 0.7 {
			want := a.Eval(x) + b.Eval(x)
			got := sum.Eval(x)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("sum(%v) = %v, want %v (tasks %v %v)", x, got, want, t1, t2)
			}
		}
	}
}

// TestSoundness: the RTC test never accepts a set the exact test rejects.
func TestSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for range 3000 {
		n := 1 + rng.Intn(5)
		ts := make(model.TaskSet, 0, n)
		for range n {
			T := int64(2 + rng.Intn(18))
			C := 1 + rng.Int63n(T)
			D := C + rng.Int63n(T-C+1)
			ts = append(ts, model.Task{WCET: C, Deadline: D, Period: T})
		}
		if Feasible(ts) != core.Feasible {
			continue
		}
		if core.ProcessorDemand(ts, core.Options{}).Verdict != core.Feasible {
			t.Fatalf("RTC accepted an infeasible set: %v", ts)
		}
	}
}

// TestWorseThanDeviExample pins the crafted example of the Section 3.6
// claim: the origin-anchored RTC curves reject a set Devi accepts, because
// at short intervals the chord through the origin overestimates demand
// (sum of C/D exceeds 1) while the demand itself is fine.
func TestWorseThanDeviExample(t *testing.T) {
	// τ1 has a tight deadline (chord slope 4/5), τ2 is implicit-deadline
	// (chord slope 0.3): the summed origin chords exceed capacity near
	// the first breakpoint (curve(5) = 5.5 > 5) although the set is
	// feasible and Devi accepts it.
	ts := model.TaskSet{
		{WCET: 4, Deadline: 5, Period: 100},
		{WCET: 30, Deadline: 100, Period: 100},
	}
	if v := core.Devi(ts).Verdict; v != core.Feasible {
		t.Fatalf("Devi should accept: %v", v)
	}
	if v := Feasible(ts); v == core.Feasible {
		t.Fatalf("RTC 2-segment approximation should reject (chords sum to 1.1x near 0)")
	}
	if v := core.ProcessorDemand(ts, core.Options{}).Verdict; v != core.Feasible {
		t.Fatalf("set should be feasible: %v", v)
	}
}

// TestStatisticallyWorseThanDevi verifies the §3.6 relationship in the
// aggregate: over many random sets, RTC acceptance never exceeds and
// typically trails Devi acceptance.
func TestStatisticallyWorseThanDevi(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	var deviAccepts, rtcAccepts, rtcAcceptsDeviRejects int
	for range 2000 {
		n := 2 + rng.Intn(8)
		ts := make(model.TaskSet, 0, n)
		for range n {
			T := int64(20 + rng.Intn(200))
			C := 1 + rng.Int63n(T/4)
			D := C + rng.Int63n(T-C+1)
			ts = append(ts, model.Task{WCET: C, Deadline: D, Period: T})
		}
		devi := core.Devi(ts).Verdict == core.Feasible
		rtc := Feasible(ts) == core.Feasible
		if devi {
			deviAccepts++
		}
		if rtc {
			rtcAccepts++
		}
		if rtc && !devi {
			rtcAcceptsDeviRejects++
		}
	}
	if rtcAccepts > deviAccepts {
		t.Errorf("RTC accepted more sets (%d) than Devi (%d); §3.6 expects the opposite",
			rtcAccepts, deviAccepts)
	}
	t.Logf("devi=%d rtc=%d rtc-only=%d of 2000", deviAccepts, rtcAccepts, rtcAcceptsDeviRejects)
}

// TestBurstCurveThreeSegments reproduces Figure 4b: a bursty task needs
// the third (burst-rate) segment for a good approximation — with it, the
// bursty gateway set is accepted; the periodic two-segment treatment of
// the same demand volume also passes, establishing the curves differ.
func TestBurstCurves(t *testing.T) {
	tasks := []eventstream.Task{
		{Stream: eventstream.Burst(1000, 3, 10), WCET: 30, Deadline: 200},
		{Stream: eventstream.Periodic(100), WCET: 20, Deadline: 90},
	}
	v := FeasibleEvents(tasks)
	if v != core.Feasible {
		t.Fatalf("bursty gateway rejected: %v", v)
	}
	// Cross-check against the exact test on the same streams.
	if got := core.ProcessorDemandSources(eventstream.Sources(tasks), core.Options{}); got.Verdict != core.Feasible {
		t.Fatalf("exact verdict: %v", got.Verdict)
	}
}

func TestFitsCapacityEdges(t *testing.T) {
	// Slope above 1 can never fit.
	c := Curve{Lines: []Line{{Intercept: 0, Slope: 1.2}}}
	if c.FitsCapacity() {
		t.Error("slope 1.2 accepted")
	}
	// Positive value at origin can never fit.
	c = Curve{Lines: []Line{{Intercept: 1, Slope: 0.5}}}
	if c.FitsCapacity() {
		t.Error("positive origin accepted")
	}
	// A benign curve fits.
	c = Curve{Lines: []Line{{Intercept: 0, Slope: 0.9}, {Intercept: 3, Slope: 0.2}}}
	if !c.FitsCapacity() {
		t.Error("benign curve rejected")
	}
}
