// End-to-end coverage: a real server on a random port, driven only
// through the typed client, cross-checked against direct facade calls.
package service_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	edf "repro"
	"repro/internal/service"
	"repro/internal/service/client"
)

// newTestServer starts an in-process server and returns it with a client.
func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *client.Client) {
	t.Helper()
	srv := service.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, client.New(hs.URL, hs.Client())
}

// e2eSets generates n distinct valid task sets.
func e2eSets(t *testing.T, n int) []edf.TaskSet {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	sets := make([]edf.TaskSet, 0, n)
	for len(sets) < n {
		ts, err := edf.Generate(edf.GenConfig{
			N:           4 + rng.Intn(12),
			Utilization: 0.7 + rng.Float64()*0.28,
			PeriodMin:   100, PeriodMax: 10000,
			GapMean: 0.2,
		}, rng)
		if err != nil {
			continue
		}
		sets = append(sets, ts)
	}
	return sets
}

// TestE2EConcurrentAnalyze fires 150 concurrent analyze requests over 10
// distinct task sets and requires (a) every verdict to match a direct
// edf.Analyze call and (b) a positive cache hit rate from the repeats.
func TestE2EConcurrentAnalyze(t *testing.T) {
	srv, c := newTestServer(t, service.Config{})
	sets := e2eSets(t, 10)
	want := make([]string, len(sets))
	for i, ts := range sets {
		want[i] = edf.Analyze(ts, edf.Options{}).Verdict.String()
	}

	const requests = 150
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		cached int
	)
	for i := range requests {
		wg.Add(1)
		go func() {
			defer wg.Done()
			si := i % len(sets)
			resp, _, err := c.Analyze(ctx, service.AnalyzeRequest{Workload: edf.SporadicWorkload(sets[si])})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if resp.Result.Verdict != want[si] {
				t.Errorf("set %d: service says %s, edf.Analyze says %s",
					si, resp.Result.Verdict, want[si])
			}
			if resp.Analyzer != "cascade" || resp.Fingerprint == "" {
				t.Errorf("request %d: analyzer %q fingerprint %q",
					i, resp.Analyzer, resp.Fingerprint)
			}
			if resp.Cached {
				mu.Lock()
				cached++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	st := srv.CacheStats()
	if st.HitRate() <= 0 {
		t.Errorf("cache hit rate %.3f on repeated sets, want > 0 (stats %+v)",
			st.HitRate(), st)
	}
	if cached == 0 {
		t.Error("no response reported cached=true despite repeats")
	}
	if st.Hits+st.Misses < requests {
		t.Errorf("cache saw %d lookups, want >= %d", st.Hits+st.Misses, requests)
	}
}

// TestE2ESessionFlow drives the full propose/commit/rollback lifecycle.
func TestE2ESessionFlow(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	sess, state, err := c.OpenSession(ctx, service.SessionRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "seed", WCET: 10, Deadline: 90, Period: 100}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if state.Committed != 1 || state.Pending != 0 || state.Analyzer != "cascade" {
		t.Fatalf("fresh session state: %+v", state)
	}

	// Propose two admissible tasks, then commit both.
	for i, task := range []edf.Task{
		{Name: "a", WCET: 20, Deadline: 150, Period: 200},
		{Name: "b", WCET: 5, Deadline: 40, Period: 50},
	} {
		resp, err := sess.Propose(ctx, service.ProposeRequest{Task: service.SporadicTask(task)})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Admitted || resp.Pending != i+1 {
			t.Fatalf("propose %d: %+v", i, resp)
		}
	}
	commit, err := sess.Commit(ctx)
	if err != nil || commit.Moved != 2 || commit.Committed != 3 {
		t.Fatalf("commit: %+v, %v", commit, err)
	}

	// An overload proposal is rejected and stages nothing.
	resp, err := sess.Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{Name: "hog", WCET: 99, Deadline: 100, Period: 100}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Admitted || resp.Result.Verdict != "infeasible" || resp.Pending != 0 {
		t.Fatalf("overload proposal: %+v", resp)
	}

	// Stage one more, roll it back, and confirm the state reverts.
	if resp, err = sess.Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{Name: "c", WCET: 1, Deadline: 100, Period: 100}),
	}); err != nil || !resp.Admitted {
		t.Fatalf("propose c: %+v, %v", resp, err)
	}
	rb, err := sess.Rollback(ctx)
	if err != nil || rb.Moved != 1 || rb.Committed != 3 {
		t.Fatalf("rollback: %+v, %v", rb, err)
	}
	state, _, err = sess.State(ctx)
	if err != nil || state.Committed != 3 || state.Pending != 0 {
		t.Fatalf("state after rollback: %+v, %v", state, err)
	}

	// Close, then every further touch is a 404.
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	var ce *client.Error
	if _, _, err := sess.State(ctx); !asClientError(err, &ce) || ce.StatusCode != 404 {
		t.Errorf("closed session: %v, want 404", err)
	}
}

// TestE2EBatch cross-checks the batch endpoint against the facade batch
// runner and exercises the cache on a repeated request.
func TestE2EBatch(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()
	sets := e2eSets(t, 6)
	req := service.BatchRequest{Analyzers: []string{"devi", "allapprox"}}
	for i, ts := range sets {
		req.Sets = append(req.Sets, service.WorkloadSet{Name: string(rune('a' + i)), Workload: edf.SporadicWorkload(ts)})
	}

	analyzers, err := edf.ParseAnalyzers("devi,allapprox")
	if err != nil {
		t.Fatal(err)
	}
	direct := edf.AnalyzeBatch(ctx, sets, analyzers, edf.Options{}, 0)

	resp, _, err := c.Batch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(direct) {
		t.Fatalf("batch returned %d results, want %d", len(resp.Results), len(direct))
	}
	for i, jr := range resp.Results {
		if jr.Err != "" {
			t.Fatalf("job %d failed: %s", i, jr.Err)
		}
		if got, want := jr.Result.Verdict, direct[i].Result.Verdict.String(); got != want {
			t.Errorf("job %d: service %s, direct %s", i, got, want)
		}
		if jr.SetIndex != direct[i].SetIndex {
			t.Errorf("job %d: set index %d, want %d", i, jr.SetIndex, direct[i].SetIndex)
		}
	}

	// The same batch again must be served from the cache.
	resp2, _, err := c.Batch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, jr := range resp2.Results {
		if jr.Cached {
			hits++
		}
		if got, want := jr.Result.Verdict, direct[i].Result.Verdict.String(); got != want {
			t.Errorf("cached job %d: service %s, direct %s", i, got, want)
		}
	}
	if hits != len(resp2.Results) {
		t.Errorf("repeat batch: %d/%d jobs cached", hits, len(resp2.Results))
	}
}

// TestE2EErrorsAndIntrospection covers the failure envelope and the
// read-only endpoints.
func TestE2EErrorsAndIntrospection(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Errorf("healthz: %v", err)
	}
	names, err := c.Analyzers(ctx)
	if err != nil || len(names) < 8 {
		t.Errorf("analyzers: %d, %v", len(names), err)
	}

	// Unknown analyzer -> 400 with a JSON error body.
	_, _, err = c.Analyze(ctx, service.AnalyzeRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{WCET: 1, Deadline: 2, Period: 3}}),
		Analyzer: "no-such-test",
	})
	var ce *client.Error
	if !asClientError(err, &ce) || ce.StatusCode != 400 {
		t.Errorf("unknown analyzer: %v", err)
	}

	// Structurally invalid set -> 422.
	_, _, err = c.Analyze(ctx, service.AnalyzeRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{WCET: 5, Deadline: 2, Period: 3}}),
	})
	if !asClientError(err, &ce) || ce.StatusCode != 422 {
		t.Errorf("invalid set: %v", err)
	}

	// Bad options -> 400.
	_, _, err = c.Analyze(ctx, service.AnalyzeRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{WCET: 1, Deadline: 2, Period: 3}}),
		Options:  service.OptionsJSON{Arithmetic: "float32"},
	})
	if !asClientError(err, &ce) || ce.StatusCode != 400 {
		t.Errorf("bad options: %v", err)
	}

	// Empty batch -> 422.
	_, _, err = c.Batch(ctx, service.BatchRequest{})
	if !asClientError(err, &ce) || ce.StatusCode != 422 {
		t.Errorf("empty batch: %v", err)
	}

	// Metrics render the cache and request counters as text.
	if _, _, err := c.Analyze(ctx, service.AnalyzeRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{WCET: 1, Deadline: 8, Period: 10}}),
	}); err != nil {
		t.Fatal(err)
	}
	page, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"edfd_requests_total", "edfd_cache_misses", "edfd_analyses_total",
		"edfd_sessions_active", "edfd_cache_hit_rate",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %s:\n%s", want, page)
		}
	}
}

// TestE2EThrottleAndDeadline pins the concurrency limiter and the
// request deadline using a gated analyzer that blocks until released.
func TestE2EThrottleAndDeadline(t *testing.T) {
	// Both gates close at cleanup no matter how the test exits, so the
	// server can always drain its in-flight requests.
	registerGatedAnalyzers(t)
	gate := make(chan struct{})
	var gateOnce sync.Once
	t.Cleanup(func() { gateOnce.Do(func() { close(gate) }) })
	setGate("e2e-gated", gate)
	_, c := newTestServer(t, service.Config{
		MaxInFlight:    2,
		RequestTimeout: 200 * time.Millisecond,
	})
	ctx := context.Background()
	task := edf.TaskSet{{WCET: 1, Deadline: 8, Period: 10}}

	// Two gated requests occupy both slots...
	var wg sync.WaitGroup
	for range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The gated job itself runs to completion once started; the
			// response arrives after the gate opens.
			if _, _, err := c.Analyze(ctx, service.AnalyzeRequest{
				Workload: edf.SporadicWorkload(task), Analyzer: "e2e-gated",
			}); err != nil {
				t.Errorf("gated analyze: %v", err)
			}
		}()
	}
	// ... wait until the metrics page confirms both are inside handlers
	// (no probe may race them for a slot before that) ...
	waitForInflight(t, c, 2)
	// ... so a third request bounces with 429 instead of queueing.
	_, _, err := c.Analyze(ctx, service.AnalyzeRequest{Workload: edf.SporadicWorkload(task)})
	var ce *client.Error
	if !asClientError(err, &ce) || ce.StatusCode != 429 {
		t.Fatalf("limiter did not engage: %v", err)
	}
	gateOnce.Do(func() { close(gate) })
	wg.Wait()

	// Deadline: a two-job batch on one worker with the first job gated
	// (fresh gate) runs job 0 after release but must skip job 1 with the
	// context error once the 200ms request deadline passes.
	gate2 := make(chan struct{})
	var gate2Once sync.Once
	t.Cleanup(func() { gate2Once.Do(func() { close(gate2) }) })
	setGate("e2e-gated-2", gate2)
	time.AfterFunc(2*time.Second, func() { gate2Once.Do(func() { close(gate2) }) })
	resp, _, err := c.Batch(ctx, service.BatchRequest{
		Sets:      []service.WorkloadSet{{Workload: edf.SporadicWorkload(task)}, {Workload: edf.SporadicWorkload(task)}},
		Analyzers: []string{"e2e-gated-2"},
		Workers:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("batch results: %d", len(resp.Results))
	}
	if resp.Results[0].Err != "" {
		t.Errorf("started job reported error: %s", resp.Results[0].Err)
	}
	if resp.Results[1].Err == "" {
		t.Error("second job ran despite the request deadline")
	}
}

// waitForInflight polls the metrics page (which bypasses the limiter)
// until edfd_requests_inflight reaches n.
func waitForInflight(t *testing.T, c *client.Client, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		page, err := c.Metrics(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for line := range strings.Lines(page) {
			if cur, ok := strings.CutPrefix(strings.TrimSpace(line), "edfd_requests_inflight "); ok {
				if v, err := strconv.Atoi(cur); err == nil && v >= n {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("inflight never reached %d:\n%s", n, page)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// gatedAnalyzer blocks every analysis until its current gate closes —
// the test's handle on server concurrency. The gate is looked up per
// call so repeated test runs (-count) can install fresh gates behind the
// once-only registry entry.
type gatedAnalyzer struct {
	name string
}

var (
	registerGatedOnce sync.Once
	gatesMu           sync.Mutex
	gates             = map[string]chan struct{}{}
)

func registerGatedAnalyzers(t *testing.T) {
	t.Helper()
	registerGatedOnce.Do(func() {
		for _, name := range []string{"e2e-gated", "e2e-gated-2"} {
			if err := edf.RegisterAnalyzer(gatedAnalyzer{name: name}); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func setGate(name string, gate chan struct{}) {
	gatesMu.Lock()
	defer gatesMu.Unlock()
	gates[name] = gate
}

func (g gatedAnalyzer) Info() edf.AnalyzerInfo {
	return edf.AnalyzerInfo{Name: g.name, Label: g.name, Kind: edf.AnalyzerExact}
}

func (g gatedAnalyzer) Analyze(ts edf.TaskSet, opt edf.Options) edf.Result {
	gatesMu.Lock()
	gate := gates[g.name]
	gatesMu.Unlock()
	<-gate
	return edf.Exact(ts)
}

// asClientError unwraps a *client.Error.
func asClientError(err error, out **client.Error) bool {
	if err == nil {
		return false
	}
	ce, ok := err.(*client.Error)
	if ok {
		*out = ce
	}
	return ok
}
