package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// errSessionLimit is returned when the store is full.
var errSessionLimit = fmt.Errorf("service: session limit reached")

// errSessionUnknown is returned for missing session ids.
var errSessionUnknown = fmt.Errorf("service: unknown session")

// sessionEntry pairs a controller with its last-touched time for idle-TTL
// sweeping and, when the server has a durable store, the session's
// journaling state.
type sessionEntry struct {
	adm      *Admission
	lastUsed time.Time
	// inflight counts requests currently using the session. The sweeper
	// never expires a busy session: a propose that slips past its TTL
	// mid-request must still find its controller alive.
	inflight int

	// Journaling state, used only when the server has a store. jmu
	// serializes (decision, log record, watermark) triples so the log
	// preserves per-session decision order and a snapshot capture sees a
	// consistent (state, lastSeq) pair. analyzer/options reproduce the
	// session's config in open records and snapshots; lastSeq is the
	// store sequence of the session's latest record.
	jmu      sync.Mutex
	analyzer string
	options  OptionsJSON
	lastSeq  uint64
}

// sessionStore is a bounded, concurrency-safe id -> admission controller
// map. Sessions live until explicitly closed or — when the server runs a
// sweeper — idle past the TTL; the bound keeps a client that leaks
// sessions from exhausting server memory.
type sessionStore struct {
	mu       sync.Mutex
	sessions map[string]*sessionEntry
	limit    int
	created  uint64
	expired  uint64
	// onExpired, when non-nil, receives the ids the sweeper removed, after
	// the store lock is released — the server publishes expire events from
	// it. Set before the sweeper starts; not guarded.
	onExpired func(ids []string)
}

func newSessionStore(limit int) *sessionStore {
	return &sessionStore{sessions: make(map[string]*sessionEntry), limit: limit}
}

// open registers a controller under a fresh random id. analyzer and
// options reproduce the session's config for the journal; they are unset
// (and unused) when the server has no store.
func (s *sessionStore) open(adm *Admission, analyzer string, options OptionsJSON) (string, *sessionEntry, error) {
	id := newSessionID()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sessions) >= s.limit {
		return "", nil, errSessionLimit
	}
	e := &sessionEntry{adm: adm, lastUsed: time.Now(), analyzer: analyzer, options: options}
	s.sessions[id] = e
	s.created++
	return id, e, nil
}

// acquire looks a session up, refreshes its idle clock and marks it
// in-flight so the TTL sweeper cannot expire it mid-request. The caller
// must invoke the returned release exactly once when done with the
// controller; release refreshes the clock again so the idle TTL measures
// time since the request finished, not since it started.
func (s *sessionStore) acquire(id string) (*sessionEntry, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.sessions[id]
	if !ok {
		return nil, nil, errSessionUnknown
	}
	e.inflight++
	e.lastUsed = time.Now()
	release := func() {
		s.mu.Lock()
		e.inflight--
		e.lastUsed = time.Now()
		s.mu.Unlock()
	}
	return e, release, nil
}

// restore registers a recovered controller under its original id (the
// store replay and takeover-rehydration path). When the id is already
// live — two requests racing to rehydrate the same session — the
// existing entry wins and restored is false.
func (s *sessionStore) restore(id string, e *sessionEntry) (*sessionEntry, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.sessions[id]; ok {
		return cur, false, nil
	}
	if len(s.sessions) >= s.limit {
		return nil, false, errSessionLimit
	}
	e.lastUsed = time.Now()
	s.sessions[id] = e
	s.created++
	return e, true, nil
}

// entries returns the live (id, entry) pairs for a snapshot capture.
func (s *sessionStore) entries() map[string]*sessionEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*sessionEntry, len(s.sessions))
	for id, e := range s.sessions {
		out[id] = e
	}
	return out
}

// close removes a session; ok is false when it did not exist.
func (s *sessionStore) close(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	return ok
}

// counts returns active, lifetime-created and swept session counts.
func (s *sessionStore) counts() (active int, created, expired uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions), s.created, s.expired
}

// sweep closes every idle session last touched before now-ttl and returns
// how many it removed. Pending (uncommitted) proposals die with the
// session — the same outcome as an explicit close. Sessions with an
// in-flight request are never swept, however stale their clock looks: a
// long-running propose is activity, not idleness.
func (s *sessionStore) sweep(ttl time.Duration, now time.Time) int {
	cutoff := now.Add(-ttl)
	s.mu.Lock()
	var swept []string
	for id, e := range s.sessions {
		if e.inflight == 0 && e.lastUsed.Before(cutoff) {
			delete(s.sessions, id)
			swept = append(swept, id)
		}
	}
	s.expired += uint64(len(swept))
	s.mu.Unlock()
	if s.onExpired != nil && len(swept) > 0 {
		s.onExpired(swept)
	}
	return len(swept)
}

// sweeper runs sweep every interval until stop closes.
func (s *sessionStore) sweeper(ttl, interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			s.sweep(ttl, now)
		case <-stop:
			return
		}
	}
}

// newSessionID returns 16 random bytes as hex. crypto/rand cannot fail on
// the supported platforms; a failure would mean a broken kernel RNG and
// panicking beats handing out guessable session ids.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err)
	}
	return hex.EncodeToString(b[:])
}
