package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
)

// errSessionLimit is returned when the store is full.
var errSessionLimit = fmt.Errorf("service: session limit reached")

// errSessionUnknown is returned for missing session ids.
var errSessionUnknown = fmt.Errorf("service: unknown session")

// sessionStore is a bounded, concurrency-safe id -> admission controller
// map. Sessions live until explicitly closed; the bound keeps a client
// that leaks sessions from exhausting server memory.
type sessionStore struct {
	mu       sync.Mutex
	sessions map[string]*Admission
	limit    int
	created  uint64
}

func newSessionStore(limit int) *sessionStore {
	return &sessionStore{sessions: make(map[string]*Admission), limit: limit}
}

// open registers a controller under a fresh random id.
func (s *sessionStore) open(adm *Admission) (string, error) {
	id := newSessionID()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sessions) >= s.limit {
		return "", errSessionLimit
	}
	s.sessions[id] = adm
	s.created++
	return id, nil
}

// get looks a session up.
func (s *sessionStore) get(id string) (*Admission, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	adm, ok := s.sessions[id]
	if !ok {
		return nil, errSessionUnknown
	}
	return adm, nil
}

// close removes a session; ok is false when it did not exist.
func (s *sessionStore) close(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	return ok
}

// counts returns active and lifetime-created session counts.
func (s *sessionStore) counts() (active int, created uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions), s.created
}

// newSessionID returns 16 random bytes as hex. crypto/rand cannot fail on
// the supported platforms; a failure would mean a broken kernel RNG and
// panicking beats handing out guessable session ids.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err)
	}
	return hex.EncodeToString(b[:])
}
