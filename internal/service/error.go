package service

import (
	"errors"
	"fmt"
	"net/http"
)

// Error codes of the /v1 wire shape. Every handler (edfd's and the
// cluster proxy's) maps its HTTP status to one of these, so a program
// can switch on Code without parsing messages.
const (
	CodeBadRequest    = "bad_request"   // malformed body, unknown analyzer/heuristic
	CodeNotFound      = "not_found"     // unknown session or trace
	CodeUnprocessable = "unprocessable" // valid JSON, invalid workload or capability mismatch
	CodeCapacity      = "capacity"      // concurrency limiter or session table full
	CodeInternal      = "internal"      // journaling or other server-side failure
	CodeUnavailable   = "unavailable"   // canceled analysis, dead replica, empty fleet
)

// Error is the typed error every /v1 endpoint returns — one wire shape
// for edfd and edfproxy alike. Clients reach it with errors.As:
//
//	var se *service.Error
//	if errors.As(err, &se) && se.Retryable { ... }
type Error struct {
	// Code classifies the failure (see the Code constants).
	Code string `json:"code"`
	// Message is the human-readable cause.
	Message string `json:"message"`
	// Owner names the replica that owned the failed session when the
	// cluster proxy attributed the failure; "" otherwise.
	Owner string `json:"owner,omitempty"`
	// Retryable reports whether the same request may succeed later
	// (capacity and availability failures) as opposed to a rejection
	// that will repeat (malformed or infeasible input).
	Retryable bool `json:"retryable,omitempty"`
}

func (e *Error) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return e.Code + ": " + e.Message
}

// Response converts the typed error to its wire body.
func (e *Error) Response() ErrorResponse {
	return ErrorResponse{
		Error:     e.Message,
		Code:      e.Code,
		Message:   e.Message,
		Owner:     e.Owner,
		Retryable: e.Retryable,
	}
}

// CodeForStatus maps an HTTP status to its error code.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusUnprocessableEntity:
		return CodeUnprocessable
	case http.StatusTooManyRequests:
		return CodeCapacity
	case http.StatusInternalServerError:
		return CodeInternal
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return CodeUnavailable
	default:
		return fmt.Sprintf("http_%d", status)
	}
}

// RetryableStatus reports whether a status signals a transient failure.
func RetryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// ErrorFor wraps err as the typed error for a response with the given
// status. An err that already is (or wraps) an *Error keeps its fields,
// with the status filling whatever it left blank.
func ErrorFor(status int, err error) *Error {
	var se *Error
	if errors.As(err, &se) {
		out := *se
		if out.Code == "" {
			out.Code = CodeForStatus(status)
		}
		if out.Message == "" {
			out.Message = err.Error()
		}
		return &out
	}
	return &Error{
		Code:      CodeForStatus(status),
		Message:   err.Error(),
		Retryable: RetryableStatus(status),
	}
}
