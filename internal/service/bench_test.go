package service_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	edf "repro"
	"repro/internal/service"
	"repro/internal/service/client"
)

// benchServer starts an in-process server + client for benchmarks.
func benchServer(b *testing.B, cfg service.Config) *client.Client {
	b.Helper()
	hs := httptest.NewServer(service.New(cfg).Handler())
	b.Cleanup(hs.Close)
	return client.New(hs.URL, hs.Client())
}

func benchSet(b *testing.B) edf.TaskSet {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	for {
		ts, err := edf.Generate(edf.GenConfig{
			N: 20, Utilization: 0.9,
			PeriodMin: 100, PeriodMax: 10000, GapMean: 0.2,
		}, rng)
		if err == nil {
			return ts
		}
	}
}

// BenchmarkServiceAnalyze measures the full HTTP round trip per analysis:
// "hit" repeats one hot task set (the content-addressed cache answers),
// "miss" perturbs the set every iteration (the engine runs every time).
func BenchmarkServiceAnalyze(b *testing.B) {
	base := benchSet(b)
	for _, mode := range []string{"hit", "miss"} {
		b.Run(mode, func(b *testing.B) {
			c := benchServer(b, service.Config{})
			ctx := context.Background()
			for i := 0; b.Loop(); i++ {
				ts := base
				if mode == "miss" {
					// A non-cycling perturbation: every iteration gets a
					// fresh fingerprint, so no hit ever contaminates the
					// miss measurement.
					ts = base.Clone()
					ts[0].Period += int64(i)
				}
				if _, _, err := c.Analyze(ctx, service.AnalyzeRequest{Workload: edf.SporadicWorkload(ts)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServiceBatch measures one batch request of 32 sets under the
// cascade, cold cache.
func BenchmarkServiceBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	req := service.BatchRequest{Analyzers: []string{"cascade"}}
	for len(req.Sets) < 32 {
		ts, err := edf.Generate(edf.GenConfig{
			N: 15, Utilization: 0.85,
			PeriodMin: 100, PeriodMax: 10000, GapMean: 0.2,
		}, rng)
		if err != nil {
			continue
		}
		req.Sets = append(req.Sets, service.WorkloadSet{
			Name: fmt.Sprintf("set-%d", len(req.Sets)), Workload: edf.SporadicWorkload(ts),
		})
	}
	ctx := context.Background()
	for b.Loop() {
		// A fresh server per iteration keeps the cache cold.
		c := benchServer(b, service.Config{})
		if _, _, err := c.Batch(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmissionPropose measures one in-process admission decision on
// a session that already carries 50 tasks.
func BenchmarkAdmissionPropose(b *testing.B) {
	adm, err := edf.NewAdmission(edf.AdmissionConfig{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for range 50 {
		T := int64(1000 * (1 + rng.Intn(50)))
		C := max(T/100, 1)
		if _, err := adm.Propose(edf.Task{WCET: C, Deadline: T, Period: T}); err != nil {
			b.Fatal(err)
		}
	}
	adm.Commit()
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		T := int64(1000 + i%1000)
		if _, err := adm.Propose(edf.Task{WCET: 1, Deadline: T, Period: T}); err != nil {
			b.Fatal(err)
		}
		adm.Rollback()
	}
}
