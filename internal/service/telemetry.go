package service

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// defaultRecentTraces bounds GET /v1/traces without an explicit ?n=.
const defaultRecentTraces = 64

// TracesResponse lists recent traces, newest first.
type TracesResponse struct {
	Traces []obs.TraceSummary `json:"traces"`
}

// StreamingPath reports whether a /v1/ path serves observability reads:
// trace lookups and SSE feeds. They bypass the concurrency limiter and
// the request timeout — they must answer (and keep streaming) even when
// the analysis path is saturated — and no trace is minted for them. The
// proxy shares the predicate so both daemons treat the same paths as
// streaming.
func StreamingPath(p string) bool {
	return p == "/v1/events" ||
		strings.HasPrefix(p, "/v1/traces") ||
		strings.HasSuffix(p, "/events")
}

// OpFor names a request's logical operation for its trace. edfd and
// edfproxy share it so a fleet trace carries one op vocabulary.
func OpFor(r *http.Request) string {
	p := strings.TrimPrefix(r.URL.Path, "/v1/")
	switch {
	case p == "analyze", p == "batch", p == "partition", p == "analyzers", p == "schema":
		return p
	case p == "sessions":
		return "session.open"
	case strings.HasPrefix(p, "sessions/"):
		rest := p[len("sessions/"):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			return rest[i+1:] // propose, propose-batch, commit, rollback
		}
		if r.Method == http.MethodDelete {
			return "session.close"
		}
		return "session.get"
	}
	return strings.ToLower(r.Method) + " " + p
}

// traceID returns the active trace's id ("" outside a traced request).
func traceID(ctx context.Context) string {
	if tr := obs.FromContext(ctx); tr != nil {
		return tr.ID
	}
	return ""
}

// tagTrace stamps the session (and optional decision path) onto the
// active trace.
func tagTrace(ctx context.Context, session, path string) {
	if tr := obs.FromContext(ctx); tr != nil {
		tr.Session = session
		if path != "" {
			tr.Path = path
		}
	}
}

// publish stamps the active trace id onto ev and puts it on the feed.
func (s *Server) publish(ctx context.Context, ev obs.Event) {
	if ev.Trace == "" {
		ev.Trace = traceID(ctx)
	}
	s.hub.Publish(ev)
}

// publishDecision emits the admit/reject event for one proposal.
func (s *Server) publishDecision(ctx context.Context, session string, out ProposeOutcome, latency time.Duration) {
	typ := obs.EventReject
	if out.Admitted {
		typ = obs.EventAdmit
	}
	s.publish(ctx, obs.Event{
		Type:        typ,
		Session:     session,
		Path:        out.Path,
		Verdict:     out.Result.Verdict.String(),
		Admitted:    out.Admitted,
		Utilization: out.Utilization,
		LatencyNS:   latency.Nanoseconds(),
	})
}

// publishExpired turns the TTL sweeper's removals into expire events.
// Nothing upstream carries a trace for a sweep, so each event gets a
// minted trace that records the expiry itself — every feed event resolves
// to a trace, without exceptions for server-initiated decisions.
func (s *Server) publishExpired(ids []string) {
	// The sweep is a decision too: journal expire records so a restart
	// cannot resurrect sessions the TTL already removed.
	s.journalExpired(ids)
	for _, id := range ids {
		tr := obs.StartTrace(obs.NewTraceID(), "session.expire")
		tr.Session = id
		tr.EndSpan("expire", tr.Start(), "idle ttl")
		s.traces.Record(tr)
		s.hub.Publish(obs.Event{Type: obs.EventExpire, Session: id, Trace: tr.ID})
		s.log.Info("session expired", "session", id, "trace", tr.ID)
	}
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := defaultRecentTraces
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", q))
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: s.traces.Recent(n)})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t, ok := s.traces.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("service: unknown trace"))
		return
	}
	writeJSON(w, http.StatusOK, t)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	obs.ServeSSE(w, r, s.hub.Subscribe("", 0), 0, s.stop)
}

func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Subscribe before the existence check so no decision can fall between
	// the check and the subscription.
	sub := s.hub.Subscribe(id, 0)
	_, release, err := s.ensureSession(id)
	if err != nil {
		sub.Close()
		s.fail(w, http.StatusNotFound, err)
		return
	}
	release()
	obs.ServeSSE(w, r, sub, 0, s.stop)
}
