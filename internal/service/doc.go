// Package service implements edfd, the feasibility-analysis daemon: an
// HTTP/JSON front end over the analysis engine registry.
//
// Three pillars:
//
//   - Stateless analysis: POST /v1/analyze runs one analyzer (default:
//     the cascade) on one task set; POST /v1/batch fans a (sets x
//     analyzers) cross product over the engine's bounded worker pool and
//     returns per-job telemetry in deterministic set-major order.
//
//   - Content-addressed result caching: every cacheable analysis is keyed
//     by engine.Fingerprint(task set, analyzer, options) in a sharded LRU,
//     so repeated analyses of hot task sets are O(1) lookups. Hit, miss
//     and eviction counters surface on GET /metrics.
//
//   - Stateful admission sessions: POST /v1/sessions opens an online
//     admission controller (the use case motivating the paper's fast
//     exact tests); /propose stages a task if the grown set stays
//     feasible, /commit makes staged tasks permanent, /rollback discards
//     them.
//
// The server wires in a concurrency limiter, per-request deadlines,
// graceful shutdown, GET /healthz and GET /metrics. Package
// service/client is the typed Go client.
package service
