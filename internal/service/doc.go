// Package service implements edfd, the feasibility-analysis daemon: an
// HTTP/JSON front end over the analysis engine registry.
//
// Three pillars:
//
//   - Stateless analysis: POST /v1/analyze runs one analyzer (default:
//     the cascade) on one task set; POST /v1/batch fans a (sets x
//     analyzers) cross product over the engine's bounded worker pool and
//     returns per-job telemetry in deterministic set-major order.
//
//   - Content-addressed result caching: every cacheable analysis is keyed
//     by engine.Fingerprint(task set, analyzer, options) in a sharded LRU,
//     so repeated analyses of hot task sets are O(1) lookups. Hit, miss
//     and eviction counters surface on GET /metrics.
//
//   - Stateful admission sessions: POST /v1/sessions opens an online
//     admission controller (the use case motivating the paper's fast
//     exact tests); /propose stages a task if the grown set stays
//     feasible, /commit makes staged tasks permanent, /rollback discards
//     them.
//
// Every /v1 request runs under a trace (internal/obs): the X-Edf-Trace
// header is adopted from the caller — edfproxy propagates one — or
// minted here, echoed on the response, and resolves at GET
// /v1/traces/{id} to the request's span record (cache lookup, cascade
// stages, incremental fast path vs escalation). Admission decisions
// additionally publish to a live feed: GET /v1/sessions/{id}/events
// streams one session's admit/reject/commit/rollback/close events as
// server-sent events, GET /v1/events streams all sessions'. GET
// /metrics is Prometheus text exposition; diagnostics go to log/slog
// with trace and session attributes.
//
// The server wires in a concurrency limiter, per-request deadlines,
// graceful shutdown, GET /healthz and GET /metrics. Package
// service/client is the typed Go client (including Events, FleetEvents
// and Trace for the feed and trace endpoints).
package service
