package service_test

// Session admission benchmarks, the trend suite behind `make
// bench-session` / BENCH_session.json. They measure what an online
// admission controller actually pays per decision on a large committed
// session, in both period regimes from the core suite:
//
//   - grid: round {1,2,5}·10^k periods, the shape where the whole
//     decision — utilization gate, incremental certificate, rollback —
//     stays in int64 and must not allocate.
//   - spread: log-uniform periods over four decades, where exact
//     utilization arithmetic overflows int64 and falls back to big.Rat
//     (allocations come from that pre-existing path, not the
//     certificate).
//
// The incremental/full pair on the same session is the headline number:
// full forces NoIncremental (every proposal re-runs the cascade over the
// whole set), incremental is the default fast path. BENCH_session.json
// records both so the speedup and the 0-alloc grid contract are gated
// in CI.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/churn"
	"repro/internal/model"
	"repro/internal/service"
	"repro/internal/workload"
)

// benchSessionPeriods is the round-period grid sets draw from.
var benchSessionPeriods = []int64{
	1000, 2000, 5000,
	10000, 20000, 50000,
	100000, 200000, 500000,
	1000000, 2000000, 5000000,
}

// benchSessionSeed builds a deterministic n-task, ~60%-utilization
// committed baseline. Deadlines equal periods so the seed is feasible by
// construction (utilization below one is sufficient for D = T); the
// proposals supply the constrained deadlines.
func benchSessionSeed(n int, grid bool, seed int64) workload.Workload {
	rng := rand.New(rand.NewSource(seed))
	period := func() int64 {
		if grid {
			return benchSessionPeriods[rng.Intn(len(benchSessionPeriods))]
		}
		lo, hi := 3.0, 7.0 // 10^3 .. 10^7
		return int64(math.Pow(10, lo+rng.Float64()*(hi-lo)))
	}
	shares := make([]float64, n)
	sum := 0.0
	for i := range shares {
		shares[i] = 0.1 + rng.Float64()
		sum += shares[i]
	}
	ts := make(model.TaskSet, 0, n)
	for i := range n {
		t := period()
		c := int64(shares[i] / sum * 0.60 * float64(t))
		if c < 1 {
			c = 1
		}
		ts = append(ts, model.Task{WCET: c, Deadline: t, Period: t})
	}
	return workload.NewSporadic(ts)
}

// BenchmarkSessionPropose is the headline online-admission benchmark:
// one ProposeTask + Rollback against a session holding 1000 committed
// tasks. The proposal is a light task a healthy session admits, so
// "incremental" measures the certificate fast path end to end (grid must
// stay 0 allocs/op) and "full" measures the same decision with
// NoIncremental — a cascade re-analysis of all 1001 tasks — the
// pre-incremental cost this PR removes.
func BenchmarkSessionPropose(b *testing.B) {
	for _, shape := range []struct {
		name string
		grid bool
	}{{"grid", true}, {"spread", false}} {
		seed := benchSessionSeed(1000, shape.grid, 1)
		for _, mode := range []struct {
			name  string
			noInc bool
		}{{"incremental", false}, {"full", true}} {
			b.Run(shape.name+"/"+mode.name, func(b *testing.B) {
				adm, err := service.NewAdmission(service.AdmissionConfig{
					Seed: seed, NoIncremental: mode.noInc,
				})
				if err != nil {
					b.Fatal(err)
				}
				light := workload.SporadicTask(model.Task{
					WCET: 1, Deadline: 500000, Period: 1000000,
				})
				b.ReportAllocs()
				b.ResetTimer()
				for b.Loop() {
					out, err := adm.ProposeTask(light)
					if err != nil {
						b.Fatal(err)
					}
					if !out.Admitted {
						b.Fatal("light task rejected")
					}
					adm.Rollback()
				}
			})
		}
	}
}

// BenchmarkSessionChurn replays one generated churn scenario per
// iteration on a fresh session: 100 committed seed tasks, 1000 mixed
// propose/commit/rollback ops with light, heavy and tight-deadline
// proposals — the macro number for sustained session churn, decision
// paths mixed in realistic proportion.
func BenchmarkSessionChurn(b *testing.B) {
	sc, err := churn.Generate("bench", churn.Config{SeedTasks: 100, Ops: 1000},
		rand.New(rand.NewSource(9)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		adm, err := service.NewAdmission(service.AdmissionConfig{Seed: sc.Seed})
		if err != nil {
			b.Fatal(err)
		}
		for i := range sc.Ops {
			switch op := &sc.Ops[i]; op.Op {
			case churn.OpPropose:
				if _, err := adm.ProposeTask(*op.Task); err != nil {
					b.Fatal(err)
				}
			case churn.OpCommit:
				adm.Commit()
			case churn.OpRollback:
				adm.Rollback()
			}
		}
	}
}
