// End-to-end coverage of POST /v1/partition, GET /v1/schema and the
// typed error shape, driven only through the typed client.
package service_test

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/workload"
)

func partWorkload(tasks ...workload.PartitionedTask) service.Workload {
	return service.PartitionedWorkload([]workload.Processor{{Name: "p0"}, {Name: "p1", Speed: 2}}, tasks)
}

func partTask(name string, c, d, t int64, affinity ...int) workload.PartitionedTask {
	return workload.PartitionedTask{
		Task:     model.Task{Name: name, WCET: c, Deadline: d, Period: t},
		Affinity: affinity,
	}
}

func TestE2EPartitionFeasible(t *testing.T) {
	srv, c := newTestServer(t, service.Config{})
	ctx := context.Background()
	resp, rt, err := c.Partition(ctx, service.PartitionRequest{
		Name: "plant",
		Workload: partWorkload(
			partTask("a", 6, 10, 10),
			partTask("b", 6, 10, 10),
			partTask("pinned", 2, 10, 10, 0),
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Against a bare edfd the Route carries no replica metadata — only
	// the trace id the server echoes. This pins the collapsed-API
	// contract: one method, Route zero-ish without a proxy in the path.
	if rt.Replica != "" || rt.Attempts != 0 || rt.Owner != "" || rt.TakenOverFrom != "" {
		t.Errorf("bare-edfd Route carries proxy metadata: %+v", rt)
	}
	if rt.TraceID == "" {
		t.Error("no trace id echoed")
	}
	if !resp.Feasible || resp.Model != "partitioned" || resp.Analyzer != "cascade" {
		t.Fatalf("placement: %+v", resp)
	}
	if resp.Assignment[2] != 0 {
		t.Errorf("affinity-pinned task on processor %d", resp.Assignment[2])
	}
	if len(resp.Processors) != 2 {
		t.Fatalf("processors: %+v", resp.Processors)
	}
	for _, rep := range resp.Processors {
		if rep.Verdict != "feasible" {
			t.Errorf("processor %d: verdict %s", rep.Index, rep.Verdict)
		}
		if len(rep.Tasks) > 0 && rep.Fingerprint == "" {
			t.Errorf("processor %d: no fingerprint", rep.Index)
		}
	}
	if resp.Stats.BinChecks == 0 {
		t.Error("no bin checks counted")
	}

	// The placement trace must resolve, with the placement span and one
	// bin span per processor.
	tr, err := c.Trace(ctx, rt.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	bins, place := 0, false
	for _, sp := range tr.Spans {
		if strings.HasPrefix(sp.Name, "bin:p") {
			bins++
		}
		if sp.Name == "place" {
			place = true
		}
	}
	if !place || bins != len(resp.Processors) {
		t.Errorf("trace spans: place=%v bins=%d want %d", place, bins, len(resp.Processors))
	}

	// A repeated placement is served from the content-addressed cache.
	again, _, err := c.Partition(ctx, service.PartitionRequest{Workload: partWorkload(
		partTask("a", 6, 10, 10),
		partTask("b", 6, 10, 10),
		partTask("pinned", 2, 10, 10, 0),
	)})
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.CacheHits == 0 {
		t.Errorf("warm placement hit no cache: %+v", again.Stats)
	}

	page, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"edfd_partition_requests_total 2",
		"edfd_partition_feasible_total 2",
		"edfd_partition_bin_checks_total",
		"edfd_partition_bin_cache_hits_total",
	} {
		if !strings.Contains(page, name) {
			t.Errorf("metrics page lacks %q", name)
		}
	}
	_ = srv
}

func TestE2EPartitionCounterexample(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	// Three heavy tasks over (1 + 2) capacity that cannot coexist:
	// per-task demand 0.7 of a unit processor, the speed-2 one can hold
	// two but not three.
	resp, _, err := c.Partition(context.Background(), service.PartitionRequest{
		Workload: partWorkload(
			partTask("a", 7, 10, 10),
			partTask("b", 7, 10, 10),
			partTask("c", 7, 10, 10),
			partTask("d", 7, 10, 10),
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Feasible {
		t.Fatalf("overloaded workload placed: %+v", resp)
	}
	if resp.Counterexample == nil || len(resp.Attempts) == 0 {
		t.Fatalf("no counterexample trail: %+v", resp)
	}
	ce := resp.Counterexample
	if ce.FailedTaskName == "" || len(ce.Rejections) != 2 {
		t.Errorf("counterexample: %+v", ce)
	}
}

func TestE2EPartitionRejections(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()
	pw := partWorkload(partTask("a", 1, 10, 10))

	// A partitioned workload is not accepted by the uniprocessor
	// endpoints, and the typed error says so.
	_, _, err := c.Analyze(ctx, service.AnalyzeRequest{Workload: pw})
	var se *service.Error
	if !errors.As(err, &se) || se.Code != service.CodeUnprocessable {
		t.Errorf("analyze(partitioned): %v", err)
	}
	_, _, err = c.Batch(ctx, service.BatchRequest{Sets: []service.WorkloadSet{{Workload: pw}}})
	if !errors.As(err, &se) || se.Code != service.CodeUnprocessable {
		t.Errorf("batch(partitioned): %v", err)
	}
	if _, _, err = c.OpenSession(ctx, service.SessionRequest{Workload: pw}); !errors.As(err, &se) ||
		se.Code != service.CodeUnprocessable {
		t.Errorf("session(partitioned): %v", err)
	}

	// And the partition endpoint rejects everything else.
	_, _, err = c.Partition(ctx, service.PartitionRequest{
		Workload: service.SporadicWorkload(model.TaskSet{{WCET: 1, Deadline: 2, Period: 2}}),
	})
	if !errors.As(err, &se) || se.Code != service.CodeUnprocessable {
		t.Errorf("partition(sporadic): %v", err)
	}
	_, _, err = c.Partition(ctx, service.PartitionRequest{Workload: pw, Analyzer: "bogus"})
	if !errors.As(err, &se) || se.Code != service.CodeBadRequest {
		t.Errorf("partition(bogus analyzer): %v", err)
	}
	_, _, err = c.Partition(ctx, service.PartitionRequest{Workload: pw, Heuristics: []string{"bogus"}})
	if !errors.As(err, &se) || se.Code != service.CodeBadRequest {
		t.Errorf("partition(bogus heuristic): %v", err)
	}
}

func TestE2ESchema(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	sr, err := c.Schema(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sr.WireVersion != service.WireVersion {
		t.Errorf("wire version %q, want %q", sr.WireVersion, service.WireVersion)
	}
	models := strings.Join(sr.Models, ",")
	for _, m := range []string{"sporadic", "events", "partitioned"} {
		if !strings.Contains(models, m) {
			t.Errorf("schema models %q lack %q", models, m)
		}
	}
	if len(sr.Analyzers) == 0 || len(sr.Heuristics) != 3 {
		t.Errorf("schema: %d analyzers, %d heuristics", len(sr.Analyzers), len(sr.Heuristics))
	}
}

// TestE2ETypedErrorSurfaces pins the client error contract: both the
// HTTP-level *client.Error and the wire-level *service.Error are
// reachable with errors.As, and retryability follows the status.
func TestE2ETypedErrorSurfaces(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	_, _, err := c.Analyze(context.Background(), service.AnalyzeRequest{
		Workload: service.SporadicWorkload(model.TaskSet{{WCET: 1, Deadline: 2, Period: 2}}),
		Analyzer: "nope",
	})
	var ce *client.Error
	if !errors.As(err, &ce) || ce.StatusCode != http.StatusBadRequest || ce.Code != service.CodeBadRequest {
		t.Fatalf("client error: %+v", ce)
	}
	if ce.Retryable {
		t.Error("a 400 is not retryable")
	}
	var se *service.Error
	if !errors.As(err, &se) || se.Code != service.CodeBadRequest || se.Message == "" {
		t.Fatalf("service error not surfaced: %v", err)
	}
}
