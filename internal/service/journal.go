package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/workload"
)

// This file threads the durable store through the session lifecycle:
// every open/admit/commit/rollback/close/expire decision writes a log
// record, a restarted server replays the log back into live sessions,
// and a session-miss rehydrates from the shared store (the cluster
// takeover path).
//
// Durability points use the store's synchronous Append — the client
// only sees a 2xx after the record is on disk — while high-rate admit
// records and the loss-tolerant rollback/expire records ride the
// asynchronous Submit: a crash loses at most an ordered suffix of
// unsynced records, and losing an admit suffix is indistinguishable
// from crashing before those proposals arrived.
//
// Per-session record order is preserved by the entry's jmu, which
// spans (decision, log record, watermark) so the log can never show a
// commit before the admits it covers, and a snapshot capture sees a
// consistent (state, lastSeq) pair.

// journalOpen writes the session's open record — synchronously, so the
// session id handed to the client is already durable.
func (s *Server) journalOpen(id string, e *sessionEntry, req SessionRequest) error {
	if s.store == nil {
		return nil
	}
	cfg, err := json.Marshal(req)
	if err != nil {
		return err
	}
	e.jmu.Lock()
	defer e.jmu.Unlock()
	seq, err := s.store.Append(store.Record{Type: store.TypeOpen, Session: id, Config: cfg})
	if err != nil {
		return err
	}
	e.lastSeq = seq
	return nil
}

// proposeJournaled decides one task and journals the admit record (in
// decision order) when it was staged.
func (s *Server) proposeJournaled(e *sessionEntry, id string, t workload.Task) (ProposeOutcome, error) {
	if s.store == nil {
		return e.adm.ProposeTask(t)
	}
	e.jmu.Lock()
	defer e.jmu.Unlock()
	out, err := e.adm.ProposeTask(t)
	if err == nil && out.Admitted {
		s.submitLocked(e, admitRecord(id, t))
	}
	return out, err
}

// proposeBatchJournaled is the bulk counterpart: one Submit carries the
// batch's admitted records, in decision order.
func (s *Server) proposeBatchJournaled(e *sessionEntry, id string, tasks []workload.Task) ([]ProposeOutcome, error) {
	if s.store == nil {
		return e.adm.ProposeBatch(tasks)
	}
	e.jmu.Lock()
	defer e.jmu.Unlock()
	outs, err := e.adm.ProposeBatch(tasks)
	if err != nil {
		return outs, err
	}
	var recs []store.Record
	for i, out := range outs {
		if out.Admitted {
			recs = append(recs, admitRecord(id, tasks[i]))
		}
	}
	if len(recs) > 0 {
		s.submitLocked(e, recs...)
	}
	return outs, nil
}

// finishJournaled applies a commit or rollback and journals it. A
// commit is a durability point (Append blocks until fsynced); a
// rollback only narrows state, so losing its record merely replays
// pending tasks a restart would drop anyway.
func (s *Server) finishJournaled(e *sessionEntry, id, event string, move func(*Admission) FinishOutcome) FinishOutcome {
	if s.store == nil {
		return move(e.adm)
	}
	e.jmu.Lock()
	defer e.jmu.Unlock()
	out := move(e.adm)
	rec := store.Record{Session: id}
	var seq uint64
	var err error
	if event == obs.EventCommit {
		rec.Type = store.TypeCommit
		seq, err = s.store.Append(rec)
	} else {
		rec.Type = store.TypeRollback
		seq, err = s.store.Submit(rec)
	}
	if err != nil {
		// The in-memory move already happened; the divergence is logged
		// and counted rather than unwound (the client's state matches
		// memory, and the next snapshot re-converges the store).
		s.m.journalErrors.Add(1)
		s.log.Error("journal write failed", "session", id, "type", rec.Type, "err", err)
		return out
	}
	e.lastSeq = seq
	return out
}

// journalClose writes a session's close record so replay cannot
// resurrect it.
func (s *Server) journalClose(id string) {
	if s.store == nil {
		return
	}
	if _, err := s.store.Append(store.Record{Type: store.TypeClose, Session: id}); err != nil {
		s.m.journalErrors.Add(1)
		s.log.Error("journal write failed", "session", id, "type", store.TypeClose, "err", err)
	}
}

// journalExpired writes expire records for TTL-swept sessions — without
// them a restart would resurrect sessions the sweeper already removed.
func (s *Server) journalExpired(ids []string) {
	if s.store == nil {
		return
	}
	recs := make([]store.Record, len(ids))
	for i, id := range ids {
		recs[i] = store.Record{Type: store.TypeExpire, Session: id}
	}
	if _, err := s.store.Submit(recs...); err != nil {
		s.m.journalErrors.Add(1)
		s.log.Error("journal write failed", "type", store.TypeExpire, "err", err)
	}
}

// submitLocked submits records and advances the session watermark; the
// caller holds e.jmu.
func (s *Server) submitLocked(e *sessionEntry, recs ...store.Record) {
	seq, err := s.store.Submit(recs...)
	if err != nil {
		s.m.journalErrors.Add(1)
		s.log.Error("journal write failed", "session", recs[0].Session, "type", recs[0].Type, "err", err)
		return
	}
	e.lastSeq = seq
}

func admitRecord(id string, t workload.Task) store.Record {
	raw, err := json.Marshal(t)
	if err != nil {
		// Tasks that served a decision always marshal; a failure here
		// would be a schema bug, and an empty Task record replays as a
		// no-op rather than corrupting the session.
		raw = nil
	}
	return store.Record{Type: store.TypeAdmit, Session: id, Task: raw}
}

// rebuildEntry turns a replayed session state back into a live entry.
// TrustedSeed skips re-proving the committed set (it was verified
// feasible when admitted); everything else about the construction is
// identical, so subsequent verdicts are bit-identical to the
// uninterrupted run. Replayed pending (uncommitted) tasks are dropped —
// the same implicit rollback an explicit restart-and-reopen would do.
func (s *Server) rebuildEntry(st *store.SessionState) (*sessionEntry, error) {
	var req SessionRequest
	if err := json.Unmarshal(st.Config, &req); err != nil {
		return nil, fmt.Errorf("session config: %w", err)
	}
	opt, err := req.Options.Core()
	if err != nil {
		return nil, err
	}
	adm, err := NewAdmission(AdmissionConfig{
		Analyzer:    req.Analyzer,
		Options:     opt,
		Seed:        req.Workload,
		TrustedSeed: true,
	})
	if err != nil {
		return nil, err
	}
	return &sessionEntry{adm: adm, analyzer: req.Analyzer, options: req.Options, lastSeq: st.Seq}, nil
}

// recoverSessions replays the store into live sessions at startup.
// Damaged or unparsable sessions are logged and skipped — recovery
// restores what it can rather than refusing to boot.
func (s *Server) recoverSessions() {
	states, _, err := s.store.Load()
	if err != nil {
		s.log.Error("store replay failed, starting empty", "err", err)
		return
	}
	ids := make([]string, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := states[id]
		e, err := s.rebuildEntry(st)
		if err != nil {
			s.log.Error("session not recovered", "session", id, "err", err)
			continue
		}
		if _, restored, err := s.sessions.restore(id, e); err != nil || !restored {
			s.log.Error("session not recovered", "session", id, "err", err)
			continue
		}
		s.journalDroppedPending(e, id, st)
		s.m.resumed.Add(1)
		s.publishResume(id, e)
		committed, _, _ := e.adm.Snapshot()
		s.log.Info("session resumed from store", "session", id,
			"committed", committed.Len(), "dropped_pending", len(st.Pending))
	}
}

// Negative rehydrate-cache tuning: a store lookup that found nothing is
// remembered this long, and at most this many ids are tracked. Every
// /v1/sessions/{id} miss otherwise costs a full directory replay, which
// would make bogus ids an easy resource-exhaustion vector.
const (
	rehydrateMissTTL = 2 * time.Second
	maxTrackedMisses = 4096
)

// recentMiss reports whether id was recently looked up in the store and
// found absent; such ids 404 again without another full replay.
func (s *Server) recentMiss(id string) bool {
	s.missMu.Lock()
	defer s.missMu.Unlock()
	t, ok := s.misses[id]
	if !ok {
		return false
	}
	if time.Since(t) > rehydrateMissTTL {
		delete(s.misses, id)
		return false
	}
	return true
}

// noteMiss records a store lookup that found nothing, bounding the map:
// expired entries go first, arbitrary ones if the map is still full.
func (s *Server) noteMiss(id string) {
	s.missMu.Lock()
	defer s.missMu.Unlock()
	if s.misses == nil {
		s.misses = make(map[string]time.Time)
	}
	if len(s.misses) >= maxTrackedMisses {
		for k, t := range s.misses {
			if time.Since(t) > rehydrateMissTTL {
				delete(s.misses, k)
			}
		}
		for k := range s.misses {
			if len(s.misses) < maxTrackedMisses {
				break
			}
			delete(s.misses, k)
		}
	}
	s.misses[id] = time.Now()
}

// rehydrate loads one session this replica has never seen from the
// shared store — the takeover path: the proxy reassigned a dead owner's
// session here, and the store directory both replicas share has its
// decision history. Returns false when the session is unknown, closed,
// or cannot be rebuilt. Absent and unrebuildable ids are remembered
// briefly so repeated misses skip the full directory replay.
func (s *Server) rehydrate(id string) bool {
	if s.store == nil {
		return false
	}
	if s.recentMiss(id) {
		return false
	}
	st, err := s.store.LoadSession(id)
	if err != nil {
		s.log.Error("store lookup failed", "session", id, "err", err)
		return false
	}
	if st == nil {
		s.noteMiss(id)
		return false
	}
	e, err := s.rebuildEntry(st)
	if err != nil {
		s.noteMiss(id)
		s.log.Error("session not rehydrated", "session", id, "err", err)
		return false
	}
	_, restored, err := s.sessions.restore(id, e)
	if err != nil {
		s.log.Error("session not rehydrated", "session", id, "err", err)
		return false
	}
	if restored {
		s.journalDroppedPending(e, id, st)
		s.m.rehydrated.Add(1)
		s.publishResume(id, e)
		committed, _, _ := e.adm.Snapshot()
		s.log.Info("session rehydrated from store", "session", id,
			"committed", committed.Len(), "dropped_pending", len(st.Pending))
	}
	return true
}

// journalDroppedPending records the implicit rollback of pending tasks
// a recovery drops, so a later replay (or another node's) agrees.
func (s *Server) journalDroppedPending(e *sessionEntry, id string, st *store.SessionState) {
	if len(st.Pending) == 0 {
		return
	}
	e.jmu.Lock()
	s.submitLocked(e, store.Record{Type: store.TypeRollback, Session: id})
	e.jmu.Unlock()
}

func (s *Server) publishResume(id string, e *sessionEntry) {
	_, _, util := e.adm.Snapshot()
	s.hub.Publish(obs.Event{Type: obs.EventResume, Session: id, Utilization: util})
}

// ensureSession resolves id to a live entry, rehydrating from the store
// on a miss.
func (s *Server) ensureSession(id string) (*sessionEntry, func(), error) {
	e, release, err := s.sessions.acquire(id)
	if err == nil {
		return e, release, nil
	}
	if !s.rehydrate(id) {
		return nil, nil, err
	}
	return s.sessions.acquire(id)
}

// captureSnapshot builds a compacting image of live sessions. snap.Seq
// is a store watermark taken BEFORE any session is read: a record
// stamped while the capture walks the map always carries a higher seq,
// so compacting up to snap.Seq can never drop a record the image does
// not cover. A session whose open record has not landed yet
// (lastSeq == 0) is skipped — stamping happens under the same jmu this
// capture takes, so its records are stamped strictly after the
// watermark and survive both compaction and replay on their own.
func (s *Server) captureSnapshot() (store.Snapshot, bool) {
	snap := store.Snapshot{Seq: s.store.LastSeq()}
	for id, e := range s.sessions.entries() {
		e.jmu.Lock()
		seq := e.lastSeq
		if seq == 0 {
			e.jmu.Unlock()
			continue
		}
		committed, pending, _ := e.adm.Snapshot()
		analyzer, options := e.analyzer, e.options
		e.jmu.Unlock()
		cfg, err := json.Marshal(SessionRequest{Analyzer: analyzer, Options: options, Workload: committed})
		if err != nil {
			s.log.Error("snapshot capture failed", "session", id, "err", err)
			continue
		}
		img := store.SessionSnapshot{ID: id, Seq: seq, Config: cfg}
		for _, t := range pendingTasks(pending) {
			raw, err := json.Marshal(t)
			if err != nil {
				continue
			}
			img.Pending = append(img.Pending, raw)
		}
		snap.Sessions = append(snap.Sessions, img)
	}
	return snap, len(snap.Sessions) > 0
}

// pendingTasks wraps a pending workload's members back into wire tasks.
func pendingTasks(w workload.Workload) []workload.Task {
	var out []workload.Task
	if w.Kind() == workload.Events {
		for _, t := range w.Events {
			out = append(out, workload.EventTask(t))
		}
		return out
	}
	for _, t := range w.Tasks {
		out = append(out, workload.SporadicTask(t))
	}
	return out
}

// writeSnapshot captures and persists one snapshot.
func (s *Server) writeSnapshot() {
	snap, ok := s.captureSnapshot()
	if !ok {
		return
	}
	if err := s.store.WriteSnapshot(snap); err != nil {
		s.m.journalErrors.Add(1)
		s.log.Error("snapshot write failed", "err", err)
	}
}

// snapshotter writes compacting snapshots every interval and a final
// one at shutdown.
func (s *Server) snapshotter(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.writeSnapshot()
		case <-s.stop:
			s.writeSnapshot()
			return
		}
	}
}
