// End-to-end telemetry coverage: the SSE admission feed and the trace
// endpoint driven only through the typed client against a real server.
package service_test

import (
	"context"
	"sync"
	"testing"
	"time"

	edf "repro"
	"repro/internal/obs"
	"repro/internal/service"
)

// recvEvent reads one feed event with a deadline, so a broken stream
// fails the test instead of hanging it.
func recvEvent(t *testing.T, ch <-chan obs.Event) obs.Event {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("event channel closed early")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a feed event")
	}
	panic("unreachable")
}

// TestSessionEventsOrderingUnderConcurrentProposeBatch subscribes to one
// session's feed, hammers it with concurrent propose-batch requests, and
// requires every decision to arrive exactly once, in strictly increasing
// Seq order, all tagged with the session and a resolvable trace.
func TestSessionEventsOrderingUnderConcurrentProposeBatch(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	h, _, err := c.OpenSession(ctx, service.SessionRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "seed", WCET: 2, Deadline: 8, Period: 10}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Events(ctx, h.ID)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers = 4
		batches = 5
		perReq  = 3
	)
	var wg sync.WaitGroup
	for w := range writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range batches {
				tasks := make([]service.WorkloadTask, perReq)
				for i := range tasks {
					tasks[i] = service.SporadicTask(edf.Task{
						Name: "t", WCET: 1,
						Deadline: int64(5000 + 100*(w*batches+b) + i),
						Period:   100000,
					})
				}
				if _, err := h.ProposeBatch(ctx, service.ProposeBatchRequest{Tasks: tasks}); err != nil {
					t.Errorf("writer %d batch %d: %v", w, b, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if _, err := h.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}

	decisions, commits := 0, 0
	var lastSeq uint64
	for {
		ev := recvEvent(t, ch)
		if ev.Session != h.ID {
			t.Fatalf("event for session %q on a %q subscription", ev.Session, h.ID)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("seq went %d -> %d: feed order broke", lastSeq, ev.Seq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case obs.EventAdmit, obs.EventReject:
			decisions++
			if ev.Trace == "" || ev.Path == "" {
				t.Fatalf("decision event missing trace/path: %+v", ev)
			}
		case obs.EventCommit:
			commits++
			if ev.Moved != writers*batches*perReq {
				t.Fatalf("commit moved %d, want %d", ev.Moved, writers*batches*perReq)
			}
		}
		if ev.Type == obs.EventClose {
			break
		}
	}
	if want := writers * batches * perReq; decisions != want {
		t.Fatalf("feed delivered %d decisions, want %d", decisions, want)
	}
	if commits != 1 {
		t.Fatalf("feed delivered %d commit events, want 1", commits)
	}
}

// TestTraceRoundTrip pins the direct-to-edfd trace contract: the trace
// ID echoed on an analyze response resolves to a span record carrying
// the cache lookup and the analysis, and the recent-trace listing knows
// it.
func TestTraceRoundTrip(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	_, rt, err := c.AnalyzeRouted(ctx, service.AnalyzeRequest{
		Name:     "traced",
		Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "a", WCET: 2, Deadline: 8, Period: 10}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.TraceID == "" {
		t.Fatal("analyze response carried no trace id")
	}
	tr, err := c.Trace(ctx, rt.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ID != rt.TraceID || tr.Op != "analyze" {
		t.Fatalf("trace identity: %+v", tr)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"cache", "analyze"} {
		if !names[want] {
			t.Fatalf("trace lacks %q span: %v", want, tr.Spans)
		}
	}

	sums, err := c.Traces(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sums {
		found = found || s.ID == rt.TraceID
	}
	if !found {
		t.Fatalf("trace %s missing from the recent listing", rt.TraceID)
	}

	// Unknown IDs are a clean 404, not a hang or a 500.
	if _, err := c.Trace(ctx, "no-such-trace"); err == nil {
		t.Fatal("unknown trace id resolved")
	}
}
