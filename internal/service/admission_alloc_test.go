package service

// Allocation regression for the admission hot loop: with the cached
// candidate buffer, the fast-rational utilization gate and the
// per-controller Scratch, a ProposeBatch decision may allocate only a
// small constant (outcome slice, cascade closures, Devi's sorted copy) —
// never per-session-size slices or big.Rat chains.

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// proposeBatchAllocs measures allocs per ProposeBatch+Rollback cycle for
// a batch of n candidate tasks against a session seeded with base tasks.
func proposeBatchAllocs(t *testing.T, analyzer string, n int) float64 {
	t.Helper()
	seed := make(model.TaskSet, 0, 20)
	for i := range 20 {
		p := int64(1000 * (i + 1))
		seed = append(seed, model.Task{WCET: p / 50, Deadline: p - p/10, Period: p})
	}
	adm, err := NewAdmission(AdmissionConfig{Analyzer: analyzer, Seed: workload.NewSporadic(seed)})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]workload.Task, 0, n)
	for i := range n {
		p := int64(2000 * (i + 2))
		batch = append(batch, workload.SporadicTask(model.Task{
			WCET: p / 100, Deadline: p - p/20, Period: p,
		}))
	}
	// Warm the candidate buffer and scratch to steady-state capacity.
	if _, err := adm.ProposeBatch(batch); err != nil {
		t.Fatal(err)
	}
	adm.Rollback()
	return testing.AllocsPerRun(50, func() {
		if _, err := adm.ProposeBatch(batch); err != nil {
			panic(err)
		}
		adm.Rollback()
	})
}

// TestProposeBatchAllocBounded pins the per-decision allocation budget of
// the bulk admission path.
func TestProposeBatchAllocBounded(t *testing.T) {
	for _, tc := range []struct {
		analyzer  string
		perTask   float64 // allowed allocs per proposed task
		perCycle  float64 // allowed fixed allocs per batch call
		batchSize int
	}{
		// The cascade runs liu → devi (sorted copy) → superpos → allapprox
		// per decision; everything else comes from the reused scratch.
		// Measured ~1.4 allocs/task.
		{"cascade", 3, 8, 16},
		// Superpos alone decides from the scratch only: measured ~0.4.
		{"superpos", 1, 4, 16},
	} {
		t.Run(tc.analyzer, func(t *testing.T) {
			allocs := proposeBatchAllocs(t, tc.analyzer, tc.batchSize)
			budget := tc.perTask*float64(tc.batchSize) + tc.perCycle
			if allocs > budget {
				t.Fatalf("ProposeBatch(%d tasks) allocates %.1f/cycle, budget %.1f",
					tc.batchSize, allocs, budget)
			}
			t.Log(fmt.Sprintf("ProposeBatch(%d tasks): %.1f allocs/cycle (budget %.1f)",
				tc.batchSize, allocs, budget))
		})
	}
}
