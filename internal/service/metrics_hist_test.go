package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/workload"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1024, 10}, {1025, 11}, {1 << 32, 32}, {1 << 40, 32},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistQuantile(t *testing.T) {
	var h latencyHist
	// 90 fast samples (<= 1024 ns), 10 slow ones (~1 ms).
	h.observe(900, 90)
	h.observe(1_000_000, 10)
	b, count, sum := h.snapshot()
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
	if want := uint64(90*900 + 10*1_000_000); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if p50 := histQuantile(b, count, 0.50); p50 != 1024 {
		t.Errorf("p50 = %d, want 1024", p50)
	}
	if p99 := histQuantile(b, count, 0.99); p99 != 1<<20 {
		t.Errorf("p99 = %d, want %d", p99, 1<<20)
	}
	if z := histQuantile([histBuckets]uint64{}, 0, 0.99); z != 0 {
		t.Errorf("empty quantile = %d, want 0", z)
	}
}

// TestProposeLatencyMetrics drives proposals through the HTTP surface and
// asserts the histogram, quantiles and path-split counters land on
// /metrics.
func TestProposeLatencyMetrics(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	h := srv.Handler()

	post := func(path string, body any) *httptest.ResponseRecorder {
		t.Helper()
		b, _ := json.Marshal(body)
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	rr := post("/v1/sessions", SessionRequest{})
	if rr.Code != http.StatusCreated {
		t.Fatalf("open: %d %s", rr.Code, rr.Body)
	}
	var sess SessionResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &sess); err != nil {
		t.Fatal(err)
	}
	// A tiny task the incremental path accepts, then a saturating task
	// that must be decided by the analyzer or the utilization gate.
	small := workload.SporadicTask(model.Task{WCET: 1, Deadline: 100, Period: 100})
	if rr = post("/v1/sessions/"+sess.ID+"/propose", ProposeRequest{Task: small}); rr.Code != http.StatusOK {
		t.Fatalf("propose: %d %s", rr.Code, rr.Body)
	}
	var pr ProposeResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Admitted || pr.Escalated {
		t.Fatalf("small task should be a fast accept, got admitted=%v escalated=%v", pr.Admitted, pr.Escalated)
	}
	// Sub-unit utilization but an exact demand violation at I = 500
	// (500 + small's demand 5 > 500): the certificate cannot accept, the
	// analyzer runs and rejects.
	tight := workload.SporadicTask(model.Task{WCET: 500, Deadline: 500, Period: 1000})
	if rr = post("/v1/sessions/"+sess.ID+"/propose", ProposeRequest{Task: tight}); rr.Code != http.StatusOK {
		t.Fatalf("propose tight: %d %s", rr.Code, rr.Body)
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Admitted || !pr.Escalated {
		t.Fatalf("tight task should be an escalated rejection, got admitted=%v escalated=%v", pr.Admitted, pr.Escalated)
	}
	batch := ProposeBatchRequest{Tasks: []workload.Task{
		workload.SporadicTask(model.Task{WCET: 1, Deadline: 200, Period: 200}),
		workload.SporadicTask(model.Task{WCET: 1, Deadline: 300, Period: 300}),
	}}
	if rr = post("/v1/sessions/"+sess.ID+"/propose-batch", batch); rr.Code != http.StatusOK {
		t.Fatalf("propose-batch: %d %s", rr.Code, rr.Body)
	}

	var page bytes.Buffer
	srv.writeMetrics(&page)
	text := page.String()
	for _, want := range []string{
		"edfd_session_proposals_total 4",
		"edfd_propose_ns_count 4",
		"edfd_session_proposals_incremental_total 3",
		"edfd_session_proposals_escalated_total 1",
		"edfd_arith_promotions_total 0",
		"edfd_propose_ns_p50 ",
		"edfd_propose_ns_p99 ",
		"# TYPE edfd_propose_ns histogram",
		`edfd_propose_ns_bucket{le="1"} `,
		`edfd_propose_ns_bucket{le="4294967296"} 4`,
		`edfd_propose_ns_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics page missing %q:\n%s", want, text)
		}
	}
	if err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Errorf("metrics page is not valid exposition format: %v\n%s", err, text)
	}
}
