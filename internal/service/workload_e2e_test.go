// End-to-end coverage of the workload redesign: event-stream workloads
// over the wire, fingerprint domain separation through the cache,
// propose-batch, and session idle-TTL sweeping.
package service_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	edf "repro"
	"repro/internal/service"
	"repro/internal/service/client"
)

func e2eEventTasks() []edf.EventTask {
	return []edf.EventTask{
		{Name: "periodic", WCET: 2, Deadline: 9, Stream: edf.PeriodicStream(10)},
		{Name: "burst", WCET: 1, Deadline: 24, Stream: edf.BurstStream(50, 3, 4)},
	}
}

// TestE2EEventWorkloadAnalyze round-trips an event workload through
// /v1/analyze: correct verdict vs the facade, a cache hit on the repeat,
// and a fingerprint distinct from the sporadic encoding of comparable
// numbers.
func TestE2EEventWorkloadAnalyze(t *testing.T) {
	srv, c := newTestServer(t, service.Config{})
	ctx := context.Background()
	tasks := e2eEventTasks()

	direct, err := edf.AnalyzeWorkload(mustAnalyzer(t, "cascade"), edf.EventWorkload(tasks), edf.Options{})
	if err != nil {
		t.Fatal(err)
	}

	first, _, err := c.Analyze(ctx, service.AnalyzeRequest{Name: "ev", Workload: edf.EventWorkload(tasks)})
	if err != nil {
		t.Fatal(err)
	}
	if first.Model != "events" || first.Analyzer != "cascade" {
		t.Errorf("response identity: %+v", first)
	}
	if first.Result.Verdict != direct.Verdict.String() {
		t.Errorf("service says %s, facade says %s", first.Result.Verdict, direct.Verdict)
	}
	if first.Cached || first.Fingerprint == "" {
		t.Errorf("first call: cached=%v fingerprint=%q", first.Cached, first.Fingerprint)
	}

	// The repeat must be a cache hit on the same address.
	again, _, err := c.Analyze(ctx, service.AnalyzeRequest{Name: "ev", Workload: edf.EventWorkload(tasks)})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Fingerprint != first.Fingerprint {
		t.Errorf("repeat: cached=%v fp=%q want %q", again.Cached, again.Fingerprint, first.Fingerprint)
	}
	if st := srv.CacheStats(); st.Hits == 0 {
		t.Errorf("cache never hit: %+v", st)
	}

	// Domain separation end to end: a sporadic set built from the same
	// (C, D, T=cycle) numbers must get a different fingerprint.
	sporadic := edf.TaskSet{{WCET: 2, Deadline: 9, Period: 10}}
	sp, _, err := c.Analyze(ctx, service.AnalyzeRequest{Workload: edf.SporadicWorkload(sporadic)})
	if err != nil {
		t.Fatal(err)
	}
	evTwin, _, err := c.Analyze(ctx, service.AnalyzeRequest{Workload: edf.EventWorkload([]edf.EventTask{
		{WCET: 2, Deadline: 9, Stream: edf.PeriodicStream(10)},
	})})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Fingerprint == evTwin.Fingerprint {
		t.Errorf("sporadic and event twins share fingerprint %s", sp.Fingerprint)
	}
	if evTwin.Cached || sp.Cached {
		t.Errorf("twins unexpectedly cached: %v %v", sp.Cached, evTwin.Cached)
	}
}

func mustAnalyzer(t *testing.T, name string) edf.Analyzer {
	t.Helper()
	a, ok := edf.AnalyzerByName(name)
	if !ok {
		t.Fatalf("analyzer %q missing", name)
	}
	return a
}

// TestE2EEventWorkloadBatch mixes both models in one batch and checks the
// capability gate: event workloads on a non-event analyzer report the
// typed error per job without failing the request.
func TestE2EEventWorkloadBatch(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()
	req := service.BatchRequest{
		Sets: []service.WorkloadSet{
			{Name: "s", Workload: edf.SporadicWorkload(edf.TaskSet{{WCET: 2, Deadline: 8, Period: 10}})},
			{Name: "e", Workload: edf.EventWorkload(e2eEventTasks())},
		},
		Analyzers: []string{"qpa", "allapprox"},
	}
	resp, _, err := c.Batch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	// Jobs 0,1: sporadic set on qpa and allapprox — both fine.
	for i := range 2 {
		if resp.Results[i].Err != "" || resp.Results[i].Model != "sporadic" {
			t.Errorf("job %d: %+v", i, resp.Results[i])
		}
	}
	// Job 2: events x qpa — capability error, undecided, never cached.
	if jr := resp.Results[2]; jr.Err == "" || jr.Result.Verdict != "undecided" || jr.Cached {
		t.Errorf("events x qpa: %+v", jr)
	}
	// Job 3: events x allapprox — runs.
	if jr := resp.Results[3]; jr.Err != "" || jr.Model != "events" || jr.Result.Verdict != "feasible" {
		t.Errorf("events x allapprox: %+v", jr)
	}

	// The repeat caches the runnable jobs and re-reports the capability
	// error deterministically.
	resp2, _, err := c.Batch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range resp2.Results {
		if i == 2 {
			if jr.Err == "" || jr.Cached {
				t.Errorf("repeat events x qpa: %+v", jr)
			}
			continue
		}
		if !jr.Cached {
			t.Errorf("repeat job %d not cached: %+v", i, jr)
		}
	}

	// An event workload on an explicitly non-event analyzer via analyze
	// is a client error, not a 5xx.
	_, _, err = c.Analyze(ctx, service.AnalyzeRequest{
		Workload: edf.EventWorkload(e2eEventTasks()), Analyzer: "qpa",
	})
	var ce *client.Error
	if !asClientError(err, &ce) || ce.StatusCode != 422 {
		t.Errorf("events on qpa via analyze: %v", err)
	}
}

// TestE2EEventSessionLifecycle drives an event-model admission session:
// seeding fixes the model, proposals must match it, and verdicts agree
// with the cascade's event path.
func TestE2EEventSessionLifecycle(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	sess, state, err := c.OpenSession(ctx, service.SessionRequest{
		Workload: edf.EventWorkload(e2eEventTasks()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if state.Model != "events" || state.Committed != 2 {
		t.Fatalf("open state: %+v", state)
	}

	// A sporadic proposal into an event session is refused outright.
	_, err = sess.Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{WCET: 1, Deadline: 10, Period: 10}),
	})
	var ce *client.Error
	if !asClientError(err, &ce) || ce.StatusCode != 422 {
		t.Errorf("cross-model propose: %v", err)
	}

	// An admissible event task stages; an overload event task is rejected
	// by the utilization gate.
	ok, err := sess.Propose(ctx, service.ProposeRequest{
		Task: service.EventTask(edf.EventTask{Name: "x", WCET: 1, Deadline: 30, Stream: edf.PeriodicStream(100)}),
	})
	if err != nil || !ok.Admitted || ok.Pending != 1 {
		t.Fatalf("event propose: %+v, %v", ok, err)
	}
	hog, err := sess.Propose(ctx, service.ProposeRequest{
		Task: service.EventTask(edf.EventTask{Name: "hog", WCET: 90, Deadline: 100, Stream: edf.PeriodicStream(100)}),
	})
	if err != nil || hog.Admitted || hog.Result.Verdict != "infeasible" {
		t.Fatalf("event overload: %+v, %v", hog, err)
	}
	if commit, err := sess.Commit(ctx); err != nil || commit.Committed != 3 {
		t.Fatalf("commit: %+v, %v", commit, err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestE2EProposeBatch pins the bulk endpoint: verdicts in order, each
// decision seeing its predecessors, state identical to the equivalent
// singles.
func TestE2EProposeBatch(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	sess, _, err := c.OpenSession(ctx, service.SessionRequest{})
	if err != nil {
		t.Fatal(err)
	}
	// Three tasks of 40% each: the third must fail the utilization gate
	// because the first two are already staged when it is decided.
	task := func(name string) service.WorkloadTask {
		return service.SporadicTask(edf.Task{Name: name, WCET: 40, Deadline: 90, Period: 100})
	}
	resp, err := sess.ProposeBatch(ctx, service.ProposeBatchRequest{
		Tasks: []service.WorkloadTask{task("a"), task("b"), task("c")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d verdicts", len(resp.Results))
	}
	if !resp.Results[0].Admitted || !resp.Results[1].Admitted {
		t.Errorf("first two rejected: %+v", resp.Results)
	}
	if resp.Results[2].Admitted {
		t.Errorf("third admitted past the budget: %+v", resp.Results[2])
	}
	if p := resp.Results[2].Pending; p != 2 {
		t.Errorf("pending after bulk: %d", p)
	}

	// An empty batch is a client error.
	_, err = sess.ProposeBatch(ctx, service.ProposeBatchRequest{})
	var ce *client.Error
	if !asClientError(err, &ce) || ce.StatusCode != 422 {
		t.Errorf("empty propose-batch: %v", err)
	}

	// A malformed member fails the whole batch without staging anything.
	_, err = sess.ProposeBatch(ctx, service.ProposeBatchRequest{
		Tasks: []service.WorkloadTask{
			task("ok"),
			service.SporadicTask(edf.Task{Name: "bad", WCET: -1, Deadline: 1, Period: 1}),
		},
	})
	if !asClientError(err, &ce) || ce.StatusCode != 422 {
		t.Errorf("invalid member: %v", err)
	}
	state, _, err := sess.State(ctx)
	if err != nil || state.Pending != 2 {
		t.Errorf("state changed on failed batch: %+v, %v", state, err)
	}
}

// TestE2EProposeBatchConcurrent races bulk proposals from several clients
// and checks the invariant the per-session lock must hold: the number of
// admitted verdicts equals the final task count, and utilization never
// exceeds 1.
func TestE2EProposeBatchConcurrent(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()
	sess, _, err := c.OpenSession(ctx, service.SessionRequest{})
	if err != nil {
		t.Fatal(err)
	}

	const (
		clients = 8
		perReq  = 5
	)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		admitted int
	)
	for g := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var tasks []service.WorkloadTask
			for i := range perReq {
				tasks = append(tasks, service.SporadicTask(edf.Task{
					Name: fmt.Sprintf("g%d-%d", g, i),
					WCET: 3, Deadline: 80, Period: 100, // 3% each, ~33 fit
				}))
			}
			resp, err := sess.ProposeBatch(ctx, service.ProposeBatchRequest{Tasks: tasks})
			if err != nil {
				t.Error(err)
				return
			}
			if len(resp.Results) != perReq {
				t.Errorf("client %d: %d verdicts", g, len(resp.Results))
			}
			n := 0
			for _, r := range resp.Results {
				if r.Admitted {
					n++
				}
			}
			mu.Lock()
			admitted += n
			mu.Unlock()
		}()
	}
	wg.Wait()

	commit, err := sess.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if commit.Committed != admitted {
		t.Errorf("admitted %d but committed %d", admitted, commit.Committed)
	}
	if commit.Utilization > 1.0000001 {
		t.Errorf("utilization %v exceeds 1", commit.Utilization)
	}
	if admitted == 0 {
		t.Error("no proposal admitted at all")
	}
}

// TestSessionTTLSweep covers the idle-TTL sweeper end to end: an idle
// session eventually 404s, a session kept busy survives, and the metrics
// page counts the expiry. Timing is one-sided (a generous poll deadline,
// frequent keep-alive touches) so the test cannot flake on a slow
// machine; only an extreme scheduler stall (most of a second) could make
// the busy session expire spuriously.
func TestSessionTTLSweep(t *testing.T) {
	const ttl = time.Second
	srv := service.New(service.Config{SessionTTL: ttl})
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	idle, _, err := c.OpenSession(ctx, service.SessionRequest{})
	if err != nil {
		t.Fatal(err)
	}
	busy, _, err := c.OpenSession(ctx, service.SessionRequest{})
	if err != nil {
		t.Fatal(err)
	}

	// Touch the busy session every ttl/10 while waiting for the idle one
	// to be swept. The idle session is probed at most every 1.5·ttl so a
	// failed probe (which refreshes its clock) always leaves room for the
	// next sweep to catch it fully idle.
	deadline := time.Now().Add(15 * time.Second)
	lastIdleProbe := time.Time{}
	for {
		if _, _, err := busy.State(ctx); err != nil {
			t.Fatalf("touched session died: %v", err)
		}
		if time.Since(lastIdleProbe) > 3*ttl/2 {
			lastIdleProbe = time.Now()
			_, _, err := idle.State(ctx)
			var ce *client.Error
			if asClientError(err, &ce) && ce.StatusCode == 404 {
				break // swept
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session never expired")
		}
		time.Sleep(ttl / 10)
	}

	page, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !metricPositive(page, "edfd_sessions_expired") {
		t.Errorf("metrics missing a positive sessions_expired:\n%s", page)
	}
	if !metricPositive(page, "edfd_sessions_active") {
		t.Errorf("busy session not counted active:\n%s", page)
	}
}

// metricPositive reports whether the metrics page carries a positive
// value for name.
func metricPositive(page, name string) bool {
	for _, line := range strings.Split(page, "\n") {
		var v int
		if n, _ := fmt.Sscanf(strings.TrimSpace(line), name+" %d", &v); n == 1 && v > 0 {
			return true
		}
	}
	return false
}
