package service

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync/atomic"

	"repro/internal/obs"
)

// histBuckets is the number of log2 latency buckets: bucket i counts
// samples <= 2^i nanoseconds, and the last bucket absorbs everything
// beyond (~4.3 s) so no sample is ever dropped.
const histBuckets = 33

// latencyHist is a lock-free log2 histogram of nanosecond latencies. The
// exported form — cumulative "le" bucket counters — is summable across
// replicas, which is exactly how the proxy aggregates fleet quantiles;
// p50/p99 are derived at render time and never stored.
type latencyHist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// bucketOf maps a latency to its bucket index: the smallest i with
// ns <= 2^i.
func bucketOf(ns int64) int {
	if ns <= 1 {
		return 0
	}
	b := bits.Len64(uint64(ns - 1))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// observe records n samples of the same latency (n > 1 is the batch
// path, which spreads one request's wall time evenly over its tasks).
func (h *latencyHist) observe(ns int64, n int) {
	if n <= 0 {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(uint64(n))
	h.count.Add(uint64(n))
	h.sum.Add(uint64(ns) * uint64(n))
}

// snapshot copies the bucket counters (non-cumulative).
func (h *latencyHist) snapshot() (b [histBuckets]uint64, count, sum uint64) {
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
	}
	return b, h.count.Load(), h.sum.Load()
}

// histQuantile returns the upper bound of the bucket holding the q-th
// sample — the same conservative estimate for one replica and for a
// summed fleet. Zero samples yield zero.
func histQuantile(b [histBuckets]uint64, count uint64, q float64) int64 {
	if count == 0 {
		return 0
	}
	rank := uint64(q * float64(count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range b {
		cum += n
		if cum >= rank {
			return int64(1) << i
		}
	}
	return int64(1) << (histBuckets - 1)
}

// metrics holds the server's own counters. Cache and session numbers are
// pulled from their owners at render time, so this struct only tracks
// request-level activity.
type metrics struct {
	requests       atomic.Uint64 // requests accepted into a handler
	throttled      atomic.Uint64 // requests rejected by the concurrency limiter
	errors         atomic.Uint64 // 4xx/5xx responses
	analyses       atomic.Uint64 // single analyses served (cache hits included)
	eventAnalyses  atomic.Uint64 // the subset of analyses on event-stream workloads
	batchJobs      atomic.Uint64 // batch jobs served (cache hits included)
	proposals      atomic.Uint64 // session proposals served (bulk members included)
	proposeBatches atomic.Uint64 // propose-batch requests served
	inflight       atomic.Int64  // requests currently inside a handler
	maxInflight    atomic.Int64  // high-water mark of inflight

	// proposeNS tracks per-proposal decision latency; incremental and
	// escalated split the proposals by which path decided them.
	proposeNS   latencyHist
	incremental atomic.Uint64
	escalated   atomic.Uint64

	// Partition activity: placement requests by outcome, plus how the
	// per-bin verification work split between fresh analyzer runs and the
	// content-addressed cache (the O(1) utilization gate rejections never
	// reach either).
	partitionRequests       atomic.Uint64
	partitionFeasible       atomic.Uint64
	partitionInfeasible     atomic.Uint64
	partitionBinChecks      atomic.Uint64
	partitionBinCacheHits   atomic.Uint64
	partitionGateRejections atomic.Uint64

	// promotions counts analyses (single, batch and proposal escalations)
	// that left the bounded-denominator arithmetic fast path — values
	// promoted to big rationals plus whole analyses falling back because
	// no chunk plan fit the workload's periods.
	promotions atomic.Uint64

	// Durable-store activity (only rendered when a store is configured).
	// resumed counts sessions replayed at startup, rehydrated counts
	// lazy takeover loads, journalErrors counts failed log/snapshot
	// writes (each logged with its cause).
	resumed       atomic.Uint64
	rehydrated    atomic.Uint64
	journalErrors atomic.Uint64
}

// enter records a request entering a handler and keeps the high-water
// mark of concurrent requests.
func (m *metrics) enter() {
	m.requests.Add(1)
	cur := m.inflight.Add(1)
	for {
		peak := m.maxInflight.Load()
		if cur <= peak || m.maxInflight.CompareAndSwap(peak, cur) {
			return
		}
	}
}

func (m *metrics) leave() { m.inflight.Add(-1) }

// writeMetrics renders the server's counters as a valid Prometheus text
// exposition page: one # HELP / # TYPE header per family, samples
// unlabeled (the proxy adds replica labels when it aggregates). Metric
// names are unchanged from the pre-exposition format, so existing
// scrapers keep matching.
func (s *Server) writeMetrics(w io.Writer) {
	cs := s.cache.Stats()
	active, created, expired := s.sessions.counts()
	published, dropped, subscribers := s.hub.Stats()
	ew := obs.NewExpositionWriter(w)
	counter := func(name, help string, v uint64) {
		ew.Family(name, obs.Counter, help)
		ew.Sample(name, nil, float64(v))
	}
	gauge := func(name, help string, v float64) {
		ew.Family(name, obs.Gauge, help)
		ew.Sample(name, nil, v)
	}
	counter("edfd_requests_total", "Requests accepted into a handler.", s.m.requests.Load())
	counter("edfd_requests_throttled", "Requests rejected by the concurrency limiter.", s.m.throttled.Load())
	counter("edfd_requests_errors", "Requests answered with a 4xx/5xx error body.", s.m.errors.Load())
	gauge("edfd_requests_inflight", "Requests currently inside a handler.", float64(s.m.inflight.Load()))
	gauge("edfd_requests_inflight_peak", "High-water mark of concurrent requests.", float64(s.m.maxInflight.Load()))
	counter("edfd_analyses_total", "Single analyses served, cache hits included.", s.m.analyses.Load())
	counter("edfd_analyses_events_total", "Analyses on event-stream workloads.", s.m.eventAnalyses.Load())
	counter("edfd_batch_jobs_total", "Batch jobs served, cache hits included.", s.m.batchJobs.Load())
	counter("edfd_partition_requests_total", "Partitioned placement requests served.", s.m.partitionRequests.Load())
	counter("edfd_partition_feasible_total", "Placement requests answered with a proven placement.", s.m.partitionFeasible.Load())
	counter("edfd_partition_infeasible_total", "Placement requests answered with a counterexample.", s.m.partitionInfeasible.Load())
	counter("edfd_partition_bin_checks_total", "Per-bin feasibility verdicts consulted during placement.", s.m.partitionBinChecks.Load())
	counter("edfd_partition_bin_cache_hits_total", "Bin verdicts served from the content-addressed cache.", s.m.partitionBinCacheHits.Load())
	counter("edfd_partition_gate_rejections_total", "Candidate bins dismissed by the O(1) utilization gate.", s.m.partitionGateRejections.Load())
	counter("edfd_session_proposals_total", "Session proposals decided, bulk members included.", s.m.proposals.Load())
	counter("edfd_session_propose_batches_total", "Propose-batch requests served.", s.m.proposeBatches.Load())
	counter("edfd_session_proposals_incremental_total", "Proposals decided by the O(delta) paths (gate or certificate).", s.m.incremental.Load())
	counter("edfd_session_proposals_escalated_total", "Proposals decided by a full analyzer run.", s.m.escalated.Load())
	counter("edfd_arith_promotions_total", "Analyses that left the bounded-denominator arithmetic fast path (big-rational promotions plus whole-analysis fallbacks).", s.m.promotions.Load())
	gauge("edfd_sessions_active", "Admission sessions currently open.", float64(active))
	counter("edfd_sessions_created", "Admission sessions opened over the server's lifetime.", created)
	counter("edfd_sessions_expired", "Admission sessions closed by the idle TTL sweeper.", expired)
	counter("edfd_cache_hits", "Result cache hits.", cs.Hits)
	counter("edfd_cache_misses", "Result cache misses.", cs.Misses)
	counter("edfd_cache_evictions", "Result cache evictions.", cs.Evictions)
	gauge("edfd_cache_entries", "Result cache entries resident.", float64(cs.Entries))
	gauge("edfd_cache_capacity", "Result cache capacity.", float64(cs.Capacity))
	ew.Family("edfd_cache_hit_rate", obs.Gauge, "Hits over lookups, 0 when the cache is idle.")
	ew.SampleString("edfd_cache_hit_rate", nil, fmt.Sprintf("%.4f", cs.HitRate()))
	counter("edfd_events_published_total", "Admission feed events published.", published)
	counter("edfd_events_dropped_total", "Feed events dropped on saturated subscriber buffers.", dropped)
	gauge("edfd_event_subscribers", "Feed subscribers currently connected.", float64(subscribers))

	if s.store != nil {
		st := s.store.Stats()
		counter("edfd_store_records_total", "Decision records written to the write-ahead log.", st.Records)
		counter("edfd_store_appends_total", "Append/Submit calls against the store.", st.Appends)
		counter("edfd_store_flushes_total", "Group-commit batches flushed.", st.Flushes)
		counter("edfd_store_syncs_total", "fsync calls amortized by group commit.", st.Syncs)
		counter("edfd_store_bytes_total", "Bytes written to the write-ahead log.", st.Bytes)
		counter("edfd_store_snapshots_total", "Compacting snapshots written.", st.Snapshots)
		counter("edfd_store_truncations_total", "Damaged log tails truncated during replay.", st.Truncations)
		counter("edfd_store_sessions_resumed_total", "Sessions replayed back to life at startup.", s.m.resumed.Load())
		counter("edfd_store_sessions_rehydrated_total", "Sessions rehydrated on demand (takeover path).", s.m.rehydrated.Load())
		counter("edfd_store_journal_errors_total", "Failed journal or snapshot writes.", s.m.journalErrors.Load())
	}

	// Buckets are rendered cumulatively ("le" semantics): sums of
	// cumulative counters across replicas stay cumulative, so the proxy
	// can add them up and re-derive fleet quantiles.
	hb, hcount, hsum := s.m.proposeNS.snapshot()
	ew.Family("edfd_propose_ns", obs.Histogram, "Per-proposal decision latency in nanoseconds, log2 buckets.")
	var cum uint64
	for i := range hb {
		cum += hb[i]
		ew.Sample("edfd_propose_ns_bucket", []obs.Label{{Name: "le", Value: strconv.FormatInt(int64(1)<<i, 10)}}, float64(cum))
	}
	ew.Sample("edfd_propose_ns_bucket", []obs.Label{{Name: "le", Value: "+Inf"}}, float64(hcount))
	ew.Sample("edfd_propose_ns_sum", nil, float64(hsum))
	ew.Sample("edfd_propose_ns_count", nil, float64(hcount))
	gauge("edfd_propose_ns_p50", "Median proposal latency, derived from the histogram.", float64(histQuantile(hb, hcount, 0.50)))
	gauge("edfd_propose_ns_p99", "99th-percentile proposal latency, derived from the histogram.", float64(histQuantile(hb, hcount, 0.99)))
}
