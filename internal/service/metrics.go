package service

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync/atomic"
)

// histBuckets is the number of log2 latency buckets: bucket i counts
// samples <= 2^i nanoseconds, and the last bucket absorbs everything
// beyond (~4.3 s) so no sample is ever dropped.
const histBuckets = 33

// latencyHist is a lock-free log2 histogram of nanosecond latencies. The
// exported form — cumulative "le" bucket counters — is summable across
// replicas, which is exactly how the proxy aggregates fleet quantiles;
// p50/p99 are derived at render time and never stored.
type latencyHist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// bucketOf maps a latency to its bucket index: the smallest i with
// ns <= 2^i.
func bucketOf(ns int64) int {
	if ns <= 1 {
		return 0
	}
	b := bits.Len64(uint64(ns - 1))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// observe records n samples of the same latency (n > 1 is the batch
// path, which spreads one request's wall time evenly over its tasks).
func (h *latencyHist) observe(ns int64, n int) {
	if n <= 0 {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(uint64(n))
	h.count.Add(uint64(n))
	h.sum.Add(uint64(ns) * uint64(n))
}

// snapshot copies the bucket counters (non-cumulative).
func (h *latencyHist) snapshot() (b [histBuckets]uint64, count, sum uint64) {
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
	}
	return b, h.count.Load(), h.sum.Load()
}

// histQuantile returns the upper bound of the bucket holding the q-th
// sample — the same conservative estimate for one replica and for a
// summed fleet. Zero samples yield zero.
func histQuantile(b [histBuckets]uint64, count uint64, q float64) int64 {
	if count == 0 {
		return 0
	}
	rank := uint64(q * float64(count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range b {
		cum += n
		if cum >= rank {
			return int64(1) << i
		}
	}
	return int64(1) << (histBuckets - 1)
}

// metrics holds the server's own counters. Cache and session numbers are
// pulled from their owners at render time, so this struct only tracks
// request-level activity.
type metrics struct {
	requests       atomic.Uint64 // requests accepted into a handler
	throttled      atomic.Uint64 // requests rejected by the concurrency limiter
	errors         atomic.Uint64 // 4xx/5xx responses
	analyses       atomic.Uint64 // single analyses served (cache hits included)
	eventAnalyses  atomic.Uint64 // the subset of analyses on event-stream workloads
	batchJobs      atomic.Uint64 // batch jobs served (cache hits included)
	proposals      atomic.Uint64 // session proposals served (bulk members included)
	proposeBatches atomic.Uint64 // propose-batch requests served
	inflight       atomic.Int64  // requests currently inside a handler
	maxInflight    atomic.Int64  // high-water mark of inflight

	// proposeNS tracks per-proposal decision latency; incremental and
	// escalated split the proposals by which path decided them.
	proposeNS   latencyHist
	incremental atomic.Uint64
	escalated   atomic.Uint64
}

// enter records a request entering a handler and keeps the high-water
// mark of concurrent requests.
func (m *metrics) enter() {
	m.requests.Add(1)
	cur := m.inflight.Add(1)
	for {
		peak := m.maxInflight.Load()
		if cur <= peak || m.maxInflight.CompareAndSwap(peak, cur) {
			return
		}
	}
}

func (m *metrics) leave() { m.inflight.Add(-1) }

// write renders every counter as "edfd_<name> <value>" lines, one metric
// per line in sorted order — trivially scrapable, no client library
// needed.
func (s *Server) writeMetrics(w io.Writer) {
	cs := s.cache.Stats()
	active, created, expired := s.sessions.counts()
	vals := map[string]any{
		"requests_total":                      s.m.requests.Load(),
		"requests_throttled":                  s.m.throttled.Load(),
		"requests_errors":                     s.m.errors.Load(),
		"requests_inflight":                   s.m.inflight.Load(),
		"requests_inflight_peak":              s.m.maxInflight.Load(),
		"analyses_total":                      s.m.analyses.Load(),
		"analyses_events_total":               s.m.eventAnalyses.Load(),
		"batch_jobs_total":                    s.m.batchJobs.Load(),
		"session_proposals_total":             s.m.proposals.Load(),
		"session_propose_batches_total":       s.m.proposeBatches.Load(),
		"sessions_active":                     active,
		"sessions_created":                    created,
		"sessions_expired":                    expired,
		"cache_hits":                          cs.Hits,
		"cache_misses":                        cs.Misses,
		"cache_evictions":                     cs.Evictions,
		"cache_entries":                       cs.Entries,
		"cache_capacity":                      cs.Capacity,
		"cache_hit_rate":                      fmt.Sprintf("%.4f", cs.HitRate()),
		"session_proposals_incremental_total": s.m.incremental.Load(),
		"session_proposals_escalated_total":   s.m.escalated.Load(),
	}
	// Buckets are rendered cumulatively ("le" semantics): sums of
	// cumulative counters across replicas stay cumulative, so the proxy
	// can add them up and re-derive fleet quantiles.
	hb, hcount, hsum := s.m.proposeNS.snapshot()
	var cum uint64
	for i := range hb {
		cum += hb[i]
		vals[fmt.Sprintf("propose_ns_bucket_le_%d", int64(1)<<i)] = cum
	}
	vals["propose_ns_count"] = hcount
	vals["propose_ns_sum"] = hsum
	vals["propose_ns_p50"] = histQuantile(hb, hcount, 0.50)
	vals["propose_ns_p99"] = histQuantile(hb, hcount, 0.99)
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "edfd_%s %v\n", name, vals[name])
	}
}
