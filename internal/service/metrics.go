package service

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// metrics holds the server's own counters. Cache and session numbers are
// pulled from their owners at render time, so this struct only tracks
// request-level activity.
type metrics struct {
	requests       atomic.Uint64 // requests accepted into a handler
	throttled      atomic.Uint64 // requests rejected by the concurrency limiter
	errors         atomic.Uint64 // 4xx/5xx responses
	analyses       atomic.Uint64 // single analyses served (cache hits included)
	eventAnalyses  atomic.Uint64 // the subset of analyses on event-stream workloads
	batchJobs      atomic.Uint64 // batch jobs served (cache hits included)
	proposals      atomic.Uint64 // session proposals served (bulk members included)
	proposeBatches atomic.Uint64 // propose-batch requests served
	inflight       atomic.Int64  // requests currently inside a handler
	maxInflight    atomic.Int64  // high-water mark of inflight
}

// enter records a request entering a handler and keeps the high-water
// mark of concurrent requests.
func (m *metrics) enter() {
	m.requests.Add(1)
	cur := m.inflight.Add(1)
	for {
		peak := m.maxInflight.Load()
		if cur <= peak || m.maxInflight.CompareAndSwap(peak, cur) {
			return
		}
	}
}

func (m *metrics) leave() { m.inflight.Add(-1) }

// write renders every counter as "edfd_<name> <value>" lines, one metric
// per line in sorted order — trivially scrapable, no client library
// needed.
func (s *Server) writeMetrics(w io.Writer) {
	cs := s.cache.Stats()
	active, created, expired := s.sessions.counts()
	vals := map[string]any{
		"requests_total":                s.m.requests.Load(),
		"requests_throttled":            s.m.throttled.Load(),
		"requests_errors":               s.m.errors.Load(),
		"requests_inflight":             s.m.inflight.Load(),
		"requests_inflight_peak":        s.m.maxInflight.Load(),
		"analyses_total":                s.m.analyses.Load(),
		"analyses_events_total":         s.m.eventAnalyses.Load(),
		"batch_jobs_total":              s.m.batchJobs.Load(),
		"session_proposals_total":       s.m.proposals.Load(),
		"session_propose_batches_total": s.m.proposeBatches.Load(),
		"sessions_active":               active,
		"sessions_created":              created,
		"sessions_expired":              expired,
		"cache_hits":                    cs.Hits,
		"cache_misses":                  cs.Misses,
		"cache_evictions":               cs.Evictions,
		"cache_entries":                 cs.Entries,
		"cache_capacity":                cs.Capacity,
		"cache_hit_rate":                fmt.Sprintf("%.4f", cs.HitRate()),
	}
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "edfd_%s %v\n", name, vals[name])
	}
}
