// Back-compat pin: the exact JSON bodies the PR-2-era service accepted —
// no "model" discriminator anywhere — must keep parsing and must produce
// identical result semantics (verdicts, fingerprints, session behavior)
// under the workload schema. The bodies are raw strings on purpose: they
// must never be regenerated through the current marshalers.
package service_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	edf "repro"
	"repro/internal/service"
)

// postRaw sends a verbatim JSON body and decodes the reply into out.
func postRaw(t *testing.T, hs *httptest.Server, path, body string, out any) *http.Response {
	t.Helper()
	resp, err := hs.Client().Post(hs.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding reply: %v", path, err)
		}
	}
	return resp
}

// compatSet is the PR-2 README's analyze example, as the facade sees it.
var compatSet = edf.TaskSet{
	{WCET: 2, Deadline: 8, Period: 10},
	{WCET: 3, Deadline: 15, Period: 15},
	{WCET: 10, Deadline: 80, Period: 100},
}

func TestCompatAnalyzePR2Body(t *testing.T) {
	srv := service.New(service.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	const body = `{"name":"demo","tasks":[
		{"wcet":2,"deadline":8,"period":10},
		{"wcet":3,"deadline":15,"period":15},
		{"wcet":10,"deadline":80,"period":100}],
		"analyzer":"allapprox","options":{"arithmetic":"float64"}}`

	var out service.AnalyzeResponse
	if resp := postRaw(t, hs, "/v1/analyze", body, &out); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := edf.AllApprox(compatSet, edf.Options{Arithmetic: edf.ArithFloat64})
	if out.Result.Verdict != want.Verdict.String() || out.Result.Iterations != want.Iterations {
		t.Errorf("verdict drifted: %+v, want %s/%d", out.Result, want.Verdict, want.Iterations)
	}
	if out.Analyzer != "allapprox" || out.Name != "demo" {
		t.Errorf("request fields lost: %+v", out)
	}
	if out.Model != "sporadic" {
		t.Errorf("modelless body classified as %q", out.Model)
	}
	// The fingerprint must equal the one the facade computes today, which
	// the engine pins byte-for-byte to the PR-2 encoding.
	fp, ok := edf.Fingerprint(compatSet, "allapprox", edf.Options{Arithmetic: edf.ArithFloat64})
	if !ok || out.Fingerprint != fp {
		t.Errorf("fingerprint %q, want %q", out.Fingerprint, fp)
	}

	// The same body again is a cache hit on the same address.
	var again service.AnalyzeResponse
	postRaw(t, hs, "/v1/analyze", body, &again)
	if !again.Cached || again.Fingerprint != out.Fingerprint {
		t.Errorf("replay not cached: %+v", again)
	}
}

func TestCompatBatchPR2Body(t *testing.T) {
	srv := service.New(service.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	const body = `{"sets":[
		{"name":"a","tasks":[{"wcet":2,"deadline":8,"period":10}]},
		{"name":"b","tasks":[{"wcet":3,"deadline":4,"period":10},
		                     {"wcet":4,"deadline":5,"period":10},
		                     {"wcet":3,"deadline":6,"period":10}]}],
		"analyzers":["devi","allapprox"],"workers":2}`

	var out service.BatchResponse
	if resp := postRaw(t, hs, "/v1/batch", body, &out); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(out.Results))
	}
	setA := edf.TaskSet{{WCET: 2, Deadline: 8, Period: 10}}
	setB := edf.TaskSet{
		{WCET: 3, Deadline: 4, Period: 10},
		{WCET: 4, Deadline: 5, Period: 10},
		{WCET: 3, Deadline: 6, Period: 10},
	}
	want := []string{
		edf.Devi(setA).Verdict.String(),
		edf.AllApprox(setA, edf.Options{}).Verdict.String(),
		edf.Devi(setB).Verdict.String(),
		edf.AllApprox(setB, edf.Options{}).Verdict.String(),
	}
	names := []string{"a", "a", "b", "b"}
	for i, jr := range out.Results {
		if jr.Err != "" {
			t.Fatalf("job %d errored: %s", i, jr.Err)
		}
		if jr.Result.Verdict != want[i] {
			t.Errorf("job %d verdict %s, want %s", i, jr.Result.Verdict, want[i])
		}
		if jr.SetName != names[i] || jr.SetIndex != i/2 {
			t.Errorf("job %d identity: %+v", i, jr)
		}
	}
}

func TestCompatSessionPR2Bodies(t *testing.T) {
	srv := service.New(service.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// PR-2 session open: a bare sporadic seed under "tasks".
	var sess service.SessionResponse
	resp := postRaw(t, hs, "/v1/sessions",
		`{"tasks":[{"name":"seed","wcet":10,"deadline":90,"period":100}]}`, &sess)
	if resp.StatusCode != 201 || sess.Committed != 1 || sess.Analyzer != "cascade" {
		t.Fatalf("open: %d %+v", resp.StatusCode, sess)
	}
	if sess.Model != "sporadic" {
		t.Errorf("seeded session model %q", sess.Model)
	}

	// PR-2 propose: a bare task object, no model anywhere.
	var prop service.ProposeResponse
	resp = postRaw(t, hs, "/v1/sessions/"+sess.ID+"/propose",
		`{"task":{"name":"a","wcet":1,"deadline":50,"period":100}}`, &prop)
	if resp.StatusCode != 200 || !prop.Admitted || prop.Pending != 1 {
		t.Fatalf("propose: %d %+v", resp.StatusCode, prop)
	}

	var commit service.CommitResponse
	resp = postRaw(t, hs, "/v1/sessions/"+sess.ID+"/commit", `{}`, &commit)
	if resp.StatusCode != 200 || commit.Moved != 1 || commit.Committed != 2 {
		t.Fatalf("commit: %d %+v", resp.StatusCode, commit)
	}

	// PR-2 empty session open.
	resp = postRaw(t, hs, "/v1/sessions", `{}`, &sess)
	if resp.StatusCode != 201 || sess.Committed != 0 || sess.Model != "sporadic" {
		t.Fatalf("empty open: %d %+v", resp.StatusCode, sess)
	}
}
