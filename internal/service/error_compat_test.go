// Back-compat pin for the error wire shape: bodies captured from the
// PR-2-era service carried only {"error": ...}. The typed shape must
// (a) decode those verbatim bodies into a usable *service.Error and
// (b) keep emitting the legacy "error" key so PR-2-era clients that
// only read it keep working.
package service_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

// pr2ErrorBodies are verbatim error replies of the PR-2-era service.
var pr2ErrorBodies = []struct {
	status int
	body   string
	code   string
	retry  bool
}{
	{400, `{"error":"unknown analyzer \"nope\" (see GET /v1/analyzers)"}`, service.CodeBadRequest, false},
	{404, `{"error":"unknown session"}`, service.CodeNotFound, false},
	{422, `{"error":"task 0: wcet must be positive"}`, service.CodeUnprocessable, false},
	{429, `{"error":"server at capacity, retry later"}`, service.CodeCapacity, true},
	{503, `{"error":"analysis canceled: context deadline exceeded"}`, service.CodeUnavailable, true},
}

func TestCompatPR2ErrorBodiesDecode(t *testing.T) {
	for _, tc := range pr2ErrorBodies {
		var er service.ErrorResponse
		if err := json.Unmarshal([]byte(tc.body), &er); err != nil {
			t.Fatalf("%d: %v", tc.status, err)
		}
		se := er.Err(tc.status)
		var legacy struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal([]byte(tc.body), &legacy)
		if se.Message != legacy.Error {
			t.Errorf("%d: message %q, want the legacy error text %q", tc.status, se.Message, legacy.Error)
		}
		if se.Code != tc.code {
			t.Errorf("%d: code %q, want %q", tc.status, se.Code, tc.code)
		}
		if se.Retryable != tc.retry {
			t.Errorf("%d: retryable %v, want %v", tc.status, se.Retryable, tc.retry)
		}
	}
}

// TestCompatErrorBodyKeepsLegacyKey hits the modern server with a bad
// request and requires the raw reply to keep the "error" key equal to
// the typed message — the shape a PR-2-era client decodes.
func TestCompatErrorBodyKeepsLegacyKey(t *testing.T) {
	srv := service.New(service.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp, err := hs.Client().Post(hs.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"tasks":[{"wcet":1,"deadline":2,"period":2}],"analyzer":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var wire map[string]any
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	if wire["error"] == "" || wire["error"] != wire["message"] {
		t.Errorf("legacy key diverged from message: %s", raw)
	}
	if wire["code"] != service.CodeBadRequest {
		t.Errorf("code %v, want %q", wire["code"], service.CodeBadRequest)
	}

	var er service.ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	se := er.Err(resp.StatusCode)
	if se.Code != service.CodeBadRequest || se.Message == "" || se.Retryable {
		t.Errorf("typed decode: %+v", se)
	}
}
