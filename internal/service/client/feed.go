package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// Feed reconnect pacing: a dropped stream is redialed after
// feedBackoffMin, doubling up to feedBackoffMax between attempts.
const (
	feedBackoffMin = 200 * time.Millisecond
	feedBackoffMax = 2 * time.Second
)

// Trace fetches one trace's span record. Against edfproxy the reply is
// the merged fleet view — proxy routing spans plus replica spans labeled
// with their origin; against a plain edfd it is the replica's own record.
func (c *Client) Trace(ctx context.Context, id string) (obs.Trace, error) {
	var out obs.Trace
	err := c.do(ctx, http.MethodGet, "/v1/traces/"+url.PathEscape(id), nil, &out)
	return out, err
}

// Traces lists recent trace summaries, newest first (n <= 0 takes the
// server default).
func (c *Client) Traces(ctx context.Context, n int) ([]obs.TraceSummary, error) {
	path := "/v1/traces"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var out service.TracesResponse
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out.Traces, err
}

// Events subscribes to one session's live admission feed. The first
// connection is made synchronously — an unknown session errors here, not
// on the channel — and the stream then reconnects on EOF with backoff
// until ctx ends or the session disappears, at which point the channel
// closes. Works identically against edfd and edfproxy (the proxy relays
// the owner replica's stream).
func (c *Client) Events(ctx context.Context, sessionID string) (<-chan obs.Event, error) {
	return c.streamEvents(ctx, "/v1/sessions/"+url.PathEscape(sessionID)+"/events")
}

// FleetEvents subscribes to the server-wide admission feed: every
// session's events on a plain edfd, every replica's events — labeled
// with the publishing replica — on edfproxy. Reconnects on EOF like
// Events.
func (c *Client) FleetEvents(ctx context.Context) (<-chan obs.Event, error) {
	return c.streamEvents(ctx, "/v1/events")
}

// streamEvents opens the SSE stream once (surfacing a first-connect
// failure as an error) and pumps it into a channel, redialing dropped
// connections until ctx ends or the server answers with a non-2xx
// status.
func (c *Client) streamEvents(ctx context.Context, path string) (<-chan obs.Event, error) {
	body, err := c.openStream(ctx, path)
	if err != nil {
		return nil, err
	}
	ch := make(chan obs.Event, obs.DefaultSubscriberBuffer)
	go func() {
		defer close(ch)
		backoff := feedBackoffMin
		for {
			sc := obs.NewSSEScanner(body)
			for {
				ev, err := sc.NextEvent()
				if err != nil {
					break
				}
				backoff = feedBackoffMin
				select {
				case ch <- ev:
				case <-ctx.Done():
					body.Close()
					return
				}
			}
			body.Close()
			// The stream broke (server restart, idle timeout, network blip):
			// redial after a pause. A non-2xx answer — the session was
			// closed or swept — ends the feed instead.
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff < feedBackoffMax {
				backoff *= 2
			}
			if body, err = c.openStream(ctx, path); err != nil {
				return
			}
		}
	}()
	return ch, nil
}

// openStream dials one SSE connection, returning its body on a 2xx.
func (c *Client) openStream(ctx context.Context, path string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", obs.SSEContentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		defer resp.Body.Close()
		msg := resp.Status
		var er service.ErrorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er) == nil && er.Error != "" {
			msg = er.Error
		}
		return nil, &Error{StatusCode: resp.StatusCode, Message: msg}
	}
	return resp.Body, nil
}
