// Package client is the typed Go client for the edfd feasibility service.
// It speaks the wire types of package service, so a Go caller and a curl
// caller see the same schema.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/service"
)

// Client talks to one edfd server.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for a base URL like "http://127.0.0.1:8080". A nil
// httpClient selects http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// Error is a non-2xx server reply. It wraps the server's typed
// *service.Error, so both of these work:
//
//	var ce *client.Error
//	errors.As(err, &ce) // HTTP-level view: status code included
//
//	var se *service.Error
//	errors.As(err, &se) // wire-level view: code/message/owner/retryable
type Error struct {
	StatusCode int
	Message    string
	// Code classifies the failure (the service.Code* constants), derived
	// from the status when the reply predates the typed error shape.
	Code string
	// Retryable reports whether the same request may succeed later.
	Retryable bool
	// Owner names the replica that owns the failed session when the
	// cluster proxy attributed the failure (X-Edf-Owner); "" otherwise.
	// A 503 with a non-empty Owner means the owner died and no takeover
	// peer could inherit the session — transient if the fleet shares a
	// store or the owner restarts, not a permanent rejection.
	Owner string

	cause *service.Error
}

func (e *Error) Error() string {
	if e.Owner != "" {
		return fmt.Sprintf("edfd: %d: %s (owner %s)", e.StatusCode, e.Message, e.Owner)
	}
	return fmt.Sprintf("edfd: %d: %s", e.StatusCode, e.Message)
}

// Unwrap exposes the server's typed error to errors.As.
func (e *Error) Unwrap() error {
	if e.cause == nil {
		return nil
	}
	return e.cause
}

// OwnerUnavailable reports whether the error is the cluster proxy saying
// a session's owner replica is down with no takeover peer able to serve
// it — worth retrying once the fleet recovers, unlike a 4xx rejection.
func (e *Error) OwnerUnavailable() bool {
	return e.StatusCode == http.StatusServiceUnavailable && e.Owner != ""
}

// Route describes how the cluster proxy served a request, parsed from
// the X-Edf-* response headers edfproxy adds. Against a plain edfd (no
// proxy in the path) every field is zero — the typed client works
// identically against either, Route just stays empty.
type Route struct {
	// Replica is the edfd base URL that served the request (for a split
	// batch: the comma-joined replicas).
	Replica string
	// Attempts is 1 plus the number of failovers the proxy needed.
	Attempts int
	// TraceID is the request's trace, minted (or adopted) by the server
	// and echoed on the X-Edf-Trace response header. It resolves at
	// Client.Trace against the same server.
	TraceID string
	// Owner is the replica owning the session (X-Edf-Owner) on session
	// requests routed through the proxy.
	Owner string
	// TakenOverFrom names the dead replica this session was taken over
	// from (X-Edf-Takeover) when the serving replica rehydrated it from
	// the shared store; "" on a normal sticky route.
	TakenOverFrom string
}

// TakenOver reports whether the request was served by a takeover peer
// after the session's original owner died.
func (r Route) TakenOver() bool { return r.TakenOverFrom != "" }

// routeFrom extracts the proxy routing headers, if any.
func routeFrom(h http.Header) Route {
	rt := Route{
		Replica:       h.Get("X-Edf-Replica"),
		TraceID:       h.Get(obs.TraceHeader),
		Owner:         h.Get("X-Edf-Owner"),
		TakenOverFrom: h.Get("X-Edf-Takeover"),
	}
	rt.Attempts, _ = strconv.Atoi(h.Get("X-Edf-Attempts"))
	return rt
}

// do runs one JSON round trip. A nil in sends no body; a nil out discards
// the reply body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	_, err := c.doRoute(ctx, method, path, in, out)
	return err
}

// doRoute is do plus the proxy routing metadata of the response.
func (c *Client) doRoute(ctx context.Context, method, path string, in, out any) (Route, error) {
	var body io.Reader
	if in != nil {
		payload, err := json.Marshal(in)
		if err != nil {
			return Route{}, fmt.Errorf("edfd: encoding request: %w", err)
		}
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return Route{}, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return Route{}, err
	}
	defer resp.Body.Close()
	rt := routeFrom(resp.Header)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er service.ErrorResponse
		se := &service.Error{
			Code:      service.CodeForStatus(resp.StatusCode),
			Message:   resp.Status,
			Retryable: service.RetryableStatus(resp.StatusCode),
		}
		if json.NewDecoder(resp.Body).Decode(&er) == nil && (er.Error != "" || er.Message != "") {
			se = er.Err(resp.StatusCode)
		}
		if se.Owner == "" {
			se.Owner = rt.Owner
		}
		return rt, &Error{
			StatusCode: resp.StatusCode,
			Message:    se.Message,
			Code:       se.Code,
			Retryable:  se.Retryable,
			Owner:      se.Owner,
			cause:      se,
		}
	}
	if out == nil {
		return rt, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return rt, fmt.Errorf("edfd: decoding response: %w", err)
	}
	return rt, nil
}

// Analyze runs one analysis. The Route carries the cluster routing
// metadata — which replica served, after how many failovers — when the
// request went through edfproxy; against a plain edfd it is zero.
func (c *Client) Analyze(ctx context.Context, req service.AnalyzeRequest) (service.AnalyzeResponse, Route, error) {
	var out service.AnalyzeResponse
	rt, err := c.doRoute(ctx, http.MethodPost, "/v1/analyze", req, &out)
	return out, rt, err
}

// AnalyzeRouted is Analyze.
//
// Deprecated: Analyze returns the Route itself.
func (c *Client) AnalyzeRouted(ctx context.Context, req service.AnalyzeRequest) (service.AnalyzeResponse, Route, error) {
	return c.Analyze(ctx, req)
}

// Batch fans sets x analyzers over the server's worker pool. A batch
// split across several replicas reports them comma-joined in
// Route.Replica.
func (c *Client) Batch(ctx context.Context, req service.BatchRequest) (service.BatchResponse, Route, error) {
	var out service.BatchResponse
	rt, err := c.doRoute(ctx, http.MethodPost, "/v1/batch", req, &out)
	return out, rt, err
}

// BatchRouted is Batch.
//
// Deprecated: Batch returns the Route itself.
func (c *Client) BatchRouted(ctx context.Context, req service.BatchRequest) (service.BatchResponse, Route, error) {
	return c.Batch(ctx, req)
}

// Partition places a partitioned workload onto its processors: the
// response is a feasible placement with per-processor verdicts, or a
// counterexample naming the task no heuristic could place.
func (c *Client) Partition(ctx context.Context, req service.PartitionRequest) (service.PartitionResponse, Route, error) {
	var out service.PartitionResponse
	rt, err := c.doRoute(ctx, http.MethodPost, "/v1/partition", req, &out)
	return out, rt, err
}

// Analyzers lists the server's registry.
func (c *Client) Analyzers(ctx context.Context) ([]service.AnalyzerJSON, error) {
	var out []service.AnalyzerJSON
	err := c.do(ctx, http.MethodGet, "/v1/analyzers", nil, &out)
	return out, err
}

// Schema fetches the server's wire-schema declaration: supported
// workload models, analyzers and partition heuristics.
func (c *Client) Schema(ctx context.Context) (service.SchemaResponse, error) {
	var out service.SchemaResponse
	err := c.do(ctx, http.MethodGet, "/v1/schema", nil, &out)
	return out, err
}

// Healthz checks liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the text metrics page verbatim.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &Error{StatusCode: resp.StatusCode, Message: resp.Status}
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// Session is a handle on one server-side admission session.
type Session struct {
	c *Client
	// ID is the server-assigned session id.
	ID string
}

// OpenSession starts an admission session.
func (c *Client) OpenSession(ctx context.Context, req service.SessionRequest) (*Session, service.SessionResponse, error) {
	var out service.SessionResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &out); err != nil {
		return nil, out, err
	}
	return &Session{c: c, ID: out.ID}, out, nil
}

// Session reattaches to an existing session by id — after a process
// restart, or to a session opened by another client. The server resolves
// the id (rehydrating from the durable store if it has one); the first
// call reports unknown ids as a 404 Error.
func (c *Client) Session(id string) *Session {
	return &Session{c: c, ID: id}
}

func (s *Session) path(suffix string) string { return "/v1/sessions/" + s.ID + suffix }

// State fetches the session's current counts and utilization. The
// Route includes Route.Owner and, after an owner death,
// Route.TakenOverFrom.
func (s *Session) State(ctx context.Context) (service.SessionResponse, Route, error) {
	var out service.SessionResponse
	rt, err := s.c.doRoute(ctx, http.MethodGet, s.path(""), nil, &out)
	return out, rt, err
}

// StateRouted is State.
//
// Deprecated: State returns the Route itself.
func (s *Session) StateRouted(ctx context.Context) (service.SessionResponse, Route, error) {
	return s.State(ctx)
}

// Propose stages one task if the grown set stays feasible.
func (s *Session) Propose(ctx context.Context, req service.ProposeRequest) (service.ProposeResponse, error) {
	out, _, err := s.ProposeRouted(ctx, req)
	return out, err
}

// ProposeRouted is Propose plus the cluster routing metadata, so a
// caller can observe which replica decided and whether the session was
// just taken over from a dead owner.
func (s *Session) ProposeRouted(ctx context.Context, req service.ProposeRequest) (service.ProposeResponse, Route, error) {
	var out service.ProposeResponse
	rt, err := s.c.doRoute(ctx, http.MethodPost, s.path("/propose"), req, &out)
	return out, rt, err
}

// ProposeBatch stages several tasks in one round trip, returning one
// verdict per task in request order.
func (s *Session) ProposeBatch(ctx context.Context, req service.ProposeBatchRequest) (service.ProposeBatchResponse, error) {
	var out service.ProposeBatchResponse
	err := s.c.do(ctx, http.MethodPost, s.path("/propose-batch"), req, &out)
	return out, err
}

// Commit makes every pending task permanent.
func (s *Session) Commit(ctx context.Context) (service.CommitResponse, error) {
	var out service.CommitResponse
	err := s.c.do(ctx, http.MethodPost, s.path("/commit"), struct{}{}, &out)
	return out, err
}

// Rollback discards every pending task.
func (s *Session) Rollback(ctx context.Context) (service.CommitResponse, error) {
	var out service.CommitResponse
	err := s.c.do(ctx, http.MethodPost, s.path("/rollback"), struct{}{}, &out)
	return out, err
}

// Close deletes the session server-side.
func (s *Session) Close(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, s.path(""), nil, nil)
}
