package service

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/engine"
	"repro/internal/eventstream"
	"repro/internal/incremental"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/workload"
)

// AdmissionConfig tunes an admission controller.
type AdmissionConfig struct {
	// Analyzer names the feasibility test deciding admissions; empty
	// selects the cascade (cheap-first escalation, the paper's
	// recommendation for exactly this online use case).
	Analyzer string
	// Options tune the test.
	Options core.Options
	// Seed optionally pre-commits an initial workload; it must be
	// feasible under the analyzer. Its model — sporadic for the zero
	// value — becomes the session model, and every later proposal must
	// match it. An event-model seed requires an event-capable analyzer.
	Seed workload.Workload
	// NoIncremental disables the incremental fast path even when the
	// analyzer and options are eligible, forcing a full analysis on
	// every proposal. Decisions are identical either way; the knob
	// exists for benchmarking the escalation path and as an operational
	// escape hatch.
	NoIncremental bool
	// TrustedSeed skips the seed feasibility analysis (the structural
	// validation still runs). Used by store recovery, where the seed is
	// a replayed committed set that was verified feasible when admitted:
	// re-proving it at restart would only burn startup time. All other
	// construction — utilization accumulation order, candidate buffers,
	// the incremental certificate — is identical, so a recovered
	// controller decides subsequent proposals bit-identically to the
	// uninterrupted one.
	TrustedSeed bool
}

// ProposeOutcome reports one admission decision. Its counts are taken in
// the same critical section as the decision, so they are consistent even
// when other clients race on the session.
type ProposeOutcome struct {
	// Admitted reports whether the task was staged (pending commit).
	Admitted bool
	// Result is the deciding test outcome. A utilization pre-check that
	// already rules the task out yields an Infeasible verdict with zero
	// iterations — no analyzer ran.
	Result core.Result
	// Utilization is the committed+pending utilization after the
	// decision.
	Utilization float64
	// Committed and Pending count the session's tasks after the decision.
	Committed, Pending int
	// Escalated reports that a full analyzer run decided the proposal.
	// False means the decision came from the O(delta) paths: the
	// utilization gate or the incremental certificate.
	Escalated bool
	// Path names the decision path: obs.PathGate, obs.PathFast or
	// obs.PathCascade — the string form of Escalated plus the gate/fast
	// distinction, carried onto traces and feed events.
	Path string
	// Stages holds the per-analyzer stage records of a cascade escalation
	// (empty on the gate and fast paths). It is a fixed-size value copy,
	// keeping the propose path allocation-free.
	Stages obs.StageLog
	// Promotions counts this decision's exits from the bounded-denominator
	// fast path (zero on the gate and fast paths, which never run chunked
	// arithmetic).
	Promotions uint64
}

// FinishOutcome reports a commit or rollback.
type FinishOutcome struct {
	// Moved is how many pending tasks were committed or discarded.
	Moved int
	// Committed counts the permanent tasks after the operation.
	Committed int
	// Utilization is the session utilization after the operation.
	Utilization float64
}

// AdmissionStats counts a controller's lifetime activity.
type AdmissionStats struct {
	Proposed   int64
	Admitted   int64
	Rejected   int64
	Commits    int64
	Rollbacks  int64
	Iterations int64 // total test intervals spent on admission decisions
	// FastAccepts counts proposals admitted by the incremental
	// certificate alone; Escalations counts proposals that ran a full
	// analysis (the two never overlap, and utilization-gate rejections
	// count toward neither).
	FastAccepts int64
	Escalations int64
}

// Admission is a concurrency-safe online admission controller: tasks are
// proposed one at a time (or in bulk), staged while feasibility holds,
// and made permanent (or discarded) transactionally. The session is fixed
// to one workload model at construction; sporadic sessions admit sporadic
// tasks, event sessions admit event-driven tasks.
//
// The controller is built for sustained proposal rates: it keeps the
// running utilization incrementally as an exact fast rational (so the
// reject-on-overload path costs one addition and one comparison, no
// allocation, and never consults an analyzer), caches the committed and
// pending tasks in one contiguous candidate buffer (so a proposal appends
// the candidate instead of re-materializing the whole session workload),
// and owns an analysis Scratch reused across every decision (so the
// analyzers run allocation-free in steady state).
type Admission struct {
	mu        sync.Mutex
	analyzer  engine.Analyzer
	opt       core.Options
	model     workload.Model
	committed workload.Workload
	pending   workload.Workload
	util      numeric.Fast // utilization of committed + pending
	// candTasks/candEvents hold committed followed by pending tasks in
	// admission order; a proposal appends the candidate, a rejection
	// truncates it again, a rollback truncates to the committed prefix.
	candTasks  model.TaskSet
	candEvents []eventstream.Task
	scratch    *demand.Scratch
	// stages is the reusable per-decision stage log handed to the analyzer
	// via Options.Stages; like scratch it serves one analysis at a time
	// under the mutex, and its preallocated slots keep stage capture off
	// the heap.
	stages obs.StageLog
	stats  AdmissionStats
	// inc, when non-nil, is the persistent incremental-analysis state
	// that decides most proposals in O(delta): a sufficient certificate
	// whose accepts provably agree with the cascade, escalating to the
	// full analyzer otherwise. Only eligible configurations get one (see
	// incrementalEligible).
	inc *incremental.State
	// committedUtil mirrors util at the last commit point, making
	// Rollback's utilization reset O(1) instead of O(committed).
	committedUtil numeric.Fast
}

// NewAdmission builds an admission controller. It fails when the analyzer
// is unknown, lacks event support for an event-model seed, or the seed
// workload is invalid or infeasible.
func NewAdmission(cfg AdmissionConfig) (*Admission, error) {
	name := cfg.Analyzer
	if name == "" {
		name = "cascade"
	}
	a, ok := engine.Get(name)
	if !ok {
		return nil, fmt.Errorf("service: unknown analyzer %q", name)
	}
	m := cfg.Seed.Kind()
	if m == workload.Events && !a.Info().Events {
		return nil, fmt.Errorf("service: analyzer %q cannot admit event-stream workloads", a.Info().Name)
	}
	adm := &Admission{
		analyzer:  a,
		opt:       cfg.Options,
		model:     m,
		committed: workload.Workload{Model: m},
		pending:   workload.Workload{Model: m},
		scratch:   demand.NewScratch(),
	}
	if cfg.Seed.Len() > 0 {
		seed := cfg.Seed.Clone()
		if err := seed.Validate(); err != nil {
			return nil, fmt.Errorf("service: seed workload: %w", err)
		}
		if !cfg.TrustedSeed {
			res, err := engine.AnalyzeWorkload(a, seed, adm.analyzeOptions())
			if err != nil {
				return nil, fmt.Errorf("service: seed workload: %w", err)
			}
			if res.Verdict != core.Feasible {
				return nil, fmt.Errorf("service: seed workload is not admissible (%s)", res.Verdict)
			}
		}
		adm.committed = seed
		adm.util = workloadUtilFast(seed)
		adm.candTasks = append(model.TaskSet(nil), seed.Tasks...)
		adm.candEvents = append([]eventstream.Task(nil), seed.Events...)
	}
	if incrementalEligible(name, cfg.Options, cfg.NoIncremental) {
		inc := incremental.New(engine.DefaultSuperPosLevel)
		if inc.AppendWorkload(adm.committed) {
			inc.Rebuild()
		}
		if inc.Usable() {
			inc.Commit()
			adm.inc = inc
		}
		// An unusable anchor (a seed the walk cannot certify) would only
		// ever escalate; dropping it keeps proposals from paying for the
		// arena bookkeeping.
	}
	adm.committedUtil = adm.util
	return adm, nil
}

// incrementalEligible reports whether a session configuration can use the
// incremental fast path. The certificate reasons about the plain
// synchronous demand-bound criterion the cascade decides, so anything
// that changes the cascade's semantics — blocking, iteration or level
// caps, a forced bound, float64 accumulators (whose tolerance the exact
// certificate cannot mirror), or a different analyzer altogether —
// disables it. ArithBigRat stays eligible: it is bit-identical to exact.
func incrementalEligible(analyzer string, opt core.Options, disabled bool) bool {
	return !disabled &&
		analyzer == "cascade" &&
		opt.Blocking == nil &&
		opt.MaxIterations == 0 &&
		opt.MaxLevel == 0 &&
		opt.Bound == "" &&
		opt.Arithmetic != core.ArithFloat64
}

// analyzeOptions returns the test options with the controller's reusable
// Scratch attached; only the caller holding the mutex may run with them.
func (a *Admission) analyzeOptions() core.Options {
	opt := a.opt
	opt.Scratch = a.scratch
	opt.Stages = &a.stages
	return opt
}

// Analyzer returns the controller's analyzer name.
func (a *Admission) Analyzer() string { return a.analyzer.Info().Name }

// Model returns the session's workload model.
func (a *Admission) Model() workload.Model { return a.model }

// Propose decides whether the session can also accommodate the sporadic
// task t — the pre-workload entry point, equivalent to ProposeTask on a
// wrapped task.
func (a *Admission) Propose(t model.Task) (ProposeOutcome, error) {
	return a.ProposeTask(workload.SporadicTask(t))
}

// ProposeTask decides whether the session can also accommodate t. On a
// feasible verdict the task is staged into the pending set; Commit makes
// pending tasks permanent, Rollback discards them. Decisions are
// cheap-first: an invalid task, a model mismatch, or one that would push
// utilization past 1 is rejected before any analyzer runs.
func (a *Admission) ProposeTask(t workload.Task) (ProposeOutcome, error) {
	if err := a.check(t); err != nil {
		return ProposeOutcome{}, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.proposeLocked(t)
}

// ProposeBatch decides a sequence of tasks in one critical section, each
// decision seeing the tasks staged before it — the bulk counterpart of
// ProposeTask, one verdict per task in order. The whole slice is
// validated first, so a malformed or mismatched task fails the call
// before any state changes.
func (a *Admission) ProposeBatch(tasks []workload.Task) ([]ProposeOutcome, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("service: propose batch needs at least one task")
	}
	for i, t := range tasks {
		if err := a.check(t); err != nil {
			return nil, fmt.Errorf("task %d: %w", i, err)
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ProposeOutcome, len(tasks))
	for i, t := range tasks {
		var err error
		if out[i], err = a.proposeLocked(t); err != nil {
			// Unreachable today (every task was validated above), but a
			// future error path must not masquerade as a rejection.
			return nil, fmt.Errorf("task %d: %w", i, err)
		}
	}
	return out, nil
}

// check validates a proposal against the task's own structure and the
// session model.
func (a *Admission) check(t workload.Task) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Kind() != a.model {
		return fmt.Errorf("service: session admits %s tasks, got a %s task", a.model, t.Kind())
	}
	return nil
}

// proposeLocked decides one already-validated task; the caller holds the
// mutex. The returned error is always nil today (the analyzer's model
// capability is fixed at construction) but kept for symmetry.
func (a *Admission) proposeLocked(t workload.Task) (ProposeOutcome, error) {
	a.stats.Proposed++
	a.stages.Reset()

	// Cheap gate: incremental utilization. U > 1 is exactly infeasible
	// under either model, so this is a sound O(1) rejection, not a
	// heuristic.
	grown := addTaskUtil(a.util, t)
	cmp1 := grown.CmpInt(1)
	if cmp1 > 0 {
		a.stats.Rejected++
		return a.outcome(false, core.Result{Verdict: core.Infeasible}, obs.PathGate), nil
	}

	// Incremental fast path: with strictly sub-unit grown utilization the
	// certificate's accept is provably the cascade's verdict, so a full
	// analysis only runs when the certificate cannot accept. Grown
	// utilization of exactly 1 escalates — the certificate's between-point
	// slope argument needs U < 1.
	if a.inc != nil && cmp1 < 0 {
		if ok, checked := a.inc.Check(t); ok {
			a.stats.Iterations += checked
			a.admitLocked(t, grown)
			res := core.Result{
				Verdict:    core.Feasible,
				Iterations: checked,
				MaxLevel:   engine.DefaultSuperPosLevel,
			}
			a.stats.FastAccepts++
			return a.outcome(true, res, obs.PathFast), nil
		}
	}

	start := time.Now()
	p0 := a.scratch.ArithPromotions()
	res, err := engine.AnalyzeWorkload(a.analyzer, a.candidateLocked(t), a.analyzeOptions())
	if err != nil {
		a.retractCandidateLocked()
		return ProposeOutcome{}, err
	}
	promos := a.scratch.ArithPromotions() - p0
	if a.stages.Len() == 0 {
		// A non-cascade analyzer records no stages itself; log the whole
		// run as its one stage so traces always name the deciding test.
		a.stages.Record(a.analyzer.Info().Name, res.Verdict.String(), res.Iterations, time.Since(start).Nanoseconds(), promos)
	}
	a.stats.Iterations += res.Iterations
	a.stats.Escalations++
	if res.Verdict != core.Feasible {
		a.stats.Rejected++
		a.retractCandidateLocked()
		out := a.outcome(false, res, obs.PathCascade)
		out.Promotions = promos
		return out, nil
	}
	// Admitted: the candidate stays in the buffer (it is now the last
	// pending task) and is mirrored into the pending workload.
	a.retractCandidateLocked()
	a.admitLocked(t, grown)
	out := a.outcome(true, res, obs.PathCascade)
	out.Promotions = promos
	return out, nil
}

// admitLocked stages an accepted task: appends it to the candidate buffer,
// mirrors it into the pending workload, folds it into the incremental
// state and advances the running utilization; the caller holds the mutex.
func (a *Admission) admitLocked(t workload.Task, grown numeric.Fast) {
	if a.model == workload.Events {
		a.candEvents = append(a.candEvents, *t.Event)
		a.pending.Events = append(a.pending.Events, *t.Event)
	} else {
		a.candTasks = append(a.candTasks, *t.Sporadic)
		a.pending.Tasks = append(a.pending.Tasks, *t.Sporadic)
	}
	if a.inc != nil {
		a.inc.Admit(t)
	}
	a.util = grown
	a.stats.Admitted++
}

// candidateLocked appends t to the cached committed+pending buffer and
// returns it wrapped as the analyzer's workload — no per-proposal
// re-materialization of the session; the caller holds the mutex. The
// analyzers never mutate or retain the slice.
func (a *Admission) candidateLocked(t workload.Task) workload.Workload {
	w := workload.Workload{Model: a.model}
	if a.model == workload.Events {
		a.candEvents = append(a.candEvents, *t.Event)
		w.Events = a.candEvents
	} else {
		a.candTasks = append(a.candTasks, *t.Sporadic)
		w.Tasks = a.candTasks
	}
	return w
}

// retractCandidateLocked drops the rejected candidate from the buffer.
func (a *Admission) retractCandidateLocked() {
	if a.model == workload.Events {
		a.candEvents = a.candEvents[:len(a.candEvents)-1]
	} else {
		a.candTasks = a.candTasks[:len(a.candTasks)-1]
	}
}

// outcome snapshots the decision state; the caller holds the mutex.
func (a *Admission) outcome(admitted bool, res core.Result, path string) ProposeOutcome {
	return ProposeOutcome{
		Admitted:    admitted,
		Result:      res,
		Utilization: a.util.Float(),
		Committed:   a.committed.Len(),
		Pending:     a.pending.Len(),
		Escalated:   path == obs.PathCascade,
		Path:        path,
		Stages:      a.stages,
	}
}

// Commit makes every pending task permanent. The candidate buffer already
// lists committed followed by pending tasks, so it is left untouched.
func (a *Admission) Commit() FinishOutcome {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.pending.Len()
	// The models always match (both are fixed at construction).
	a.committed, _ = a.committed.Concat(a.pending)
	a.pending = workload.Workload{Model: a.model}
	if a.inc != nil {
		a.inc.Commit()
	}
	a.committedUtil = a.util
	a.stats.Commits++
	return FinishOutcome{Moved: n, Committed: a.committed.Len(), Utilization: a.util.Float()}
}

// Rollback discards every pending task, truncating the candidate buffer
// back to its committed prefix.
func (a *Admission) Rollback() FinishOutcome {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.pending.Len()
	// Truncate the pending mirror and the candidate buffer in place:
	// keeping their capacity is what makes the steady-state
	// propose/rollback cycle allocation-free.
	if a.model == workload.Events {
		a.candEvents = a.candEvents[:len(a.committed.Events)]
		a.pending.Events = a.pending.Events[:0]
	} else {
		a.candTasks = a.candTasks[:len(a.committed.Tasks)]
		a.pending.Tasks = a.pending.Tasks[:0]
	}
	if a.inc != nil {
		a.inc.Rollback()
	}
	a.util = a.committedUtil
	a.stats.Rollbacks++
	return FinishOutcome{Moved: n, Committed: a.committed.Len(), Utilization: a.util.Float()}
}

// Snapshot returns deep copies of the committed and pending workloads and
// the combined utilization.
func (a *Admission) Snapshot() (committed, pending workload.Workload, utilization float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.committed.Clone(), a.pending.Clone(), a.util.Float()
}

// Stats returns the lifetime counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// addTaskUtil adds one task's exact utilization to u without allocating:
// C/T for a sporadic task, Σ C/cycle over the stream for an event task.
func addTaskUtil(u numeric.Fast, t workload.Task) numeric.Fast {
	if t.Event != nil {
		return addEventUtil(u, t.Event)
	}
	return u.AddRat(t.Sporadic.WCET, t.Sporadic.Period)
}

// addEventUtil adds an event task's utilization (one-shot elements
// contribute nothing).
func addEventUtil(u numeric.Fast, et *eventstream.Task) numeric.Fast {
	for _, e := range et.Stream {
		if e.Cycle > 0 {
			u = u.AddRat(et.WCET, e.Cycle)
		}
	}
	return u
}

// workloadUtilFast returns a workload's exact utilization as a fast
// rational.
func workloadUtilFast(w workload.Workload) numeric.Fast {
	var u numeric.Fast
	if w.Kind() == workload.Events {
		for i := range w.Events {
			u = addEventUtil(u, &w.Events[i])
		}
		return u
	}
	for _, t := range w.Tasks {
		u = u.AddRat(t.WCET, t.Period)
	}
	return u
}
