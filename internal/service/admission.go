package service

import (
	"fmt"
	"math/big"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
)

// AdmissionConfig tunes an admission controller.
type AdmissionConfig struct {
	// Analyzer names the feasibility test deciding admissions; empty
	// selects the cascade (cheap-first escalation, the paper's
	// recommendation for exactly this online use case).
	Analyzer string
	// Options tune the test.
	Options core.Options
	// Seed optionally pre-commits an initial task set; it must be
	// feasible under the analyzer.
	Seed model.TaskSet
}

// ProposeOutcome reports one admission decision. Its counts are taken in
// the same critical section as the decision, so they are consistent even
// when other clients race on the session.
type ProposeOutcome struct {
	// Admitted reports whether the task was staged (pending commit).
	Admitted bool
	// Result is the deciding test outcome. A utilization pre-check that
	// already rules the task out yields an Infeasible verdict with zero
	// iterations — no analyzer ran.
	Result core.Result
	// Utilization is the committed+pending utilization after the
	// decision.
	Utilization float64
	// Committed and Pending count the session's tasks after the decision.
	Committed, Pending int
}

// FinishOutcome reports a commit or rollback.
type FinishOutcome struct {
	// Moved is how many pending tasks were committed or discarded.
	Moved int
	// Committed counts the permanent tasks after the operation.
	Committed int
	// Utilization is the session utilization after the operation.
	Utilization float64
}

// AdmissionStats counts a controller's lifetime activity.
type AdmissionStats struct {
	Proposed   int64
	Admitted   int64
	Rejected   int64
	Commits    int64
	Rollbacks  int64
	Iterations int64 // total test intervals spent on admission decisions
}

// Admission is a concurrency-safe online admission controller: tasks are
// proposed one at a time, staged while feasibility holds, and made
// permanent (or discarded) transactionally. It keeps the running
// utilization incrementally as an exact rational, so the cheap
// reject-on-overload path costs one addition and one comparison and never
// consults an analyzer.
type Admission struct {
	mu        sync.Mutex
	analyzer  engine.Analyzer
	opt       core.Options
	committed model.TaskSet
	pending   model.TaskSet
	util      *big.Rat // utilization of committed + pending
	stats     AdmissionStats
}

// NewAdmission builds an admission controller. It fails when the analyzer
// is unknown, not exact-capable for admission (sufficient analyzers are
// allowed but reject everything they cannot accept), or the seed set is
// invalid or infeasible.
func NewAdmission(cfg AdmissionConfig) (*Admission, error) {
	name := cfg.Analyzer
	if name == "" {
		name = "cascade"
	}
	a, ok := engine.Get(name)
	if !ok {
		return nil, fmt.Errorf("service: unknown analyzer %q", name)
	}
	adm := &Admission{analyzer: a, opt: cfg.Options, util: new(big.Rat)}
	if len(cfg.Seed) > 0 {
		seed := cfg.Seed.Clone()
		if err := seed.Validate(); err != nil {
			return nil, fmt.Errorf("service: seed set: %w", err)
		}
		res := a.Analyze(seed, cfg.Options)
		if res.Verdict != core.Feasible {
			return nil, fmt.Errorf("service: seed set is not admissible (%s)", res.Verdict)
		}
		adm.committed = seed
		adm.util = seed.Utilization()
	}
	return adm, nil
}

// Analyzer returns the controller's analyzer name.
func (a *Admission) Analyzer() string { return a.analyzer.Info().Name }

// Propose decides whether the session can also accommodate t. On a
// feasible verdict the task is staged into the pending set; Commit makes
// pending tasks permanent, Rollback discards them. Decisions are
// cheap-first: an invalid task or one that would push utilization past 1
// is rejected before any analyzer runs.
func (a *Admission) Propose(t model.Task) (ProposeOutcome, error) {
	if err := t.Validate(); err != nil {
		return ProposeOutcome{}, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.Proposed++

	// Cheap gate: incremental utilization. U > 1 is exactly infeasible,
	// so this is a sound O(1) rejection, not a heuristic.
	grown := new(big.Rat).Add(a.util, t.Utilization())
	if grown.Cmp(big.NewRat(1, 1)) > 0 {
		a.stats.Rejected++
		return a.outcome(false, core.Result{Verdict: core.Infeasible}), nil
	}

	candidate := make(model.TaskSet, 0, len(a.committed)+len(a.pending)+1)
	candidate = append(candidate, a.committed...)
	candidate = append(candidate, a.pending...)
	candidate = append(candidate, t)
	res := a.analyzer.Analyze(candidate, a.opt)
	a.stats.Iterations += res.Iterations
	if res.Verdict != core.Feasible {
		a.stats.Rejected++
		return a.outcome(false, res), nil
	}
	a.pending = append(a.pending, t)
	a.util = grown
	a.stats.Admitted++
	return a.outcome(true, res), nil
}

// outcome snapshots the decision state; the caller holds the mutex.
func (a *Admission) outcome(admitted bool, res core.Result) ProposeOutcome {
	return ProposeOutcome{
		Admitted:    admitted,
		Result:      res,
		Utilization: ratFloat(a.util),
		Committed:   len(a.committed),
		Pending:     len(a.pending),
	}
}

// Commit makes every pending task permanent.
func (a *Admission) Commit() FinishOutcome {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.pending)
	a.committed = append(a.committed, a.pending...)
	a.pending = nil
	a.stats.Commits++
	return FinishOutcome{Moved: n, Committed: len(a.committed), Utilization: ratFloat(a.util)}
}

// Rollback discards every pending task.
func (a *Admission) Rollback() FinishOutcome {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.pending)
	for _, t := range a.pending {
		a.util.Sub(a.util, t.Utilization())
	}
	a.pending = nil
	a.stats.Rollbacks++
	return FinishOutcome{Moved: n, Committed: len(a.committed), Utilization: ratFloat(a.util)}
}

// Snapshot returns copies of the committed and pending sets and the
// combined utilization.
func (a *Admission) Snapshot() (committed, pending model.TaskSet, utilization float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.committed.Clone(), a.pending.Clone(), ratFloat(a.util)
}

// Stats returns the lifetime counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

func ratFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}
