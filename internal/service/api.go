package service

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eventstream"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/workload"
)

// Workload is the polymorphic wire task set: {"model": "sporadic",
// "tasks": [...]} or {"model": "events", "tasks": [{wcet, deadline,
// stream: [{cycle, offset}, ...]}]}. A missing model means sporadic, so
// every pre-workload payload keeps parsing unchanged.
type Workload = workload.Workload

// WorkloadTask is the polymorphic wire task of the propose endpoints: an
// object with a "stream" key is an event-driven task, anything else is a
// sporadic task.
type WorkloadTask = workload.Task

// SporadicWorkload wraps a sporadic task set for a request.
func SporadicWorkload(ts model.TaskSet) Workload { return workload.NewSporadic(ts) }

// EventWorkload wraps an event-driven task set for a request.
func EventWorkload(tasks []eventstream.Task) Workload { return workload.NewEvents(tasks) }

// PartitionedWorkload wraps processors and placement-constrained tasks
// for a partition request.
func PartitionedWorkload(procs []workload.Processor, tasks []workload.PartitionedTask) Workload {
	return workload.NewPartitioned(procs, tasks)
}

// SporadicTask wraps a sporadic task for a propose request.
func SporadicTask(t model.Task) WorkloadTask { return workload.SporadicTask(t) }

// EventTask wraps an event-driven task for a propose request.
func EventTask(t eventstream.Task) WorkloadTask { return workload.EventTask(t) }

// OptionsJSON is the wire form of the serializable subset of core.Options.
// Blocking functions cannot cross the wire (and would defeat the content-
// addressed cache), so the service does not accept them.
type OptionsJSON struct {
	// Arithmetic is "exact" (default) or "float64".
	Arithmetic string `json:"arithmetic,omitempty"`
	// RevisionOrder is "fifo" (default), "lifo" or "maxerror".
	RevisionOrder string `json:"revision_order,omitempty"`
	// MaxIterations caps checked test intervals (0 = unlimited).
	MaxIterations int64 `json:"max_iterations,omitempty"`
	// MaxLevel caps the superposition level of the dynamic test
	// (0 = unlimited).
	MaxLevel int64 `json:"max_level,omitempty"`
}

// Core converts the wire options to engine options.
func (o OptionsJSON) Core() (core.Options, error) {
	var opt core.Options
	switch strings.ToLower(o.Arithmetic) {
	case "", "exact":
	case "float64", "float":
		opt.Arithmetic = core.ArithFloat64
	default:
		return opt, fmt.Errorf("unknown arithmetic %q (want exact or float64)", o.Arithmetic)
	}
	switch strings.ToLower(o.RevisionOrder) {
	case "", "fifo":
	case "lifo":
		opt.RevisionOrder = core.ReviseLIFO
	case "maxerror", "max-error":
		opt.RevisionOrder = core.ReviseMaxError
	default:
		return opt, fmt.Errorf("unknown revision order %q (want fifo, lifo or maxerror)", o.RevisionOrder)
	}
	if o.MaxIterations < 0 || o.MaxLevel < 0 {
		return opt, fmt.Errorf("max_iterations and max_level must be non-negative")
	}
	opt.MaxIterations = o.MaxIterations
	opt.MaxLevel = o.MaxLevel
	return opt, nil
}

// ResultJSON is the wire form of a core.Result.
type ResultJSON struct {
	Verdict         string `json:"verdict"`
	Iterations      int64  `json:"iterations"`
	Revisions       int64  `json:"revisions,omitempty"`
	MaxLevel        int64  `json:"max_level,omitempty"`
	FailureInterval int64  `json:"failure_interval,omitempty"`
	Bound           int64  `json:"bound,omitempty"`
	BoundKind       string `json:"bound_kind,omitempty"`
}

// NewResultJSON converts an engine result to its wire form.
func NewResultJSON(r core.Result) ResultJSON {
	return ResultJSON{
		Verdict:         r.Verdict.String(),
		Iterations:      r.Iterations,
		Revisions:       r.Revisions,
		MaxLevel:        r.MaxLevel,
		FailureInterval: r.FailureInterval,
		Bound:           r.Bound,
		BoundKind:       string(r.BoundKind),
	}
}

// AnalyzeRequest asks for one analysis of one workload. On the wire the
// workload is flattened into the request object: {"name": ..., "model":
// ..., "tasks": [...], "analyzer": ..., "options": {...}}.
type AnalyzeRequest struct {
	// Name optionally labels the workload in logs and responses.
	Name string
	// Workload is the task set to analyze, under either model.
	Workload Workload
	// Analyzer names a registered analyzer; empty selects the cascade.
	Analyzer string
	// Options tune the test.
	Options OptionsJSON
}

// analyzeShadow carries AnalyzeRequest's non-workload fields.
type analyzeShadow struct {
	Name     string      `json:"name,omitempty"`
	Analyzer string      `json:"analyzer,omitempty"`
	Options  OptionsJSON `json:"options,omitzero"`
}

// UnmarshalJSON flattens the workload out of the request object, so
// pre-workload bodies ({"tasks": [...]}) keep working.
func (r *AnalyzeRequest) UnmarshalJSON(data []byte) error {
	var aux analyzeShadow
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	r.Name, r.Analyzer, r.Options = aux.Name, aux.Analyzer, aux.Options
	return json.Unmarshal(data, &r.Workload)
}

// MarshalJSON emits the flattened wire form; sporadic requests omit the
// model discriminator and stay byte-compatible with the pre-workload
// schema.
func (r AnalyzeRequest) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name     string         `json:"name,omitempty"`
		Model    workload.Model `json:"model,omitempty"`
		Tasks    any            `json:"tasks"`
		Analyzer string         `json:"analyzer,omitempty"`
		Options  OptionsJSON    `json:"options,omitzero"`
	}{r.Name, r.Workload.WireModel(), r.Workload.TasksJSON(), r.Analyzer, r.Options})
}

// AnalyzeResponse reports one analysis with telemetry.
type AnalyzeResponse struct {
	Name string `json:"name,omitempty"`
	// Model echoes the workload model the analysis ran under.
	Model    string     `json:"model"`
	Analyzer string     `json:"analyzer"`
	Result   ResultJSON `json:"result"`
	// WallNS is the analysis wall time in nanoseconds (zero on cache hits:
	// no analysis ran).
	WallNS int64 `json:"wall_ns"`
	// Cached reports whether the result came from the content-addressed
	// cache.
	Cached bool `json:"cached"`
	// Fingerprint is the content address of (workload, analyzer, options);
	// empty when the analysis is not cacheable. Sporadic and event
	// workloads hash into disjoint domains, so their results can never
	// alias in a cache keyed by this value.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// WorkloadSet is one named workload of a batch request: {"name": ...,
// "model": ..., "tasks": [...]}. It replaces the sporadic-only SetJSON of
// the pre-workload schema, whose payloads still parse (no model means
// sporadic).
type WorkloadSet struct {
	Name     string
	Workload Workload
}

// UnmarshalJSON flattens the workload out of the set object.
func (s *WorkloadSet) UnmarshalJSON(data []byte) error {
	var aux struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	s.Name = aux.Name
	return json.Unmarshal(data, &s.Workload)
}

// MarshalJSON emits the flattened wire form.
func (s WorkloadSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name       string               `json:"name,omitempty"`
		Model      workload.Model       `json:"model,omitempty"`
		Processors []workload.Processor `json:"processors,omitempty"`
		Tasks      any                  `json:"tasks"`
	}{s.Name, s.Workload.WireModel(), s.Workload.Processors, s.Workload.TasksJSON()})
}

// BatchRequest fans workloads x analyzers over the parallel batch runner.
type BatchRequest struct {
	Sets []WorkloadSet `json:"sets"`
	// Analyzers holds registered analyzer names or the group keywords
	// all/exact/sufficient; empty selects the cascade.
	Analyzers []string    `json:"analyzers,omitempty"`
	Options   OptionsJSON `json:"options,omitzero"`
	// Workers bounds the worker pool; 0 selects the server default.
	Workers int `json:"workers,omitempty"`
}

// BatchJobJSON is one (workload, analyzer) outcome in set-major order.
type BatchJobJSON struct {
	SetIndex int        `json:"set_index"`
	SetName  string     `json:"set_name,omitempty"`
	Model    string     `json:"model,omitempty"`
	Analyzer string     `json:"analyzer"`
	Result   ResultJSON `json:"result"`
	WallNS   int64      `json:"wall_ns"`
	Cached   bool       `json:"cached,omitempty"`
	// Err is set when the batch context was canceled before the job ran,
	// or when an event workload met an analyzer without event support.
	Err string `json:"err,omitempty"`
}

// BatchResponse reports every job of a batch in request order.
type BatchResponse struct {
	Results []BatchJobJSON `json:"results"`
}

// SessionRequest opens an admission session. The optional seed workload
// is flattened into the object ({"model": ..., "tasks": [...]}) and fixes
// the session's model; pre-workload bodies seed sporadic sessions.
type SessionRequest struct {
	// Analyzer names the admission test; empty selects the cascade.
	Analyzer string
	Options  OptionsJSON
	// Workload optionally seeds the committed set; the seed must be
	// feasible under the session analyzer. Its model (default sporadic)
	// becomes the session model.
	Workload Workload
}

// UnmarshalJSON flattens the seed workload out of the request object.
func (r *SessionRequest) UnmarshalJSON(data []byte) error {
	var aux struct {
		Analyzer string      `json:"analyzer,omitempty"`
		Options  OptionsJSON `json:"options,omitzero"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	r.Analyzer, r.Options = aux.Analyzer, aux.Options
	return json.Unmarshal(data, &r.Workload)
}

// MarshalJSON emits the flattened wire form. An empty seed still carries
// its model so event sessions can be opened without tasks.
func (r SessionRequest) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Analyzer string         `json:"analyzer,omitempty"`
		Options  OptionsJSON    `json:"options,omitzero"`
		Model    workload.Model `json:"model,omitempty"`
		Tasks    any            `json:"tasks,omitempty"`
	}{r.Analyzer, r.Options, r.Workload.WireModel(), tasksOrNil(r.Workload)})
}

// tasksOrNil omits the task array entirely for an empty seed.
func tasksOrNil(w Workload) any {
	if w.Len() == 0 {
		return nil
	}
	return w.TasksJSON()
}

// SessionResponse describes a session's current state.
type SessionResponse struct {
	ID string `json:"id"`
	// Model is the session's workload model; proposals must match it.
	Model       string  `json:"model"`
	Analyzer    string  `json:"analyzer"`
	Committed   int     `json:"committed"`
	Pending     int     `json:"pending"`
	Utilization float64 `json:"utilization"`
}

// ProposeRequest stages one task into a session. The task is polymorphic:
// a "stream" key makes it an event-driven task, otherwise it is sporadic.
// Its model must match the session's.
type ProposeRequest struct {
	Task WorkloadTask `json:"task"`
}

// ProposeResponse reports an admission verdict.
type ProposeResponse struct {
	// Admitted reports whether the task was staged (pending commit).
	Admitted bool       `json:"admitted"`
	Result   ResultJSON `json:"result"`
	// Utilization is the session utilization including pending tasks
	// after this proposal.
	Utilization float64 `json:"utilization"`
	Committed   int     `json:"committed"`
	Pending     int     `json:"pending"`
	// Escalated reports that a full analyzer run decided this proposal
	// instead of the incremental fast path.
	Escalated bool `json:"escalated,omitempty"`
	// Path names the decision path: "gate" (utilization rejection), "fast"
	// (incremental certificate) or "cascade" (full escalation).
	Path string `json:"path,omitempty"`
}

// ProposeBatchRequest stages several tasks in one round trip. The tasks
// are decided in order, each seeing the ones staged before it; the whole
// array is validated up front, so a malformed task fails the request
// before any state changes.
type ProposeBatchRequest struct {
	Tasks []WorkloadTask `json:"tasks"`
}

// ProposeBatchResponse reports one verdict per proposed task, in request
// order.
type ProposeBatchResponse struct {
	Results []ProposeResponse `json:"results"`
}

// CommitResponse reports a commit or rollback.
type CommitResponse struct {
	// Moved is the number of pending tasks committed or rolled back.
	Moved       int     `json:"moved"`
	Committed   int     `json:"committed"`
	Utilization float64 `json:"utilization"`
}

// PartitionRequest asks for a feasible placement of a partitioned
// workload onto its processors. On the wire the workload is flattened
// into the request object: {"name": ..., "model": "partitioned",
// "processors": [...], "tasks": [...], "analyzer": ..., "options":
// {...}, "heuristics": [...], "workers": ...}.
type PartitionRequest struct {
	// Name optionally labels the workload in logs and responses.
	Name string
	// Workload is the partitioned workload to place.
	Workload Workload
	// Analyzer names the per-bin feasibility test; empty selects the
	// cascade.
	Analyzer string
	// Options tune the per-bin tests.
	Options OptionsJSON
	// Heuristics orders the placement strategies tried ("first-fit",
	// "worst-fit", "balance"); empty tries all three in that order.
	Heuristics []string
	// Workers bounds the per-bin verification pool; 0 selects the server
	// default.
	Workers int
}

// partitionShadow carries PartitionRequest's non-workload fields.
type partitionShadow struct {
	Name       string      `json:"name,omitempty"`
	Analyzer   string      `json:"analyzer,omitempty"`
	Options    OptionsJSON `json:"options,omitzero"`
	Heuristics []string    `json:"heuristics,omitempty"`
	Workers    int         `json:"workers,omitempty"`
}

// UnmarshalJSON flattens the workload out of the request object.
func (r *PartitionRequest) UnmarshalJSON(data []byte) error {
	var aux partitionShadow
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	r.Name, r.Analyzer, r.Options = aux.Name, aux.Analyzer, aux.Options
	r.Heuristics, r.Workers = aux.Heuristics, aux.Workers
	return json.Unmarshal(data, &r.Workload)
}

// MarshalJSON emits the flattened wire form.
func (r PartitionRequest) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name       string               `json:"name,omitempty"`
		Model      workload.Model       `json:"model,omitempty"`
		Processors []workload.Processor `json:"processors,omitempty"`
		Tasks      any                  `json:"tasks"`
		Analyzer   string               `json:"analyzer,omitempty"`
		Options    OptionsJSON          `json:"options,omitzero"`
		Heuristics []string             `json:"heuristics,omitempty"`
		Workers    int                  `json:"workers,omitempty"`
	}{r.Name, r.Workload.WireModel(), r.Workload.Processors, r.Workload.TasksJSON(),
		r.Analyzer, r.Options, r.Heuristics, r.Workers})
}

// PartitionResponse reports a placement run: the proven placement with
// its per-processor verdicts, or the counterexample trail.
type PartitionResponse struct {
	Name string `json:"name,omitempty"`
	// Model echoes "partitioned".
	Model string `json:"model"`
	// Analyzer names the per-bin test that verified the placement.
	Analyzer string `json:"analyzer"`
	partition.Placement
	// WallNS is the whole placement's wall time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
}

// WireVersion identifies the request/response schema generation served
// under /v1.
const WireVersion = "edf.wire.v1"

// SchemaResponse describes what this server speaks: the wire-schema
// version, the workload models it accepts, the analyzer registry and
// the partition heuristics. The cluster proxy uses it to reject
// workload models its fleet cannot serve before forwarding.
type SchemaResponse struct {
	WireVersion string         `json:"wire_version"`
	Models      []string       `json:"models"`
	Analyzers   []AnalyzerJSON `json:"analyzers"`
	Heuristics  []string       `json:"heuristics"`
}

// AnalyzerJSON describes one registered analyzer.
type AnalyzerJSON struct {
	Name     string `json:"name"`
	Label    string `json:"label"`
	Kind     string `json:"kind"`
	Blocking bool   `json:"blocking"`
	Events   bool   `json:"events"`
}

// ErrorResponse is the uniform error body: the wire form of the typed
// *Error. The "error" key has carried the message since the first wire
// schema and always will, so clients that predate the typed shape keep
// decoding; code/message/owner/retryable are the typed fields.
type ErrorResponse struct {
	Error     string `json:"error"`
	Code      string `json:"code,omitempty"`
	Message   string `json:"message,omitempty"`
	Owner     string `json:"owner,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
}

// Err converts a decoded wire body back to the typed error, tolerating
// legacy bodies that carry only the "error" key: the message falls back
// to it, and code/retryable are derived from the HTTP status.
func (e ErrorResponse) Err(status int) *Error {
	msg := e.Message
	if msg == "" {
		msg = e.Error
	}
	code := e.Code
	if code == "" {
		code = CodeForStatus(status)
	}
	return &Error{
		Code:      code,
		Message:   msg,
		Owner:     e.Owner,
		Retryable: e.Retryable || RetryableStatus(status),
	}
}
