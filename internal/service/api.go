package service

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
)

// OptionsJSON is the wire form of the serializable subset of core.Options.
// Blocking functions cannot cross the wire (and would defeat the content-
// addressed cache), so the service does not accept them.
type OptionsJSON struct {
	// Arithmetic is "exact" (default) or "float64".
	Arithmetic string `json:"arithmetic,omitempty"`
	// RevisionOrder is "fifo" (default), "lifo" or "maxerror".
	RevisionOrder string `json:"revision_order,omitempty"`
	// MaxIterations caps checked test intervals (0 = unlimited).
	MaxIterations int64 `json:"max_iterations,omitempty"`
	// MaxLevel caps the superposition level of the dynamic test
	// (0 = unlimited).
	MaxLevel int64 `json:"max_level,omitempty"`
}

// Core converts the wire options to engine options.
func (o OptionsJSON) Core() (core.Options, error) {
	var opt core.Options
	switch strings.ToLower(o.Arithmetic) {
	case "", "exact":
	case "float64", "float":
		opt.Arithmetic = core.ArithFloat64
	default:
		return opt, fmt.Errorf("unknown arithmetic %q (want exact or float64)", o.Arithmetic)
	}
	switch strings.ToLower(o.RevisionOrder) {
	case "", "fifo":
	case "lifo":
		opt.RevisionOrder = core.ReviseLIFO
	case "maxerror", "max-error":
		opt.RevisionOrder = core.ReviseMaxError
	default:
		return opt, fmt.Errorf("unknown revision order %q (want fifo, lifo or maxerror)", o.RevisionOrder)
	}
	if o.MaxIterations < 0 || o.MaxLevel < 0 {
		return opt, fmt.Errorf("max_iterations and max_level must be non-negative")
	}
	opt.MaxIterations = o.MaxIterations
	opt.MaxLevel = o.MaxLevel
	return opt, nil
}

// ResultJSON is the wire form of a core.Result.
type ResultJSON struct {
	Verdict         string `json:"verdict"`
	Iterations      int64  `json:"iterations"`
	Revisions       int64  `json:"revisions,omitempty"`
	MaxLevel        int64  `json:"max_level,omitempty"`
	FailureInterval int64  `json:"failure_interval,omitempty"`
	Bound           int64  `json:"bound,omitempty"`
	BoundKind       string `json:"bound_kind,omitempty"`
}

// NewResultJSON converts an engine result to its wire form.
func NewResultJSON(r core.Result) ResultJSON {
	return ResultJSON{
		Verdict:         r.Verdict.String(),
		Iterations:      r.Iterations,
		Revisions:       r.Revisions,
		MaxLevel:        r.MaxLevel,
		FailureInterval: r.FailureInterval,
		Bound:           r.Bound,
		BoundKind:       string(r.BoundKind),
	}
}

// AnalyzeRequest asks for one analysis of one task set.
type AnalyzeRequest struct {
	// Name optionally labels the set in logs and responses.
	Name string `json:"name,omitempty"`
	// Tasks is the task set to analyze.
	Tasks []model.Task `json:"tasks"`
	// Analyzer names a registered analyzer; empty selects the cascade.
	Analyzer string `json:"analyzer,omitempty"`
	// Options tune the test.
	Options OptionsJSON `json:"options,omitempty"`
}

// AnalyzeResponse reports one analysis with telemetry.
type AnalyzeResponse struct {
	Name     string     `json:"name,omitempty"`
	Analyzer string     `json:"analyzer"`
	Result   ResultJSON `json:"result"`
	// WallNS is the analysis wall time in nanoseconds (zero on cache hits:
	// no analysis ran).
	WallNS int64 `json:"wall_ns"`
	// Cached reports whether the result came from the content-addressed
	// cache.
	Cached bool `json:"cached"`
	// Fingerprint is the content address of (tasks, analyzer, options);
	// empty when the analysis is not cacheable.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// SetJSON is one named task set of a batch request.
type SetJSON struct {
	Name  string       `json:"name,omitempty"`
	Tasks []model.Task `json:"tasks"`
}

// BatchRequest fans sets x analyzers over the parallel batch runner.
type BatchRequest struct {
	Sets []SetJSON `json:"sets"`
	// Analyzers holds registered analyzer names or the group keywords
	// all/exact/sufficient; empty selects the cascade.
	Analyzers []string    `json:"analyzers,omitempty"`
	Options   OptionsJSON `json:"options,omitempty"`
	// Workers bounds the worker pool; 0 selects the server default.
	Workers int `json:"workers,omitempty"`
}

// BatchJobJSON is one (set, analyzer) outcome in set-major order.
type BatchJobJSON struct {
	SetIndex int        `json:"set_index"`
	SetName  string     `json:"set_name,omitempty"`
	Analyzer string     `json:"analyzer"`
	Result   ResultJSON `json:"result"`
	WallNS   int64      `json:"wall_ns"`
	Cached   bool       `json:"cached,omitempty"`
	// Err is set when the batch context was canceled before the job ran.
	Err string `json:"err,omitempty"`
}

// BatchResponse reports every job of a batch in request order.
type BatchResponse struct {
	Results []BatchJobJSON `json:"results"`
}

// SessionRequest opens an admission session.
type SessionRequest struct {
	// Analyzer names the admission test; empty selects the cascade.
	Analyzer string      `json:"analyzer,omitempty"`
	Options  OptionsJSON `json:"options,omitempty"`
	// Tasks optionally seeds the committed set; the seed must be feasible
	// under the session analyzer.
	Tasks []model.Task `json:"tasks,omitempty"`
}

// SessionResponse describes a session's current state.
type SessionResponse struct {
	ID          string  `json:"id"`
	Analyzer    string  `json:"analyzer"`
	Committed   int     `json:"committed"`
	Pending     int     `json:"pending"`
	Utilization float64 `json:"utilization"`
}

// ProposeRequest stages one task into a session.
type ProposeRequest struct {
	Task model.Task `json:"task"`
}

// ProposeResponse reports an admission verdict.
type ProposeResponse struct {
	// Admitted reports whether the task was staged (pending commit).
	Admitted bool       `json:"admitted"`
	Result   ResultJSON `json:"result"`
	// Utilization is the session utilization including pending tasks
	// after this proposal.
	Utilization float64 `json:"utilization"`
	Committed   int     `json:"committed"`
	Pending     int     `json:"pending"`
}

// CommitResponse reports a commit or rollback.
type CommitResponse struct {
	// Moved is the number of pending tasks committed or rolled back.
	Moved       int     `json:"moved"`
	Committed   int     `json:"committed"`
	Utilization float64 `json:"utilization"`
}

// AnalyzerJSON describes one registered analyzer.
type AnalyzerJSON struct {
	Name     string `json:"name"`
	Label    string `json:"label"`
	Kind     string `json:"kind"`
	Blocking bool   `json:"blocking"`
	Events   bool   `json:"events"`
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
}
