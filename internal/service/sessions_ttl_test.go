package service

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/workload"
)

// TestSweepSkipsInflight pins the TTL fix deterministically: a session
// with an in-flight request survives a sweep however stale its clock,
// and becomes sweepable again once released.
func TestSweepSkipsInflight(t *testing.T) {
	store := newSessionStore(8)
	adm, err := NewAdmission(AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := store.open(adm, "", OptionsJSON{})
	if err != nil {
		t.Fatal(err)
	}
	_, release, err := store.acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	// A sweep far in the future must not expire the busy session.
	future := time.Now().Add(time.Hour)
	if n := store.sweep(time.Millisecond, future); n != 0 {
		t.Fatalf("sweep expired %d in-flight sessions", n)
	}
	if _, rel2, err := store.acquire(id); err != nil {
		t.Fatal("session vanished while in-flight")
	} else {
		rel2()
	}
	release()
	// Released and idle past the TTL: now it may go.
	if n := store.sweep(time.Millisecond, future); n != 1 {
		t.Fatalf("sweep removed %d sessions after release, want 1", n)
	}
	if _, _, err := store.acquire(id); err == nil {
		t.Fatal("expired session still resolvable")
	}
	if _, _, expired := store.counts(); expired != 1 {
		t.Fatalf("expired counter = %d, want 1", expired)
	}
}

// TestSweepInflightRace hammers a store with proposals while an
// aggressive sweeper runs: no request may ever observe its session's
// controller disappearing mid-flight, and the race detector watches the
// locking.
func TestSweepInflightRace(t *testing.T) {
	store := newSessionStore(64)
	adm, err := NewAdmission(AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := store.open(adm, "", OptionsJSON{})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	// Sweeper with a zero TTL: everything idle is expired instantly, so
	// only the inflight guard keeps the session alive between requests'
	// acquire and release.
	sweeperDone := make(chan struct{})
	go func() {
		defer close(sweeperDone)
		for {
			select {
			case <-stop:
				return
			default:
				store.sweep(0, time.Now())
			}
		}
	}()
	var wg sync.WaitGroup
	var lost sync.Once
	var lostMid bool
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 300; i++ {
				a, release, err := store.acquire(id)
				if err != nil {
					// The sweeper legitimately expired the session between
					// requests (zero TTL); that is the documented behavior.
					return
				}
				if a == nil {
					lost.Do(func() { lostMid = true })
					release()
					return
				}
				tk := workload.SporadicTask(model.Task{
					WCET: 1, Deadline: 50 + r.Int63n(1000), Period: 50 + r.Int63n(1000),
				})
				if _, err := a.adm.ProposeTask(tk); err != nil {
					t.Error(err)
				}
				release()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-sweeperDone
	if lostMid {
		t.Fatal("a request held a nil controller mid-flight")
	}
}
