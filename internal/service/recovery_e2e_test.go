// Recovery end-to-end coverage: a store-backed server is restarted (or a
// peer rehydrates its sessions) and must resume committed admission state
// with bit-identical verdicts, driven only through the typed client.
package service_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	edf "repro"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/store"
)

// recoveryStream generates a deterministic proposal stream mixing
// admissible tasks (drawn from feasible sets) with overload tasks that
// the session must reject, so a replayed session is exercised on both
// verdicts.
func recoveryStream(t *testing.T, seed int64, n int) []service.WorkloadTask {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var stream []service.WorkloadTask
	for len(stream) < n {
		ts, err := edf.Generate(edf.GenConfig{
			N:           4 + rng.Intn(6),
			Utilization: 0.25 + rng.Float64()*0.2,
			PeriodMin:   100, PeriodMax: 10000,
			GapMean: 0.2,
		}, rng)
		if err != nil {
			continue
		}
		for _, tk := range ts {
			stream = append(stream, service.SporadicTask(tk))
		}
		// One hog per generated set: as committed utilization grows these
		// flip from admitted to rejected, covering both paths.
		p := int64(100 + rng.Intn(1000))
		stream = append(stream, service.SporadicTask(edf.Task{
			WCET: p / 2, Deadline: p, Period: p,
		}))
	}
	return stream[:n]
}

// proposeJSON proposes one task and returns the decision-relevant
// projection of the response marshaled to JSON — the form compared
// bit-for-bit between a restarted session and its uninterrupted oracle.
// Effort metadata (path, escalated, iterations) is deliberately outside
// the projection: the recovered certificate anchor is a fresh Rebuild
// over the committed set while the oracle's evolved by per-admit folds,
// so which fast path fires may differ — but both are sound and escalate
// to the same exact analyzer, so the verdict, the utilization bits and
// the counts cannot.
func proposeJSON(t *testing.T, ctx context.Context, s *client.Session, tk service.WorkloadTask) string {
	t.Helper()
	resp, err := s.Propose(ctx, service.ProposeRequest{Task: tk})
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	b, err := json.Marshal(struct {
		Admitted    bool    `json:"admitted"`
		Verdict     string  `json:"verdict"`
		Utilization float64 `json:"utilization"`
		Committed   int     `json:"committed"`
		Pending     int     `json:"pending"`
	}{resp.Admitted, resp.Result.Verdict, resp.Utilization, resp.Committed, resp.Pending})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestE2ERecoveryDiskRestart drives the full restart story through HTTP
// and a real disk store: committed sessions resume, pending proposals are
// dropped, closed sessions stay closed.
func TestE2ERecoveryDiskRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, "edfd-a", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, c := newTestServer(t, service.Config{Store: st})
	ctx := context.Background()

	sess, _, err := c.OpenSession(ctx, service.SessionRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "seed", WCET: 10, Deadline: 90, Period: 100}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range []edf.Task{
		{Name: "a", WCET: 20, Deadline: 150, Period: 200},
		{Name: "b", WCET: 5, Deadline: 40, Period: 50},
	} {
		if resp, err := sess.Propose(ctx, service.ProposeRequest{Task: service.SporadicTask(tk)}); err != nil || !resp.Admitted {
			t.Fatalf("propose %s: %+v, %v", tk.Name, resp, err)
		}
	}
	if _, err := sess.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// One pending (uncommitted) proposal: the restart must drop it.
	if resp, err := sess.Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{Name: "pend", WCET: 1, Deadline: 100, Period: 100}),
	}); err != nil || !resp.Admitted {
		t.Fatalf("pending propose: %+v, %v", resp, err)
	}
	closed, _, err := c.OpenSession(ctx, service.SessionRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "x", WCET: 1, Deadline: 50, Period: 50}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := closed.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// "Crash": stop the process's view of the store, then restart a fresh
	// server over the same directory.
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, "edfd-a", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, c2 := newTestServer(t, service.Config{Store: st2})

	state, _, err := c2.Session(sess.ID).State(ctx)
	if err != nil {
		t.Fatalf("resumed session: %v", err)
	}
	if state.Committed != 3 || state.Pending != 0 {
		t.Fatalf("resumed state: %+v, want committed=3 pending=0", state)
	}
	var ce *client.Error
	if _, _, err := c2.Session(closed.ID).State(ctx); !asClientError(err, &ce) || ce.StatusCode != 404 {
		t.Fatalf("closed session after restart: %v, want 404", err)
	}
	// The resumed session keeps working: further proposals commit.
	if resp, err := c2.Session(sess.ID).Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{Name: "post", WCET: 1, Deadline: 200, Period: 200}),
	}); err != nil || !resp.Admitted || resp.Committed != 3 {
		t.Fatalf("post-restart propose: %+v, %v", resp, err)
	}
}

// TestE2ERestartVerdictsBitIdentical is the property test pinning the
// acceptance criterion: a session journaled, crashed mid-pending and
// replayed answers the remaining proposal stream with responses that are
// byte-identical to an uninterrupted oracle session (whose pending batch
// was rolled back, mirroring the crash dropping it).
func TestE2ERestartVerdictsBitIdentical(t *testing.T) {
	ctx := context.Background()
	for trial := range 5 {
		stream := recoveryStream(t, int64(1000+trial), 22)
		commitN, pendN := 6+trial, 3

		st := store.NewMem()
		srv1, c1 := newTestServer(t, service.Config{Store: st})
		osrv, oc := newTestServer(t, service.Config{})

		open := func(c *client.Client) *client.Session {
			s, _, err := c.OpenSession(ctx, service.SessionRequest{
				Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "seed", WCET: 5, Deadline: 400, Period: 500}}),
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		live, oracle := open(c1), open(oc)

		// Identical prefix on both: commitN proposals then a commit, then
		// pendN proposals left pending.
		for _, s := range []*client.Session{live, oracle} {
			for _, tk := range stream[:commitN] {
				proposeJSON(t, ctx, s, tk)
			}
			if _, err := s.Commit(ctx); err != nil {
				t.Fatal(err)
			}
			for _, tk := range stream[commitN : commitN+pendN] {
				proposeJSON(t, ctx, s, tk)
			}
		}

		// Crash the journaled server; roll the oracle's pending back by
		// hand — that is exactly what replay does to uncommitted state.
		srv1.Close()
		_, c2 := newTestServer(t, service.Config{Store: st})
		if _, err := oracle.Rollback(ctx); err != nil {
			t.Fatal(err)
		}

		resumed := c2.Session(live.ID)
		for i, tk := range stream[commitN+pendN:] {
			got := proposeJSON(t, ctx, resumed, tk)
			want := proposeJSON(t, ctx, oracle, tk)
			if got != want {
				t.Fatalf("trial %d proposal %d diverged after restart:\n got  %s\n want %s", trial, i, got, want)
			}
		}
		gc, err := resumed.Commit(ctx)
		if err != nil {
			t.Fatal(err)
		}
		wc, err := oracle.Commit(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if gc != wc {
			t.Fatalf("trial %d final commit diverged: %+v vs %+v", trial, gc, wc)
		}
		osrv.Close()
	}
}

// TestE2ERehydrateOnMiss is the takeover building block: a second server
// sharing the store serves a session it has never seen by rehydrating it
// on the miss path.
func TestE2ERehydrateOnMiss(t *testing.T) {
	ctx := context.Background()
	st := store.NewMem()
	_, c1 := newTestServer(t, service.Config{Store: st})
	// The peer exists before the session does, so startup replay cannot
	// have carried it over — only lazy rehydration can.
	_, c2 := newTestServer(t, service.Config{Store: st})

	sess, _, err := c1.OpenSession(ctx, service.SessionRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "seed", WCET: 10, Deadline: 90, Period: 100}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := sess.Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{Name: "a", WCET: 5, Deadline: 40, Period: 50}),
	}); err != nil || !resp.Admitted {
		t.Fatalf("propose: %+v, %v", resp, err)
	}
	if _, err := sess.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	state, _, err := c2.Session(sess.ID).State(ctx)
	if err != nil {
		t.Fatalf("peer rehydration: %v", err)
	}
	if state.Committed != 2 || state.Pending != 0 {
		t.Fatalf("rehydrated state: %+v, want committed=2 pending=0", state)
	}
	if resp, err := c2.Session(sess.ID).Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{Name: "b", WCET: 1, Deadline: 200, Period: 200}),
	}); err != nil || !resp.Admitted {
		t.Fatalf("propose on peer: %+v, %v", resp, err)
	}
	// A bogus id still 404s — rehydration must not invent sessions.
	var ce *client.Error
	if _, _, err := c2.Session("s_nonexistent").State(ctx); !asClientError(err, &ce) || ce.StatusCode != 404 {
		t.Fatalf("unknown session: %v, want 404", err)
	}
}

// TestCloseWritesFinalSnapshot pins the shutdown ordering: Close must
// not return before the snapshotter's final compacting snapshot has
// been written, because callers (edfd main, the cluster spawner) close
// the store immediately after Close.
func TestCloseWritesFinalSnapshot(t *testing.T) {
	ctx := context.Background()
	st := store.NewMem()
	// An hour-long interval guarantees the only snapshot is the
	// shutdown one.
	srv, c := newTestServer(t, service.Config{Store: st, SnapshotInterval: time.Hour})
	sess, _, err := c.OpenSession(ctx, service.SessionRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "seed", WCET: 1, Deadline: 50, Period: 50}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := sess.Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{Name: "a", WCET: 1, Deadline: 40, Period: 40}),
	}); err != nil || !resp.Admitted {
		t.Fatalf("propose: %+v, %v", resp, err)
	}
	if _, err := sess.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if st.Stats().Snapshots == 0 {
		t.Fatal("Close returned before the final snapshot was written")
	}
}

// countingStore counts single-session store lookups, the expensive
// full-directory replays behind the rehydrate miss path.
type countingStore struct {
	store.Store
	loads atomic.Int64
}

func (c *countingStore) LoadSession(id string) (*store.SessionState, error) {
	c.loads.Add(1)
	return c.Store.LoadSession(id)
}

// TestRepeatedMissesSkipReplay pins the negative rehydrate cache: a
// bogus session id costs one store replay, not one per request —
// without it, unauthenticated 404 traffic is a resource-exhaustion
// vector (every miss replays every segment in the directory).
func TestRepeatedMissesSkipReplay(t *testing.T) {
	ctx := context.Background()
	cs := &countingStore{Store: store.NewMem()}
	_, c := newTestServer(t, service.Config{Store: cs})
	for i := range 5 {
		var ce *client.Error
		if _, _, err := c.Session("s_bogus").State(ctx); !asClientError(err, &ce) || ce.StatusCode != 404 {
			t.Fatalf("request %d for a bogus id: %v, want 404", i, err)
		}
	}
	if n := cs.loads.Load(); n != 1 {
		t.Fatalf("store lookups for a repeated bogus id = %d, want 1 (negative cache)", n)
	}
}

// TestE2EExpiredSessionsStayDead pins the TTL/durability interaction: the
// sweeper journals expire records, so neither a restart nor a peer can
// resurrect a session the TTL already removed.
func TestE2EExpiredSessionsStayDead(t *testing.T) {
	ctx := context.Background()
	st := store.NewMem()
	srv1, c1 := newTestServer(t, service.Config{Store: st, SessionTTL: 25 * time.Millisecond})

	sess, _, err := c1.OpenSession(ctx, service.SessionRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{Name: "seed", WCET: 1, Deadline: 50, Period: 50}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every touch refreshes the idle clock, so poll slower than the TTL:
	// each 150ms gap leaves the session idle long past 25ms.
	deadline := time.Now().Add(10 * time.Second)
	for {
		time.Sleep(150 * time.Millisecond)
		if _, _, err := sess.State(ctx); err != nil {
			break // expired
		}
		if time.Now().After(deadline) {
			t.Fatal("session never expired")
		}
	}
	srv1.Close()

	// Restart over the same store: replay must not resurrect it, on the
	// startup path or the lazy rehydration path.
	_, c2 := newTestServer(t, service.Config{Store: st})
	var ce *client.Error
	if _, _, err := c2.Session(sess.ID).State(ctx); !asClientError(err, &ce) || ce.StatusCode != 404 {
		t.Fatalf("expired session after restart: %v, want 404", err)
	}
}
