package service

import (
	"container/list"
	"hash/maphash"
	"sync"

	"repro/internal/core"
)

// cacheShards is the fixed shard count (a power of two so the hash can be
// masked). 16 shards keep lock contention negligible up to a few hundred
// concurrent requests while costing only 16 small maps.
const cacheShards = 16

// Cache is a sharded LRU keyed by analysis fingerprint. Each shard holds
// its own lock, map and recency list, so concurrent lookups of different
// fingerprints rarely contend. The zero value is not usable; construct
// with NewCache.
type Cache struct {
	seed   maphash.Seed
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu        sync.Mutex
	entries   map[string]*list.Element
	recency   *list.List // front = most recent
	capacity  int
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key    string
	result core.Result
}

// CacheStats aggregates counters across shards.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// HitRate returns hits / lookups, or 0 before the first lookup.
func (s CacheStats) HitRate() float64 {
	lookups := s.Hits + s.Misses
	if lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(lookups)
}

// NewCache builds a cache holding up to capacity results in total;
// capacity <= 0 returns nil, which disables caching (a nil *Cache is safe
// to use and never hits).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	c := &Cache{seed: maphash.MakeSeed()}
	per := max(capacity/cacheShards, 1)
	for i := range c.shards {
		c.shards[i] = cacheShard{
			entries:  make(map[string]*list.Element),
			recency:  list.New(),
			capacity: per,
		}
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)&(cacheShards-1)]
}

// Get returns the cached result for a fingerprint and refreshes its
// recency. ok is false on a miss (or a nil cache).
func (c *Cache) Get(key string) (core.Result, bool) {
	if c == nil {
		return core.Result{}, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return core.Result{}, false
	}
	s.hits++
	s.recency.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// Put stores a result under its fingerprint, evicting the least recently
// used entry of the shard when full. A nil cache drops the value.
func (c *Cache) Put(key string, r core.Result) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).result = r
		s.recency.MoveToFront(el)
		return
	}
	if s.recency.Len() >= s.capacity {
		oldest := s.recency.Back()
		delete(s.entries, oldest.Value.(*cacheEntry).key)
		s.recency.Remove(oldest)
		s.evictions++
	}
	s.entries[key] = s.recency.PushFront(&cacheEntry{key: key, result: r})
}

// Stats sums the shard counters. Safe on a nil cache (all zeros).
func (c *Cache) Stats() CacheStats {
	var out CacheStats
	if c == nil {
		return out
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.Evictions += s.evictions
		out.Entries += s.recency.Len()
		out.Capacity += s.capacity
		s.mu.Unlock()
	}
	return out
}
