package service

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eventstream"
	"repro/internal/model"
	"repro/internal/workload"
)

func oracleRandTask(r *rand.Rand) workload.Task {
	period := int64(10 + r.Intn(2000))
	c := 1 + r.Int63n(period/3+1)
	d := c + r.Int63n(2*period)
	return workload.SporadicTask(model.Task{WCET: c, Deadline: d, Period: period})
}

func oracleRandEvent(r *rand.Rand) workload.Task {
	c := 1 + r.Int63n(60)
	et := eventstream.Task{WCET: c, Deadline: c + r.Int63n(800)}
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		e := eventstream.Element{Offset: r.Int63n(300)}
		if r.Intn(6) > 0 {
			e.Cycle = 100 + r.Int63n(4000)
		}
		et.Stream = append(et.Stream, e)
	}
	return workload.EventTask(et)
}

// oracleSeed tries to find a small feasible seed workload; it returns the
// zero workload when the dice keep rolling infeasible sets.
func oracleSeed(r *rand.Rand, cascade engine.Analyzer, events bool) workload.Workload {
	for attempt := 0; attempt < 4; attempt++ {
		var w workload.Workload
		n := 1 + r.Intn(4)
		if events {
			w.Model = workload.Events
			for i := 0; i < n; i++ {
				w.Events = append(w.Events, *oracleRandEvent(r).Event)
			}
		} else {
			for i := 0; i < n; i++ {
				w.Tasks = append(w.Tasks, *oracleRandTask(r).Sporadic)
			}
		}
		res, err := engine.AnalyzeWorkload(cascade, w, core.Options{})
		if err == nil && res.Verdict == core.Feasible {
			return w
		}
	}
	return workload.Workload{}
}

// TestAdmissionIncrementalOracle replays randomized propose/commit/
// rollback sequences under both workload models and asserts every verdict
// is bit-identical to a from-scratch cascade analysis of the same
// workload — the incremental fast path must be decision-invisible.
func TestAdmissionIncrementalOracle(t *testing.T) {
	cascade, ok := engine.Get("cascade")
	if !ok {
		t.Fatal("cascade analyzer not registered")
	}
	const sequences = 260 // per model; 520 total
	var fastAccepts, escalations int64
	for _, events := range []bool{false, true} {
		for seq := 0; seq < sequences; seq++ {
			r := rand.New(rand.NewSource(int64(seq)*2 + boolInt(events)))
			cfg := AdmissionConfig{}
			if r.Intn(10) < 3 {
				cfg.Seed = oracleSeed(r, cascade, events)
			}
			if events && cfg.Seed.IsZero() {
				cfg.Seed = workload.Workload{Model: workload.Events}
			}
			adm, err := NewAdmission(cfg)
			if err != nil {
				t.Fatalf("seq %d (events=%v): NewAdmission: %v", seq, events, err)
			}
			committed := cfg.Seed.Clone()
			committed.Model = adm.Model()
			pending := workload.Workload{Model: adm.Model()}
			for op := 0; op < 30; op++ {
				switch p := r.Float64(); {
				case p < 0.70:
					var tk workload.Task
					if events {
						tk = oracleRandEvent(r)
					} else {
						tk = oracleRandTask(r)
					}
					mirror, _ := committed.Concat(pending)
					candidate, _ := mirror.Concat(taskAsWorkload(tk, adm.Model()))
					want, err := engine.AnalyzeWorkload(cascade, candidate, core.Options{})
					if err != nil {
						t.Fatalf("seq %d op %d: oracle: %v", seq, op, err)
					}
					out, err := adm.ProposeTask(tk)
					if err != nil {
						t.Fatalf("seq %d op %d: propose: %v", seq, op, err)
					}
					if out.Admitted != (want.Verdict == core.Feasible) {
						t.Fatalf("seq %d op %d (events=%v): admitted=%v but oracle verdict %s for %v",
							seq, op, events, out.Admitted, want.Verdict, candidate)
					}
					if out.Result.Verdict != want.Verdict {
						t.Fatalf("seq %d op %d (events=%v): verdict %s, oracle %s",
							seq, op, events, out.Result.Verdict, want.Verdict)
					}
					if out.Admitted {
						pending, _ = pending.Concat(taskAsWorkload(tk, adm.Model()))
					}
				case p < 0.85:
					adm.Commit()
					committed, _ = committed.Concat(pending)
					pending = workload.Workload{Model: adm.Model()}
				default:
					adm.Rollback()
					pending = workload.Workload{Model: adm.Model()}
				}
			}
			st := adm.Stats()
			fastAccepts += st.FastAccepts
			escalations += st.Escalations
		}
	}
	if fastAccepts == 0 {
		t.Fatal("no proposal ever took the incremental fast path; harness is vacuous")
	}
	if escalations == 0 {
		t.Fatal("no proposal ever escalated; harness is vacuous")
	}
	t.Logf("fast accepts: %d, escalations: %d", fastAccepts, escalations)
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func taskAsWorkload(t workload.Task, m workload.Model) workload.Workload {
	if m == workload.Events {
		return workload.Workload{Model: m, Events: []eventstream.Task{*t.Event}}
	}
	return workload.Workload{Model: m, Tasks: model.TaskSet{*t.Sporadic}}
}

// TestAdmissionNoIncremental asserts the knob really forces the full
// path: decisions stay identical, but nothing is counted as a fast
// accept.
func TestAdmissionNoIncremental(t *testing.T) {
	mk := func(noInc bool) *Admission {
		adm, err := NewAdmission(AdmissionConfig{NoIncremental: noInc})
		if err != nil {
			t.Fatal(err)
		}
		return adm
	}
	fast, full := mk(false), mk(true)
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 120; i++ {
		tk := oracleRandTask(r)
		a, err := fast.ProposeTask(tk)
		if err != nil {
			t.Fatal(err)
		}
		b, err := full.ProposeTask(tk)
		if err != nil {
			t.Fatal(err)
		}
		if a.Admitted != b.Admitted || a.Result.Verdict != b.Result.Verdict {
			t.Fatalf("proposal %d: fast (%v,%s) != full (%v,%s)",
				i, a.Admitted, a.Result.Verdict, b.Admitted, b.Result.Verdict)
		}
	}
	if fs := fast.Stats(); fs.FastAccepts == 0 {
		t.Error("eligible session never used the fast path")
	}
	if fs := full.Stats(); fs.FastAccepts != 0 {
		t.Errorf("NoIncremental session counted %d fast accepts", fs.FastAccepts)
	}
}

// TestAdmissionIneligibleOptions asserts option shapes that change the
// cascade's semantics keep the fast path off.
func TestAdmissionIneligibleOptions(t *testing.T) {
	cases := []AdmissionConfig{
		{Analyzer: "superpos"},
		{Options: core.Options{MaxIterations: 10}},
		{Options: core.Options{MaxLevel: 2}},
		{Options: core.Options{Arithmetic: core.ArithFloat64}},
		{Options: core.Options{Blocking: func(int64) int64 { return 0 }}},
	}
	r := rand.New(rand.NewSource(5))
	for i, cfg := range cases {
		adm, err := NewAdmission(cfg)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		for j := 0; j < 20; j++ {
			if _, err := adm.ProposeTask(oracleRandTask(r)); err != nil {
				t.Fatalf("case %d: %v", i, err)
			}
		}
		if st := adm.Stats(); st.FastAccepts != 0 {
			t.Errorf("case %d: ineligible config counted %d fast accepts", i, st.FastAccepts)
		}
	}
	// ArithBigRat is bit-identical to exact and stays eligible.
	adm, err := NewAdmission(AdmissionConfig{Options: core.Options{Arithmetic: core.ArithBigRat}})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 40; j++ {
		if _, err := adm.ProposeTask(oracleRandTask(r)); err != nil {
			t.Fatal(err)
		}
	}
	if st := adm.Stats(); st.FastAccepts == 0 {
		t.Error("big-rat session never used the fast path")
	}
}

// TestAdmissionIncrementalRace hammers one session from many goroutines
// so the race detector sees the fast path, escalation, commit and
// rollback interleaving.
func TestAdmissionIncrementalRace(t *testing.T) {
	adm, err := NewAdmission(AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				switch p := r.Float64(); {
				case p < 0.8:
					if _, err := adm.ProposeTask(oracleRandTask(r)); err != nil {
						t.Error(err)
						return
					}
				case p < 0.9:
					adm.Commit()
				default:
					adm.Rollback()
				}
			}
		}(g)
	}
	wg.Wait()
}
