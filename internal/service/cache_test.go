package service

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestCacheHitMissEvict(t *testing.T) {
	// Capacity below the shard count still yields one slot per shard.
	c := NewCache(cacheShards)
	if _, ok := c.Get("absent"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", core.Result{Verdict: core.Feasible, Iterations: 7})
	got, ok := c.Get("a")
	if !ok || got.Iterations != 7 {
		t.Fatalf("Get(a) = %+v, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats after one miss + one hit: %+v", st)
	}
	if r := st.HitRate(); r != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", r)
	}

	// Overwriting a key must update in place, not grow.
	c.Put("a", core.Result{Verdict: core.Infeasible})
	if got, _ := c.Get("a"); got.Verdict != core.Infeasible {
		t.Error("Put did not overwrite")
	}

	// Enough distinct keys must trigger evictions with bounded entries.
	for i := range 20 * cacheShards {
		c.Put(fmt.Sprintf("key-%d", i), core.Result{})
	}
	st = c.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions despite overflow")
	}
	if st.Entries > st.Capacity {
		t.Errorf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// Two slots per shard: an entry refreshed before every insert into
	// its shard must survive, because the insert evicts the older slot.
	c2 := NewCache(2 * cacheShards)
	c2.Put("hot", core.Result{Iterations: 1})
	var evictor []string
	for i := 0; len(evictor) < 8; i++ {
		k := fmt.Sprintf("cold-%d", i)
		if c2.shard(k) == c2.shard("hot") {
			evictor = append(evictor, k)
		}
	}
	for _, k := range evictor {
		c2.Get("hot") // refresh recency before each insert
		c2.Put(k, core.Result{})
	}
	if _, ok := c2.Get("hot"); !ok {
		t.Error("recently used entry was evicted")
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *Cache = NewCache(0)
	if c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	c.Put("x", core.Result{})
	if _, ok := c.Get("x"); ok {
		t.Error("nil cache returned a hit")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(256)
	var wg sync.WaitGroup
	for w := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 500 {
				k := fmt.Sprintf("k-%d", (w*31+i)%300)
				if _, ok := c.Get(k); !ok {
					c.Put(k, core.Result{Iterations: int64(i)})
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*500 {
		t.Errorf("lookups = %d, want %d", st.Hits+st.Misses, 8*500)
	}
}
