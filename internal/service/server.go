package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/store"
	"repro/internal/workload"
)

// Config tunes the server. The zero value selects production defaults.
type Config struct {
	// CacheCapacity bounds the result cache (entries); 0 selects
	// DefaultCacheCapacity, negative disables caching.
	CacheCapacity int
	// Workers bounds the batch worker pool; <= 0 selects runtime.NumCPU.
	Workers int
	// MaxInFlight bounds concurrently served /v1 requests; excess
	// requests are rejected with 429 rather than queued. 0 selects
	// DefaultMaxInFlight.
	MaxInFlight int
	// RequestTimeout caps one request's analysis work; 0 selects
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// MaxSessions bounds concurrently open admission sessions; 0 selects
	// DefaultMaxSessions.
	MaxSessions int
	// MaxBatchJobs bounds sets x analyzers per batch request; 0 selects
	// DefaultMaxBatchJobs.
	MaxBatchJobs int
	// SessionTTL closes admission sessions idle past this duration; 0 (the
	// default) disables sweeping, preserving the sessions-live-until-closed
	// behavior.
	SessionTTL time.Duration
	// TraceCapacity bounds the retained request traces; 0 selects
	// obs.DefaultTraceCapacity.
	TraceCapacity int
	// Logger receives structured request and session lifecycle logs
	// (trace/session attrs attached); nil discards them.
	Logger *slog.Logger
	// Store, when non-nil, makes admission sessions durable: every
	// open/admit/commit/rollback/close/expire decision is journaled to
	// its write-ahead log, a restarting server replays its sessions back
	// to life, and a session-miss rehydrates from the store — which,
	// over a shared directory, is the cluster takeover path.
	Store store.Store
	// SnapshotInterval is the cadence of compacting store snapshots; 0
	// selects DefaultSnapshotInterval. Only used when Store is set.
	SnapshotInterval time.Duration
}

// Defaults for Config's zero values.
const (
	DefaultCacheCapacity  = 4096
	DefaultMaxInFlight    = 256
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxSessions    = 1024
	DefaultMaxBatchJobs   = 4096
	maxRequestBytes       = 8 << 20
	// DefaultSnapshotInterval is the compacting-snapshot cadence when a
	// store is configured without an explicit interval.
	DefaultSnapshotInterval = 30 * time.Second
)

// Server is the edfd daemon: engine registry in, HTTP/JSON out. Construct
// with New and mount Handler on an http.Server.
type Server struct {
	cfg      Config
	cache    *Cache
	sessions *sessionStore
	limiter  chan struct{}
	m        metrics
	started  time.Time
	log      *slog.Logger
	hub      *obs.Hub
	traces   *obs.Recorder
	// store, when non-nil, journals session decisions durably (see
	// Config.Store). The server does not own its lifecycle: the creator
	// closes it after the HTTP server has drained.
	store store.Store
	// missMu guards misses, the negative rehydrate cache: session ids a
	// store lookup recently found absent (see recentMiss/noteMiss).
	missMu sync.Mutex
	misses map[string]time.Time
	// stop ends the long-lived observability streams (SSE feeds) and the
	// session sweeper so a graceful shutdown is not held open by them.
	stop      chan struct{}
	closeOnce sync.Once
	// snapdone waits for the snapshotter, whose shutdown path writes a
	// final compacting snapshot; Close blocks on it so the creator can
	// close the store right after Close returns.
	snapdone sync.WaitGroup
}

// New builds a server from the config.
func New(cfg Config) *Server {
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = DefaultCacheCapacity
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MaxBatchJobs <= 0 {
		cfg.MaxBatchJobs = DefaultMaxBatchJobs
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheCapacity),
		sessions: newSessionStore(cfg.MaxSessions),
		limiter:  make(chan struct{}, cfg.MaxInFlight),
		started:  time.Now(),
		log:      log,
		hub:      obs.NewHub(),
		traces:   obs.NewRecorder(cfg.TraceCapacity),
		stop:     make(chan struct{}),
	}
	s.sessions.onExpired = s.publishExpired
	if cfg.Store != nil {
		s.store = cfg.Store
		// Replay the journal before any request (or the sweeper) can see
		// the session map: a restarted edfd resumes exactly the sessions
		// it had committed, then snapshots them periodically so the log
		// stays compact.
		s.recoverSessions()
		interval := cfg.SnapshotInterval
		if interval <= 0 {
			interval = DefaultSnapshotInterval
		}
		s.snapdone.Add(1)
		go func() {
			defer s.snapdone.Done()
			s.snapshotter(interval)
		}()
	}
	if cfg.SessionTTL > 0 {
		// Sweep a few times per TTL so expiry lags the deadline by at
		// most ~a quarter of it.
		interval := max(cfg.SessionTTL/4, 10*time.Millisecond)
		go s.sessions.sweeper(cfg.SessionTTL, interval, s.stop)
	}
	return s
}

// Close stops the background session sweeper and ends open SSE streams so
// a graceful shutdown can drain. The request/response paths keep serving;
// Close only releases the long-lived goroutines — but it does wait for
// the snapshotter's final compacting snapshot, so a caller may close the
// store as soon as Close returns without racing that write.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	s.snapdone.Wait()
}

// CacheStats exposes the cache counters (for in-process embedders).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Handler returns the routed and instrumented HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/partition", s.handlePartition)
	mux.HandleFunc("GET /v1/analyzers", s.handleAnalyzers)
	mux.HandleFunc("GET /v1/schema", s.handleSchema)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionOpen)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionClose)
	mux.HandleFunc("POST /v1/sessions/{id}/propose", s.handleSessionPropose)
	mux.HandleFunc("POST /v1/sessions/{id}/propose-batch", s.handleSessionProposeBatch)
	mux.HandleFunc("POST /v1/sessions/{id}/commit", s.handleSessionCommit)
	mux.HandleFunc("POST /v1/sessions/{id}/rollback", s.handleSessionRollback)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleSessionEvents)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Health and metrics bypass the limiter: they must answer even
		// (especially) when the analysis path is saturated. So do the
		// observability reads — trace lookups and the SSE feeds, whose
		// streams must also outlive the request timeout.
		if !strings.HasPrefix(r.URL.Path, "/v1/") || StreamingPath(r.URL.Path) {
			mux.ServeHTTP(w, r)
			return
		}
		select {
		case s.limiter <- struct{}{}:
			defer func() { <-s.limiter }()
		default:
			s.m.throttled.Add(1)
			writeJSON(w, http.StatusTooManyRequests,
				ErrorFor(http.StatusTooManyRequests, errors.New("server at capacity, retry later")).Response())
			return
		}
		s.m.enter()
		defer s.m.leave()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		// Adopt the caller's trace id (edfproxy propagates one) or mint a
		// fresh one, and echo it so a direct caller learns the id. The
		// trace is recorded after the handler returns — net/http flushes
		// the buffered response after that, so by the time the client
		// reads the response the trace is resolvable.
		id := r.Header.Get(obs.TraceHeader)
		if id == "" {
			id = obs.NewTraceID()
		}
		tr := obs.StartTrace(id, OpFor(r))
		w.Header().Set(obs.TraceHeader, id)
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
		mux.ServeHTTP(w, r.WithContext(obs.WithTrace(ctx, tr)))
		s.traces.Record(tr)
		s.log.Debug("request served", "op", tr.Op, "trace", tr.ID, "session", tr.Session, "path", tr.Path)
	})
}

// analyzeOne serves one (workload, analyzer, options) analysis through
// the cache: a hit costs one lookup, a miss runs the analyzer via the
// batch runner (one job) so cancellation and wall-time telemetry stay
// uniform with the batch path.
func (s *Server) analyzeOne(ctx context.Context, wl workload.Workload, a engine.Analyzer, opt core.Options) (core.Result, time.Duration, bool, string, error) {
	tr := obs.FromContext(ctx)
	var lookup time.Time
	if tr != nil {
		lookup = time.Now()
	}
	fp, cacheable := engine.WorkloadFingerprint(wl, a.Info().Name, opt)
	if cacheable {
		if res, hit := s.cache.Get(fp); hit {
			if tr != nil {
				tr.EndSpan("cache", lookup, "hit")
			}
			return res, 0, true, fp, nil
		}
	}
	var stages obs.StageLog
	if tr != nil {
		detail := "miss"
		if !cacheable {
			detail = "bypass"
		}
		tr.EndSpan("cache", lookup, detail)
		opt.Stages = &stages
	}
	run := time.Now()
	jr := engine.Run(ctx, []engine.Job{{Workload: wl, Analyzer: a, Opt: opt}}, engine.RunOptions{Workers: 1})[0]
	if jr.Err != nil {
		if tr != nil {
			tr.EndSpan("analyze", run, "error")
		}
		return core.Result{}, 0, false, fp, jr.Err
	}
	s.m.promotions.Add(jr.Promotions)
	if tr != nil {
		end := time.Now()
		stages.SpansInto(tr, end)
		tr.EndSpan("analyze", run, jr.Result.Verdict.String())
	}
	if cacheable {
		s.cache.Put(fp, jr.Result)
	}
	return jr.Result, jr.Wall, false, fp, nil
}

// failAnalysis maps an analysis error to its status: 422 for a workload
// the analyzer cannot run, 503 for a canceled request.
func (s *Server) failAnalysis(w http.ResponseWriter, err error) {
	var unsup *engine.EventsUnsupportedError
	var part *engine.PartitionedUnsupportedError
	if errors.As(err, &unsup) || errors.As(err, &part) {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("analysis canceled: %w", err))
}

// errPartitionedEndpoint rejects partitioned workloads on the
// uniprocessor endpoints.
var errPartitionedEndpoint = errors.New("partitioned workloads are served by POST /v1/partition")

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := req.Workload.Validate(); err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	if req.Workload.Kind() == workload.Partitioned {
		s.fail(w, http.StatusUnprocessableEntity, errPartitionedEndpoint)
		return
	}
	a, opt, err := resolveAnalysis(req.Analyzer, req.Options)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	res, wall, cached, fp, err := s.analyzeOne(r.Context(), req.Workload, a, opt)
	if err != nil {
		s.failAnalysis(w, err)
		return
	}
	s.m.analyses.Add(1)
	if req.Workload.Kind() == workload.Events {
		s.m.eventAnalyses.Add(1)
	}
	writeJSON(w, http.StatusOK, AnalyzeResponse{
		Name:        req.Name,
		Model:       string(req.Workload.Kind()),
		Analyzer:    a.Info().Name,
		Result:      NewResultJSON(res),
		WallNS:      wall.Nanoseconds(),
		Cached:      cached,
		Fingerprint: fp,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Sets) == 0 {
		s.fail(w, http.StatusUnprocessableEntity, errors.New("batch needs at least one set"))
		return
	}
	spec := strings.Join(req.Analyzers, ",")
	if spec == "" {
		spec = "cascade"
	}
	analyzers, err := engine.Parse(spec)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	opt, err := req.Options.Core()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if jobs := len(req.Sets) * len(analyzers); jobs > s.cfg.MaxBatchJobs {
		s.fail(w, http.StatusUnprocessableEntity,
			fmt.Errorf("batch of %d jobs exceeds the limit of %d", jobs, s.cfg.MaxBatchJobs))
		return
	}
	wls := make([]workload.Workload, len(req.Sets))
	for i, ws := range req.Sets {
		wls[i] = ws.Workload
		if err := wls[i].Validate(); err != nil {
			s.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("set %d: %w", i, err))
			return
		}
		if wls[i].Kind() == workload.Partitioned {
			s.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("set %d: %w", i, errPartitionedEndpoint))
			return
		}
	}

	// Split the cross product into cache hits, capability rejections and
	// jobs that must run, in set-major order so the response order matches
	// the batch contract.
	out := make([]BatchJobJSON, 0, len(wls)*len(analyzers))
	var jobs []engine.Job
	var jobFor []int // jobs[k] fills out[jobFor[k]]
	var fps []string
	for wi, wl := range wls {
		for _, a := range analyzers {
			j := BatchJobJSON{
				SetIndex: wi,
				SetName:  req.Sets[wi].Name,
				Model:    string(wl.Kind()),
				Analyzer: a.Info().Name,
			}
			// Capability gate: an event workload on a non-event analyzer
			// can never produce a verdict — report the typed error without
			// spending a worker slot or a cache lookup.
			if wl.Kind() == workload.Events && !a.Info().Events {
				err := &engine.EventsUnsupportedError{Analyzer: a.Info().Name}
				j.Result = NewResultJSON(core.Result{Verdict: core.Undecided})
				j.Err = err.Error()
				out = append(out, j)
				continue
			}
			fp, cacheable := engine.WorkloadFingerprint(wl, a.Info().Name, opt)
			if cacheable {
				if res, hit := s.cache.Get(fp); hit {
					j.Result = NewResultJSON(res)
					j.Cached = true
					out = append(out, j)
					continue
				}
			}
			jobs = append(jobs, engine.Job{SetIndex: wi, SetName: req.Sets[wi].Name, Workload: wl, Analyzer: a, Opt: opt})
			jobFor = append(jobFor, len(out))
			if !cacheable {
				fp = ""
			}
			fps = append(fps, fp)
			out = append(out, j)
		}
	}
	// The client may shrink the worker pool below the server's bound but
	// never widen it past the operator's -workers setting.
	workers := req.Workers
	if workers <= 0 || (s.cfg.Workers > 0 && workers > s.cfg.Workers) {
		workers = s.cfg.Workers
	}
	run := time.Now()
	for k, jr := range engine.Run(r.Context(), jobs, engine.RunOptions{Workers: workers}) {
		j := &out[jobFor[k]]
		j.Result = NewResultJSON(jr.Result)
		j.WallNS = jr.Wall.Nanoseconds()
		s.m.promotions.Add(jr.Promotions)
		if jr.Err != nil {
			j.Err = jr.Err.Error()
			continue
		}
		if fps[k] != "" {
			s.cache.Put(fps[k], jr.Result)
		}
	}
	if tr := obs.FromContext(r.Context()); tr != nil {
		tr.EndSpan("batch", run, fmt.Sprintf("%d jobs, %d ran", len(out), len(jobs)))
	}
	s.m.batchJobs.Add(uint64(len(out)))
	writeJSON(w, http.StatusOK, BatchResponse{Results: out})
}

// handlePartition places a partitioned workload onto its processors,
// verifying every bin through the cache-backed batch runner, and
// reports either the proven placement or the counterexample trail.
func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	var req PartitionRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Workload.Kind() != workload.Partitioned {
		s.fail(w, http.StatusUnprocessableEntity,
			fmt.Errorf("partition needs a %q workload, got %q (uniprocessor workloads are served by POST /v1/analyze)",
				workload.Partitioned, req.Workload.Kind()))
		return
	}
	if err := req.Workload.Validate(); err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	a, opt, err := resolveAnalysis(req.Analyzer, req.Options)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	hs, err := partition.ParseHeuristics(req.Heuristics)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// Same clamp as batch: callers may shrink the pool, never widen it.
	workers := req.Workers
	if workers <= 0 || (s.cfg.Workers > 0 && workers > s.cfg.Workers) {
		workers = s.cfg.Workers
	}
	start := time.Now()
	pl, err := partition.Place(r.Context(), req.Workload, partition.Config{
		Analyzer:   a.Info().Name,
		Options:    opt,
		Workers:    workers,
		Cache:      s.cache,
		Heuristics: hs,
	})
	if err != nil {
		s.failAnalysis(w, err)
		return
	}
	s.m.partitionRequests.Add(1)
	if pl.Feasible {
		s.m.partitionFeasible.Add(1)
	} else {
		s.m.partitionInfeasible.Add(1)
	}
	s.m.partitionBinChecks.Add(pl.Stats.BinChecks)
	s.m.partitionBinCacheHits.Add(pl.Stats.CacheHits)
	s.m.partitionGateRejections.Add(pl.Stats.GateRejections)
	s.m.promotions.Add(pl.Stats.Promotions)
	if tr := obs.FromContext(r.Context()); tr != nil {
		// One span per processor under the placement span, so the trace
		// tree shows every bin's verdict and verification cost.
		off := start.Sub(tr.Start()).Nanoseconds()
		for _, rep := range pl.Processors {
			detail := fmt.Sprintf("%d tasks, %s", len(rep.Tasks), rep.Verdict)
			if rep.CacheHit {
				detail += " (cached)"
			}
			tr.AddSpan(obs.Span{
				Name:    fmt.Sprintf("bin:p%d", rep.Index),
				StartNS: off,
				DurNS:   rep.WallNS,
				Detail:  detail,
			})
		}
		detail := fmt.Sprintf("feasible via %s, %d bin checks", pl.Heuristic, pl.Stats.BinChecks)
		if !pl.Feasible {
			detail = "infeasible"
			if ce := pl.Counterexample; ce != nil {
				detail = fmt.Sprintf("infeasible, task %d unplaceable after %d", ce.FailedTask, ce.Placed)
			}
		}
		tr.EndSpan("place", start, detail)
	}
	writeJSON(w, http.StatusOK, PartitionResponse{
		Name:      req.Name,
		Model:     string(workload.Partitioned),
		Analyzer:  a.Info().Name,
		Placement: pl,
		WallNS:    time.Since(start).Nanoseconds(),
	})
}

// analyzersJSON renders the registry in wire form.
func analyzersJSON() []AnalyzerJSON {
	all := engine.All()
	out := make([]AnalyzerJSON, len(all))
	for i, a := range all {
		info := a.Info()
		out[i] = AnalyzerJSON{
			Name:     info.Name,
			Label:    info.Label,
			Kind:     info.Kind.String(),
			Blocking: info.Blocking,
			Events:   info.Events,
		}
	}
	return out
}

func (s *Server) handleAnalyzers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, analyzersJSON())
}

// handleSchema declares what this server speaks, so callers (the
// cluster proxy included) can reject unsupported workload models
// without a round trip per request.
func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	hs := partition.AllHeuristics()
	names := make([]string, len(hs))
	for i, h := range hs {
		names[i] = string(h)
	}
	writeJSON(w, http.StatusOK, SchemaResponse{
		WireVersion: WireVersion,
		Models: []string{
			string(workload.Sporadic),
			string(workload.Events),
			string(workload.Partitioned),
		},
		Analyzers:  analyzersJSON(),
		Heuristics: names,
	})
}

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SessionRequest
	if !s.decode(w, r, &req) {
		return
	}
	opt, err := req.Options.Core()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if req.Workload.Kind() == workload.Partitioned {
		s.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("sessions: %w", errPartitionedEndpoint))
		return
	}
	adm, err := NewAdmission(AdmissionConfig{Analyzer: req.Analyzer, Options: opt, Seed: req.Workload})
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	id, e, err := s.sessions.open(adm, req.Analyzer, req.Options)
	if err != nil {
		s.fail(w, http.StatusTooManyRequests, err)
		return
	}
	if err := s.journalOpen(id, e, req); err != nil {
		// No durable open record, no session: handing out an id that a
		// restart would forget is worse than failing the open.
		s.sessions.close(id)
		s.m.journalErrors.Add(1)
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("journaling session open: %w", err))
		return
	}
	tagTrace(r.Context(), id, "")
	st := s.sessionState(id, adm)
	if tr := obs.FromContext(r.Context()); tr != nil {
		tr.EndSpan("open", start, fmt.Sprintf("%s/%s, %d seeded", st.Analyzer, st.Model, st.Committed))
	}
	s.publish(r.Context(), obs.Event{Type: obs.EventOpen, Session: id, Utilization: st.Utilization})
	s.log.Info("session opened", "session", id, "trace", traceID(r.Context()),
		"analyzer", st.Analyzer, "model", st.Model, "seed", st.Committed)
	writeJSON(w, http.StatusCreated, st)
}

// session resolves the {id} path value, answering 404 itself on a miss.
// With a store configured, a miss first tries to rehydrate the session
// from the shared directory — the takeover path, where this replica
// inherits a dead owner's session. The session is held in-flight (safe
// from the TTL sweeper) until the returned release runs; the caller
// must defer it on success.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (string, *sessionEntry, func(), bool) {
	id := r.PathValue("id")
	e, release, err := s.ensureSession(id)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return "", nil, nil, false
	}
	return id, e, release, true
}

func (s *Server) sessionState(id string, adm *Admission) SessionResponse {
	committed, pending, util := adm.Snapshot()
	return SessionResponse{
		ID:          id,
		Model:       string(adm.Model()),
		Analyzer:    adm.Analyzer(),
		Committed:   committed.Len(),
		Pending:     pending.Len(),
		Utilization: util,
	}
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	if id, e, release, ok := s.session(w, r); ok {
		defer release()
		writeJSON(w, http.StatusOK, s.sessionState(id, e.adm))
	}
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.PathValue("id")
	if !s.sessions.close(id) {
		// A store-backed replica may be asked to close a session it never
		// held live (the owner died after opening it): rehydrate, then
		// close, so the close record lands in the log.
		if !s.rehydrate(id) || !s.sessions.close(id) {
			s.fail(w, http.StatusNotFound, errSessionUnknown)
			return
		}
	}
	s.journalClose(id)
	tagTrace(r.Context(), id, "")
	if tr := obs.FromContext(r.Context()); tr != nil {
		tr.EndSpan("close", start, "")
	}
	s.publish(r.Context(), obs.Event{Type: obs.EventClose, Session: id})
	s.log.Info("session closed", "session", id, "trace", traceID(r.Context()))
	w.WriteHeader(http.StatusNoContent)
}

// newProposeResponse converts an admission outcome to its wire form.
func newProposeResponse(out ProposeOutcome) ProposeResponse {
	return ProposeResponse{
		Admitted:    out.Admitted,
		Result:      NewResultJSON(out.Result),
		Utilization: out.Utilization,
		Committed:   out.Committed,
		Pending:     out.Pending,
		Escalated:   out.Escalated,
		Path:        out.Path,
	}
}

// countProposePath splits a decision into the incremental/escalated
// telemetry counters and folds in its arithmetic fast-path exits.
func (s *Server) countProposePath(out ProposeOutcome) {
	if out.Escalated {
		s.m.escalated.Add(1)
	} else {
		s.m.incremental.Add(1)
	}
	s.m.promotions.Add(out.Promotions)
}

func (s *Server) handleSessionPropose(w http.ResponseWriter, r *http.Request) {
	id, e, release, ok := s.session(w, r)
	if !ok {
		return
	}
	defer release()
	var req ProposeRequest
	if !s.decode(w, r, &req) {
		return
	}
	start := time.Now()
	out, err := s.proposeJournaled(e, id, req.Task)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	latency := time.Since(start)
	if tr := obs.FromContext(r.Context()); tr != nil {
		tr.Session, tr.Path = id, out.Path
		out.Stages.SpansInto(tr, time.Now())
		tr.EndSpan("propose", start, out.Path+" "+out.Result.Verdict.String())
	}
	s.m.proposeNS.observe(latency.Nanoseconds(), 1)
	s.m.proposals.Add(1)
	s.countProposePath(out)
	s.publishDecision(r.Context(), id, out, latency)
	writeJSON(w, http.StatusOK, newProposeResponse(out))
}

func (s *Server) handleSessionProposeBatch(w http.ResponseWriter, r *http.Request) {
	id, e, release, ok := s.session(w, r)
	if !ok {
		return
	}
	defer release()
	var req ProposeBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	start := time.Now()
	outs, err := s.proposeBatchJournaled(e, id, req.Tasks)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	// One wall-clock measurement spread evenly over the batch keeps the
	// histogram's per-proposal semantics without timing each task inside
	// the critical section.
	perTask := time.Since(start) / time.Duration(len(outs))
	tr := obs.FromContext(r.Context())
	if tr != nil {
		tr.Session = id
	}
	s.m.proposeNS.observe(perTask.Nanoseconds(), len(outs))
	s.m.proposals.Add(uint64(len(outs)))
	s.m.proposeBatches.Add(1)
	resp := ProposeBatchResponse{Results: make([]ProposeResponse, len(outs))}
	escalations := 0
	for i, out := range outs {
		s.countProposePath(out)
		s.publishDecision(r.Context(), id, out, perTask)
		if out.Escalated {
			escalations++
			// Stage spans of every escalation would swamp a large batch's
			// trace; keep the first few, the count goes in the summary span.
			if tr != nil && len(tr.Spans) < 64 {
				outs[i].Stages.SpansInto(tr, time.Now())
			}
		}
		resp.Results[i] = newProposeResponse(out)
	}
	if tr != nil {
		// The batch's path is its most expensive member's.
		tr.Path = obs.PathGate
		for _, out := range outs {
			if out.Path == obs.PathFast && tr.Path == obs.PathGate {
				tr.Path = obs.PathFast
			}
			if out.Path == obs.PathCascade {
				tr.Path = obs.PathCascade
				break
			}
		}
		tr.EndSpan("propose-batch", start, fmt.Sprintf("%d tasks, %d escalated", len(outs), escalations))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionCommit(w http.ResponseWriter, r *http.Request) {
	s.finishPending(w, r, obs.EventCommit, (*Admission).Commit)
}

func (s *Server) handleSessionRollback(w http.ResponseWriter, r *http.Request) {
	s.finishPending(w, r, obs.EventRollback, (*Admission).Rollback)
}

// finishPending serves commit and rollback, which differ only in the
// Admission method they invoke and the feed event they publish.
func (s *Server) finishPending(w http.ResponseWriter, r *http.Request, event string, move func(*Admission) FinishOutcome) {
	id, e, release, ok := s.session(w, r)
	if !ok {
		return
	}
	defer release()
	start := time.Now()
	out := s.finishJournaled(e, id, event, move)
	tagTrace(r.Context(), id, "")
	if tr := obs.FromContext(r.Context()); tr != nil {
		tr.EndSpan(event, start, fmt.Sprintf("%d tasks moved", out.Moved))
	}
	s.publish(r.Context(), obs.Event{
		Type:        event,
		Session:     id,
		Moved:       out.Moved,
		Utilization: out.Utilization,
		LatencyNS:   time.Since(start).Nanoseconds(),
	})
	writeJSON(w, http.StatusOK, CommitResponse{
		Moved:       out.Moved,
		Committed:   out.Committed,
		Utilization: out.Utilization,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ns": time.Since(s.started).Nanoseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.writeMetrics(w)
}

// resolveAnalysis maps wire analyzer/options to engine values.
func resolveAnalysis(name string, oj OptionsJSON) (engine.Analyzer, core.Options, error) {
	if name == "" {
		name = "cascade"
	}
	a, ok := engine.Get(name)
	if !ok {
		return nil, core.Options{}, fmt.Errorf("unknown analyzer %q (see GET /v1/analyzers)", name)
	}
	opt, err := oj.Core()
	return a, opt, err
}

// decode parses a JSON body, answering 400 itself on failure.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// fail writes the uniform typed error body and counts the error.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.m.errors.Add(1)
	writeJSON(w, code, ErrorFor(code, err).Response())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding a value we just built can only fail on a broken
	// connection; nothing useful can be written at that point.
	_ = json.NewEncoder(w).Encode(v)
}
