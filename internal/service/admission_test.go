package service

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

func TestAdmissionProposeCommitRollback(t *testing.T) {
	adm, err := NewAdmission(AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if adm.Analyzer() != "cascade" {
		t.Errorf("default analyzer = %q", adm.Analyzer())
	}

	out, err := adm.Propose(model.Task{Name: "a", WCET: 2, Deadline: 8, Period: 10})
	if err != nil || !out.Admitted {
		t.Fatalf("first propose: %+v, %v", out, err)
	}
	committed, pending, util := adm.Snapshot()
	if committed.Len() != 0 || pending.Len() != 1 {
		t.Fatalf("after propose: committed %d pending %d", committed.Len(), pending.Len())
	}
	if util < 0.19 || util > 0.21 {
		t.Errorf("utilization = %v, want 0.2", util)
	}

	if out := adm.Commit(); out.Moved != 1 || out.Committed != 1 {
		t.Fatalf("commit outcome %+v", out)
	}
	committed, pending, _ = adm.Snapshot()
	if committed.Len() != 1 || pending.Len() != 0 {
		t.Fatalf("after commit: committed %d pending %d", committed.Len(), pending.Len())
	}

	// Stage another task, then discard it: set and utilization revert.
	if out, _ := adm.Propose(model.Task{Name: "b", WCET: 3, Deadline: 15, Period: 15}); !out.Admitted {
		t.Fatal("second propose rejected")
	}
	if out := adm.Rollback(); out.Moved != 1 || out.Committed != 1 {
		t.Fatalf("rollback outcome %+v", out)
	}
	committed, pending, util = adm.Snapshot()
	if committed.Len() != 1 || pending.Len() != 0 {
		t.Fatalf("after rollback: committed %d pending %d", committed.Len(), pending.Len())
	}
	if util < 0.19 || util > 0.21 {
		t.Errorf("utilization after rollback = %v, want 0.2", util)
	}
}

func TestAdmissionUtilizationGate(t *testing.T) {
	adm, err := NewAdmission(AdmissionConfig{
		Seed: workload.NewSporadic(model.TaskSet{{Name: "base", WCET: 9, Deadline: 10, Period: 10}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 0.9 + 0.2 > 1: must be rejected by the O(1) gate, no analyzer run.
	out, err := adm.Propose(model.Task{Name: "over", WCET: 2, Deadline: 10, Period: 10})
	if err != nil {
		t.Fatal(err)
	}
	if out.Admitted || out.Result.Verdict != core.Infeasible {
		t.Fatalf("overload admitted: %+v", out)
	}
	if out.Result.Iterations != 0 {
		t.Errorf("utilization gate ran an analyzer (%d iterations)", out.Result.Iterations)
	}
	if st := adm.Stats(); st.Rejected != 1 || st.Iterations != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAdmissionRejectsInfeasibleWithoutStaging(t *testing.T) {
	adm, err := NewAdmission(AdmissionConfig{
		Seed: workload.NewSporadic(model.TaskSet{{Name: "tight", WCET: 5, Deadline: 6, Period: 20}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fits under U = 1 but misses deadlines: the analyzer must reject it
	// and the session state must not change.
	out, err := adm.Propose(model.Task{Name: "clash", WCET: 5, Deadline: 6, Period: 20})
	if err != nil {
		t.Fatal(err)
	}
	if out.Admitted {
		t.Fatalf("infeasible task admitted: %+v", out)
	}
	committed, pending, util := adm.Snapshot()
	if committed.Len() != 1 || pending.Len() != 0 {
		t.Errorf("state changed on rejection: committed %d pending %d", committed.Len(), pending.Len())
	}
	if util > 0.26 {
		t.Errorf("utilization grew on rejection: %v", util)
	}
}

func TestAdmissionErrors(t *testing.T) {
	if _, err := NewAdmission(AdmissionConfig{Analyzer: "no-such"}); err == nil {
		t.Error("unknown analyzer accepted")
	}
	if _, err := NewAdmission(AdmissionConfig{
		Seed: workload.NewSporadic(model.TaskSet{{WCET: 9, Deadline: 10, Period: 10}, {WCET: 9, Deadline: 10, Period: 10}}),
	}); err == nil {
		t.Error("infeasible seed accepted")
	}
	adm, _ := NewAdmission(AdmissionConfig{})
	if _, err := adm.Propose(model.Task{WCET: -1, Deadline: 1, Period: 1}); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestAdmissionConcurrentProposals(t *testing.T) {
	adm, err := NewAdmission(AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	admitted := make([]bool, 200)
	for i := range admitted {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := adm.Propose(model.Task{
				WCET: 1, Deadline: 80, Period: 100, // 1% each; ~100 fit
			})
			if err != nil {
				t.Error(err)
				return
			}
			admitted[i] = out.Admitted
		}()
	}
	wg.Wait()
	adm.Commit()
	committed, _, util := adm.Snapshot()
	n := 0
	for _, ok := range admitted {
		if ok {
			n++
		}
	}
	if n != committed.Len() {
		t.Errorf("admitted %d but committed %d", n, committed.Len())
	}
	if util > 1.0000001 {
		t.Errorf("utilization exceeded 1: %v", util)
	}
	// With 1%-utilization tasks and loose deadlines most of the budget
	// must be admitted: the controller may not livelock or over-reject.
	if n < 50 {
		t.Errorf("only %d of 200 cheap tasks admitted", n)
	}
	st := adm.Stats()
	if st.Proposed != 200 || st.Admitted != int64(n) || st.Rejected != int64(200-n) {
		t.Errorf("stats = %+v", st)
	}
}
