package async

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// offsetRescue is the classic example of phasing rescuing feasibility: two
// unit jobs per two time units with unit deadlines collide synchronously
// but interleave perfectly with offset 1.
func offsetRescue() model.TaskSet {
	return model.TaskSet{
		{Name: "a", WCET: 1, Deadline: 1, Period: 2, Phase: 0},
		{Name: "b", WCET: 1, Deadline: 1, Period: 2, Phase: 1},
	}
}

func TestPhasingRescuesFeasibility(t *testing.T) {
	ts := offsetRescue()
	// Synchronous reduction cannot accept...
	if r := Sufficient(ts, core.Options{}); r.Verdict == core.Feasible {
		t.Fatalf("sync reduction accepted the colliding set")
	}
	// ...but the exact phased analysis does.
	res, err := Exact(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Feasible {
		t.Fatalf("exact async: %v (miss task %d at %d)", res.Verdict, res.MissTask, res.MissTime)
	}
	// Removing the offset makes it genuinely infeasible.
	sync := ts.Synchronous()
	res, err = Exact(sync, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Infeasible {
		t.Fatalf("exact sync-phased: %v, want infeasible", res.Verdict)
	}
}

func TestSufficiencyTransfers(t *testing.T) {
	// If the synchronous test accepts, every phasing must be feasible.
	rng := rand.New(rand.NewSource(91))
	checked := 0
	for range 1500 {
		n := 1 + rng.Intn(4)
		ts := make(model.TaskSet, 0, n)
		for range n {
			T := int64(2 + rng.Intn(12))
			C := 1 + rng.Int63n(T)
			D := C + rng.Int63n(T-C+1)
			ts = append(ts, model.Task{
				WCET: C, Deadline: D, Period: T, Phase: rng.Int63n(2 * T),
			})
		}
		if Sufficient(ts, core.Options{}).Verdict != core.Feasible {
			continue
		}
		checked++
		res, err := Exact(ts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != core.Feasible {
			t.Fatalf("sync-accepted set infeasible with phases: %v", ts)
		}
	}
	if checked < 300 {
		t.Fatalf("only %d sets checked", checked)
	}
}

func TestExactMatchesWindowCriterion(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	checked := 0
	for range 800 {
		n := 1 + rng.Intn(3)
		ts := make(model.TaskSet, 0, n)
		for range n {
			T := int64(2 + rng.Intn(8))
			C := 1 + rng.Int63n(T)
			D := C + rng.Int63n(T-C+1)
			ts = append(ts, model.Task{
				WCET: C, Deadline: D, Period: T, Phase: rng.Int63n(T + 3),
			})
		}
		if ts.OverUtilized() {
			continue
		}
		window := WindowExact(ts, 4000)
		if window == core.Undecided {
			continue
		}
		checked++
		res, err := Exact(ts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != window {
			t.Fatalf("replay %v, window criterion %v for %v", res.Verdict, window, ts)
		}
	}
	if checked < 300 {
		t.Fatalf("only %d sets checked", checked)
	}
}

func TestOverUtilizedInfeasible(t *testing.T) {
	ts := model.TaskSet{
		{WCET: 2, Deadline: 2, Period: 2, Phase: 0},
		{WCET: 2, Deadline: 2, Period: 2, Phase: 1},
	}
	res, err := Exact(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Infeasible {
		t.Fatalf("U>1: %v", res.Verdict)
	}
}

func TestHorizonCap(t *testing.T) {
	ts := model.TaskSet{{WCET: 1, Deadline: 10, Period: 10}}
	res, err := Exact(ts, Options{MaxHorizon: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Undecided {
		t.Fatalf("capped horizon: %v, want undecided", res.Verdict)
	}
}

func TestHorizonFormula(t *testing.T) {
	ts := model.TaskSet{
		{WCET: 1, Deadline: 4, Period: 4, Phase: 3},
		{WCET: 1, Deadline: 6, Period: 6, Phase: 0},
	}
	h, ok := Horizon(ts)
	if !ok || h != 3+2*12 {
		t.Fatalf("horizon = %d,%v, want 27", h, ok)
	}
}
