// Package async analyzes asynchronous periodic task sets — tasks with
// initial release phases — under preemptive EDF.
//
// Section 2 of the paper restricts the fast tests to the synchronous case
// and notes that this is "a common assumption which also leads to a
// sufficient test for the asynchronous case" (with reference [13],
// Pellizzoni & Lipari, for better sufficient conditions). This package
// provides both sides of that statement:
//
//   - Sufficient: run the paper's (synchronous) tests on the set with
//     phases cleared; acceptance transfers to any phasing because the
//     synchronous arrival sequence maximizes demand.
//   - Exact: for periodic tasks with fixed phases and U <= 1, a deadline
//     is missed if and only if one is missed in [0, Φmax + 2H) (Leung &
//     Merrill / Baruah, Howell & Rosier), so an EDF replay over that
//     horizon decides feasibility exactly. A window-based processor demand
//     variant (demand over [s, e) windows) cross-validates the replay in
//     the tests.
//
// The exact analysis is specific to strictly periodic releases: sporadic
// tasks may always realize the synchronous worst case, for which the
// synchronous tests are already exact.
package async
