package async

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/sim"
)

// Result is the outcome of an exact asynchronous analysis.
type Result struct {
	Verdict core.Verdict
	// Horizon is the analyzed interval [0, Horizon).
	Horizon int64
	// MissTask and MissTime identify the first miss for Infeasible.
	MissTask int
	MissTime int64
}

// Options tune the exact analysis.
type Options struct {
	// MaxHorizon caps the replay horizon Φmax + 2H (0 = 1<<40); beyond
	// the cap the analysis returns Undecided instead of running forever.
	MaxHorizon int64
}

func (o Options) maxHorizon() int64 {
	if o.MaxHorizon == 0 {
		return 1 << 40
	}
	return o.MaxHorizon
}

// Horizon returns the exact analysis horizon Φmax + 2·H for the set.
// ok is false when the hyperperiod overflows.
func Horizon(ts model.TaskSet) (int64, bool) {
	h, ok := bounds.Hyperperiod(ts)
	if !ok {
		return 0, false
	}
	twoH, ok := numeric.MulChecked(2, h)
	if !ok {
		return 0, false
	}
	var phiMax int64
	for _, t := range ts {
		phiMax = max(phiMax, t.Phase)
	}
	return numeric.AddChecked(phiMax, twoH)
}

// Exact decides feasibility of the asynchronous periodic set (releases at
// φi + k·Ti, exactly) by an EDF replay over [0, Φmax + 2H).
func Exact(ts model.TaskSet, opt Options) (Result, error) {
	if err := ts.Validate(); err != nil {
		return Result{}, err
	}
	if ts.OverUtilized() {
		// Demand exceeds capacity in the long run regardless of phasing.
		return Result{Verdict: core.Infeasible}, nil
	}
	horizon, ok := Horizon(ts)
	if !ok || horizon > opt.maxHorizon() {
		return Result{Verdict: core.Undecided}, nil
	}
	rep, err := sim.Run(ts, sim.Options{Horizon: horizon})
	if err != nil {
		return Result{}, fmt.Errorf("async: %w", err)
	}
	if rep.Missed {
		return Result{
			Verdict: core.Infeasible, Horizon: horizon,
			MissTask: rep.MissTask, MissTime: rep.MissTime,
		}, nil
	}
	return Result{Verdict: core.Feasible, Horizon: horizon}, nil
}

// Sufficient runs the paper's synchronous all-approximated test on the set
// with phases cleared. Acceptance is sufficient for every phasing; a
// NotAccepted verdict means the synchronous reduction cannot decide (the
// phased set may still be feasible — see Exact).
func Sufficient(ts model.TaskSet, opt core.Options) core.Result {
	r := core.AllApprox(ts.Synchronous(), opt)
	if r.Verdict == core.Infeasible {
		// The synchronous worst case need not be realizable with fixed
		// phases, so infeasibility does not transfer.
		r.Verdict = core.NotAccepted
	}
	return r
}

// windowDemand returns the demand of jobs released at or after s with
// deadline at or before e, for the exact window criterion.
func windowDemand(ts model.TaskSet, s, e int64) int64 {
	var sum int64
	for _, t := range ts {
		// Releases r = φ + kT with r >= s and r + D <= e.
		kLo := int64(0)
		if s > t.Phase {
			kLo = numeric.CeilDiv(s-t.Phase, t.Period)
		}
		top := e - t.Deadline - t.Phase
		if top < 0 {
			continue
		}
		kHi := top / t.Period
		if kHi >= kLo {
			sum += (kHi - kLo + 1) * t.WCET
		}
	}
	return sum
}

// WindowExact decides feasibility with the window-based processor demand
// criterion: the set is feasible iff demand([s,e)) <= e-s for every window
// with s a release time and e an absolute deadline inside the horizon.
// It is O(K^2) in the number K of events and exists to cross-validate
// Exact; maxEvents caps K (exceeding it yields Undecided).
func WindowExact(ts model.TaskSet, maxEvents int64) core.Verdict {
	if ts.OverUtilized() {
		return core.Infeasible
	}
	horizon, ok := Horizon(ts)
	if !ok {
		return core.Undecided
	}
	var releases, deadlines []int64
	for _, t := range ts {
		for r := t.Phase; r < horizon; r += t.Period {
			releases = append(releases, r)
			if d := r + t.Deadline; d <= horizon {
				deadlines = append(deadlines, d)
			}
			if int64(len(releases)) > maxEvents {
				return core.Undecided
			}
		}
	}
	for _, s := range releases {
		for _, e := range deadlines {
			if e <= s {
				continue
			}
			if windowDemand(ts, s, e) > e-s {
				return core.Infeasible
			}
		}
	}
	return core.Feasible
}
