// Package demand implements the processor-demand machinery of the paper:
// the exact demand bound function dbf (Definition 2), the approximated
// demand bound function dbf' of the superposition approach (Definitions 4
// and 5), the approximation error app (Lemma 6) and the test-interval
// iteration order (a heap over absolute job deadlines).
//
// The feasibility algorithms in internal/core do not operate on tasks
// directly but on the Source interface defined here. A sporadic task is one
// Source; a Gresser event-stream task decomposes into one Source per event
// stream element (see internal/eventstream), which is exactly how the paper
// proposes to extend the tests to the event stream model.
package demand
