package demand

import (
	"slices"
	"sync"

	"repro/internal/model"
	"repro/internal/numeric"
)

// Scratch is reusable working memory for the iterative feasibility tests:
// the test list, the per-source job counters, the adapted source slice
// and the revision-tracker buffers. A Scratch serves one analysis at a
// time — its parts are distinct fields, so one test may use all of them
// concurrently, but two concurrent tests must not share a Scratch. With a
// reused Scratch the sporadic analyzers run allocation-free in steady
// state.
//
// The zero value is ready for use; NewScratch exists for symmetry with
// the pool helpers.
type Scratch struct {
	list      TestList
	jobs      []int64
	sporadics []Sporadic
	srcs      []Source
	ints      []int
	bools     []bool

	// Bounded-denominator arithmetic state: the per-workload chunk plan
	// (cached under its denominator key across analyses of the same set),
	// the register bank the analyzers and bounds compute in, and the
	// promotion tally that survives plan rebuilds.
	denBuf  []int64
	planKey []int64
	plan    numeric.Plan
	planOK  bool
	hasPlan bool
	promos  uint64
	regs    [ScratchRegs]numeric.Chunked

	// Uniform-walk shape arrays, the walk's selection tree and the
	// deadline-sorted task buffer.
	shapeC   []int64
	shapeSep []int64
	merge    LoserTree
	sorted   model.TaskSet
}

// ScratchRegs is the size of the chunk-register bank. The widest
// consumer is the combined bound computation (utilization, two linear
// sums, a term, a numerator, a denominator and a quotient scratch).
const ScratchRegs = 8

// NewScratch returns an empty Scratch.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool feeds analyzers that were not handed an explicit Scratch.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch borrows a Scratch from the package pool. Return it with
// PutScratch when the analysis is done.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a borrowed Scratch to the pool. The caller must not
// use s afterwards.
func PutScratch(s *Scratch) {
	if s != nil {
		scratchPool.Put(s)
	}
}

// TestList returns the scratch test list, emptied and grown to hold n
// entries.
func (s *Scratch) TestList(n int) *TestList {
	s.list.Reset()
	s.list.Grow(n)
	return &s.list
}

// Jobs returns a zeroed int64 slice of length n.
func (s *Scratch) Jobs(n int) []int64 {
	if cap(s.jobs) < n {
		s.jobs = make([]int64, n)
	}
	s.jobs = s.jobs[:n]
	for i := range s.jobs {
		s.jobs[i] = 0
	}
	return s.jobs
}

// Ints returns an empty int slice with capacity for n elements.
func (s *Scratch) Ints(n int) []int {
	if cap(s.ints) < n {
		s.ints = make([]int, 0, n)
	}
	return s.ints[:0]
}

// Bools returns a zeroed bool slice of length n.
func (s *Scratch) Bools(n int) []bool {
	if cap(s.bools) < n {
		s.bools = make([]bool, n)
	}
	s.bools = s.bools[:n]
	for i := range s.bools {
		s.bools[i] = false
	}
	return s.bools
}

// Arith returns the bounded-denominator chunk plan covering the
// sources' slope denominators, building it on first use and reusing the
// cached plan while the denominator sequence is unchanged (the common
// case: every stage of a cascade analyzes the same workload). A nil
// result means the workload genuinely exceeds the chunk cap — callers
// fall back to the numeric.Fast path and the analysis counts as one
// promotion.
func (s *Scratch) Arith(srcs []Source) *numeric.Plan {
	s.denBuf = s.denBuf[:0]
	for _, src := range srcs {
		_, den := src.UtilRat()
		s.denBuf = append(s.denBuf, den)
	}
	return s.arith()
}

// ArithTasks is Arith keyed directly on the task periods, for analyzers
// that never adapt the set to sources (Devi). The key equals the one
// Arith derives from Sources(ts), so a cascade builds one plan and every
// stage hits the cache.
func (s *Scratch) ArithTasks(ts model.TaskSet) *numeric.Plan {
	s.denBuf = s.denBuf[:0]
	for _, t := range ts {
		s.denBuf = append(s.denBuf, t.Period)
	}
	return s.arith()
}

// arith resolves the plan for the key staged in denBuf.
func (s *Scratch) arith() *numeric.Plan {
	if !s.hasPlan || !slices.Equal(s.denBuf, s.planKey) {
		// Fold the retiring plan's tally so ArithPromotions stays
		// monotonic across rebuilds.
		s.promos += s.plan.Promotions()
		s.planOK = s.plan.Build(s.denBuf)
		s.hasPlan = true
		s.planKey = append(s.planKey[:0], s.denBuf...)
	}
	if !s.planOK {
		s.promos++
		return nil
	}
	return &s.plan
}

// ArithPromotions returns the total fast-path exits recorded against
// this Scratch: values promoted to math/big plus whole analyses that
// fell back to numeric.Fast because no plan fit. The counter is
// monotonic over the Scratch's lifetime; callers attribute per-analysis
// promotions by delta.
func (s *Scratch) ArithPromotions() uint64 {
	return s.promos + s.plan.Promotions()
}

// Reg returns register i of the chunk-register bank, zeroed and bound to
// the current plan. Registers are shared working memory: a computation
// owns the indices it uses until it returns. Callers must hold a plan
// from Arith/ArithTasks (the registers bind to it).
func (s *Scratch) Reg(i int) *numeric.Chunked {
	s.regs[i].Init(&s.plan)
	return &s.regs[i]
}

// UniformShapes fills the per-source WCET and deadline-separation arrays
// for the uniform-walk fast path. ok is false when any source is not an
// endlessly repeating equidistant stream (one-shot sources included);
// the walk then falls back to the generic interface loop.
func (s *Scratch) UniformShapes(srcs []Source) (c, sep []int64, ok bool) {
	if cap(s.shapeC) < len(srcs) {
		s.shapeC = make([]int64, len(srcs))
		s.shapeSep = make([]int64, len(srcs))
	}
	s.shapeC = s.shapeC[:len(srcs)]
	s.shapeSep = s.shapeSep[:len(srcs)]
	for i, src := range srcs {
		us, okSrc := src.(UniformShaped)
		if !okSrc {
			return nil, nil, false
		}
		w, sp, okShape := us.UniformShape()
		if !okShape {
			return nil, nil, false
		}
		s.shapeC[i], s.shapeSep[i] = w, sp
	}
	return s.shapeC, s.shapeSep, true
}

// MergeTree returns the scratch loser tree reset for n sources. The
// caller seeds the leaves with Set and calls Build before selecting.
func (s *Scratch) MergeTree(n int) *LoserTree {
	s.merge.Reset(n)
	return &s.merge
}

// SortedByDeadline copies the tasks into a scratch buffer sorted by
// non-decreasing relative deadline — the same stable order as
// model.TaskSet.SortedByDeadline without the per-call clone. The result
// is valid until the next SortedByDeadline call on the same Scratch.
func (s *Scratch) SortedByDeadline(ts model.TaskSet) model.TaskSet {
	if cap(s.sorted) < len(ts) {
		s.sorted = make(model.TaskSet, 0, len(ts))
	}
	s.sorted = append(s.sorted[:0], ts...)
	slices.SortStableFunc(s.sorted, func(a, b model.Task) int {
		switch {
		case a.Deadline < b.Deadline:
			return -1
		case a.Deadline > b.Deadline:
			return 1
		default:
			return 0
		}
	})
	return s.sorted
}

// Sources adapts the task set to demand sources, rebuilding the scratch
// source slice in place: after the first call at a given size, no
// allocation happens. The returned slice is valid until the next Sources
// call on the same Scratch.
func (s *Scratch) Sources(ts model.TaskSet) []Source {
	s.sporadics = s.sporadics[:0]
	for _, t := range ts {
		s.sporadics = append(s.sporadics, NewSporadic(t))
	}
	s.srcs = s.srcs[:0]
	for i := range s.sporadics {
		// Pointers into the stable sporadics backing array: the interface
		// conversion is allocation-free, unlike boxing a Sporadic value.
		s.srcs = append(s.srcs, &s.sporadics[i])
	}
	return s.srcs
}
