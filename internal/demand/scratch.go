package demand

import (
	"sync"

	"repro/internal/model"
)

// Scratch is reusable working memory for the iterative feasibility tests:
// the test list, the per-source job counters, the adapted source slice
// and the revision-tracker buffers. A Scratch serves one analysis at a
// time — its parts are distinct fields, so one test may use all of them
// concurrently, but two concurrent tests must not share a Scratch. With a
// reused Scratch the sporadic analyzers run allocation-free in steady
// state.
//
// The zero value is ready for use; NewScratch exists for symmetry with
// the pool helpers.
type Scratch struct {
	list      TestList
	jobs      []int64
	sporadics []Sporadic
	srcs      []Source
	ints      []int
	bools     []bool
}

// NewScratch returns an empty Scratch.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool feeds analyzers that were not handed an explicit Scratch.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch borrows a Scratch from the package pool. Return it with
// PutScratch when the analysis is done.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a borrowed Scratch to the pool. The caller must not
// use s afterwards.
func PutScratch(s *Scratch) {
	if s != nil {
		scratchPool.Put(s)
	}
}

// TestList returns the scratch test list, emptied and grown to hold n
// entries.
func (s *Scratch) TestList(n int) *TestList {
	s.list.Reset()
	s.list.Grow(n)
	return &s.list
}

// Jobs returns a zeroed int64 slice of length n.
func (s *Scratch) Jobs(n int) []int64 {
	if cap(s.jobs) < n {
		s.jobs = make([]int64, n)
	}
	s.jobs = s.jobs[:n]
	for i := range s.jobs {
		s.jobs[i] = 0
	}
	return s.jobs
}

// Ints returns an empty int slice with capacity for n elements.
func (s *Scratch) Ints(n int) []int {
	if cap(s.ints) < n {
		s.ints = make([]int, 0, n)
	}
	return s.ints[:0]
}

// Bools returns a zeroed bool slice of length n.
func (s *Scratch) Bools(n int) []bool {
	if cap(s.bools) < n {
		s.bools = make([]bool, n)
	}
	s.bools = s.bools[:n]
	for i := range s.bools {
		s.bools[i] = false
	}
	return s.bools
}

// Sources adapts the task set to demand sources, rebuilding the scratch
// source slice in place: after the first call at a given size, no
// allocation happens. The returned slice is valid until the next Sources
// call on the same Scratch.
func (s *Scratch) Sources(ts model.TaskSet) []Source {
	s.sporadics = s.sporadics[:0]
	for _, t := range ts {
		s.sporadics = append(s.sporadics, NewSporadic(t))
	}
	s.srcs = s.srcs[:0]
	for i := range s.sporadics {
		// Pointers into the stable sporadics backing array: the interface
		// conversion is allocation-free, unlike boxing a Sporadic value.
		s.srcs = append(s.srcs, &s.sporadics[i])
	}
	return s.srcs
}
