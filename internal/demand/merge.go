package demand

// LoserTree is a tournament selection tree over one pending interval per
// source — the k-way-merge structure of the uniform demand walk. Where
// the 4-ary TestList heap re-sorts a replaced root by scanning up to
// four children per level, the loser tree replays exactly one match per
// level: replacing the minimum costs ceil(log2 k) key comparisons, which
// is what makes walks over tens of thousands of intervals cheap. Keys
// are stored inside the nodes, so a match is one contiguous load and a
// register compare — a parked loser's key cannot change, only the
// winner's does.
//
// Ties order by source index, the same (I, Src) total order as
// TestList, so the pop sequence of the two structures is identical. A
// key of MaxInterval marks an exhausted source; the tree is drained when
// the winner's key is MaxInterval.
type LoserTree struct {
	k int
	// node[0] is the tournament winner; node[1..k-1] hold the loser
	// parked at that internal match. leaf -1 marks a not-yet-played
	// node during Build.
	node []treeEntry
	// keys stages the per-leaf seeds between Reset/Set and Build.
	keys []int64
}

// treeEntry is a tournament contender: a pending interval and the
// source (leaf index) it belongs to.
type treeEntry struct {
	key  int64
	leaf int32
}

// beats reports whether contender a orders before contender b.
func (a treeEntry) beats(b treeEntry) bool {
	return a.key < b.key || (a.key == b.key && a.leaf < b.leaf)
}

// Reset prepares the tree for k sources. Keys default to MaxInterval;
// the caller sets real keys with Set and then calls Build.
func (t *LoserTree) Reset(k int) {
	t.k = k
	if cap(t.node) < k {
		t.node = make([]treeEntry, k)
		t.keys = make([]int64, k)
	}
	t.node = t.node[:k]
	t.keys = t.keys[:k]
	for i := range t.keys {
		t.keys[i] = MaxInterval
	}
}

// Set assigns source i's first pending interval (MaxInterval = none).
func (t *LoserTree) Set(i int, I int64) { t.keys[i] = I }

// Build plays the initial tournament. Leaves are seeded in index order,
// so every internal node sees its left subtree's winner parked before
// any right-subtree contender arrives (the classic replacement-selection
// initialization).
func (t *LoserTree) Build() {
	if t.k == 0 {
		return
	}
	for i := 1; i < t.k; i++ {
		t.node[i].leaf = -1
	}
	for j := 0; j < t.k; j++ {
		w := treeEntry{key: t.keys[j], leaf: int32(j)}
		parked := false
		for i := (j + t.k) >> 1; i >= 1; i >>= 1 {
			if t.node[i].leaf < 0 {
				t.node[i] = w
				parked = true
				break
			}
			if t.node[i].beats(w) {
				w, t.node[i] = t.node[i], w
			}
		}
		if !parked {
			t.node[0] = w
		}
	}
}

// Min returns the smallest pending interval and its source. A drained
// tree reports MaxInterval.
func (t *LoserTree) Min() (int64, int) {
	return t.node[0].key, int(t.node[0].leaf)
}

// ReplaceMin gives the winning source a new pending interval
// (MaxInterval = exhausted) and replays its path: one match per level.
func (t *LoserTree) ReplaceMin(I int64) {
	w := treeEntry{key: I, leaf: t.node[0].leaf}
	for i := (int(w.leaf) + t.k) >> 1; i >= 1; i >>= 1 {
		if t.node[i].beats(w) {
			w, t.node[i] = t.node[i], w
		}
	}
	t.node[0] = w
}

// SecondMin returns the smallest pending interval excluding the winner,
// or MaxInterval. The runner-up lost its only match directly against the
// winner, so it is parked on the winner's path — ceil(log2 k) probes.
func (t *LoserTree) SecondMin() int64 {
	best := treeEntry{key: MaxInterval, leaf: -1}
	for i := (int(t.node[0].leaf) + t.k) >> 1; i >= 1; i >>= 1 {
		if t.node[i].beats(best) {
			best = t.node[i]
		}
	}
	return best.key
}
