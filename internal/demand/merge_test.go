package demand

import (
	"math/rand"
	"testing"
)

// refSecondMin returns the runner-up key of a live key set, excluding
// the single winner leaf, by linear scan.
func refSecondMin(keys []int64, winner int) int64 {
	best := MaxInterval
	for i, k := range keys {
		if i != winner && k < best {
			best = k
		}
	}
	return best
}

// TestLoserTreeMatchesTestList drives random uniform-walk workloads
// (per-source first deadline plus separation) through both selection
// structures and requires bit-identical pop sequences — the loser tree
// must preserve the heap's (I, Src) total order, including ties — and
// agreeing SecondMin at every step.
func TestLoserTreeMatchesTestList(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := range 300 {
		k := 1 + rng.Intn(64)
		first := make([]int64, k)
		sep := make([]int64, k)
		keys := make([]int64, k)
		var lt LoserTree
		lt.Reset(k)
		tl := NewTestList(k)
		for i := range k {
			// Small ranges force frequent (I, Src) ties.
			first[i] = 1 + rng.Int63n(20)
			sep[i] = 1 + rng.Int63n(10)
			keys[i] = first[i]
			lt.Set(i, first[i])
			tl.Add(first[i], i)
		}
		lt.Build()
		bound := int64(200)
		for step := 0; ; step++ {
			I, src := lt.Min()
			if tl.Empty() {
				if I != MaxInterval {
					t.Fatalf("round %d step %d: heap drained but tree min %d/%d", round, step, I, src)
				}
				break
			}
			if e := tl.Peek(); I != e.I || src != e.Src {
				t.Fatalf("round %d step %d: tree min (%d,%d), heap min (%d,%d)", round, step, I, src, e.I, e.Src)
			}
			if got, want := lt.SecondMin(), refSecondMin(keys, src); got != want {
				t.Fatalf("round %d step %d: tree second %d, want %d", round, step, got, want)
			}
			if got, want := tl.SecondMin(), refSecondMin(keys, src); got != want {
				t.Fatalf("round %d step %d: heap second %d, want %d", round, step, got, want)
			}
			nd := I + sep[src]
			if nd >= bound {
				nd = MaxInterval
			}
			keys[src] = nd
			lt.ReplaceMin(nd)
			tl.Replace(nd, src)
		}
	}
}

// TestLoserTreeTieOrder pins the tie-break: equal intervals pop in
// ascending source order, exactly like Entry.less.
func TestLoserTreeTieOrder(t *testing.T) {
	var lt LoserTree
	lt.Reset(5)
	for i := range 5 {
		lt.Set(i, 10)
	}
	lt.Build()
	for want := range 5 {
		I, src := lt.Min()
		if I != 10 || src != want {
			t.Fatalf("tie pop %d: got (%d,%d)", want, I, src)
		}
		lt.ReplaceMin(MaxInterval)
	}
	if I, _ := lt.Min(); I != MaxInterval {
		t.Fatalf("tree not drained: min %d", I)
	}
}

// TestLoserTreeSingle pins the degenerate one-source tree: SecondMin has
// no runner-up and replacement cycles the sole leaf.
func TestLoserTreeSingle(t *testing.T) {
	var lt LoserTree
	lt.Reset(1)
	lt.Set(0, 3)
	lt.Build()
	if I, src := lt.Min(); I != 3 || src != 0 {
		t.Fatalf("min = (%d,%d), want (3,0)", I, src)
	}
	if s := lt.SecondMin(); s != MaxInterval {
		t.Fatalf("second = %d, want MaxInterval", s)
	}
	lt.ReplaceMin(8)
	if I, _ := lt.Min(); I != 8 {
		t.Fatalf("after replace: min %d, want 8", I)
	}
	lt.ReplaceMin(MaxInterval)
	if I, _ := lt.Min(); I != MaxInterval {
		t.Fatalf("tree not drained: min %d", I)
	}
}

// TestTestListReplace pins Replace against the equivalent Next+Add pair
// on random streams, including the MaxInterval drop contract.
func TestTestListReplace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := range 100 {
		a := NewTestList(8)
		b := NewTestList(8)
		for i := range 8 {
			d := rng.Int63n(30)
			a.Add(d, i)
			b.Add(d, i)
		}
		for !a.Empty() {
			nd := int64(MaxInterval)
			if rng.Intn(4) > 0 {
				nd = a.Peek().I + rng.Int63n(15)
			}
			src := a.Peek().Src
			a.Replace(nd, src)
			b.Next()
			if nd != MaxInterval {
				b.Add(nd, src)
			}
			if a.Len() != b.Len() {
				t.Fatalf("round %d: len %d vs %d", round, a.Len(), b.Len())
			}
			if !a.Empty() && a.Peek() != b.Peek() {
				t.Fatalf("round %d: peek %+v vs %+v", round, a.Peek(), b.Peek())
			}
		}
		if !b.Empty() {
			t.Fatalf("round %d: reference heap not drained", round)
		}
	}
}
