package demand

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestSporadicJobDeadlines(t *testing.T) {
	s := Sporadic{C: 2, D: 7, T: 10}
	wants := []int64{7, 17, 27, 37}
	for k, want := range wants {
		if got := s.JobDeadline(int64(k + 1)); got != want {
			t.Errorf("JobDeadline(%d) = %d, want %d", k+1, got, want)
		}
	}
	if got := s.JobDeadline(0); got != 0 {
		t.Errorf("JobDeadline(0) = %d", got)
	}
}

func TestSporadicNextDeadline(t *testing.T) {
	s := Sporadic{C: 2, D: 7, T: 10}
	cases := []struct{ after, want int64 }{
		{0, 7}, {6, 7}, {7, 17}, {16, 17}, {17, 27}, {100, 107},
	}
	for _, c := range cases {
		if got := s.NextDeadline(c.after); got != c.want {
			t.Errorf("NextDeadline(%d) = %d, want %d", c.after, got, c.want)
		}
	}
}

func TestSporadicDemand(t *testing.T) {
	s := Sporadic{C: 3, D: 5, T: 8}
	cases := []struct{ I, jobs, dem int64 }{
		{0, 0, 0}, {4, 0, 0}, {5, 1, 3}, {12, 1, 3}, {13, 2, 6}, {21, 3, 9},
	}
	for _, c := range cases {
		if got := s.JobsUpTo(c.I); got != c.jobs {
			t.Errorf("JobsUpTo(%d) = %d, want %d", c.I, got, c.jobs)
		}
		if got := s.DemandUpTo(c.I); got != c.dem {
			t.Errorf("DemandUpTo(%d) = %d, want %d", c.I, got, c.dem)
		}
	}
}

func TestApproxErrorZeroAtDeadlines(t *testing.T) {
	s := Sporadic{C: 3, D: 5, T: 8}
	for k := int64(1); k <= 5; k++ {
		num, den := s.ApproxError(s.JobDeadline(k))
		if num != 0 || den <= 0 {
			t.Errorf("app at deadline %d = %d/%d, want 0", s.JobDeadline(k), num, den)
		}
	}
	// Between deadlines the error is C * elapsed/T.
	num, den := s.ApproxError(9) // 4 past the first deadline
	if num != 3*4 || den != 8 {
		t.Errorf("app(9) = %d/%d, want 12/8", num, den)
	}
}

// TestApproxErrorMatchesDefinition checks Lemma 6 numerically: app(I) must
// equal dbf'(I) - dbf(I) where dbf' is the level-anchored approximation,
// for any anchor level whose deadline precedes I.
func TestApproxErrorMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for range 2000 {
		T := int64(2 + rng.Intn(30))
		s := Sporadic{C: 1 + rng.Int63n(9), D: 1 + rng.Int63n(T), T: T}
		I := s.D + rng.Int63n(10*T)
		level := 1 + rng.Int63n(4)
		if s.JobDeadline(level) > I {
			continue // approximation not active at I for this level
		}
		approx := ApproxDbfSource(s, I, level)
		exact := new(big.Rat).SetInt64(s.DemandUpTo(I))
		diff := new(big.Rat).Sub(approx, exact)
		num, den := s.ApproxError(I)
		if diff.Cmp(big.NewRat(num, den)) != 0 {
			t.Fatalf("src %+v I=%d level=%d: dbf'-dbf=%v, app=%d/%d",
				s, I, level, diff, num, den)
		}
	}
}

func TestDbfMonotoneAndStepwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ts := make(model.TaskSet, 0, 4)
		for range 1 + rng.Intn(4) {
			T := int64(2 + rng.Intn(20))
			C := 1 + rng.Int63n(T)
			ts = append(ts, model.Task{WCET: C, Deadline: C + rng.Int63n(T-C+1), Period: T})
		}
		srcs := FromTasks(ts)
		prev := int64(0)
		for I := int64(0); I <= 200; I++ {
			cur := Dbf(srcs, I)
			if cur < prev {
				return false // must be non-decreasing
			}
			if cur > prev {
				// Steps only at job deadlines.
				isDeadline := false
				for _, s := range srcs {
					if s.JobsUpTo(I) != s.JobsUpTo(I-1) {
						isDeadline = true
						break
					}
				}
				if !isDeadline {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestApproxDbfUpperBounds checks dbf'(I) >= dbf(I) everywhere and equality
// below the maximum exact test interval (Definition 4).
func TestApproxDbfUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for range 500 {
		T := int64(2 + rng.Intn(25))
		s := Sporadic{C: 1 + rng.Int63n(6), D: 1 + rng.Int63n(T), T: T}
		level := 1 + rng.Int63n(5)
		im := s.JobDeadline(level)
		for I := int64(0); I <= im+5*T; I += 1 + rng.Int63n(3) {
			approx := ApproxDbfSource(s, I, level)
			exact := new(big.Rat).SetInt64(s.DemandUpTo(I))
			if approx.Cmp(exact) < 0 {
				t.Fatalf("dbf'(%d) = %v < dbf = %v for %+v level %d", I, approx, exact, s, level)
			}
			if I <= im {
				if approx.Cmp(exact) != 0 {
					t.Fatalf("dbf'(%d) = %v != dbf = %v below Im=%d", I, approx, exact, im)
				}
			}
		}
	}
}

func TestUtilizationSum(t *testing.T) {
	ts := model.TaskSet{
		{WCET: 1, Deadline: 4, Period: 4},
		{WCET: 1, Deadline: 2, Period: 2},
	}
	if got := Utilization(FromTasks(ts)); got.Cmp(big.NewRat(3, 4)) != 0 {
		t.Errorf("U = %v, want 3/4", got)
	}
}

func TestTestListOrdering(t *testing.T) {
	tl := NewTestList(4)
	tl.Add(30, 2)
	tl.Add(10, 1)
	tl.Add(10, 0)
	tl.Add(20, 3)
	tl.Add(MaxInterval, 9) // must be ignored
	var got []Entry
	for !tl.Empty() {
		got = append(got, tl.Next())
	}
	want := []Entry{{10, 0}, {10, 1}, {20, 3}, {30, 2}}
	if len(got) != len(want) {
		t.Fatalf("popped %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSporadicOverflowSaturates(t *testing.T) {
	s := Sporadic{C: 10, D: 1 << 40, T: 1 << 40}
	if got := s.JobDeadline(1 << 30); got != MaxInterval {
		t.Errorf("overflowing deadline = %d, want MaxInterval", got)
	}
}
