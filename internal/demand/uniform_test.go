package demand

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// TestUniformMatchesSporadic asserts the Uniform generalization agrees
// with the Sporadic source on every interface method when instantiated
// from the same task.
func TestUniformMatchesSporadic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		tk := model.Task{
			WCET:     1 + r.Int63n(50),
			Deadline: 1 + r.Int63n(500),
			Period:   1 + r.Int63n(500),
		}
		sp := NewSporadic(tk)
		un := UniformFromTask(tk)
		if un.WCET() != sp.WCET() {
			t.Fatalf("WCET differs for %+v", tk)
		}
		un1, ud1 := un.UtilRat()
		sn1, sd1 := sp.UtilRat()
		if un1*sd1 != sn1*ud1 {
			t.Fatalf("UtilRat differs for %+v: %d/%d vs %d/%d", tk, un1, ud1, sn1, sd1)
		}
		for k := int64(1); k <= 5; k++ {
			if un.JobDeadline(k) != sp.JobDeadline(k) {
				t.Fatalf("JobDeadline(%d) differs for %+v", k, tk)
			}
		}
		for j := 0; j < 20; j++ {
			I := r.Int63n(3000)
			if un.JobsUpTo(I) != sp.JobsUpTo(I) {
				t.Fatalf("JobsUpTo(%d) differs for %+v", I, tk)
			}
			if un.DemandUpTo(I) != sp.DemandUpTo(I) {
				t.Fatalf("DemandUpTo(%d) differs for %+v", I, tk)
			}
			an, ad := un.ApproxError(I)
			bn, bd := sp.ApproxError(I)
			if an*bd != bn*ad {
				t.Fatalf("ApproxError(%d) differs for %+v", I, tk)
			}
			if un.NextDeadline(I) != sp.NextDeadline(I) {
				t.Fatalf("NextDeadline(%d) differs for %+v", I, tk)
			}
		}
	}
}

// TestUniformOneShot pins the Sep == 0 semantics: one job, zero slope,
// exact approximation.
func TestUniformOneShot(t *testing.T) {
	u := Uniform{C: 7, First: 30}
	if n, d := u.UtilRat(); n != 0 || d <= 0 {
		t.Fatalf("one-shot UtilRat = %d/%d, want 0 slope", n, d)
	}
	if got := u.JobDeadline(1); got != 30 {
		t.Fatalf("JobDeadline(1) = %d", got)
	}
	if got := u.JobDeadline(2); got != MaxInterval {
		t.Fatalf("JobDeadline(2) = %d, want MaxInterval", got)
	}
	if got := u.NextDeadline(29); got != 30 {
		t.Fatalf("NextDeadline(29) = %d", got)
	}
	if got := u.NextDeadline(30); got != MaxInterval {
		t.Fatalf("NextDeadline(30) = %d, want MaxInterval", got)
	}
	if got := u.DemandUpTo(29); got != 0 {
		t.Fatalf("DemandUpTo(29) = %d", got)
	}
	if got := u.DemandUpTo(1 << 60); got != 7 {
		t.Fatalf("DemandUpTo(huge) = %d", got)
	}
	if n, _ := u.ApproxError(1 << 60); n != 0 {
		t.Fatalf("one-shot ApproxError num = %d, want 0", n)
	}
}
