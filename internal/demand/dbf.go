package demand

import (
	"math/big"

	"repro/internal/model"
	"repro/internal/numeric"
)

// Dbf returns the exact demand bound function dbf(I, Γ) over the sources:
// the maximal cumulated execution requirement of jobs with both release and
// deadline inside an interval of length I (Definition 2).
func Dbf(srcs []Source, I int64) int64 {
	var sum int64
	for _, s := range srcs {
		sum += s.DemandUpTo(I)
	}
	return sum
}

// DbfTask returns dbf(I, τ) for a single sporadic task.
func DbfTask(t model.Task, I int64) int64 { return NewSporadic(t).DemandUpTo(I) }

// DbfSet returns dbf(I, Γ) for a task set.
func DbfSet(ts model.TaskSet, I int64) int64 { return Dbf(FromTasks(ts), I) }

// ApproxDbfSource returns the approximated task demand bound function
// dbf'(I, s) of Definition 4 with the maximum exact test interval set to
// the level-th job deadline Im = JobDeadline(level): exact up to Im, then
// linear with slope UtilRat. The result is an exact rational.
func ApproxDbfSource(s Source, I int64, level int64) *big.Rat {
	im := s.JobDeadline(level)
	if I <= im || im == MaxInterval {
		return new(big.Rat).SetInt64(s.DemandUpTo(I))
	}
	num, den := s.UtilRat()
	r := new(big.Rat).SetInt64(s.DemandUpTo(im))
	lin := new(big.Rat).Mul(big.NewRat(num, den), new(big.Rat).SetInt64(I-im))
	return r.Add(r, lin)
}

// ApproxDbf returns the superposition dbf'(I, Γ) of Definition 5 at the
// given test level (the same level for every source, as in SuperPos(x)).
func ApproxDbf(srcs []Source, I int64, level int64) *big.Rat {
	sum := new(big.Rat)
	for _, s := range srcs {
		sum.Add(sum, ApproxDbfSource(s, I, level))
	}
	return sum
}

// Utilization returns Σ UtilRat over the sources as an exact rational.
// The sum is accumulated in fast int64 arithmetic and materialized as one
// big.Rat at the end.
func Utilization(srcs []Source) *big.Rat {
	return UtilizationFast(srcs).Rat()
}

// UtilizationFast returns Σ UtilRat over the sources as an exact
// numeric.Fast, allocation-free while the sum stays within int64.
func UtilizationFast(srcs []Source) numeric.Fast {
	var u numeric.Fast
	for _, s := range srcs {
		u = u.AddRat(s.UtilRat())
	}
	return u
}

// UtilCmpOne compares the total utilization of the sources with 1 exactly
// without allocating on the int64 fast path.
func UtilCmpOne(srcs []Source) int {
	return UtilizationFast(srcs).CmpInt(1)
}
