package demand

import "container/heap"

// Entry is one pending test interval of a source: the absolute deadline I
// of the source's next unprocessed job.
type Entry struct {
	I   int64 // absolute deadline (test interval)
	Src int   // index into the source slice
}

// entryHeap orders entries by interval, breaking ties by source index so
// runs are deterministic.
type entryHeap []Entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].I != h[j].I {
		return h[i].I < h[j].I
	}
	return h[i].Src < h[j].Src
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(Entry)) }
func (h *entryHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// TestList is the ascending queue of pending test intervals used by all
// iterative tests ("testlist" in the paper's pseudocode).
type TestList struct {
	h entryHeap
}

// NewTestList returns a list with capacity for n entries.
func NewTestList(n int) *TestList {
	tl := &TestList{h: make(entryHeap, 0, n)}
	return tl
}

// Add queues the interval I for source src. Adding MaxInterval is a no-op:
// it denotes "no further deadline".
func (tl *TestList) Add(I int64, src int) {
	if I == MaxInterval {
		return
	}
	heap.Push(&tl.h, Entry{I: I, Src: src})
}

// Empty reports whether no intervals are pending.
func (tl *TestList) Empty() bool { return len(tl.h) == 0 }

// Next removes and returns the smallest pending interval.
// It must not be called on an empty list.
func (tl *TestList) Next() Entry { return heap.Pop(&tl.h).(Entry) }

// Peek returns the smallest pending interval without removing it.
// It must not be called on an empty list.
func (tl *TestList) Peek() Entry { return tl.h[0] }

// Len returns the number of pending entries.
func (tl *TestList) Len() int { return len(tl.h) }
