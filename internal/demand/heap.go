package demand

// Entry is one pending test interval of a source: the absolute deadline I
// of the source's next unprocessed job.
type Entry struct {
	I   int64 // absolute deadline (test interval)
	Src int   // index into the source slice
}

// less orders entries by interval, breaking ties by source index so runs
// are deterministic regardless of heap shape. Within one list every
// (I, Src) pair is unique (a source has at most one pending entry), so
// the order is total and the pop sequence is exactly the sorted order.
func (e Entry) less(o Entry) bool {
	if e.I != o.I {
		return e.I < o.I
	}
	return e.Src < o.Src
}

// TestList is the ascending queue of pending test intervals used by all
// iterative tests ("testlist" in the paper's pseudocode). It is a flat
// 4-ary min-heap of Entry values: no interface boxing, no per-operation
// allocation, and the shallow fan-out keeps sift-downs short and the
// backing array cache-resident. The zero value is an empty list ready for
// use; Reset recycles the backing array across runs.
type TestList struct {
	h []Entry
}

// NewTestList returns a list with capacity for n entries.
func NewTestList(n int) *TestList {
	return &TestList{h: make([]Entry, 0, n)}
}

// Reset empties the list, keeping the backing array.
func (tl *TestList) Reset() { tl.h = tl.h[:0] }

// Grow ensures capacity for n entries without changing the content.
func (tl *TestList) Grow(n int) {
	if cap(tl.h) < n {
		h := make([]Entry, len(tl.h), n)
		copy(h, tl.h)
		tl.h = h
	}
}

// Add queues the interval I for source src. Adding MaxInterval is a no-op:
// it denotes "no further deadline".
func (tl *TestList) Add(I int64, src int) {
	if I == MaxInterval {
		return
	}
	tl.h = append(tl.h, Entry{I: I, Src: src})
	tl.up(len(tl.h) - 1)
}

// Empty reports whether no intervals are pending.
func (tl *TestList) Empty() bool { return len(tl.h) == 0 }

// Next removes and returns the smallest pending interval.
// It must not be called on an empty list.
func (tl *TestList) Next() Entry {
	h := tl.h
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	tl.h = h[:last]
	if last > 1 {
		tl.down(0)
	}
	return top
}

// Peek returns the smallest pending interval without removing it.
// It must not be called on an empty list.
func (tl *TestList) Peek() Entry { return tl.h[0] }

// Replace swaps the root for the interval I of the same source and
// restores heap order with one sift-down — the pop-then-push every walk
// loop performs, fused so the entry is moved once instead of twice.
// Replacing with MaxInterval drops the root ("no further deadline").
// It must not be called on an empty list.
func (tl *TestList) Replace(I int64, src int) {
	if I == MaxInterval {
		tl.Next()
		return
	}
	tl.h[0] = Entry{I: I, Src: src}
	if len(tl.h) > 1 {
		tl.down(0)
	}
}

// SecondMin returns the smallest interval excluding the root, or
// MaxInterval when the root is the only entry. With a 4-ary heap the
// runner-up sits among the root's direct children, so the scan is O(1).
// It must not be called on an empty list.
func (tl *TestList) SecondMin() int64 {
	h := tl.h
	if len(h) <= 1 {
		return MaxInterval
	}
	best := h[1]
	for c := 2; c < 5 && c < len(h); c++ {
		if h[c].less(best) {
			best = h[c]
		}
	}
	return best.I
}

// Len returns the number of pending entries.
func (tl *TestList) Len() int { return len(tl.h) }

// up sifts the entry at position i toward the root.
func (tl *TestList) up(i int) {
	h := tl.h
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

// down sifts the entry at position i toward the leaves.
func (tl *TestList) down(i int) {
	h := tl.h
	n := len(h)
	e := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := min(first+4, n)
		for c := first + 1; c < end; c++ {
			if h[c].less(h[best]) {
				best = c
			}
		}
		if !h[best].less(e) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = e
}
