package demand

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
)

// TestTestListRandomOrdering drives random interleaved Add/Next sequences
// and checks the 4-ary heap pops exactly the sorted order of what a plain
// sorted slice would produce.
func TestTestListRandomOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for round := range 200 {
		tl := NewTestList(4)
		var ref []Entry
		popRef := func() Entry {
			sort.Slice(ref, func(i, j int) bool { return ref[i].less(ref[j]) })
			e := ref[0]
			ref = ref[1:]
			return e
		}
		src := 0
		for step := range 300 {
			if len(ref) == 0 || rng.Intn(3) > 0 {
				e := Entry{I: rng.Int63n(50), Src: src}
				src++
				tl.Add(e.I, e.Src)
				ref = append(ref, e)
			} else {
				if got, want := tl.Next(), popRef(); got != want {
					t.Fatalf("round %d step %d: popped %+v, want %+v", round, step, got, want)
				}
			}
			if tl.Len() != len(ref) {
				t.Fatalf("round %d: len %d, want %d", round, tl.Len(), len(ref))
			}
			if len(ref) > 0 {
				sort.Slice(ref, func(i, j int) bool { return ref[i].less(ref[j]) })
				if tl.Peek() != ref[0] {
					t.Fatalf("round %d: peek %+v, want %+v", round, tl.Peek(), ref[0])
				}
			}
		}
		// Drain: must come out fully sorted.
		var drained []Entry
		for !tl.Empty() {
			drained = append(drained, tl.Next())
		}
		if !slices.IsSortedFunc(drained, func(a, b Entry) int {
			switch {
			case a.less(b):
				return -1
			case b.less(a):
				return 1
			default:
				return 0
			}
		}) {
			t.Fatalf("round %d: drain not sorted: %v", round, drained)
		}
	}
}

// TestTestListMaxIntervalNoop pins the "no further deadline" contract.
func TestTestListMaxIntervalNoop(t *testing.T) {
	tl := NewTestList(1)
	tl.Add(MaxInterval, 0)
	if !tl.Empty() {
		t.Fatalf("adding MaxInterval must be a no-op")
	}
}

// TestScratchReuse checks that scratch parts are reset between uses and
// usable simultaneously.
func TestScratchReuse(t *testing.T) {
	s := NewScratch()
	tl := s.TestList(8)
	tl.Add(5, 0)
	jobs := s.Jobs(4)
	jobs[2] = 9
	if tl2 := s.TestList(2); !tl2.Empty() {
		t.Fatalf("TestList not reset")
	}
	if j := s.Jobs(4); j[2] != 0 {
		t.Fatalf("Jobs not zeroed")
	}
	if b := s.Bools(3); len(b) != 3 || b[0] || b[1] || b[2] {
		t.Fatalf("Bools not zeroed: %v", b)
	}
	if i := s.Ints(3); len(i) != 0 || cap(i) < 3 {
		t.Fatalf("Ints shape wrong: len %d cap %d", len(i), cap(i))
	}
}
