package demand

import (
	"repro/internal/model"
	"repro/internal/numeric"
)

// MaxInterval is the sentinel for "no further deadline". It is never a
// valid test interval.
const MaxInterval = int64(numeric.MaxInt64)

// Source is one demand curve with equidistant steps: a stream of jobs, each
// consuming WCET time units, whose k-th absolute deadline is
// FirstDeadline + (k-1)*Separation (one-shot sources have a single
// deadline). It is the unit the feasibility tests iterate over.
//
// The contract every implementation must satisfy:
//   - JobDeadline(1) > 0, JobDeadline is strictly increasing until it
//     returns MaxInterval, and once it returns MaxInterval it does so for
//     all larger k.
//   - DemandUpTo(I) == JobsUpTo(I) * WCET().
//   - UtilRat is the asymptotic slope of DemandUpTo; for one-shot sources
//     it is 0 (num == 0) and then the linear approximation beyond the last
//     deadline is exact.
type Source interface {
	// WCET returns the execution demand of a single job (> 0).
	WCET() int64
	// UtilRat returns the approximation slope as a rational num/den with
	// den > 0. For a sporadic task this is C/T.
	UtilRat() (num, den int64)
	// JobDeadline returns the absolute deadline of the k-th job (k >= 1)
	// in the synchronous arrival sequence, or MaxInterval if the source
	// releases fewer than k jobs.
	JobDeadline(k int64) int64
	// NextDeadline returns the smallest job deadline strictly greater
	// than after, or MaxInterval.
	NextDeadline(after int64) int64
	// JobsUpTo returns the number of jobs with deadline <= I.
	JobsUpTo(I int64) int64
	// DemandUpTo returns the exact demand bound dbf(I, source).
	DemandUpTo(I int64) int64
	// ApproxError returns app(I, source) = dbf'(I) - dbf(I) as a rational
	// num/den (den > 0), valid for I >= JobDeadline(1) when the source is
	// approximated with slope UtilRat anchored at any of its job deadlines
	// <= I (Lemma 6 of the paper: the error is independent of the anchor).
	ApproxError(I int64) (num, den int64)
}

// UniformShaped is the optional Source extension of endlessly repeating
// equidistant streams. The demand walks use it to run on flat int64
// arrays — deadline advance becomes one addition — instead of interface
// calls per job.
type UniformShaped interface {
	// UniformShape returns the per-job WCET and the constant deadline
	// separation. ok is false for one-shot sources (finitely many jobs),
	// which the uniform walk cannot model.
	UniformShape() (wcet, sep int64, ok bool)
}

// Sporadic is the Source for a sporadic task in the synchronous arrival
// sequence: deadlines D, D+T, D+2T, ...
type Sporadic struct {
	C int64 // WCET
	D int64 // relative deadline
	T int64 // period
}

var _ Source = Sporadic{}

// NewSporadic adapts a model task.
func NewSporadic(t model.Task) Sporadic { return Sporadic{C: t.WCET, D: t.Deadline, T: t.Period} }

// WCET returns C.
func (s Sporadic) WCET() int64 { return s.C }

// UtilRat returns C/T.
func (s Sporadic) UtilRat() (num, den int64) { return s.C, s.T }

// UniformShape returns C and T: a sporadic source repeats forever.
func (s Sporadic) UniformShape() (wcet, sep int64, ok bool) { return s.C, s.T, true }

// JobDeadline returns D + (k-1)*T, or MaxInterval on overflow.
func (s Sporadic) JobDeadline(k int64) int64 {
	if k < 1 {
		return 0
	}
	span, ok := numeric.MulChecked(k-1, s.T)
	if !ok {
		return MaxInterval
	}
	d, ok := numeric.AddChecked(s.D, span)
	if !ok {
		return MaxInterval
	}
	return d
}

// NextDeadline returns the first job deadline > after.
func (s Sporadic) NextDeadline(after int64) int64 {
	if after < s.D {
		return s.D
	}
	// Next deadline after 'after': D + (floor((after-D)/T)+1)*T.
	k := (after-s.D)/s.T + 2 // job index of that deadline (1-based)
	return s.JobDeadline(k)
}

// JobsUpTo counts deadlines <= I: floor((I-D)/T)+1 for I >= D.
func (s Sporadic) JobsUpTo(I int64) int64 {
	if I < s.D {
		return 0
	}
	return (I-s.D)/s.T + 1
}

// DemandUpTo returns dbf(I, τ) = JobsUpTo(I) * C. The result saturates at
// MaxInterval on (absurdly large) overflow.
func (s Sporadic) DemandUpTo(I int64) int64 {
	n := s.JobsUpTo(I)
	d, ok := numeric.MulChecked(n, s.C)
	if !ok {
		return MaxInterval
	}
	return d
}

// ApproxError returns C*((I-D) mod T) / T, the overshoot of the slope-C/T
// approximation over the exact step function at I (zero exactly at job
// deadlines). For I < D it returns 0.
func (s Sporadic) ApproxError(I int64) (num, den int64) {
	if I < s.D {
		return 0, 1
	}
	r := (I - s.D) % s.T
	n, ok := numeric.MulChecked(s.C, r)
	if !ok {
		// C and r are both < 2^31 in any realistic workload; saturate
		// rather than corrupt the accumulator if a caller exceeds that.
		return MaxInterval, s.T
	}
	return n, s.T
}

// Uniform is the Source of any equidistant-deadline job stream: WCET C
// per job, first absolute deadline First, separation Sep between
// consecutive deadlines. Sep == 0 denotes a one-shot source releasing a
// single job. It is the common generalization of Sporadic (First = D,
// Sep = T) and of one event-stream element (First = offset + relative
// deadline, Sep = cycle), and the concrete representation the
// incremental admission state keeps its per-session sources in — one
// flat arena, no interface boxing on the fold path.
type Uniform struct {
	C     int64 // WCET
	First int64 // first absolute deadline (> 0)
	Sep   int64 // deadline separation; 0 = one-shot
}

var _ Source = Uniform{}

// UniformFromTask adapts a sporadic model task.
func UniformFromTask(t model.Task) Uniform {
	return Uniform{C: t.WCET, First: t.Deadline, Sep: t.Period}
}

// WCET returns C.
func (s Uniform) WCET() int64 { return s.C }

// UtilRat returns the slope C/Sep, or 0 for a one-shot source.
func (s Uniform) UtilRat() (num, den int64) {
	if s.Sep == 0 {
		return 0, 1
	}
	return s.C, s.Sep
}

// UniformShape returns C and Sep; one-shot sources (Sep == 0) do not
// repeat and report ok false.
func (s Uniform) UniformShape() (wcet, sep int64, ok bool) { return s.C, s.Sep, s.Sep != 0 }

// JobDeadline returns First + (k-1)*Sep, or MaxInterval past the last
// job or on overflow.
func (s Uniform) JobDeadline(k int64) int64 {
	if k < 1 {
		return 0
	}
	if s.Sep == 0 {
		if k == 1 {
			return s.First
		}
		return MaxInterval
	}
	span, ok := numeric.MulChecked(k-1, s.Sep)
	if !ok {
		return MaxInterval
	}
	d, ok := numeric.AddChecked(s.First, span)
	if !ok {
		return MaxInterval
	}
	return d
}

// NextDeadline returns the first job deadline > after.
func (s Uniform) NextDeadline(after int64) int64 {
	if after < s.First {
		return s.First
	}
	if s.Sep == 0 {
		return MaxInterval
	}
	return s.JobDeadline((after-s.First)/s.Sep + 2)
}

// JobsUpTo counts deadlines <= I.
func (s Uniform) JobsUpTo(I int64) int64 {
	if I < s.First {
		return 0
	}
	if s.Sep == 0 {
		return 1
	}
	return (I-s.First)/s.Sep + 1
}

// DemandUpTo returns dbf(I) = JobsUpTo(I) * C, saturating at MaxInterval
// on overflow.
func (s Uniform) DemandUpTo(I int64) int64 {
	d, ok := numeric.MulChecked(s.JobsUpTo(I), s.C)
	if !ok {
		return MaxInterval
	}
	return d
}

// ApproxError returns C*((I-First) mod Sep) / Sep; one-shot sources are
// approximated exactly, so their error is 0.
func (s Uniform) ApproxError(I int64) (num, den int64) {
	if I < s.First || s.Sep == 0 {
		return 0, 1
	}
	r := (I - s.First) % s.Sep
	n, ok := numeric.MulChecked(s.C, r)
	if !ok {
		return MaxInterval, s.Sep
	}
	return n, s.Sep
}

// FromTasks adapts a task set to demand sources, ignoring phases
// (synchronous case). The sources are pointers into one backing array, so
// the adaptation costs two allocations regardless of the set size; use
// Scratch.Sources to avoid even those across repeated analyses.
func FromTasks(ts model.TaskSet) []Source {
	backing := make([]Sporadic, len(ts))
	srcs := make([]Source, len(ts))
	for i, t := range ts {
		backing[i] = NewSporadic(t)
		srcs[i] = &backing[i]
	}
	return srcs
}
