package demand

import (
	"repro/internal/model"
	"repro/internal/numeric"
)

// MaxInterval is the sentinel for "no further deadline". It is never a
// valid test interval.
const MaxInterval = int64(numeric.MaxInt64)

// Source is one demand curve with equidistant steps: a stream of jobs, each
// consuming WCET time units, whose k-th absolute deadline is
// FirstDeadline + (k-1)*Separation (one-shot sources have a single
// deadline). It is the unit the feasibility tests iterate over.
//
// The contract every implementation must satisfy:
//   - JobDeadline(1) > 0, JobDeadline is strictly increasing until it
//     returns MaxInterval, and once it returns MaxInterval it does so for
//     all larger k.
//   - DemandUpTo(I) == JobsUpTo(I) * WCET().
//   - UtilRat is the asymptotic slope of DemandUpTo; for one-shot sources
//     it is 0 (num == 0) and then the linear approximation beyond the last
//     deadline is exact.
type Source interface {
	// WCET returns the execution demand of a single job (> 0).
	WCET() int64
	// UtilRat returns the approximation slope as a rational num/den with
	// den > 0. For a sporadic task this is C/T.
	UtilRat() (num, den int64)
	// JobDeadline returns the absolute deadline of the k-th job (k >= 1)
	// in the synchronous arrival sequence, or MaxInterval if the source
	// releases fewer than k jobs.
	JobDeadline(k int64) int64
	// NextDeadline returns the smallest job deadline strictly greater
	// than after, or MaxInterval.
	NextDeadline(after int64) int64
	// JobsUpTo returns the number of jobs with deadline <= I.
	JobsUpTo(I int64) int64
	// DemandUpTo returns the exact demand bound dbf(I, source).
	DemandUpTo(I int64) int64
	// ApproxError returns app(I, source) = dbf'(I) - dbf(I) as a rational
	// num/den (den > 0), valid for I >= JobDeadline(1) when the source is
	// approximated with slope UtilRat anchored at any of its job deadlines
	// <= I (Lemma 6 of the paper: the error is independent of the anchor).
	ApproxError(I int64) (num, den int64)
}

// Sporadic is the Source for a sporadic task in the synchronous arrival
// sequence: deadlines D, D+T, D+2T, ...
type Sporadic struct {
	C int64 // WCET
	D int64 // relative deadline
	T int64 // period
}

var _ Source = Sporadic{}

// NewSporadic adapts a model task.
func NewSporadic(t model.Task) Sporadic { return Sporadic{C: t.WCET, D: t.Deadline, T: t.Period} }

// WCET returns C.
func (s Sporadic) WCET() int64 { return s.C }

// UtilRat returns C/T.
func (s Sporadic) UtilRat() (num, den int64) { return s.C, s.T }

// JobDeadline returns D + (k-1)*T, or MaxInterval on overflow.
func (s Sporadic) JobDeadline(k int64) int64 {
	if k < 1 {
		return 0
	}
	span, ok := numeric.MulChecked(k-1, s.T)
	if !ok {
		return MaxInterval
	}
	d, ok := numeric.AddChecked(s.D, span)
	if !ok {
		return MaxInterval
	}
	return d
}

// NextDeadline returns the first job deadline > after.
func (s Sporadic) NextDeadline(after int64) int64 {
	if after < s.D {
		return s.D
	}
	// Next deadline after 'after': D + (floor((after-D)/T)+1)*T.
	k := (after-s.D)/s.T + 2 // job index of that deadline (1-based)
	return s.JobDeadline(k)
}

// JobsUpTo counts deadlines <= I: floor((I-D)/T)+1 for I >= D.
func (s Sporadic) JobsUpTo(I int64) int64 {
	if I < s.D {
		return 0
	}
	return (I-s.D)/s.T + 1
}

// DemandUpTo returns dbf(I, τ) = JobsUpTo(I) * C. The result saturates at
// MaxInterval on (absurdly large) overflow.
func (s Sporadic) DemandUpTo(I int64) int64 {
	n := s.JobsUpTo(I)
	d, ok := numeric.MulChecked(n, s.C)
	if !ok {
		return MaxInterval
	}
	return d
}

// ApproxError returns C*((I-D) mod T) / T, the overshoot of the slope-C/T
// approximation over the exact step function at I (zero exactly at job
// deadlines). For I < D it returns 0.
func (s Sporadic) ApproxError(I int64) (num, den int64) {
	if I < s.D {
		return 0, 1
	}
	r := (I - s.D) % s.T
	n, ok := numeric.MulChecked(s.C, r)
	if !ok {
		// C and r are both < 2^31 in any realistic workload; saturate
		// rather than corrupt the accumulator if a caller exceeds that.
		return MaxInterval, s.T
	}
	return n, s.T
}

// FromTasks adapts a task set to demand sources, ignoring phases
// (synchronous case). The sources are pointers into one backing array, so
// the adaptation costs two allocations regardless of the set size; use
// Scratch.Sources to avoid even those across repeated analyses.
func FromTasks(ts model.TaskSet) []Source {
	backing := make([]Sporadic, len(ts))
	srcs := make([]Source, len(ts))
	for i, t := range ts {
		backing[i] = NewSporadic(t)
		srcs[i] = &backing[i]
	}
	return srcs
}
