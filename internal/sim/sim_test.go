package sim

import (
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/model"
)

func TestRunRejectsBadInput(t *testing.T) {
	ts := model.TaskSet{{WCET: 1, Deadline: 5, Period: 5}}
	if _, err := Run(ts, Options{}); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := model.TaskSet{{WCET: 0, Deadline: 5, Period: 5}}
	if _, err := Run(bad, Options{Horizon: 10}); err == nil {
		t.Error("invalid set accepted")
	}
}

func TestSingleTaskSchedule(t *testing.T) {
	ts := model.TaskSet{{Name: "a", WCET: 2, Deadline: 5, Period: 5}}
	rep, err := Run(ts, Options{Horizon: 20, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missed {
		t.Fatal("unexpected miss")
	}
	if rep.JobsReleased != 4 || rep.JobsCompleted != 4 {
		t.Errorf("jobs: released %d completed %d, want 4/4", rep.JobsReleased, rep.JobsCompleted)
	}
	if rep.BusyTime != 8 {
		t.Errorf("busy time %d, want 8", rep.BusyTime)
	}
	// Expect busy [0,2) idle [2,5) busy [5,7) ... pattern in the trace.
	if len(rep.Trace) != 8 {
		t.Fatalf("trace %v", rep.Trace)
	}
	if rep.Trace[0] != (Segment{Start: 0, End: 2, Task: 0, Job: 0}) {
		t.Errorf("first segment %+v", rep.Trace[0])
	}
	if !rep.Trace[1].Idle() || rep.Trace[1].End != 5 {
		t.Errorf("second segment %+v", rep.Trace[1])
	}
}

func TestEDFPreemption(t *testing.T) {
	// Long job starts first; a later release with an earlier absolute
	// deadline must preempt it.
	ts := model.TaskSet{
		{Name: "long", WCET: 10, Deadline: 30, Period: 100},
		{Name: "short", WCET: 2, Deadline: 4, Period: 100, Phase: 3},
	}
	rep, err := Run(ts, Options{Horizon: 40, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missed {
		t.Fatal("unexpected miss")
	}
	// Expected: long [0,3), short [3,5), long [5,12).
	want := []Segment{
		{Start: 0, End: 3, Task: 0, Job: 0},
		{Start: 3, End: 5, Task: 1, Job: 0},
		{Start: 5, End: 12, Task: 0, Job: 0},
	}
	if len(rep.Trace) < 3 {
		t.Fatalf("trace %v", rep.Trace)
	}
	for i, w := range want {
		if rep.Trace[i] != w {
			t.Errorf("segment %d = %+v, want %+v", i, rep.Trace[i], w)
		}
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	// Two jobs of 3 units due at 4: one must miss.
	ts := model.TaskSet{
		{Name: "a", WCET: 3, Deadline: 4, Period: 10},
		{Name: "b", WCET: 3, Deadline: 4, Period: 10},
	}
	rep, err := Run(ts, Options{Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Missed {
		t.Fatal("miss not detected")
	}
	if rep.MissTime != 4 {
		t.Errorf("miss at %d, want 4", rep.MissTime)
	}
}

func TestPhasesDelayReleases(t *testing.T) {
	ts := model.TaskSet{{Name: "a", WCET: 1, Deadline: 2, Period: 5, Phase: 7}}
	rep, err := Run(ts, Options{Horizon: 10, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsReleased != 1 {
		t.Errorf("released %d jobs, want 1 (phase 7, horizon 10)", rep.JobsReleased)
	}
	if len(rep.Trace) == 0 || rep.Trace[0].End != 7 || !rep.Trace[0].Idle() {
		t.Errorf("expected idle until 7, trace %v", rep.Trace)
	}
}

// TestSimAgreesWithExactTests is the ground-truth property: for random
// small synchronous sets, a deadline miss within the feasibility bound
// occurs if and only if the exact tests report infeasibility.
func TestSimAgreesWithExactTests(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	checked := 0
	for range 3000 {
		n := 1 + rng.Intn(5)
		ts := make(model.TaskSet, 0, n)
		for range n {
			T := int64(2 + rng.Intn(16))
			C := 1 + rng.Int63n(T)
			D := C + rng.Int63n(T-C+1)
			ts = append(ts, model.Task{WCET: C, Deadline: D, Period: T})
		}
		if ts.OverUtilized() {
			continue
		}
		horizon, _, ok := bounds.Best(ts)
		if !ok || horizon == 0 || horizon > 200000 {
			continue
		}
		checked++
		rep, err := Run(ts, Options{Horizon: horizon})
		if err != nil {
			t.Fatal(err)
		}
		exact := core.ProcessorDemand(ts, core.Options{})
		wantMiss := exact.Verdict == core.Infeasible
		if rep.Missed != wantMiss {
			t.Fatalf("sim miss=%v (at %d) but exact=%v for %v",
				rep.Missed, rep.MissTime, exact.Verdict, ts)
		}
	}
	if checked < 500 {
		t.Fatalf("only %d sets checked", checked)
	}
}

// TestBusyTimeConservation checks work conservation: within the horizon the
// processor is busy exactly min(released work, available time) when no
// deadline is missed and all jobs complete.
func TestBusyTimeConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for range 500 {
		ts := model.TaskSet{
			{WCET: 1 + rng.Int63n(3), Deadline: 8 + rng.Int63n(4), Period: 8 + rng.Int63n(8)},
			{WCET: 1 + rng.Int63n(2), Deadline: 6 + rng.Int63n(4), Period: 6 + rng.Int63n(8)},
		}
		rep, err := Run(ts, Options{Horizon: 500})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Missed {
			continue
		}
		var released int64
		for _, task := range ts {
			jobs := (500 - 1 - task.Phase) / task.Period // releases strictly below horizon
			released += (jobs + 1) * task.WCET
		}
		if rep.BusyTime > released {
			t.Fatalf("busy %d exceeds released work %d", rep.BusyTime, released)
		}
		completed := rep.BusyTime
		if rep.JobsCompleted == rep.JobsReleased && completed != released {
			t.Fatalf("all jobs done but busy %d != released %d", completed, released)
		}
	}
}

// TestTraceContiguous checks the trace covers [0, EndTime) without gaps or
// overlaps.
func TestTraceContiguous(t *testing.T) {
	ts := model.TaskSet{
		{WCET: 2, Deadline: 6, Period: 7},
		{WCET: 3, Deadline: 9, Period: 11},
	}
	rep, err := Run(ts, Options{Horizon: 300, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	at := int64(0)
	for i, seg := range rep.Trace {
		if seg.Start != at {
			t.Fatalf("segment %d starts at %d, expected %d", i, seg.Start, at)
		}
		if seg.End <= seg.Start {
			t.Fatalf("segment %d empty or reversed: %+v", i, seg)
		}
		at = seg.End
	}
	if at != rep.EndTime {
		t.Fatalf("trace ends at %d, run at %d", at, rep.EndTime)
	}
}
