package sim

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func TestRenderGantt(t *testing.T) {
	ts := model.TaskSet{
		{Name: "alpha", WCET: 2, Deadline: 5, Period: 5},
		{Name: "beta", WCET: 1, Deadline: 10, Period: 10},
	}
	rep, err := Run(ts, Options{Horizon: 40, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderGantt(&b, ts, rep.Trace, GanttOptions{Width: 40}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"alpha", "beta", "(idle)", "t=[0,40)"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 2 tasks + idle
		t.Errorf("gantt lines = %d:\n%s", len(lines), out)
	}
	// The busy rows must contain fill characters, the chart must show
	// idle time (U = 0.5).
	if !strings.ContainsAny(lines[1], "#.") {
		t.Errorf("alpha row empty:\n%s", out)
	}
	if !strings.ContainsAny(lines[3], "#.") {
		t.Errorf("idle row empty for a half-utilized set:\n%s", out)
	}
}

func TestRenderGanttWindow(t *testing.T) {
	ts := model.TaskSet{{Name: "x", WCET: 1, Deadline: 4, Period: 4}}
	rep, err := Run(ts, Options{Horizon: 100, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderGantt(&b, ts, rep.Trace, GanttOptions{Width: 20, From: 40, To: 60}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "t=[40,60)") {
		t.Errorf("window header missing:\n%s", b.String())
	}
	// Degenerate window errors.
	if err := RenderGantt(&b, ts, rep.Trace, GanttOptions{From: 60, To: 60}); err == nil {
		t.Error("empty window accepted")
	}
	// Empty trace renders a placeholder.
	b.Reset()
	if err := RenderGantt(&b, ts, nil, GanttOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty trace") {
		t.Errorf("placeholder missing: %q", b.String())
	}
}
