package sim

import (
	"container/heap"
	"errors"
	"fmt"

	"repro/internal/model"
)

// Options configure a simulation run.
type Options struct {
	// Horizon is the exclusive simulation end time. Releases at or after
	// the horizon are not generated; jobs still running at the horizon are
	// abandoned without a verdict on their deadline.
	Horizon int64
	// RecordTrace stores the executed schedule segments in the report.
	RecordTrace bool
}

// Segment is one maximal span of the schedule during which the same job
// (or idleness) occupies the processor.
type Segment struct {
	Start, End int64
	Task       int   // task index; -1 for idle
	Job        int64 // 0-based job index of the task
}

// Idle reports whether the segment is idle time.
func (s Segment) Idle() bool { return s.Task < 0 }

// Report is the outcome of a simulation.
type Report struct {
	// Missed is true when a deadline miss was detected.
	Missed bool
	// MissTask and MissTime identify the first detected miss.
	MissTask int
	MissTime int64
	// JobsReleased and JobsCompleted count jobs inside the horizon.
	JobsReleased  int64
	JobsCompleted int64
	// BusyTime is the total non-idle processor time until the simulation
	// stopped.
	BusyTime int64
	// EndTime is the time at which the simulation stopped (the horizon, or
	// the miss time).
	EndTime int64
	// Trace is the executed schedule when Options.RecordTrace is set.
	Trace []Segment
}

// job is a released, unfinished job.
type job struct {
	task      int
	index     int64 // 0-based job number of the task
	deadline  int64 // absolute deadline
	remaining int64
}

// jobQueue orders released jobs by absolute deadline (EDF), ties by task
// then job index for determinism.
type jobQueue []job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, j int) bool {
	if q[i].deadline != q[j].deadline {
		return q[i].deadline < q[j].deadline
	}
	if q[i].task != q[j].task {
		return q[i].task < q[j].task
	}
	return q[i].index < q[j].index
}
func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(job)) }
func (q *jobQueue) Pop() any     { old := *q; n := len(old); j := old[n-1]; *q = old[:n-1]; return j }

// release is the next pending release of one task.
type release struct {
	at    int64
	task  int
	index int64
}

type releaseQueue []release

func (q releaseQueue) Len() int { return len(q) }
func (q releaseQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].task < q[j].task
}
func (q releaseQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *releaseQueue) Push(x any)   { *q = append(*q, x.(release)) }
func (q *releaseQueue) Pop() any {
	old := *q
	n := len(old)
	r := old[n-1]
	*q = old[:n-1]
	return r
}

// ErrNoHorizon is returned when Options.Horizon is not positive.
var ErrNoHorizon = errors.New("sim: horizon must be positive")

// Run simulates the task set under preemptive EDF until the horizon or the
// first deadline miss. Task phases are honored; pass ts.Synchronous() for
// the synchronous arrival sequence the feasibility tests analyze.
func Run(ts model.TaskSet, opt Options) (Report, error) {
	if opt.Horizon <= 0 {
		return Report{}, ErrNoHorizon
	}
	if err := ts.Validate(); err != nil {
		return Report{}, fmt.Errorf("sim: %w", err)
	}

	var rep Report
	releases := make(releaseQueue, 0, len(ts))
	for i, t := range ts {
		if t.Phase < opt.Horizon {
			releases = append(releases, release{at: t.Phase, task: i})
		}
	}
	heap.Init(&releases)
	ready := make(jobQueue, 0, len(ts))

	var now int64
	var current *job // job owning the processor since segStart
	segStart := now
	emit := func(end int64, task int, jobIdx int64) {
		if !opt.RecordTrace || end == segStart {
			return
		}
		rep.Trace = append(rep.Trace, Segment{Start: segStart, End: end, Task: task, Job: jobIdx})
		segStart = end
	}

	// admit moves every release at time <= now into the ready queue.
	admit := func() {
		for len(releases) > 0 && releases[0].at <= now {
			r := heap.Pop(&releases).(release)
			t := ts[r.task]
			heap.Push(&ready, job{
				task:      r.task,
				index:     r.index,
				deadline:  r.at + t.Deadline,
				remaining: t.WCET,
			})
			rep.JobsReleased++
			if next := r.at + t.Period; next < opt.Horizon {
				heap.Push(&releases, release{at: next, task: r.task, index: r.index + 1})
			}
		}
	}

	for now < opt.Horizon {
		admit()
		if current == nil && len(ready) > 0 {
			j := heap.Pop(&ready).(job)
			current = &j
			segStart = now
		}
		if current == nil {
			// Idle until the next release or the horizon.
			next := opt.Horizon
			if len(releases) > 0 && releases[0].at < next {
				next = releases[0].at
			}
			emit(next, -1, 0)
			now = next
			continue
		}
		// A job whose remaining work cannot fit before its deadline will
		// miss it: later releases can only preempt it with earlier
		// deadlines, delaying it further.
		if now+current.remaining > current.deadline {
			emit(now, current.task, current.index)
			rep.Missed = true
			rep.MissTask = current.task
			rep.MissTime = current.deadline
			rep.EndTime = current.deadline
			return rep, nil
		}
		finish := now + current.remaining
		nextRelease := int64(-1)
		if len(releases) > 0 {
			nextRelease = releases[0].at
		}
		switch {
		case nextRelease >= 0 && nextRelease < finish && nextRelease < opt.Horizon:
			// Run until the release, then let EDF re-decide.
			current.remaining -= nextRelease - now
			rep.BusyTime += nextRelease - now
			now = nextRelease
			admit()
			// Preempt if a ready job now has an earlier deadline.
			if len(ready) > 0 && ready[0].deadline < current.deadline {
				emit(now, current.task, current.index)
				heap.Push(&ready, *current)
				j := heap.Pop(&ready).(job)
				current = &j
			}
		case finish > opt.Horizon:
			rep.BusyTime += opt.Horizon - now
			now = opt.Horizon
			emit(now, current.task, current.index)
		default:
			rep.BusyTime += finish - now
			now = finish
			emit(now, current.task, current.index)
			rep.JobsCompleted++
			current = nil
		}
	}
	rep.EndTime = now
	return rep, nil
}
