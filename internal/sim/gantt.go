package sim

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/model"
)

// GanttOptions configure the ASCII schedule rendering.
type GanttOptions struct {
	// Width is the number of character cells (default 80).
	Width int
	// From and To bound the rendered time window; To == 0 means the end
	// of the trace.
	From, To int64
}

// RenderGantt writes an ASCII Gantt chart of the trace: one row per task
// plus an idle row, a '#' per cell in which the task occupies the
// processor for at least half the cell. It is a quick visual check of
// simulator output, not a measurement tool.
func RenderGantt(w io.Writer, ts model.TaskSet, trace []Segment, opt GanttOptions) error {
	if opt.Width <= 0 {
		opt.Width = 80
	}
	if len(trace) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	from := opt.From
	to := opt.To
	if to == 0 {
		to = trace[len(trace)-1].End
	}
	if to <= from {
		return fmt.Errorf("sim: gantt window [%d,%d) is empty", from, to)
	}
	span := to - from
	cell := func(t int64) int {
		c := int((t - from) * int64(opt.Width) / span)
		return min(max(c, 0), opt.Width-1)
	}

	// occupancy[row][cell] accumulates time units; row len(ts) is idle.
	rows := len(ts) + 1
	occ := make([][]int64, rows)
	for i := range occ {
		occ[i] = make([]int64, opt.Width)
	}
	for _, seg := range trace {
		s, e := max(seg.Start, from), min(seg.End, to)
		if e <= s {
			continue
		}
		row := len(ts)
		if !seg.Idle() {
			row = seg.Task
		}
		for t := s; t < e; {
			c := cell(t)
			// Time units of this segment falling into cell c.
			cellEnd := from + (int64(c)+1)*span/int64(opt.Width)
			step := min(e, cellEnd) - t
			if step <= 0 {
				step = 1
			}
			occ[row][c] += step
			t += step
		}
	}

	unitsPerCell := span / int64(opt.Width)
	if unitsPerCell == 0 {
		unitsPerCell = 1
	}
	name := func(i int) string {
		if i == len(ts) {
			return "(idle)"
		}
		if ts[i].Name != "" {
			return ts[i].Name
		}
		return fmt.Sprintf("task%d", i)
	}
	nameWidth := 6
	for i := range rows {
		nameWidth = max(nameWidth, len(name(i)))
	}

	if _, err := fmt.Fprintf(w, "%*s |%s| t=[%d,%d)\n", nameWidth, "", strings.Repeat("-", opt.Width), from, to); err != nil {
		return err
	}
	for i := range rows {
		var b strings.Builder
		for c := range opt.Width {
			switch {
			case occ[i][c] == 0:
				b.WriteByte(' ')
			case occ[i][c]*2 >= unitsPerCell:
				b.WriteByte('#')
			default:
				b.WriteByte('.')
			}
		}
		if _, err := fmt.Fprintf(w, "%*s |%s|\n", nameWidth, name(i), b.String()); err != nil {
			return err
		}
	}
	return nil
}
