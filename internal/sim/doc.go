// Package sim is an event-driven preemptive EDF uniprocessor simulator on
// integer time. It serves as the ground truth for the feasibility tests:
// for the synchronous arrival sequence, a deadline is missed within the
// feasibility bound if and only if the exact tests report infeasibility.
//
// The simulator releases each task periodically at phase + k*period (the
// densest sporadic arrival pattern), schedules ready jobs
// earliest-deadline-first with preemption, and reports the first deadline
// miss, utilization of the processor, and optionally the full schedule
// trace.
package sim
