// Package experiments regenerates every figure and table of the paper's
// evaluation (Section 5):
//
//   - Figure 1: acceptance rate over utilization for Devi, SuperPos(2..10)
//     and the processor demand test.
//   - Figure 8: maximum and average checked test intervals over utilization
//     (90-99%) for the dynamic, all-approximated and processor demand tests.
//   - Figure 9: checked test intervals over the period ratio Tmax/Tmin
//     (100 to 1,000,000) for the same three tests.
//   - Table 1: checked test intervals on the literature example sets.
//
// Every experiment is driven by a Config with the paper's parameters as the
// "paper scale" and smaller defaults that finish in seconds; results carry
// enough structure to be rendered as ASCII tables (matching the paper's
// presentation) or CSV for plotting. Generation is deterministic per seed;
// evaluation fans out over all CPUs.
package experiments
