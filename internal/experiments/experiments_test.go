package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// effort fetches one analyzer's stat from a row, failing the test on a
// missing column.
func effort(t *testing.T, efforts []EffortStat, name string) EffortStat {
	t.Helper()
	e, ok := effortByName(efforts, name)
	if !ok {
		t.Fatalf("no effort column %q in %v", name, efforts)
	}
	return e
}

// smallFig1 keeps the acceptance experiment fast in unit tests.
func smallFig1() Fig1Result {
	return Fig1(Fig1Config{
		SetsPerPoint: 40,
		UtilPercents: []int{80, 90, 96, 99},
		Levels:       []int64{2, 4, 8},
		NMin:         5, NMax: 30,
		Seed: 1,
	})
}

func TestFig1CurvesNest(t *testing.T) {
	res := smallFig1()
	if len(res.Points) != 4 {
		t.Fatalf("points: %d", len(res.Points))
	}
	for _, p := range res.Points {
		// Devi <= SuperPos(2) <= SuperPos(4) <= SuperPos(8) <= PD.
		prev := p.Devi
		for _, level := range []int64{2, 4, 8} {
			cur := p.SuperPos[level]
			if cur+1e-12 < prev {
				t.Errorf("U=%d%%: SuperPos(%d)=%.3f below previous %.3f",
					p.UtilPercent, level, cur, prev)
			}
			prev = cur
		}
		if p.PD+1e-12 < prev {
			t.Errorf("U=%d%%: PD=%.3f below SuperPos(8)=%.3f", p.UtilPercent, p.PD, prev)
		}
	}
	// Acceptance must decline with utilization for the sufficient tests.
	if res.Points[0].Devi < res.Points[len(res.Points)-1].Devi {
		t.Errorf("Devi acceptance did not decline: %v -> %v",
			res.Points[0].Devi, res.Points[len(res.Points)-1].Devi)
	}
}

func TestFig1Render(t *testing.T) {
	res := smallFig1()
	var txt, csv bytes.Buffer
	if err := res.RenderText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "ProcDemand") {
		t.Errorf("text output missing header: %q", txt.String())
	}
	if err := res.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(res.Points) {
		t.Errorf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "util_percent,devi,superpos_2") {
		t.Errorf("csv header %q", lines[0])
	}
}

func TestFig8ShapeAndDeterminism(t *testing.T) {
	cfg := Fig8Config{Sets: 150, NMin: 5, NMax: 30, Seed: 7}
	res := Fig8(cfg)
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 (90..99)", len(res.Rows))
	}
	var total int
	var pdWins, rows int
	for _, row := range res.Rows {
		total += row.Sets
		if row.Sets == 0 {
			continue
		}
		rows++
		pd := effort(t, row.Efforts, "pd")
		all := effort(t, row.Efforts, "allapprox")
		if pd.Avg > all.Avg {
			pdWins++
		}
		if pd.Max < all.Max/2 {
			t.Errorf("U=%d%%: max PD %d far below AllApprox %d",
				row.UtilPercent, pd.Max, all.Max)
		}
	}
	if total != cfg.Sets {
		t.Errorf("bucketed %d sets, want %d", total, cfg.Sets)
	}
	// The paper's headline: PD needs more intervals on average in
	// (essentially) every utilization bucket.
	if pdWins < rows-1 {
		t.Errorf("PD cheaper than AllApprox in %d of %d buckets", rows-pdWins, rows)
	}
	// Determinism: the engine's batch runner must not let worker
	// scheduling leak into the aggregates.
	res2 := Fig8(cfg)
	if !reflect.DeepEqual(res.Rows, res2.Rows) {
		t.Fatalf("rows differ across runs with same seed:\n%v\n%v", res.Rows, res2.Rows)
	}
}

func TestFig9PDGrowsWithRatioNewTestsDoNot(t *testing.T) {
	res := Fig9(Fig9Config{
		SetsPerRatio: 25,
		Ratios:       []int64{100, 10000},
		NMin:         5, NMax: 30,
		Seed: 9,
	})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	lo, hi := res.Rows[0], res.Rows[1]
	loPD, hiPD := effort(t, lo.Efforts, "pd"), effort(t, hi.Efforts, "pd")
	if hiPD.Avg < 4*loPD.Avg {
		t.Errorf("PD effort did not grow with the ratio: %v -> %v", loPD.Avg, hiPD.Avg)
	}
	loAll, hiAll := effort(t, lo.Efforts, "allapprox"), effort(t, hi.Efforts, "allapprox")
	if hiAll.Avg > 6*loAll.Avg+50 {
		t.Errorf("AllApprox effort grew with the ratio: %v -> %v", loAll.Avg, hiAll.Avg)
	}
	loDyn, hiDyn := effort(t, lo.Efforts, "dynamic"), effort(t, hi.Efforts, "dynamic")
	if hiDyn.Avg > 6*loDyn.Avg+50 {
		t.Errorf("Dynamic effort grew with the ratio: %v -> %v", loDyn.Avg, hiDyn.Avg)
	}
}

func TestTable1MatchesPaperShape(t *testing.T) {
	res := Table1()
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	wantDevi := map[string]bool{
		"burns": true, "mashin": false, "gap": true,
		"gresser1": false, "gresser2": false,
	}
	for _, row := range res.Rows {
		if !row.Feasible {
			t.Errorf("%s: not feasible", row.Name)
		}
		devi, ok := row.Cell("devi")
		if !ok {
			t.Fatalf("%s: no devi column", row.Name)
		}
		if devi.Accepted != wantDevi[row.Name] {
			t.Errorf("%s: Devi accepts=%v, want %v", row.Name, devi.Accepted, wantDevi[row.Name])
		}
		pd, _ := row.Cell("pd")
		dyn, _ := row.Cell("dynamic")
		all, _ := row.Cell("allapprox")
		if pd.Iterations < 2*dyn.Iterations || pd.Iterations < 2*all.Iterations {
			t.Errorf("%s: PD=%d not clearly above Dyn=%d/All=%d",
				row.Name, pd.Iterations, dyn.Iterations, all.Iterations)
		}
	}

	var txt bytes.Buffer
	if err := res.RenderText(&txt); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	if !strings.Contains(out, "FAILED") {
		t.Errorf("rendered table missing FAILED markers:\n%s", out)
	}
	if !strings.Contains(out, "Gresser1") {
		t.Errorf("rendered table missing set names:\n%s", out)
	}
}

func TestFig8CSV(t *testing.T) {
	res := Fig8(Fig8Config{Sets: 40, NMin: 5, NMax: 15, Seed: 3})
	var csv bytes.Buffer
	if err := res.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "util_percent,sets,avg_pd") {
		t.Errorf("csv header: %q", csv.String()[:40])
	}
}

func TestFig9CSVAndText(t *testing.T) {
	res := Fig9(Fig9Config{SetsPerRatio: 10, Ratios: []int64{100}, NMin: 5, NMax: 10, Seed: 4})
	var csv, txt bytes.Buffer
	if err := res.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := res.RenderText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "Tmax/Tmin") {
		t.Errorf("text output: %q", txt.String())
	}
}
