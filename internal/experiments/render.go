package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
	"text/tabwriter"
)

// titleCase upper-cases the first letter of an ASCII name.
func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// RenderText writes the Figure 1 curves as an ASCII table, one row per
// utilization point, one column per test.
func (r Fig1Result) RenderText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	levels := slices.Clone(r.Config.Levels)
	slices.Sort(levels)
	fmt.Fprint(tw, "U%\tDevi")
	for _, l := range levels {
		fmt.Fprintf(tw, "\tSP(%d)", l)
	}
	fmt.Fprint(tw, "\tProcDemand\n")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%d\t%.3f", p.UtilPercent, p.Devi)
		for _, l := range levels {
			fmt.Fprintf(tw, "\t%.3f", p.SuperPos[l])
		}
		fmt.Fprintf(tw, "\t%.3f\n", p.PD)
	}
	return tw.Flush()
}

// RenderCSV writes the Figure 1 curves as CSV.
func (r Fig1Result) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	levels := slices.Clone(r.Config.Levels)
	slices.Sort(levels)
	header := []string{"util_percent", "devi"}
	for _, l := range levels {
		header = append(header, fmt.Sprintf("superpos_%d", l))
	}
	header = append(header, "processor_demand")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range r.Points {
		row := []string{strconv.Itoa(p.UtilPercent), fmt.Sprintf("%.4f", p.Devi)}
		for _, l := range levels {
			row = append(row, fmt.Sprintf("%.4f", p.SuperPos[l]))
		}
		row = append(row, fmt.Sprintf("%.4f", p.PD))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderText writes both Figure 8 panels as one ASCII table.
func (r Fig8Result) RenderText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "U%\tsets\tavgPD\tavgDyn\tavgAll\tmaxPD\tmaxDyn\tmaxAll")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.0f\t%.0f\t%d\t%d\t%d\n",
			row.UtilPercent, row.Sets,
			row.AvgPD, row.AvgDynamic, row.AvgAllAppr,
			row.MaxPD, row.MaxDynamic, row.MaxAllAppr)
	}
	return tw.Flush()
}

// RenderCSV writes the Figure 8 table as CSV.
func (r Fig8Result) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"util_percent", "sets",
		"avg_pd", "avg_dynamic", "avg_allapprox",
		"max_pd", "max_dynamic", "max_allapprox"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			strconv.Itoa(row.UtilPercent), strconv.Itoa(row.Sets),
			fmt.Sprintf("%.2f", row.AvgPD), fmt.Sprintf("%.2f", row.AvgDynamic),
			fmt.Sprintf("%.2f", row.AvgAllAppr),
			strconv.FormatInt(row.MaxPD, 10), strconv.FormatInt(row.MaxDynamic, 10),
			strconv.FormatInt(row.MaxAllAppr, 10)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderText writes both Figure 9 panels as one ASCII table.
func (r Fig9Result) RenderText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Tmax/Tmin\tsets\tavgPD\tavgDyn\tavgAll\tmaxPD\tmaxDyn\tmaxAll")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.0f\t%.0f\t%d\t%d\t%d\n",
			row.Ratio, row.Sets,
			row.AvgPD, row.AvgDynamic, row.AvgAllAppr,
			row.MaxPD, row.MaxDynamic, row.MaxAllAppr)
	}
	return tw.Flush()
}

// RenderCSV writes the Figure 9 table as CSV.
func (r Fig9Result) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ratio", "sets",
		"avg_pd", "avg_dynamic", "avg_allapprox",
		"max_pd", "max_dynamic", "max_allapprox"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			strconv.FormatInt(row.Ratio, 10), strconv.Itoa(row.Sets),
			fmt.Sprintf("%.2f", row.AvgPD), fmt.Sprintf("%.2f", row.AvgDynamic),
			fmt.Sprintf("%.2f", row.AvgAllAppr),
			strconv.FormatInt(row.MaxPD, 10), strconv.FormatInt(row.MaxDynamic, 10),
			strconv.FormatInt(row.MaxAllAppr, 10)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderText writes the burst experiment as an ASCII table.
func (r BurstResult) RenderText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "burst\tsets\tavgSP1\tavgDyn\tavgAll\tavgPD\tfeasible")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.2f\n",
			row.Width, row.Sets, row.AvgSP1, row.AvgDynamic,
			row.AvgAllAppr, row.AvgPD, row.Feasible)
	}
	return tw.Flush()
}

// RenderCSV writes the burst experiment as CSV.
func (r BurstResult) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"burst_width", "sets",
		"avg_superpos1", "avg_dynamic", "avg_allapprox", "avg_pd",
		"feasible_fraction"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			strconv.Itoa(row.Width), strconv.Itoa(row.Sets),
			fmt.Sprintf("%.2f", row.AvgSP1), fmt.Sprintf("%.2f", row.AvgDynamic),
			fmt.Sprintf("%.2f", row.AvgAllAppr), fmt.Sprintf("%.2f", row.AvgPD),
			fmt.Sprintf("%.4f", row.Feasible)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderText writes the Section 3.6 comparison as an ASCII table.
func (r RTCResult) RenderText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "U%\tRTC\tDevi\tExact")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\n", p.UtilPercent, p.RTC, p.Devi, p.Exact)
	}
	return tw.Flush()
}

// RenderCSV writes the Section 3.6 comparison as CSV.
func (r RTCResult) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"util_percent", "rtc", "devi", "exact"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		if err := cw.Write([]string{
			strconv.Itoa(p.UtilPercent),
			fmt.Sprintf("%.4f", p.RTC), fmt.Sprintf("%.4f", p.Devi),
			fmt.Sprintf("%.4f", p.Exact)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderText writes Table 1 in the paper's format: iteration counts, with
// FAILED in Devi's column when the sufficient test rejects.
func (r Table1Result) RenderText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Test\tn\tU\tDevi\tDyn.\tAll Appr.\tProc. Dem.")
	for _, row := range r.Rows {
		devi := strconv.FormatInt(row.Devi, 10)
		if !row.DeviOK {
			devi = "FAILED"
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%s\t%d\t%d\t%d\n",
			titleCase(row.Name), row.Tasks, row.Utilization,
			devi, row.Dynamic, row.AllApprox, row.PD)
	}
	return tw.Flush()
}

// RenderCSV writes Table 1 as CSV.
func (r Table1Result) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "tasks", "utilization",
		"devi_accepts", "devi", "dynamic", "allapprox", "processor_demand",
		"feasible"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			row.Name, strconv.Itoa(row.Tasks), fmt.Sprintf("%.4f", row.Utilization),
			strconv.FormatBool(row.DeviOK), strconv.FormatInt(row.Devi, 10),
			strconv.FormatInt(row.Dynamic, 10), strconv.FormatInt(row.AllApprox, 10),
			strconv.FormatInt(row.PD, 10), strconv.FormatBool(row.Feasible)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
