package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/engine"
)

// titleCase upper-cases the first letter of an ASCII name.
func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// csvName maps an analyzer registry name to a CSV column token:
// "superpos(1)" -> "superpos1".
func csvName(name string) string {
	var b strings.Builder
	for _, r := range name {
		if r == '(' || r == ')' {
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// paperLabel maps analyzer names to the paper's Table 1 column headers.
func paperLabel(name string) string {
	switch name {
	case "devi":
		return "Devi"
	case "dynamic":
		return "Dyn."
	case "allapprox":
		return "All Appr."
	case "pd":
		return "Proc. Dem."
	case "qpa":
		return "QPA"
	case "liu":
		return "Liu-Layland"
	case "response":
		return "Resp. Time"
	case "rtc":
		return "RTC"
	default:
		return titleCase(name)
	}
}

// isSufficient reports whether an analyzer name resolves to a merely
// sufficient test (whose rejection renders as FAILED in the paper's
// tables).
func isSufficient(name string) bool {
	a, ok := engine.Get(name)
	return ok && a.Info().Kind == engine.Sufficient
}

// effortHeaders appends avg/max column headers for an analyzer list.
func effortHeaders(header []string, names []string, prefix func(string) string) []string {
	for _, n := range names {
		header = append(header, prefix("avg")+csvName(n))
	}
	for _, n := range names {
		header = append(header, prefix("max")+csvName(n))
	}
	return header
}

// effortValues appends the avg/max columns of one row.
func effortValues(row []string, efforts []EffortStat) []string {
	for _, e := range efforts {
		row = append(row, fmt.Sprintf("%.2f", e.Avg))
	}
	for _, e := range efforts {
		row = append(row, strconv.FormatInt(e.Max, 10))
	}
	return row
}

// renderEffortText writes a generic effort table (Figures 8 and 9 share
// the format): one row per key, avg columns then max columns.
func renderEffortText(w io.Writer, keyHeader string, names []string,
	rows func(emit func(key string, sets int, efforts []EffortStat))) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tsets", keyHeader)
	for _, n := range names {
		fmt.Fprintf(tw, "\tavg(%s)", csvName(n))
	}
	for _, n := range names {
		fmt.Fprintf(tw, "\tmax(%s)", csvName(n))
	}
	fmt.Fprintln(tw)
	rows(func(key string, sets int, efforts []EffortStat) {
		fmt.Fprintf(tw, "%s\t%d", key, sets)
		for _, e := range efforts {
			fmt.Fprintf(tw, "\t%.0f", e.Avg)
		}
		for _, e := range efforts {
			fmt.Fprintf(tw, "\t%d", e.Max)
		}
		fmt.Fprintln(tw)
	})
	return tw.Flush()
}

// RenderText writes the Figure 1 curves as an ASCII table, one row per
// utilization point, one column per test.
func (r Fig1Result) RenderText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	levels := slices.Clone(r.Config.Levels)
	slices.Sort(levels)
	fmt.Fprint(tw, "U%\tDevi")
	for _, l := range levels {
		fmt.Fprintf(tw, "\tSP(%d)", l)
	}
	fmt.Fprint(tw, "\tProcDemand\n")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%d\t%.3f", p.UtilPercent, p.Devi)
		for _, l := range levels {
			fmt.Fprintf(tw, "\t%.3f", p.SuperPos[l])
		}
		fmt.Fprintf(tw, "\t%.3f\n", p.PD)
	}
	return tw.Flush()
}

// RenderCSV writes the Figure 1 curves as CSV.
func (r Fig1Result) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	levels := slices.Clone(r.Config.Levels)
	slices.Sort(levels)
	header := []string{"util_percent", "devi"}
	for _, l := range levels {
		header = append(header, fmt.Sprintf("superpos_%d", l))
	}
	header = append(header, "processor_demand")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range r.Points {
		row := []string{strconv.Itoa(p.UtilPercent), fmt.Sprintf("%.4f", p.Devi)}
		for _, l := range levels {
			row = append(row, fmt.Sprintf("%.4f", p.SuperPos[l]))
		}
		row = append(row, fmt.Sprintf("%.4f", p.PD))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderText writes both Figure 8 panels as one ASCII table.
func (r Fig8Result) RenderText(w io.Writer) error {
	return renderEffortText(w, "U%", r.Config.Analyzers,
		func(emit func(string, int, []EffortStat)) {
			for _, row := range r.Rows {
				emit(strconv.Itoa(row.UtilPercent), row.Sets, row.Efforts)
			}
		})
}

// RenderCSV writes the Figure 8 table as CSV.
func (r Fig8Result) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := effortHeaders([]string{"util_percent", "sets"}, r.Config.Analyzers,
		func(kind string) string { return kind + "_" })
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := effortValues([]string{
			strconv.Itoa(row.UtilPercent), strconv.Itoa(row.Sets)}, row.Efforts)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderText writes both Figure 9 panels as one ASCII table.
func (r Fig9Result) RenderText(w io.Writer) error {
	return renderEffortText(w, "Tmax/Tmin", r.Config.Analyzers,
		func(emit func(string, int, []EffortStat)) {
			for _, row := range r.Rows {
				emit(strconv.FormatInt(row.Ratio, 10), row.Sets, row.Efforts)
			}
		})
}

// RenderCSV writes the Figure 9 table as CSV.
func (r Fig9Result) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := effortHeaders([]string{"ratio", "sets"}, r.Config.Analyzers,
		func(kind string) string { return kind + "_" })
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := effortValues([]string{
			strconv.FormatInt(row.Ratio, 10), strconv.Itoa(row.Sets)}, row.Efforts)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderText writes the burst experiment as an ASCII table.
func (r BurstResult) RenderText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "burst\tsets")
	for _, n := range r.Config.Analyzers {
		fmt.Fprintf(tw, "\tavg(%s)", csvName(n))
	}
	fmt.Fprintln(tw, "\tfeasible")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%d", row.Width, row.Sets)
		for _, e := range row.Efforts {
			fmt.Fprintf(tw, "\t%.0f", e.Avg)
		}
		fmt.Fprintf(tw, "\t%.2f\n", row.Feasible)
	}
	return tw.Flush()
}

// RenderCSV writes the burst experiment as CSV.
func (r BurstResult) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"burst_width", "sets"}
	for _, n := range r.Config.Analyzers {
		header = append(header, "avg_"+csvName(n))
	}
	header = append(header, "feasible_fraction")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{strconv.Itoa(row.Width), strconv.Itoa(row.Sets)}
		for _, e := range row.Efforts {
			rec = append(rec, fmt.Sprintf("%.2f", e.Avg))
		}
		rec = append(rec, fmt.Sprintf("%.4f", row.Feasible))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderText writes the Section 3.6 comparison as an ASCII table.
func (r RTCResult) RenderText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "U%\tRTC\tDevi\tExact")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\n", p.UtilPercent, p.RTC, p.Devi, p.Exact)
	}
	return tw.Flush()
}

// RenderCSV writes the Section 3.6 comparison as CSV.
func (r RTCResult) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"util_percent", "rtc", "devi", "exact"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		if err := cw.Write([]string{
			strconv.Itoa(p.UtilPercent),
			fmt.Sprintf("%.4f", p.RTC), fmt.Sprintf("%.4f", p.Devi),
			fmt.Sprintf("%.4f", p.Exact)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderText writes Table 1 in the paper's format: iteration counts per
// analyzer column, with FAILED in a sufficient test's column when it
// cannot accept the set.
func (r Table1Result) RenderText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Test\tn\tU")
	for _, name := range r.Analyzers {
		fmt.Fprintf(tw, "\t%s", paperLabel(name))
	}
	fmt.Fprintln(tw)
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f", titleCase(row.Name), row.Tasks, row.Utilization)
		for _, cell := range row.Cells {
			if !cell.Accepted && isSufficient(cell.Analyzer) {
				fmt.Fprint(tw, "\tFAILED")
			} else {
				fmt.Fprintf(tw, "\t%d", cell.Iterations)
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// RenderCSV writes Table 1 as CSV.
func (r Table1Result) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"name", "tasks", "utilization"}
	for _, name := range r.Analyzers {
		header = append(header, csvName(name)+"_accepts", csvName(name))
	}
	header = append(header, "feasible")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{row.Name, strconv.Itoa(row.Tasks), fmt.Sprintf("%.4f", row.Utilization)}
		for _, cell := range row.Cells {
			rec = append(rec, strconv.FormatBool(cell.Accepted),
				strconv.FormatInt(cell.Iterations, 10))
		}
		rec = append(rec, strconv.FormatBool(row.Feasible))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
