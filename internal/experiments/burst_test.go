package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestBurstEffortGrowsWithWidth(t *testing.T) {
	res := Burst(BurstConfig{
		SetsPerPoint: 40,
		BurstWidths:  []int{1, 8},
		Periodics:    6,
		Seed:         3,
	})
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	lo, hi := res.Rows[0], res.Rows[1]
	// Element-wise handling: the per-element tests must pay for the wider
	// burst (more demand sources), the paper's stated cost of the event
	// stream extension.
	if hi.AvgSP1() <= lo.AvgSP1() {
		t.Errorf("SuperPos(1) effort did not grow with burst width: %v -> %v",
			lo.AvgSP1(), hi.AvgSP1())
	}
	if hi.AvgAllAppr() <= lo.AvgAllAppr() {
		t.Errorf("AllApprox effort did not grow with burst width: %v -> %v",
			lo.AvgAllAppr(), hi.AvgAllAppr())
	}
	// The generator must produce analyzable, mostly feasible workloads.
	for _, row := range res.Rows {
		if row.Feasible < 0.5 {
			t.Errorf("width %d: only %.2f feasible — generator mistuned",
				row.Width, row.Feasible)
		}
	}

	var txt, csv bytes.Buffer
	if err := res.RenderText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "burst") {
		t.Errorf("text: %q", txt.String())
	}
	if err := res.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "burst_width,sets") {
		t.Errorf("csv: %q", csv.String())
	}
}
