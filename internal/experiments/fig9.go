package experiments

import (
	"io"

	"repro/internal/model"
	"repro/internal/taskgen"
)

// Fig9Config parameterizes the period-ratio experiment of Figure 9: the
// effort of the tests as Tmax/Tmin grows from 100 to 1,000,000 (such high
// ratios arise when system interrupts and scheduling overhead are modelled
// as tasks). The paper used 4,000 sets per ratio.
type Fig9Config struct {
	// SetsPerRatio is the number of task sets per ratio point.
	SetsPerRatio int
	// Analyzers are the engine registry names whose effort is measured
	// (default: the paper's comparison pd, dynamic, allapprox).
	Analyzers []string
	// Ratios are the Tmax/Tmin points (x-axis).
	Ratios []int64
	// NMin, NMax bound the task-set size.
	NMin, NMax int
	// GapMin, GapMax bound the per-set average deadline gap (paper: 10-50%).
	GapMin, GapMax float64
	// UtilMin, UtilMax bound the per-set utilization (paper: 90-100%).
	UtilMin, UtilMax float64
	// PeriodMin anchors the period range: periods span
	// [PeriodMin, PeriodMin*ratio], log-uniformly.
	PeriodMin int64
	// Seed makes the run reproducible.
	Seed int64
	// Progress, when non-nil, receives per-ratio progress lines.
	Progress io.Writer
}

func (c Fig9Config) withDefaults() Fig9Config {
	if c.SetsPerRatio == 0 {
		c.SetsPerRatio = 200
	}
	if len(c.Analyzers) == 0 {
		c.Analyzers = []string{"pd", "dynamic", "allapprox"}
	}
	if len(c.Ratios) == 0 {
		c.Ratios = []int64{100, 1000, 10000, 100000, 500000, 1000000}
	}
	if c.NMin == 0 {
		c.NMin = 5
	}
	if c.NMax == 0 {
		c.NMax = 100
	}
	if c.GapMin == 0 {
		c.GapMin = 0.10
	}
	if c.GapMax == 0 {
		c.GapMax = 0.50
	}
	if c.UtilMin == 0 {
		c.UtilMin = 0.90
	}
	if c.UtilMax == 0 {
		c.UtilMax = 0.995
	}
	if c.PeriodMin == 0 {
		c.PeriodMin = 1000
	}
	return c
}

// Fig9Row is one ratio point of Figure 9 (both panels plus the average
// numbers quoted in the text).
type Fig9Row struct {
	Ratio int64
	Sets  int
	// Efforts holds one entry per configured analyzer, in config order.
	Efforts []EffortStat
}

// Effort returns the ratio point's stat for one analyzer name.
func (r Fig9Row) Effort(name string) (EffortStat, bool) {
	return effortByName(r.Efforts, name)
}

// Fig9Result is the full table behind Figure 9.
type Fig9Result struct {
	Config Fig9Config
	Rows   []Fig9Row
}

// Fig9 runs the experiment: per period ratio it generates random task sets
// with log-uniform periods spanning the ratio and measures the checked test
// intervals. The paper's headline: the processor demand test explodes with
// the ratio (tens of millions of intervals) while the new tests stay flat.
func Fig9(cfg Fig9Config) Fig9Result {
	cfg = cfg.withDefaults()
	analyzers := mustAnalyzers(cfg.Analyzers)
	res := Fig9Result{Config: cfg}
	for ri, ratio := range cfg.Ratios {
		rng := rngFor(cfg.Seed, 900+int64(ri))
		sets := make([]model.TaskSet, 0, cfg.SetsPerRatio)
		for len(sets) < cfg.SetsPerRatio {
			n := cfg.NMin + rng.Intn(cfg.NMax-cfg.NMin+1)
			u := cfg.UtilMin + rng.Float64()*(cfg.UtilMax-cfg.UtilMin)
			gap := cfg.GapMin + rng.Float64()*(cfg.GapMax-cfg.GapMin)
			ts, err := taskgen.New(taskgen.Config{
				N: n, Utilization: u,
				PeriodMin: cfg.PeriodMin, PeriodMax: cfg.PeriodMin * ratio,
				LogUniformPeriods: true,
				GapMean:           gap / 2, // per-task gaps ~ U(0, gap)
			}, rng)
			if err != nil || ts.OverUtilized() {
				continue
			}
			sets = append(sets, ts)
		}

		perAnalyzer := make([]stats, len(analyzers))
		for _, perSet := range analyzeSets(sets, analyzers, floatOpt()) {
			for ai, r := range perSet {
				perAnalyzer[ai].add(r.Iterations)
			}
		}
		row := Fig9Row{
			Ratio:   ratio,
			Sets:    len(sets),
			Efforts: effortStats(cfg.Analyzers, perAnalyzer),
		}
		res.Rows = append(res.Rows, row)
		progress(cfg.Progress, "fig9: ratio=%d %s", ratio, renderEffortSummary(row.Efforts))
	}
	return res
}
