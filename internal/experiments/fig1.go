package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/taskgen"
)

// Fig1Config parameterizes the acceptance-rate experiment of Figure 1.
type Fig1Config struct {
	// SetsPerPoint is the number of random task sets per utilization point.
	SetsPerPoint int
	// UtilPercents are the evaluated utilization points (x-axis).
	UtilPercents []int
	// Levels are the SuperPos levels between Devi (level 1) and the exact
	// processor demand test.
	Levels []int64
	// NMin, NMax bound the task-set size.
	NMin, NMax int
	// GapMean is the average deadline gap.
	GapMean float64
	// PeriodMin, PeriodMax bound the periods.
	PeriodMin, PeriodMax int64
	// Seed makes the run reproducible.
	Seed int64
	// Progress, when non-nil, receives per-point progress lines.
	Progress io.Writer
}

// withDefaults fills unset fields with the repository defaults (a scaled
// down but shape-preserving version of the paper's setup).
func (c Fig1Config) withDefaults() Fig1Config {
	if c.SetsPerPoint == 0 {
		c.SetsPerPoint = 500
	}
	if len(c.UtilPercents) == 0 {
		for p := 70; p <= 100; p += 2 {
			c.UtilPercents = append(c.UtilPercents, p)
		}
	}
	if len(c.Levels) == 0 {
		c.Levels = []int64{2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	if c.NMin == 0 {
		c.NMin = 5
	}
	if c.NMax == 0 {
		c.NMax = 100
	}
	if c.GapMean == 0 {
		c.GapMean = 0.30
	}
	if c.PeriodMin == 0 {
		c.PeriodMin = 1000
	}
	if c.PeriodMax == 0 {
		c.PeriodMax = 100000
	}
	return c
}

// analyzers builds the experiment's test ladder from the engine registry:
// Devi, the configured superposition levels, and the exact processor
// demand baseline.
func (c Fig1Config) analyzers() []engine.Analyzer {
	out := []engine.Analyzer{engine.MustGet("devi")}
	for _, level := range c.Levels {
		out = append(out, engine.MustGet(fmt.Sprintf("superpos(%d)", level)))
	}
	return append(out, engine.MustGet("pd"))
}

// Fig1Point is one utilization point of Figure 1: the fraction of task sets
// each test accepts.
type Fig1Point struct {
	UtilPercent int
	// Devi, PD are the acceptance rates of the boundary tests.
	Devi, PD float64
	// SuperPos maps level -> acceptance rate.
	SuperPos map[int64]float64
}

// Fig1Result is the full curve set of Figure 1.
type Fig1Result struct {
	Config Fig1Config
	Points []Fig1Point
}

// Fig1 runs the experiment: for every utilization point it generates random
// task sets and measures which fraction Devi, each SuperPos level, and the
// exact processor demand test accept. The paper's Figure 1 shows the
// acceptance curves nesting between Devi and the exact test.
func Fig1(cfg Fig1Config) Fig1Result {
	cfg = cfg.withDefaults()
	analyzers := cfg.analyzers()
	res := Fig1Result{Config: cfg}
	for pi, pct := range cfg.UtilPercents {
		rng := rngFor(cfg.Seed, int64(pi))
		sets := make([]model.TaskSet, 0, cfg.SetsPerPoint)
		for len(sets) < cfg.SetsPerPoint {
			n := cfg.NMin + rng.Intn(cfg.NMax-cfg.NMin+1)
			gen := taskgen.Config{
				N: n, Utilization: float64(pct) / 100,
				PeriodMin: cfg.PeriodMin, PeriodMax: cfg.PeriodMax,
				GapMean: cfg.GapMean,
			}
			ts, err := taskgen.New(gen, rng)
			if err != nil {
				continue
			}
			if ts.OverUtilized() {
				continue // integer rounding pushed a 100% target over
			}
			sets = append(sets, ts)
		}

		// Accept counts per analyzer: index 0 is Devi, 1..len(Levels) the
		// superposition ladder, the last the exact baseline.
		accepts := make([]int, len(analyzers))
		for _, perSet := range analyzeSets(sets, analyzers, floatOpt()) {
			for ai, r := range perSet {
				if r.Verdict == core.Feasible {
					accepts[ai]++
				}
			}
		}
		total := float64(len(sets))
		point := Fig1Point{
			UtilPercent: pct,
			Devi:        float64(accepts[0]) / total,
			PD:          float64(accepts[len(accepts)-1]) / total,
			SuperPos:    make(map[int64]float64, len(cfg.Levels)),
		}
		for li, level := range cfg.Levels {
			point.SuperPos[level] = float64(accepts[1+li]) / total
		}
		res.Points = append(res.Points, point)
		progress(cfg.Progress, "fig1: U=%d%% devi=%.3f pd=%.3f", pct, point.Devi, point.PD)
	}
	return res
}
