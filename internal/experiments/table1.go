package experiments

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/examplesets"
	"repro/internal/model"
)

// table1Analyzers are the default columns of the reproduced Table 1, in
// the paper's order.
func table1Analyzers() []string {
	return []string{"devi", "dynamic", "allapprox", "pd"}
}

// Table1Cell is one analyzer column of a Table 1 row.
type Table1Cell struct {
	// Analyzer is the engine registry name.
	Analyzer string
	// Accepted reports whether the analyzer accepted the set; the paper
	// prints FAILED for sufficient analyzers that could not.
	Accepted bool
	// Iterations is the number of checked test intervals.
	Iterations int64
}

// Table1Row is one literature set of Table 1: checked test intervals per
// analyzer, plus the exact feasibility reference.
type Table1Row struct {
	Name        string
	Tasks       int
	Utilization float64
	// Cells holds one entry per analyzer, in column order.
	Cells []Table1Cell
	// Feasible is the verdict of the first exact analyzer among the
	// columns.
	Feasible bool
}

// Cell returns the row's cell for one analyzer name.
func (r Table1Row) Cell(name string) (Table1Cell, bool) {
	for _, c := range r.Cells {
		if c.Analyzer == name {
			return c, true
		}
	}
	return Table1Cell{}, false
}

// Table1Result is the reproduced Table 1.
type Table1Result struct {
	// Analyzers are the column names, in order.
	Analyzers []string
	Rows      []Table1Row
}

// Table1 reproduces the paper's Table 1 on the (surrogate) literature
// sets with the default columns (Devi, dynamic, all-approximated,
// processor demand).
func Table1() Table1Result { return Table1With(table1Analyzers()) }

// Table1With reproduces Table 1 with an arbitrary analyzer column set
// from the engine registry. At least one column must be exact so the
// feasibility reference is meaningful; callers with user-supplied names
// validate via CheckAnalyzers first.
func Table1With(names []string) Table1Result {
	if err := CheckAnalyzers(names, false, true); err != nil {
		panic(err)
	}
	analyzers := mustAnalyzers(names)
	examples := examplesets.All()
	sets := make([]model.TaskSet, len(examples))
	for i, ex := range examples {
		sets[i] = ex.Set
	}
	grouped := analyzeSets(sets, analyzers, core.Options{})

	exact := -1
	for ai, a := range analyzers {
		if a.Info().Kind == engine.Exact {
			exact = ai
			break
		}
	}

	res := Table1Result{Analyzers: names}
	for i, ex := range examples {
		row := Table1Row{
			Name:        ex.Name,
			Tasks:       len(ex.Set),
			Utilization: ex.Set.UtilizationFloat(),
		}
		for ai, name := range names {
			r := grouped[i][ai]
			row.Cells = append(row.Cells, Table1Cell{
				Analyzer:   name,
				Accepted:   r.Verdict == core.Feasible,
				Iterations: r.Iterations,
			})
		}
		if exact >= 0 {
			row.Feasible = grouped[i][exact].Verdict == core.Feasible
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}
