package experiments

import (
	"repro/internal/core"
	"repro/internal/examplesets"
)

// Table1Row is one literature set of Table 1: checked test intervals per
// algorithm, with Devi's column reading FAILED when the sufficient test
// cannot accept the (feasible) set.
type Table1Row struct {
	Name        string
	Tasks       int
	Utilization float64
	DeviOK      bool
	Devi        int64
	Dynamic     int64
	AllApprox   int64
	PD          int64
	Feasible    bool
}

// Table1Result is the reproduced Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reproduces the paper's Table 1 on the (surrogate) literature sets.
func Table1() Table1Result {
	var res Table1Result
	for _, ex := range examplesets.All() {
		devi := core.Devi(ex.Set)
		dyn := core.DynamicError(ex.Set, core.Options{})
		all := core.AllApprox(ex.Set, core.Options{})
		pd := core.ProcessorDemand(ex.Set, core.Options{})
		res.Rows = append(res.Rows, Table1Row{
			Name:        ex.Name,
			Tasks:       len(ex.Set),
			Utilization: ex.Set.UtilizationFloat(),
			DeviOK:      devi.Verdict == core.Feasible,
			Devi:        devi.Iterations,
			Dynamic:     dyn.Iterations,
			AllApprox:   all.Iterations,
			PD:          pd.Iterations,
			Feasible:    pd.Verdict == core.Feasible,
		})
	}
	return res
}
