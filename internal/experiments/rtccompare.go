package experiments

import (
	"io"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/taskgen"
)

// RTCConfig parameterizes the Section 3.6 comparison: acceptance of the
// real-time-calculus style curve approximation versus Devi's test (its
// superposition equivalent SuperPos(1)) and the exact test over
// utilization.
type RTCConfig struct {
	SetsPerPoint         int
	UtilPercents         []int
	NMin, NMax           int
	GapMean              float64
	PeriodMin, PeriodMax int64
	Seed                 int64
	Progress             io.Writer
}

func (c RTCConfig) withDefaults() RTCConfig {
	if c.SetsPerPoint == 0 {
		c.SetsPerPoint = 400
	}
	if len(c.UtilPercents) == 0 {
		for p := 50; p <= 95; p += 5 {
			c.UtilPercents = append(c.UtilPercents, p)
		}
	}
	if c.NMin == 0 {
		c.NMin = 5
	}
	if c.NMax == 0 {
		c.NMax = 50
	}
	if c.GapMean == 0 {
		c.GapMean = 0.30
	}
	if c.PeriodMin == 0 {
		c.PeriodMin = 1000
	}
	if c.PeriodMax == 0 {
		c.PeriodMax = 100000
	}
	return c
}

// RTCPoint is one utilization point of the comparison.
type RTCPoint struct {
	UtilPercent int
	RTC         float64 // acceptance of the curve approximation
	Devi        float64
	Exact       float64
}

// RTCResult is the full comparison table.
type RTCResult struct {
	Config RTCConfig
	Points []RTCPoint
}

// RTCCompare runs the comparison. Expected shape (the paper's Section 3.6
// claim): RTC acceptance <= Devi acceptance <= exact acceptance at every
// utilization, with the RTC curve dropping first.
func RTCCompare(cfg RTCConfig) RTCResult {
	cfg = cfg.withDefaults()
	// The comparison ladder, from the engine registry: the RTC curve
	// test, its superposition counterpart Devi, and the exact authority.
	analyzers := mustAnalyzers([]string{"rtc", "devi", "allapprox"})
	res := RTCResult{Config: cfg}
	for pi, pct := range cfg.UtilPercents {
		rng := rngFor(cfg.Seed, 3600+int64(pi))
		sets := make([]model.TaskSet, 0, cfg.SetsPerPoint)
		for len(sets) < cfg.SetsPerPoint {
			n := cfg.NMin + rng.Intn(cfg.NMax-cfg.NMin+1)
			ts, err := taskgen.New(taskgen.Config{
				N: n, Utilization: float64(pct) / 100,
				PeriodMin: cfg.PeriodMin, PeriodMax: cfg.PeriodMax,
				GapMean: cfg.GapMean,
			}, rng)
			if err != nil || ts.OverUtilized() {
				continue
			}
			sets = append(sets, ts)
		}
		var nRTC, nDevi, nExact int
		for _, perSet := range analyzeSets(sets, analyzers, floatOpt()) {
			if perSet[0].Verdict == core.Feasible {
				nRTC++
			}
			if perSet[1].Verdict == core.Feasible {
				nDevi++
			}
			if perSet[2].Verdict == core.Feasible {
				nExact++
			}
		}
		total := float64(len(sets))
		point := RTCPoint{
			UtilPercent: pct,
			RTC:         float64(nRTC) / total,
			Devi:        float64(nDevi) / total,
			Exact:       float64(nExact) / total,
		}
		res.Points = append(res.Points, point)
		progress(cfg.Progress, "rtc: U=%d%% rtc=%.3f devi=%.3f exact=%.3f",
			pct, point.RTC, point.Devi, point.Exact)
	}
	return res
}
