package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
)

// progress writes a line to w when w is non-nil.
func progress(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// mustAnalyzers resolves experiment analyzer names against the engine
// registry; the names come from experiment configs and default to builtin
// analyzers, so a miss is a configuration error.
func mustAnalyzers(names []string) []engine.Analyzer {
	return engine.MustParse(strings.Join(names, ","))
}

// CheckAnalyzers validates an experiment analyzer override before it
// reaches the experiment: every name must resolve in the engine registry,
// needEvents requires event-stream support (the burst experiment), and
// needExact requires at least one exact analyzer to serve as the
// feasibility reference. Callers pass the registry's canonical names (one
// analyzer per entry, no group keywords).
func CheckAnalyzers(names []string, needEvents, needExact bool) error {
	if len(names) == 0 {
		return nil // defaults apply
	}
	exact := false
	for _, name := range names {
		a, ok := engine.Get(name)
		if !ok {
			return fmt.Errorf("experiments: unknown analyzer %q", name)
		}
		if needEvents && !a.Info().Events {
			return fmt.Errorf("experiments: analyzer %q has no event-stream support", name)
		}
		if a.Info().Kind == engine.Exact {
			exact = true
		}
	}
	if needExact && !exact {
		return fmt.Errorf("experiments: analyzer set %v has no exact feasibility reference", names)
	}
	return nil
}

// analyzeSets fans every (set x analyzer) job out over the engine's
// bounded worker pool and returns the results grouped per set, in
// analyzer order. Ordering is deterministic regardless of parallelism.
func analyzeSets(sets []model.TaskSet, analyzers []engine.Analyzer, opt core.Options) [][]core.Result {
	return engine.RunSets(context.Background(), sets, analyzers, opt, engine.RunOptions{})
}

// floatOpt is the experiments' shared test configuration: float64
// accumulators, as in the paper's measurements.
func floatOpt() core.Options {
	return core.Options{Arithmetic: core.ArithFloat64}
}

// EffortStat is the aggregated effort of one analyzer over a bucket of
// task sets, in the paper's metric (checked test intervals).
type EffortStat struct {
	// Analyzer is the registry name.
	Analyzer string
	// Avg is the mean number of checked intervals.
	Avg float64
	// Max is the maximum number of checked intervals.
	Max int64
}

// effortStats zips analyzer names with their accumulated stats.
func effortStats(names []string, s []stats) []EffortStat {
	out := make([]EffortStat, len(names))
	for i, name := range names {
		out[i] = EffortStat{Analyzer: name, Avg: s[i].Mean(), Max: s[i].Max()}
	}
	return out
}

// effortByName finds one analyzer's stat in a row's efforts.
func effortByName(efforts []EffortStat, name string) (EffortStat, bool) {
	for _, e := range efforts {
		if e.Analyzer == name {
			return e, true
		}
	}
	return EffortStat{}, false
}

// renderEffortSummary formats per-analyzer "name(avg=...,max=...)" pairs
// for progress lines.
func renderEffortSummary(efforts []EffortStat) string {
	parts := make([]string, len(efforts))
	for i, e := range efforts {
		parts[i] = fmt.Sprintf("%s(avg=%.0f,max=%d)", e.Analyzer, e.Avg, e.Max)
	}
	return strings.Join(parts, " ")
}

// stats accumulates max and mean of an iteration count series.
type stats struct {
	n   int64
	sum float64
	max int64
}

func (s *stats) add(v int64) {
	s.n++
	s.sum += float64(v)
	s.max = max(s.max, v)
}

// Mean returns the average, 0 for an empty series.
func (s *stats) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Max returns the maximum, 0 for an empty series.
func (s *stats) Max() int64 { return s.max }

// rngFor derives a deterministic sub-generator for an experiment stage.
func rngFor(seed int64, stage int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + stage))
}
