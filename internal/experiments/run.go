package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/model"
)

// progress writes a line to w when w is non-nil.
func progress(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// forEachSet evaluates fn over the sets on all CPUs. fn must be safe for
// concurrent use; aggregation happens in the caller via the returned
// per-set results (order preserved).
func forEachSet[T any](sets []model.TaskSet, fn func(model.TaskSet) T) []T {
	out := make([]T, len(sets))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sets) {
		workers = max(len(sets), 1)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(sets[i])
			}
		}()
	}
	for i := range sets {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// stats accumulates max and mean of an iteration count series.
type stats struct {
	n   int64
	sum float64
	max int64
}

func (s *stats) add(v int64) {
	s.n++
	s.sum += float64(v)
	s.max = max(s.max, v)
}

// Mean returns the average, 0 for an empty series.
func (s *stats) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Max returns the maximum, 0 for an empty series.
func (s *stats) Max() int64 { return s.max }

// rngFor derives a deterministic sub-generator for an experiment stage.
func rngFor(seed int64, stage int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + stage))
}
