package experiments

import (
	"io"

	"repro/internal/model"
	"repro/internal/taskgen"
)

// Fig8Config parameterizes the effort-over-utilization experiment of
// Figure 8: task sets with utilizations between 90% and 99% (hard to test),
// sizes 5..100, average gaps of 20/30/40%.
type Fig8Config struct {
	// Sets is the total number of task sets (the paper used 18,000).
	Sets int
	// Analyzers are the engine registry names whose effort is measured
	// (default: the paper's comparison pd, dynamic, allapprox).
	Analyzers []string
	// NMin, NMax bound the task-set size.
	NMin, NMax int
	// GapMeans are the average deadline gaps the sets cycle through.
	GapMeans []float64
	// PeriodMin, PeriodMax bound the periods.
	PeriodMin, PeriodMax int64
	// Seed makes the run reproducible.
	Seed int64
	// Progress, when non-nil, receives per-bucket progress lines.
	Progress io.Writer
}

func (c Fig8Config) withDefaults() Fig8Config {
	if c.Sets == 0 {
		c.Sets = 2000
	}
	if len(c.Analyzers) == 0 {
		c.Analyzers = []string{"pd", "dynamic", "allapprox"}
	}
	if c.NMin == 0 {
		c.NMin = 5
	}
	if c.NMax == 0 {
		c.NMax = 100
	}
	if len(c.GapMeans) == 0 {
		c.GapMeans = []float64{0.20, 0.30, 0.40}
	}
	if c.PeriodMin == 0 {
		c.PeriodMin = 1000
	}
	if c.PeriodMax == 0 {
		c.PeriodMax = 100000
	}
	return c
}

// Fig8Row is one utilization percent bucket of Figure 8 (both panels:
// maximum and average iterations for each analyzer).
type Fig8Row struct {
	UtilPercent int
	Sets        int
	// Efforts holds one entry per configured analyzer, in config order.
	Efforts []EffortStat
}

// Effort returns the bucket's stat for one analyzer name.
func (r Fig8Row) Effort(name string) (EffortStat, bool) {
	return effortByName(r.Efforts, name)
}

// Fig8Result is the full table behind both panels of Figure 8.
type Fig8Result struct {
	Config Fig8Config
	Rows   []Fig8Row // one per utilization percent 90..99
}

// Fig8 runs the experiment: random task sets with utilizations uniformly
// in [90%, 99.9%] are bucketed by utilization percent; per bucket the
// maximum and average number of checked test intervals is reported for
// every configured analyzer.
func Fig8(cfg Fig8Config) Fig8Result {
	cfg = cfg.withDefaults()
	analyzers := mustAnalyzers(cfg.Analyzers)
	rng := rngFor(cfg.Seed, 8)
	sets := make([]model.TaskSet, 0, cfg.Sets)
	for len(sets) < cfg.Sets {
		n := cfg.NMin + rng.Intn(cfg.NMax-cfg.NMin+1)
		gap := cfg.GapMeans[len(sets)%len(cfg.GapMeans)]
		u := 0.90 + rng.Float64()*0.099
		ts, err := taskgen.New(taskgen.Config{
			N: n, Utilization: u,
			PeriodMin: cfg.PeriodMin, PeriodMax: cfg.PeriodMax,
			GapMean: gap,
		}, rng)
		if err != nil || ts.OverUtilized() {
			continue
		}
		if ts.UtilizationFloat() < 0.90 {
			continue
		}
		sets = append(sets, ts)
	}

	grouped := analyzeSets(sets, analyzers, floatOpt())

	res := Fig8Result{Config: cfg}
	for pct := 90; pct <= 99; pct++ {
		perAnalyzer := make([]stats, len(analyzers))
		n := 0
		for si, ts := range sets {
			p := int(ts.UtilizationFloat() * 100)
			if p > 99 {
				p = 99
			}
			if p != pct {
				continue
			}
			n++
			for ai := range analyzers {
				perAnalyzer[ai].add(grouped[si][ai].Iterations)
			}
		}
		row := Fig8Row{
			UtilPercent: pct,
			Sets:        n,
			Efforts:     effortStats(cfg.Analyzers, perAnalyzer),
		}
		res.Rows = append(res.Rows, row)
		progress(cfg.Progress, "fig8: U=%d%% sets=%d %s",
			pct, n, renderEffortSummary(row.Efforts))
	}
	return res
}
