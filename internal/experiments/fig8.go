package experiments

import (
	"io"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/taskgen"
)

// Fig8Config parameterizes the effort-over-utilization experiment of
// Figure 8: task sets with utilizations between 90% and 99% (hard to test),
// sizes 5..100, average gaps of 20/30/40%.
type Fig8Config struct {
	// Sets is the total number of task sets (the paper used 18,000).
	Sets int
	// NMin, NMax bound the task-set size.
	NMin, NMax int
	// GapMeans are the average deadline gaps the sets cycle through.
	GapMeans []float64
	// PeriodMin, PeriodMax bound the periods.
	PeriodMin, PeriodMax int64
	// Seed makes the run reproducible.
	Seed int64
	// Progress, when non-nil, receives per-bucket progress lines.
	Progress io.Writer
}

func (c Fig8Config) withDefaults() Fig8Config {
	if c.Sets == 0 {
		c.Sets = 2000
	}
	if c.NMin == 0 {
		c.NMin = 5
	}
	if c.NMax == 0 {
		c.NMax = 100
	}
	if len(c.GapMeans) == 0 {
		c.GapMeans = []float64{0.20, 0.30, 0.40}
	}
	if c.PeriodMin == 0 {
		c.PeriodMin = 1000
	}
	if c.PeriodMax == 0 {
		c.PeriodMax = 100000
	}
	return c
}

// Fig8Row is one utilization percent bucket of Figure 8 (both panels:
// maximum and average iterations for each algorithm).
type Fig8Row struct {
	UtilPercent int
	Sets        int
	MaxDynamic  int64
	MaxPD       int64
	MaxAllAppr  int64
	AvgDynamic  float64
	AvgPD       float64
	AvgAllAppr  float64
}

// Fig8Result is the full table behind both panels of Figure 8.
type Fig8Result struct {
	Config Fig8Config
	Rows   []Fig8Row // one per utilization percent 90..99
}

// Fig8 runs the experiment: random task sets with utilizations uniformly
// in [90%, 99.9%] are bucketed by utilization percent; per bucket the
// maximum and average number of checked test intervals is reported for the
// dynamic test, the all-approximated test and the processor demand test.
func Fig8(cfg Fig8Config) Fig8Result {
	cfg = cfg.withDefaults()
	rng := rngFor(cfg.Seed, 8)
	sets := make([]model.TaskSet, 0, cfg.Sets)
	for len(sets) < cfg.Sets {
		n := cfg.NMin + rng.Intn(cfg.NMax-cfg.NMin+1)
		gap := cfg.GapMeans[len(sets)%len(cfg.GapMeans)]
		u := 0.90 + rng.Float64()*0.099
		ts, err := taskgen.New(taskgen.Config{
			N: n, Utilization: u,
			PeriodMin: cfg.PeriodMin, PeriodMax: cfg.PeriodMax,
			GapMean: gap,
		}, rng)
		if err != nil || ts.OverUtilized() {
			continue
		}
		if ts.UtilizationFloat() < 0.90 {
			continue
		}
		sets = append(sets, ts)
	}

	type effort struct {
		pct            int
		dyn, pd, allap int64
	}
	per := forEachSet(sets, func(ts model.TaskSet) effort {
		opt := core.Options{Arithmetic: core.ArithFloat64}
		pct := int(ts.UtilizationFloat() * 100)
		if pct > 99 {
			pct = 99
		}
		return effort{
			pct:   pct,
			dyn:   core.DynamicError(ts, opt).Iterations,
			pd:    core.ProcessorDemand(ts, opt).Iterations,
			allap: core.AllApprox(ts, opt).Iterations,
		}
	})

	res := Fig8Result{Config: cfg}
	for pct := 90; pct <= 99; pct++ {
		var sDyn, sPD, sAll stats
		for _, e := range per {
			if e.pct != pct {
				continue
			}
			sDyn.add(e.dyn)
			sPD.add(e.pd)
			sAll.add(e.allap)
		}
		res.Rows = append(res.Rows, Fig8Row{
			UtilPercent: pct,
			Sets:        int(sDyn.n),
			MaxDynamic:  sDyn.Max(), MaxPD: sPD.Max(), MaxAllAppr: sAll.Max(),
			AvgDynamic: sDyn.Mean(), AvgPD: sPD.Mean(), AvgAllAppr: sAll.Mean(),
		})
		progress(cfg.Progress, "fig8: U=%d%% sets=%d pd(avg=%.0f,max=%d) dyn(avg=%.0f,max=%d) all(avg=%.0f,max=%d)",
			pct, int(sDyn.n), sPD.Mean(), sPD.Max(), sDyn.Mean(), sDyn.Max(), sAll.Mean(), sAll.Max())
	}
	return res
}
