package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRTCCompareOrdering(t *testing.T) {
	res := RTCCompare(RTCConfig{
		SetsPerPoint: 60,
		UtilPercents: []int{60, 75, 90},
		NMin:         3, NMax: 20,
		Seed: 5,
	})
	if len(res.Points) != 3 {
		t.Fatalf("points: %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.RTC > p.Devi+1e-9 {
			t.Errorf("U=%d%%: RTC %.3f above Devi %.3f", p.UtilPercent, p.RTC, p.Devi)
		}
		if p.Devi > p.Exact+1e-9 {
			t.Errorf("U=%d%%: Devi %.3f above exact %.3f", p.UtilPercent, p.Devi, p.Exact)
		}
	}
	// Acceptance of the curve test must decay with utilization.
	if res.Points[0].RTC < res.Points[2].RTC {
		t.Errorf("RTC acceptance did not decay: %v", res.Points)
	}

	var txt, csv bytes.Buffer
	if err := res.RenderText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "RTC") {
		t.Errorf("text: %q", txt.String())
	}
	if err := res.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "util_percent,rtc,devi,exact") {
		t.Errorf("csv: %q", csv.String())
	}
}
