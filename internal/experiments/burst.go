package experiments

import (
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/eventstream"
)

// BurstConfig parameterizes the event-stream extension experiment: bursty
// workloads analyzed with the same iterative tests, counting checked test
// intervals per algorithm as the burst width grows. The paper notes the
// event stream extension "leads to a higher complexity than the test by
// Devi because each element of the burst has to be handled as a separate
// element of the event stream" — this experiment quantifies that cost and
// shows it stays far below the processor demand test's.
type BurstConfig struct {
	// SetsPerPoint is the number of workloads per burst width.
	SetsPerPoint int
	// BurstWidths are the evaluated burst sizes (events per burst).
	BurstWidths []int
	// Periodics is the number of background periodic streams.
	Periodics int
	// Seed makes the run reproducible.
	Seed int64
	// Progress, when non-nil, receives per-point progress lines.
	Progress io.Writer
}

func (c BurstConfig) withDefaults() BurstConfig {
	if c.SetsPerPoint == 0 {
		c.SetsPerPoint = 200
	}
	if len(c.BurstWidths) == 0 {
		c.BurstWidths = []int{1, 2, 4, 8, 16}
	}
	if c.Periodics == 0 {
		c.Periodics = 8
	}
	return c
}

// BurstRow is one burst width: average checked intervals per test and the
// acceptance rate of the exact tests.
type BurstRow struct {
	Width      int
	Sets       int
	AvgSP1     float64 // SuperPos(1), the Devi-equivalent level
	AvgDynamic float64
	AvgAllAppr float64
	AvgPD      float64
	Feasible   float64 // fraction feasible (exact)
}

// BurstResult is the full table.
type BurstResult struct {
	Config BurstConfig
	Rows   []BurstRow
}

// randomBurstWorkload builds one event-driven workload: background
// periodic streams plus one bursty stream of the given width.
func randomBurstWorkload(rng *rand.Rand, periodics, width int) []eventstream.Task {
	tasks := make([]eventstream.Task, 0, periodics+1)
	// Background periodic load, ~55-65% utilization.
	for i := range periodics {
		period := int64(500 * (i + 1 + rng.Intn(4)))
		wcet := 25 + rng.Int63n(period/16)
		deadline := wcet + rng.Int63n(period-wcet+1)
		tasks = append(tasks, eventstream.Task{
			Stream:   eventstream.Periodic(period),
			WCET:     wcet,
			Deadline: deadline,
		})
	}
	// The burst: width events, tight spacing, long macro period sized so
	// the burst contributes ~15-25% utilization. The deadline leaves room
	// for the burst backlog (width jobs) to drain behind the background
	// load.
	spacing := int64(40 + rng.Int63n(40))
	wcet := int64(60 + rng.Int63n(60))
	macro := int64(width) * wcet * (4 + rng.Int63n(3))
	tasks = append(tasks, eventstream.Task{
		Stream:   eventstream.Burst(macro, width, spacing),
		WCET:     wcet,
		Deadline: 3*int64(width)*wcet + 2*spacing,
	})
	return tasks
}

// Burst runs the experiment.
func Burst(cfg BurstConfig) BurstResult {
	cfg = cfg.withDefaults()
	res := BurstResult{Config: cfg}
	opt := core.Options{Arithmetic: core.ArithFloat64}
	for wi, width := range cfg.BurstWidths {
		rng := rngFor(cfg.Seed, 7000+int64(wi))
		var sSP1, sDyn, sAll, sPD stats
		feasible := 0
		sets := 0
		for sets < cfg.SetsPerPoint {
			tasks := randomBurstWorkload(rng, cfg.Periodics, width)
			srcs := eventstream.Sources(tasks)
			pd := core.ProcessorDemandSources(srcs, opt)
			if pd.Verdict == core.Undecided {
				continue // U >= 1 after rounding: regenerate
			}
			sets++
			sSP1.add(core.SuperPosSources(srcs, 1, opt).Iterations)
			sDyn.add(core.DynamicErrorSources(srcs, 0, opt).Iterations)
			sAll.add(core.AllApproxSources(srcs, 0, opt).Iterations)
			sPD.add(pd.Iterations)
			if pd.Verdict == core.Feasible {
				feasible++
			}
		}
		res.Rows = append(res.Rows, BurstRow{
			Width: width, Sets: sets,
			AvgSP1: sSP1.Mean(), AvgDynamic: sDyn.Mean(),
			AvgAllAppr: sAll.Mean(), AvgPD: sPD.Mean(),
			Feasible: float64(feasible) / float64(sets),
		})
		progress(cfg.Progress, "burst: width=%d sp1=%.0f dyn=%.0f all=%.0f pd=%.0f feas=%.2f",
			width, sSP1.Mean(), sDyn.Mean(), sAll.Mean(), sPD.Mean(),
			float64(feasible)/float64(sets))
	}
	return res
}
