package experiments

import (
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eventstream"
)

// BurstConfig parameterizes the event-stream extension experiment: bursty
// workloads analyzed with the same iterative tests, counting checked test
// intervals per algorithm as the burst width grows. The paper notes the
// event stream extension "leads to a higher complexity than the test by
// Devi because each element of the burst has to be handled as a separate
// element of the event stream" — this experiment quantifies that cost and
// shows it stays far below the processor demand test's.
type BurstConfig struct {
	// SetsPerPoint is the number of workloads per burst width.
	SetsPerPoint int
	// Analyzers are engine registry names with event-stream support; the
	// last exact one serves as the feasibility reference. Default:
	// superpos(1) (the Devi-equivalent level), dynamic, allapprox, pd.
	Analyzers []string
	// BurstWidths are the evaluated burst sizes (events per burst).
	BurstWidths []int
	// Periodics is the number of background periodic streams.
	Periodics int
	// Seed makes the run reproducible.
	Seed int64
	// Progress, when non-nil, receives per-point progress lines.
	Progress io.Writer
}

func (c BurstConfig) withDefaults() BurstConfig {
	if c.SetsPerPoint == 0 {
		c.SetsPerPoint = 200
	}
	if len(c.Analyzers) == 0 {
		c.Analyzers = []string{"superpos(1)", "dynamic", "allapprox", "pd"}
	}
	if len(c.BurstWidths) == 0 {
		c.BurstWidths = []int{1, 2, 4, 8, 16}
	}
	if c.Periodics == 0 {
		c.Periodics = 8
	}
	return c
}

// BurstRow is one burst width: average checked intervals per test and the
// acceptance rate of the exact reference.
type BurstRow struct {
	Width int
	Sets  int
	// Efforts holds one entry per configured analyzer, in config order.
	Efforts []EffortStat
	// Feasible is the fraction the exact reference accepts.
	Feasible float64
}

// Effort returns the width point's stat for one analyzer name.
func (r BurstRow) Effort(name string) (EffortStat, bool) {
	return effortByName(r.Efforts, name)
}

// AvgSP1 is the mean effort of the Devi-equivalent superposition level.
func (r BurstRow) AvgSP1() float64 { return r.avg("superpos(1)") }

// AvgAllAppr is the mean effort of the all-approximated test.
func (r BurstRow) AvgAllAppr() float64 { return r.avg("allapprox") }

func (r BurstRow) avg(name string) float64 {
	e, _ := r.Effort(name)
	return e.Avg
}

// BurstResult is the full table.
type BurstResult struct {
	Config BurstConfig
	Rows   []BurstRow
}

// randomBurstWorkload builds one event-driven workload: background
// periodic streams plus one bursty stream of the given width.
func randomBurstWorkload(rng *rand.Rand, periodics, width int) []eventstream.Task {
	tasks := make([]eventstream.Task, 0, periodics+1)
	// Background periodic load, ~55-65% utilization.
	for i := range periodics {
		period := int64(500 * (i + 1 + rng.Intn(4)))
		wcet := 25 + rng.Int63n(period/16)
		deadline := wcet + rng.Int63n(period-wcet+1)
		tasks = append(tasks, eventstream.Task{
			Stream:   eventstream.Periodic(period),
			WCET:     wcet,
			Deadline: deadline,
		})
	}
	// The burst: width events, tight spacing, long macro period sized so
	// the burst contributes ~15-25% utilization. The deadline leaves room
	// for the burst backlog (width jobs) to drain behind the background
	// load.
	spacing := int64(40 + rng.Int63n(40))
	wcet := int64(60 + rng.Int63n(60))
	macro := int64(width) * wcet * (4 + rng.Int63n(3))
	tasks = append(tasks, eventstream.Task{
		Stream:   eventstream.Burst(macro, width, spacing),
		WCET:     wcet,
		Deadline: 3*int64(width)*wcet + 2*spacing,
	})
	return tasks
}

// Burst runs the experiment through the registry's event-capable
// analyzers.
func Burst(cfg BurstConfig) BurstResult {
	cfg = cfg.withDefaults()
	if err := CheckAnalyzers(cfg.Analyzers, true, true); err != nil {
		panic(err) // callers with user input validate via CheckAnalyzers
	}
	analyzers := make([]engine.EventAnalyzer, 0, len(cfg.Analyzers))
	ref := -1
	for i, a := range mustAnalyzers(cfg.Analyzers) {
		analyzers = append(analyzers, a.(engine.EventAnalyzer))
		if a.Info().Kind == engine.Exact {
			ref = i // last exact analyzer is the feasibility reference
		}
	}

	res := BurstResult{Config: cfg}
	opt := floatOpt()
	for wi, width := range cfg.BurstWidths {
		rng := rngFor(cfg.Seed, 7000+int64(wi))
		perAnalyzer := make([]stats, len(analyzers))
		feasible := 0
		sets := 0
		for sets < cfg.SetsPerPoint {
			tasks := randomBurstWorkload(rng, cfg.Periodics, width)
			refRes := analyzers[ref].AnalyzeEvents(tasks, opt)
			if refRes.Verdict == core.Undecided {
				continue // U >= 1 after rounding: regenerate
			}
			sets++
			for ai, a := range analyzers {
				r := refRes
				if ai != ref {
					r = a.AnalyzeEvents(tasks, opt)
				}
				perAnalyzer[ai].add(r.Iterations)
			}
			if refRes.Verdict == core.Feasible {
				feasible++
			}
		}
		row := BurstRow{
			Width: width, Sets: sets,
			Efforts:  effortStats(cfg.Analyzers, perAnalyzer),
			Feasible: float64(feasible) / float64(sets),
		}
		res.Rows = append(res.Rows, row)
		progress(cfg.Progress, "burst: width=%d feas=%.2f %s",
			width, row.Feasible, renderEffortSummary(row.Efforts))
	}
	return res
}
