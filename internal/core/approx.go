package core

import (
	"repro/internal/demand"
)

// approxTracker is the "ApproxList" of the paper's pseudocode: the set of
// currently approximated sources in insertion order. Only sources with a
// positive approximation slope are tracked — a zero-slope (one-shot) source
// is exact under approximation, so revising it can never reduce the
// approximated demand. Its buffers live in the analysis Scratch, so a
// reused Scratch makes the tracker allocation-free.
type approxTracker struct {
	order []int  // approximated source indices, oldest first
	in    []bool // membership by source index
}

func newApproxTracker(s *demand.Scratch, n int) approxTracker {
	return approxTracker{order: s.Ints(n), in: s.Bools(n)}
}

func (a *approxTracker) empty() bool { return len(a.order) == 0 }

func (a *approxTracker) add(src int) {
	if !a.in[src] {
		a.in[src] = true
		a.order = append(a.order, src)
	}
}

func (a *approxTracker) removeAt(pos int) int {
	src := a.order[pos]
	a.order = append(a.order[:pos], a.order[pos+1:]...)
	a.in[src] = false
	return src
}

// pick selects the next source to revise at interval I according to the
// revision order and removes it from the tracker.
func (a *approxTracker) pick(order RevisionOrder, srcs []demand.Source, I int64) (int, bool) {
	if a.empty() {
		return 0, false
	}
	switch order {
	case ReviseLIFO:
		return a.removeAt(len(a.order) - 1), true
	case ReviseMaxError:
		bestPos, bestErr := 0, -1.0
		for pos, src := range a.order {
			num, den := srcs[src].ApproxError(I)
			if e := float64(num) / float64(den); e > bestErr {
				bestPos, bestErr = pos, e
			}
		}
		return a.removeAt(bestPos), true
	default: // ReviseFIFO
		return a.removeAt(0), true
	}
}

// accountedDemand returns Σ jobs[i]·C_i, the exact demand accounted for
// when no source is approximated. It is the reference value used to confirm
// rejections exactly and to re-synchronize float accumulators.
func accountedDemand(srcs []demand.Source, jobs []int64) int64 {
	var sum int64
	for i, s := range srcs {
		sum += jobs[i] * s.WCET()
	}
	return sum
}
