package core

import (
	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/numeric"
)

// SuperPos applies the superposition test SuperPos(x) of Definition 6: the
// demand of each task is computed exactly for its first `level` jobs and
// approximated with slope C/T beyond (Definition 4); the set is accepted if
// the superposed approximation dbf'(I, Γ) stays within every checked test
// interval (Lemma 1). The test is sufficient with an error that shrinks as
// the level grows; SuperPos(1) is exactly Devi's test (Lemma 2).
func SuperPos(ts model.TaskSet, level int64, opt Options) Result {
	opt, borrowed := opt.acquire()
	defer release(borrowed)
	return SuperPosSources(opt.Scratch.Sources(ts), level, opt)
}

// SuperPosSources runs SuperPos(x) over generic demand sources.
func SuperPosSources(srcs []demand.Source, level int64, opt Options) Result {
	opt, borrowed := opt.acquire()
	defer release(borrowed)
	if level < 1 {
		level = 1
	}
	if utilCmpOneScratch(srcs, opt.Scratch) > 0 {
		return Result{Verdict: Infeasible, Iterations: 1, MaxLevel: level}
	}
	switch opt.Arithmetic {
	case ArithFloat64:
		return superPos(numeric.F64(0), srcs, level, opt)
	case ArithBigRat:
		return superPos(numeric.Rat{}, srcs, level, opt)
	default:
		if opt.Scratch.Arith(srcs) != nil {
			return superPosChunked(srcs, level, opt)
		}
		return superPos(numeric.Fast{}, srcs, level, opt)
	}
}

// superPos is the arithmetic-generic SuperPos(x) implementation. It walks
// the job deadlines of the first `level` jobs of each source in ascending
// order, maintaining the approximated demand incrementally:
//
//	dbf' += C_src + (I - Iold) * Uready
//
// where Uready is the total slope of the sources already past their maximum
// exact test interval Im = JobDeadline(level). Once the list drains, every
// remaining contribution grows with slope U <= 1 while the capacity grows
// with slope 1, so the approximated test holds for all larger intervals
// (the implicit superposition bound).
func superPos[S numeric.Scalar[S]](zero S, srcs []demand.Source, level int64, opt Options) Result {
	tl := opt.Scratch.TestList(len(srcs))
	jobs := opt.Scratch.Jobs(len(srcs)) // processed jobs per source
	for i, s := range srcs {
		tl.Add(s.JobDeadline(1), i)
	}
	dbf, uready := zero, zero
	var iold, iterations int64
	for !tl.Empty() {
		e := tl.Peek()
		I := e.I
		iterations++
		if opt.capped(iterations) {
			return Result{Verdict: Undecided, Iterations: iterations, MaxLevel: level}
		}
		s := srcs[e.Src]
		jobs[e.Src]++
		dbf = dbf.AddInt(s.WCET()).AddScaled(uready, I-iold)
		if capacity := opt.capacityAt(I); dbf.CmpInt(capacity) > 0 {
			// The approximation rejected the interval. If the exact demand
			// already exceeds the capacity the set is infeasible, which
			// upgrades the verdict from NotAccepted to Infeasible.
			verdict := NotAccepted
			if demand.Dbf(srcs, I) > capacity {
				verdict = Infeasible
			}
			return Result{Verdict: verdict, Iterations: iterations, FailureInterval: I, MaxLevel: level}
		}
		if jobs[e.Src] >= level {
			// Reached Im: approximate this source from here on.
			tl.Next()
			num, den := s.UtilRat()
			uready = uready.AddRat(num, den)
		} else {
			tl.Replace(s.NextDeadline(I), e.Src)
		}
		iold = I
	}
	return Result{Verdict: Feasible, Iterations: iterations, MaxLevel: level}
}

// superPosChunked is superPos on the scratch's bounded-denominator
// registers: the demand accumulator and the ready-slope sum are Chunked
// registers mutated in place, so spread-period sets whose slopes
// overflow the Fast representation stay exact, allocation-free and off
// math/big. The caller guarantees the scratch plan covers the sources.
func superPosChunked(srcs []demand.Source, level int64, opt Options) Result {
	tl := opt.Scratch.TestList(len(srcs))
	jobs := opt.Scratch.Jobs(len(srcs)) // processed jobs per source
	for i, s := range srcs {
		tl.Add(s.JobDeadline(1), i)
	}
	dbf, uready := opt.Scratch.Reg(0), opt.Scratch.Reg(1)
	var iold, iterations int64
	for !tl.Empty() {
		e := tl.Peek()
		I := e.I
		iterations++
		if opt.capped(iterations) {
			return Result{Verdict: Undecided, Iterations: iterations, MaxLevel: level}
		}
		s := srcs[e.Src]
		jobs[e.Src]++
		dbf.AddInt(s.WCET())
		dbf.AddScaled(uready, I-iold)
		if capacity := opt.capacityAt(I); dbf.CmpInt(capacity) > 0 {
			verdict := NotAccepted
			if demand.Dbf(srcs, I) > capacity {
				verdict = Infeasible
			}
			return Result{Verdict: verdict, Iterations: iterations, FailureInterval: I, MaxLevel: level}
		}
		if jobs[e.Src] >= level {
			tl.Next()
			num, den := s.UtilRat()
			uready.AddRat(num, den)
		} else {
			tl.Replace(s.NextDeadline(I), e.Src)
		}
		iold = I
	}
	return Result{Verdict: Feasible, Iterations: iterations, MaxLevel: level}
}

// SuperPosEpsilon runs the superposition test at the level corresponding to
// a relative approximation error epsilon in (0,1): level = ceil(1/epsilon).
// This is the interface of the approximate schedulability analysis of
// Chakraborty et al. (RTSS 2002), which Section 3.4 of the paper groups
// with the superposition approach: accepting with error epsilon means a
// processor slowed down by (1-epsilon) might reject the set.
func SuperPosEpsilon(ts model.TaskSet, epsilon float64, opt Options) Result {
	if epsilon <= 0 || epsilon >= 1 {
		return SuperPos(ts, 1, opt)
	}
	level := int64(1)
	if inv := 1 / epsilon; inv > 1 {
		level = int64(inv)
		if float64(level) < inv {
			level++
		}
	}
	return SuperPos(ts, level, opt)
}
