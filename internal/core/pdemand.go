package core

import (
	"repro/internal/bounds"
	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/numeric"
)

// utilCmpOne compares the total utilization of the sources with 1. The
// sum is exact and allocation-free while it stays within int64.
func utilCmpOne(srcs []demand.Source) int {
	return demand.UtilCmpOne(srcs)
}

// taskUtilCmpOne compares Σ Ci/Ti with 1 exactly without adapting the
// tasks to sources first.
func taskUtilCmpOne(ts model.TaskSet) int {
	var u numeric.Fast
	for _, t := range ts {
		u = u.AddRat(t.WCET, t.Period)
	}
	return u.CmpInt(1)
}

// sourceBound returns the smallest applicable feasibility bound over plain
// sources (George or superposition; Baruah and hyperperiod need the task
// structure). Requires U < 1.
func sourceBound(srcs []demand.Source) (int64, bounds.Kind, bool) {
	bg, okG, bs, okS := bounds.LinearBounds(srcs)
	switch {
	case okG && okS:
		if bs <= bg {
			return bs, bounds.KindSuperposition, true
		}
		return bg, bounds.KindGeorge, true
	case okG:
		return bg, bounds.KindGeorge, true
	case okS:
		return bs, bounds.KindSuperposition, true
	default:
		return 0, bounds.KindNone, false
	}
}

// taskBound returns the feasibility bound for a task set honoring an
// explicit Options.Bound selection. srcs must be the task set's demand
// sources (they carry the George/superposition computation so a reused
// Scratch avoids re-adapting the set).
func taskBound(ts model.TaskSet, srcs []demand.Source, opt Options) (int64, bounds.Kind, bool) {
	switch opt.Bound {
	case "", bounds.KindNone:
		return bounds.BestSources(ts, srcs)
	case bounds.KindBaruah:
		b, ok := bounds.Baruah(ts)
		return b, bounds.KindBaruah, ok
	case bounds.KindGeorge:
		b, ok := bounds.George(srcs)
		return b, bounds.KindGeorge, ok
	case bounds.KindSuperposition:
		b, ok := bounds.Superposition(srcs)
		return b, bounds.KindSuperposition, ok
	case bounds.KindBusyPeriod:
		b, ok := bounds.BusyPeriod(ts)
		// The busy period is an inclusive horizon: violations lie at
		// I <= L, so the exclusive bound is L+1.
		return b + 1, bounds.KindBusyPeriod, ok
	case bounds.KindHyperperiod:
		h, ok := bounds.Hyperperiod(ts)
		return h + ts.MaxDeadline() + 1, bounds.KindHyperperiod, ok
	default:
		return 0, bounds.KindNone, false
	}
}

// ProcessorDemand applies the exact processor demand test of Baruah et al.
// (Definition 3): the set is feasible iff dbf(I, Γ) <= I for every absolute
// deadline I below the feasibility bound. Iterations counts the distinct
// test intervals checked.
func ProcessorDemand(ts model.TaskSet, opt Options) Result {
	opt, borrowed := opt.acquire()
	defer release(borrowed)
	if taskUtilCmpOne(ts) > 0 {
		return Result{Verdict: Infeasible, Iterations: 1}
	}
	srcs := opt.Scratch.Sources(ts)
	bound, kind, ok := taskBound(ts, srcs, opt)
	if !ok {
		return Result{Verdict: Undecided}
	}
	r := processorDemand(srcs, bound, opt)
	r.Bound, r.BoundKind = bound, kind
	return r
}

// ProcessorDemandSources runs the processor demand test over generic
// demand sources (e.g. event streams). It decides sets with U < 1, whose
// horizon comes from the George/superposition bound, and rejects U > 1.
// For U == 1 the result is Undecided: generic sources carry no task
// structure, so no finite hyperperiod horizon can be derived and neither
// linear bound exists — use DynamicErrorSources with an explicit stopAt
// horizon when the enclosing model can supply one.
func ProcessorDemandSources(srcs []demand.Source, opt Options) Result {
	opt, borrowed := opt.acquire()
	defer release(borrowed)
	switch utilCmpOne(srcs) {
	case 1:
		return Result{Verdict: Infeasible, Iterations: 1}
	case 0:
		// No sound finite horizon exists for fully utilized generic
		// sources; report Undecided instead of running an unbounded walk.
		return Result{Verdict: Undecided}
	}
	bound, kind, ok := sourceBound(srcs)
	if !ok {
		return Result{Verdict: Undecided}
	}
	r := processorDemand(srcs, bound, opt)
	r.Bound, r.BoundKind = bound, kind
	return r
}

// processorDemand checks dbf(I) <= I for every distinct absolute deadline
// I < bound, walking deadlines in ascending order through the scratch
// heap. The caller must have attached a Scratch to opt.
func processorDemand(srcs []demand.Source, bound int64, opt Options) Result {
	tl := opt.Scratch.TestList(len(srcs))
	for i, s := range srcs {
		if d := s.JobDeadline(1); d < bound {
			tl.Add(d, i)
		}
	}
	var dem, iterations int64
	for !tl.Empty() {
		I := tl.Peek().I
		// Merge every job whose deadline is exactly I: they form one test
		// interval.
		for !tl.Empty() && tl.Peek().I == I {
			e := tl.Next()
			dem += srcs[e.Src].WCET()
			if nd := srcs[e.Src].NextDeadline(I); nd < bound {
				tl.Add(nd, e.Src)
			}
		}
		iterations++
		if opt.capped(iterations) {
			return Result{Verdict: Undecided, Iterations: iterations}
		}
		if dem > opt.capacityAt(I) {
			return Result{Verdict: Infeasible, Iterations: iterations, FailureInterval: I}
		}
	}
	return Result{Verdict: Feasible, Iterations: iterations}
}
