package core

import (
	"repro/internal/bounds"
	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/numeric"
)

// utilCmpOne compares the total utilization of the sources with 1. The
// sum is exact and allocation-free while it stays within int64.
func utilCmpOne(srcs []demand.Source) int {
	return demand.UtilCmpOne(srcs)
}

// utilCmpOneScratch is utilCmpOne on the scratch's chunk registers when
// the plan covers the sources — exact either way, but allocation-free
// even when the slope sum overflows the Fast representation.
func utilCmpOneScratch(srcs []demand.Source, sc *demand.Scratch) int {
	if sc.Arith(srcs) == nil {
		return demand.UtilCmpOne(srcs)
	}
	u := sc.Reg(0)
	for _, s := range srcs {
		u.AddRat(s.UtilRat())
	}
	return u.CmpInt(1)
}

// taskUtilCmpOne compares Σ Ci/Ti with 1 exactly without adapting the
// tasks to sources first.
func taskUtilCmpOne(ts model.TaskSet) int {
	var u numeric.Fast
	for _, t := range ts {
		u = u.AddRat(t.WCET, t.Period)
	}
	return u.CmpInt(1)
}

// taskUtilCmpOneScratch is taskUtilCmpOne on the chunk registers.
func taskUtilCmpOneScratch(ts model.TaskSet, sc *demand.Scratch) int {
	if sc.ArithTasks(ts) == nil {
		return taskUtilCmpOne(ts)
	}
	u := sc.Reg(0)
	for _, t := range ts {
		u.AddRat(t.WCET, t.Period)
	}
	return u.CmpInt(1)
}

// sourceBound returns the smallest applicable feasibility bound over plain
// sources (George or superposition; Baruah and hyperperiod need the task
// structure). Requires U < 1.
func sourceBound(srcs []demand.Source, sc *demand.Scratch) (int64, bounds.Kind, bool) {
	bg, okG, bs, okS := bounds.LinearBoundsScratch(srcs, sc)
	switch {
	case okG && okS:
		if bs <= bg {
			return bs, bounds.KindSuperposition, true
		}
		return bg, bounds.KindGeorge, true
	case okG:
		return bg, bounds.KindGeorge, true
	case okS:
		return bs, bounds.KindSuperposition, true
	default:
		return 0, bounds.KindNone, false
	}
}

// taskBound returns the feasibility bound for a task set honoring an
// explicit Options.Bound selection. srcs must be the task set's demand
// sources (they carry the George/superposition computation so a reused
// Scratch avoids re-adapting the set).
func taskBound(ts model.TaskSet, srcs []demand.Source, opt Options) (int64, bounds.Kind, bool) {
	switch opt.Bound {
	case "", bounds.KindNone:
		return bounds.BestSourcesScratch(ts, srcs, opt.Scratch)
	case bounds.KindBaruah:
		b, ok := bounds.Baruah(ts)
		return b, bounds.KindBaruah, ok
	case bounds.KindGeorge:
		b, ok := bounds.George(srcs)
		return b, bounds.KindGeorge, ok
	case bounds.KindSuperposition:
		b, ok := bounds.Superposition(srcs)
		return b, bounds.KindSuperposition, ok
	case bounds.KindBusyPeriod:
		b, ok := bounds.BusyPeriod(ts)
		// The busy period is an inclusive horizon: violations lie at
		// I <= L, so the exclusive bound is L+1.
		return b + 1, bounds.KindBusyPeriod, ok
	case bounds.KindHyperperiod:
		h, ok := bounds.Hyperperiod(ts)
		return h + ts.MaxDeadline() + 1, bounds.KindHyperperiod, ok
	default:
		return 0, bounds.KindNone, false
	}
}

// ProcessorDemand applies the exact processor demand test of Baruah et al.
// (Definition 3): the set is feasible iff dbf(I, Γ) <= I for every absolute
// deadline I below the feasibility bound. Iterations counts the distinct
// test intervals checked.
func ProcessorDemand(ts model.TaskSet, opt Options) Result {
	opt, borrowed := opt.acquire()
	defer release(borrowed)
	if taskUtilCmpOneScratch(ts, opt.Scratch) > 0 {
		return Result{Verdict: Infeasible, Iterations: 1}
	}
	srcs := opt.Scratch.Sources(ts)
	bound, kind, ok := taskBound(ts, srcs, opt)
	if !ok {
		return Result{Verdict: Undecided}
	}
	r := processorDemand(srcs, bound, opt)
	r.Bound, r.BoundKind = bound, kind
	return r
}

// ProcessorDemandSources runs the processor demand test over generic
// demand sources (e.g. event streams). It decides sets with U < 1, whose
// horizon comes from the George/superposition bound, and rejects U > 1.
// For U == 1 the result is Undecided: generic sources carry no task
// structure, so no finite hyperperiod horizon can be derived and neither
// linear bound exists — use DynamicErrorSources with an explicit stopAt
// horizon when the enclosing model can supply one.
func ProcessorDemandSources(srcs []demand.Source, opt Options) Result {
	opt, borrowed := opt.acquire()
	defer release(borrowed)
	switch utilCmpOneScratch(srcs, opt.Scratch) {
	case 1:
		return Result{Verdict: Infeasible, Iterations: 1}
	case 0:
		// No sound finite horizon exists for fully utilized generic
		// sources; report Undecided instead of running an unbounded walk.
		return Result{Verdict: Undecided}
	}
	bound, kind, ok := sourceBound(srcs, opt.Scratch)
	if !ok {
		return Result{Verdict: Undecided}
	}
	r := processorDemand(srcs, bound, opt)
	r.Bound, r.BoundKind = bound, kind
	return r
}

// processorDemand checks dbf(I) <= I for every distinct absolute deadline
// I < bound, walking deadlines in ascending order through the scratch
// heap. The caller must have attached a Scratch to opt.
func processorDemand(srcs []demand.Source, bound int64, opt Options) Result {
	if opt.Blocking == nil && opt.MaxIterations == 0 {
		if c, sep, ok := opt.Scratch.UniformShapes(srcs); ok {
			return processorDemandUniform(srcs, c, sep, bound, opt.Scratch)
		}
	}
	tl := opt.Scratch.TestList(len(srcs))
	for i, s := range srcs {
		if d := s.JobDeadline(1); d < bound {
			tl.Add(d, i)
		}
	}
	var dem, iterations int64
	for !tl.Empty() {
		I := tl.Peek().I
		// Merge every job whose deadline is exactly I: they form one test
		// interval.
		for {
			e := tl.Peek()
			dem += srcs[e.Src].WCET()
			if nd := srcs[e.Src].NextDeadline(I); nd < bound {
				tl.Replace(nd, e.Src)
			} else {
				tl.Next()
			}
			if tl.Empty() || tl.Peek().I != I {
				break
			}
		}
		iterations++
		if opt.capped(iterations) {
			return Result{Verdict: Undecided, Iterations: iterations}
		}
		if dem > opt.capacityAt(I) {
			return Result{Verdict: Infeasible, Iterations: iterations, FailureInterval: I}
		}
	}
	return Result{Verdict: Feasible, Iterations: iterations}
}

// processorDemandUniform is the demand walk specialized to uniformly
// repeating sources with no blocking and no iteration cap: per-source
// WCET and deadline separation live in flat arrays and the next test
// interval comes from a loser tree, whose replace-min costs one
// comparison per level instead of the heap's four-child sift.
//
// When the source just advanced wins the tournament again it is the sole
// owner of every interval up to the runner-up entry, and the run drains
// in one batch. The batch verifies only its first interval, which is
// sound because C <= Sep (guaranteed by U <= 1) makes the slack
// I - dbf(I) non-decreasing along the run; iterations still counts every
// interval, so results are identical to the generic walk. Detecting runs
// this way keeps the runner-up probe off the common path where sources
// interleave and runs never form.
func processorDemandUniform(srcs []demand.Source, c, sep []int64, bound int64, sc *demand.Scratch) Result {
	lt := sc.MergeTree(len(srcs))
	for i, s := range srcs {
		if d := s.JobDeadline(1); d < bound {
			lt.Set(i, d)
		}
	}
	lt.Build()
	var dem, iterations int64
	I, src := lt.Min()
	for I != demand.MaxInterval {
		cur := I
		last := src
		// Merge every job whose deadline is exactly cur: one test interval.
		for {
			dem += c[src]
			last = src
			nd := int64(demand.MaxInterval)
			if v, ok := numeric.AddChecked(I, sep[src]); ok && v < bound {
				nd = v
			}
			lt.ReplaceMin(nd)
			I, src = lt.Min()
			if I != cur {
				break
			}
		}
		iterations++
		if dem > cur {
			return Result{Verdict: Infeasible, Iterations: iterations, FailureInterval: cur}
		}
		if src != last || I == demand.MaxInterval || c[src] > sep[src] {
			continue
		}
		// The advanced source won again: sole owner of every interval in
		// [I, limit) — batch-drain the run.
		limit := min(lt.SecondMin(), bound)
		if limit <= I {
			continue
		}
		n := (limit-1-I)/sep[src] + 1
		dem += c[src]
		iterations++
		if dem > I {
			return Result{Verdict: Infeasible, Iterations: iterations, FailureInterval: I}
		}
		dem += (n - 1) * c[src]
		iterations += n - 1
		lastI := I + (n-1)*sep[src]
		nd := int64(demand.MaxInterval)
		if v, ok := numeric.AddChecked(lastI, sep[src]); ok && v < bound {
			nd = v
		}
		lt.ReplaceMin(nd)
		I, src = lt.Min()
	}
	return Result{Verdict: Feasible, Iterations: iterations}
}
