package core

import (
	"repro/internal/bounds"
	"repro/internal/demand"
	"repro/internal/model"
)

// utilCmpOne compares the total utilization of the sources with 1.
func utilCmpOne(srcs []demand.Source) int {
	return demand.Utilization(srcs).Cmp(ratOne)
}

// sourceBound returns the smallest applicable feasibility bound over plain
// sources (George or superposition; Baruah and hyperperiod need the task
// structure). Requires U < 1.
func sourceBound(srcs []demand.Source) (int64, bounds.Kind, bool) {
	bg, okG := bounds.George(srcs)
	bs, okS := bounds.Superposition(srcs)
	switch {
	case okG && okS:
		if bs <= bg {
			return bs, bounds.KindSuperposition, true
		}
		return bg, bounds.KindGeorge, true
	case okG:
		return bg, bounds.KindGeorge, true
	case okS:
		return bs, bounds.KindSuperposition, true
	default:
		return 0, bounds.KindNone, false
	}
}

// taskBound returns the feasibility bound for a task set honoring an
// explicit Options.Bound selection.
func taskBound(ts model.TaskSet, opt Options) (int64, bounds.Kind, bool) {
	switch opt.Bound {
	case "", bounds.KindNone:
		return bounds.Best(ts)
	case bounds.KindBaruah:
		b, ok := bounds.Baruah(ts)
		return b, bounds.KindBaruah, ok
	case bounds.KindGeorge:
		b, ok := bounds.GeorgeTasks(ts)
		return b, bounds.KindGeorge, ok
	case bounds.KindSuperposition:
		b, ok := bounds.SuperpositionTasks(ts)
		return b, bounds.KindSuperposition, ok
	case bounds.KindBusyPeriod:
		b, ok := bounds.BusyPeriod(ts)
		// The busy period is an inclusive horizon: violations lie at
		// I <= L, so the exclusive bound is L+1.
		return b + 1, bounds.KindBusyPeriod, ok
	case bounds.KindHyperperiod:
		h, ok := bounds.Hyperperiod(ts)
		return h + ts.MaxDeadline() + 1, bounds.KindHyperperiod, ok
	default:
		return 0, bounds.KindNone, false
	}
}

// ProcessorDemand applies the exact processor demand test of Baruah et al.
// (Definition 3): the set is feasible iff dbf(I, Γ) <= I for every absolute
// deadline I below the feasibility bound. Iterations counts the distinct
// test intervals checked.
func ProcessorDemand(ts model.TaskSet, opt Options) Result {
	if ts.OverUtilized() {
		return Result{Verdict: Infeasible, Iterations: 1}
	}
	bound, kind, ok := taskBound(ts, opt)
	if !ok {
		return Result{Verdict: Undecided}
	}
	r := processorDemand(demand.FromTasks(ts), bound, opt)
	r.Bound, r.BoundKind = bound, kind
	return r
}

// ProcessorDemandSources runs the processor demand test over generic
// demand sources (e.g. event streams). Requires U <= 1; for U == 1 pass a
// sound stopAt horizon via opt.MaxIterations-style capping is not possible,
// so the bound must come from George/superposition (U < 1) or the result is
// Undecided.
func ProcessorDemandSources(srcs []demand.Source, opt Options) Result {
	if utilCmpOne(srcs) > 0 {
		return Result{Verdict: Infeasible, Iterations: 1}
	}
	bound, kind, ok := sourceBound(srcs)
	if !ok {
		return Result{Verdict: Undecided}
	}
	r := processorDemand(srcs, bound, opt)
	r.Bound, r.BoundKind = bound, kind
	return r
}

// processorDemand checks dbf(I) <= I for every distinct absolute deadline
// I < bound, walking deadlines in ascending order through a heap.
func processorDemand(srcs []demand.Source, bound int64, opt Options) Result {
	tl := demand.NewTestList(len(srcs))
	for i, s := range srcs {
		if d := s.JobDeadline(1); d < bound {
			tl.Add(d, i)
		}
	}
	var dem, iterations int64
	for !tl.Empty() {
		I := tl.Peek().I
		// Merge every job whose deadline is exactly I: they form one test
		// interval.
		for !tl.Empty() && tl.Peek().I == I {
			e := tl.Next()
			dem += srcs[e.Src].WCET()
			if nd := srcs[e.Src].NextDeadline(I); nd < bound {
				tl.Add(nd, e.Src)
			}
		}
		iterations++
		if opt.capped(iterations) {
			return Result{Verdict: Undecided, Iterations: iterations}
		}
		if dem > opt.capacityAt(I) {
			return Result{Verdict: Infeasible, Iterations: iterations, FailureInterval: I}
		}
	}
	return Result{Verdict: Feasible, Iterations: iterations}
}
