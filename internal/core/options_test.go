package core

import (
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/demand"
	"repro/internal/model"
)

// deviRejectedFeasible is a feasible set Devi cannot accept (tight-deadline
// heavy task), used to exercise the refinement paths.
func deviRejectedFeasible() model.TaskSet {
	return model.TaskSet{
		{WCET: 1, Deadline: 4, Period: 4},
		{WCET: 2, Deadline: 10, Period: 10},
		{WCET: 3, Deadline: 20, Period: 20},
		{WCET: 2, Deadline: 25, Period: 25},
		{WCET: 6, Deadline: 50, Period: 50},
		{WCET: 2, Deadline: 80, Period: 80},
		{WCET: 6, Deadline: 100, Period: 100},
		{WCET: 4, Deadline: 200, Period: 200},
		{WCET: 5, Deadline: 250, Period: 250},
		{WCET: 6, Deadline: 300, Period: 300},
		{WCET: 12, Deadline: 280, Period: 2800},
		{WCET: 16, Deadline: 420, Period: 4200},
	}
}

func TestDeviRejectedFeasibleFixture(t *testing.T) {
	ts := deviRejectedFeasible()
	if r := Devi(ts); r.Verdict == Feasible {
		t.Fatalf("fixture accepted by Devi")
	}
	if r := ProcessorDemand(ts, Options{}); r.Verdict != Feasible {
		t.Fatalf("fixture not feasible: %v", r.Verdict)
	}
}

func TestDynamicMaxLevelCap(t *testing.T) {
	ts := deviRejectedFeasible()
	// Uncapped: exact, feasible, level must have risen above 1.
	r := DynamicError(ts, Options{})
	if r.Verdict != Feasible || r.MaxLevel <= 1 {
		t.Fatalf("uncapped: %v level %d", r.Verdict, r.MaxLevel)
	}
	// Capped at level 1 the test degenerates to SuperPos(1) = Devi and
	// must refuse the set rather than claim infeasibility.
	r = DynamicError(ts, Options{MaxLevel: 1})
	if r.Verdict != NotAccepted {
		t.Fatalf("capped at 1: %v, want not-accepted", r.Verdict)
	}
	// A generous cap is never reached: still exact.
	r = DynamicError(ts, Options{MaxLevel: 1 << 30})
	if r.Verdict != Feasible {
		t.Fatalf("generous cap: %v", r.Verdict)
	}
}

func TestDynamicCapNeverFlipsVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for range 2000 {
		ts := randomSmallSet(rng)
		exact := ProcessorDemand(ts, Options{})
		capped := DynamicError(ts, Options{MaxLevel: 2})
		switch capped.Verdict {
		case Feasible:
			if exact.Verdict != Feasible {
				t.Fatalf("capped dynamic accepted infeasible set %v", ts)
			}
		case Infeasible:
			if exact.Verdict != Infeasible {
				t.Fatalf("capped dynamic rejected feasible set %v", ts)
			}
		}
	}
}

func TestMaxIterationsYieldsUndecided(t *testing.T) {
	ts := deviRejectedFeasible()
	for name, r := range map[string]Result{
		"pd":      ProcessorDemand(ts, Options{MaxIterations: 2}),
		"qpa":     QPA(ts, Options{MaxIterations: 1}),
		"dynamic": DynamicError(ts, Options{MaxIterations: 2}),
		"all":     AllApprox(ts, Options{MaxIterations: 2}),
	} {
		if r.Verdict != Undecided {
			t.Errorf("%s: %v, want undecided", name, r.Verdict)
		}
	}
}

func TestOverUtilizedShortCircuit(t *testing.T) {
	ts := model.TaskSet{
		{WCET: 2, Deadline: 3, Period: 3},
		{WCET: 2, Deadline: 4, Period: 4},
	}
	for name, r := range map[string]Result{
		"liu":     LiuLayland(ts),
		"devi":    Devi(ts),
		"sp":      SuperPos(ts, 3, Options{}),
		"pd":      ProcessorDemand(ts, Options{}),
		"qpa":     QPA(ts, Options{}),
		"dynamic": DynamicError(ts, Options{}),
		"all":     AllApprox(ts, Options{}),
	} {
		if r.Verdict != Infeasible {
			t.Errorf("%s: %v, want infeasible for U>1", name, r.Verdict)
		}
		if r.Iterations > 1 {
			t.Errorf("%s: %d iterations for a U>1 set", name, r.Iterations)
		}
	}
}

func TestFullUtilizationImplicitDeadlines(t *testing.T) {
	// U == 1 with D == T: feasible, and the exact tests must terminate via
	// the hyperperiod horizon.
	ts := model.TaskSet{
		{WCET: 1, Deadline: 2, Period: 2},
		{WCET: 2, Deadline: 6, Period: 6},
		{WCET: 1, Deadline: 6, Period: 6},
	}
	if !ts.FullyUtilized() {
		t.Fatal("fixture not fully utilized")
	}
	for name, r := range map[string]Result{
		"pd":      ProcessorDemand(ts, Options{}),
		"qpa":     QPA(ts, Options{}),
		"dynamic": DynamicError(ts, Options{}),
		"all":     AllApprox(ts, Options{}),
	} {
		if r.Verdict != Feasible {
			t.Errorf("%s: %v, want feasible", name, r.Verdict)
		}
	}
}

func TestFullUtilizationConstrainedInfeasible(t *testing.T) {
	// U == 1 with one tightened deadline: infeasible, must be detected.
	ts := model.TaskSet{
		{WCET: 1, Deadline: 1, Period: 2},
		{WCET: 3, Deadline: 5, Period: 6},
	}
	if !ts.FullyUtilized() {
		t.Fatal("fixture not fully utilized")
	}
	for name, r := range map[string]Result{
		"pd":      ProcessorDemand(ts, Options{}),
		"qpa":     QPA(ts, Options{}),
		"dynamic": DynamicError(ts, Options{}),
		"all":     AllApprox(ts, Options{}),
	} {
		if r.Verdict != Infeasible {
			t.Errorf("%s: %v, want infeasible", name, r.Verdict)
		}
	}
}

// TestFailureIntervalWitnesses checks that reported failure intervals are
// genuine demand violations.
func TestFailureIntervalWitnesses(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	seen := 0
	for range 4000 {
		ts := randomSmallSet(rng)
		if ts.OverUtilized() {
			continue
		}
		srcs := demand.FromTasks(ts)
		for name, r := range map[string]Result{
			"pd":      ProcessorDemand(ts, Options{}),
			"dynamic": DynamicError(ts, Options{}),
			"all":     AllApprox(ts, Options{}),
		} {
			if r.Verdict != Infeasible {
				continue
			}
			seen++
			if r.FailureInterval <= 0 {
				t.Fatalf("%s: infeasible without witness for %v", name, ts)
			}
			if demand.Dbf(srcs, r.FailureInterval) <= r.FailureInterval {
				t.Fatalf("%s: witness %d is not a violation for %v",
					name, r.FailureInterval, ts)
			}
		}
	}
	if seen < 100 {
		t.Fatalf("only %d infeasible witnesses checked", seen)
	}
}

// TestPDIterationsCountDistinctDeadlines pins the iteration metric of the
// processor demand test: one iteration per distinct absolute deadline below
// the bound it uses.
func TestPDIterationsCountDistinctDeadlines(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for range 1000 {
		ts := randomSmallSet(rng)
		if ts.OverUtilized() {
			continue
		}
		r := ProcessorDemand(ts, Options{})
		if r.Verdict != Feasible {
			continue // counting up to a failure is a prefix, skip
		}
		b, _, ok := bounds.Best(ts)
		if !ok {
			continue
		}
		distinct := map[int64]bool{}
		for _, s := range demand.FromTasks(ts) {
			for k := int64(1); ; k++ {
				d := s.JobDeadline(k)
				if d >= b {
					break
				}
				distinct[d] = true
			}
		}
		if r.Iterations != int64(len(distinct)) {
			t.Fatalf("pd iterations %d, distinct deadlines %d for %v (bound %d)",
				r.Iterations, len(distinct), ts, b)
		}
	}
}

// TestNewTestsMatchDeviCostWhenDeviAccepts pins the paper's claim that the
// new tests run entirely on level SuperPos(1) for Devi-accepted sets: one
// checked interval per task, no revisions.
func TestNewTestsMatchDeviCostWhenDeviAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	count := 0
	for range 4000 {
		ts := randomSmallSet(rng)
		if Devi(ts).Verdict != Feasible {
			continue
		}
		count++
		n := int64(len(ts))
		dyn := DynamicError(ts, Options{})
		all := AllApprox(ts, Options{})
		if dyn.Iterations != n || dyn.Revisions != 0 {
			t.Fatalf("dynamic cost %d/%d revisions on Devi-accepted %v",
				dyn.Iterations, dyn.Revisions, ts)
		}
		if all.Iterations != n || all.Revisions != 0 {
			t.Fatalf("allapprox cost %d/%d revisions on Devi-accepted %v",
				all.Iterations, all.Revisions, ts)
		}
	}
	if count < 500 {
		t.Fatalf("only %d Devi-accepted sets", count)
	}
}

func TestVerdictStrings(t *testing.T) {
	cases := map[Verdict]string{
		Feasible:    "feasible",
		Infeasible:  "infeasible",
		NotAccepted: "not-accepted",
		Undecided:   "undecided",
		Verdict(42): "verdict(42)",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", v, got, want)
		}
	}
	if !Feasible.Definite() || !Infeasible.Definite() {
		t.Error("feasible/infeasible must be definite")
	}
	if NotAccepted.Definite() || Undecided.Definite() {
		t.Error("not-accepted/undecided must not be definite")
	}
}

func TestSingleTaskEdgeCases(t *testing.T) {
	// C == D == T: exactly schedulable.
	ts := model.TaskSet{{WCET: 5, Deadline: 5, Period: 5}}
	for name, r := range map[string]Result{
		"liu": LiuLayland(ts), "devi": Devi(ts),
		"pd": ProcessorDemand(ts, Options{}), "qpa": QPA(ts, Options{}),
		"dynamic": DynamicError(ts, Options{}), "all": AllApprox(ts, Options{}),
	} {
		if r.Verdict != Feasible {
			t.Errorf("%s on C=D=T: %v", name, r.Verdict)
		}
	}
	// D > T (unconstrained): feasible iff U <= 1.
	ts = model.TaskSet{{WCET: 4, Deadline: 9, Period: 5}}
	for name, r := range map[string]Result{
		"pd": ProcessorDemand(ts, Options{}), "dynamic": DynamicError(ts, Options{}),
		"all": AllApprox(ts, Options{}), "liu": LiuLayland(ts),
	} {
		if r.Verdict != Feasible {
			t.Errorf("%s on D>T: %v", name, r.Verdict)
		}
	}
}

func TestExplicitBoundSelection(t *testing.T) {
	ts := deviRejectedFeasible()
	for _, kind := range []bounds.Kind{
		bounds.KindBaruah, bounds.KindGeorge, bounds.KindSuperposition,
		bounds.KindBusyPeriod, bounds.KindHyperperiod,
	} {
		r := ProcessorDemand(ts, Options{Bound: kind})
		if r.Verdict == Undecided {
			continue // bound not applicable to this set is acceptable
		}
		if r.Verdict != Feasible {
			t.Errorf("bound %s: verdict %v", kind, r.Verdict)
		}
		if r.BoundKind != kind {
			t.Errorf("bound %s: reported kind %s", kind, r.BoundKind)
		}
	}
	if r := ProcessorDemand(ts, Options{Bound: "bogus"}); r.Verdict != Undecided {
		t.Errorf("bogus bound: %v, want undecided", r.Verdict)
	}
}
