package core

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/taskgen"
)

// TestAgreementOnRealisticSets runs the exactness agreement on larger,
// realistically parameterized sets (up to 40 tasks, periods to 100k,
// utilizations to 99%), where brute force is impossible but the four exact
// tests must still agree with each other.
func TestAgreementOnRealisticSets(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for i := range 300 {
		n := 5 + rng.Intn(36)
		u := 0.85 + rng.Float64()*0.14
		gap := rng.Float64() * 0.4
		ts, err := taskgen.New(taskgen.Config{
			N: n, Utilization: u,
			PeriodMin: 100, PeriodMax: 100000,
			LogUniformPeriods: i%2 == 0,
			GapMean:           gap / 2,
		}, rng)
		if err != nil || ts.OverUtilized() {
			continue
		}
		pd := ProcessorDemand(ts, Options{})
		if pd.Verdict == Undecided {
			continue
		}
		for name, r := range map[string]Result{
			"qpa":      QPA(ts, Options{}),
			"dynamic":  DynamicError(ts, Options{Arithmetic: ArithFloat64}),
			"all":      AllApprox(ts, Options{Arithmetic: ArithFloat64}),
			"allExact": AllApprox(ts, Options{}),
		} {
			if r.Verdict != pd.Verdict {
				t.Fatalf("case %d: %s=%v pd=%v (n=%d u=%.3f)\n%v",
					i, name, r.Verdict, pd.Verdict, n, u, ts)
			}
		}
	}
}

// TestEffortAdvantageOnRealisticSets pins the paper's performance claim in
// the aggregate on realistic workloads: summed over high-utilization sets,
// the new tests check far fewer intervals than the processor demand test.
func TestEffortAdvantageOnRealisticSets(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	var pdSum, dynSum, allSum int64
	sets := 0
	for sets < 120 {
		n := 5 + rng.Intn(46)
		ts, err := taskgen.New(taskgen.Config{
			N: n, Utilization: 0.92 + rng.Float64()*0.07,
			PeriodMin: 1000, PeriodMax: 1000000,
			LogUniformPeriods: true,
			GapMean:           0.2,
		}, rng)
		if err != nil || ts.OverUtilized() {
			continue
		}
		sets++
		opt := Options{Arithmetic: ArithFloat64}
		pdSum += ProcessorDemand(ts, opt).Iterations
		dynSum += DynamicError(ts, opt).Iterations
		allSum += AllApprox(ts, opt).Iterations
	}
	if pdSum < 5*dynSum || pdSum < 5*allSum {
		t.Errorf("aggregate effort: pd=%d dyn=%d all=%d — advantage below 5x",
			pdSum, dynSum, allSum)
	}
	t.Logf("aggregate over %d sets: pd=%d dyn=%d all=%d (ratios %.1fx / %.1fx)",
		sets, pdSum, dynSum, allSum,
		float64(pdSum)/float64(dynSum), float64(pdSum)/float64(allSum))
}

// TestSourcesAndTaskSetAPIsAgree pins that the []Source entry points and
// the TaskSet wrappers count identically.
func TestSourcesAndTaskSetAPIsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for range 500 {
		ts := randomSmallSet(rng)
		if ts.Utilization().Cmp(big.NewRat(1, 1)) >= 0 {
			continue
		}
		srcs := demand.FromTasks(ts)
		a := AllApprox(ts, Options{})
		b := AllApproxSources(srcs, 0, Options{})
		if a.Verdict != b.Verdict || a.Iterations != b.Iterations || a.Revisions != b.Revisions {
			t.Fatalf("allapprox APIs disagree: %+v vs %+v for %v", a, b, ts)
		}
		d1 := DynamicError(ts, Options{})
		d2 := DynamicErrorSources(srcs, 0, Options{})
		if d1.Verdict != d2.Verdict || d1.Iterations != d2.Iterations {
			t.Fatalf("dynamic APIs disagree: %+v vs %+v for %v", d1, d2, ts)
		}
	}
}
