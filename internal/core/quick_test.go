package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// setFromSeed derives a random small task set from a quick.Check seed.
func setFromSeed(seed int64) model.TaskSet {
	return randomSmallSet(rand.New(rand.NewSource(seed)))
}

// TestQuickExactTestsAgree is the quick.Check form of the central
// invariant: all exact tests return the same verdict on any input.
func TestQuickExactTestsAgree(t *testing.T) {
	f := func(seed int64) bool {
		ts := setFromSeed(seed)
		pd := ProcessorDemand(ts, Options{}).Verdict
		return QPA(ts, Options{}).Verdict == pd &&
			DynamicError(ts, Options{}).Verdict == pd &&
			AllApprox(ts, Options{}).Verdict == pd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickFloatMatchesExact: the float64 fast path never changes a
// verdict.
func TestQuickFloatMatchesExact(t *testing.T) {
	f := func(seed int64) bool {
		ts := setFromSeed(seed)
		exact := AllApprox(ts, Options{}).Verdict
		fast := AllApprox(ts, Options{Arithmetic: ArithFloat64}).Verdict
		if exact != fast {
			return false
		}
		exactD := DynamicError(ts, Options{}).Verdict
		fastD := DynamicError(ts, Options{Arithmetic: ArithFloat64}).Verdict
		return exactD == fastD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickSuperPosMonotone: raising the level never turns acceptance into
// rejection.
func TestQuickSuperPosMonotone(t *testing.T) {
	f := func(seed int64, rawLevel uint8) bool {
		ts := setFromSeed(seed)
		level := int64(rawLevel%6) + 1
		lo := SuperPos(ts, level, Options{}).Verdict
		hi := SuperPos(ts, level+1, Options{}).Verdict
		if lo == Feasible && hi != Feasible {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickIterationsPositive: every definite verdict reports at least one
// checked interval (the effort metric never degenerates).
func TestQuickIterationsPositive(t *testing.T) {
	f := func(seed int64) bool {
		ts := setFromSeed(seed)
		for _, r := range []Result{
			ProcessorDemand(ts, Options{}),
			DynamicError(ts, Options{}),
			AllApprox(ts, Options{}),
		} {
			if r.Verdict.Definite() && r.Iterations < 0 {
				return false
			}
			if r.Verdict == Infeasible && r.Iterations == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// FuzzVerdictAgreement feeds arbitrary task parameters to the exact tests
// and requires agreement; `go test` runs the seed corpus, `go test -fuzz`
// explores further.
func FuzzVerdictAgreement(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(5), int64(8), int64(13))
	f.Add(int64(10), int64(10), int64(10), int64(1), int64(1), int64(1))
	f.Add(int64(3), int64(4), int64(10), int64(7), int64(8), int64(9))
	f.Fuzz(func(t *testing.T, c1, d1, t1, c2, d2, t2 int64) {
		norm := func(c, d, tt int64) (model.Task, bool) {
			c = c%50 + 1
			tt = tt%60 + 1
			d = d%60 + 1
			if c < 1 || tt < 1 || d < c {
				return model.Task{}, false
			}
			return model.Task{WCET: c, Deadline: d, Period: tt}, true
		}
		ta, okA := norm(c1, d1, t1)
		tb, okB := norm(c2, d2, t2)
		if !okA || !okB {
			t.Skip()
		}
		ts := model.TaskSet{ta, tb}
		pd := ProcessorDemand(ts, Options{}).Verdict
		for name, v := range map[string]Verdict{
			"qpa":     QPA(ts, Options{}).Verdict,
			"dynamic": DynamicError(ts, Options{}).Verdict,
			"all":     AllApprox(ts, Options{}).Verdict,
		} {
			if v != pd {
				t.Fatalf("%s=%v pd=%v for %v", name, v, pd, ts)
			}
		}
	})
}
