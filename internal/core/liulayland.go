package core

import (
	"repro/internal/model"
)

// LiuLayland applies the classic utilization-bound test of Liu & Layland
// (Section 3.1 of the paper): for deadlines no smaller than periods, the
// set is feasible under EDF if and only if U <= 1. For sets with some
// D < T the test cannot accept (NotAccepted), although U > 1 still proves
// infeasibility.
func LiuLayland(ts model.TaskSet) Result {
	if taskUtilCmpOne(ts) > 0 {
		return Result{Verdict: Infeasible, Iterations: 1}
	}
	for _, t := range ts {
		if t.Deadline < t.Period {
			return Result{Verdict: NotAccepted, Iterations: 1}
		}
	}
	return Result{Verdict: Feasible, Iterations: 1}
}
