package core

import (
	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/numeric"
)

// DynamicError applies the paper's dynamic error test (Section 4.1,
// Figure 5), an exact feasibility test that starts at approximation level
// SuperPos(1) and, whenever the approximated demand exceeds a test
// interval, doubles the level and withdraws the approximation of the tasks
// that the new level no longer allows to approximate (reusing all values
// already computed). Task sets accepted by Devi's test run entirely on
// level 1 with the same cost; only sets the sufficient tests cannot decide
// pay for higher levels.
//
// With Options.MaxLevel set the test becomes the bounded variant the paper
// describes: a strictly limited worst-case run time at the price of a
// merely sufficient verdict (NotAccepted when the cap prevents refinement).
func DynamicError(ts model.TaskSet, opt Options) Result {
	opt, borrowed := opt.acquire()
	defer release(borrowed)
	if taskUtilCmpOne(ts) > 0 {
		return Result{Verdict: Infeasible, Iterations: 1, MaxLevel: 1}
	}
	stopAt, kind, ok := fullUtilizationHorizon(ts)
	if !ok {
		return Result{Verdict: Undecided}
	}
	r := DynamicErrorSources(opt.Scratch.Sources(ts), stopAt, opt)
	if stopAt > 0 {
		r.Bound, r.BoundKind = stopAt, kind
	}
	return r
}

// DynamicErrorSources runs the dynamic error test over generic demand
// sources. stopAt, when positive, is an exclusive sound horizon (needed
// only for U == 1; pass 0 otherwise).
func DynamicErrorSources(srcs []demand.Source, stopAt int64, opt Options) Result {
	opt, borrowed := opt.acquire()
	defer release(borrowed)
	switch utilCmpOne(srcs) {
	case 1:
		return Result{Verdict: Infeasible, Iterations: 1, MaxLevel: 1}
	case 0:
		if stopAt == 0 && opt.MaxIterations == 0 {
			// See AllApproxSources: no implicit bound at full utilization.
			return Result{Verdict: Undecided}
		}
	}
	switch opt.Arithmetic {
	case ArithFloat64:
		return dynamicError(numeric.F64(0), srcs, stopAt, opt)
	case ArithBigRat:
		return dynamicError(numeric.Rat{}, srcs, stopAt, opt)
	default:
		return dynamicError(numeric.Fast{}, srcs, stopAt, opt)
	}
}

func dynamicError[S numeric.Scalar[S]](zero S, srcs []demand.Source, stopAt int64, opt Options) Result {
	tl := opt.Scratch.TestList(len(srcs))
	jobs := opt.Scratch.Jobs(len(srcs))
	for i, s := range srcs {
		tl.Add(s.JobDeadline(1), i)
	}
	approx := newApproxTracker(opt.Scratch, len(srcs))
	level := int64(1)
	dbf, uready := zero, zero
	var iold, iterations, revisions int64
	for !tl.Empty() {
		e := tl.Next()
		I := e.I
		if stopAt > 0 && I >= stopAt {
			return Result{Verdict: Feasible, Iterations: iterations, Revisions: revisions, MaxLevel: level}
		}
		iterations++
		if opt.capped(iterations) {
			return Result{Verdict: Undecided, Iterations: iterations, Revisions: revisions, MaxLevel: level}
		}
		s := srcs[e.Src]
		jobs[e.Src]++
		dbf = dbf.AddInt(s.WCET()).AddScaled(uready, I-iold)
		capacity := opt.capacityAt(I)
		for dbf.CmpInt(capacity) > 0 {
			if approx.empty() {
				exact := accountedDemand(srcs, jobs)
				if exact > capacity {
					return Result{Verdict: Infeasible, Iterations: iterations,
						Revisions: revisions, FailureInterval: I, MaxLevel: level}
				}
				dbf = zero.AddInt(exact) // float-mode drift: re-synchronize
				break
			}
			// Raise the level (doubling, as the paper proposes) until at
			// least one approximated source's test border JobDeadline(level)
			// moves beyond I, so withdrawing its approximation is possible.
			raised := false
			for !raised {
				next := level * 2
				if next <= level {
					next = numeric.MaxInt64 / 2
				}
				if opt.MaxLevel > 0 && next > opt.MaxLevel {
					next = opt.MaxLevel
				}
				if next <= level {
					break // cap reached, cannot raise further
				}
				level = next
				for _, j := range approx.order {
					if srcs[j].JobDeadline(level) > I {
						raised = true
						break
					}
				}
			}
			if !raised {
				// Level capped with nothing to revise: sufficient mode.
				return Result{Verdict: NotAccepted, Iterations: iterations,
					Revisions: revisions, FailureInterval: I, MaxLevel: level}
			}
			// Γrev: withdraw every approximated source whose border at the
			// new level lies beyond I (it would not be approximated yet).
			for pos := 0; pos < len(approx.order); {
				j := approx.order[pos]
				sj := srcs[j]
				if sj.JobDeadline(level) <= I {
					pos++
					continue
				}
				approx.removeAt(pos)
				num, den := sj.UtilRat()
				uready = uready.SubRat(num, den)
				an, ad := sj.ApproxError(I)
				dbf = dbf.SubRat(an, ad)
				jobs[j] = sj.JobsUpTo(I)
				tl.Add(sj.NextDeadline(I), j)
				revisions++
			}
		}
		// Past its border the source is approximated, otherwise its next
		// job deadline becomes a test interval (Iact + Ti in the paper).
		if I < srcs[e.Src].JobDeadline(level) {
			tl.Add(srcs[e.Src].NextDeadline(I), e.Src)
		} else if num, den := s.UtilRat(); num > 0 {
			uready = uready.AddRat(num, den)
			approx.add(e.Src)
		}
		iold = I
	}
	return Result{Verdict: Feasible, Iterations: iterations, Revisions: revisions, MaxLevel: level}
}
