package core

import (
	"repro/internal/model"
	"repro/internal/numeric"
)

// Devi applies the sufficient test of Devi (Definition 1): with tasks
// ordered by non-decreasing relative deadline, the set is accepted if
// U <= 1 and for every prefix k
//
//	Σ_{i<=k} Ci/Ti  +  (1/Dk)·Σ_{i<=k} ((Ti - min(Ti,Di))/Ti)·Ci  <=  1.
//
// The test is evaluated in exact rational arithmetic (fast int64
// rationals with big.Rat fallback); the prefix condition is checked in
// the division-free form Σ Ci/Ti · Dk + Σ gap-terms <= Dk. Iterations
// counts the prefix conditions checked, one per task up to and including
// the first failing one, matching the iteration metric of the paper's
// Table 1.
func Devi(ts model.TaskSet) Result {
	if taskUtilCmpOne(ts) > 0 {
		return Result{Verdict: Infeasible, Iterations: 1}
	}
	sorted := ts.SortedByDeadline()
	var cumU numeric.Fast   // Σ Ci/Ti
	var cumGap numeric.Fast // Σ (Ti - min(Ti,Di))/Ti · Ci
	var iterations int64
	for _, t := range sorted {
		iterations++
		cumU = cumU.AddRat(t.WCET, t.Period)
		if gap := t.Period - min(t.Period, t.Deadline); gap > 0 {
			cumGap = cumGap.Add(numeric.NewFast(gap, t.Period).MulInt(t.WCET))
		}
		// cumU + cumGap/Dk <= 1  ⇔  cumU·Dk + cumGap <= Dk (Dk > 0).
		cond := cumU.MulInt(t.Deadline).Add(cumGap)
		if cond.CmpInt(t.Deadline) > 0 {
			return Result{
				Verdict:         NotAccepted,
				Iterations:      iterations,
				FailureInterval: t.Deadline,
			}
		}
	}
	return Result{Verdict: Feasible, Iterations: iterations}
}
