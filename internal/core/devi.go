package core

import (
	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/numeric"
)

// Devi applies the sufficient test of Devi (Definition 1): with tasks
// ordered by non-decreasing relative deadline, the set is accepted if
// U <= 1 and for every prefix k
//
//	Σ_{i<=k} Ci/Ti  +  (1/Dk)·Σ_{i<=k} ((Ti - min(Ti,Di))/Ti)·Ci  <=  1.
//
// The test is evaluated in exact rational arithmetic; the prefix
// condition is checked in the division-free form
// Σ Ci/Ti · Dk + Σ gap-terms <= Dk. Iterations counts the prefix
// conditions checked, one per task up to and including the first failing
// one, matching the iteration metric of the paper's Table 1.
func Devi(ts model.TaskSet) Result { return DeviOpt(ts, Options{}) }

// DeviOpt is Devi honoring Options: with a reused Scratch the test runs
// allocation-free — the deadline-sorted copy lives in a scratch buffer
// and the prefix accumulators in the chunk register bank (falling back
// to numeric.Fast when the denominator plan cannot cover the periods).
// Only the Scratch field influences the execution; the verdict is
// identical for any Options value.
func DeviOpt(ts model.TaskSet, opt Options) Result {
	opt, borrowed := opt.acquire()
	defer release(borrowed)
	if taskUtilCmpOneScratch(ts, opt.Scratch) > 0 {
		return Result{Verdict: Infeasible, Iterations: 1}
	}
	sorted := opt.Scratch.SortedByDeadline(ts)
	if opt.Scratch.ArithTasks(ts) != nil {
		return deviChunked(sorted, opt.Scratch)
	}
	return deviFast(sorted)
}

// deviFast evaluates the prefix conditions in numeric.Fast arithmetic.
func deviFast(sorted model.TaskSet) Result {
	var cumU numeric.Fast   // Σ Ci/Ti
	var cumGap numeric.Fast // Σ (Ti - min(Ti,Di))/Ti · Ci
	var iterations int64
	for _, t := range sorted {
		iterations++
		cumU = cumU.AddRat(t.WCET, t.Period)
		if gap := t.Period - min(t.Period, t.Deadline); gap > 0 {
			cumGap = cumGap.Add(numeric.NewFast(gap, t.Period).MulInt(t.WCET))
		}
		// cumU + cumGap/Dk <= 1  ⇔  cumU·Dk + cumGap <= Dk (Dk > 0).
		cond := cumU.MulInt(t.Deadline).Add(cumGap)
		if cond.CmpInt(t.Deadline) > 0 {
			return Result{
				Verdict:         NotAccepted,
				Iterations:      iterations,
				FailureInterval: t.Deadline,
			}
		}
	}
	return Result{Verdict: Feasible, Iterations: iterations}
}

// deviChunked evaluates the prefix conditions on the chunk registers.
// The caller guarantees the scratch plan covers the task periods.
func deviChunked(sorted model.TaskSet, sc *demand.Scratch) Result {
	cumU, cumGap, cond, tmp := sc.Reg(0), sc.Reg(1), sc.Reg(2), sc.Reg(3)
	var iterations int64
	for _, t := range sorted {
		iterations++
		cumU.AddRat(t.WCET, t.Period)
		if gap := t.Period - min(t.Period, t.Deadline); gap > 0 {
			if num, ok := numeric.MulChecked(gap, t.WCET); ok {
				cumGap.AddRat(num, t.Period)
			} else {
				tmp.SetZero()
				tmp.AddRat(gap, t.Period)
				tmp.MulInt(t.WCET)
				cumGap.Add(tmp)
			}
		}
		// cumU + cumGap/Dk <= 1  ⇔  cumU·Dk + cumGap <= Dk (Dk > 0).
		cond.CopyFrom(cumU)
		cond.MulInt(t.Deadline)
		cond.Add(cumGap)
		if cond.CmpInt(t.Deadline) > 0 {
			return Result{
				Verdict:         NotAccepted,
				Iterations:      iterations,
				FailureInterval: t.Deadline,
			}
		}
	}
	return Result{Verdict: Feasible, Iterations: iterations}
}
