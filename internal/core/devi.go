package core

import (
	"math/big"

	"repro/internal/model"
)

// Devi applies the sufficient test of Devi (Definition 1): with tasks
// ordered by non-decreasing relative deadline, the set is accepted if
// U <= 1 and for every prefix k
//
//	Σ_{i<=k} Ci/Ti  +  (1/Dk)·Σ_{i<=k} ((Ti - min(Ti,Di))/Ti)·Ci  <=  1.
//
// The test is evaluated in exact rational arithmetic. Iterations counts the
// prefix conditions checked, one per task up to and including the first
// failing one, matching the iteration metric of the paper's Table 1.
func Devi(ts model.TaskSet) Result {
	u := ts.Utilization()
	if u.Cmp(ratOne) > 0 {
		return Result{Verdict: Infeasible, Iterations: 1}
	}
	sorted := ts.SortedByDeadline()
	cumU := new(big.Rat)   // Σ Ci/Ti
	cumGap := new(big.Rat) // Σ (Ti - min(Ti,Di))/Ti · Ci
	cond := new(big.Rat)
	var iterations int64
	for _, t := range sorted {
		iterations++
		cumU.Add(cumU, big.NewRat(t.WCET, t.Period))
		if gap := t.Period - min(t.Period, t.Deadline); gap > 0 {
			term := big.NewRat(gap, t.Period)
			term.Mul(term, new(big.Rat).SetInt64(t.WCET))
			cumGap.Add(cumGap, term)
		}
		cond.Quo(cumGap, new(big.Rat).SetInt64(t.Deadline))
		cond.Add(cond, cumU)
		if cond.Cmp(ratOne) > 0 {
			return Result{
				Verdict:         NotAccepted,
				Iterations:      iterations,
				FailureInterval: t.Deadline,
			}
		}
	}
	return Result{Verdict: Feasible, Iterations: iterations}
}
