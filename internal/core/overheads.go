package core

import (
	"math/big"
	"slices"

	"repro/internal/bounds"
	"repro/internal/model"
)

// Overheads configures the practical extensions Section 3.5 of the paper
// adopts from Devi into the superposition framework: context-switch costs,
// priority-ceiling (SRP) blocking derived from the per-task critical
// sections, and self-suspension.
type Overheads struct {
	// ContextSwitch is the cost σ of one context switch. Every job is
	// charged 2σ (dispatch and resume), the standard sufficient
	// accounting.
	ContextSwitch int64
}

// InflateOverheads returns a copy of the set with each task's WCET
// increased by twice the context-switch cost plus its self-suspension
// time (self-suspension is treated as demand, the sufficient accounting of
// Devi's extension). The inflated WCET may exceed a deadline, in which
// case the tests will report infeasibility.
func InflateOverheads(ts model.TaskSet, ov Overheads) model.TaskSet {
	c := ts.Clone()
	for i := range c {
		c[i].WCET += 2*ov.ContextSwitch + c[i].SelfSuspension
		c[i].SelfSuspension = 0
	}
	return c
}

// SRPBlocking returns the blocking function of the stack resource policy /
// priority ceiling protocol: B(I) = max{CS_j : D_j > I} — a job due within
// I can be blocked at most once, by the longest critical section of a task
// with a later relative deadline. The function is non-negative and
// non-increasing, as Options.Blocking requires.
func SRPBlocking(ts model.TaskSet) func(int64) int64 {
	type step struct{ deadline, cs int64 }
	steps := make([]step, 0, len(ts))
	for _, t := range ts {
		if t.CriticalSection > 0 {
			steps = append(steps, step{t.Deadline, t.CriticalSection})
		}
	}
	if len(steps) == 0 {
		return nil
	}
	slices.SortFunc(steps, func(a, b step) int {
		switch {
		case a.deadline < b.deadline:
			return -1
		case a.deadline > b.deadline:
			return 1
		default:
			return 0
		}
	})
	// suffixMax[i] = max CS over steps[i:].
	suffixMax := make([]int64, len(steps)+1)
	for i := len(steps) - 1; i >= 0; i-- {
		suffixMax[i] = max(suffixMax[i+1], steps[i].cs)
	}
	return func(I int64) int64 {
		// First step with deadline > I.
		lo, hi := 0, len(steps)
		for lo < hi {
			mid := (lo + hi) / 2
			if steps[mid].deadline > I {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return suffixMax[lo]
	}
}

// maxCriticalSection returns the longest critical section of the set.
func maxCriticalSection(ts model.TaskSet) int64 {
	var m int64
	for _, t := range ts {
		m = max(m, t.CriticalSection)
	}
	return m
}

// prepareOverheads inflates the set and installs the SRP blocking function
// into the options.
func prepareOverheads(ts model.TaskSet, ov Overheads, opt Options) (model.TaskSet, Options) {
	inflated := InflateOverheads(ts, ov)
	if opt.Blocking == nil {
		opt.Blocking = SRPBlocking(inflated)
	}
	return inflated, opt
}

// AllApproxWithOverheads runs the all-approximated test with context-switch
// costs, self-suspension and SRP blocking folded in. Exact for the
// blocking-extended processor demand criterion dbf(I) <= I - B(I).
func AllApproxWithOverheads(ts model.TaskSet, ov Overheads, opt Options) Result {
	inflated, opt := prepareOverheads(ts, ov, opt)
	return AllApprox(inflated, opt)
}

// DynamicErrorWithOverheads runs the dynamic error test with overheads and
// SRP blocking folded in.
func DynamicErrorWithOverheads(ts model.TaskSet, ov Overheads, opt Options) Result {
	inflated, opt := prepareOverheads(ts, ov, opt)
	return DynamicError(inflated, opt)
}

// ProcessorDemandWithOverheads runs the processor demand test against the
// blocking-extended criterion dbf(I) <= I - B(I), using a feasibility
// bound widened by the maximal blocking (George's bound plus B_max).
func ProcessorDemandWithOverheads(ts model.TaskSet, ov Overheads, opt Options) Result {
	inflated, opt := prepareOverheads(ts, ov, opt)
	opt, borrowed := opt.acquire()
	defer release(borrowed)
	if inflated.OverUtilized() {
		return Result{Verdict: Infeasible, Iterations: 1}
	}
	srcs := opt.Scratch.Sources(inflated)
	bmax := maxCriticalSection(inflated)
	var bound int64
	var kind bounds.Kind
	if inflated.FullyUtilized() {
		b, k, ok := bounds.Best(inflated) // hyperperiod horizon; B(I)=0 beyond Dmax
		if !ok {
			return Result{Verdict: Undecided}
		}
		bound, kind = b, k
	} else {
		b, ok := bounds.GeorgeWithBlocking(srcs, bmax)
		if !ok {
			return Result{Verdict: Undecided}
		}
		bound, kind = b, bounds.KindGeorge
	}
	r := processorDemand(srcs, bound, opt)
	r.Bound, r.BoundKind = bound, kind
	return r
}

// DeviWithOverheads evaluates Devi's sufficient test with the blocking
// extension: for tasks ordered by non-decreasing deadline,
//
//	Σ_{i<=k} Ci/Ti + (Σ_{i<=k} ((Ti-min(Ti,Di))/Ti)·Ci + B(Dk)) / Dk <= 1
//
// where B is the SRP blocking function and WCETs include the context
// switch and self-suspension charges.
func DeviWithOverheads(ts model.TaskSet, ov Overheads) Result {
	inflated := InflateOverheads(ts, ov)
	if taskUtilCmpOne(inflated) > 0 {
		return Result{Verdict: Infeasible, Iterations: 1}
	}
	ratOne := big.NewRat(1, 1) // loop compare below stays on big.Rat
	blocking := SRPBlocking(inflated)
	sorted := inflated.SortedByDeadline()
	cumU := new(big.Rat)
	cumGap := new(big.Rat)
	cond := new(big.Rat)
	var iterations int64
	for _, t := range sorted {
		iterations++
		cumU.Add(cumU, big.NewRat(t.WCET, t.Period))
		if gap := t.Period - min(t.Period, t.Deadline); gap > 0 {
			term := big.NewRat(gap, t.Period)
			term.Mul(term, new(big.Rat).SetInt64(t.WCET))
			cumGap.Add(cumGap, term)
		}
		num := new(big.Rat).Set(cumGap)
		if blocking != nil {
			num.Add(num, new(big.Rat).SetInt64(blocking(t.Deadline)))
		}
		cond.Quo(num, new(big.Rat).SetInt64(t.Deadline))
		cond.Add(cond, cumU)
		if cond.Cmp(ratOne) > 0 {
			return Result{Verdict: NotAccepted, Iterations: iterations, FailureInterval: t.Deadline}
		}
	}
	return Result{Verdict: Feasible, Iterations: iterations}
}
