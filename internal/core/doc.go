// Package core implements the feasibility tests for preemptive uniprocessor
// EDF scheduling that the paper presents, improves on, or compares against:
//
//   - LiuLayland: the classic utilization bound for implicit deadlines [12].
//   - Devi: the sufficient test of Devi (Definition 1) [9].
//   - ProcessorDemand: the exact test of Baruah et al. (Definition 3) [3].
//   - SuperPos: the superposition approximation SuperPos(x) of Albers &
//     Slomka (Definitions 4-6, Lemma 1) [1].
//   - DynamicError: the paper's first new exact test (Section 4.1, Fig. 5).
//   - AllApprox: the paper's second new exact test (Section 4.2, Fig. 7).
//   - QPA: Quick Processor-demand Analysis (Zhang & Burns 2009), included
//     as a post-paper exact baseline for the ablation benchmarks.
//
// Every test returns a Result carrying the verdict and the number of
// checked test intervals ("iterations"), the metric the paper's evaluation
// uses. The approximated tests run either in exact rational arithmetic or
// in float64 (Options.Arithmetic); rejections are always re-confirmed in
// exact integer arithmetic, so Infeasible verdicts are never rounding
// artifacts.
//
// The iterative tests operate on demand.Source values, so they apply
// unchanged to sporadic task sets and to Gresser event streams
// (internal/eventstream), the extension Section 2 of the paper promises.
package core
