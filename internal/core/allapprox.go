package core

import (
	"repro/internal/bounds"
	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/numeric"
)

// AllApprox applies the paper's all-approximated test (Section 4.2,
// Figure 7), an exact feasibility test: every task is approximated
// immediately after its first job, and whenever the approximated demand
// exceeds a test interval, per-task approximations are revised one by one —
// replacing approximated by real cost and scheduling the task's next job
// deadline as a new test interval (Lemma 5) — until the test either
// succeeds or no approximation is left (then the exact demand exceeds the
// capacity and the set is infeasible).
//
// If the initial interval of each task is accepted without revisions the
// behaviour and cost equal Devi's test; the feasibility bound of Section
// 4.3 is implicit: the test list simply drains.
func AllApprox(ts model.TaskSet, opt Options) Result {
	opt, borrowed := opt.acquire()
	defer release(borrowed)
	if taskUtilCmpOneScratch(ts, opt.Scratch) > 0 {
		return Result{Verdict: Infeasible, Iterations: 1}
	}
	stopAt, kind, ok := fullUtilizationHorizon(ts)
	if !ok {
		return Result{Verdict: Undecided}
	}
	r := AllApproxSources(opt.Scratch.Sources(ts), stopAt, opt)
	if stopAt > 0 {
		r.Bound, r.BoundKind = stopAt, kind
	}
	return r
}

// fullUtilizationHorizon returns a sound stop horizon for a fully utilized
// set (U == 1), where the superposition bound is infinite: beyond
// hyperperiod + Dmax the demand pattern repeats with slope exactly 1.
// For U < 1 it returns 0 (no horizon needed). ok is false when U == 1 and
// the hyperperiod overflows.
func fullUtilizationHorizon(ts model.TaskSet) (int64, bounds.Kind, bool) {
	if taskUtilCmpOne(ts) != 0 {
		return 0, bounds.KindNone, true
	}
	b, kind, ok := bounds.Best(ts)
	if !ok {
		return 0, bounds.KindNone, false
	}
	return b, kind, true
}

// AllApproxSources runs the all-approximated test over generic demand
// sources. stopAt, when positive, is an exclusive sound horizon: reaching
// it concludes feasibility (needed only for U == 1; pass 0 otherwise).
func AllApproxSources(srcs []demand.Source, stopAt int64, opt Options) Result {
	opt, borrowed := opt.acquire()
	defer release(borrowed)
	switch utilCmpOneScratch(srcs, opt.Scratch) {
	case 1:
		return Result{Verdict: Infeasible, Iterations: 1}
	case 0:
		if stopAt == 0 && opt.MaxIterations == 0 {
			// Fully utilized source sets carry no implicit superposition
			// bound; without a horizon or cap the walk need not terminate.
			return Result{Verdict: Undecided}
		}
	}
	switch opt.Arithmetic {
	case ArithFloat64:
		return allApprox(numeric.F64(0), srcs, stopAt, opt)
	case ArithBigRat:
		return allApprox(numeric.Rat{}, srcs, stopAt, opt)
	default:
		if opt.Scratch.Arith(srcs) != nil {
			return allApproxChunked(srcs, stopAt, opt)
		}
		return allApprox(numeric.Fast{}, srcs, stopAt, opt)
	}
}

func allApprox[S numeric.Scalar[S]](zero S, srcs []demand.Source, stopAt int64, opt Options) Result {
	tl := opt.Scratch.TestList(len(srcs))
	jobs := opt.Scratch.Jobs(len(srcs))
	for i, s := range srcs {
		tl.Add(s.JobDeadline(1), i)
	}
	approx := newApproxTracker(opt.Scratch, len(srcs))
	dbf, uready := zero, zero
	var iold, iterations, revisions int64
	for !tl.Empty() {
		e := tl.Next()
		I := e.I
		if stopAt > 0 && I >= stopAt {
			return Result{Verdict: Feasible, Iterations: iterations, Revisions: revisions}
		}
		iterations++
		if opt.capped(iterations) {
			return Result{Verdict: Undecided, Iterations: iterations, Revisions: revisions}
		}
		s := srcs[e.Src]
		jobs[e.Src]++
		dbf = dbf.AddInt(s.WCET()).AddScaled(uready, I-iold)
		capacity := opt.capacityAt(I)
		for dbf.CmpInt(capacity) > 0 {
			j, ok := approx.pick(opt.RevisionOrder, srcs, I)
			if !ok {
				// Nothing is approximated: the accounted demand is exact.
				exact := accountedDemand(srcs, jobs)
				if exact > capacity {
					return Result{Verdict: Infeasible, Iterations: iterations,
						Revisions: revisions, FailureInterval: I}
				}
				// Float-mode drift: re-synchronize and continue.
				dbf = zero.AddInt(exact)
				break
			}
			// Revise j: replace its approximated cost by the real cost at I
			// (subtract the overestimation app, Lemma 6) and queue its next
			// job deadline after I as an additional test interval (Lemma 5).
			sj := srcs[j]
			num, den := sj.UtilRat()
			uready = uready.SubRat(num, den)
			an, ad := sj.ApproxError(I)
			dbf = dbf.SubRat(an, ad)
			jobs[j] = sj.JobsUpTo(I)
			tl.Add(sj.NextDeadline(I), j)
			revisions++
		}
		// Approximate the source whose interval was just verified.
		if num, den := s.UtilRat(); num > 0 {
			uready = uready.AddRat(num, den)
			approx.add(e.Src)
		}
		iold = I
	}
	return Result{Verdict: Feasible, Iterations: iterations, Revisions: revisions}
}

// allApproxChunked is allApprox on the scratch's bounded-denominator
// registers (see superPosChunked); structure and verdicts match the
// generic exact implementation bit for bit. The caller guarantees the
// scratch plan covers the sources.
func allApproxChunked(srcs []demand.Source, stopAt int64, opt Options) Result {
	tl := opt.Scratch.TestList(len(srcs))
	jobs := opt.Scratch.Jobs(len(srcs))
	for i, s := range srcs {
		tl.Add(s.JobDeadline(1), i)
	}
	approx := newApproxTracker(opt.Scratch, len(srcs))
	dbf, uready := opt.Scratch.Reg(0), opt.Scratch.Reg(1)
	var iold, iterations, revisions int64
	for !tl.Empty() {
		e := tl.Next()
		I := e.I
		if stopAt > 0 && I >= stopAt {
			return Result{Verdict: Feasible, Iterations: iterations, Revisions: revisions}
		}
		iterations++
		if opt.capped(iterations) {
			return Result{Verdict: Undecided, Iterations: iterations, Revisions: revisions}
		}
		s := srcs[e.Src]
		jobs[e.Src]++
		dbf.AddInt(s.WCET())
		dbf.AddScaled(uready, I-iold)
		capacity := opt.capacityAt(I)
		for dbf.CmpInt(capacity) > 0 {
			j, ok := approx.pick(opt.RevisionOrder, srcs, I)
			if !ok {
				// Nothing is approximated: the accounted demand is exact.
				exact := accountedDemand(srcs, jobs)
				if exact > capacity {
					return Result{Verdict: Infeasible, Iterations: iterations,
						Revisions: revisions, FailureInterval: I}
				}
				dbf.SetInt(exact)
				break
			}
			// Revise j: replace its approximated cost by the real cost at I
			// and queue its next job deadline as a new test interval.
			sj := srcs[j]
			num, den := sj.UtilRat()
			uready.SubRat(num, den)
			an, ad := sj.ApproxError(I)
			dbf.SubRat(an, ad)
			jobs[j] = sj.JobsUpTo(I)
			tl.Add(sj.NextDeadline(I), j)
			revisions++
		}
		// Approximate the source whose interval was just verified.
		if num, den := s.UtilRat(); num > 0 {
			uready.AddRat(num, den)
			approx.add(e.Src)
		}
		iold = I
	}
	return Result{Verdict: Feasible, Iterations: iterations, Revisions: revisions}
}
