package core

import (
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/demand"
	"repro/internal/model"
)

// bruteFeasible is the reference oracle: it checks dbf(I) <= I for every
// integer interval up to the feasibility bound. Only usable for small
// parameter ranges.
func bruteFeasible(t *testing.T, ts model.TaskSet) bool {
	t.Helper()
	if ts.OverUtilized() {
		return false
	}
	bound, _, ok := bounds.Best(ts)
	if !ok {
		t.Fatalf("no bound for %v", ts)
	}
	srcs := demand.FromTasks(ts)
	for I := int64(1); I < bound; I++ {
		if demand.Dbf(srcs, I) > I {
			return false
		}
	}
	return true
}

// randomSmallSet generates a task set with tiny parameters so the brute
// force oracle stays cheap.
func randomSmallSet(rng *rand.Rand) model.TaskSet {
	n := 1 + rng.Intn(5)
	ts := make(model.TaskSet, 0, n)
	for range n {
		T := int64(2 + rng.Intn(18))
		C := int64(1 + rng.Intn(int(T)))
		D := C + rng.Int63n(T-C+1) // C <= D <= T
		ts = append(ts, model.Task{WCET: C, Deadline: D, Period: T})
	}
	return ts
}

func verdictOf(r Result) Verdict { return r.Verdict }

func TestExactTestsAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := range 3000 {
		ts := randomSmallSet(rng)
		want := Feasible
		if !bruteFeasible(t, ts) {
			want = Infeasible
		}
		checks := map[string]Result{
			"pd":          ProcessorDemand(ts, Options{}),
			"qpa":         QPA(ts, Options{}),
			"dynamic":     DynamicError(ts, Options{}),
			"allapprox":   AllApprox(ts, Options{}),
			"dynamicF":    DynamicError(ts, Options{Arithmetic: ArithFloat64}),
			"allapproxF":  AllApprox(ts, Options{Arithmetic: ArithFloat64}),
			"allapproxL":  AllApprox(ts, Options{RevisionOrder: ReviseLIFO}),
			"allapproxME": AllApprox(ts, Options{RevisionOrder: ReviseMaxError}),
		}
		for name, r := range checks {
			if got := verdictOf(r); got != want {
				t.Fatalf("case %d: %s verdict %v, want %v\nset: %v", i, name, got, want, ts)
			}
		}
	}
}

func TestSufficientTestsNeverOveraccept(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := range 3000 {
		ts := randomSmallSet(rng)
		exact := bruteFeasible(t, ts)
		for _, tc := range []struct {
			name string
			r    Result
		}{
			{"liu-layland", LiuLayland(ts)},
			{"devi", Devi(ts)},
			{"superpos1", SuperPos(ts, 1, Options{})},
			{"superpos2", SuperPos(ts, 2, Options{})},
			{"superpos5", SuperPos(ts, 5, Options{})},
		} {
			if tc.r.Verdict == Feasible && !exact {
				t.Fatalf("case %d: %s accepted infeasible set %v", i, tc.name, ts)
			}
			if tc.r.Verdict == Infeasible && exact {
				t.Fatalf("case %d: %s rejected feasible set %v", i, tc.name, ts)
			}
		}
	}
}

func TestDeviEqualsSuperPos1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := range 5000 {
		ts := randomSmallSet(rng)
		devi := Devi(ts)
		sp1 := SuperPos(ts, 1, Options{})
		if (devi.Verdict == Feasible) != (sp1.Verdict == Feasible) {
			t.Fatalf("case %d: Devi=%v SuperPos(1)=%v for %v", i, devi.Verdict, sp1.Verdict, ts)
		}
	}
}

func TestSuperPosLevelsNest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := range 2000 {
		ts := randomSmallSet(rng)
		prevAccepted := false
		for level := int64(1); level <= 8; level++ {
			accepted := SuperPos(ts, level, Options{}).Verdict == Feasible
			if prevAccepted && !accepted {
				t.Fatalf("case %d: SuperPos(%d) rejected a set SuperPos(%d) accepted: %v",
					i, level, level-1, ts)
			}
			prevAccepted = accepted
		}
	}
}
