package core

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/demand"
	"repro/internal/obs"
)

// Verdict is the outcome of a feasibility test.
type Verdict uint8

const (
	// Feasible: every deadline is met under preemptive EDF.
	Feasible Verdict = iota
	// Infeasible: some deadline is missed; exact tests and over-utilized
	// sets yield this verdict, and sufficient tests yield it only when
	// they witness an exact violation.
	Infeasible
	// NotAccepted: a sufficient test could not accept the set; the set may
	// still be feasible.
	NotAccepted
	// Undecided: a resource cap (Options.MaxIterations, Options.MaxLevel,
	// or an int64 overflow in a bound) stopped the test first.
	Undecided
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case NotAccepted:
		return "not-accepted"
	case Undecided:
		return "undecided"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Definite reports whether the verdict settles feasibility.
func (v Verdict) Definite() bool { return v == Feasible || v == Infeasible }

// Result reports the outcome and effort of a feasibility test.
type Result struct {
	Verdict Verdict
	// Iterations is the number of checked test intervals, the effort
	// metric of the paper's evaluation (Section 5). For Devi it is the
	// number of per-task conditions evaluated.
	Iterations int64
	// Revisions is the number of per-task approximation revisions the new
	// tests performed (zero for the classic tests).
	Revisions int64
	// MaxLevel is the highest superposition level reached (DynamicError),
	// or the fixed level for SuperPos; zero for non-superposition tests.
	MaxLevel int64
	// FailureInterval is the test interval witnessing the failure for
	// Infeasible/NotAccepted verdicts, zero otherwise.
	FailureInterval int64
	// Bound is the exclusive feasibility bound the test used, zero when
	// the test terminated through the implicit superposition bound.
	Bound int64
	// BoundKind names Bound's origin.
	BoundKind bounds.Kind
}

// Arithmetic selects the accumulator arithmetic of the approximated tests.
type Arithmetic uint8

const (
	// ArithExact uses exact accumulators on the fast path (default):
	// int64 numerator/denominator rationals with 128-bit intermediate
	// products that transparently fall back to big.Rat on overflow
	// (numeric.Fast). Results are bit-identical to ArithBigRat.
	ArithExact Arithmetic = iota
	// ArithFloat64 uses float64 accumulators with a comparison tolerance;
	// rejections are still confirmed exactly.
	ArithFloat64
	// ArithBigRat forces math/big.Rat accumulators everywhere — the slow
	// reference implementation ArithExact is property-tested against.
	ArithBigRat
)

// RevisionOrder selects which approximated task the all-approximated test
// revises first when the approximated demand exceeds the interval. The
// paper's pseudocode pops "the first task" without fixing the order; FIFO
// is the natural reading and the default.
type RevisionOrder uint8

const (
	// ReviseFIFO revises the longest-approximated task first (default).
	ReviseFIFO RevisionOrder = iota
	// ReviseLIFO revises the most recently approximated task first.
	ReviseLIFO
	// ReviseMaxError revises the task with the largest current
	// approximation error app(I, τ) first.
	ReviseMaxError
)

// Options tune the tests. The zero value is the default configuration:
// exact arithmetic, FIFO revisions, no caps.
type Options struct {
	// Arithmetic selects float64 or exact accumulators.
	Arithmetic Arithmetic
	// RevisionOrder applies to AllApprox.
	RevisionOrder RevisionOrder
	// MaxIterations caps the checked test intervals (0 = unlimited);
	// exceeding it yields Undecided.
	MaxIterations int64
	// MaxLevel caps the superposition level of DynamicError
	// (0 = unlimited). With a cap the test degrades into a sufficient
	// test with strictly limited run time, as Section 4.1 describes:
	// exceeding the cap yields NotAccepted instead of further refinement.
	MaxLevel int64
	// Bound forces ProcessorDemand to use a specific feasibility bound
	// (default: the smallest applicable one).
	Bound bounds.Kind
	// Blocking, when non-nil, reduces the processor capacity available at
	// test interval I: the tests check demand(I) <= I - Blocking(I) at
	// every absolute job deadline I (the SRP criterion is vacuous between
	// deadlines because dbf is constant there while I - B(I) never
	// shrinks). The function must be non-negative and non-increasing in
	// I, the shape of SRP/priority-ceiling blocking (see SRPBlocking).
	// QPA does not support blocking and returns Undecided when it is set.
	Blocking func(I int64) int64
	// Scratch, when non-nil, provides reusable working memory (test list,
	// job counters, source adapters) so repeated analyses run
	// allocation-free in steady state. A Scratch serves one analysis at a
	// time: callers sharing one across goroutines must serialize. When
	// nil, the tests borrow one from an internal pool.
	Scratch *demand.Scratch
	// Stages, when non-nil, receives one record per analyzer stage the
	// cascade runs — name, verdict, iterations, wall time — written into
	// the log's preallocated slots, so tracing keeps the analysis hot
	// paths allocation-free. Like Scratch, a StageLog serves one analysis
	// at a time. The field never influences results and is excluded from
	// analysis fingerprints.
	Stages *obs.StageLog
}

// acquire returns opt with a Scratch attached, plus the borrowed scratch
// to release (nil when the caller supplied one, or one was already
// attached by an outer entry point).
func (o Options) acquire() (Options, *demand.Scratch) {
	if o.Scratch != nil {
		return o, nil
	}
	s := demand.GetScratch()
	o.Scratch = s
	return o, s
}

// release returns a borrowed scratch to the pool; release(nil) is a no-op
// so it can be deferred unconditionally.
func release(s *demand.Scratch) {
	if s != nil {
		demand.PutScratch(s)
	}
}

// capacityAt returns the capacity available at interval I under the
// configured blocking.
func (o Options) capacityAt(I int64) int64 {
	if o.Blocking == nil {
		return I
	}
	return I - o.Blocking(I)
}

// capped reports whether the iteration cap is exceeded.
func (o Options) capped(iter int64) bool {
	return o.MaxIterations > 0 && iter > o.MaxIterations
}
