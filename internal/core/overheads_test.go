package core

import (
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/demand"
	"repro/internal/model"
)

func TestSRPBlockingFunction(t *testing.T) {
	ts := model.TaskSet{
		{WCET: 2, Deadline: 10, Period: 10, CriticalSection: 1},
		{WCET: 5, Deadline: 20, Period: 25, CriticalSection: 4},
		{WCET: 8, Deadline: 50, Period: 50, CriticalSection: 2},
		{WCET: 3, Deadline: 80, Period: 100},
	}
	b := SRPBlocking(ts)
	if b == nil {
		t.Fatal("nil blocking despite critical sections")
	}
	cases := []struct{ I, want int64 }{
		{0, 4},  // all critical sections can block
		{9, 4},  // deadlines 10,20,50 beyond: max(1,4,2)
		{10, 4}, // deadline 10 no longer blocks (D > I strictly)
		{19, 4},
		{20, 2}, // only the D=50 task can block
		{49, 2},
		{50, 0}, // nothing with a later deadline has a critical section
		{100, 0},
	}
	for _, c := range cases {
		if got := b(c.I); got != c.want {
			t.Errorf("B(%d) = %d, want %d", c.I, got, c.want)
		}
	}
	// Non-increasing everywhere.
	prev := b(0)
	for I := int64(1); I <= 120; I++ {
		cur := b(I)
		if cur > prev {
			t.Fatalf("B increased at %d: %d -> %d", I, prev, cur)
		}
		prev = cur
	}
	if SRPBlocking(model.TaskSet{{WCET: 1, Deadline: 5, Period: 5}}) != nil {
		t.Error("blocking function for a set without critical sections")
	}
}

func TestInflateOverheads(t *testing.T) {
	ts := model.TaskSet{{WCET: 2, Deadline: 10, Period: 10, SelfSuspension: 3}}
	out := InflateOverheads(ts, Overheads{ContextSwitch: 1})
	if out[0].WCET != 2+2+3 {
		t.Errorf("inflated WCET = %d, want 7", out[0].WCET)
	}
	if out[0].SelfSuspension != 0 {
		t.Error("self-suspension not consumed")
	}
	if ts[0].WCET != 2 {
		t.Error("input mutated")
	}
}

func TestContextSwitchFlipsTightSet(t *testing.T) {
	// Exactly schedulable without overhead; any context-switch cost breaks it.
	ts := model.TaskSet{
		{WCET: 5, Deadline: 10, Period: 10},
		{WCET: 5, Deadline: 10, Period: 10},
	}
	if r := AllApproxWithOverheads(ts, Overheads{}, Options{}); r.Verdict != Feasible {
		t.Fatalf("no overhead: %v", r.Verdict)
	}
	if r := AllApproxWithOverheads(ts, Overheads{ContextSwitch: 1}, Options{}); r.Verdict != Infeasible {
		t.Fatalf("with overhead: %v, want infeasible", r.Verdict)
	}
}

func TestBlockingFlipsTightSet(t *testing.T) {
	// The short-deadline task fits alone, but a long critical section of
	// the background task blocks it past its deadline.
	ts := model.TaskSet{
		{Name: "urgent", WCET: 3, Deadline: 4, Period: 20},
		{Name: "bulk", WCET: 8, Deadline: 40, Period: 40, CriticalSection: 2},
	}
	if r := AllApprox(ts, Options{}); r.Verdict != Feasible {
		t.Fatalf("ignoring blocking: %v", r.Verdict)
	}
	r := AllApproxWithOverheads(ts, Overheads{}, Options{})
	if r.Verdict != Infeasible {
		t.Fatalf("with blocking: %v, want infeasible (dbf(4)=3 > 4-2)", r.Verdict)
	}
	// Shrinking the critical section to 1 restores feasibility.
	ts[1].CriticalSection = 1
	if r := AllApproxWithOverheads(ts, Overheads{}, Options{}); r.Verdict != Feasible {
		t.Fatalf("with short blocking: %v", r.Verdict)
	}
}

// bruteFeasibleWithBlocking scans dbf(I) <= I - B(I) exhaustively.
func bruteFeasibleWithBlocking(t *testing.T, ts model.TaskSet) (bool, bool) {
	t.Helper()
	if ts.OverUtilized() {
		return false, true
	}
	srcs := demand.FromTasks(ts)
	bmax := maxCriticalSection(ts)
	var bound int64
	if ts.FullyUtilized() {
		b, _, ok := bounds.Best(ts)
		if !ok {
			return false, false
		}
		bound = b
	} else {
		b, ok := bounds.GeorgeWithBlocking(srcs, bmax)
		if !ok {
			return false, false
		}
		bound = b
	}
	if bound > 500000 {
		return false, false
	}
	blocking := SRPBlocking(ts)
	// The SRP criterion is evaluated at absolute deadlines only: below the
	// first deadline no job can be blocked, and between deadlines dbf is
	// constant while the capacity I - B(I) never shrinks.
	for I := int64(1); I < bound; I++ {
		isDeadline := false
		for _, s := range srcs {
			if s.JobsUpTo(I) != s.JobsUpTo(I-1) {
				isDeadline = true
				break
			}
		}
		if !isDeadline {
			continue
		}
		capacity := I
		if blocking != nil {
			capacity -= blocking(I)
		}
		if demand.Dbf(srcs, I) > capacity {
			return false, true
		}
	}
	return true, true
}

// TestOverheadTestsAgreeWithBruteForce cross-validates the blocking-aware
// exact tests against an exhaustive scan on random small sets with random
// critical sections.
func TestOverheadTestsAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	checked := 0
	for range 2500 {
		ts := randomSmallSet(rng)
		for i := range ts {
			if rng.Intn(2) == 0 {
				ts[i].CriticalSection = rng.Int63n(ts[i].WCET + 1)
			}
		}
		want, ok := bruteFeasibleWithBlocking(t, ts)
		if !ok {
			continue
		}
		checked++
		wantV := Feasible
		if !want {
			wantV = Infeasible
		}
		for name, r := range map[string]Result{
			"pd":       ProcessorDemandWithOverheads(ts, Overheads{}, Options{}),
			"all":      AllApproxWithOverheads(ts, Overheads{}, Options{}),
			"dynamic":  DynamicErrorWithOverheads(ts, Overheads{}, Options{}),
			"allFloat": AllApproxWithOverheads(ts, Overheads{}, Options{Arithmetic: ArithFloat64}),
		} {
			if r.Verdict != wantV {
				t.Fatalf("%s: %v, want %v for %v", name, r.Verdict, wantV, ts)
			}
		}
		// Devi with blocking must stay sufficient.
		if r := DeviWithOverheads(ts, Overheads{}); r.Verdict == Feasible && !want {
			t.Fatalf("devi-blocking accepted infeasible %v", ts)
		}
	}
	if checked < 1500 {
		t.Fatalf("only %d sets checked", checked)
	}
}

// TestOverheadReducesToPlainTests: without critical sections, suspension
// and switch costs the overhead-aware tests equal the plain ones.
func TestOverheadReducesToPlainTests(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for range 1000 {
		ts := randomSmallSet(rng)
		plain := AllApprox(ts, Options{})
		over := AllApproxWithOverheads(ts, Overheads{}, Options{})
		if plain.Verdict != over.Verdict || plain.Iterations != over.Iterations {
			t.Fatalf("overhead-aware differs on plain set: %v/%d vs %v/%d for %v",
				plain.Verdict, plain.Iterations, over.Verdict, over.Iterations, ts)
		}
	}
}

func TestQPARefusesBlocking(t *testing.T) {
	ts := model.TaskSet{{WCET: 1, Deadline: 5, Period: 5}}
	r := QPA(ts, Options{Blocking: func(int64) int64 { return 0 }})
	if r.Verdict != Undecided {
		t.Errorf("QPA with blocking: %v, want undecided", r.Verdict)
	}
}
