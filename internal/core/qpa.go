package core

import (
	"repro/internal/demand"
	"repro/internal/model"
)

// maxDeadlineBelow returns the largest absolute job deadline strictly below
// x over the sources, or -1 if there is none.
func maxDeadlineBelow(srcs []demand.Source, x int64) int64 {
	best := int64(-1)
	for _, s := range srcs {
		if x <= 0 {
			break
		}
		k := s.JobsUpTo(x - 1)
		if k == 0 {
			continue
		}
		best = max(best, s.JobDeadline(k))
	}
	return best
}

// QPA applies Quick Processor-demand Analysis (Zhang & Burns, 2009), an
// exact EDF test that walks the demand bound function backwards from the
// feasibility bound instead of enumerating every deadline. It postdates the
// paper and serves as an additional exact baseline for the ablation
// benchmarks: like the paper's tests it needs dramatically fewer dbf
// evaluations than the classic processor demand test.
//
// Iterations counts dbf evaluations.
func QPA(ts model.TaskSet, opt Options) Result {
	if opt.Blocking != nil {
		// The backward QPA walk is not established for blocking-reduced
		// capacity; refuse rather than guess.
		return Result{Verdict: Undecided}
	}
	opt, borrowed := opt.acquire()
	defer release(borrowed)
	if taskUtilCmpOneScratch(ts, opt.Scratch) > 0 {
		return Result{Verdict: Infeasible, Iterations: 1}
	}
	srcs := opt.Scratch.Sources(ts)
	bound, kind, ok := taskBound(ts, srcs, opt)
	if !ok {
		return Result{Verdict: Undecided}
	}
	dmin := ts.MinDeadline()
	t := maxDeadlineBelow(srcs, bound)
	var iterations int64
	for t >= 0 {
		h := demand.Dbf(srcs, t)
		iterations++
		if opt.capped(iterations) {
			return Result{Verdict: Undecided, Iterations: iterations, Bound: bound, BoundKind: kind}
		}
		switch {
		case h > t:
			return Result{Verdict: Infeasible, Iterations: iterations, FailureInterval: t, Bound: bound, BoundKind: kind}
		case h <= dmin:
			return Result{Verdict: Feasible, Iterations: iterations, Bound: bound, BoundKind: kind}
		case h < t:
			t = h
		default: // h == t: skip to the next smaller deadline
			t = maxDeadlineBelow(srcs, t)
		}
	}
	return Result{Verdict: Feasible, Iterations: iterations, Bound: bound, BoundKind: kind}
}
