package core

// Core analyzer benchmarks, the hot-path trend suite behind
// `make bench-core` / BENCH_core.json. They run the iterative tests with
// the default (exact) options — the configuration edfd and the admission
// controller use — on two fixed random set shapes:
//
//   - grid: periods drawn from a round {1,2,5}·10^k grid (the way real
//     systems pick periods), so rational slope arithmetic stays within
//     int64 and the tests exercise the allocation-free fast path.
//   - spread: log-uniform periods over four decades, the paper's
//     Figure 9 regime, where slope denominators overflow int64 and the
//     bounded-denominator chunk plan has to keep the walk exact and
//     allocation-free.
//
// The benchmark names are stable identifiers: BENCH_core.json records
// their ns/op and allocs/op across PRs.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// benchGridPeriods is the round-period grid benchmark sets draw from.
var benchGridPeriods = []int64{
	1000, 2000, 5000,
	10000, 20000, 50000,
	100000, 200000, 500000,
	1000000, 2000000, 5000000,
}

// benchGridSet builds a deterministic n-task set with round periods and
// total utilization close to utilPct/100.
func benchGridSet(n int, utilPct int, seed int64) model.TaskSet {
	rng := rand.New(rand.NewSource(seed))
	return benchSetFromPeriods(n, utilPct, rng, func() int64 {
		return benchGridPeriods[rng.Intn(len(benchGridPeriods))]
	})
}

// benchSpreadSet builds a deterministic n-task set with log-uniform
// periods in [1000, 10^7], the arithmetic-overflow-prone shape.
func benchSpreadSet(n int, utilPct int, seed int64) model.TaskSet {
	rng := rand.New(rand.NewSource(seed))
	lo, hi := 3.0, 7.0 // 10^3 .. 10^7
	return benchSetFromPeriods(n, utilPct, rng, func() int64 {
		return int64(math.Pow(10, lo+rng.Float64()*(hi-lo)))
	})
}

// benchSetFromPeriods shares the utilization split and deadline-gap logic
// of the two set shapes.
func benchSetFromPeriods(n, utilPct int, rng *rand.Rand, period func() int64) model.TaskSet {
	// Random utilization split (UUniFast-style stick breaking).
	shares := make([]float64, n)
	sum := 0.0
	for i := range shares {
		shares[i] = 0.1 + rng.Float64()
		sum += shares[i]
	}
	target := float64(utilPct) / 100
	ts := make(model.TaskSet, 0, n)
	for i := range n {
		t := period()
		c := int64(shares[i] / sum * target * float64(t))
		if c < 1 {
			c = 1
		}
		gap := int64(float64(t-c) * 0.25 * rng.Float64())
		d := t - gap
		if d < c {
			d = c
		}
		ts = append(ts, model.Task{WCET: c, Deadline: d, Period: t})
	}
	return ts
}

// sinkResult keeps the compiler from eliding the analyzed result.
var sinkResult Result

// BenchmarkSuperPos is the headline superposition benchmark: SuperPos(3)
// in default exact arithmetic on a 50-task, ~95%-utilization grid set.
func BenchmarkSuperPos(b *testing.B) {
	ts := benchGridSet(50, 95, 11)
	b.ReportAllocs()
	for b.Loop() {
		sinkResult = SuperPos(ts, 3, Options{})
	}
	b.ReportMetric(float64(sinkResult.Iterations), "intervals")
}

// BenchmarkSuperPosSpread runs SuperPos(3) on the overflow-prone
// log-uniform set, the worst case for int64 rational arithmetic.
func BenchmarkSuperPosSpread(b *testing.B) {
	ts := benchSpreadSet(50, 95, 13)
	b.ReportAllocs()
	for b.Loop() {
		sinkResult = SuperPos(ts, 3, Options{})
	}
	b.ReportMetric(float64(sinkResult.Iterations), "intervals")
}

// BenchmarkProcessorDemand is the headline exact-test benchmark: the
// processor demand test with its default best bound on the grid set.
func BenchmarkProcessorDemand(b *testing.B) {
	ts := benchGridSet(50, 95, 11)
	b.ReportAllocs()
	for b.Loop() {
		sinkResult = ProcessorDemand(ts, Options{})
	}
	b.ReportMetric(float64(sinkResult.Iterations), "intervals")
}

// BenchmarkProcessorDemandSpread runs the processor demand test on the
// log-uniform set.
func BenchmarkProcessorDemandSpread(b *testing.B) {
	ts := benchSpreadSet(50, 95, 13)
	b.ReportAllocs()
	for b.Loop() {
		sinkResult = ProcessorDemand(ts, Options{})
	}
	b.ReportMetric(float64(sinkResult.Iterations), "intervals")
}

// BenchmarkQPA benchmarks Quick Processor-demand Analysis on the grid set.
func BenchmarkQPA(b *testing.B) {
	ts := benchGridSet(50, 95, 11)
	b.ReportAllocs()
	for b.Loop() {
		sinkResult = QPA(ts, Options{})
	}
	b.ReportMetric(float64(sinkResult.Iterations), "intervals")
}

// BenchmarkAllApprox benchmarks the paper's all-approximated exact test
// in default exact arithmetic on the grid set.
func BenchmarkAllApprox(b *testing.B) {
	ts := benchGridSet(50, 95, 11)
	b.ReportAllocs()
	for b.Loop() {
		sinkResult = AllApprox(ts, Options{})
	}
	b.ReportMetric(float64(sinkResult.Iterations), "intervals")
}

// BenchmarkDynamicError benchmarks the paper's dynamic error test in
// default exact arithmetic on the grid set.
func BenchmarkDynamicError(b *testing.B) {
	ts := benchGridSet(50, 95, 11)
	b.ReportAllocs()
	for b.Loop() {
		sinkResult = DynamicError(ts, Options{})
	}
	b.ReportMetric(float64(sinkResult.Iterations), "intervals")
}

// BenchmarkDevi benchmarks Devi's sufficient test, the cheapest cascade
// stage that does real per-task arithmetic.
func BenchmarkDevi(b *testing.B) {
	ts := benchGridSet(50, 95, 11)
	b.ReportAllocs()
	for b.Loop() {
		sinkResult = Devi(ts)
	}
}
