package core

// Allocation-regression tests: with a reused Scratch, the sporadic hot
// paths must run allocation-free in steady state. These pins are part of
// the PR-4 acceptance criteria — loosening them needs a BENCH_core.json
// story, not just a bigger constant.

import (
	"testing"

	"repro/internal/demand"
)

// TestProcessorDemandZeroAlloc pins 0 allocs/op for the exact processor
// demand test (including its bound computation) with a reused Scratch.
func TestProcessorDemandZeroAlloc(t *testing.T) {
	ts := benchGridSet(50, 95, 11)
	opt := Options{Scratch: demand.NewScratch()}
	if r := ProcessorDemand(ts, opt); !r.Verdict.Definite() {
		t.Fatalf("benchmark set must be decided, got %+v", r)
	}
	allocs := testing.AllocsPerRun(100, func() {
		ProcessorDemand(ts, opt)
	})
	if allocs != 0 {
		t.Fatalf("ProcessorDemand with reused Scratch allocates %.1f/op, want 0", allocs)
	}
}

// TestSuperPosZeroAlloc pins 0 allocs/op for the superposition test in
// default exact arithmetic with a reused Scratch.
func TestSuperPosZeroAlloc(t *testing.T) {
	ts := benchGridSet(50, 95, 11)
	opt := Options{Scratch: demand.NewScratch()}
	SuperPos(ts, 3, opt)
	allocs := testing.AllocsPerRun(100, func() {
		SuperPos(ts, 3, opt)
	})
	if allocs != 0 {
		t.Fatalf("SuperPos with reused Scratch allocates %.1f/op, want 0", allocs)
	}
}

// TestQPAZeroAlloc pins 0 allocs/op for QPA with a reused Scratch.
func TestQPAZeroAlloc(t *testing.T) {
	ts := benchGridSet(50, 95, 11)
	opt := Options{Scratch: demand.NewScratch()}
	QPA(ts, opt)
	allocs := testing.AllocsPerRun(100, func() {
		QPA(ts, opt)
	})
	if allocs != 0 {
		t.Fatalf("QPA with reused Scratch allocates %.1f/op, want 0", allocs)
	}
}

// TestSpreadZeroAlloc pins 0 allocs/op on the log-uniform spread set —
// the shape that used to fall off the int64 fast path into big.Rat on
// every slope sum. With the bounded-denominator plan it must stay
// allocation-free end to end; this is the PR-9 acceptance pin behind the
// BenchmarkSuperPosSpread / BenchmarkProcessorDemandSpread numbers.
func TestSpreadZeroAlloc(t *testing.T) {
	ts := benchSpreadSet(50, 95, 13)
	opt := Options{Scratch: demand.NewScratch()}
	if r := ProcessorDemand(ts, opt); !r.Verdict.Definite() {
		t.Fatalf("spread set must be decided, got %+v", r)
	}
	for name, run := range map[string]func(){
		"ProcessorDemand": func() { ProcessorDemand(ts, opt) },
		"SuperPos":        func() { SuperPos(ts, 3, opt) },
	} {
		if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
			t.Errorf("%s on the spread set allocates %.1f/op, want 0", name, allocs)
		}
	}
}

// TestDeviZeroAlloc pins 0 allocs/op for Devi's sufficient test with a
// reused Scratch, on both the grid and the spread shape (the latter
// exercises the chunk-register prefix accumulators).
func TestDeviZeroAlloc(t *testing.T) {
	opt := Options{Scratch: demand.NewScratch()}
	grid := benchGridSet(50, 95, 11)
	spread := benchSpreadSet(50, 95, 13)
	DeviOpt(grid, opt)
	DeviOpt(spread, opt)
	if allocs := testing.AllocsPerRun(100, func() { DeviOpt(grid, opt) }); allocs != 0 {
		t.Errorf("Devi on the grid set allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { DeviOpt(spread, opt) }); allocs != 0 {
		t.Errorf("Devi on the spread set allocates %.1f/op, want 0", allocs)
	}
}

// TestSuperPosSourcesZeroAlloc covers the generic-source entry point used
// by event workloads (sources prebuilt, scratch reused).
func TestSuperPosSourcesZeroAlloc(t *testing.T) {
	ts := benchGridSet(50, 95, 11)
	scratch := demand.NewScratch()
	srcs := demand.FromTasks(ts)
	opt := Options{Scratch: scratch}
	SuperPosSources(srcs, 3, opt)
	allocs := testing.AllocsPerRun(100, func() {
		SuperPosSources(srcs, 3, opt)
	})
	if allocs != 0 {
		t.Fatalf("SuperPosSources with reused Scratch allocates %.1f/op, want 0", allocs)
	}
}
