package core

// Property tests pinning the fast-arithmetic default (ArithExact, backed
// by numeric.Fast) to the big.Rat reference (ArithBigRat): both are exact,
// so every analyzer must produce bit-identical Results — verdict,
// iterations, revisions, level, failure interval and bound — on any
// workload, including parameter ranges that force the int64 fast path to
// overflow into its big.Rat fallback.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/eventstream"
	"repro/internal/model"
	"repro/internal/numeric"
)

// randomSporadicSet draws a set biased toward the decision boundary
// (utilizations around 0.8..1.05) over the given period range.
func randomSporadicSet(rng *rand.Rand, periodMax int64) model.TaskSet {
	n := rng.Intn(12) + 1
	ts := make(model.TaskSet, 0, n)
	for range n {
		t := rng.Int63n(periodMax-2) + 2
		c := rng.Int63n(max(t/int64(n)+1, 1)) + 1
		d := c + rng.Int63n(2*t)
		ts = append(ts, model.Task{WCET: c, Deadline: d, Period: t})
	}
	return ts
}

// randomEventTasks draws a small event-driven task set with mixed
// periodic, bursty and one-shot stream elements.
func randomEventTasks(rng *rand.Rand) []eventstream.Task {
	n := rng.Intn(6) + 1
	tasks := make([]eventstream.Task, 0, n)
	for range n {
		elems := rng.Intn(3) + 1
		stream := make(eventstream.Stream, 0, elems)
		for range elems {
			cycle := rng.Int63n(5000)
			if cycle > 0 && cycle < 100 {
				cycle += 100
			}
			stream = append(stream, eventstream.Element{
				Cycle:  cycle, // 0 = one-shot
				Offset: rng.Int63n(300),
			})
		}
		tasks = append(tasks, eventstream.Task{
			Stream:   stream,
			WCET:     rng.Int63n(40) + 1,
			Deadline: rng.Int63n(2000) + 1,
		})
	}
	return tasks
}

// compareResults fails unless the two results are identical in every
// reported field.
func compareResults(t *testing.T, what string, fast, ref Result) {
	t.Helper()
	if fast != ref {
		t.Fatalf("%s: fast arithmetic %+v != big.Rat reference %+v", what, fast, ref)
	}
}

// TestFastArithmeticMatchesBigRatSporadic runs every scalar-based
// analyzer on random sporadic sets under both exact arithmetic modes.
func TestFastArithmeticMatchesBigRatSporadic(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	ranges := []int64{20, 1000, 100000, 1 << 40}
	for i := range 320 {
		ts := randomSporadicSet(rng, ranges[i%len(ranges)])
		fast := Options{Arithmetic: ArithExact, MaxIterations: 200000}
		ref := Options{Arithmetic: ArithBigRat, MaxIterations: 200000}
		for _, level := range []int64{1, 3, 7} {
			compareResults(t, "superpos", SuperPos(ts, level, fast), SuperPos(ts, level, ref))
		}
		compareResults(t, "allapprox", AllApprox(ts, fast), AllApprox(ts, ref))
		compareResults(t, "dynamic", DynamicError(ts, fast), DynamicError(ts, ref))
		// ProcessorDemand has no scalar accumulator, but its bound now
		// runs on fast arithmetic; pin it against itself across modes.
		compareResults(t, "pd", ProcessorDemand(ts, fast), ProcessorDemand(ts, ref))
	}
}

// TestFastArithmeticMatchesBigRatEvents does the same over event-stream
// workloads through the source-level entry points.
func TestFastArithmeticMatchesBigRatEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for range 320 {
		tasks := randomEventTasks(rng)
		srcs := eventstream.Sources(tasks)
		fast := Options{Arithmetic: ArithExact, MaxIterations: 200000}
		ref := Options{Arithmetic: ArithBigRat, MaxIterations: 200000}
		compareResults(t, "superpos-sources",
			SuperPosSources(srcs, 4, fast), SuperPosSources(srcs, 4, ref))
		compareResults(t, "allapprox-sources",
			AllApproxSources(srcs, 0, fast), AllApproxSources(srcs, 0, ref))
		compareResults(t, "dynamic-sources",
			DynamicErrorSources(srcs, 0, fast), DynamicErrorSources(srcs, 0, ref))
		compareResults(t, "pd-sources",
			ProcessorDemandSources(srcs, fast), ProcessorDemandSources(srcs, ref))
	}
}

// spreadSet draws a set with log-uniform periods across the given number
// of decades above 1000 — the `edfgen -spread` shape whose wide period
// mix is what the bounded-denominator plan exists for — with utilization
// biased toward the decision boundary.
func spreadSet(rng *rand.Rand, decades int) model.TaskSet {
	n := rng.Intn(24) + 4
	lo := 3.0
	hi := lo + float64(decades)
	target := 0.8 + rng.Float64()*0.25
	ts := make(model.TaskSet, 0, n)
	for range n {
		t := int64(math.Pow(10, lo+rng.Float64()*(hi-lo)))
		c := int64(target / float64(n) * float64(t))
		if c < 1 {
			c = 1
		}
		d := c + rng.Int63n(t)
		ts = append(ts, model.Task{WCET: c, Deadline: d, Period: t})
	}
	return ts
}

// TestFastArithmeticMatchesBigRatSpread runs every analyzer on
// log-uniform spread corpora of 4, 6 and 8 decades under both exact
// arithmetic modes. These are the denominator-stress shapes the chunked
// fast path is built for; the reference must stay bit-identical whether
// an analysis runs on chunk registers, numeric.Fast, or the big.Rat
// fallback.
func TestFastArithmeticMatchesBigRatSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	fast := Options{Arithmetic: ArithExact, MaxIterations: 200000}
	ref := Options{Arithmetic: ArithBigRat, MaxIterations: 200000}
	for _, decades := range []int{4, 6, 8} {
		for range 80 {
			ts := spreadSet(rng, decades)
			for _, level := range []int64{1, 3, 7} {
				compareResults(t, "superpos", SuperPos(ts, level, fast), SuperPos(ts, level, ref))
			}
			compareResults(t, "allapprox", AllApprox(ts, fast), AllApprox(ts, ref))
			compareResults(t, "dynamic", DynamicError(ts, fast), DynamicError(ts, ref))
			compareResults(t, "pd", ProcessorDemand(ts, fast), ProcessorDemand(ts, ref))
			compareResults(t, "qpa", QPA(ts, fast), QPA(ts, ref))
		}
	}
}

// capBoundaryPrimes returns n primes just above 2^31: any two multiply
// past the 2^62 chunk denominator cap, so each needs its own chunk and a
// set of n of them needs exactly n chunks.
func capBoundaryPrimes(n int) []int64 {
	isPrime := func(v int64) bool {
		for d := int64(3); d*d <= v; d += 2 {
			if v%d == 0 {
				return false
			}
		}
		return true
	}
	out := make([]int64, 0, n)
	for p := int64(1)<<31 + 1; len(out) < n; p += 2 {
		if isPrime(p) {
			out = append(out, p)
		}
	}
	return out
}

// TestChunkPlanCapBoundary pins both sides of the plan-capacity edge
// with directed sets: one prime per chunk at exactly the chunk budget
// (plannable, zero promotions) and one past it (every analysis falls
// off the fast path and counts promotions) — with bit-identical results
// against the big.Rat reference either way.
func TestChunkPlanCapBoundary(t *testing.T) {
	for _, tc := range []struct {
		name     string
		primes   int
		promoted bool
	}{
		{"at-cap", numeric.MaxChunks, false},
		{"past-cap", numeric.MaxChunks + 1, true},
	} {
		var ts model.TaskSet
		for _, p := range capBoundaryPrimes(tc.primes) {
			ts = append(ts, model.Task{WCET: 1, Deadline: p - 1, Period: p})
		}
		sc := demand.NewScratch()
		fast := Options{Arithmetic: ArithExact, Scratch: sc}
		ref := Options{Arithmetic: ArithBigRat}
		compareResults(t, tc.name+"/superpos", SuperPos(ts, 3, fast), SuperPos(ts, 3, ref))
		compareResults(t, tc.name+"/allapprox", AllApprox(ts, fast), AllApprox(ts, ref))
		compareResults(t, tc.name+"/devi", DeviOpt(ts, fast), DeviOpt(ts, ref))
		if promoted := sc.ArithPromotions() > 0; promoted != tc.promoted {
			t.Fatalf("%s: promotions=%d, want promoted=%v",
				tc.name, sc.ArithPromotions(), tc.promoted)
		}
	}
}

// overflowSet builds a set whose slope sum cannot be represented with an
// int64 denominator: huge pairwise-coprime periods force the fast path
// into the big.Rat fallback.
func overflowSet(rng *rand.Rand) model.TaskSet {
	// Periods near 2^61 chosen coprime by construction (consecutive odd
	// offsets of a common huge base are pairwise coprime often enough;
	// verified below by the promotion assertion).
	base := int64(1) << 61
	n := 4
	ts := make(model.TaskSet, 0, n)
	for i := range n {
		t := base + int64(2*i+1) + rng.Int63n(64)*2
		c := t/int64(n) - rng.Int63n(1<<40)
		d := c + rng.Int63n(1<<50)
		ts = append(ts, model.Task{WCET: c, Deadline: d, Period: t})
	}
	return ts
}

// TestFastArithmeticOverflowFallback runs directed extreme-parameter sets
// that must overflow the int64 fast path, checks the fallback actually
// engaged, and requires bit-identical results anyway.
func TestFastArithmeticOverflowFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fallbacks := 0
	for range 40 {
		ts := overflowSet(rng)
		if demand.UtilizationFast(demand.FromTasks(ts)).Promoted() {
			fallbacks++
		}
		fast := Options{Arithmetic: ArithExact, MaxIterations: 50000}
		ref := Options{Arithmetic: ArithBigRat, MaxIterations: 50000}
		compareResults(t, "superpos", SuperPos(ts, 3, fast), SuperPos(ts, 3, ref))
		compareResults(t, "allapprox", AllApprox(ts, fast), AllApprox(ts, ref))
		compareResults(t, "dynamic", DynamicError(ts, fast), DynamicError(ts, ref))
		compareResults(t, "pd", ProcessorDemand(ts, fast), ProcessorDemand(ts, ref))
	}
	if fallbacks == 0 {
		t.Fatalf("no overflow set promoted the utilization sum — the directed cases lost their teeth")
	}
}

// TestProcessorDemandSourcesFullUtilization pins the documented U == 1
// contract of the generic-source processor demand test: a clean Undecided
// (no analyzer walk), while the task-set entry point still decides via
// its hyperperiod horizon.
func TestProcessorDemandSourcesFullUtilization(t *testing.T) {
	ts := model.TaskSet{
		{WCET: 2, Deadline: 3, Period: 4},
		{WCET: 1, Deadline: 2, Period: 2},
	}
	// U = 2/4 + 1/2 = 1 exactly.
	if got := taskUtilCmpOne(ts); got != 0 {
		t.Fatalf("test set utilization cmp 1 = %d, want 0", got)
	}
	srcs := demand.FromTasks(ts)
	r := ProcessorDemandSources(srcs, Options{})
	if r.Verdict != Undecided || r.Iterations != 0 {
		t.Fatalf("ProcessorDemandSources(U==1) = %+v, want clean Undecided with 0 iterations", r)
	}
	// The task-set entry point knows the hyperperiod and stays decisive.
	if rt := ProcessorDemand(ts, Options{}); !rt.Verdict.Definite() {
		t.Fatalf("ProcessorDemand(U==1 task set) = %+v, want a definite verdict", rt)
	}
	// U > 1 still rejects outright.
	over := append(ts.Clone(), model.Task{WCET: 1, Deadline: 5, Period: 5})
	if r := ProcessorDemandSources(demand.FromTasks(over), Options{}); r.Verdict != Infeasible {
		t.Fatalf("ProcessorDemandSources(U>1) = %+v, want Infeasible", r)
	}
}

// TestOverflowSetSanity keeps the directed generator honest: its WCETs
// stay positive and below the period.
func TestOverflowSetSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for range 40 {
		for _, task := range overflowSet(rng) {
			if task.WCET <= 0 || task.WCET > task.Period || task.Deadline <= 0 {
				t.Fatalf("degenerate overflow task %+v", task)
			}
			if task.Period >= math.MaxInt64/2 {
				t.Fatalf("period overflows downstream math: %d", task.Period)
			}
		}
	}
}
