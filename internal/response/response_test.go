package response

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

func TestSingleTask(t *testing.T) {
	ts := model.TaskSet{{WCET: 3, Deadline: 10, Period: 10}}
	r, ok := WCRT(ts, 0, Options{})
	if !ok || r != 3 {
		t.Fatalf("WCRT = %d,%v, want 3", r, ok)
	}
}

func TestTwoTasksHandComputed(t *testing.T) {
	// τ1 = (C=2, D=4, T=10), τ2 = (C=5, D=12, T=14).
	// τ1's worst case: released together with τ2's job whose deadline is
	// earlier or equal. At a=8 (aligning deadlines 12): τ2 has deadline
	// 12 <= 12, so 5 units interfere; τ1 job released at 8 finishes at
	// 2+5=7 < 8 -> busy period ends before a; response is C=2 via other
	// offsets: at a=0, τ2's deadline 12 > 4, no interference: R=2.
	ts := model.TaskSet{
		{WCET: 2, Deadline: 4, Period: 10},
		{WCET: 5, Deadline: 12, Period: 14},
	}
	r1, ok := WCRT(ts, 0, Options{})
	if !ok {
		t.Fatal("analysis failed")
	}
	if r1 != 2 {
		t.Errorf("WCRT(τ1) = %d, want 2 (no earlier-deadline work exists below its deadline)", r1)
	}
	// τ2's worst case is the synchronous release: τ1's job (deadline 4
	// <= 12) runs first: R = 2 + 5 = 7.
	r2, ok := WCRT(ts, 1, Options{})
	if !ok || r2 != 7 {
		t.Errorf("WCRT(τ2) = %d,%v, want 7", r2, ok)
	}
}

func TestInterferenceAcrossOffsets(t *testing.T) {
	// τ1 = (C=1, D=6, T=6); τ2 = (C=3, D=6, T=9).
	// Synchronous: τ2 finishes at 4 (tie broken by index: τ1 first).
	// τ1's second job (release 6, deadline 12) competes with τ2's second
	// job (release 9, deadline 15): no. WCRTs from the analysis must be
	// within deadlines since the set is feasible by the exact test.
	ts := model.TaskSet{
		{WCET: 1, Deadline: 6, Period: 6},
		{WCET: 3, Deadline: 6, Period: 9},
	}
	if core.ProcessorDemand(ts, core.Options{}).Verdict != core.Feasible {
		t.Fatal("fixture should be feasible")
	}
	rts, ok := All(ts, Options{})
	if !ok {
		t.Fatal("analysis failed")
	}
	for i, r := range rts {
		if r > ts[i].Deadline {
			t.Errorf("WCRT(%d) = %d beyond deadline %d on a feasible set", i, r, ts[i].Deadline)
		}
		if r < ts[i].WCET {
			t.Errorf("WCRT(%d) = %d below WCET", i, r)
		}
	}
}

func randomSmallSet(rng *rand.Rand) model.TaskSet {
	n := 1 + rng.Intn(4)
	ts := make(model.TaskSet, 0, n)
	for range n {
		T := int64(2 + rng.Intn(15))
		C := 1 + rng.Int63n(T)
		D := C + rng.Int63n(T-C+1)
		ts = append(ts, model.Task{WCET: C, Deadline: D, Period: T})
	}
	return ts
}

// TestFeasibilityEquivalence is the headline cross-check: Spuri's response
// time analysis and the paper's feasibility tests are independent
// implementations of EDF exactness and must agree — feasible iff every
// WCRT fits its deadline.
func TestFeasibilityEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	checked := 0
	for range 3000 {
		ts := randomSmallSet(rng)
		got, ok := Feasible(ts, Options{})
		if !ok {
			continue
		}
		checked++
		want := core.ProcessorDemand(ts, core.Options{}).Verdict == core.Feasible
		if got != want {
			rts, _ := All(ts, Options{})
			t.Fatalf("response analysis says %v, exact tests say %v for %v (WCRTs %v)",
				got, want, ts, rts)
		}
	}
	if checked < 2000 {
		t.Fatalf("only %d sets checked", checked)
	}
}

// TestWCRTUpperBoundsSimulation: no simulated job response may exceed the
// analytical worst case (synchronous arrival pattern).
func TestWCRTUpperBoundsSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for range 400 {
		ts := randomSmallSet(rng)
		feasible, ok := Feasible(ts, Options{})
		if !ok || !feasible {
			continue
		}
		rts, ok := All(ts, Options{})
		if !ok {
			continue
		}
		rep, err := sim.Run(ts, sim.Options{Horizon: 2000, RecordTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Missed {
			t.Fatalf("feasible set missed a deadline in simulation: %v", ts)
		}
		// Reconstruct per-job completion times from the trace.
		type jobKey struct {
			task int
			job  int64
		}
		finish := map[jobKey]int64{}
		for _, seg := range rep.Trace {
			if seg.Idle() {
				continue
			}
			finish[jobKey{seg.Task, seg.Job}] = seg.End
		}
		for k, end := range finish {
			release := int64(k.job) * ts[k.task].Period
			if resp := end - release; resp > rts[k.task] {
				t.Fatalf("observed response %d of task %d exceeds WCRT %d for %v",
					resp, k.task, rts[k.task], ts)
			}
		}
	}
}

// TestWCRTTightAtSynchronousRelease: the first synchronous job of the task
// with the latest deadline often realizes its WCRT; check the analysis is
// tight for a crafted case.
func TestWCRTTightCase(t *testing.T) {
	ts := model.TaskSet{
		{WCET: 2, Deadline: 5, Period: 10},
		{WCET: 3, Deadline: 9, Period: 10},
		{WCET: 4, Deadline: 20, Period: 20},
	}
	rts, ok := All(ts, Options{})
	if !ok {
		t.Fatal("analysis failed")
	}
	// Synchronous: τ3 runs after τ1 (2) and τ2 (3): completes at 9.
	// Second releases of τ1/τ2 at 10 have deadlines 15, 19 <= 20 but τ3 is
	// done at 9. WCRT(τ3) = 9.
	if rts[2] != 9 {
		t.Errorf("WCRT(τ3) = %d, want 9", rts[2])
	}
	if rts[0] != 2 {
		t.Errorf("WCRT(τ1) = %d, want 2", rts[0])
	}
	// τ2 behind τ1: 5.
	if rts[1] != 5 {
		t.Errorf("WCRT(τ2) = %d, want 5", rts[1])
	}
}

func TestOverUtilizedRefused(t *testing.T) {
	ts := model.TaskSet{{WCET: 3, Deadline: 2, Period: 2}}
	if _, ok := WCRT(ts, 0, Options{}); ok {
		t.Error("U>1 accepted")
	}
	if feasible, ok := Feasible(ts, Options{}); !ok || feasible {
		t.Error("U>1 must be reported infeasible")
	}
}

func TestCandidateCap(t *testing.T) {
	ts := model.TaskSet{
		{WCET: 1, Deadline: 3, Period: 3},
		{WCET: 50, Deadline: 100, Period: 100},
	}
	if _, ok := WCRT(ts, 1, Options{MaxCandidates: 2}); ok {
		t.Error("candidate cap not enforced")
	}
}
