package response

import (
	"repro/internal/bounds"
	"repro/internal/model"
	"repro/internal/numeric"
)

// Options tune the analysis.
type Options struct {
	// MaxCandidates caps the number of examined release offsets per task
	// (0 = 1<<22). Exceeding the cap aborts with ok == false rather than
	// silently truncating the search.
	MaxCandidates int64
}

func (o Options) maxCandidates() int64 {
	if o.MaxCandidates == 0 {
		return 1 << 22
	}
	return o.MaxCandidates
}

// fixpointCap bounds the busy period iterations per offset; deadline busy
// periods of feasible sets converge in a handful of steps.
const fixpointCap = 100000

// WCRT returns the worst-case response time of task i in the set under
// preemptive EDF, using Spuri's deadline busy period analysis. ok is false
// when the analysis does not apply (U > 1, no synchronous busy period) or
// a resource cap was hit.
func WCRT(ts model.TaskSet, i int, opt Options) (int64, bool) {
	if ts.OverUtilized() {
		return 0, false
	}
	l, okL := bounds.BusyPeriod(ts)
	if !okL {
		return 0, false
	}
	return wcrtWithin(ts, i, l, opt)
}

// wcrtWithin runs the offset search for task i with busy period length l.
func wcrtWithin(ts model.TaskSet, i int, l int64, opt Options) (int64, bool) {
	ti := ts[i]
	best := ti.WCET // a = 0 lower bound: the job alone
	var examined int64
	for j := range ts {
		tj := ts[j]
		// Offsets aligning the analyzed deadline with the k-th deadline
		// of task j: a = k*Tj + Dj - Di >= 0, a < l.
		for k := int64(0); ; k++ {
			span, ok := numeric.MulChecked(k, tj.Period)
			if !ok {
				return 0, false
			}
			a := span + tj.Deadline - ti.Deadline
			if a >= l {
				break
			}
			if a < 0 {
				continue
			}
			examined++
			if examined > opt.maxCandidates() {
				return 0, false
			}
			r, ok := responseAt(ts, i, a)
			if !ok {
				return 0, false
			}
			best = max(best, r)
			if tj.Period == 0 { // defensive; validated tasks have T > 0
				break
			}
		}
	}
	return best, true
}

// responseAt returns the response time of the job of task i released at
// offset a into a deadline busy period (all other tasks synchronous at 0,
// earlier jobs of i packed as densely as possible).
func responseAt(ts model.TaskSet, i int, a int64) (int64, bool) {
	ti := ts[i]
	d := a + ti.Deadline // absolute deadline of the analyzed job
	// Demand of task i itself: jobs released at a, a-Ti, a-2Ti, ...
	own := (a/ti.Period + 1) * ti.WCET

	// Fixpoint L = own + Σ_j min(ceil(L/Tj), η_j(d))·Cj.
	t := own
	for range fixpointCap {
		var next int64 = own
		for j := range ts {
			if j == i {
				continue
			}
			tj := ts[j]
			if d < tj.Deadline {
				continue
			}
			eta := (d-tj.Deadline)/tj.Period + 1      // jobs with deadline <= d
			released := numeric.CeilDiv(t, tj.Period) // jobs released before t
			next += min(eta, released) * tj.WCET
		}
		if next == t {
			return max(ti.WCET, t-a), true
		}
		t = next
	}
	return 0, false
}

// All returns the worst-case response time of every task, or ok == false
// if the analysis does not apply to the set.
func All(ts model.TaskSet, opt Options) ([]int64, bool) {
	if ts.OverUtilized() {
		return nil, false
	}
	l, okL := bounds.BusyPeriod(ts)
	if !okL {
		return nil, false
	}
	out := make([]int64, len(ts))
	for i := range ts {
		r, ok := wcrtWithin(ts, i, l, opt)
		if !ok {
			return nil, false
		}
		out[i] = r
	}
	return out, true
}

// Feasible reports EDF feasibility through the response-time lens:
// feasible iff every task's worst-case response time is within its
// relative deadline. It is an independent exactness oracle for the
// feasibility tests of internal/core.
func Feasible(ts model.TaskSet, opt Options) (feasible, ok bool) {
	if ts.OverUtilized() {
		return false, true
	}
	rts, okAll := All(ts, opt)
	if !okAll {
		return false, false
	}
	for i, r := range rts {
		if r > ts[i].Deadline {
			return false, true
		}
	}
	return true, true
}
