// Package response computes worst-case response times for sporadic tasks
// under preemptive EDF with Spuri's deadline-busy-period analysis (M.
// Spuri, "Analysis of Deadline Scheduled Real-Time Systems", and George,
// Rivierre, Spuri, RR-2966 — reference [10] of the paper; the method is
// also the backbone of reference [14], the Stankovic/Spuri/Ramamritham/
// Buttazzo book the paper draws its background from).
//
// For a task i, the worst-case response time is found by examining
// deadline busy periods: every other task is released synchronously at
// time zero, the analyzed job of task i is released at offset a (with
// earlier jobs of i packed as densely as possible), and only jobs with
// absolute deadlines no later than a+Di compete. The candidate offsets are
// finitely many — those aligning the analyzed deadline with another job's
// deadline — and each yields a fixpoint equation for the busy period
// length.
//
// The analysis is exact for sporadic task sets, which gives this
// repository a second, independent exactness oracle: a set is feasible if
// and only if every task's worst-case response time is within its
// deadline. A test pins the equivalence against the feasibility tests of
// internal/core on thousands of random sets.
package response
