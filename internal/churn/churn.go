// Package churn generates long propose/commit/rollback scenario streams
// for session admission control. A Scenario is a committed seed workload
// plus an ordered op list; replaying it against a session — in-process
// through service.Admission or over the wire through the edfd client —
// exercises exactly the state machine the incremental analysis fast path
// optimizes: long runs of cheap proposals punctuated by commits and
// rollbacks. The JSON form is stable, so `edfgen -churn` output feeds
// both the bench suite and the smoke harness.
package churn

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/eventstream"
	"repro/internal/model"
	"repro/internal/taskgen"
	"repro/internal/workload"
)

// Op kinds. Propose carries a task; commit and rollback carry none.
const (
	OpPropose  = "propose"
	OpCommit   = "commit"
	OpRollback = "rollback"
)

// Op is one step of a scenario.
type Op struct {
	Op string `json:"op"`
	// Task is the proposed task; nil for commit and rollback ops.
	Task *workload.Task `json:"task,omitempty"`
}

// Scenario is a replayable session history: a seed workload the session
// opens with (already committed) and the op stream driven against it.
type Scenario struct {
	Name string            `json:"name"`
	Seed workload.Workload `json:"seed"`
	Ops  []Op              `json:"ops"`
}

// Config shapes a generated scenario. The seed fields mirror the task
// generator; the op fields control the churn mix.
type Config struct {
	// SeedTasks is the committed baseline size (> 0).
	SeedTasks int
	// Ops is the total number of ops to emit (> 0).
	Ops int
	// Events selects the event-stream workload model.
	Events bool
	// Utilization is the seed's target utilization in (0, 1); proposals
	// spend part of the remaining headroom. Default 0.6.
	Utilization float64
	// PeriodMin and PeriodMax bound the seed periods. Defaults 1000 and
	// 100000.
	PeriodMin, PeriodMax int64
	// LogUniformPeriods draws seed periods log-uniformly.
	LogUniformPeriods bool
	// GapMean is the seed's average relative deadline gap. Default 0.2.
	GapMean float64
	// CommitFrac and RollbackFrac are the per-op probabilities of a
	// commit or rollback (the rest are proposals). Defaults 0.1 each.
	CommitFrac, RollbackFrac float64
	// TightFrac is the fraction of proposals that are deliberately tight
	// (short deadline relative to demand), forcing certificate failures
	// and analyzer escalations. Default 0.2.
	TightFrac float64
}

func (c Config) withDefaults() Config {
	if c.Utilization == 0 {
		c.Utilization = 0.6
	}
	if c.PeriodMin == 0 {
		c.PeriodMin = 1000
	}
	if c.PeriodMax == 0 {
		c.PeriodMax = 100000
	}
	if c.GapMean == 0 {
		c.GapMean = 0.2
	}
	if c.CommitFrac == 0 {
		c.CommitFrac = 0.1
	}
	if c.RollbackFrac == 0 {
		c.RollbackFrac = 0.1
	}
	if c.TightFrac == 0 {
		c.TightFrac = 0.2
	}
	return c
}

// Validate reports the first configuration problem.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.SeedTasks <= 0:
		return fmt.Errorf("churn: SeedTasks must be positive, got %d", c.SeedTasks)
	case c.Ops <= 0:
		return fmt.Errorf("churn: Ops must be positive, got %d", c.Ops)
	case c.Utilization <= 0 || c.Utilization >= 1:
		return fmt.Errorf("churn: Utilization must be in (0, 1), got %g", c.Utilization)
	case c.CommitFrac < 0 || c.RollbackFrac < 0 || c.CommitFrac+c.RollbackFrac >= 1:
		return fmt.Errorf("churn: CommitFrac+RollbackFrac must stay below 1, got %g+%g",
			c.CommitFrac, c.RollbackFrac)
	case c.TightFrac < 0 || c.TightFrac > 1:
		return fmt.Errorf("churn: TightFrac must be in [0, 1], got %g", c.TightFrac)
	}
	return nil
}

// Generate builds a deterministic scenario from cfg and rng: a feasible
// seed workload at the target utilization, then an op stream whose
// proposals are mostly light tasks (the incremental fast path's bread
// and butter) with a tight minority that forces escalations, broken up
// by commits and rollbacks.
func Generate(name string, cfg Config, rng *rand.Rand) (Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return Scenario{}, err
	}
	cfg = cfg.withDefaults()
	ts, err := taskgen.New(taskgen.Config{
		N: cfg.SeedTasks, Utilization: cfg.Utilization,
		PeriodMin: cfg.PeriodMin, PeriodMax: cfg.PeriodMax,
		LogUniformPeriods: cfg.LogUniformPeriods,
		GapMean:           cfg.GapMean,
	}, rng)
	if err != nil {
		return Scenario{}, err
	}
	sc := Scenario{Name: name, Seed: seedWorkload(ts, cfg.Events), Ops: make([]Op, 0, cfg.Ops)}
	for len(sc.Ops) < cfg.Ops {
		switch r := rng.Float64(); {
		case r < cfg.CommitFrac:
			sc.Ops = append(sc.Ops, Op{Op: OpCommit})
		case r < cfg.CommitFrac+cfg.RollbackFrac:
			sc.Ops = append(sc.Ops, Op{Op: OpRollback})
		default:
			t := proposal(cfg, rng)
			sc.Ops = append(sc.Ops, Op{Op: OpPropose, Task: &t})
		}
	}
	return sc, nil
}

// seedWorkload wraps the generated set in the requested model; in events
// mode each task becomes a strictly periodic stream, the direct analogue
// of its sporadic form.
func seedWorkload(ts model.TaskSet, events bool) workload.Workload {
	if !events {
		return workload.NewSporadic(ts)
	}
	ets := make([]eventstream.Task, len(ts))
	for i, t := range ts {
		ets[i] = eventstream.Task{
			Name: t.Name, WCET: t.WCET, Deadline: t.Deadline,
			Stream: eventstream.Periodic(t.Period),
		}
	}
	return workload.NewEvents(ets)
}

// proposal draws one candidate task. Light tasks use a tiny WCET over a
// long period and a comfortable deadline, so a healthy session admits
// them on the certificate alone. Tight tasks come in two flavors, split
// evenly: heavy ones whose utilization alone overflows the session (the
// cheap gate rejects them before any analysis), and short-deadline ones
// whose utilization is harmless but whose deadline window is half WCET —
// the incremental certificate cannot vouch for those, so the full
// analyzer must decide. Both keep the replayed session from drifting to
// saturation over long streams while exercising every decision path.
func proposal(cfg Config, rng *rand.Rand) workload.Task {
	period := cfg.PeriodMin +
		rng.Int63n(cfg.PeriodMax-cfg.PeriodMin+1)
	var c, d int64
	switch r := rng.Float64(); {
	case r < cfg.TightFrac/2: // heavy: dies at the utilization gate
		c = period/2 + rng.Int63n(period/4+1)
		d = c + rng.Int63n(c/8+1)
	case r < cfg.TightFrac: // tight deadline: forces an escalation
		d = max(period/16, 2)
		c = d/2 + rng.Int63n(d/4+1)
	default:
		c = 1 + rng.Int63n(max(period/1000, 1))
		d = period/2 + rng.Int63n(period/2+1)
	}
	if cfg.Events {
		return workload.EventTask(eventstream.Task{
			WCET: c, Deadline: d, Stream: eventstream.Periodic(period),
		})
	}
	return workload.SporadicTask(model.Task{WCET: c, Deadline: d, Period: period})
}

// Validate checks a scenario (typically one read from JSON) for replay:
// a valid seed, known op kinds, proposals carrying a task of the seed's
// model, and bare commit/rollback ops.
func (s Scenario) Validate() error {
	if err := s.Seed.Validate(); err != nil {
		return fmt.Errorf("churn: seed: %w", err)
	}
	for i, op := range s.Ops {
		switch op.Op {
		case OpPropose:
			if op.Task == nil {
				return fmt.Errorf("churn: op %d: propose without a task", i)
			}
			if err := op.Task.Validate(); err != nil {
				return fmt.Errorf("churn: op %d: %w", i, err)
			}
			if op.Task.Kind() != s.Seed.Kind() {
				return fmt.Errorf("churn: op %d: %s task in a %s scenario",
					i, op.Task.Kind(), s.Seed.Kind())
			}
		case OpCommit, OpRollback:
			if op.Task != nil {
				return fmt.Errorf("churn: op %d: %s carries a task", i, op.Op)
			}
		default:
			return fmt.Errorf("churn: op %d: unknown op %q", i, op.Op)
		}
	}
	return nil
}

// WriteJSON writes the scenario as indented JSON.
func (s Scenario) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Read parses and validates a scenario from JSON.
func Read(r io.Reader) (Scenario, error) {
	var s Scenario
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("churn: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}
