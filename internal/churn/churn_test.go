package churn

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/service"
	"repro/internal/workload"
)

// TestGenerateDeterministic pins the contract edfgen relies on: the same
// seed yields byte-identical JSON, for both models.
func TestGenerateDeterministic(t *testing.T) {
	for _, events := range []bool{false, true} {
		cfg := Config{SeedTasks: 8, Ops: 200, Events: events}
		var a, b bytes.Buffer
		s1, err := Generate("x", cfg, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Generate("x", cfg, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		if err := s1.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := s2.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("events=%v: same seed produced different scenarios", events)
		}
	}
}

// TestGenerateRoundTrip checks generated scenarios validate, survive a
// JSON round trip, and contain a sane op mix.
func TestGenerateRoundTrip(t *testing.T) {
	for _, events := range []bool{false, true} {
		sc, err := Generate("rt", Config{SeedTasks: 6, Ops: 400, Events: events},
			rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("events=%v: generated scenario invalid: %v", events, err)
		}
		var buf bytes.Buffer
		if err := sc.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("events=%v: round trip: %v", events, err)
		}
		if len(back.Ops) != len(sc.Ops) || back.Name != sc.Name {
			t.Fatalf("events=%v: round trip lost ops or name", events)
		}
		counts := map[string]int{}
		for _, op := range back.Ops {
			counts[op.Op]++
		}
		if counts[OpPropose] == 0 || counts[OpCommit] == 0 || counts[OpRollback] == 0 {
			t.Errorf("events=%v: degenerate op mix %v", events, counts)
		}
		wantKind := workload.Sporadic
		if events {
			wantKind = workload.Events
		}
		if back.Seed.Kind() != wantKind {
			t.Errorf("events=%v: seed model %s", events, back.Seed.Kind())
		}
	}
}

// TestReplayAgainstAdmission replays a scenario through a real session
// controller: the seed must open, every op must apply without transport
// or state errors, and the stream must exercise both decision paths —
// the realism property the bench suite depends on.
func TestReplayAgainstAdmission(t *testing.T) {
	for _, events := range []bool{false, true} {
		sc, err := Generate("replay", Config{SeedTasks: 10, Ops: 500, Events: events},
			rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		adm, err := service.NewAdmission(service.AdmissionConfig{Seed: sc.Seed})
		if err != nil {
			t.Fatalf("events=%v: seed rejected: %v", events, err)
		}
		admitted, rejected := 0, 0
		for i, op := range sc.Ops {
			switch op.Op {
			case OpPropose:
				out, err := adm.ProposeTask(*op.Task)
				if err != nil {
					t.Fatalf("events=%v: op %d: %v", events, i, err)
				}
				if out.Admitted {
					admitted++
				} else {
					rejected++
				}
			case OpCommit:
				adm.Commit()
			case OpRollback:
				adm.Rollback()
			}
		}
		if admitted == 0 || rejected == 0 {
			t.Errorf("events=%v: unrealistic scenario: %d admitted, %d rejected",
				events, admitted, rejected)
		}
		// The op stream must light up both decision paths, or the benches
		// replaying it would measure only one of them.
		if st := adm.Stats(); st.FastAccepts == 0 || st.Escalations == 0 {
			t.Errorf("events=%v: decision paths not both exercised: %+v", events, st)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	sc, err := Generate("v", Config{SeedTasks: 4, Ops: 20}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	bad := sc
	bad.Ops = append([]Op{{Op: "reanalyze"}}, sc.Ops...)
	if err := bad.Validate(); err == nil {
		t.Error("unknown op accepted")
	}
	bad = sc
	bad.Ops = append([]Op{{Op: OpPropose}}, sc.Ops...)
	if err := bad.Validate(); err == nil {
		t.Error("propose without task accepted")
	}
	if err := (Config{SeedTasks: 0, Ops: 5}).Validate(); err == nil {
		t.Error("zero seed tasks accepted")
	}
	if err := (Config{SeedTasks: 5, Ops: 5, CommitFrac: 0.6, RollbackFrac: 0.5}).Validate(); err == nil {
		t.Error("commit+rollback >= 1 accepted")
	}
}
