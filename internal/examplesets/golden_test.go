package examplesets

import (
	"testing"

	"repro/internal/core"
)

// TestTable1Golden pins the exact iteration counts of the reproduced
// Table 1 so behavioural drift in any algorithm is caught immediately.
// The relationships (who fails, who is cheapest) are asserted separately
// in TestTable1Shape; this test freezes the concrete numbers reported in
// EXPERIMENTS.md.
func TestTable1Golden(t *testing.T) {
	type row struct {
		deviOK             bool
		devi, dyn, all, pd int64
		dynRev, allRev     int64
	}
	golden := map[string]row{
		"burns":    {deviOK: true, devi: 14, dyn: 14, all: 14, pd: 100},
		"mashin":   {deviOK: false, devi: 3, dyn: 27, all: 27, pd: 150, dynRev: 4, allRev: 17},
		"gap":      {deviOK: true, devi: 17, dyn: 17, all: 17, pd: 103},
		"gresser1": {deviOK: false, devi: 12, dyn: 16, all: 20, pd: 172, dynRev: 3, allRev: 8},
		"gresser2": {deviOK: false, devi: 21, dyn: 28, all: 26, pd: 143, dynRev: 6, allRev: 5},
	}
	for _, ex := range All() {
		want, ok := golden[ex.Name]
		if !ok {
			t.Fatalf("no golden row for %s", ex.Name)
		}
		devi := core.Devi(ex.Set)
		dyn := core.DynamicError(ex.Set, core.Options{})
		all := core.AllApprox(ex.Set, core.Options{})
		pd := core.ProcessorDemand(ex.Set, core.Options{})
		got := row{
			deviOK: devi.Verdict == core.Feasible,
			devi:   devi.Iterations,
			dyn:    dyn.Iterations, dynRev: dyn.Revisions,
			all: all.Iterations, allRev: all.Revisions,
			pd: pd.Iterations,
		}
		if got != want {
			t.Errorf("%s: %+v, want %+v", ex.Name, got, want)
		}
	}
}
