// Package examplesets provides the five literature task sets of the
// paper's Table 1 ("Iterations for example task graphs"): Burns, the
// modified Ma & Shin set, the Generic Avionics Platform (GAP), and the two
// Gresser sets.
//
// Substitution note (see DESIGN.md): the exact Burns and Ma & Shin
// parameters live in Albers & Slomka (ECRTS 2004) and the Gresser sets in
// Gresser's German dissertation, none of which are retrievable offline.
// GAP is reconstructed from the public Locke/Vogel/Mesler case study in a
// constrained-deadline variant; the other sets are documented surrogates
// engineered to reproduce the structural facts Table 1 reports:
//
//   - 7 to 21 tasks per set, deadlines at or below periods;
//   - Devi's test accepts Burns and GAP but FAILS Ma & Shin and both
//     Gresser sets although they are feasible;
//   - the processor demand test needs one to two orders of magnitude more
//     test intervals than the dynamic and all-approximated tests.
//
// A regression test pins these relationships.
package examplesets
