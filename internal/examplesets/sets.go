package examplesets

import "repro/internal/model"

// Example is a named literature task set.
type Example struct {
	// Name is the short identifier used by Table 1 and the CLI.
	Name string
	// Description states origin and substitution status.
	Description string
	// DeviAccepts records whether the paper's Table 1 lists Devi's test as
	// accepting (true) or FAILED (false).
	DeviAccepts bool
	// Set is the task set.
	Set model.TaskSet
}

// Burns is the task set attributed to Burns in the paper's Table 1
// (surrogate, see package comment): 14 tasks, harmonic-ish periods, small
// deadline gaps and a very high utilization, so Devi's test accepts it and
// the processor demand test has to walk a long deadline ladder.
func Burns() Example {
	return Example{
		Name:        "burns",
		Description: "Burns set (surrogate): 14 tasks, U≈0.99, Devi accepts",
		DeviAccepts: true,
		Set: model.TaskSet{
			{Name: "b01", WCET: 2, Deadline: 10, Period: 10},
			{Name: "b02", WCET: 3, Deadline: 19, Period: 20},
			{Name: "b03", WCET: 4, Deadline: 29, Period: 30},
			{Name: "b04", WCET: 5, Deadline: 50, Period: 50},
			{Name: "b05", WCET: 6, Deadline: 78, Period: 80},
			{Name: "b06", WCET: 7, Deadline: 99, Period: 100},
			{Name: "b07", WCET: 8, Deadline: 158, Period: 160},
			{Name: "b08", WCET: 9, Deadline: 198, Period: 200},
			{Name: "b09", WCET: 10, Deadline: 248, Period: 250},
			{Name: "b10", WCET: 12, Deadline: 350, Period: 400},
			{Name: "b11", WCET: 14, Deadline: 450, Period: 500},
			{Name: "b12", WCET: 16, Deadline: 700, Period: 800},
			{Name: "b13", WCET: 18, Deadline: 900, Period: 1000},
			{Name: "b14", WCET: 40, Deadline: 1800, Period: 2000},
		},
	}
}

// MaShin is the modified Ma & Shin set of Table 1 (surrogate): 10 tasks
// whose two heavy tasks have deadlines far below their periods, so the
// SuperPos(1) overestimation makes Devi's test fail although the set is
// feasible.
func MaShin() Example {
	return Example{
		Name:        "mashin",
		Description: "Ma & Shin modified set (surrogate): 10 tasks, Devi FAILS, feasible",
		DeviAccepts: false,
		Set: model.TaskSet{
			{Name: "m01", WCET: 1, Deadline: 5, Period: 5},
			{Name: "m02", WCET: 2, Deadline: 2, Period: 16},
			{Name: "m03", WCET: 4, Deadline: 8, Period: 16},
			{Name: "m04", WCET: 3, Deadline: 40, Period: 40},
			{Name: "m05", WCET: 4, Deadline: 50, Period: 50},
			{Name: "m06", WCET: 5, Deadline: 60, Period: 60},
			{Name: "m07", WCET: 5, Deadline: 80, Period: 80},
			{Name: "m08", WCET: 6, Deadline: 100, Period: 100},
			{Name: "m09", WCET: 5, Deadline: 120, Period: 120},
			{Name: "m10", WCET: 3, Deadline: 200, Period: 200},
		},
	}
}

// GAP is the Generic Avionics Platform of Locke, Vogel and Mesler (RTSS'91)
// in the constrained-deadline variant, 17 tasks on a microsecond scale
// (milliseconds x 1000; the 1 ms timer interrupt costs 51 us).
func GAP() Example {
	return Example{
		Name:        "gap",
		Description: "Generic Avionics Platform: 17 tasks, microseconds, Devi accepts",
		DeviAccepts: true,
		Set: model.TaskSet{
			{Name: "timer_interrupt", WCET: 51, Deadline: 1000, Period: 1000},
			{Name: "weapon_release", WCET: 3000, Deadline: 5000, Period: 200000},
			{Name: "radar_tracking", WCET: 2000, Deadline: 25000, Period: 25000},
			{Name: "rwr_contact", WCET: 5000, Deadline: 20000, Period: 25000},
			{Name: "bus_poll", WCET: 1000, Deadline: 40000, Period: 40000},
			{Name: "weapon_aim", WCET: 3000, Deadline: 50000, Period: 50000},
			{Name: "radar_target", WCET: 5000, Deadline: 40000, Period: 50000},
			{Name: "nav_update", WCET: 8000, Deadline: 40000, Period: 59000},
			{Name: "display_graphic", WCET: 9000, Deadline: 60000, Period: 80000},
			{Name: "display_hook", WCET: 2000, Deadline: 80000, Period: 80000},
			{Name: "tracking_target", WCET: 5000, Deadline: 80000, Period: 100000},
			{Name: "nav_steering", WCET: 3000, Deadline: 200000, Period: 200000},
			{Name: "display_stores", WCET: 1000, Deadline: 200000, Period: 200000},
			{Name: "display_keyset", WCET: 1000, Deadline: 200000, Period: 200000},
			{Name: "display_status", WCET: 3000, Deadline: 200000, Period: 200000},
			{Name: "bet_status", WCET: 1000, Deadline: 1000000, Period: 1000000},
			{Name: "nav_status", WCET: 1000, Deadline: 1000000, Period: 1000000},
		},
	}
}

// Gresser1 is the first Gresser set of Table 1 (surrogate): 12 tasks with
// several tight-deadline heavy tasks; Devi fails, the exact tests accept.
func Gresser1() Example {
	return Example{
		Name:        "gresser1",
		Description: "Gresser set 1 (surrogate): 12 tasks, Devi FAILS, feasible",
		DeviAccepts: false,
		Set: model.TaskSet{
			{Name: "g01", WCET: 1, Deadline: 4, Period: 4},
			{Name: "g02", WCET: 2, Deadline: 10, Period: 10},
			{Name: "g03", WCET: 3, Deadline: 20, Period: 20},
			{Name: "g04", WCET: 2, Deadline: 25, Period: 25},
			{Name: "g05", WCET: 6, Deadline: 50, Period: 50},
			{Name: "g06", WCET: 2, Deadline: 80, Period: 80},
			{Name: "g07", WCET: 6, Deadline: 100, Period: 100},
			{Name: "g08", WCET: 4, Deadline: 200, Period: 200},
			{Name: "g09", WCET: 5, Deadline: 250, Period: 250},
			{Name: "g10", WCET: 6, Deadline: 300, Period: 300},
			{Name: "g11", WCET: 12, Deadline: 280, Period: 2800},
			{Name: "g12", WCET: 16, Deadline: 420, Period: 4200},
		},
	}
}

// Gresser2 is the second Gresser set of Table 1 (surrogate): 21 tasks,
// bursty shape (tight deadlines on medium-period tasks); Devi fails, the
// exact tests accept.
func Gresser2() Example {
	return Example{
		Name:        "gresser2",
		Description: "Gresser set 2 (surrogate): 21 tasks, Devi FAILS, feasible",
		DeviAccepts: false,
		Set: model.TaskSet{
			{Name: "h01", WCET: 1, Deadline: 4, Period: 4},
			{Name: "h02", WCET: 2, Deadline: 10, Period: 10},
			{Name: "h03", WCET: 3, Deadline: 20, Period: 20},
			{Name: "h04", WCET: 2, Deadline: 25, Period: 25},
			{Name: "h05", WCET: 4, Deadline: 50, Period: 50},
			{Name: "h06", WCET: 2, Deadline: 80, Period: 80},
			{Name: "h07", WCET: 4, Deadline: 100, Period: 100},
			{Name: "h08", WCET: 4, Deadline: 200, Period: 200},
			{Name: "h09", WCET: 5, Deadline: 250, Period: 250},
			{Name: "h10", WCET: 6, Deadline: 300, Period: 300},
			{Name: "h11", WCET: 1, Deadline: 110, Period: 110},
			{Name: "h12", WCET: 1, Deadline: 130, Period: 130},
			{Name: "h13", WCET: 1, Deadline: 150, Period: 150},
			{Name: "h14", WCET: 1, Deadline: 170, Period: 170},
			{Name: "h15", WCET: 1, Deadline: 190, Period: 190},
			{Name: "h16", WCET: 1, Deadline: 210, Period: 210},
			{Name: "h17", WCET: 1, Deadline: 230, Period: 230},
			{Name: "h18", WCET: 1, Deadline: 260, Period: 260},
			{Name: "h19", WCET: 1, Deadline: 310, Period: 310},
			{Name: "h20", WCET: 12, Deadline: 280, Period: 2800},
			{Name: "h21", WCET: 16, Deadline: 420, Period: 4200},
		},
	}
}

// All returns every example in Table 1 order.
func All() []Example {
	return []Example{Burns(), MaShin(), GAP(), Gresser1(), Gresser2()}
}

// ByName returns the example with the given name.
func ByName(name string) (Example, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Example{}, false
}
