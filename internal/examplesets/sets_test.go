package examplesets

import (
	"testing"

	"repro/internal/core"
)

// TestTable1Shape pins the structural facts of the paper's Table 1 on the
// (surrogate) literature sets: Devi's verdict per set, feasibility of every
// set, iteration ordering between the tests, and — where Devi accepts —
// equality of the new tests' effort with Devi's (they then run entirely on
// level SuperPos(1)).
func TestTable1Shape(t *testing.T) {
	for _, ex := range All() {
		ex := ex
		t.Run(ex.Name, func(t *testing.T) {
			if err := ex.Set.Validate(); err != nil {
				t.Fatalf("invalid set: %v", err)
			}
			if u := ex.Set.UtilizationFloat(); u > 1 {
				t.Fatalf("over-utilized: U=%f", u)
			}
			devi := core.Devi(ex.Set)
			dyn := core.DynamicError(ex.Set, core.Options{})
			all := core.AllApprox(ex.Set, core.Options{})
			pd := core.ProcessorDemand(ex.Set, core.Options{})
			t.Logf("U=%.4f n=%d | Devi=%v/%d Dyn=%v/%d All=%v/%d PD=%v/%d fail@%d bound=%d",
				ex.Set.UtilizationFloat(), len(ex.Set),
				devi.Verdict, devi.Iterations, dyn.Verdict, dyn.Iterations,
				all.Verdict, all.Iterations, pd.Verdict, pd.Iterations,
				pd.FailureInterval, pd.Bound)

			if pd.Verdict != core.Feasible {
				t.Errorf("processor demand verdict %v, want feasible", pd.Verdict)
			}
			if dyn.Verdict != core.Feasible || all.Verdict != core.Feasible {
				t.Errorf("new tests verdicts dyn=%v all=%v, want feasible", dyn.Verdict, all.Verdict)
			}
			if got := devi.Verdict == core.Feasible; got != ex.DeviAccepts {
				t.Errorf("Devi accepts=%v, want %v", got, ex.DeviAccepts)
			}
			if ex.DeviAccepts {
				// Accepted by Devi: the new tests run on level 1 and check
				// exactly one interval per task, like Devi.
				if dyn.Iterations != devi.Iterations || all.Iterations != devi.Iterations {
					t.Errorf("iterations devi=%d dyn=%d all=%d, want equal",
						devi.Iterations, dyn.Iterations, all.Iterations)
				}
			}
			// The headline of Table 1: PD needs several times more
			// intervals than either new test.
			if pd.Iterations < 5*all.Iterations {
				t.Errorf("PD=%d < 5x AllApprox=%d: surrogate set too easy",
					pd.Iterations, all.Iterations)
			}
			if pd.Iterations < 2*dyn.Iterations {
				t.Errorf("PD=%d < 2x Dynamic=%d: surrogate set too easy",
					pd.Iterations, dyn.Iterations)
			}
		})
	}
}
