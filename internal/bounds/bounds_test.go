package bounds

import (
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/model"
)

func randomConstrainedSet(rng *rand.Rand, n int, maxT int64) model.TaskSet {
	ts := make(model.TaskSet, 0, n)
	for range n {
		T := 2 + rng.Int63n(maxT-1)
		C := 1 + rng.Int63n(T)
		D := C + rng.Int63n(T-C+1)
		ts = append(ts, model.Task{WCET: C, Deadline: D, Period: T})
	}
	return ts
}

// TestBoundsCoverViolations is the soundness property: for any set, every
// interval with dbf(I) > I must lie strictly below each applicable bound.
func TestBoundsCoverViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for range 2000 {
		ts := randomConstrainedSet(rng, 1+rng.Intn(5), 20)
		if ts.Utilization().Cmp(refOne) >= 0 {
			continue
		}
		srcs := demand.FromTasks(ts)
		// Find the first and the largest violation within a generous
		// horizon.
		horizon := int64(3000)
		first, worst := int64(-1), int64(-1)
		for I := int64(1); I <= horizon; I++ {
			if demand.Dbf(srcs, I) > I {
				if first < 0 {
					first = I
				}
				worst = I
			}
		}
		// Baruah, George and superposition cover EVERY violation interval.
		check := func(name string, b int64, ok bool) {
			if !ok {
				return
			}
			if worst >= 0 && worst >= b {
				t.Fatalf("%s bound %d misses violation at %d for %v", name, b, worst, ts)
			}
		}
		b, ok := Baruah(ts)
		check("baruah", b, ok)
		b, ok = GeorgeTasks(ts)
		check("george", b, ok)
		b, ok = SuperpositionTasks(ts)
		check("superposition", b, ok)
		// The busy period covers only the FIRST violation (George et al.:
		// if the set is infeasible, a deadline is missed within the first
		// synchronous busy period).
		if l, ok := BusyPeriod(ts); ok && first >= 0 && first > l {
			t.Fatalf("busy period %d misses first violation at %d for %v", l, first, ts)
		}
	}
}

// TestSuperpositionNotAboveGeorge verifies the paper's Section 4.3 claim:
// the superposition bound is at most George's bound whenever both exist and
// the superposition bound exceeds the largest deadline.
func TestSuperpositionNotAboveGeorge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for range 3000 {
		ts := randomConstrainedSet(rng, 1+rng.Intn(6), 50)
		if ts.Utilization().Cmp(refOne) >= 0 {
			continue
		}
		g, okG := GeorgeTasks(ts)
		s, okS := SuperpositionTasks(ts)
		if !okG || !okS {
			continue
		}
		if s > g && s > ts.MaxDeadline() {
			t.Fatalf("superposition %d > george %d for %v", s, g, ts)
		}
	}
}

func TestBaruahRequiresConstrained(t *testing.T) {
	ts := model.TaskSet{{WCET: 1, Deadline: 12, Period: 10}}
	if _, ok := Baruah(ts); ok {
		t.Error("Baruah accepted an unconstrained set")
	}
}

func TestBaruahZeroForImplicit(t *testing.T) {
	ts := model.TaskSet{{WCET: 1, Deadline: 10, Period: 10}}
	b, ok := Baruah(ts)
	if !ok || b != 0 {
		t.Errorf("Baruah = %d,%v, want 0,true (no violation possible)", b, ok)
	}
}

func TestBoundsRejectOverUtilization(t *testing.T) {
	ts := model.TaskSet{{WCET: 3, Deadline: 2, Period: 2}}
	if _, ok := Baruah(ts); ok {
		t.Error("Baruah accepted U>1")
	}
	if _, ok := GeorgeTasks(ts); ok {
		t.Error("George accepted U>1")
	}
	if _, ok := SuperpositionTasks(ts); ok {
		t.Error("Superposition accepted U>1")
	}
}

func TestBusyPeriodKnownValues(t *testing.T) {
	// Single task: busy period = C.
	ts := model.TaskSet{{WCET: 3, Deadline: 10, Period: 10}}
	if l, ok := BusyPeriod(ts); !ok || l != 3 {
		t.Errorf("busy period = %d,%v, want 3", l, ok)
	}
	// Two tasks C=2,T=4 and C=2,T=6: L0=4, L1=2*2+2=6, L2=2*ceil(6/4)+2*1... iterate:
	// L=4: ceil(4/4)*2 + ceil(4/6)*2 = 2+2=4 -> fixpoint 4.
	ts = model.TaskSet{
		{WCET: 2, Deadline: 4, Period: 4},
		{WCET: 2, Deadline: 6, Period: 6},
	}
	if l, ok := BusyPeriod(ts); !ok || l != 4 {
		t.Errorf("busy period = %d,%v, want 4", l, ok)
	}
	// Full utilization can still close exactly at the hyperperiod scale.
	ts = model.TaskSet{{WCET: 2, Deadline: 2, Period: 2}}
	if l, ok := BusyPeriod(ts); !ok || l != 2 {
		t.Errorf("busy period = %d,%v, want 2,true", l, ok)
	}
	// Over-utilization diverges and must hit the iteration cap.
	ts = model.TaskSet{{WCET: 3, Deadline: 2, Period: 2}}
	if _, ok := BusyPeriod(ts); ok {
		t.Error("busy period converged at U>1")
	}
}

func TestHyperperiod(t *testing.T) {
	ts := model.TaskSet{
		{WCET: 1, Deadline: 4, Period: 4},
		{WCET: 1, Deadline: 6, Period: 6},
		{WCET: 1, Deadline: 10, Period: 10},
	}
	if h, ok := Hyperperiod(ts); !ok || h != 60 {
		t.Errorf("hyperperiod = %d,%v, want 60", h, ok)
	}
	huge := model.TaskSet{
		{WCET: 1, Deadline: 1 << 62, Period: 1 << 62},
		{WCET: 1, Deadline: (1 << 62) - 1, Period: (1 << 62) - 1},
	}
	if _, ok := Hyperperiod(huge); ok {
		t.Error("hyperperiod overflow not detected")
	}
}

func TestBestSelectsSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for range 500 {
		ts := randomConstrainedSet(rng, 1+rng.Intn(5), 30)
		u := ts.Utilization().Cmp(refOne)
		b, kind, ok := Best(ts)
		switch {
		case u > 0:
			if ok {
				t.Fatalf("Best accepted U>1: %v", ts)
			}
		case u == 0:
			if !ok || kind != KindHyperperiod {
				t.Fatalf("Best at U==1: %d %s %v", b, kind, ok)
			}
		default:
			if !ok {
				t.Fatalf("Best failed for U<1: %v", ts)
			}
			for name, f := range map[Kind]func(model.TaskSet) (int64, bool){
				KindBaruah:        Baruah,
				KindGeorge:        GeorgeTasks,
				KindSuperposition: SuperpositionTasks,
			} {
				if v, okV := f(ts); okV && v < b {
					t.Fatalf("Best=%d (%s) but %s=%d is smaller", b, kind, name, v)
				}
			}
		}
	}
}

func TestBestHyperperiodHorizonSound(t *testing.T) {
	// U == 1 set with a known miss: the hyperperiod horizon must cover it.
	ts := model.TaskSet{
		{WCET: 1, Deadline: 1, Period: 2},
		{WCET: 1, Deadline: 1, Period: 2},
	}
	b, kind, ok := Best(ts)
	if !ok || kind != KindHyperperiod {
		t.Fatalf("Best = %d %s %v", b, kind, ok)
	}
	srcs := demand.FromTasks(ts)
	found := false
	for I := int64(1); I < b; I++ {
		if demand.Dbf(srcs, I) > I {
			found = true
			break
		}
	}
	if !found {
		t.Error("violation not within hyperperiod horizon")
	}
}
