package bounds

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/model"
)

// The reference implementations below are the original math/big versions
// of the bound formulas, kept verbatim so the Fast-arithmetic rewrites
// can be property-checked for bit-identical results.

var refOne = big.NewRat(1, 1)

func refCeilRatInt64(r *big.Rat) (int64, bool) {
	if r.Sign() <= 0 {
		return 0, true
	}
	num := new(big.Int).Set(r.Num())
	den := r.Denom()
	num.Add(num, new(big.Int).Sub(den, big.NewInt(1)))
	q := num.Div(num, den)
	if !q.IsInt64() {
		return 0, false
	}
	return q.Int64(), true
}

func refGeorgeTerm(s demand.Source) *big.Rat {
	num, den := s.UtilRat()
	f := s.JobDeadline(1)
	t := new(big.Rat).Mul(big.NewRat(num, den), new(big.Rat).SetInt64(f))
	return t.Sub(new(big.Rat).SetInt64(s.WCET()), t)
}

func refGeorge(srcs []demand.Source) (int64, bool) {
	u := demand.Utilization(srcs)
	if u.Cmp(refOne) >= 0 {
		return 0, false
	}
	sum := new(big.Rat)
	for _, s := range srcs {
		if t := refGeorgeTerm(s); t.Sign() > 0 {
			sum.Add(sum, t)
		}
	}
	sum.Quo(sum, new(big.Rat).Sub(refOne, u))
	return refCeilRatInt64(sum)
}

func refSuperposition(srcs []demand.Source) (int64, bool) {
	u := demand.Utilization(srcs)
	if u.Cmp(refOne) >= 0 {
		return 0, false
	}
	sum := new(big.Rat)
	var dmax int64
	for _, s := range srcs {
		sum.Add(sum, refGeorgeTerm(s))
		dmax = max(dmax, s.JobDeadline(1))
	}
	sum.Quo(sum, new(big.Rat).Sub(refOne, u))
	b, ok := refCeilRatInt64(sum)
	if !ok {
		return 0, false
	}
	return max(b, dmax), true
}

func refBaruah(ts model.TaskSet) (int64, bool) {
	if !ts.Constrained() {
		return 0, false
	}
	u := ts.Utilization()
	if u.Cmp(refOne) >= 0 {
		return 0, false
	}
	var maxGap int64
	for _, t := range ts {
		maxGap = max(maxGap, t.Period-t.Deadline)
	}
	if maxGap == 0 {
		return 0, true
	}
	den := new(big.Rat).Sub(refOne, u)
	b := new(big.Rat).Quo(u, den)
	b.Mul(b, new(big.Rat).SetInt64(maxGap))
	return refCeilRatInt64(b)
}

// randomBoundSet draws a task set over the given period range, biased
// toward utilizations near (but sometimes above) 1.
func randomBoundSet(rng *rand.Rand, periodMax int64) model.TaskSet {
	n := rng.Intn(20) + 1
	ts := make(model.TaskSet, 0, n)
	for range n {
		t := rng.Int63n(periodMax-2) + 2
		c := rng.Int63n(max(t/int64(n), 1)) + 1
		d := c + rng.Int63n(t)
		ts = append(ts, model.Task{WCET: c, Deadline: d, Period: t})
	}
	return ts
}

// TestFastBoundsMatchReference property-checks the Fast-arithmetic bound
// computations against the original big.Rat formulas, over small, round
// and overflow-prone huge parameter ranges.
func TestFastBoundsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ranges := []int64{50, 100000, 1 << 40, 1 << 62}
	for i := range 600 {
		ts := randomBoundSet(rng, ranges[i%len(ranges)])
		srcs := demand.FromTasks(ts)
		if gb, gok := George(srcs); true {
			wb, wok := refGeorge(srcs)
			if gb != wb || gok != wok {
				t.Fatalf("George(%v) = (%d,%v), ref (%d,%v)", ts, gb, gok, wb, wok)
			}
		}
		if sb, sok := Superposition(srcs); true {
			wb, wok := refSuperposition(srcs)
			if sb != wb || sok != wok {
				t.Fatalf("Superposition(%v) = (%d,%v), ref (%d,%v)", ts, sb, sok, wb, wok)
			}
		}
		if bb, bok := Baruah(ts); true {
			wb, wok := refBaruah(ts)
			if bb != wb || bok != wok {
				t.Fatalf("Baruah(%v) = (%d,%v), ref (%d,%v)", ts, bb, bok, wb, wok)
			}
		}
		if gb, gok := GeorgeWithBlocking(srcs, rng.Int63n(1000)); gok {
			_ = gb // smoke: must not panic; exactness is covered via George's shared path
		}
		lg, lokG, ls, lokS := LinearBounds(srcs)
		gb, gok := George(srcs)
		sb, sok := Superposition(srcs)
		if lg != gb || lokG != gok || ls != sb || lokS != sok {
			t.Fatalf("LinearBounds(%v) = (%d,%v,%d,%v), want George (%d,%v) / Superposition (%d,%v)",
				ts, lg, lokG, ls, lokS, gb, gok, sb, sok)
		}
	}
}

// TestBestSourcesMatchesBest pins the scratch-oriented entry point to the
// classic one.
func TestBestSourcesMatchesBest(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for range 300 {
		ts := randomBoundSet(rng, 10000)
		b1, k1, ok1 := Best(ts)
		b2, k2, ok2 := BestSources(ts, demand.FromTasks(ts))
		if b1 != b2 || k1 != k2 || ok1 != ok2 {
			t.Fatalf("BestSources(%v) = (%d,%s,%v), Best (%d,%s,%v)", ts, b2, k2, ok2, b1, k1, ok1)
		}
	}
}
