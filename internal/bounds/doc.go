// Package bounds implements the feasibility bounds of Section 4.3 of the
// paper: the bound by Baruah et al. (part of the processor demand test,
// Definition 3), the tighter bound by George et al., the new superposition
// bound I_sup derived from the all-approximated test, the synchronous busy
// period, and the hyperperiod.
//
// Every bound B returned here is an exclusive upper limit on candidate
// violation intervals: if dbf(I, Γ) > I for some I, then I < B. A test that
// verifies dbf(I) <= I for all test intervals I < B may conclude
// feasibility. Bounds are computed in exact rational arithmetic and rounded
// up; a false ok return means the bound does not apply (for example U >= 1)
// or does not fit in int64.
package bounds
