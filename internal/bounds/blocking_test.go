package bounds

import (
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/model"
)

// TestGeorgeWithBlockingCoversViolations: every interval violating the
// blocking-reduced capacity dbf(I) > I - B(I), with B bounded by bmax,
// must lie below the widened bound.
func TestGeorgeWithBlockingCoversViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for range 1500 {
		ts := randomConstrainedSet(rng, 1+rng.Intn(4), 16)
		if ts.Utilization().Cmp(refOne) >= 0 {
			continue
		}
		bmax := rng.Int63n(6)
		srcs := demand.FromTasks(ts)
		bound, ok := GeorgeWithBlocking(srcs, bmax)
		if !ok {
			t.Fatalf("bound failed for %v", ts)
		}
		// The worst-case blocking function: constant bmax (any valid
		// non-increasing B is dominated by it).
		for I := int64(1); I <= 2000; I++ {
			if demand.Dbf(srcs, I) > I-bmax && I >= bound {
				t.Fatalf("violation at %d beyond bound %d (bmax=%d) for %v",
					I, bound, bmax, ts)
			}
		}
	}
}

// TestGeorgeWithBlockingZeroMatchesGeorge: without blocking the widened
// bound equals George's.
func TestGeorgeWithBlockingZeroMatchesGeorge(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for range 500 {
		ts := randomConstrainedSet(rng, 1+rng.Intn(5), 30)
		if ts.Utilization().Cmp(refOne) >= 0 {
			continue
		}
		srcs := demand.FromTasks(ts)
		a, okA := George(srcs)
		b, okB := GeorgeWithBlocking(srcs, 0)
		if okA != okB || a != b {
			t.Fatalf("george=%d,%v with-blocking(0)=%d,%v for %v", a, okA, b, okB, ts)
		}
	}
}

// TestGeorgeWithBlockingRejectsOverUtilization mirrors the plain bound.
func TestGeorgeWithBlockingRejectsOverUtilization(t *testing.T) {
	ts := model.TaskSet{{WCET: 3, Deadline: 2, Period: 2}}
	if _, ok := GeorgeWithBlocking(demand.FromTasks(ts), 5); ok {
		t.Error("U>1 accepted")
	}
}
