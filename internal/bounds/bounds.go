package bounds

import (
	"math/big"

	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/numeric"
)

var one = big.NewRat(1, 1)

// ceilRatInt64 rounds the non-negative rational up and reports whether the
// result fits in int64.
func ceilRatInt64(r *big.Rat) (int64, bool) {
	if r.Sign() <= 0 {
		return 0, true
	}
	num := new(big.Int).Set(r.Num())
	den := r.Denom()
	num.Add(num, new(big.Int).Sub(den, big.NewInt(1)))
	q := num.Div(num, den)
	if !q.IsInt64() {
		return 0, false
	}
	return q.Int64(), true
}

// Baruah returns the bound of Baruah et al. (Definition 3):
// I < U/(1-U) * max(Ti - Di). It applies only to constrained-deadline sets
// (Di <= Ti for every task) with U < 1; otherwise ok is false. A zero bound
// means no violation interval exists at all (every Di == Ti and U <= 1).
func Baruah(ts model.TaskSet) (bound int64, ok bool) {
	if !ts.Constrained() {
		return 0, false
	}
	u := ts.Utilization()
	if u.Cmp(one) >= 0 {
		return 0, false
	}
	var maxGap int64
	for _, t := range ts {
		maxGap = max(maxGap, t.Period-t.Deadline)
	}
	if maxGap == 0 {
		return 0, true
	}
	// U/(1-U) * maxGap
	den := new(big.Rat).Sub(one, u)
	b := new(big.Rat).Quo(u, den)
	b.Mul(b, new(big.Rat).SetInt64(maxGap))
	return ceilRatInt64(b)
}

// georgeTerm returns C - F*num/den for a source (first deadline F, slope
// num/den), the per-source constant of the linear upper bound
// dbf_s(I) <= U_s*I + (C - F*U_s).
func georgeTerm(s demand.Source) *big.Rat {
	num, den := s.UtilRat()
	f := s.JobDeadline(1)
	t := new(big.Rat).Mul(big.NewRat(num, den), new(big.Rat).SetInt64(f))
	return t.Sub(new(big.Rat).SetInt64(s.WCET()), t)
}

// George returns the bound of George et al.:
// I < Σ_{Di<=Ti} (1-Di/Ti)·Ci / (1-U). Sources whose term is negative
// (deadline beyond period) are excluded, which keeps the bound sound.
// ok is false when U >= 1 or the bound overflows.
func George(srcs []demand.Source) (bound int64, ok bool) {
	u := demand.Utilization(srcs)
	if u.Cmp(one) >= 0 {
		return 0, false
	}
	sum := new(big.Rat)
	for _, s := range srcs {
		if t := georgeTerm(s); t.Sign() > 0 {
			sum.Add(sum, t)
		}
	}
	sum.Quo(sum, new(big.Rat).Sub(one, u))
	return ceilRatInt64(sum)
}

// GeorgeTasks is George over a sporadic task set.
func GeorgeTasks(ts model.TaskSet) (int64, bool) { return George(demand.FromTasks(ts)) }

// GeorgeWithBlocking extends George's bound to blocking-reduced capacity:
// a violation dbf(I) > I - B(I) with B non-increasing and B(I) <= bmax
// implies I < (Σ terms + bmax)/(1-U).
func GeorgeWithBlocking(srcs []demand.Source, bmax int64) (bound int64, ok bool) {
	u := demand.Utilization(srcs)
	if u.Cmp(one) >= 0 {
		return 0, false
	}
	sum := new(big.Rat).SetInt64(bmax)
	for _, s := range srcs {
		if t := georgeTerm(s); t.Sign() > 0 {
			sum.Add(sum, t)
		}
	}
	sum.Quo(sum, new(big.Rat).Sub(one, u))
	return ceilRatInt64(sum)
}

// Superposition returns the new bound I_sup of Section 4.3:
// the interval beyond which the all-approximated test can approximate every
// task, I_sup = max(Dmax, Σ_all (1-Di/Ti)·Ci / (1-U)). Unlike George, the
// sum ranges over every source including those with negative terms, which
// is sound for intervals >= the largest first deadline and makes the bound
// at most George's bound (the relationship the paper proves). ok is false
// when U >= 1 or on overflow.
func Superposition(srcs []demand.Source) (bound int64, ok bool) {
	u := demand.Utilization(srcs)
	if u.Cmp(one) >= 0 {
		return 0, false
	}
	sum := new(big.Rat)
	var dmax int64
	for _, s := range srcs {
		sum.Add(sum, georgeTerm(s))
		dmax = max(dmax, s.JobDeadline(1))
	}
	sum.Quo(sum, new(big.Rat).Sub(one, u))
	b, ok := ceilRatInt64(sum)
	if !ok {
		return 0, false
	}
	return max(b, dmax), true
}

// SuperpositionTasks is Superposition over a sporadic task set.
func SuperpositionTasks(ts model.TaskSet) (int64, bool) {
	return Superposition(demand.FromTasks(ts))
}

// busyPeriodMaxIter caps the fixpoint iteration of BusyPeriod; real task
// sets converge in a handful of steps.
const busyPeriodMaxIter = 100000

// BusyPeriod returns the length of the synchronous processor busy period:
// the least fixpoint of L = Σ ceil(L/Ti)·Ci starting from L0 = Σ Ci.
// ok is false when U > 1, the iteration does not converge within the cap,
// or an intermediate value overflows. The paper notes this bound can be
// tighter than the superposition bound but is expensive to compute.
func BusyPeriod(ts model.TaskSet) (length int64, ok bool) {
	var l int64
	for _, t := range ts {
		var okAdd bool
		l, okAdd = numeric.AddChecked(l, t.WCET)
		if !okAdd {
			return 0, false
		}
	}
	for range busyPeriodMaxIter {
		var next int64
		for _, t := range ts {
			jobs := numeric.CeilDiv(l, t.Period)
			d, okMul := numeric.MulChecked(jobs, t.WCET)
			if !okMul {
				return 0, false
			}
			var okAdd bool
			next, okAdd = numeric.AddChecked(next, d)
			if !okAdd {
				return 0, false
			}
		}
		if next == l {
			return l, true
		}
		l = next
	}
	return 0, false
}

// Hyperperiod returns lcm(T1,...,Tn), ok=false on int64 overflow.
func Hyperperiod(ts model.TaskSet) (int64, bool) {
	h := int64(1)
	for _, t := range ts {
		var ok bool
		h, ok = numeric.LCM(h, t.Period)
		if !ok {
			return 0, false
		}
	}
	return h, true
}

// Kind names a feasibility bound for reporting.
type Kind string

// Bound kinds.
const (
	KindBaruah        Kind = "baruah"
	KindGeorge        Kind = "george"
	KindSuperposition Kind = "superposition"
	KindBusyPeriod    Kind = "busy-period"
	KindHyperperiod   Kind = "hyperperiod"
	KindNone          Kind = "none"
)

// Best returns the smallest applicable cheap bound (Baruah, George,
// superposition) for a task set with U < 1, together with its name.
// For U == 1 it falls back to hyperperiod + Dmax, which is sound because
// dbf(I+H) = dbf(I) + H for I >= Dmax when U == 1. ok is false for U > 1
// or when nothing applies within int64.
func Best(ts model.TaskSet) (bound int64, kind Kind, ok bool) {
	u := ts.Utilization()
	switch u.Cmp(one) {
	case 1:
		return 0, KindNone, false
	case 0:
		h, okH := Hyperperiod(ts)
		if !okH {
			return 0, KindNone, false
		}
		b, okB := numeric.AddChecked(h, ts.MaxDeadline())
		if !okB {
			return 0, KindNone, false
		}
		// Exclusive bound: candidate violations lie at I <= H + Dmax.
		b, okB = numeric.AddChecked(b, 1)
		if !okB {
			return 0, KindNone, false
		}
		return b, KindHyperperiod, true
	}
	bound, kind, ok = 0, KindNone, false
	consider := func(b int64, k Kind, okB bool) {
		if okB && (!ok || b < bound) {
			bound, kind, ok = b, k, true
		}
	}
	b, okB := Baruah(ts)
	consider(b, KindBaruah, okB)
	b, okB = GeorgeTasks(ts)
	consider(b, KindGeorge, okB)
	b, okB = SuperpositionTasks(ts)
	consider(b, KindSuperposition, okB)
	return bound, kind, ok
}
