package bounds

import (
	"repro/internal/demand"
	"repro/internal/model"
	"repro/internal/numeric"
)

// fastOne is the comparison constant 1 of the fast bound arithmetic.
var fastOne = numeric.NewFast(1, 1)

// utilFastTasks returns Σ Ci/Ti as an exact numeric.Fast.
func utilFastTasks(ts model.TaskSet) numeric.Fast {
	var u numeric.Fast
	for _, t := range ts {
		u = u.AddRat(t.WCET, t.Period)
	}
	return u
}

// ceilQuo rounds sum/(1-u) up to an int64 with the historical
// ceilRatInt64 semantics: non-positive sums yield 0, and ok is false only
// when the (positive) result does not fit in int64. Requires u < 1.
func ceilQuo(sum, u numeric.Fast) (int64, bool) {
	if sum.Sign() <= 0 {
		return 0, true
	}
	return sum.QuoCeil(fastOne.Sub(u))
}

// Baruah returns the bound of Baruah et al. (Definition 3):
// I < U/(1-U) * max(Ti - Di). It applies only to constrained-deadline sets
// (Di <= Ti for every task) with U < 1; otherwise ok is false. A zero bound
// means no violation interval exists at all (every Di == Ti and U <= 1).
func Baruah(ts model.TaskSet) (bound int64, ok bool) {
	return baruahU(ts, utilFastTasks(ts))
}

// baruahU is Baruah with the utilization precomputed by the caller.
func baruahU(ts model.TaskSet, u numeric.Fast) (bound int64, ok bool) {
	if !ts.Constrained() {
		return 0, false
	}
	if u.CmpInt(1) >= 0 {
		return 0, false
	}
	var maxGap int64
	for _, t := range ts {
		maxGap = max(maxGap, t.Period-t.Deadline)
	}
	if maxGap == 0 {
		return 0, true
	}
	// ceil(U*maxGap / (1-U))
	return ceilQuo(u.MulInt(maxGap), u)
}

// georgeTerm returns C - F*num/den for a source (first deadline F, slope
// num/den), the per-source constant of the linear upper bound
// dbf_s(I) <= U_s*I + (C - F*U_s).
func georgeTerm(s demand.Source) numeric.Fast {
	num, den := s.UtilRat()
	f := s.JobDeadline(1)
	t := numeric.NewFast(num, den).MulInt(f)
	return numeric.NewFast(s.WCET(), 1).Sub(t)
}

// George returns the bound of George et al.:
// I < Σ_{Di<=Ti} (1-Di/Ti)·Ci / (1-U). Sources whose term is negative
// (deadline beyond period) are excluded, which keeps the bound sound.
// ok is false when U >= 1 or the bound overflows.
func George(srcs []demand.Source) (bound int64, ok bool) {
	u := demand.UtilizationFast(srcs)
	if u.CmpInt(1) >= 0 {
		return 0, false
	}
	var sum numeric.Fast
	for _, s := range srcs {
		if t := georgeTerm(s); t.Sign() > 0 {
			sum = sum.Add(t)
		}
	}
	return ceilQuo(sum, u)
}

// GeorgeTasks is George over a sporadic task set.
func GeorgeTasks(ts model.TaskSet) (int64, bool) { return George(demand.FromTasks(ts)) }

// GeorgeWithBlocking extends George's bound to blocking-reduced capacity:
// a violation dbf(I) > I - B(I) with B non-increasing and B(I) <= bmax
// implies I < (Σ terms + bmax)/(1-U).
func GeorgeWithBlocking(srcs []demand.Source, bmax int64) (bound int64, ok bool) {
	u := demand.UtilizationFast(srcs)
	if u.CmpInt(1) >= 0 {
		return 0, false
	}
	sum := numeric.NewFast(bmax, 1)
	for _, s := range srcs {
		if t := georgeTerm(s); t.Sign() > 0 {
			sum = sum.Add(t)
		}
	}
	return ceilQuo(sum, u)
}

// Superposition returns the new bound I_sup of Section 4.3:
// the interval beyond which the all-approximated test can approximate every
// task, I_sup = max(Dmax, Σ_all (1-Di/Ti)·Ci / (1-U)). Unlike George, the
// sum ranges over every source including those with negative terms, which
// is sound for intervals >= the largest first deadline and makes the bound
// at most George's bound (the relationship the paper proves). ok is false
// when U >= 1 or on overflow.
func Superposition(srcs []demand.Source) (bound int64, ok bool) {
	u := demand.UtilizationFast(srcs)
	if u.CmpInt(1) >= 0 {
		return 0, false
	}
	var sum numeric.Fast
	var dmax int64
	for _, s := range srcs {
		sum = sum.Add(georgeTerm(s))
		dmax = max(dmax, s.JobDeadline(1))
	}
	b, ok := ceilQuo(sum, u)
	if !ok {
		return 0, false
	}
	return max(b, dmax), true
}

// SuperpositionTasks is Superposition over a sporadic task set.
func SuperpositionTasks(ts model.TaskSet) (int64, bool) {
	return Superposition(demand.FromTasks(ts))
}

// LinearBounds returns George's bound and the superposition bound in one
// pass over the sources: the two share the utilization sum and the
// per-source linear terms, so computing them together halves the
// rational arithmetic — the dominant cost of a bound when the slope sums
// overflow into big.Rat. Each (bound, ok) pair matches the standalone
// function exactly.
func LinearBounds(srcs []demand.Source) (george int64, okG bool, superpos int64, okS bool) {
	return linearBoundsU(srcs, demand.UtilizationFast(srcs))
}

// linearBoundsU is LinearBounds with the utilization precomputed.
func linearBoundsU(srcs []demand.Source, u numeric.Fast) (george int64, okG bool, superpos int64, okS bool) {
	if u.CmpInt(1) >= 0 {
		return 0, false, 0, false
	}
	var sumPos, sumAll numeric.Fast
	var dmax int64
	for _, s := range srcs {
		t := georgeTerm(s)
		sumAll = sumAll.Add(t)
		if t.Sign() > 0 {
			sumPos = sumPos.Add(t)
		}
		dmax = max(dmax, s.JobDeadline(1))
	}
	george, okG = ceilQuo(sumPos, u)
	b, okB := ceilQuo(sumAll, u)
	if !okB {
		return george, okG, 0, false
	}
	return george, okG, max(b, dmax), true
}

// busyPeriodMaxIter caps the fixpoint iteration of BusyPeriod; real task
// sets converge in a handful of steps.
const busyPeriodMaxIter = 100000

// BusyPeriod returns the length of the synchronous processor busy period:
// the least fixpoint of L = Σ ceil(L/Ti)·Ci starting from L0 = Σ Ci.
// ok is false when U > 1, the iteration does not converge within the cap,
// or an intermediate value overflows. The paper notes this bound can be
// tighter than the superposition bound but is expensive to compute.
func BusyPeriod(ts model.TaskSet) (length int64, ok bool) {
	var l int64
	for _, t := range ts {
		var okAdd bool
		l, okAdd = numeric.AddChecked(l, t.WCET)
		if !okAdd {
			return 0, false
		}
	}
	for range busyPeriodMaxIter {
		var next int64
		for _, t := range ts {
			jobs := numeric.CeilDiv(l, t.Period)
			d, okMul := numeric.MulChecked(jobs, t.WCET)
			if !okMul {
				return 0, false
			}
			var okAdd bool
			next, okAdd = numeric.AddChecked(next, d)
			if !okAdd {
				return 0, false
			}
		}
		if next == l {
			return l, true
		}
		l = next
	}
	return 0, false
}

// Hyperperiod returns lcm(T1,...,Tn), ok=false on int64 overflow.
func Hyperperiod(ts model.TaskSet) (int64, bool) {
	h := int64(1)
	for _, t := range ts {
		var ok bool
		h, ok = numeric.LCM(h, t.Period)
		if !ok {
			return 0, false
		}
	}
	return h, true
}

// Kind names a feasibility bound for reporting.
type Kind string

// Bound kinds.
const (
	KindBaruah        Kind = "baruah"
	KindGeorge        Kind = "george"
	KindSuperposition Kind = "superposition"
	KindBusyPeriod    Kind = "busy-period"
	KindHyperperiod   Kind = "hyperperiod"
	KindNone          Kind = "none"
)

// Best returns the smallest applicable cheap bound (Baruah, George,
// superposition) for a task set with U < 1, together with its name.
// For U == 1 it falls back to hyperperiod + Dmax, which is sound because
// dbf(I+H) = dbf(I) + H for I >= Dmax when U == 1. ok is false for U > 1
// or when nothing applies within int64.
func Best(ts model.TaskSet) (bound int64, kind Kind, ok bool) {
	return BestSources(ts, demand.FromTasks(ts))
}

// BestSources is Best for callers that already hold the set's demand
// sources (e.g. a reused analysis Scratch): srcs must be FromTasks(ts) or
// equivalent. It allocates nothing beyond what the U == 1 fallback needs.
func BestSources(ts model.TaskSet, srcs []demand.Source) (bound int64, kind Kind, ok bool) {
	// One utilization sum feeds every candidate bound: the sum dominates
	// the bound cost once slope denominators overflow into big.Rat.
	u := utilFastTasks(ts)
	switch u.CmpInt(1) {
	case 1:
		return 0, KindNone, false
	case 0:
		return fullUtilBound(ts)
	}
	bound, kind, ok = 0, KindNone, false
	consider := func(b int64, k Kind, okB bool) {
		if okB && (!ok || b < bound) {
			bound, kind, ok = b, k, true
		}
	}
	b, okB := baruahU(ts, u)
	consider(b, KindBaruah, okB)
	bg, okG, bs, okS := linearBoundsU(srcs, u)
	consider(bg, KindGeorge, okG)
	consider(bs, KindSuperposition, okS)
	return bound, kind, ok
}

// fullUtilBound is the U == 1 fallback of Best: hyperperiod + Dmax + 1.
func fullUtilBound(ts model.TaskSet) (int64, Kind, bool) {
	h, okH := Hyperperiod(ts)
	if !okH {
		return 0, KindNone, false
	}
	b, okB := numeric.AddChecked(h, ts.MaxDeadline())
	if !okB {
		return 0, KindNone, false
	}
	// Exclusive bound: candidate violations lie at I <= H + Dmax.
	b, okB = numeric.AddChecked(b, 1)
	if !okB {
		return 0, KindNone, false
	}
	return b, KindHyperperiod, true
}

// BestSourcesScratch is BestSources on the scratch's bounded-denominator
// registers: when the chunk plan covers the workload, every slope sum
// and quotient runs in chunked int64 arithmetic, so the bound stays
// allocation-free on spread-period sets whose slopes overflow the Fast
// representation. Both paths are exact, so the result always equals
// BestSources.
func BestSourcesScratch(ts model.TaskSet, srcs []demand.Source, sc *demand.Scratch) (bound int64, kind Kind, ok bool) {
	if sc.Arith(srcs) == nil {
		return BestSources(ts, srcs)
	}
	u := sc.Reg(0)
	for _, s := range srcs {
		u.AddRat(s.UtilRat())
	}
	switch u.CmpInt(1) {
	case 1:
		return 0, KindNone, false
	case 0:
		return fullUtilBound(ts)
	}
	bound, kind, ok = 0, KindNone, false
	consider := func(b int64, k Kind, okB bool) {
		if okB && (!ok || b < bound) {
			bound, kind, ok = b, k, true
		}
	}
	b, okB := baruahChunked(ts, u, sc)
	consider(b, KindBaruah, okB)
	bg, okG, bs, okS := linearBoundsChunked(srcs, u, sc)
	consider(bg, KindGeorge, okG)
	consider(bs, KindSuperposition, okS)
	return bound, kind, ok
}

// LinearBoundsScratch is LinearBounds on the scratch registers when the
// chunk plan covers the sources, with identical results.
func LinearBoundsScratch(srcs []demand.Source, sc *demand.Scratch) (george int64, okG bool, superpos int64, okS bool) {
	if sc.Arith(srcs) == nil {
		return LinearBounds(srcs)
	}
	u := sc.Reg(0)
	for _, s := range srcs {
		u.AddRat(s.UtilRat())
	}
	if u.CmpInt(1) >= 0 {
		return 0, false, 0, false
	}
	return linearBoundsChunked(srcs, u, sc)
}

// baruahChunked mirrors baruahU on chunk registers. It requires U < 1
// (the caller dispatched on the utilization) and clobbers registers 4-6.
func baruahChunked(ts model.TaskSet, u *numeric.Chunked, sc *demand.Scratch) (int64, bool) {
	if !ts.Constrained() {
		return 0, false
	}
	var maxGap int64
	for _, t := range ts {
		maxGap = max(maxGap, t.Period-t.Deadline)
	}
	if maxGap == 0 {
		return 0, true
	}
	// ceil(U*maxGap / (1-U))
	num := sc.Reg(4)
	num.CopyFrom(u)
	num.MulInt(maxGap)
	return ceilQuoChunked(num, u, sc)
}

// georgeTermChunked computes C - F*num/den into the register t.
func georgeTermChunked(t *numeric.Chunked, s demand.Source) {
	num, den := s.UtilRat()
	t.SetZero()
	t.AddRat(num, den)
	t.MulInt(s.JobDeadline(1))
	t.Neg()
	t.AddInt(s.WCET())
}

// linearBoundsChunked mirrors linearBoundsU on chunk registers. It
// requires U < 1 and clobbers registers 1-6 (register 0 conventionally
// holds u).
func linearBoundsChunked(srcs []demand.Source, u *numeric.Chunked, sc *demand.Scratch) (george int64, okG bool, superpos int64, okS bool) {
	sumPos, sumAll, term := sc.Reg(1), sc.Reg(2), sc.Reg(3)
	var dmax int64
	for _, s := range srcs {
		georgeTermChunked(term, s)
		sumAll.Add(term)
		if term.Sign() > 0 {
			sumPos.Add(term)
		}
		dmax = max(dmax, s.JobDeadline(1))
	}
	george, okG = ceilQuoChunked(sumPos, u, sc)
	b, okB := ceilQuoChunked(sumAll, u, sc)
	if !okB {
		return george, okG, 0, false
	}
	return george, okG, max(b, dmax), true
}

// ceilQuoChunked is ceilQuo on chunk registers: ceil(sum/(1-u)) with
// non-positive sums yielding 0. It clobbers registers 5 and 6.
func ceilQuoChunked(sum, u *numeric.Chunked, sc *demand.Scratch) (int64, bool) {
	if sum.Sign() <= 0 {
		return 0, true
	}
	den := sc.Reg(5)
	den.SetInt(1)
	den.Sub(u)
	return numeric.QuoCeilChunked(sum, den, sc.Reg(6))
}
