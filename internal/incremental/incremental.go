// Package incremental maintains persistent per-session analysis state so
// an admission controller can decide most proposals by folding the one
// proposed task into running demand-bound accumulators instead of
// re-analyzing the whole committed workload.
//
// # The anchor
//
// The state keeps an "anchor": the sorted test points I_1 < ... < I_m of
// a level-L superposition walk (the paper's SuperPos(L) approximation,
// Definition 6) over the session's current sources, and for each point
// an integer slack floor
//
//	slack_k <= I_k - dbf'(I_k)
//
// where dbf' is the superposed level-L approximated demand of the
// current set. Two structural invariants make the anchor usable as a
// certificate:
//
//  1. every jump of dbf' happens at an anchor point (the walk records
//     all first-L job deadlines; beyond them each source is linear), and
//  2. beyond any point, dbf' grows with slope at most U, the current
//     total utilization, of which uQ32 is a fixed-point upper bound.
//
// # The certificate
//
// A proposed task is lowered to demand.Uniform sources; each source
// contributes nothing before its first deadline F and is majorized by
// the line C + (C/Sep)·(I-F) from there on (the staircase never exceeds
// the line through its step tops). The fast accept check verifies, at
// every anchor point I_k >= F and at every F itself, that the
// conservative sum
//
//	majorant(dbf'(I)) + Σ lineCeil(src, I) <= I
//
// holds. Between checked points the violation function has slope at most
// U' - 1 <= 0 (U' < 1 is gated by the caller), and it jumps only at
// anchor points and the staged first deadlines — all of which are
// checked — so the inequality holds for every interval: the grown set's
// exact demand never exceeds the capacity, the set is truly feasible,
// and the registry cascade's exact authority would return Feasible. The
// check is sufficient-only: when it fails the caller escalates to the
// full analyzer, so verdicts stay bit-identical to a from-scratch
// analysis either way.
//
// # Folding and rollback
//
// Admitting a task folds its ceiled staircase into the slack floors
// (one O(m) integer pass) and merge-inserts its own first-L deadlines as
// new anchor points — no rational arithmetic, no allocation in steady
// state. Commit snapshots the anchor; Rollback restores the snapshot and
// truncates the source arena, which undoes any number of pending
// proposals exactly. Any arithmetic overflow marks the anchor broken —
// decisions already made stay sound, later proposals simply escalate.
package incremental

import (
	"math"
	"math/bits"
	"slices"

	"repro/internal/demand"
	"repro/internal/numeric"
	"repro/internal/workload"
)

// q32Shift is the fixed-point precision of the utilization upper bound.
const q32Shift = 32

// State is the persistent incremental-analysis state of one admission
// session. It is not concurrency-safe; the owning controller serializes
// access under its own mutex. The zero value is not usable; construct
// with New.
type State struct {
	level int64 // superposition level of the anchor walk

	// srcs is the session's source arena: committed then pending tasks
	// in admission order, each lowered to Uniform sources.
	srcs []demand.Uniform

	// Working anchor (committed + pending).
	pts   []int64
	slack []int64
	valid bool   // anchor usable as a certificate
	uQ32  uint64 // ceil(U * 2^32) upper bound of the current set

	// Committed snapshot, restored verbatim on Rollback.
	cSrcs  int
	cPts   []int64
	cSlack []int64
	cValid bool
	cUQ32  uint64

	// Reusable working memory.
	tl     demand.TestList
	jobs   []int64
	staged []demand.Uniform // proposed task's sources, sorted by First
	newPts []int64          // staged sources' own test points
	spareP []int64          // fold output double buffers
	spareS []int64
}

// New returns an empty, valid state using the given superposition level
// for its anchor (level < 1 is clamped to 1).
func New(level int64) *State {
	if level < 1 {
		level = 1
	}
	st := &State{level: level, valid: true, cValid: true}
	return st
}

// Len returns the number of sources currently in the arena.
func (st *State) Len() int { return len(st.srcs) }

// Points returns the current anchor size (for tests and introspection).
func (st *State) Points() int { return len(st.pts) }

// Usable reports whether the fast certificate can run at all — the
// anchor survived the last rebuild and every fold since.
func (st *State) Usable() bool { return st.valid }

// stage lowers t into st.staged, sorted by first deadline ascending, and
// reports whether every source is representable. The slice is reused
// across calls.
func (st *State) stage(t workload.Task) bool {
	st.staged = st.staged[:0]
	switch {
	case t.Sporadic != nil:
		st.staged = append(st.staged, demand.UniformFromTask(*t.Sporadic))
	case t.Event != nil:
		et := t.Event
		for _, e := range et.Stream {
			first, ok := numeric.AddChecked(e.Offset, et.Deadline)
			if !ok {
				return false
			}
			st.staged = append(st.staged, demand.Uniform{C: et.WCET, First: first, Sep: e.Cycle})
		}
	default:
		return false
	}
	slices.SortFunc(st.staged, func(a, b demand.Uniform) int {
		if a.First != b.First {
			if a.First < b.First {
				return -1
			}
			return 1
		}
		return 0
	})
	return true
}

// lineCeil returns an integer upper bound of the linear majorant
// C + (C/Sep)·(I-First) of src at I >= First.
func lineCeil(src demand.Uniform, I int64) (int64, bool) {
	if src.Sep == 0 {
		return src.C, true
	}
	p, ok := numeric.MulChecked(src.C, I-src.First)
	if !ok {
		return 0, false
	}
	g := p / src.Sep
	if p%src.Sep != 0 {
		g++
	}
	return numeric.AddChecked(src.C, g)
}

// staircaseCeil returns an integer upper bound of the level-L
// approximated demand dbf' of src at I: the exact staircase for the
// first level jobs, the ceiled line beyond.
func (st *State) staircaseCeil(src demand.Uniform, I int64) (int64, bool) {
	if I < src.First {
		return 0, true
	}
	jobs := int64(1)
	if src.Sep > 0 {
		jobs = (I-src.First)/src.Sep + 1
		if jobs > st.level {
			jobs = st.level
		}
	}
	d, ok := numeric.MulChecked(jobs, src.C)
	if !ok {
		return 0, false
	}
	if src.Sep == 0 || jobs < st.level {
		return d, true
	}
	// Linear tail beyond Im = First + (level-1)*Sep.
	span, ok := numeric.MulChecked(st.level-1, src.Sep)
	if !ok {
		return 0, false
	}
	im, ok := numeric.AddChecked(src.First, span)
	if !ok {
		return 0, false
	}
	if I <= im {
		return d, true
	}
	p, ok := numeric.MulChecked(src.C, I-im)
	if !ok {
		return 0, false
	}
	tail := p / src.Sep
	if p%src.Sep != 0 {
		tail++
	}
	return numeric.AddChecked(d, tail)
}

// stagedDemandCeil sums staircaseCeil over every staged source at I.
func (st *State) stagedDemandCeil(I int64) (int64, bool) {
	var sum int64
	for _, src := range st.staged {
		d, ok := st.staircaseCeil(src, I)
		if !ok {
			return 0, false
		}
		if sum, ok = numeric.AddChecked(sum, d); !ok {
			return 0, false
		}
	}
	return sum, true
}

// q32MulCeil returns ceil(u * dt / 2^32) for dt >= 0 through a 128-bit
// product, and whether it fits in int64.
func q32MulCeil(u uint64, dt int64) (int64, bool) {
	if dt <= 0 || u == 0 {
		return 0, dt >= 0
	}
	hi, lo := bits.Mul64(u, uint64(dt))
	if hi >= 1<<(64-q32Shift-1) {
		return 0, false
	}
	v := hi<<q32Shift | lo>>q32Shift
	if lo&(1<<q32Shift-1) != 0 {
		v++
	}
	if v > math.MaxInt64 {
		return 0, false
	}
	return int64(v), true
}

// slopeQ32 returns ceil(num/den * 2^32) for the slope num/den >= 0.
func slopeQ32(num, den int64) (uint64, bool) {
	if num <= 0 {
		return 0, num == 0
	}
	hi := uint64(num) >> (64 - q32Shift)
	lo := uint64(num) << q32Shift
	if hi >= uint64(den) {
		return 0, false
	}
	q, r := bits.Div64(hi, lo, uint64(den))
	if r > 0 {
		q++
	}
	return q, true
}

// curMajorantCeil returns an integer upper bound of dbf'(I) of the
// current set: the last anchor point at or before I plus uQ32 growth.
// Before the first anchor point the current demand is exactly zero.
func (st *State) curMajorantCeil(I int64) (int64, bool) {
	k, found := slices.BinarySearch(st.pts, I)
	if !found {
		if k == 0 {
			return 0, true
		}
		k-- // last index with pts[k] <= I
	}
	base, ok := numeric.SubChecked(st.pts[k], st.slack[k])
	if !ok {
		return 0, false
	}
	growth, ok := q32MulCeil(st.uQ32, I-st.pts[k])
	if !ok {
		return 0, false
	}
	return numeric.AddChecked(base, growth)
}

// Check runs the incremental accept certificate for the proposed task t
// against the current anchor. It returns ok == true only when the grown
// set is provably feasible, under two preconditions the caller owns: the
// grown utilization is strictly below 1, and the current arena is
// exactly feasible (the admission invariant — every source in it was
// accepted by this certificate or the exact analyzer). The latter covers
// intervals before the proposal's first deadline, which the scan skips.
// checked counts the verified test points, the effort analogue of a
// test's iteration count. A false return says nothing — the caller
// escalates to the full analyzer.
func (st *State) Check(t workload.Task) (ok bool, checked int64) {
	if !st.valid || !st.stage(t) || len(st.staged) == 0 {
		return false, 0
	}
	// Entry checks: at every staged first deadline F, the current
	// majorant plus every line already started must fit into F.
	for j := range st.staged {
		f := st.staged[j].First
		cur, okc := st.curMajorantCeil(f)
		if !okc {
			return false, checked
		}
		need := cur
		for i := 0; i <= j; i++ {
			l, okl := lineCeil(st.staged[i], f)
			if !okl {
				return false, checked
			}
			if need, okl = numeric.AddChecked(need, l); !okl {
				return false, checked
			}
		}
		checked++
		if need > f {
			return false, checked
		}
	}
	// Anchor scan: every anchor point at or after the first staged
	// deadline must have slack covering the staged lines.
	start, _ := slices.BinarySearch(st.pts, st.staged[0].First)
	for k := start; k < len(st.pts); k++ {
		I := st.pts[k]
		var need int64
		for _, src := range st.staged {
			if src.First > I {
				break // staged is sorted; later sources start even later
			}
			l, okl := lineCeil(src, I)
			if !okl {
				return false, checked
			}
			if need, okl = numeric.AddChecked(need, l); !okl {
				return false, checked
			}
		}
		checked++
		if st.slack[k] < need {
			return false, checked
		}
	}
	return true, checked
}

// Admit folds the proposed task into the state after the caller decided
// to stage it (by the fast certificate or by an escalated analysis). The
// sources always enter the arena; the anchor is updated when it is still
// valid and the fold arithmetic stays in range, and marked unusable
// otherwise — the decision already made is unaffected.
func (st *State) Admit(t workload.Task) {
	if !st.stage(t) {
		st.valid = false
		return
	}
	st.srcs = append(st.srcs, st.staged...)
	if !st.valid {
		return
	}
	if !st.fold() {
		st.valid = false
		return
	}
	// Raise the utilization upper bound after the fold: the fold's
	// new-point majorants describe the pre-admit set.
	for _, src := range st.staged {
		q, ok := slopeQ32(src.UtilRat())
		if !ok {
			st.valid = false
			return
		}
		if st.uQ32 > math.MaxUint64-q {
			st.valid = false
			return
		}
		st.uQ32 += q
	}
}

// fold merges the staged sources into the anchor: existing points lose
// the staged ceiled staircase from their slack, and the staged first-L
// deadlines join as new points whose slack comes from the current
// majorant plus the staged demand. One integer pass, reusing the merge
// buffers.
func (st *State) fold() bool {
	// Collect the staged sources' own test points.
	newPts := st.newPts[:0]
	for _, src := range st.staged {
		for k := int64(1); k <= st.level; k++ {
			p := src.JobDeadline(k)
			if p == demand.MaxInterval {
				break
			}
			newPts = append(newPts, p)
		}
	}
	slices.Sort(newPts)
	newPts = slices.Compact(newPts)
	st.newPts = newPts

	// The spare buffers double-buffer the anchor: after the first few
	// folds they are large enough and the merge allocates nothing.
	outP, outS := st.spareP[:0], st.spareS[:0]

	i, j := 0, 0
	// prevI/prevBase track the last existing anchor point passed, with
	// its pre-fold demand ceiling — the majorant anchor for new points.
	var prevI, prevBase int64
	hasPrev := false
	for i < len(st.pts) || j < len(newPts) {
		if i < len(st.pts) && (j >= len(newPts) || st.pts[i] <= newPts[j]) {
			I := st.pts[i]
			d, ok := st.stagedDemandCeil(I)
			if !ok {
				return false
			}
			ns, ok := numeric.SubChecked(st.slack[i], d)
			if !ok {
				return false
			}
			base, ok := numeric.SubChecked(I, st.slack[i])
			if !ok {
				return false
			}
			outP = append(outP, I)
			outS = append(outS, ns)
			prevI, prevBase, hasPrev = I, base, true
			if j < len(newPts) && newPts[j] == I {
				j++ // the existing point already covers this jump
			}
			i++
			continue
		}
		// A new point P: before the first existing anchor point the
		// current set has exactly zero approximated demand, beyond one
		// its majorant is the point's ceiling plus uQ32 growth.
		P := newPts[j]
		var cur int64
		if hasPrev {
			growth, ok := q32MulCeil(st.uQ32, P-prevI)
			if !ok {
				return false
			}
			if cur, ok = numeric.AddChecked(prevBase, growth); !ok {
				return false
			}
		}
		d, ok := st.stagedDemandCeil(P)
		if !ok {
			return false
		}
		total, ok := numeric.AddChecked(cur, d)
		if !ok {
			return false
		}
		outP = append(outP, P)
		outS = append(outS, P-total)
		j++
	}
	// Swap: the old anchor arrays become the next fold's output buffers.
	st.spareP, st.spareS = st.pts, st.slack
	st.pts, st.slack = outP, outS
	return true
}

// Rebuild discards the anchor and reconstructs it with a level-L
// superposition walk over the whole arena — the from-scratch path used
// at construction. Points where the approximation overshoots the
// interval get negative slack (sound: the owner only keeps sets the
// exact analyzer admitted, and such points just fail future
// certificates); only an accumulator leaving int64 range makes the
// anchor unusable, after which every proposal escalates.
func (st *State) Rebuild() {
	st.pts = st.pts[:0]
	st.slack = st.slack[:0]
	st.valid = false
	st.uQ32 = 0
	for _, src := range st.srcs {
		q, ok := slopeQ32(src.UtilRat())
		if !ok || st.uQ32 > math.MaxUint64-q {
			return
		}
		st.uQ32 += q
	}
	st.tl.Reset()
	st.tl.Grow(len(st.srcs))
	if cap(st.jobs) < len(st.srcs) {
		st.jobs = make([]int64, len(st.srcs))
	}
	st.jobs = st.jobs[:len(st.srcs)]
	for i := range st.jobs {
		st.jobs[i] = 0
	}
	for i := range st.srcs {
		st.tl.Add(st.srcs[i].JobDeadline(1), i)
	}
	var dbf, uready numeric.Fast
	var iold int64
	for !st.tl.Empty() {
		e := st.tl.Next()
		src := &st.srcs[e.Src]
		st.jobs[e.Src]++
		dbf = dbf.AddInt(src.C).AddScaled(uready, e.I-iold)
		iold = e.I
		if st.jobs[e.Src] >= st.level {
			uready = uready.AddRat(src.UtilRat())
		} else {
			st.tl.Add(src.NextDeadline(e.I), e.Src)
		}
		if st.tl.Empty() || st.tl.Peek().I != e.I {
			c, ok := dbf.CeilInt64()
			if !ok {
				// Approximation left int64 range: no certificate.
				st.pts = st.pts[:0]
				st.slack = st.slack[:0]
				return
			}
			// A negative slack (the approximation overshoots the interval)
			// is recorded as-is: the set itself was admitted by the exact
			// analyzer, so the anchor stays sound and future certificates
			// simply fail at that point and escalate.
			st.pts = append(st.pts, e.I)
			st.slack = append(st.slack, e.I-c)
		}
	}
	st.valid = true
}

// Commit snapshots the working anchor as the new committed state.
func (st *State) Commit() {
	st.cSrcs = len(st.srcs)
	st.cPts = append(st.cPts[:0], st.pts...)
	st.cSlack = append(st.cSlack[:0], st.slack...)
	st.cValid = st.valid
	st.cUQ32 = st.uQ32
}

// Rollback restores the committed snapshot exactly, discarding every
// pending fold and source in one shot.
func (st *State) Rollback() {
	st.srcs = st.srcs[:st.cSrcs]
	st.pts = append(st.pts[:0], st.cPts...)
	st.slack = append(st.slack[:0], st.cSlack...)
	st.valid = st.cValid
	st.uQ32 = st.cUQ32
}

// AppendWorkload lowers an entire workload into the arena without
// touching the anchor — the seeding path before the initial Rebuild.
// It returns false when a task cannot be lowered.
func (st *State) AppendWorkload(w workload.Workload) bool {
	if w.Kind() == workload.Events {
		for i := range w.Events {
			if !st.appendTask(workload.Task{Event: &w.Events[i]}) {
				return false
			}
		}
		return true
	}
	for i := range w.Tasks {
		if !st.appendTask(workload.Task{Sporadic: &w.Tasks[i]}) {
			return false
		}
	}
	return true
}

// appendTask lowers one task into the arena.
func (st *State) appendTask(t workload.Task) bool {
	if !st.stage(t) {
		return false
	}
	st.srcs = append(st.srcs, st.staged...)
	return true
}
