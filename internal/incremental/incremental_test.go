package incremental

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/engine"
	"repro/internal/eventstream"
	"repro/internal/model"
	"repro/internal/workload"
)

// approxAt computes the exact level-L approximated demand dbf'(I) of a
// source arena as a rational — the reference the anchor's integer slack
// floors are validated against.
func approxAt(srcs []demand.Uniform, level, I int64) *big.Rat {
	sum := new(big.Rat)
	for _, s := range srcs {
		if I < s.First {
			continue
		}
		jobs := int64(1)
		if s.Sep > 0 {
			jobs = (I-s.First)/s.Sep + 1
		}
		if jobs > level {
			jobs = level
		}
		d := new(big.Rat).SetInt64(jobs * s.C)
		if s.Sep > 0 && jobs == level {
			im := s.First + (level-1)*s.Sep
			if I > im {
				tail := big.NewRat(s.C*(I-im), s.Sep)
				d.Add(d, tail)
			}
		}
		sum.Add(sum, d)
	}
	return sum
}

// checkInvariant asserts slack_k <= I_k - dbf'(I_k) at every anchor point.
func checkInvariant(t *testing.T, st *State) {
	t.Helper()
	for k, I := range st.pts {
		bound := new(big.Rat).SetInt64(I - st.slack[k])
		if d := approxAt(st.srcs, st.level, I); bound.Cmp(d) < 0 {
			t.Fatalf("anchor invariant broken at I=%d: I-slack=%s < dbf'=%s",
				I, bound.RatString(), d.RatString())
		}
	}
}

func randTask(r *rand.Rand) model.Task {
	period := int64(10 + r.Intn(1000))
	c := 1 + r.Int63n(period/4+1)
	d := c + r.Int63n(2*period)
	return model.Task{WCET: c, Deadline: d, Period: period}
}

func randEventTask(r *rand.Rand) eventstream.Task {
	c := 1 + r.Int63n(40)
	et := eventstream.Task{WCET: c, Deadline: c + r.Int63n(500)}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		e := eventstream.Element{Offset: r.Int63n(200)}
		if r.Intn(5) > 0 {
			e.Cycle = 50 + r.Int63n(2000)
		}
		et.Stream = append(et.Stream, e)
	}
	return et
}

func utilOf(srcs []demand.Uniform) *big.Rat {
	u := new(big.Rat)
	for _, s := range srcs {
		n, d := s.UtilRat()
		u.Add(u, big.NewRat(n, d))
	}
	return u
}

// TestFoldMatchesRebuild folds tasks one at a time and asserts the folded
// anchor covers exactly the points a from-scratch rebuild walks, with
// slack floors that stay sound against the exact rational approximation.
func TestFoldMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		st := New(engine.DefaultSuperPosLevel)
		st.Rebuild()
		n := 2 + r.Intn(12)
		for i := 0; i < n; i++ {
			var tk workload.Task
			if seed%2 == 0 {
				m := randTask(r)
				tk = workload.Task{Sporadic: &m}
			} else {
				e := randEventTask(r)
				tk = workload.Task{Event: &e}
			}
			st.Admit(tk)
			if !st.valid {
				t.Fatalf("seed %d: fold overflowed on small parameters", seed)
			}
			checkInvariant(t, st)
		}
		ref := New(engine.DefaultSuperPosLevel)
		ref.srcs = append(ref.srcs, st.srcs...)
		ref.Rebuild()
		if !ref.valid {
			t.Fatalf("seed %d: rebuild failed on small parameters", seed)
		}
		if len(ref.pts) != len(st.pts) {
			t.Fatalf("seed %d: fold has %d points, rebuild %d", seed, len(st.pts), len(ref.pts))
		}
		for k := range ref.pts {
			if ref.pts[k] != st.pts[k] {
				t.Fatalf("seed %d: point %d differs: fold %d, rebuild %d",
					seed, k, st.pts[k], ref.pts[k])
			}
			if st.slack[k] > ref.slack[k] {
				t.Fatalf("seed %d: folded slack %d at I=%d exceeds rebuilt slack %d",
					seed, st.slack[k], st.pts[k], ref.slack[k])
			}
		}
	}
}

// TestCheckSound asserts the certificate's accepts are truthful: whenever
// Check passes and the grown utilization is strictly below 1, the exact
// cascade finds the grown set feasible.
func TestCheckSound(t *testing.T) {
	cascade, ok := engine.Get("cascade")
	if !ok {
		t.Fatal("cascade analyzer not registered")
	}
	accepts := 0
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		var ts model.TaskSet
		st := New(engine.DefaultSuperPosLevel)
		for i := 0; i < 1+r.Intn(10); i++ {
			m := randTask(r)
			ts = append(ts, m)
			st.appendTask(workload.Task{Sporadic: &m})
		}
		st.Rebuild()
		if !st.Usable() {
			continue
		}
		// The admission invariant: the committed arena is only ever a set
		// the exact analyzer admitted.
		if cascade.Analyze(ts, core.Options{}).Verdict != core.Feasible {
			continue
		}
		m := randTask(r)
		ok, _ := st.Check(workload.Task{Sporadic: &m})
		if !ok {
			continue
		}
		grown := utilOf(st.srcs)
		sm := demand.UniformFromTask(m)
		n, d := sm.UtilRat()
		grown.Add(grown, big.NewRat(n, d))
		if grown.Cmp(big.NewRat(1, 1)) >= 0 {
			continue
		}
		accepts++
		res := cascade.Analyze(append(ts.Clone(), m), core.Options{})
		if res.Verdict != core.Feasible {
			t.Fatalf("seed %d: certificate accepted but cascade says %s for %+v + %+v",
				seed, res.Verdict, ts, m)
		}
	}
	if accepts < 20 {
		t.Fatalf("only %d certificate accepts across all seeds; test is near-vacuous", accepts)
	}
}

// TestCommitRollback asserts Rollback restores the committed snapshot
// bit-exactly, whatever happened since the commit.
func TestCommitRollback(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	st := New(engine.DefaultSuperPosLevel)
	for i := 0; i < 6; i++ {
		m := randTask(r)
		st.appendTask(workload.Task{Sporadic: &m})
	}
	st.Rebuild()
	if !st.Usable() {
		t.Fatal("rebuild failed on small parameters")
	}
	st.Commit()
	wantSrcs := len(st.srcs)
	wantPts := append([]int64(nil), st.pts...)
	wantSlack := append([]int64(nil), st.slack...)
	wantU := st.uQ32

	for i := 0; i < 10; i++ {
		m := randTask(r)
		st.Admit(workload.Task{Sporadic: &m})
	}
	if len(st.srcs) == wantSrcs {
		t.Fatal("admits did not grow the arena")
	}
	st.Rollback()
	if len(st.srcs) != wantSrcs || st.uQ32 != wantU || !st.valid {
		t.Fatalf("rollback mismatch: srcs %d want %d, uQ32 %d want %d, valid %v",
			len(st.srcs), wantSrcs, st.uQ32, wantU, st.valid)
	}
	if len(st.pts) != len(wantPts) {
		t.Fatalf("rollback anchor size %d, want %d", len(st.pts), len(wantPts))
	}
	for k := range wantPts {
		if st.pts[k] != wantPts[k] || st.slack[k] != wantSlack[k] {
			t.Fatalf("rollback anchor differs at %d: (%d,%d) want (%d,%d)",
				k, st.pts[k], st.slack[k], wantPts[k], wantSlack[k])
		}
	}

	// Rollback twice is idempotent; a fresh commit then sticks.
	st.Rollback()
	if len(st.srcs) != wantSrcs {
		t.Fatal("second rollback changed the arena")
	}
	m := randTask(r)
	st.Admit(workload.Task{Sporadic: &m})
	st.Commit()
	st.Rollback()
	if len(st.srcs) != wantSrcs+1 {
		t.Fatalf("rollback after commit lost the committed admit: %d srcs", len(st.srcs))
	}
}

// TestOverflowEscalates drives the fold into int64 overflow and asserts
// the state turns itself unusable instead of lying.
func TestOverflowEscalates(t *testing.T) {
	st := New(engine.DefaultSuperPosLevel)
	huge := model.Task{WCET: 1 << 62, Deadline: 1 << 62, Period: 1 << 62}
	st.appendTask(workload.Task{Sporadic: &huge})
	st.Rebuild()
	if !st.Usable() {
		t.Skip("rebuild already rejected the huge set")
	}
	for i := 0; i < 64 && st.Usable(); i++ {
		st.Admit(workload.Task{Sporadic: &huge})
	}
	if st.Usable() {
		t.Fatal("state stayed usable through guaranteed overflow")
	}
	// An unusable state must refuse certificates but keep its arena.
	m := model.Task{WCET: 1, Deadline: 10, Period: 10}
	if ok, _ := st.Check(workload.Task{Sporadic: &m}); ok {
		t.Fatal("unusable state issued a certificate")
	}
}

// TestOneShotSources exercises Sep == 0 lowering through fold and check.
func TestOneShotSources(t *testing.T) {
	st := New(engine.DefaultSuperPosLevel)
	st.Rebuild()
	one := eventstream.Task{WCET: 5, Deadline: 10, Stream: eventstream.Stream{{Offset: 0, Cycle: 0}}}
	st.Admit(workload.Task{Event: &one})
	if !st.valid {
		t.Fatal("one-shot fold failed")
	}
	checkInvariant(t, st)
	// A second one-shot at the same deadline must still certify: demand
	// 10 into interval 10.
	two := eventstream.Task{WCET: 5, Deadline: 10, Stream: eventstream.Stream{{Offset: 0, Cycle: 0}}}
	ok, _ := st.Check(workload.Task{Event: &two})
	if !ok {
		t.Fatal("certificate rejected a trivially feasible one-shot")
	}
	st.Admit(workload.Task{Event: &two})
	checkInvariant(t, st)
	// A third overloads interval 10 (demand 15 > 10): must not certify.
	if ok, _ := st.Check(workload.Task{Event: &two}); ok {
		t.Fatal("certificate accepted an infeasible one-shot")
	}
}
