package sensitivity

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
)

// Oracle decides feasibility for the searches. The default is the
// all-approximated test with exact arithmetic.
type Oracle func(model.TaskSet) bool

// DefaultOracle decides with the paper's all-approximated test.
func DefaultOracle(ts model.TaskSet) bool {
	return core.AllApprox(ts, core.Options{}).Verdict == core.Feasible
}

// ErrInfeasible is returned when the input set is already infeasible and
// the requested search direction cannot make it feasible.
var ErrInfeasible = errors.New("sensitivity: task set is infeasible")

// ErrIndex is returned for an out-of-range task index.
var ErrIndex = errors.New("sensitivity: task index out of range")

func checkIndex(ts model.TaskSet, i int) error {
	if i < 0 || i >= len(ts) {
		return fmt.Errorf("%w: %d of %d", ErrIndex, i, len(ts))
	}
	return nil
}

func oracleOrDefault(o Oracle) Oracle {
	if o == nil {
		return DefaultOracle
	}
	return o
}

// MaxWCET returns the largest WCET of task i that keeps the set feasible,
// leaving every other parameter unchanged. The result is at least the
// current WCET's feasibility status: if the set is infeasible even at
// C_i = 1 the search fails with ErrInfeasible.
func MaxWCET(ts model.TaskSet, i int, oracle Oracle) (int64, error) {
	if err := checkIndex(ts, i); err != nil {
		return 0, err
	}
	o := oracleOrDefault(oracle)
	probe := ts.Clone()
	feasibleAt := func(c int64) bool {
		probe[i].WCET = c
		return c <= probe[i].Deadline && o(probe)
	}
	if !feasibleAt(1) {
		return 0, ErrInfeasible
	}
	// Feasibility is monotone decreasing in C: binary search the largest
	// feasible value in [1, min(D_i, T_i·(1 - U_rest)) <= D_i].
	lo, hi := int64(1), ts[i].Deadline
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if feasibleAt(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// MinDeadline returns the smallest relative deadline of task i that keeps
// the set feasible, leaving everything else unchanged.
func MinDeadline(ts model.TaskSet, i int, oracle Oracle) (int64, error) {
	if err := checkIndex(ts, i); err != nil {
		return 0, err
	}
	o := oracleOrDefault(oracle)
	probe := ts.Clone()
	feasibleAt := func(d int64) bool {
		probe[i].Deadline = d
		return o(probe)
	}
	// Feasibility is monotone increasing in D. The current deadline must
	// be feasible for a meaningful answer.
	if !feasibleAt(ts[i].Deadline) {
		return 0, ErrInfeasible
	}
	lo, hi := ts[i].WCET, ts[i].Deadline
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasibleAt(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// MinPeriod returns the smallest period (minimal inter-arrival distance)
// of task i that keeps the set feasible, leaving everything else
// unchanged. Deadlines are not coupled to the period by this search.
func MinPeriod(ts model.TaskSet, i int, oracle Oracle) (int64, error) {
	if err := checkIndex(ts, i); err != nil {
		return 0, err
	}
	o := oracleOrDefault(oracle)
	probe := ts.Clone()
	feasibleAt := func(p int64) bool {
		probe[i].Period = p
		return o(probe)
	}
	if !feasibleAt(ts[i].Period) {
		return 0, ErrInfeasible
	}
	// Feasibility is monotone increasing in T; search in [1, T_i].
	lo, hi := int64(1), ts[i].Period
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasibleAt(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// CriticalScaling returns the largest factor alpha (as a fraction
// num/denom with the given denominator resolution) such that scaling every
// WCET by alpha keeps the set feasible: the classic critical scaling
// factor of sensitivity analysis. Scaled WCETs are rounded up (pessimistic)
// and clamped to at least 1. denom must be positive; alpha is searched in
// (0, denom*maxAlpha] with maxAlpha chosen from the utilization headroom.
func CriticalScaling(ts model.TaskSet, denom int64, oracle Oracle) (num int64, err error) {
	if denom <= 0 {
		return 0, fmt.Errorf("sensitivity: denominator %d must be positive", denom)
	}
	if err := ts.Validate(); err != nil {
		return 0, err
	}
	o := oracleOrDefault(oracle)
	feasibleAt := func(n int64) bool {
		probe := ts.Clone()
		for i := range probe {
			c := (probe[i].WCET*n + denom - 1) / denom
			if c < 1 {
				c = 1
			}
			if c > probe[i].Deadline {
				return false // would violate C <= D outright
			}
			probe[i].WCET = c
		}
		return o(probe)
	}
	if !feasibleAt(1) {
		return 0, ErrInfeasible
	}
	// Upper limit: alpha <= 1/U (utilization must stay <= 1), capped by
	// the deadline constraint search space.
	u := ts.UtilizationFloat()
	hi := int64(float64(denom)/u) + 2
	lo := int64(1)
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if feasibleAt(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// Slack returns, for every task, the largest amount by which its WCET
// could grow (alone) without breaking feasibility — a per-task margin
// report for design reviews.
func Slack(ts model.TaskSet, oracle Oracle) ([]int64, error) {
	out := make([]int64, len(ts))
	for i := range ts {
		maxC, err := MaxWCET(ts, i, oracle)
		if err != nil {
			return nil, err
		}
		out[i] = maxC - ts[i].WCET
	}
	return out, nil
}
