// Package sensitivity answers "how much margin does this task set have?"
// questions on top of the exact feasibility tests — the design-space
// queries the paper's introduction motivates fast exact tests for (each
// query evaluates the test many times, so a 10-200x cheaper exact test
// turns sensitivity analysis from overnight into interactive).
//
// All searches exploit monotonicity of EDF feasibility in the respective
// parameter (demand grows with WCET, shrinks with period and with looser
// deadlines) and use the all-approximated test as the oracle, so every
// answer is exact at integer granularity: the returned value is feasible
// and the next step toward infeasibility is not.
package sensitivity
