package sensitivity

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

func feasible(ts model.TaskSet) bool {
	return core.ProcessorDemand(ts, core.Options{}).Verdict == core.Feasible
}

func randomFeasibleSet(rng *rand.Rand) model.TaskSet {
	for {
		n := 1 + rng.Intn(4)
		ts := make(model.TaskSet, 0, n)
		for range n {
			T := int64(4 + rng.Intn(20))
			C := 1 + rng.Int63n(T/2)
			D := C + rng.Int63n(T-C+1)
			ts = append(ts, model.Task{WCET: C, Deadline: D, Period: T})
		}
		if feasible(ts) {
			return ts
		}
	}
}

// TestMaxWCETBoundary: the reported value is feasible, one more is not.
func TestMaxWCETBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for range 300 {
		ts := randomFeasibleSet(rng)
		i := rng.Intn(len(ts))
		maxC, err := MaxWCET(ts, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if maxC < ts[i].WCET {
			t.Fatalf("max WCET %d below current %d", maxC, ts[i].WCET)
		}
		at := ts.Clone()
		at[i].WCET = maxC
		if !feasible(at) {
			t.Fatalf("reported max WCET %d infeasible for %v", maxC, ts)
		}
		if maxC < at[i].Deadline {
			at[i].WCET = maxC + 1
			if at[i].WCET <= at[i].Deadline && feasible(at) {
				t.Fatalf("max WCET %d not maximal for %v", maxC, ts)
			}
		}
	}
}

func TestMinDeadlineBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for range 300 {
		ts := randomFeasibleSet(rng)
		i := rng.Intn(len(ts))
		minD, err := MinDeadline(ts, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if minD > ts[i].Deadline || minD < ts[i].WCET {
			t.Fatalf("min deadline %d out of range for %v", minD, ts)
		}
		at := ts.Clone()
		at[i].Deadline = minD
		if !feasible(at) {
			t.Fatalf("reported min deadline %d infeasible for %v", minD, ts)
		}
		if minD > at[i].WCET {
			at[i].Deadline = minD - 1
			if feasible(at) {
				t.Fatalf("min deadline %d not minimal for %v", minD, ts)
			}
		}
	}
}

func TestMinPeriodBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for range 300 {
		ts := randomFeasibleSet(rng)
		i := rng.Intn(len(ts))
		minT, err := MinPeriod(ts, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		at := ts.Clone()
		at[i].Period = minT
		if !feasible(at) {
			t.Fatalf("reported min period %d infeasible for %v", minT, ts)
		}
		if minT > 1 {
			at[i].Period = minT - 1
			if feasible(at) {
				t.Fatalf("min period %d not minimal for %v", minT, ts)
			}
		}
	}
}

func TestCriticalScalingBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	const denom = 1000
	for range 150 {
		ts := randomFeasibleSet(rng)
		num, err := CriticalScaling(ts, denom, nil)
		if err != nil {
			t.Fatal(err)
		}
		if num < denom {
			// The set is feasible as-is, so alpha >= 1 must hold.
			t.Fatalf("critical scaling %d/%d below 1 for feasible %v", num, denom, ts)
		}
		scale := func(n int64) (model.TaskSet, bool) {
			probe := ts.Clone()
			for i := range probe {
				c := (probe[i].WCET*n + denom - 1) / denom
				if c < 1 {
					c = 1
				}
				if c > probe[i].Deadline {
					return nil, false
				}
				probe[i].WCET = c
			}
			return probe, true
		}
		if at, ok := scale(num); !ok || !feasible(at) {
			t.Fatalf("scaling %d/%d not feasible for %v", num, denom, ts)
		}
		if at, ok := scale(num + 1); ok && feasible(at) {
			t.Fatalf("scaling %d/%d not maximal for %v", num, denom, ts)
		}
	}
}

func TestSlackReport(t *testing.T) {
	ts := model.TaskSet{
		{WCET: 2, Deadline: 10, Period: 10},
		{WCET: 3, Deadline: 15, Period: 15},
	}
	slack, err := Slack(ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(slack) != 2 {
		t.Fatalf("slack %v", slack)
	}
	for i, s := range slack {
		if s < 0 {
			t.Errorf("negative slack %d for task %d", s, i)
		}
		at := ts.Clone()
		at[i].WCET += s
		if !feasible(at) {
			t.Errorf("slack %d of task %d not usable", s, i)
		}
	}
}

func TestErrors(t *testing.T) {
	ts := model.TaskSet{{WCET: 2, Deadline: 10, Period: 10}}
	if _, err := MaxWCET(ts, 3, nil); !errors.Is(err, ErrIndex) {
		t.Errorf("index error: %v", err)
	}
	bad := model.TaskSet{
		{WCET: 9, Deadline: 9, Period: 10},
		{WCET: 9, Deadline: 9, Period: 10},
	}
	if _, err := MinDeadline(bad, 0, nil); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible error: %v", err)
	}
	// Critical scaling of an infeasible set answers "how much must the
	// WCETs shrink": a factor below 1, not an error.
	if num, err := CriticalScaling(bad, 100, nil); err != nil || num >= 100 {
		t.Errorf("scaling of infeasible set = %d/100, %v; want < 100", num, err)
	}
	// Only a set infeasible even at the smallest factor errors out
	// (WCETs clamp at 1, so two unit tasks sharing a unit deadline can
	// never become feasible).
	hopeless := model.TaskSet{
		{WCET: 1, Deadline: 1, Period: 1},
		{WCET: 1, Deadline: 1, Period: 1},
	}
	if _, err := CriticalScaling(hopeless, 100, nil); !errors.Is(err, ErrInfeasible) {
		t.Errorf("hopeless scaling error: %v", err)
	}
	if _, err := CriticalScaling(ts, 0, nil); err == nil {
		t.Error("zero denominator accepted")
	}
}

// TestOracleConsistency: results are identical whichever exact test backs
// the oracle.
func TestOracleConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	pdOracle := func(ts model.TaskSet) bool {
		return core.ProcessorDemand(ts, core.Options{}).Verdict == core.Feasible
	}
	dynOracle := func(ts model.TaskSet) bool {
		return core.DynamicError(ts, core.Options{}).Verdict == core.Feasible
	}
	for range 100 {
		ts := randomFeasibleSet(rng)
		i := rng.Intn(len(ts))
		a, err := MaxWCET(ts, i, pdOracle)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MaxWCET(ts, i, dynOracle)
		if err != nil {
			t.Fatal(err)
		}
		c, err := MaxWCET(ts, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a != b || b != c {
			t.Fatalf("oracles disagree: pd=%d dyn=%d all=%d for %v", a, b, c, ts)
		}
	}
}
