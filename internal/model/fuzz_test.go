package model

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON ensures arbitrary input never panics the parser and that
// accepted sets are valid and round-trip losslessly.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"tasks":[{"wcet":1,"deadline":5,"period":5}]}`)
	f.Add(`[{"wcet":2,"deadline":8,"period":10,"phase":1}]`)
	f.Add(`{"name":"x","tasks":[{"wcet":1,"deadline":2,"period":3,"critical_section":1}]}`)
	f.Add(`{}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, input string) {
		ts, name, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := ts.Validate(); err != nil {
			t.Fatalf("accepted invalid set: %v", err)
		}
		var buf bytes.Buffer
		if err := ts.WriteJSON(&buf, name); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		ts2, name2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if name2 != name || len(ts2) != len(ts) {
			t.Fatalf("round trip changed the set")
		}
		for i := range ts {
			if ts[i] != ts2[i] {
				t.Fatalf("task %d changed: %+v -> %+v", i, ts[i], ts2[i])
			}
		}
	})
}
