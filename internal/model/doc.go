// Package model defines the sporadic task model of the paper (Section 2):
// each task has a worst-case execution time C, a relative deadline D
// (measured from release), a minimal inter-arrival distance (period) T and
// an initial release phase. Only the synchronous case (all phases zero) is
// analyzed by the feasibility tests, which is the common assumption the
// paper adopts; phases are carried for the EDF simulator.
//
// All time parameters are integer time units (int64). Task sets are plain
// slices with value semantics; mutating helpers return copies.
package model
