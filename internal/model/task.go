package model

import (
	"errors"
	"fmt"
	"math/big"
)

// Task is a sporadic task τ = (C, D, T, φ).
type Task struct {
	// Name optionally identifies the task in traces and reports.
	Name string `json:"name,omitempty"`
	// WCET is the worst-case execution time C (> 0).
	WCET int64 `json:"wcet"`
	// Deadline is the relative deadline D measured from release (> 0).
	Deadline int64 `json:"deadline"`
	// Period is the minimal distance T between two releases (> 0).
	Period int64 `json:"period"`
	// Phase is the initial release time φ (>= 0). The feasibility tests
	// analyze the synchronous case (all phases zero), which dominates the
	// asynchronous case; the simulator honors phases.
	Phase int64 `json:"phase,omitempty"`
	// CriticalSection is the longest critical section of the task guarded
	// by a shared resource (>= 0), used by the SRP/priority-ceiling
	// blocking extension (Section 3.5 of the paper adopts Devi's
	// extensions into the superposition framework).
	CriticalSection int64 `json:"critical_section,omitempty"`
	// SelfSuspension is the maximal total self-suspension time of one job
	// (>= 0); the overhead-aware tests account for it as additional
	// demand, the (sufficient) treatment of Devi's extension.
	SelfSuspension int64 `json:"self_suspension,omitempty"`
}

// Validate reports the first structural problem of the task, or nil.
func (t Task) Validate() error {
	switch {
	case t.WCET <= 0:
		return fmt.Errorf("model: task %q: WCET %d must be positive", t.Name, t.WCET)
	case t.Deadline <= 0:
		return fmt.Errorf("model: task %q: deadline %d must be positive", t.Name, t.Deadline)
	case t.Period <= 0:
		return fmt.Errorf("model: task %q: period %d must be positive", t.Name, t.Period)
	case t.Phase < 0:
		return fmt.Errorf("model: task %q: phase %d must be non-negative", t.Name, t.Phase)
	case t.CriticalSection < 0:
		return fmt.Errorf("model: task %q: critical section %d must be non-negative", t.Name, t.CriticalSection)
	case t.CriticalSection > t.WCET:
		return fmt.Errorf("model: task %q: critical section %d exceeds WCET %d", t.Name, t.CriticalSection, t.WCET)
	case t.SelfSuspension < 0:
		return fmt.Errorf("model: task %q: self-suspension %d must be non-negative", t.Name, t.SelfSuspension)
	case t.WCET > t.Deadline:
		// A job that cannot finish within its own deadline even alone makes
		// the set trivially infeasible; the tests handle it, but flagging it
		// at construction catches modelling mistakes early.
		return fmt.Errorf("model: task %q: WCET %d exceeds deadline %d (trivially infeasible)", t.Name, t.WCET, t.Deadline)
	}
	return nil
}

// Utilization returns the specific utilization C/T as an exact rational.
func (t Task) Utilization() *big.Rat { return big.NewRat(t.WCET, t.Period) }

// UtilizationFloat returns C/T as float64.
func (t Task) UtilizationFloat() float64 { return float64(t.WCET) / float64(t.Period) }

// Gap returns the relative gap (T-D)/T between period and deadline as used
// by the paper's experiments ("the gap describes the difference between
// deadline and period"). Negative when D > T.
func (t Task) Gap() float64 { return float64(t.Period-t.Deadline) / float64(t.Period) }

// Constrained reports whether D <= T.
func (t Task) Constrained() bool { return t.Deadline <= t.Period }

// String renders the task compactly.
func (t Task) String() string {
	if t.Name != "" {
		return fmt.Sprintf("%s(C=%d D=%d T=%d)", t.Name, t.WCET, t.Deadline, t.Period)
	}
	return fmt.Sprintf("(C=%d D=%d T=%d)", t.WCET, t.Deadline, t.Period)
}

// ErrEmptyTaskSet is returned when validating a task set without tasks.
var ErrEmptyTaskSet = errors.New("model: empty task set")
