package model

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// setFile is the on-disk JSON representation of a named task set.
type setFile struct {
	Name  string `json:"name,omitempty"`
	Tasks []Task `json:"tasks"`
}

// WriteJSON writes the set as indented JSON to w.
func (ts TaskSet) WriteJSON(w io.Writer, name string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(setFile{Name: name, Tasks: ts}); err != nil {
		return fmt.Errorf("model: encoding task set: %w", err)
	}
	return nil
}

// ReadJSON parses a task set from r. It accepts either the full object form
// {"name":..., "tasks":[...]} or a bare JSON array of tasks. The parsed set
// is validated.
func ReadJSON(r io.Reader) (TaskSet, string, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, "", fmt.Errorf("model: reading task set: %w", err)
	}
	var sf setFile
	if err := json.Unmarshal(data, &sf); err != nil {
		var bare []Task
		if err2 := json.Unmarshal(data, &bare); err2 != nil {
			return nil, "", fmt.Errorf("model: parsing task set: %w", err)
		}
		sf = setFile{Tasks: bare}
	}
	ts := TaskSet(sf.Tasks)
	if err := ts.Validate(); err != nil {
		return nil, "", err
	}
	return ts, sf.Name, nil
}

// LoadFile reads a task set from a JSON file.
func LoadFile(path string) (TaskSet, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", fmt.Errorf("model: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}

// SaveFile writes the task set to a JSON file.
func (ts TaskSet) SaveFile(path, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: %w", err)
	}
	defer f.Close()
	return ts.WriteJSON(f, name)
}
