package model

import (
	"fmt"
	"math/big"
	"slices"
	"strings"
)

// TaskSet is an ordered collection of sporadic tasks Γ = {τ1, ..., τn}.
type TaskSet []Task

// Validate reports the first structural problem of the set, or nil.
func (ts TaskSet) Validate() error {
	if len(ts) == 0 {
		return ErrEmptyTaskSet
	}
	for i, t := range ts {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("task %d: %w", i, err)
		}
	}
	return nil
}

// Utilization returns the total utilization U = Σ Ci/Ti exactly.
func (ts TaskSet) Utilization() *big.Rat {
	u := new(big.Rat)
	for _, t := range ts {
		u.Add(u, big.NewRat(t.WCET, t.Period))
	}
	return u
}

// UtilizationFloat returns the total utilization as float64.
func (ts TaskSet) UtilizationFloat() float64 {
	u := 0.0
	for _, t := range ts {
		u += t.UtilizationFloat()
	}
	return u
}

// OverUtilized reports whether U > 1 (exactly).
func (ts TaskSet) OverUtilized() bool { return ts.Utilization().Cmp(big.NewRat(1, 1)) > 0 }

// FullyUtilized reports whether U == 1 (exactly).
func (ts TaskSet) FullyUtilized() bool { return ts.Utilization().Cmp(big.NewRat(1, 1)) == 0 }

// MaxDeadline returns the largest relative deadline, or 0 for an empty set.
func (ts TaskSet) MaxDeadline() int64 {
	var m int64
	for _, t := range ts {
		m = max(m, t.Deadline)
	}
	return m
}

// MinDeadline returns the smallest relative deadline, or 0 for an empty set.
func (ts TaskSet) MinDeadline() int64 {
	if len(ts) == 0 {
		return 0
	}
	m := ts[0].Deadline
	for _, t := range ts[1:] {
		m = min(m, t.Deadline)
	}
	return m
}

// MaxPeriod returns the largest period, or 0 for an empty set.
func (ts TaskSet) MaxPeriod() int64 {
	var m int64
	for _, t := range ts {
		m = max(m, t.Period)
	}
	return m
}

// MinPeriod returns the smallest period, or 0 for an empty set.
func (ts TaskSet) MinPeriod() int64 {
	if len(ts) == 0 {
		return 0
	}
	m := ts[0].Period
	for _, t := range ts[1:] {
		m = min(m, t.Period)
	}
	return m
}

// Constrained reports whether every task has D <= T.
func (ts TaskSet) Constrained() bool {
	for _, t := range ts {
		if !t.Constrained() {
			return false
		}
	}
	return true
}

// ImplicitDeadlines reports whether every task has D == T
// (the Liu & Layland model).
func (ts TaskSet) ImplicitDeadlines() bool {
	for _, t := range ts {
		if t.Deadline != t.Period {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the set.
func (ts TaskSet) Clone() TaskSet { return slices.Clone(ts) }

// SortedByDeadline returns a copy sorted by non-decreasing relative
// deadline, the ordering Devi's test requires. The sort is stable so equal
// deadlines preserve input order.
func (ts TaskSet) SortedByDeadline() TaskSet {
	c := ts.Clone()
	slices.SortStableFunc(c, func(a, b Task) int {
		switch {
		case a.Deadline < b.Deadline:
			return -1
		case a.Deadline > b.Deadline:
			return 1
		default:
			return 0
		}
	})
	return c
}

// Synchronous returns a copy with all phases cleared, the arrival pattern
// the feasibility tests analyze.
func (ts TaskSet) Synchronous() TaskSet {
	c := ts.Clone()
	for i := range c {
		c[i].Phase = 0
	}
	return c
}

// String renders the set one task per line.
func (ts TaskSet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TaskSet{n=%d U=%.4f}\n", len(ts), ts.UtilizationFloat())
	for _, t := range ts {
		fmt.Fprintf(&b, "  %s\n", t)
	}
	return b.String()
}
