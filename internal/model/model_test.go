package model

import (
	"bytes"
	"math/big"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func validTask() Task { return Task{Name: "t", WCET: 2, Deadline: 8, Period: 10} }

func TestTaskValidate(t *testing.T) {
	if err := validTask().Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Task)
	}{
		{"zero wcet", func(x *Task) { x.WCET = 0 }},
		{"negative wcet", func(x *Task) { x.WCET = -1 }},
		{"zero deadline", func(x *Task) { x.Deadline = 0 }},
		{"zero period", func(x *Task) { x.Period = 0 }},
		{"negative phase", func(x *Task) { x.Phase = -1 }},
		{"wcet beyond deadline", func(x *Task) { x.WCET = 9 }},
	}
	for _, c := range cases {
		tk := validTask()
		c.mutate(&tk)
		if err := tk.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestTaskDerived(t *testing.T) {
	tk := Task{WCET: 3, Deadline: 6, Period: 12}
	if got := tk.Utilization(); got.Cmp(big.NewRat(1, 4)) != 0 {
		t.Errorf("utilization = %v, want 1/4", got)
	}
	if got := tk.UtilizationFloat(); got != 0.25 {
		t.Errorf("utilization float = %v", got)
	}
	if got := tk.Gap(); got != 0.5 {
		t.Errorf("gap = %v, want 0.5", got)
	}
	if !tk.Constrained() {
		t.Error("D=6 T=12 should be constrained")
	}
	if (Task{WCET: 1, Deadline: 13, Period: 12}).Constrained() {
		t.Error("D=13 T=12 should not be constrained")
	}
}

func TestTaskSetValidate(t *testing.T) {
	if err := (TaskSet{}).Validate(); err == nil {
		t.Error("empty set should be invalid")
	}
	ts := TaskSet{validTask(), {WCET: 0, Deadline: 1, Period: 1}}
	err := ts.Validate()
	if err == nil || !strings.Contains(err.Error(), "task 1") {
		t.Errorf("error should name the offending task, got %v", err)
	}
}

func TestTaskSetAggregates(t *testing.T) {
	ts := TaskSet{
		{WCET: 1, Deadline: 4, Period: 4},
		{WCET: 3, Deadline: 6, Period: 12},
		{WCET: 5, Deadline: 30, Period: 20},
	}
	if got := ts.Utilization(); got.Cmp(big.NewRat(3, 4)) != 0 {
		t.Errorf("U = %v, want 3/4", got)
	}
	if ts.OverUtilized() {
		t.Error("U=3/4 flagged over-utilized")
	}
	if ts.FullyUtilized() {
		t.Error("U=3/4 flagged fully utilized")
	}
	if got := ts.MaxDeadline(); got != 30 {
		t.Errorf("MaxDeadline = %d", got)
	}
	if got := ts.MinDeadline(); got != 4 {
		t.Errorf("MinDeadline = %d", got)
	}
	if got := ts.MaxPeriod(); got != 20 {
		t.Errorf("MaxPeriod = %d", got)
	}
	if got := ts.MinPeriod(); got != 4 {
		t.Errorf("MinPeriod = %d", got)
	}
	if ts.Constrained() {
		t.Error("set with D=30>T=20 flagged constrained")
	}
	if ts.ImplicitDeadlines() {
		t.Error("set flagged implicit-deadline")
	}

	full := TaskSet{{WCET: 1, Deadline: 2, Period: 2}, {WCET: 1, Deadline: 2, Period: 2}}
	if !full.FullyUtilized() {
		t.Error("U=1 not flagged fully utilized")
	}
}

func TestSortedByDeadlineStable(t *testing.T) {
	ts := TaskSet{
		{Name: "c", WCET: 1, Deadline: 9, Period: 10},
		{Name: "a", WCET: 1, Deadline: 3, Period: 10},
		{Name: "b1", WCET: 1, Deadline: 5, Period: 10},
		{Name: "b2", WCET: 2, Deadline: 5, Period: 10},
	}
	s := ts.SortedByDeadline()
	wantOrder := []string{"a", "b1", "b2", "c"}
	for i, w := range wantOrder {
		if s[i].Name != w {
			t.Fatalf("position %d = %s, want %s", i, s[i].Name, w)
		}
	}
	// Original untouched.
	if ts[0].Name != "c" {
		t.Error("SortedByDeadline mutated the receiver")
	}
}

func TestSynchronousClearsPhases(t *testing.T) {
	ts := TaskSet{{WCET: 1, Deadline: 5, Period: 5, Phase: 3}}
	s := ts.Synchronous()
	if s[0].Phase != 0 {
		t.Error("phase not cleared")
	}
	if ts[0].Phase != 3 {
		t.Error("receiver mutated")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ts := TaskSet{
		{Name: "x", WCET: 2, Deadline: 8, Period: 10, Phase: 1},
		{WCET: 3, Deadline: 15, Period: 15},
	}
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf, "demo"); err != nil {
		t.Fatal(err)
	}
	got, name, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "demo" {
		t.Errorf("name = %q", name)
	}
	if len(got) != 2 || got[0] != ts[0] || got[1] != ts[1] {
		t.Errorf("round trip mismatch: %v", got)
	}
}

func TestReadJSONBareArray(t *testing.T) {
	in := `[{"wcet":1,"deadline":5,"period":5}]`
	got, _, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Period != 5 {
		t.Errorf("parsed %v", got)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`not json`,
		`{"tasks":[{"wcet":0,"deadline":5,"period":5}]}`,
		`{"tasks":[]}`,
	}
	for _, in := range cases {
		if _, _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "set.json")
	ts := TaskSet{{WCET: 1, Deadline: 3, Period: 4}}
	if err := ts.SaveFile(path, "f"); err != nil {
		t.Fatal(err)
	}
	got, name, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "f" || len(got) != 1 || got[0] != ts[0] {
		t.Errorf("got %v name %q", got, name)
	}
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestUtilizationExactMatchesFloat cross-checks the exact rational
// utilization against the float sum on random sets.
func TestUtilizationExactMatchesFloat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		ts := make(TaskSet, 0, n)
		for range n {
			T := int64(1 + rng.Intn(1000))
			C := int64(1 + rng.Intn(int(T)))
			ts = append(ts, Task{WCET: C, Deadline: T, Period: T})
		}
		exact, _ := ts.Utilization().Float64()
		approx := ts.UtilizationFloat()
		diff := exact - approx
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9*(1+exact)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
