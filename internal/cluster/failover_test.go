package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	edf "repro"
	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/service/client"
)

// TestAnalyzeFailover kills one replica mid-stream and checks idempotent
// analyze requests silently fail over to the surviving ring node.
func TestAnalyzeFailover(t *testing.T) {
	tc := startCluster(t, 2, service.Config{})
	ctx := context.Background()
	sets := genSets(t, 12, 31)

	// Warm phase: learn which replica owns which set.
	owner := make([]string, len(sets))
	for i, ts := range sets {
		_, rt, err := tc.c.AnalyzeRouted(ctx, service.AnalyzeRequest{Workload: edf.SporadicWorkload(ts)})
		if err != nil {
			t.Fatalf("warm analyze %d: %v", i, err)
		}
		owner[i] = rt.Replica
	}
	victim := owner[0]
	tc.replicaByURL(t, victim).Kill()

	// Every set — including those owned by the victim — must still get a
	// verdict, now entirely from the survivor.
	for i, ts := range sets {
		resp, rt, err := tc.c.AnalyzeRouted(ctx, service.AnalyzeRequest{Workload: edf.SporadicWorkload(ts)})
		if err != nil {
			t.Fatalf("post-kill analyze %d (owner %s): %v", i, owner[i], err)
		}
		if rt.Replica == victim {
			t.Fatalf("set %d routed to the dead replica", i)
		}
		if resp.Result.Verdict == "" {
			t.Fatalf("set %d: empty verdict after failover", i)
		}
	}
	text := mustMetrics(t, tc.c)
	for _, want := range []string{
		"edfproxy_replicas_healthy 1",
		"edfproxy_replica_ejections_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q after kill:\n%s", want, text)
		}
	}
	// At least the first request aimed at the victim had to fail over.
	if strings.Contains(text, "edfproxy_failovers_total 0") {
		t.Error("no failovers recorded despite a dead owner")
	}
}

// TestBatchFailover checks a split batch completes in full, in order,
// when one replica dies between the warm run and the re-run.
func TestBatchFailover(t *testing.T) {
	tc := startCluster(t, 2, service.Config{})
	ctx := context.Background()
	req := service.BatchRequest{Analyzers: []string{"cascade"}}
	for i, ts := range genSets(t, 16, 43) {
		req.Sets = append(req.Sets, service.WorkloadSet{
			Name: fmt.Sprintf("set-%d", i), Workload: edf.SporadicWorkload(ts),
		})
	}
	warm, _, err := tc.c.BatchRouted(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	tc.sp.Replicas[0].Kill()
	resp, rt, err := tc.c.BatchRouted(ctx, req)
	if err != nil {
		t.Fatalf("batch after kill: %v", err)
	}
	if len(resp.Results) != len(warm.Results) {
		t.Fatalf("post-kill batch: %d results, want %d", len(resp.Results), len(warm.Results))
	}
	for i, jr := range resp.Results {
		if jr.SetIndex != i || jr.Err != "" {
			t.Fatalf("post-kill job %d: index %d err %q", i, jr.SetIndex, jr.Err)
		}
		if jr.Result.Verdict != warm.Results[i].Result.Verdict {
			t.Fatalf("job %d verdict changed across failover: %q vs %q",
				i, jr.Result.Verdict, warm.Results[i].Result.Verdict)
		}
	}
	if rep := tc.sp.Replicas[0].URL; strings.Contains(rt.Replica, rep) {
		t.Fatalf("post-kill batch reportedly served by dead replica: %s", rt.Replica)
	}
}

// TestSessionOwnerDown503 pins the sticky-session failure contract: when
// a session's owner dies, requests for it surface a clear 503 naming the
// owner rather than silently rebuilding an empty session elsewhere.
func TestSessionOwnerDown503(t *testing.T) {
	tc := startCluster(t, 2, service.Config{})
	ctx := context.Background()
	h, _, err := tc.c.OpenSession(ctx, service.SessionRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{WCET: 2, Deadline: 8, Period: 10}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find the owner via each replica's session gauge, then kill it.
	var ownerURL string
	for _, rep := range tc.sp.Replicas {
		text, err := client.New(rep.URL, nil).Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(text, "edfd_sessions_active 1") {
			ownerURL = rep.URL
		}
	}
	if ownerURL == "" {
		t.Fatal("no replica reports the session")
	}
	tc.replicaByURL(t, ownerURL).Kill()

	_, err = h.Propose(ctx, service.ProposeRequest{
		Task: service.SporadicTask(edf.Task{WCET: 1, Deadline: 50, Period: 100}),
	})
	var ce *client.Error
	if !errors.As(err, &ce) {
		t.Fatalf("propose against dead owner: err %v, want client.Error", err)
	}
	if ce.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", ce.StatusCode)
	}
	if !strings.Contains(ce.Message, ownerURL) {
		t.Fatalf("503 message does not name the owner %s: %q", ownerURL, ce.Message)
	}
	if !strings.Contains(ce.Message, h.ID) {
		t.Fatalf("503 message does not name the session %s: %q", h.ID, ce.Message)
	}
	// Analyze traffic keeps flowing throughout.
	if _, _, err := tc.c.Analyze(ctx, service.AnalyzeRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{WCET: 1, Deadline: 9, Period: 10}}),
	}); err != nil {
		t.Fatalf("analyze while a replica is down: %v", err)
	}
	// And new sessions open on the survivor.
	h2, _, err := tc.c.OpenSession(ctx, service.SessionRequest{})
	if err != nil {
		t.Fatalf("open session after owner death: %v", err)
	}
	if _, _, err := h2.State(ctx); err != nil {
		t.Fatalf("new session unusable: %v", err)
	}
}

// TestHealthEjectAndReadmit drives the full health lifecycle without the
// background ticker: a replica that stops answering /healthz is ejected
// on the next sweep, and re-admitted — with ring rebalancing — when it
// answers again.
func TestHealthEjectAndReadmit(t *testing.T) {
	sp, err := cluster.Spawn(1, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	// A second "replica" whose lifecycle the test controls directly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flakyURL := "http://" + ln.Addr().String()
	flaky := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"status":"ok"}`)
	})}
	serving := make(chan struct{})
	go func() { close(serving); _ = flaky.Serve(ln) }()
	<-serving

	p, err := cluster.New(cluster.Config{Replicas: []string{sp.URLs()[0], flakyURL}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p.CheckReplicas(ctx)
	if got := healthyCount(t, p); got != 2 {
		t.Fatalf("healthy = %d, want 2", got)
	}

	// Take the flaky replica down; the sweep must eject it.
	_ = flaky.Close()
	p.CheckReplicas(ctx)
	if got := healthyCount(t, p); got != 1 {
		t.Fatalf("healthy after close = %d, want 1", got)
	}

	// Bring it back on the same address; the sweep must re-admit it.
	ln2, err := net.Listen("tcp", ln.Addr().String())
	if err != nil {
		t.Skipf("could not rebind %s: %v", ln.Addr(), err)
	}
	flaky2 := &http.Server{Handler: flaky.Handler}
	go func() { _ = flaky2.Serve(ln2) }()
	defer flaky2.Close()
	p.CheckReplicas(ctx)
	if got := healthyCount(t, p); got != 2 {
		t.Fatalf("healthy after recovery = %d, want 2", got)
	}
}

// healthyCount reads the proxy's own healthz gauge.
func healthyCount(t testing.TB, p *cluster.Proxy) int {
	t.Helper()
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var body struct {
		Healthy int `json:"healthy"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	return body.Healthy
}
