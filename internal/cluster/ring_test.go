package cluster_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
)

func ringOf(nodes ...string) *cluster.Ring {
	r := cluster.NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := cluster.NewRing(0)
	if got := r.Get("key"); got != "" {
		t.Fatalf("empty ring returned %q", got)
	}
	if seq := r.Seq("key"); seq != nil {
		t.Fatalf("empty ring Seq = %v", seq)
	}
	r.Add("a")
	for _, key := range []string{"x", "y", "z"} {
		if got := r.Get(key); got != "a" {
			t.Fatalf("single-node ring sent %q to %q", key, got)
		}
	}
}

// TestRingOrderIndependence pins that membership order cannot change the
// layout: a proxy restart that re-adds replicas in a different order must
// not shuffle the key space.
func TestRingOrderIndependence(t *testing.T) {
	a := ringOf("n1", "n2", "n3", "n4")
	b := ringOf("n4", "n2", "n1", "n3")
	for i := range 1000 {
		key := fmt.Sprintf("key-%d", i)
		if a.Get(key) != b.Get(key) {
			t.Fatalf("key %q owner depends on insertion order: %q vs %q", key, a.Get(key), b.Get(key))
		}
	}
}

// TestRingBalance checks virtual nodes spread keys roughly evenly: each
// of 4 nodes should own 25% +- 12 points of a large key population.
func TestRingBalance(t *testing.T) {
	r := ringOf("n1", "n2", "n3", "n4")
	counts := map[string]int{}
	const keys = 10000
	for i := range keys {
		counts[r.Get(fmt.Sprintf("key-%d", i))]++
	}
	for node, c := range counts {
		share := float64(c) / keys
		if share < 0.13 || share > 0.37 {
			t.Errorf("node %s owns %.1f%% of the key space", node, 100*share)
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d of 4 nodes own keys: %v", len(counts), counts)
	}
}

// TestRingMinimalRemap is the consistent-hashing contract: removing one
// of N nodes remaps only that node's share (~1/N); every other key keeps
// its owner. Re-adding the node restores the original layout exactly.
func TestRingMinimalRemap(t *testing.T) {
	r := ringOf("n1", "n2", "n3", "n4")
	const keys = 10000
	before := make([]string, keys)
	for i := range keys {
		before[i] = r.Get(fmt.Sprintf("key-%d", i))
	}
	r.Remove("n3")
	moved := 0
	for i := range keys {
		after := r.Get(fmt.Sprintf("key-%d", i))
		if after == "n3" {
			t.Fatalf("key-%d still routed to the removed node", i)
		}
		if after != before[i] {
			if before[i] != "n3" {
				t.Fatalf("key-%d moved from surviving node %q to %q", i, before[i], after)
			}
			moved++
		}
	}
	// Every n3 key moved, and n3 held roughly a quarter of the space.
	if share := float64(moved) / keys; share < 0.10 || share > 0.40 {
		t.Errorf("removal remapped %.1f%% of keys, want ~25%%", 100*share)
	}
	r.Add("n3")
	for i := range keys {
		if got := r.Get(fmt.Sprintf("key-%d", i)); got != before[i] {
			t.Fatalf("key-%d owner %q != original %q after re-admission", i, got, before[i])
		}
	}
}

// TestRingSeq pins the failover order: Seq starts at the owner, covers
// every node exactly once, and its tail matches the ring after the owner
// is removed (so failover and ejection agree on the next node).
func TestRingSeq(t *testing.T) {
	r := ringOf("n1", "n2", "n3")
	for i := range 100 {
		key := fmt.Sprintf("key-%d", i)
		seq := r.Seq(key)
		if len(seq) != 3 {
			t.Fatalf("Seq(%q) = %v, want 3 distinct nodes", key, seq)
		}
		if seq[0] != r.Get(key) {
			t.Fatalf("Seq(%q)[0] = %q, owner = %q", key, seq[0], r.Get(key))
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("Seq(%q) repeats %q: %v", key, n, seq)
			}
			seen[n] = true
		}
		// The failover target must be where the key lands post-ejection.
		r2 := ringOf("n1", "n2", "n3")
		r2.Remove(seq[0])
		if got := r2.Get(key); got != seq[1] {
			t.Fatalf("key %q: failover target %q but post-ejection owner %q", key, seq[1], got)
		}
	}
}

func TestRingDoubleAddRemove(t *testing.T) {
	r := ringOf("n1", "n2")
	r.Add("n1") // no-op
	if r.Len() != 2 {
		t.Fatalf("Len = %d after duplicate Add", r.Len())
	}
	r.Remove("n9") // no-op
	if r.Len() != 2 {
		t.Fatalf("Len = %d after absent Remove", r.Len())
	}
	if got := fmt.Sprint(r.Nodes()); got != "[n1 n2]" {
		t.Fatalf("Nodes = %s", got)
	}
}
