// Package cluster scales the edfd feasibility service horizontally: a
// consistent-hash ring with virtual nodes maps content-addressed workload
// fingerprints onto edfd replicas, and Proxy is an HTTP reverse proxy
// that routes /v1/analyze by that ring, splits /v1/batch per fingerprint
// across replicas (re-merging per-job results in deterministic order),
// pins admission sessions to the replica that created them, health-checks
// replicas (ejecting and re-admitting them with ring rebalancing), fails
// idempotent requests over to the next ring node, and serves an aggregate
// /metrics page merging replica counters with its own routing counters.
//
// Because edfd's result cache is keyed by the same fingerprints
// (engine.WorkloadFingerprint), ring routing gives cache affinity for
// free: identical workloads always land on the replica that already holds
// their results, so N replicas approach N disjoint caches rather than N
// copies of one.
//
// Spawner boots real in-process replicas on ephemeral ports for tests and
// benchmarks; cmd/edfproxy wraps Proxy as a standalone daemon.
package cluster
