// Package cluster scales the edfd feasibility service horizontally: a
// consistent-hash ring with virtual nodes maps content-addressed workload
// fingerprints onto edfd replicas, and Proxy is an HTTP reverse proxy
// that routes /v1/analyze by that ring, splits /v1/batch per fingerprint
// across replicas (re-merging per-job results in deterministic order),
// pins admission sessions to the replica that created them, health-checks
// replicas (ejecting and re-admitting them with ring rebalancing), fails
// idempotent requests over to the next ring node, and serves an aggregate
// /metrics page merging replica counters with its own routing counters.
//
// Because edfd's result cache is keyed by the same fingerprints
// (engine.WorkloadFingerprint), ring routing gives cache affinity for
// free: identical workloads always land on the replica that already holds
// their results, so N replicas approach N disjoint caches rather than N
// copies of one.
//
// The proxy is also the fleet's observability plane. Every routed
// request carries a trace (internal/obs) propagated to the replica via
// X-Edf-Trace; GET /v1/traces/{id} merges the proxy's routing spans
// (forward attempts, sub-batch fan-out, session routing) with the
// replicas' own spans, each labeled with its origin replica, on one
// shared time axis. GET /v1/events fans every replica's admission feed
// into one fleet-wide server-sent-events stream — events labeled with
// their replica, relays redialing ejected replicas until they return —
// and the aggregate /metrics page is Prometheus text exposition:
// replica families summed fleet-wide next to per-replica
// {replica="..."} samples, with fleet hit-rate and propose-latency
// quantiles recomputed from the summed histograms.
//
// Spawner boots real in-process replicas on ephemeral ports for tests and
// benchmarks; cmd/edfproxy wraps Proxy as a standalone daemon.
package cluster
