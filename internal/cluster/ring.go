package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the ring's default points-per-node count. 128
// points keep the per-node share of the key space within a few percent
// of 1/N for small clusters while membership changes stay cheap (the
// ring is rebuilt on Add/Remove, never on lookups).
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring with virtual nodes. Keys and nodes hash
// onto the same 64-bit circle; a key is owned by the first node point at
// or clockwise after its hash. Adding or removing one node therefore
// remaps only the ~1/N of the key space adjacent to its points, which is
// exactly the property that keeps replica caches warm across membership
// changes.
//
// Ring is not concurrency-safe; Proxy guards it with its own lock.
type Ring struct {
	vnodes int
	nodes  map[string]bool
	points []point // sorted by hash, ties broken by node name
}

// point is one virtual node on the circle.
type point struct {
	hash uint64
	node string
}

// NewRing builds an empty ring; vnodes <= 0 selects DefaultVirtualNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// Add inserts a node (a replica identity such as its base URL); adding a
// present node is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	r.rebuild()
}

// Remove ejects a node; removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	r.rebuild()
}

// Len returns the number of (real) nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the ring membership in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the node owning key, or "" on an empty ring.
func (r *Ring) Get(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].node
}

// Seq returns every node in ring order starting at key's owner — the
// failover sequence: requests for key spill onto Seq(key)[1], then [2],
// as nodes fail. The slice is freshly allocated.
func (r *Ring) Seq(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]bool, len(r.nodes))
	for i, start := 0, r.search(key); i < len(r.points) && len(out) < len(r.nodes); i++ {
		n := r.points[(start+i)%len(r.points)].node
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// search returns the index of the first point at or clockwise after the
// key's hash.
func (r *Ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the circle
	}
	return i
}

// rebuild re-derives the sorted point list from the node set. Point
// placement depends only on (node, index), so the ring layout is
// independent of insertion order and identical across proxy restarts.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for node := range r.nodes {
		for i := range r.vnodes {
			r.points = append(r.points, point{ringHash(node + "#" + strconv.Itoa(i)), node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// ringHash is 64-bit FNV-1a followed by a murmur-style finalizer: fast,
// dependency-free and stable across processes (the layout must match
// between proxy restarts so a rolling proxy deploy does not shuffle the
// key space). Bare FNV-1a clusters badly on short, similar inputs —
// exactly what "node#0".."node#127" vnode labels are — so the finalizer
// mixes the bits until point placement is effectively uniform.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// String renders a compact membership summary for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d nodes, %d vnodes)", len(r.nodes), r.vnodes)
}
