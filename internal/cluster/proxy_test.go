package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	edf "repro"
	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/service/client"
)

// testCluster is n in-process replicas behind an in-process proxy.
type testCluster struct {
	sp *cluster.Spawner
	p  *cluster.Proxy
	hs *httptest.Server
	c  *client.Client
}

// startCluster boots the fixture. The background health checker stays
// off; tests that need a sweep call p.CheckReplicas explicitly, so
// nothing in here is timing-dependent.
func startCluster(t testing.TB, n int, cfg service.Config) *testCluster {
	t.Helper()
	sp, err := cluster.Spawn(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sp.Close)
	p, err := cluster.New(cluster.Config{Replicas: sp.URLs()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(p.Handler())
	t.Cleanup(hs.Close)
	return &testCluster{sp: sp, p: p, hs: hs, c: client.New(hs.URL, hs.Client())}
}

// replicaByURL finds the spawned replica behind a base URL.
func (tc *testCluster) replicaByURL(t testing.TB, url string) *cluster.Replica {
	t.Helper()
	for _, rep := range tc.sp.Replicas {
		if rep.URL == url {
			return rep
		}
	}
	t.Fatalf("no replica with URL %q among %v", url, tc.sp.URLs())
	return nil
}

// genSets builds n distinct feasible-ish sporadic workloads.
func genSets(t testing.TB, n int, seed int64) []edf.TaskSet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]edf.TaskSet, 0, n)
	for len(out) < n {
		ts, err := edf.Generate(edf.GenConfig{
			N: 8, Utilization: 0.75,
			PeriodMin: 100, PeriodMax: 10000, GapMean: 0.2,
		}, rng)
		if err != nil {
			continue
		}
		out = append(out, ts)
	}
	return out
}

func eventSet() []edf.EventTask {
	return []edf.EventTask{
		{Name: "periodic", WCET: 2, Deadline: 9, Stream: edf.PeriodicStream(10)},
		{Name: "burst", WCET: 1, Deadline: 24, Stream: edf.BurstStream(50, 3, 4)},
	}
}

// TestProxyAnalyzeAffinity is the point of the whole subsystem: repeated
// identical workloads must land on the same replica and hit its cache,
// while distinct workloads spread across the fleet.
func TestProxyAnalyzeAffinity(t *testing.T) {
	tc := startCluster(t, 2, service.Config{})
	ctx := context.Background()
	sets := genSets(t, 24, 11)
	servedBy := map[string]int{}
	for i, ts := range sets {
		first, rt1, err := tc.c.AnalyzeRouted(ctx, service.AnalyzeRequest{
			Name: fmt.Sprintf("set-%d", i), Workload: edf.SporadicWorkload(ts),
		})
		if err != nil {
			t.Fatalf("analyze set %d: %v", i, err)
		}
		if first.Cached {
			t.Fatalf("set %d: first analysis already cached", i)
		}
		if rt1.Replica == "" || rt1.Attempts != 1 {
			t.Fatalf("set %d: route %+v", i, rt1)
		}
		again, rt2, err := tc.c.AnalyzeRouted(ctx, service.AnalyzeRequest{
			Name: fmt.Sprintf("set-%d", i), Workload: edf.SporadicWorkload(ts),
		})
		if err != nil {
			t.Fatalf("re-analyze set %d: %v", i, err)
		}
		if !again.Cached {
			t.Errorf("set %d: repeat was not a cache hit", i)
		}
		if rt2.Replica != rt1.Replica {
			t.Errorf("set %d: repeat routed to %s, first to %s", i, rt2.Replica, rt1.Replica)
		}
		if again.Fingerprint != first.Fingerprint {
			t.Errorf("set %d: fingerprint changed across repeats", i)
		}
		servedBy[rt1.Replica]++
	}
	// 24 distinct fingerprints over 2 replicas: both must see traffic.
	if len(servedBy) != 2 {
		t.Errorf("all workloads routed to one replica: %v", servedBy)
	}
	// The replicas' own cache counters must corroborate the affinity: one
	// hit per repeated workload, fleet-wide.
	var hits uint64
	for _, rep := range tc.sp.Replicas {
		hits += rep.Server().CacheStats().Hits
	}
	if hits != uint64(len(sets)) {
		t.Errorf("fleet cache hits = %d, want %d", hits, len(sets))
	}
}

// TestProxyAnalyzeEventsDomain checks the events model routes and caches
// through the proxy too, in its own fingerprint domain.
func TestProxyAnalyzeEventsDomain(t *testing.T) {
	tc := startCluster(t, 2, service.Config{})
	ctx := context.Background()
	ev, _, err := tc.c.Analyze(ctx, service.AnalyzeRequest{Workload: edf.EventWorkload(eventSet())})
	if err != nil {
		t.Fatal(err)
	}
	sp, _, err := tc.c.Analyze(ctx, service.AnalyzeRequest{
		Workload: edf.SporadicWorkload(edf.TaskSet{{WCET: 2, Deadline: 9, Period: 10}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Fingerprint == sp.Fingerprint {
		t.Fatalf("event and sporadic workloads share fingerprint %s", ev.Fingerprint)
	}
	if ev.Model != "events" {
		t.Fatalf("event analysis reported model %q", ev.Model)
	}
	again, _, err := tc.c.Analyze(ctx, service.AnalyzeRequest{Workload: edf.EventWorkload(eventSet())})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeated event workload missed the cache")
	}
}

// TestProxyBatchSplitMerge drives a mixed-model batch large enough to be
// split across both replicas and pins the merge contract: set-major
// order, original set indices, per-set analyzer order, and a
// byte-identical response on repetition.
func TestProxyBatchSplitMerge(t *testing.T) {
	tc := startCluster(t, 2, service.Config{})
	ctx := context.Background()
	analyzers := []string{"allapprox", "cascade"}
	req := service.BatchRequest{Analyzers: analyzers}
	for i, ts := range genSets(t, 15, 7) {
		req.Sets = append(req.Sets, service.WorkloadSet{
			Name: fmt.Sprintf("set-%d", i), Workload: edf.SporadicWorkload(ts),
		})
	}
	req.Sets = append(req.Sets, service.WorkloadSet{Name: "events", Workload: edf.EventWorkload(eventSet())})

	resp, rt, err := tc.c.BatchRouted(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(req.Sets) * len(analyzers); len(resp.Results) != want {
		t.Fatalf("got %d results, want %d", len(resp.Results), want)
	}
	for i, jr := range resp.Results {
		wantSet, wantAnalyzer := i/len(analyzers), analyzers[i%len(analyzers)]
		if jr.SetIndex != wantSet {
			t.Fatalf("result %d: set index %d, want %d", i, jr.SetIndex, wantSet)
		}
		if jr.SetName != req.Sets[wantSet].Name {
			t.Fatalf("result %d: set name %q, want %q", i, jr.SetName, req.Sets[wantSet].Name)
		}
		if jr.Analyzer != wantAnalyzer {
			t.Fatalf("result %d: analyzer %q, want %q", i, jr.Analyzer, wantAnalyzer)
		}
		if jr.Err != "" {
			t.Fatalf("job %d (%s/%s) failed: %s", i, jr.SetName, jr.Analyzer, jr.Err)
		}
	}
	// 16 distinct fingerprints over 2 replicas virtually guarantees a
	// split; the header then names both replicas.
	if strings.Contains(rt.Replica, ",") {
		for _, rep := range strings.Split(rt.Replica, ",") {
			tc.replicaByURL(t, rep) // must be a real fleet member
		}
	}

	// Determinism + affinity: the identical batch re-merges to the exact
	// same payload, now fully from the caches.
	again, _, err := tc.c.BatchRouted(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range again.Results {
		if !jr.Cached {
			t.Errorf("repeat job %d (%s/%s) missed the cache", i, jr.SetName, jr.Analyzer)
		}
	}
	norm := func(r service.BatchResponse) string {
		for i := range r.Results {
			r.Results[i].WallNS = 0 // timing differs; order and content must not
			r.Results[i].Cached = false
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := norm(resp), norm(again); a != b {
		t.Fatalf("batch responses differ across identical requests:\n%s\nvs\n%s", a, b)
	}
}

// TestProxySessionSticky opens a session through the proxy and checks
// every follow-up verb lands on the owning replica.
func TestProxySessionSticky(t *testing.T) {
	tc := startCluster(t, 3, service.Config{})
	ctx := context.Background()
	seed := edf.TaskSet{
		{Name: "ctrl", WCET: 2, Deadline: 8, Period: 10},
		{Name: "io", WCET: 3, Deadline: 15, Period: 15},
	}
	h, state, err := tc.c.OpenSession(ctx, service.SessionRequest{Workload: edf.SporadicWorkload(seed)})
	if err != nil {
		t.Fatal(err)
	}
	if state.Committed != 2 {
		t.Fatalf("seed not committed: %+v", state)
	}
	// Drive several verbs; each must succeed against the same owner. The
	// owner is observable via the sessions_active metric of exactly one
	// replica.
	for i := range 4 {
		presp, err := h.Propose(ctx, service.ProposeRequest{
			Task: service.SporadicTask(edf.Task{Name: "t" + strconv.Itoa(i), WCET: 1, Deadline: 80, Period: 100 + int64(i)}),
		})
		if err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
		if !presp.Admitted {
			t.Fatalf("propose %d rejected: %+v", i, presp)
		}
	}
	if _, err := h.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	st, _, err := h.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 6 || st.Pending != 0 {
		t.Fatalf("state after commit: %+v", st)
	}
	// Count replicas holding a session: stickiness means exactly one.
	owner, owners := "", 0
	for _, rep := range tc.sp.Replicas {
		mtext, err := client.New(rep.URL, nil).Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(mtext, "edfd_sessions_active 1") {
			owner = rep.URL
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("session lives on %d replicas, want exactly 1", owners)
	}
	if err := h.Close(ctx); err != nil {
		t.Fatal(err)
	}
	mtext, err := client.New(owner, nil).Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mtext, "edfd_sessions_active 0") {
		t.Error("session not closed on its owner")
	}
}

// TestProxyMetricsAggregate checks the merged metrics page: proxy
// counters, fleet-summed replica counters, a recomputed hit rate and
// per-replica labeled lines.
func TestProxyMetricsAggregate(t *testing.T) {
	tc := startCluster(t, 2, service.Config{})
	ctx := context.Background()
	wl := edf.SporadicWorkload(edf.TaskSet{{WCET: 2, Deadline: 9, Period: 10}})
	for range 3 {
		if _, _, err := tc.c.Analyze(ctx, service.AnalyzeRequest{Workload: wl}); err != nil {
			t.Fatal(err)
		}
	}
	text := mustMetrics(t, tc.c)
	// requests_total counts every request entering the proxy — the three
	// analyzes plus this very metrics scrape.
	for _, want := range []string{
		"edfproxy_requests_total 4",
		"edfproxy_analyze_routed_total 3",
		"edfproxy_replicas_healthy 2",
		"edfproxy_failovers_total 0",
		"edfd_analyses_total 3",
		"edfd_cache_hits 2",
		"edfd_cache_hit_rate 0.6667",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics page missing %q:\n%s", want, text)
		}
	}
	// Per-replica lines: the repeated workload hit exactly one replica's
	// cache; the other replica reports zero hits.
	hot, cold := 0, 0
	for _, rep := range tc.sp.Replicas {
		if strings.Contains(text, fmt.Sprintf("edfd_cache_hits{replica=%q} 2", rep.URL)) {
			hot++
		}
		if strings.Contains(text, fmt.Sprintf("edfd_cache_hits{replica=%q} 0", rep.URL)) {
			cold++
		}
	}
	if hot != 1 || cold != 1 {
		t.Errorf("per-replica cache hits not concentrated (hot=%d cold=%d):\n%s", hot, cold, text)
	}
}

func mustMetrics(t testing.TB, c *client.Client) string {
	t.Helper()
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return text
}

// TestProxyAnalyzersForward checks registry listing passes through.
func TestProxyAnalyzersForward(t *testing.T) {
	tc := startCluster(t, 2, service.Config{})
	list, err := tc.c.Analyzers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, a := range list {
		names[a.Name] = true
	}
	for _, want := range []string{"cascade", "qpa", "pd"} {
		if !names[want] {
			t.Errorf("analyzer listing missing %q: %v", want, names)
		}
	}
}

// TestProxySplitBatchRelaysClientError pins that a replica's
// authoritative 4xx keeps its status through the split path: an unknown
// analyzer is the client's mistake (400) regardless of how many
// replicas the batch sharded across.
func TestProxySplitBatchRelaysClientError(t *testing.T) {
	tc := startCluster(t, 2, service.Config{})
	req := service.BatchRequest{Analyzers: []string{"no-such-analyzer"}}
	for i, ts := range genSets(t, 16, 59) { // 16 sets: a split is near-certain
		req.Sets = append(req.Sets, service.WorkloadSet{
			Name: fmt.Sprintf("set-%d", i), Workload: edf.SporadicWorkload(ts),
		})
	}
	_, _, err := tc.c.Batch(context.Background(), req)
	var ce *client.Error
	if !errors.As(err, &ce) {
		t.Fatalf("err %v, want client.Error", err)
	}
	if ce.StatusCode != 400 {
		t.Fatalf("unknown analyzer through the split path: status %d, want 400", ce.StatusCode)
	}
	if !strings.Contains(ce.Message, "no-such-analyzer") {
		t.Fatalf("relayed error lost the replica's message: %q", ce.Message)
	}
}

// TestProxyBadRequests pins the proxy's own error contract.
func TestProxyBadRequests(t *testing.T) {
	tc := startCluster(t, 1, service.Config{})
	resp, err := tc.hs.Client().Post(tc.hs.URL+"/v1/analyze", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed analyze body: status %d", resp.StatusCode)
	}
	var er service.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Fatalf("error body not the uniform schema: %v %+v", err, er)
	}
	// Unknown session id: proxied to a replica, which answers 404.
	resp2, err := tc.hs.Client().Get(tc.hs.URL + "/v1/sessions/no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Fatalf("unknown session: status %d", resp2.StatusCode)
	}
}
