package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// Fleet feed relay tuning: reconnects back off exponentially between
// these bounds, so a dead replica costs one cheap dial every couple of
// seconds while a recovered one rejoins the feed within a backoff step.
const (
	relayBackoffMin = 200 * time.Millisecond
	relayBackoffMax = 2 * time.Second
)

// handleEvents serves the fleet-wide admission feed: one SSE stream
// fanning in every configured replica's /v1/events, each event stamped
// with the replica that published it. Relays dial all configured
// replicas — healthy or not — and reconnect with backoff, so the feed
// survives replica ejection and re-admission without missing the
// recovered replica's new events.
func (p *Proxy) handleEvents(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	ch := make(chan obs.Event, obs.DefaultSubscriberBuffer)
	for rep := range p.replicaStates() {
		go p.relayEvents(ctx, rep, ch)
	}
	p.m.eventSubscribers.Add(1)
	defer p.m.eventSubscribers.Add(-1)

	fl, _ := w.(http.Flusher)
	h := w.Header()
	h.Set("Content-Type", obs.SSEContentType)
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if fl != nil {
		fl.Flush()
	}
	tick := time.NewTicker(obs.DefaultHeartbeat)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-p.stop:
			return
		case ev := <-ch:
			if obs.WriteSSEEvent(w, ev) != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case <-tick.C:
			if _, err := io.WriteString(w, ": keep-alive\n\n"); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
	}
}

// relayEvents streams one replica's feed into out until ctx ends or the
// proxy closes. Dial failures do not eject the replica — the health
// sweeper owns membership; the relay just keeps retrying so the stream
// resumes the moment the replica answers again.
func (p *Proxy) relayEvents(ctx context.Context, rep string, out chan<- obs.Event) {
	backoff := relayBackoffMin
	for {
		if ctx.Err() != nil {
			return
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep+"/v1/events", nil)
		if err != nil {
			return
		}
		resp, err := p.hc.Do(req)
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				backoff = relayBackoffMin
				sc := obs.NewSSEScanner(resp.Body)
				for {
					ev, err := sc.NextEvent()
					if err != nil {
						break
					}
					ev.Replica = rep
					p.m.eventsRelayed.Add(1)
					select {
					case out <- ev:
					case <-ctx.Done():
						resp.Body.Close()
						return
					case <-p.stop:
						resp.Body.Close()
						return
					}
				}
			} else {
				io.Copy(io.Discard, resp.Body)
			}
			resp.Body.Close()
		}
		select {
		case <-ctx.Done():
			return
		case <-p.stop:
			return
		case <-time.After(backoff):
		}
		if backoff < relayBackoffMax {
			backoff *= 2
		}
	}
}

// handleTraces lists the proxy's recent traces. Every proxied request
// mints or adopts a trace at this layer, so the proxy's own ring is the
// fleet-wide listing.
func (p *Proxy) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := defaultRecentTraces
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			p.fail(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", q))
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, service.TracesResponse{Traces: p.traces.Recent(n)})
}

// defaultRecentTraces mirrors the service default for GET /v1/traces.
const defaultRecentTraces = 64

// handleTrace returns the merged fleet view of one trace: the proxy's
// own routing spans plus every replica fragment recorded under the same
// ID, replica spans stamped with their origin and re-anchored onto the
// proxy's clock so the whole request reads as one timeline.
func (p *Proxy) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	fragments := p.collectReplicaTraces(r.Context(), id)
	local, ok := p.traces.Get(id)
	if !ok && len(fragments) == 0 {
		p.fail(w, http.StatusNotFound, errors.New("cluster: unknown trace"))
		return
	}
	var merged obs.Trace
	if ok {
		merged = obs.Trace{
			ID: local.ID, Op: local.Op, Session: local.Session,
			Path: local.Path, StartUnixNS: local.StartUnixNS,
			Spans: append([]obs.Span(nil), local.Spans...),
		}
	} else {
		// The proxy never recorded this request (hit a replica directly, or
		// aged out of the ring): anchor on the earliest replica fragment.
		first := fragments[0].t
		merged = obs.Trace{ID: id, Op: first.Op, StartUnixNS: first.StartUnixNS}
	}
	for _, fr := range fragments {
		delta := fr.t.StartUnixNS - merged.StartUnixNS
		for _, sp := range fr.t.Spans {
			sp.StartNS += delta
			if sp.Replica == "" {
				sp.Replica = fr.rep
			}
			merged.Spans = append(merged.Spans, sp)
		}
		if merged.Session == "" {
			merged.Session = fr.t.Session
		}
		if merged.Path == "" {
			merged.Path = fr.t.Path
		}
	}
	writeJSON(w, http.StatusOK, &merged)
}

// traceFragment is one replica's record of a trace.
type traceFragment struct {
	rep string
	t   obs.Trace
}

// collectReplicaTraces asks every healthy replica for its fragment of a
// trace, in parallel, ordered oldest-first.
func (p *Proxy) collectReplicaTraces(ctx context.Context, id string) []traceFragment {
	var mu sync.Mutex
	var out []traceFragment
	var wg sync.WaitGroup
	for rep, healthy := range p.replicaStates() {
		if !healthy {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := p.post(ctx, http.MethodGet, rep, "/v1/traces/"+url.PathEscape(id), nil)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				return
			}
			var t obs.Trace
			if json.NewDecoder(io.LimitReader(resp.Body, maxRequestBytes)).Decode(&t) != nil {
				return
			}
			mu.Lock()
			out = append(out, traceFragment{rep: rep, t: t})
			mu.Unlock()
		}()
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i].t.StartUnixNS < out[j].t.StartUnixNS })
	return out
}
