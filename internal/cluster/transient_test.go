package cluster_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
)

// TestTransientOwnerErrorDoesNotTakeover pins the duplicate-execution
// guard: one failed request to an owner that still answers /healthz is
// NOT a death — the request may have been applied with only the
// response lost, so re-executing it on a takeover peer would duplicate
// the decision and fork the session. The client must get a 503 naming
// the live owner, the peer must never see the request, and the next
// request must go straight back to the owner.
func TestTransientOwnerErrorDoesNotTakeover(t *testing.T) {
	var fail atomic.Bool
	var ownerHits, peerHits atomic.Int64
	healthz := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			healthz(w)
			return
		}
		ownerHits.Add(1)
		if fail.Load() {
			// Abort the connection before any response bytes: the proxy
			// sees a transport error and cannot know whether the request
			// was applied — the lost-reply shape.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("test server does not support hijacking")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"id":"probe"}`))
	}))
	defer owner.Close()
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			healthz(w)
			return
		}
		peerHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"id":"peer"}`))
	}))
	defer peer.Close()

	p, err := cluster.New(cluster.Config{Replicas: []string{owner.URL, peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	hs := httptest.NewServer(p.Handler())
	defer hs.Close()

	// Find a session id the ring assigns to the failure-injecting
	// replica (unknown ids route by ring hash, which depends on the
	// ephemeral port in the URL).
	var id string
	for i := range 64 {
		cand := fmt.Sprintf("s_route_probe_%d", i)
		before := ownerHits.Load()
		resp, err := hs.Client().Get(hs.URL + "/v1/sessions/" + cand)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if ownerHits.Load() > before {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no probe id hashed onto the first replica")
	}

	peerHits.Store(0)
	fail.Store(true)
	resp, err := hs.Client().Get(hs.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status after transient owner error = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(cluster.HeaderOwner); got != owner.URL {
		t.Fatalf("X-Edf-Owner = %q, want the live owner %q", got, owner.URL)
	}
	if got := resp.Header.Get(cluster.HeaderTakeover); got != "" {
		t.Fatalf("X-Edf-Takeover = %q on a transient error, want none", got)
	}
	if n := peerHits.Load(); n != 0 {
		t.Fatalf("takeover peer served %d session requests though the owner is alive", n)
	}

	// The owner answered its confirming health probe, so it was
	// re-admitted on the spot: the retry lands back on it, unmoved.
	fail.Store(false)
	resp2, err := hs.Client().Get(hs.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry after transient error = %d, want 200 from the same owner", resp2.StatusCode)
	}
	if got := resp2.Header.Get(cluster.HeaderReplica); got != owner.URL {
		t.Fatalf("retry served by %q, want the original owner %q", got, owner.URL)
	}
	if n := peerHits.Load(); n != 0 {
		t.Fatalf("session moved to the peer (%d requests) despite a live owner", n)
	}
}
